(* The experiment harness: regenerates every table of EXPERIMENTS.md (the
   quantitative claims of the paper — see DESIGN.md section 4) and hosts the
   Bechamel micro-benchmarks. The tables themselves live in
   Aat_bench_tables (shared with `treeaa bench check`); this executable
   adds the file writing, profiling, the convergence-series export and the
   Bechamel suite.

   Usage:
     dune exec bench/main.exe                 # all tables + micro-benchmarks
     dune exec bench/main.exe -- --table E3   # one table
     dune exec bench/main.exe -- --bechamel   # micro-benchmarks only
     dune exec bench/main.exe -- --all        # tables + micro-benchmarks
     dune exec bench/main.exe -- --convergence [FILE]
                                              # per-round convergence JSON

   Flags (anywhere on the line):
     --workers N   fan parallel tables over N domains (numbers unchanged)
     --json-out    also write each table group as BENCH_<NAME>.json (cwd)
     --profile     per-table wall-clock / allocation summary at the end *)

open Treeagree
module Tables = Aat_bench_tables

let print_table = Tables.print_table

(* ------------------------------------------------------------------ *)
(* convergence series: per-round honest-hull diameter via the telemetry
   stats sink, exported as JSON for offline plotting (EXPERIMENTS.md) *)

let convergence out_file =
  let series = ref [] in
  let add name tree_kind stats =
    series := (name, tree_kind, Telemetry.Stats.convergence stats) :: !series
  in
  (* RealAA under the spoiler: the Lemma 5 contraction, round by round *)
  List.iter
    (fun (n, t, d) ->
      let inputs =
        Array.init n (fun i -> d *. float_of_int i /. float_of_int (n - 1))
      in
      let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
      let stats = Telemetry.Stats.create () in
      ignore
        (Engine.run ~n ~t ~seed:1
           ~max_rounds:(3 * iterations)
           ~telemetry:(Telemetry.Stats.sink stats)
           ~observe:Real_aa.observe
           ~protocol:
             (Real_aa.protocol ~inputs:(fun i -> inputs.(i)) ~t ~iterations ())
           ~adversary:(Spoiler.realaa_spoiler ~t ~iterations)
           ());
      add
        (Printf.sprintf "realaa-n%d-t%d-d%.0e-spoiler" n t d)
        "real-line" stats)
    [ (10, 3, 1e3); (10, 3, 1e6); (16, 5, 1e6) ];
  (* TreeAA across families: phase-2 path-index spread per round *)
  let n = 10 and t = 3 in
  List.iter
    (fun (family, tree) ->
      let rng = Rng.create 7 in
      let inputs = Array.init n (fun _ -> Rng.int rng (Tree.n_vertices tree)) in
      let stats = Telemetry.Stats.create () in
      ignore
        (Tree_aa.run ~tree ~inputs ~t
           ~telemetry:(Telemetry.Stats.sink stats)
           ~adversary:(Tables.spoiler_for_tree ~tree ~t)
           ());
      add (Printf.sprintf "treeaa-%s-spoiler" family) family stats)
    [
      ("path-1000", Generate.path 1_000);
      ("star-1000", Generate.star 1_000);
      ("caterpillar-500x3", Generate.caterpillar ~spine:500 ~legs:3);
      ("balanced-2ary-12", Generate.balanced ~arity:2 ~depth:12);
    ];
  let json =
    Telemetry.Json.Obj
      [
        ("schema", Telemetry.Json.Str "treeagree-convergence/v1");
        ( "series",
          Telemetry.Json.Arr
            (List.rev_map
               (fun (name, tree_kind, points) ->
                 Telemetry.Json.Obj
                   [
                     ("name", Telemetry.Json.Str name);
                     ("space", Telemetry.Json.Str tree_kind);
                     ( "points",
                       Telemetry.Json.Arr
                         (List.map
                            (fun (round, spread) ->
                              Telemetry.Json.Arr
                                [
                                  Telemetry.Json.Num (float_of_int round);
                                  Telemetry.Json.Num spread;
                                ])
                            points) );
                   ])
               !series) );
      ]
  in
  let emit oc = output_string oc (Telemetry.Json.to_string json ^ "\n") in
  match out_file with
  | None -> emit stdout
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit oc);
      Printf.printf "convergence series written to %s\n" path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks *)

let bechamel () =
  let open Bechamel in
  let path10k = Generate.path 10_000 in
  let rooted10k = Rooted.make path10k in
  let tour10k = Euler_tour.compute rooted10k in
  let lca10k = Lca.build tour10k in
  let random1k = Generate.random (Rng.create 9) 1_000 in
  let rooted1k = Rooted.make random1k in
  let generators = List.init 20 (fun i -> i * 37 mod 1_000) in
  let small_tree = Generate.caterpillar ~spine:30 ~legs:2 in
  let small_inputs =
    Array.init 7 (fun i -> i * 11 mod Tree.n_vertices small_tree)
  in
  let tests =
    Test.make_grouped ~name:"treeagree"
      [
        Test.make ~name:"euler-tour-10k"
          (Staged.stage (fun () -> ignore (Euler_tour.compute rooted10k)));
        Test.make ~name:"lca-build-10k"
          (Staged.stage (fun () -> ignore (Lca.build tour10k)));
        Test.make ~name:"lca-query"
          (Staged.stage (fun () -> ignore (Lca.query lca10k 137 9_221)));
        Test.make ~name:"hull-1k-20gen"
          (Staged.stage (fun () -> ignore (Convex_hull.compute rooted1k generators)));
        Test.make ~name:"diameter-10k"
          (Staged.stage (fun () -> ignore (Metrics.diameter path10k)));
        Test.make ~name:"fekete-min-rounds"
          (Staged.stage (fun () ->
               ignore (Fekete.min_rounds ~n:100 ~t:33 ~d:1e9 ~eps:1.)));
        Test.make ~name:"tree-aa-run-7p"
          (Staged.stage (fun () ->
               ignore
                 (Tree_aa.run ~tree:small_tree ~inputs:small_inputs ~t:2
                    ~adversary:(Adversary.passive "none") ())));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        match Analyze.OLS.estimates res with
        | Some [ est ] ->
            [ name; Printf.sprintf "%.0f" est; Printf.sprintf "%.3f" (est /. 1e6) ]
            :: acc
        | _ -> [ name; "?"; "?" ] :: acc)
      results []
    |> List.sort compare
  in
  print_table ~title:"Micro-benchmarks (Bechamel, monotonic clock)"
    ~header:[ "benchmark"; "ns/run"; "ms/run" ]
    rows

(* ------------------------------------------------------------------ *)

let write_json_table ~name ~profile tables_captured =
  let path = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Tables.render_group ~name ~profile tables_captured));
  Printf.printf "table group %s written to %s\n" name path

(* Run one table group under the capture/measurement harness. Returns its
   profile row; cost numbers are measurements, so committed BENCH files
   are regenerated without --profile. *)
let run_table ~json_out ~profile (name, f) =
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.allocated_bytes () in
  let tables_captured = Tables.run_captured ~capture:json_out f in
  let wall_s = Unix.gettimeofday () -. t0 in
  let alloc_mb = (Gc.allocated_bytes () -. a0) /. (1024. *. 1024.) in
  if json_out then
    write_json_table ~name
      ~profile:(if profile then Some (wall_s, alloc_mb) else None)
      tables_captured;
  (name, wall_s, alloc_mb)

let print_profile rows =
  print_table ~title:"Table cost profile (--profile; wall clock, GC)"
    ~header:[ "table"; "wall s"; "alloc MB" ]
    (List.map
       (fun (name, wall_s, alloc_mb) ->
         [ name; Printf.sprintf "%.2f" wall_s; Printf.sprintf "%.1f" alloc_mb ])
       rows)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* --workers N / --json-out / --profile may appear anywhere; none of
     them affects a single digit of the tables (the parallel tables run
     on the deterministic Pool; capture and measurement only observe). *)
  let rec extract_opt name acc = function
    | flag :: n :: rest when flag = name ->
        (Some (int_of_string n), List.rev_append acc rest)
    | x :: rest -> extract_opt name (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let extract_flag name args =
    (List.mem name args, List.filter (fun a -> a <> name) args)
  in
  let workers, args = extract_opt "--workers" [] args in
  let workers = Option.value workers ~default:1 in
  let workers = if workers <= 0 then Pool.default_workers () else workers in
  (* --distributed N: campaign-backed tables (E-CHAOS) run on N service
     worker processes instead of in-process domains; every digit stays
     the same. *)
  let distributed_n, args = extract_opt "--distributed" [] args in
  let workers, distributed =
    match distributed_n with
    | Some w -> ((if w <= 0 then Pool.default_workers () else w), true)
    | None -> (workers, false)
  in
  let json_out, args = extract_flag "--json-out" args in
  let profile, args = extract_flag "--profile" args in
  let tables = Tables.tables ~workers ~distributed in
  let run = run_table ~json_out ~profile in
  match args with
  | [ "--bechamel" ] -> bechamel ()
  | [ "--convergence" ] -> convergence None
  | [ "--convergence"; file ] -> convergence (Some file)
  | [ "--table"; name ] -> (
      match List.assoc_opt (String.uppercase_ascii name) tables with
      | Some f ->
          let row = run (String.uppercase_ascii name, f) in
          if profile then print_profile [ row ]
      | None ->
          Printf.eprintf "unknown table %s (have: %s)\n" name
            (String.concat ", " (List.map fst tables));
          exit 1)
  | [ "--all" ] | [] ->
      let rows = List.map run tables in
      if profile then print_profile rows;
      bechamel ()
  | _ ->
      Printf.eprintf
        "usage: main.exe [--table E1..E10 | --bechamel | --convergence \
         [FILE] | --all] [--workers N] [--distributed N] [--json-out] \
         [--profile]\n";
      exit 1
