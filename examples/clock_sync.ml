(* Clock synchronization — the first motivating application in the paper's
   introduction ([28]): real-valued approximate agreement, used directly.

   Nine servers hold drifting clock readings; up to two report maliciously.
   Running RealAA(epsilon) gives every honest server a corrected clock
   within epsilon of the others, inside the honest readings' range (so the
   corrected time is never dragged outside what honest hardware observed).
   The run also shows the early-stopping variant finishing in 9 rounds
   while the fixed schedule would budget for the worst case.

     dune exec examples/clock_sync.exe *)

open Treeagree

let () =
  let n = 9 and t = 2 in
  (* Honest readings drift within ~80ms of each other around t0 = 1000s;
     the compromised servers (7, 8) will lie arbitrarily. *)
  let readings =
    [| 1000.013; 1000.071; 1000.052; 999.994; 1000.038; 1000.066; 1000.027;
       9999.0; 0.0 |]
  in
  let eps = 0.005 in
  Printf.printf "clock readings (seconds):\n";
  Array.iteri
    (fun i r ->
      Printf.printf "  server %d: %10.3f%s\n" i r
        (if i >= 7 then "  (compromised)" else ""))
    readings;

  let honest = Array.to_list (Array.sub readings 0 7) in
  let spread = Verdict.spread honest in
  let iterations = Rounds.bdh_iterations ~range:1. ~eps in
  Printf.printf "\nhonest spread: %.3fs, target agreement: %.3fs\n" spread eps;

  (* Fixed-schedule RealAA with the spoiler attacking. *)
  let report =
    Engine.run ~n ~t
      ~max_rounds:(3 * iterations)
      ~protocol:
        (Real_aa.protocol ~inputs:(fun i -> readings.(i)) ~t ~iterations ())
      ~adversary:(Spoiler.realaa_spoiler ~t ~iterations)
      ()
  in
  let outputs =
    List.map (fun (r : Real_aa.result) -> r.value) (Engine.honest_outputs report)
  in
  Printf.printf "\nfixed schedule: %d rounds; corrected clocks:\n"
    report.rounds_used;
  List.iter2
    (fun (p, _) v -> Printf.printf "  server %d: %10.6f\n" p v)
    report.outputs outputs;
  let verdict =
    Verdict.real ~eps ~n_honest:7 ~honest_inputs:honest ~honest_outputs:outputs
  in
  Format.printf "verdict: %a\n" Verdict.pp verdict;
  assert (Verdict.all_ok verdict);

  (* Early stopping: same guarantees, adaptive round count. *)
  let report2 =
    Engine.run ~n ~t
      ~max_rounds:(3 * iterations)
      ~protocol:
        (Early_real_aa.protocol ~inputs:(fun i -> readings.(i)) ~t ~eps
           ~max_iterations:iterations)
      ~adversary:(Spoiler.early_stopping_spoiler ~t ~iterations)
      ()
  in
  Printf.printf
    "\nearly-stopping variant: decided after %d rounds (budget %d).\n"
    report2.rounds_used (3 * iterations);
  let outputs2 =
    List.map
      (fun (r : Early_real_aa.result) -> r.value)
      (Engine.honest_outputs report2)
  in
  let verdict2 =
    Verdict.real ~eps ~n_honest:7 ~honest_inputs:honest ~honest_outputs:outputs2
  in
  assert (Verdict.all_ok verdict2);
  Printf.printf "all clocks within %.3fs of each other; done.\n" eps
