(* Configuration rollout over a version tree.

   A fleet of replicas must converge on which configuration revision to
   run. Revisions form a tree (every revision has one parent; branches are
   experiments), and "within distance 1" is acceptable: adjacent revisions
   are wire-compatible. Replicas start from whatever revision their last
   deploy left them on; some replicas are compromised and try to drag the
   fleet onto an abandoned experimental branch. Validity of AA on trees is
   exactly the guarantee needed: the agreed revision lies on a path between
   revisions honest replicas actually run, so the compromised replicas can
   never pull the fleet outside the span of deployed-and-trusted configs.

     dune exec examples/config_rollout.exe *)

open Treeagree

let () =
  (* The revision tree: a mainline r000 -> r001 -> ... with feature
     branches. Labels sort by revision number, so the protocol root is the
     initial revision r000. *)
  let mainline =
    List.init 19 (fun i -> (Printf.sprintf "r%03d" i, Printf.sprintf "r%03d" (i + 1)))
  in
  let branches =
    [
      (* an experiment branched off r005 *)
      ("r005", "x005a"); ("x005a", "x005b"); ("x005b", "x005c");
      (* a hotfix line off r012 *)
      ("r012", "x012a"); ("x012a", "x012b");
      (* an abandoned prototype off r017 *)
      ("r017", "x017a"); ("x017a", "x017b"); ("x017b", "x017c"); ("x017c", "x017d");
    ]
  in
  let tree = Tree.of_labeled_edges (mainline @ branches) in
  let v = Tree.vertex_of_label tree in
  Printf.printf "Revision tree: %d revisions, depth span %d.\n"
    (Tree.n_vertices tree) (Metrics.diameter tree);

  (* 7 replicas: honest ones run mainline revisions r008..r014 (one still
     on the hotfix branch); the compromised ones (ids 3 and 6) claim to run
     the abandoned prototype. *)
  let inputs =
    [| v "r008"; v "r010"; v "x012b"; v "x017d"; v "r014"; v "r009"; v "x017c" |]
  in
  let compromised = [ 3; 6 ] in
  Array.iteri
    (fun i r ->
      Printf.printf "  replica %d on %s%s\n" i (Tree.label tree r)
        (if List.mem i compromised then "  (compromised)" else ""))
    inputs;

  (* The compromised replicas equivocate inside the protocol itself (crash
     strategy here; see robot_gathering.ml for the spoiler). *)
  let outcome =
    Quick.agree ~tree ~inputs ~t:2
      ~adversary:(Strategies.crash ~at_round:7 ~victims:compromised)
      ()
  in

  Printf.printf "\nRollout decision after %d rounds:\n" outcome.rounds;
  List.iter
    (fun (replica, rev) -> Printf.printf "  replica %d pins config %s\n" replica rev)
    (Quick.output_labels tree outcome);
  Format.printf "Verdict: %a\n" Verdict.pp outcome.verdict;
  assert (Verdict.all_ok outcome.verdict);

  (* Validity in action: the honest replicas ran r008..r014 (+ hotfix), so
     the decision is on the mainline span — never on the x017 prototype
     branch the compromised replicas pushed. *)
  let hull =
    Convex_hull.compute (Rooted.make tree)
      [ v "r008"; v "r010"; v "x012b"; v "r014"; v "r009" ]
  in
  List.iter
    (fun (_, out) -> assert (Convex_hull.mem hull out))
    outcome.outputs;
  Printf.printf
    "\nAll decisions lie in the hull of honestly-deployed revisions — the \
     prototype branch was kept out.\n"
