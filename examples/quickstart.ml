(* Quickstart: seven parties approximately agree on a vertex of a small
   labeled tree while two of them are Byzantine.

     dune exec examples/quickstart.exe *)

open Treeagree

let () =
  (* The input space: a publicly known labeled tree (the paper's Figure 3). *)
  let tree =
    Tree.of_labeled_edges
      [
        ("v1", "v2"); ("v2", "v3"); ("v3", "v6"); ("v3", "v7");
        ("v2", "v4"); ("v4", "v8"); ("v2", "v5");
      ]
  in
  Printf.printf "Input space tree (rooted at the lowest label):\n%s\n"
    (Tree_io.ascii_art tree);

  (* Each of the n = 7 parties holds a vertex as input. *)
  let v = Tree.vertex_of_label tree in
  let inputs = [| v "v6"; v "v3"; v "v5"; v "v8"; v "v1"; v "v7"; v "v4" |] in
  Printf.printf "Inputs: %s\n"
    (String.concat " "
       (Array.to_list (Array.map (Tree.label tree) inputs)));

  (* Run TreeAA with t = 2 Byzantine parties that stay silent. *)
  let outcome =
    Quick.agree ~tree ~inputs ~t:2
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ()
  in

  Printf.printf "\nTreeAA finished in %d rounds (schedule: %d).\n"
    outcome.rounds (Tree_aa.rounds ~tree);
  List.iter
    (fun (party, label) -> Printf.printf "  party %d outputs %s\n" party label)
    (Quick.output_labels tree outcome);
  Format.printf "Definition 2 verdict: %a\n" Verdict.pp outcome.verdict;

  (* The guarantees, restated: all outputs are within distance 1 of each
     other and lie in the convex hull of the honest inputs. *)
  assert (Verdict.all_ok outcome.verdict);
  print_endline "\nAll checks passed."
