(* Robot gathering on a tree-shaped map — the motivating application from
   the paper's introduction (robot gathering, [34], and the Edge-Gathering
   relaxation of [2]).

   A fleet of 10 maintenance robots is spread over a mine whose tunnel
   system forms a tree (junctions = vertices, tunnels = edges). The robots
   must rendezvous: with AA on trees they agree on two adjacent junctions
   at worst — close enough to see each other — even though up to 3 robots
   have been hijacked and lie arbitrarily about their positions. Exact
   rendezvous (Byzantine agreement) would cost Theta(t) rounds; TreeAA
   needs only O(log |V| / log log |V|).

     dune exec examples/robot_gathering.exe *)

open Treeagree

let () =
  (* The mine: a main gallery with side tunnels (a caterpillar-like tree),
     generated deterministically so the run is reproducible. *)
  let tree = Generate.random_of_diameter (Rng.create 2025) ~n:120 ~diameter:30 in
  let nv = Tree.n_vertices tree in
  Printf.printf
    "Mine map: %d junctions, longest gallery %d tunnels, radius %d.\n" nv
    (Metrics.diameter tree) (Metrics.radius tree);

  (* Robot positions: scattered; the hijacked robots are 2, 5 and 9. *)
  let rng = Rng.create 7 in
  let positions = Array.init 10 (fun _ -> Rng.int rng nv) in
  let hijacked = [ 2; 5; 9 ] in
  Array.iteri
    (fun i p ->
      Printf.printf "  robot %d at junction %s%s\n" i (Tree.label tree p)
        (if List.mem i hijacked then "  (hijacked!)" else ""))
    positions;

  (* The hijacked robots mount the strongest attack we have: the RealAA
     spoiler, lifted to both phases of TreeAA. *)
  let t = 3 in
  let spoiler =
    let tour_len = (2 * nv) - 1 in
    Compose_adversary.phased ~name:"hijackers"
      ~barrier:(max 1 (Paths_finder.rounds ~tree))
      ~first:
        (Spoiler.realaa_spoiler ~t
           ~iterations:
             (Rounds.bdh_iterations ~range:(float_of_int (tour_len - 1)) ~eps:1.))
      ~second:
        (Spoiler.realaa_spoiler ~t
           ~iterations:
             (Rounds.bdh_iterations
                ~range:(float_of_int (Metrics.diameter tree))
                ~eps:1.))
  in
  let outcome = Quick.agree ~tree ~inputs:positions ~t ~adversary:spoiler () in

  Printf.printf "\nRendezvous decided after %d communication rounds:\n"
    outcome.rounds;
  List.iter
    (fun (robot, junction) ->
      Printf.printf "  robot %d heads to junction %s\n" robot junction)
    (Quick.output_labels tree outcome);

  let meeting_points =
    List.sort_uniq compare (List.map snd outcome.outputs)
  in
  Printf.printf "Distinct meeting junctions: %d (adjacent by 1-Agreement)\n"
    (List.length meeting_points);
  Format.printf "Verdict: %a\n" Verdict.pp outcome.verdict;
  assert (Verdict.all_ok outcome.verdict);

  (* Compare against the O(log D) state of the art the paper improves on.
     TreeAA's advantage kicks in when the diameter is polynomial in |V|
     (Theorem 4 vs [33]); on low-diameter maps the baseline can still be
     competitive — the regime split the paper's conclusions discuss. *)
  let nr = Nr_baseline.rounds ~tree in
  Printf.printf
    "\nThe O(log D) baseline [33] schedule: %d rounds; TreeAA: %d rounds.\n"
    nr outcome.rounds;
  let wide = Generate.path 100_000 in
  Printf.printf
    "On a high-diameter map (100k-junction gallery): baseline %d vs TreeAA %d.\n"
    (Nr_baseline.rounds ~tree:wide)
    (Tree_aa.rounds ~tree:wide)
