(* Reconstructions of the paper's five figures, each with its caption claim
   checked programmatically (experiment F1-F5 of EXPERIMENTS.md).

     dune exec examples/paper_figures.exe *)

open Treeagree

let banner name caption =
  Printf.printf "\n--- %s ---\n%s\n" name caption

let check name cond =
  Printf.printf "  [%s] %s\n" (if cond then "ok" else "FAIL") name;
  assert cond

(* Figure 1: the convex hull of {u1, u2, u3} is {u1..u5}. *)
let figure1 () =
  banner "Figure 1" "Convex hull of {u1, u2, u3} is {u1, u2, u3, u4, u5}.";
  let tree =
    Tree.of_labeled_edges
      [ ("u1", "u4"); ("u2", "u4"); ("u4", "u5"); ("u5", "u3");
        ("u5", "w1"); ("u1", "w2") ]
  in
  let v = Tree.vertex_of_label tree in
  let hull = Convex_hull.compute (Rooted.make tree) [ v "u1"; v "u2"; v "u3" ] in
  let labels = List.map (Tree.label tree) (Convex_hull.vertices hull) in
  check "hull = {u1..u5}" (labels = [ "u1"; "u2"; "u3"; "u4"; "u5" ])

(* Figure 2: projections of u1, u2, u3 onto the path v1..v8 are v3, v4, v6. *)
let figure2 () =
  banner "Figure 2"
    "Projections of inputs u1, u2, u3 onto the known path (v1..v8) are v3, \
     v4, v6; all lie in the hull (Lemma 1).";
  let tree =
    Tree.of_labeled_edges
      [ ("v1", "v2"); ("v2", "v3"); ("v3", "v4"); ("v4", "v5");
        ("v5", "v6"); ("v6", "v7"); ("v7", "v8");
        ("v3", "x1"); ("x1", "u1"); ("v4", "u2"); ("v6", "x2"); ("x2", "u3") ]
  in
  let v = Tree.vertex_of_label tree in
  let rooted = Rooted.make tree in
  let path = Array.map v [| "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7"; "v8" |] in
  let proj u = Tree.label tree (Projection.onto_path rooted path (v u)) in
  check "proj(u1) = v3" (proj "u1" = "v3");
  check "proj(u2) = v4" (proj "u2" = "v4");
  check "proj(u3) = v6" (proj "u3" = "v6");
  let hull = Convex_hull.compute rooted [ v "u1"; v "u2"; v "u3" ] in
  check "projections in hull (Lemma 1)"
    (List.for_all
       (fun u -> Convex_hull.mem hull (Projection.onto_path rooted path (v u)))
       [ "u1"; "u2"; "u3" ])

let fig3_tree () =
  Tree.of_labeled_edges
    [ ("v1", "v2"); ("v2", "v3"); ("v3", "v6"); ("v3", "v7");
      ("v2", "v4"); ("v4", "v8"); ("v2", "v5") ]

(* Figure 3: ListConstruction yields the list printed in Section 6. *)
let figure3 () =
  banner "Figure 3"
    "DFS from v1 records L = [v1 v2 v3 v6 v3 v7 v3 v2 v4 v8 v4 v2 v5 v2 v1].";
  let tree = fig3_tree () in
  let tour = Euler_tour.compute (Rooted.make tree) in
  let got =
    Array.to_list (Array.map (Tree.label tree) (Euler_tour.tour tour))
  in
  Printf.printf "  L = [%s]\n" (String.concat " " got);
  check "matches the paper"
    (got
    = [ "v1"; "v2"; "v3"; "v6"; "v3"; "v7"; "v3"; "v2"; "v4"; "v8"; "v4";
        "v2"; "v5"; "v2"; "v1" ])

(* Figure 4: with honest inputs {v3, v6, v5}, the list positions between the
   extreme honest indices include v4 and v8 — vertices OUTSIDE the hull but
   inside the subtree of the valid vertex v2 (so every root path through
   them still intersects the hull, Lemma 3). *)
let figure4 () =
  banner "Figure 4"
    "v4, v8 are not valid for honest inputs {v3, v6, v5}, but they are in \
     the subtree of the valid vertex v2.";
  let tree = fig3_tree () in
  let v = Tree.vertex_of_label tree in
  let rooted = Rooted.make tree in
  let tour = Euler_tour.compute rooted in
  let hull = Convex_hull.compute rooted [ v "v3"; v "v6"; v "v5" ] in
  check "hull = {v2,v3,v5,v6}"
    (List.map (Tree.label tree) (Convex_hull.vertices hull)
    = [ "v2"; "v3"; "v5"; "v6" ]);
  check "v4 outside hull" (not (Convex_hull.mem hull (v "v4")));
  check "v8 outside hull" (not (Convex_hull.mem hull (v "v8")));
  (* v4's and v8's indices lie within the honest index range *)
  let imin =
    List.fold_left min max_int
      (List.map (Euler_tour.first_occurrence tour) [ v "v3"; v "v6"; v "v5" ])
  in
  let imax =
    List.fold_left max 0
      (List.map (Euler_tour.last_occurrence tour) [ v "v3"; v "v6"; v "v5" ])
  in
  let within u =
    List.for_all
      (fun i -> i >= imin && i <= imax)
      (Euler_tour.occurrences tour u)
  in
  check "v4's indices within honest range" (within (v "v4"));
  check "v8's indices within honest range" (within (v "v8"));
  check "v4 in subtree of valid v2" (Rooted.in_subtree rooted ~root_of:(v "v2") (v "v4"));
  check "v8 in subtree of valid v2" (Rooted.in_subtree rooted ~root_of:(v "v2") (v "v8"));
  (* Lemma 3: every root path P(v1, L_i) for i in the honest range
     intersects the hull *)
  let ok = ref true in
  for i = imin to imax do
    let path = Rooted.path_to_root rooted (Euler_tour.vertex_at tour i) in
    if not (List.exists (Convex_hull.mem hull) path) then ok := false
  done;
  check "every P(v_root, L_i) intersects the hull (Lemma 3)" !ok

(* Figure 5: two honest parties may end PathsFinder with paths that differ
   in one trailing edge; a party holding the shorter path cannot tell which
   neighbor extends it, so TreeAA line 6 falls back to the path's last
   vertex — and all outputs still land on two adjacent vertices. *)
let figure5 () =
  banner "Figure 5"
    "Honest parties obtain root paths equal up to one trailing edge; the \
     shorter-path holder outputs its last vertex; 1-Agreement survives.";
  (* a spine v1..v7 with a red branch at v6, as in the figure *)
  let tree =
    Tree.of_labeled_edges
      [ ("v1", "v2"); ("v2", "v3"); ("v3", "v4"); ("v4", "v5");
        ("v5", "v6"); ("v6", "v7"); ("v6", "w1"); ("w1", "w2");
        ("v2", "u1"); ("v4", "u2"); ("v7", "u3") ]
  in
  let v = Tree.vertex_of_label tree in
  (* honest inputs u1, u2, u3 as in the figure; byz parties exist *)
  let inputs = [| v "u1"; v "u2"; v "u3"; v "u2"; v "u1"; v "w2"; v "w2" |] in
  let outcome =
    Quick.agree ~tree ~inputs ~t:2
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ()
  in
  Format.printf "  outputs: %s\n"
    (String.concat " " (List.map snd (Quick.output_labels tree outcome)));
  check "Definition 2 verdict" (Verdict.all_ok outcome.verdict);
  (* and the red branch (w1, w2) is never chosen: it is outside the hull *)
  let hull =
    Convex_hull.compute (Rooted.make tree) [ v "u1"; v "u2"; v "u3" ]
  in
  check "red branch outside hull"
    ((not (Convex_hull.mem hull (v "w1"))) && not (Convex_hull.mem hull (v "w2")));
  check "no output on the red branch"
    (List.for_all (fun (_, o) -> o <> v "w1" && o <> v "w2") outcome.outputs)

let () =
  figure1 ();
  figure2 ();
  figure3 ();
  figure4 ();
  figure5 ();
  print_endline "\nAll figure claims verified."
