open Aat_engine

type grade = G0 | G1 | G2

let grade_to_int = function G0 -> 0 | G1 -> 1 | G2 -> 2

let pp_grade fmt g = Format.fprintf fmt "%d" (grade_to_int g)

type 'v result = { value : 'v option; grade : grade }

module Multi = struct
  type 'v msg =
    | Value of 'v (* round 1: leader's value for its own instance *)
    | Echo of 'v option array (* round 2: echo.(leader) *)
    | Vote of 'v option array (* round 3: vote.(leader) *)

  type 'v state = {
    n : int;
    t : int;
    self : Types.party_id;
    own : 'v;
    heard : 'v option array; (* round-1 value per leader *)
    echoes : 'v option array array; (* echoes.(sender).(leader) *)
    votes : 'v option array array; (* votes.(sender).(leader) *)
    finished : 'v result array option;
  }

  let rounds = 3

  let start ~n ~t ~self ~own =
    {
      n;
      t;
      self;
      own;
      heard = Array.make n None;
      echoes = Array.make_matrix n n None;
      votes = Array.make_matrix n n None;
      finished = None;
    }

  let broadcast st m = List.init st.n (fun p -> (p, m))

  (* The most frequent [Some] entry of column [leader] in [table], with its
     multiplicity. Ties break toward the smaller value (total order via
     polymorphic compare) so every honest party resolves them identically. *)
  let plurality table leader =
    let counts = Hashtbl.create 8 in
    Array.iter
      (fun (row : 'v option array) ->
        match row.(leader) with
        | None -> ()
        | Some v ->
            Hashtbl.replace counts v
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
      table;
    Hashtbl.fold
      (fun v c best ->
        match best with
        | None -> Some (v, c)
        | Some (bv, bc) ->
            if c > bc || (c = bc && compare v bv < 0) then Some (v, c) else best)
      counts None

  let send ~round st =
    match round with
    | 1 -> broadcast st (Value st.own)
    | 2 -> broadcast st (Echo (Array.copy st.heard))
    | 3 ->
        (* Vote for each leader's value that at least n - t parties echoed;
           otherwise abstain on that instance. *)
        let vote = Array.make st.n None in
        for leader = 0 to st.n - 1 do
          match plurality st.echoes leader with
          | Some (v, c) when c >= st.n - st.t -> vote.(leader) <- Some v
          | Some _ | None -> ()
        done;
        broadcast st (Vote vote)
    | _ -> invalid_arg "Gradecast.Multi.send: round out of range"

  let receive ~round ~inbox st =
    match round with
    | 1 ->
        let heard = Array.copy st.heard in
        List.iter
          (fun (e : _ Types.envelope) ->
            match e.payload with
            | Value v -> heard.(e.sender) <- Some v
            | Echo _ | Vote _ -> ())
          inbox;
        { st with heard }
    | 2 ->
        let echoes = Array.map Array.copy st.echoes in
        List.iter
          (fun (e : _ Types.envelope) ->
            match e.payload with
            | Echo row when Array.length row = st.n -> echoes.(e.sender) <- Array.copy row
            | Echo _ | Value _ | Vote _ -> ())
          inbox;
        { st with echoes }
    | 3 ->
        let votes = Array.map Array.copy st.votes in
        List.iter
          (fun (e : _ Types.envelope) ->
            match e.payload with
            | Vote row when Array.length row = st.n -> votes.(e.sender) <- Array.copy row
            | Vote _ | Value _ | Echo _ -> ())
          inbox;
        let finished =
          Array.init st.n (fun leader ->
              match plurality votes leader with
              | Some (v, c) when c >= st.n - st.t -> { value = Some v; grade = G2 }
              | Some (v, c) when c >= st.t + 1 -> { value = Some v; grade = G1 }
              | Some _ | None -> { value = None; grade = G0 })
        in
        (if Aat_telemetry.Telemetry.Probe.active () then begin
           let g0 = ref 0 and g1 = ref 0 and g2 = ref 0 in
           Array.iter
             (fun r ->
               match r.grade with
               | G0 -> incr g0
               | G1 -> incr g1
               | G2 -> incr g2)
             finished;
           Aat_telemetry.Telemetry.Probe.grade_histogram ~g0:!g0 ~g1:!g1 ~g2:!g2
         end);
        { st with votes; finished = Some finished }
    | _ -> invalid_arg "Gradecast.Multi.receive: round out of range"

  let results st =
    match st.finished with
    | Some r -> Array.copy r
    | None -> invalid_arg "Gradecast.Multi.results: protocol not finished"
end

let protocol ~leader ~inputs ~t =
  {
    Protocol.name = "gradecast";
    init = (fun ~self ~n -> Multi.start ~n ~t ~self ~own:(inputs self));
    send = (fun ~round ~self:_ st -> Multi.send ~round st);
    receive = (fun ~round ~self:_ ~inbox st -> Multi.receive ~round ~inbox st);
    output =
      (fun st ->
        match st.Multi.finished with
        | Some results -> Some results.(leader)
        | None -> None);
  }
