open Aat_engine

type grade = G0 | G1 | G2

let grade_to_int = function G0 -> 0 | G1 -> 1 | G2 -> 2

let pp_grade fmt g = Format.fprintf fmt "%d" (grade_to_int g)

type 'v result = { value : 'v option; grade : grade }

module Multi = struct
  type 'v msg =
    | Value of 'v (* round 1: leader's value for its own instance *)
    | Echo of 'v option array (* round 2: echo.(leader) *)
    | Vote of 'v option array (* round 3: vote.(leader) *)

  type 'v state = {
    n : int;
    t : int;
    self : Types.party_id;
    own : 'v;
    heard : 'v option array; (* round-1 value per leader *)
    echoes : 'v option array array; (* echoes.(sender).(leader) *)
    votes : 'v option array array; (* votes.(sender).(leader) *)
    finished : 'v result array option;
  }

  let rounds = 3

  let start ~n ~t ~self ~own =
    (* [echoes] and [votes] start with every sender slot pointing at one
       shared all-[None] row: a slot is only ever {e replaced} wholesale
       when that sender's row arrives (see [receive]), never mutated in
       place, so the sharing is invisible — and state creation is O(n)
       instead of the O(n²) of two materialised matrices (which made
       running n parallel instances Θ(n³) before a single message moved). *)
    let empty : 'v option array = Array.make n None in
    {
      n;
      t;
      self;
      own;
      heard = Array.make n None;
      echoes = Array.make n empty;
      votes = Array.make n empty;
      finished = None;
    }

  let broadcast st m = List.init st.n (fun p -> (p, m))

  (* The most frequent [Some] entry of column [leader] in [table], with its
     multiplicity. Ties break toward the smaller value (total order via
     polymorphic compare) so every honest party resolves them identically.
     Distinct values are counted in flat parallel buffers probed with
     [compare]-equality — the same grouping the polymorphic [Hashtbl] this
     replaces used for its keys. A gradecast column holds very few
     distinct values (honest senders echo identically), so the linear
     probe beats hashing; the winner criterion is order-independent, so
     the change cannot move any result. *)
  let plurality table leader =
    let vals : 'v option array ref = ref (Array.make 8 None) in
    let counts = ref (Array.make 8 0) in
    let d = ref 0 in
    Array.iter
      (fun (row : 'v option array) ->
        match row.(leader) with
        | None -> ()
        | Some v ->
            let rec probe i =
              if i = !d then begin
                (if !d = Array.length !vals then begin
                   let nv = Array.make (2 * !d) None in
                   Array.blit !vals 0 nv 0 !d;
                   vals := nv;
                   let nc = Array.make (2 * !d) 0 in
                   Array.blit !counts 0 nc 0 !d;
                   counts := nc
                 end);
                !vals.(!d) <- Some v;
                !counts.(!d) <- 1;
                incr d
              end
              else
                match !vals.(i) with
                | Some u when compare u v = 0 ->
                    !counts.(i) <- !counts.(i) + 1
                | _ -> probe (i + 1)
            in
            probe 0)
      table;
    let best = ref None in
    for i = 0 to !d - 1 do
      match !vals.(i) with
      | Some v -> (
          let c = !counts.(i) in
          match !best with
          | None -> best := Some (v, c)
          | Some (bv, bc) ->
              if c > bc || (c = bc && compare v bv < 0) then best := Some (v, c)
          )
      | None -> ()
    done;
    !best

  let send ~round st =
    match round with
    | 1 -> broadcast st (Value st.own)
    | 2 -> broadcast st (Echo (Array.copy st.heard))
    | 3 ->
        (* Vote for each leader's value that at least n - t parties echoed;
           otherwise abstain on that instance. *)
        let vote = Array.make st.n None in
        for leader = 0 to st.n - 1 do
          match plurality st.echoes leader with
          | Some (v, c) when c >= st.n - st.t -> vote.(leader) <- Some v
          | Some _ | None -> ()
        done;
        broadcast st (Vote vote)
    | _ -> invalid_arg "Gradecast.Multi.send: round out of range"

  (* State updates are in place: both engines treat protocol state
     linearly (the pre-receive state is discarded as soon as the
     post-receive one exists), so copying the full echo/vote matrix per
     received letter — Θ(n²) each, Θ(n³) per round across parties — bought
     nothing. Received rows are stored {e by reference}: the sender built
     (or copied) the row before broadcast and no reader ever mutates a
     stored row, so one physical row may back many parties' tables. An
     adversary crafting [Echo]/[Vote] payloads must hand over fresh rows
     it does not mutate afterwards — every in-repo strategy does. *)
  let receive ~round ~inbox st =
    match round with
    | 1 ->
        List.iter
          (fun (e : _ Types.envelope) ->
            match e.payload with
            | Value v -> st.heard.(e.sender) <- Some v
            | Echo _ | Vote _ -> ())
          inbox;
        st
    | 2 ->
        List.iter
          (fun (e : _ Types.envelope) ->
            match e.payload with
            | Echo row when Array.length row = st.n -> st.echoes.(e.sender) <- row
            | Echo _ | Value _ | Vote _ -> ())
          inbox;
        st
    | 3 ->
        List.iter
          (fun (e : _ Types.envelope) ->
            match e.payload with
            | Vote row when Array.length row = st.n -> st.votes.(e.sender) <- row
            | Vote _ | Value _ | Echo _ -> ())
          inbox;
        let finished =
          Array.init st.n (fun leader ->
              match plurality st.votes leader with
              | Some (v, c) when c >= st.n - st.t -> { value = Some v; grade = G2 }
              | Some (v, c) when c >= st.t + 1 -> { value = Some v; grade = G1 }
              | Some _ | None -> { value = None; grade = G0 })
        in
        (if Aat_telemetry.Telemetry.Probe.active () then begin
           let g0 = ref 0 and g1 = ref 0 and g2 = ref 0 in
           Array.iter
             (fun r ->
               match r.grade with
               | G0 -> incr g0
               | G1 -> incr g1
               | G2 -> incr g2)
             finished;
           Aat_telemetry.Telemetry.Probe.grade_histogram ~g0:!g0 ~g1:!g1 ~g2:!g2
         end);
        { st with finished = Some finished }
    | _ -> invalid_arg "Gradecast.Multi.receive: round out of range"

  let results st =
    match st.finished with
    | Some r -> Array.copy r
    | None -> invalid_arg "Gradecast.Multi.results: protocol not finished"
end

let protocol ~leader ~inputs ~t =
  {
    Protocol.name = "gradecast";
    init = (fun ~self ~n -> Multi.start ~n ~t ~self ~own:(inputs self));
    send = (fun ~round ~self:_ st -> Multi.send ~round st);
    receive = (fun ~round ~self:_ ~inbox st -> Multi.receive ~round ~inbox st);
    output =
      (fun st ->
        match st.Multi.finished with
        | Some results -> Some results.(leader)
        | None -> None);
  }
