(** Gradecast — the value-distribution mechanism of RealAA ([6], [7]).

    Gradecast is broadcast with a confidence grade. A leader distributes a
    value; every party outputs a [(value, grade)] pair with grade ∈ {0,1,2}
    such that, for [t < n/3] Byzantine parties:

    - {b validity}: if the leader is honest, every honest party outputs the
      leader's value with grade 2;
    - {b soundness}: if an honest party outputs grade 2 for value [v], every
      honest party outputs [v] with grade ≥ 1;
    - {b agreement on blame}: if an honest party outputs grade ≤ 1, every
      honest party outputs grade ≤ 1 — so grade ≤ 1 from one honest party's
      view convicts the leader of misbehaving {e for everyone} after one
      more exchange; RealAA uses grade < 2 as evidence to blacklist the
      leader forever (the "every Byzantine party causes inconsistencies at
      most once" mechanism the paper highlights).

    The protocol is the classic 3-round echo/vote scheme: round 1 the
    leader sends; round 2 everyone echoes; round 3 everyone votes for a
    value echoed by ≥ n - t parties; a party grades 2 on ≥ n - t votes, 1 on
    ≥ t + 1 votes, 0 otherwise.

    {!Multi} runs [n] simultaneous instances — every party a leader of its
    own — in the same 3 rounds; that is one RealAA iteration's distribution
    step. *)

open Aat_engine

type grade = G0 | G1 | G2

val grade_to_int : grade -> int

val pp_grade : Format.formatter -> grade -> unit

type 'v result = { value : 'v option; grade : grade }
(** [value] is [None] iff [grade = G0]. *)

module Multi : sig
  (** Composable [n]-leader gradecast: 3 rounds, each party the leader of
      instance [i] for its own id [i]. Embed these functions into a larger
      protocol's state machine (RealAA calls one [Multi] per iteration). *)

  (** The wire format is deliberately public: Byzantine strategies in
      [Aat_adversary] forge these constructors, which is exactly what a
      real Byzantine party can do. *)
  type 'v msg =
    | Value of 'v  (** round 1: the leader's value for its own instance *)
    | Echo of 'v option array  (** round 2: per-leader echo vector *)
    | Vote of 'v option array  (** round 3: per-leader vote vector *)

  type 'v state

  val rounds : int
  (** = 3 *)

  val start : n:int -> t:int -> self:Types.party_id -> own:'v -> 'v state
  (** Begin an instance batch where this party gradecasts [own]. *)

  val send :
    round:int -> 'v state -> (Types.party_id * 'v msg) list
  (** [round] is 1-, 2- or 3- relative to the batch start. *)

  val receive :
    round:int -> inbox:'v msg Types.envelope list -> 'v state -> 'v state

  val results : 'v state -> 'v result array
  (** Per-leader outcomes; only meaningful after round 3's [receive].
      Raises [Invalid_argument] before that. *)
end

(** Single-leader gradecast as a standalone {!Protocol.t}, used by the test
    suite to validate the gradecast properties in isolation. Every party
    inputs a value but only [leader]'s instance is reported. *)
val protocol :
  leader:Types.party_id ->
  inputs:(Types.party_id -> 'v) ->
  t:int ->
  ('v Multi.state, 'v Multi.msg, 'v result) Protocol.t
