include Aat_runtime.Types
