type ('state, 'msg, 'out) t = {
  name : string;
  init : self:Types.party_id -> n:int -> 'state;
  send :
    round:Types.round -> self:Types.party_id -> 'state ->
    (Types.party_id * 'msg) list;
  receive :
    round:Types.round -> self:Types.party_id ->
    inbox:'msg Types.envelope list -> 'state -> 'state;
  output : 'state -> 'out option;
}

let map_output f p = { p with output = (fun s -> Option.map f (p.output s)) }

(* The composed state keeps the phase-one output [o1] inside [Phase2] so
   that the phase-two protocol — a pure, cheap record of functions — can be
   re-derived by [second o1] at every step instead of being stored (storing
   it would leak its type parameters into the state type). *)
let sequential ~name ~first ~rounds_of_first ~second =
  if rounds_of_first < 1 then invalid_arg "Protocol.sequential: rounds_of_first < 1";
  let open Composed in
  let init ~self ~n = { n; phase = Phase1 (first.init ~self ~n) } in
  let send ~round ~self state =
    match state.phase with
    | Phase1 s ->
        List.map (fun (dst, m) -> (dst, M1 m)) (first.send ~round ~self s)
    | Bridged _ -> []
    | Phase2 (o1, s2) ->
        let p2 = second o1 in
        List.map
          (fun (dst, m) -> (dst, M2 m))
          (p2.send ~round:(round - rounds_of_first) ~self s2)
  in
  let filter1 inbox =
    List.filter_map
      (fun (e : _ Types.envelope) ->
        match e.payload with
        | M1 m -> Some { e with Types.payload = m }
        | M2 _ -> None)
      inbox
  and filter2 inbox =
    List.filter_map
      (fun (e : _ Types.envelope) ->
        match e.payload with
        | M2 m -> Some { e with Types.payload = m }
        | M1 _ -> None)
      inbox
  in
  let receive ~round ~self ~inbox state =
    let cross_barrier phase =
      (* At the end of round [rounds_of_first] every honest party must have
         decided phase one (the protocol's round bound guarantees it); all
         parties then enter phase two simultaneously — TreeAA line 4. *)
      if round <> rounds_of_first then phase
      else
        match phase with
        | Bridged o1 ->
            Aat_telemetry.Telemetry.Probe.mark "phase2-entered";
            let p2 = second o1 in
            Phase2 (o1, p2.init ~self ~n:state.n)
        | Phase1 _ ->
            failwith
              (Printf.sprintf
                 "%s: phase one undecided at its round bound (round %d)" name
                 round)
        | Phase2 _ -> assert false
    in
    let phase =
      match state.phase with
      | Phase1 s ->
          let s' = first.receive ~round ~self ~inbox:(filter1 inbox) s in
          let next =
            match first.output s' with Some o1 -> Bridged o1 | None -> Phase1 s'
          in
          cross_barrier next
      | Bridged o1 -> cross_barrier (Bridged o1)
      | Phase2 (o1, s2) ->
          let p2 = second o1 in
          let s2' =
            p2.receive ~round:(round - rounds_of_first) ~self
              ~inbox:(filter2 inbox) s2
          in
          Phase2 (o1, s2')
    in
    { state with phase }
  in
  let output state =
    match state.phase with
    | Phase2 (o1, s2) -> (second o1).output s2
    | Phase1 _ | Bridged _ -> None
  in
  { name; init; send; receive; output }
