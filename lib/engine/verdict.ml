type t = { termination : bool; validity : bool; agreement : bool }

let all_ok v = v.termination && v.validity && v.agreement

let pp fmt v =
  let b fmt ok = Format.pp_print_string fmt (if ok then "ok" else "VIOLATED") in
  Format.fprintf fmt "termination=%a validity=%a agreement=%a" b v.termination
    b v.validity b v.agreement

let conj a b =
  {
    termination = a.termination && b.termination;
    validity = a.validity && b.validity;
    agreement = a.agreement && b.agreement;
  }

type graded =
  | Passed
  | Violated of t
  | Excused of { reason : string; verdict : t }

let grade ~n ~t ~faulty ?excuse v =
  if all_ok v then Passed
  else if faulty > t then
    Excused
      {
        reason =
          Printf.sprintf
            "%d faulty parties exceed the budget t=%d (fewer than n-t=%d \
             live honest parties)"
            faulty t (n - t);
        verdict = v;
      }
  else
    match excuse with
    | Some reason -> Excused { reason; verdict = v }
    | None -> Violated v

let graded_label = function
  | Passed -> "passed"
  | Violated _ -> "violated"
  | Excused _ -> "excused"

let pp_graded fmt = function
  | Passed -> Format.pp_print_string fmt "passed"
  | Violated v -> Format.fprintf fmt "violated (%a)" pp v
  | Excused { reason; verdict } ->
      Format.fprintf fmt "excused (%a): %s" pp verdict reason

let spread = function
  | [] -> 0.
  | x :: xs ->
      let lo = List.fold_left min x xs and hi = List.fold_left max x xs in
      hi -. lo

let real ~eps ~n_honest ~honest_inputs ~honest_outputs =
  let termination = List.length honest_outputs = n_honest in
  let lo = List.fold_left min infinity honest_inputs
  and hi = List.fold_left max neg_infinity honest_inputs in
  let validity =
    List.for_all (fun v -> v >= lo && v <= hi) honest_outputs
  in
  let agreement = spread honest_outputs <= eps +. 1e-9 in
  { termination; validity; agreement }

let real_of_report ~eps ~inputs ~value (report : _ Aat_runtime.Report.t) =
  let honest_inputs =
    Aat_runtime.Report.honest_inputs ~inputs:(Array.init report.n inputs)
      report
  in
  real ~eps
    ~n_honest:(Aat_runtime.Report.finally_honest report)
    ~honest_inputs
    ~honest_outputs:(List.map (fun (_, o) -> value o) report.outputs)
