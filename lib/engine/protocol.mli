(** Honest-party protocol logic as a pure state machine.

    A protocol is what one honest party runs: given its local state it emits
    this round's messages, then folds the round's inbox back into its state,
    and may at any point declare an output. The engine drives [n] copies in
    lock step. Purity (no shared mutable state between parties) is what
    makes executions reproducible and lets the adversary be maximally
    powerful without cheating. *)

type ('state, 'msg, 'out) t = {
  name : string;
  init : self:Types.party_id -> n:int -> 'state;
      (** Fresh state; the party's input is baked in by the caller (see
          e.g. [Realaa.Bdh.protocol], which closes over an input array). *)
  send :
    round:Types.round -> self:Types.party_id -> 'state ->
    (Types.party_id * 'msg) list;
      (** Messages to hand to the network this round. At most one message
          per recipient is kept (authenticated channels carry one message
          per pair per round); duplicates are an error in debug builds. *)
  receive :
    round:Types.round -> self:Types.party_id ->
    inbox:'msg Types.envelope list -> 'state -> 'state;
      (** Fold the round's inbox (sorted by sender) into the state. *)
  output : 'state -> 'out option;
      (** [Some o] once the party has decided. The engine freezes the party
          (it stops sending and receiving) the first time this returns
          [Some] — matching "produces an output and terminates". Protocols
          that must keep echoing after deciding delay their output
          instead. *)
}

val map_output : ('a -> 'b) -> ('s, 'm, 'a) t -> ('s, 'm, 'b) t

val sequential :
  name:string ->
  first:('s1, 'm1, 'o1) t ->
  rounds_of_first:int ->
  second:('o1 -> ('s2, 'm2, 'o2) t) ->
  (('s1, 'o1, 's2) Composed.state, ('m1, 'm2) Composed.msg, 'o2) t
(** [sequential ~first ~rounds_of_first ~second] runs [first], waits until
    round [rounds_of_first] ends (even for parties that decided earlier —
    the synchronisation barrier of TreeAA line 4), then runs [second] seeded
    with [first]'s output. Rounds of [second] are numbered from 1 in its own
    frame. Raises [Failure] at the barrier if [first] has not decided. *)
