(** Shared vocabulary of the synchronous simulator — an alias of the
    runtime-layer {!Aat_runtime.Types}, re-exported here so engine-level
    code (and everything built on it) keeps its historical
    [Aat_engine.Types] spelling. Both engines speak the same letter and
    envelope types; see {!Aat_runtime.Types} for the model. *)

type party_id = Aat_runtime.Types.party_id
(** Party identifier in [\[0, n)]. The paper's [p_i] is our [i - 1]. *)

type round = Aat_runtime.Types.round
(** Round counter, starting at 1 for the first communication round. *)

type 'msg envelope = 'msg Aat_runtime.Types.envelope = {
  sender : party_id;
  payload : 'msg;
}
(** A delivered message. [sender] is stamped by the engine — channels are
    authenticated, so not even a Byzantine party can forge it. *)

type 'msg letter = 'msg Aat_runtime.Types.letter = {
  src : party_id;
  dst : party_id;
  body : 'msg;
}
(** An in-flight message: what a party (or the adversary, on behalf of a
    corrupted party) hands to the network for delivery next tick. *)

val pp_party : Format.formatter -> party_id -> unit
