(** The Byzantine adversary — an alias of the runtime-layer
    {!Aat_runtime.Adversary}, re-exported so strategy code keeps its
    historical [Aat_engine.Adversary] spelling.

    The interface is engine-agnostic: the same record drives the
    synchronous engine directly and the asynchronous engine via
    [Aat_async.Async_engine.adversary] (which adds only a scheduler). See
    {!Aat_runtime.Adversary} for the full contract, including how the view
    fields read under each engine. *)

type 'msg view = 'msg Aat_runtime.Adversary.view = {
  round : Types.round;
  n : int;
  t : int;
  corrupted : bool array;  (** current corruption set, length [n] *)
  honest_outbox : 'msg Types.letter list;
      (** what honest parties are sending this round (rushing power) *)
  history : 'msg Types.letter list list;
      (** delivered traffic of past rounds, most recent first *)
  rng : Aat_util.Rng.t;  (** adversary's private randomness *)
}

type 'msg t = 'msg Aat_runtime.Adversary.t = {
  name : string;
  passive : bool;
      (** Observably inert: never corrupts, never sends, never reads its
          view — lets engines skip view materialisation. Only
          {!passive} sets this. *)
  initial_corruptions : n:int -> t:int -> Aat_util.Rng.t -> Types.party_id list;
      (** Corrupted set at round 1; may be empty for a purely adaptive
          strategy. Lists longer than [t] are truncated by the engine. *)
  corrupt_more : 'msg view -> Types.party_id list;
      (** Additional corruptions for this round, requested after seeing the
          honest outbox (adaptivity). Budget-capped by the engine. *)
  deliver : 'msg view -> 'msg Types.letter list;
      (** The corrupted parties' messages for this round. Letters whose
          [src] is not corrupted are dropped (and logged) — authenticated
          channels make them impossible. *)
}

val passive : string -> 'msg t
(** No corruptions at all: the fault-free baseline case. *)

val static :
  name:string ->
  pick:(n:int -> t:int -> Aat_util.Rng.t -> Types.party_id list) ->
  deliver:('msg view -> 'msg Types.letter list) ->
  'msg t
(** Static adversary: fixed corruption set, no adaptive corruptions. *)

val corrupted_parties : 'msg view -> Types.party_id list

val honest_parties : 'msg view -> Types.party_id list
