(** The lock-step synchronous execution engine.

    One call to {!run} plays out a complete execution of an honest protocol
    against an adversary:

    + every live honest party computes its round-[r] messages ([send]);
    + the adversary, having seen them (rushing), may adaptively corrupt more
      parties — a party corrupted in round [r] has its round-[r] honest
      messages retracted — and submits the corrupted parties' messages;
    + the engine delivers through the shared {!Aat_runtime.Mailbox}: each
      party receives at most one message per sender (authenticated
      channels), adversary letters resolved last-submitted-wins;
    + every live honest party folds its inbox ([receive]) and is frozen as
      terminated once [output] returns [Some].

    The run ends when all honest parties have terminated, or fails after
    [max_rounds] (a protocol-under-test violating Termination is a test
    failure, not a hang).

    The engine is a thin round-barrier loop over the [lib/runtime]
    substrate — transport, corruption bookkeeping and reporting are shared
    with the asynchronous engine, and {!run} returns the unified
    {!Aat_runtime.Report.t} (re-exported below; [engine = "sync"], all
    times in round numbers). *)

type ('out, 'msg) report = ('out, 'msg) Aat_runtime.Report.t = {
  engine : string;  (** ["sync"] *)
  n : int;
  t : int;
  outputs : (Types.party_id * 'out) list;
      (** honest parties' outputs, by party id (ascending) *)
  termination_rounds : (Types.party_id * Types.round) list;
      (** the round at the end of which each honest party decided *)
  rounds_used : int;  (** max over honest parties *)
  corrupted : Types.party_id list;  (** final corruption set, ascending *)
  corruption_rounds : (Types.party_id * Types.round) list;
      (** when each corruption happened; round 0 = corrupted from the start.
          Needed to state Validity correctly under the adaptive adversary: a
          party corrupted in round [r >= 1] contributed its input while
          honest, so the provable hull (Lemmas 5-6) is over the inputs of
          {e initially}-honest parties, while Termination and Agreement
          quantify over {e finally}-honest parties. *)
  honest_messages : int;  (** total letters sent by honest parties *)
  adversary_messages : int;  (** total letters accepted from the adversary *)
  rejected_forgeries : int;
      (** adversary letters dropped for claiming an honest sender *)
  trace : 'msg Types.letter list list;
      (** delivered traffic per round, oldest first (empty unless
          [~record_trace:true]) *)
  fault_stats : Aat_runtime.Report.fault_stats;
      (** injected-fault accounting; all zeros on a benign run *)
  watchdog_violations : Aat_runtime.Watchdog.violation list;
      (** first violation per installed watchdog, in firing order *)
}

exception Exceeded_max_rounds of string

val run_outcome :
  n:int ->
  t:int ->
  ?max_rounds:int ->
  ?seed:int ->
  ?record_trace:bool ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  ?profile:bool ->
  ?observe:('s -> float option) ->
  ?fault_filter:Aat_runtime.Mailbox.fault_filter ->
  ?crash_faults:(Types.party_id * Types.round) list ->
  ?watchdogs:('s, 'm) Aat_runtime.Watchdog.t list ->
  protocol:('s, 'm, 'o) Protocol.t ->
  adversary:'m Adversary.t ->
  unit ->
  ('o, 'm) Aat_runtime.Outcome.t
(** The structured-outcome entry point: identical execution to {!run}, but
    round-budget exhaustion returns
    [Liveness_timeout {report; undecided; reason}] (the partial report
    covers the parties that did decide, with full message and fault
    accounting) instead of raising. Protocol/adversary exceptions still
    escape — folding those into [Engine_error] is the campaign
    [Runner]'s job, so direct callers keep their stack traces.

    [fault_filter] (compiled from a fault plan by [Aat_faults.Inject])
    is installed into the run's mailbox and consulted on every posted
    letter; [Duplicate]/[Delay] decisions have no synchronous meaning
    and deliver normally. [crash_faults] force-crashes each listed party
    at its round, before the adversary moves and without consuming the
    corruption budget; a crash at round [r <= 0] means the party never
    runs. [watchdogs] are checked after every round's receives on the
    post-receive states (including parties deciding that round); each
    records at most one violation into the report. All three default to
    inert, in which case the execution — and the report, field for
    field — is identical to the pre-fault engine. *)

val run :
  n:int ->
  t:int ->
  ?max_rounds:int ->
  ?seed:int ->
  ?record_trace:bool ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  ?profile:bool ->
  ?observe:('s -> float option) ->
  ?fault_filter:Aat_runtime.Mailbox.fault_filter ->
  ?crash_faults:(Types.party_id * Types.round) list ->
  ?watchdogs:('s, 'm) Aat_runtime.Watchdog.t list ->
  protocol:('s, 'm, 'o) Protocol.t ->
  adversary:'m Adversary.t ->
  unit ->
  ('o, 'm) report
(** [max_rounds] defaults to {!Aat_runtime.Defaults.max_rounds} ([4n + 64]);
    pass the protocol's round bound to assert sharp termination. [seed]
    (default 0) feeds the adversary's RNG; honest protocols are
    deterministic. Raises {!Exceeded_max_rounds} when some honest party is
    still undecided after [max_rounds] — the raising veneer over
    {!run_outcome} for callers that treat a liveness failure as a test
    failure.

    [telemetry] (default {!Aat_telemetry.Telemetry.Sink.null}) receives one
    structured event per round — message/byte counts, corruptions, probe
    data — without affecting the execution in any way; with the null sink no
    telemetry work is done at all. [observe], if given, samples each live
    party's post-receive state once per telemetered round into the event's
    honest-value snapshot (the convergence curve's raw data); it is only
    called on telemetered runs.

    [profile] (default [false]) attaches a wall-clock/GC-allocation
    {!Aat_telemetry.Telemetry.profile_sample} to every telemetered round
    event. Profiling rides telemetry: with the null sink (or [profile]
    off) no clock is read and no sample is allocated, preserving the
    null-sink zero-cost discipline. Samples are measurements, not
    semantics — the execution itself is unaffected. *)

val output_of : ('o, 'm) report -> Types.party_id -> 'o
(** Output of an honest party. Raises [Not_found] for corrupted ids.
    Alias of {!Aat_runtime.Report.output_of}. *)

val honest_outputs : ('o, 'm) report -> 'o list

val initially_corrupted : ('o, 'm) report -> Types.party_id list
(** Parties corrupted before round 1 — the set Validity's hull excludes.
    Parties corrupted adaptively mid-run contributed their inputs while
    honest; the hull the protocol provably respects includes them. *)
