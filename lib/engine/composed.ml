(* Support types for Protocol.sequential: the state and message unions of a
   two-phase composition. Kept in their own module so Protocol's interface
   can name them. *)

type ('s1, 'o1, 's2) phase =
  | Phase1 of 's1
  | Bridged of 'o1 (* first phase decided, waiting for the round barrier *)
  | Phase2 of 'o1 * 's2 (* phase-one output kept to re-derive the protocol *)

type ('s1, 'o1, 's2) state = { n : int; phase : ('s1, 'o1, 's2) phase }

type ('m1, 'm2) msg = M1 of 'm1 | M2 of 'm2
