(** State and message unions for {!Protocol.sequential} — a two-phase
    protocol composition with a round barrier between the phases (TreeAA's
    line 4).

    The phase-one output is kept inside [Phase2] so the phase-two protocol
    (a cheap record of pure functions) can be re-derived on every step
    instead of stored, which would leak its type parameters into the state
    type. Messages are tagged so each phase only ever sees its own traffic
    (a Byzantine party sending phase-2 messages during phase 1, or vice
    versa, is filtered out by the composition). *)

type ('s1, 'o1, 's2) phase =
  | Phase1 of 's1
  | Bridged of 'o1
      (** phase one decided; waiting for the round barrier so all honest
          parties enter phase two simultaneously *)
  | Phase2 of 'o1 * 's2

type ('s1, 'o1, 's2) state = { n : int; phase : ('s1, 'o1, 's2) phase }

type ('m1, 'm2) msg = M1 of 'm1 | M2 of 'm2
