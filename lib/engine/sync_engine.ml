module Runtime = Aat_runtime

type ('out, 'msg) report = ('out, 'msg) Runtime.Report.t = {
  engine : string;
  n : int;
  t : int;
  outputs : (Types.party_id * 'out) list;
  termination_rounds : (Types.party_id * Types.round) list;
  rounds_used : int;
  corrupted : Types.party_id list;
  corruption_rounds : (Types.party_id * Types.round) list;
  honest_messages : int;
  adversary_messages : int;
  rejected_forgeries : int;
  trace : 'msg Types.letter list list;
  fault_stats : Runtime.Report.fault_stats;
  watchdog_violations : Runtime.Watchdog.violation list;
}

exception Exceeded_max_rounds of string

module Telemetry = Aat_telemetry.Telemetry

type ('s, 'o) slot =
  | Live of 's
  | Done of 'o * Types.round
  | Corrupt

let run_outcome (type s m o) ~n ~t ?max_rounds ?(seed = 0)
    ?(record_trace = false) ?(telemetry = Telemetry.Sink.null)
    ?(profile = false) ?(observe : (s -> float option) option)
    ?(fault_filter : Runtime.Mailbox.fault_filter option)
    ?(crash_faults : (Types.party_id * Types.round) list = [])
    ?(watchdogs : (s, m) Runtime.Watchdog.t list = [])
    ~(protocol : (s, m, o) Protocol.t) ~(adversary : m Adversary.t) () =
  if n < 1 then invalid_arg "Sync_engine.run: n < 1";
  if t < 0 || t >= n then invalid_arg "Sync_engine.run: need 0 <= t < n";
  let max_rounds =
    match max_rounds with Some r -> r | None -> Runtime.Defaults.max_rounds ~n
  in
  let rng = Aat_util.Rng.create seed in
  let corruption = Runtime.Corruption.create ~n ~t in
  let mailbox : m Runtime.Mailbox.t = Runtime.Mailbox.create ~n in
  (match fault_filter with
  | Some f -> Runtime.Mailbox.set_fault_filter mailbox f
  | None -> ());
  let crashed = ref 0 in
  let crash p ~at =
    if Runtime.Corruption.force_corrupt corruption ~at p then incr crashed
  in
  let round = ref 0 in
  Runtime.Corruption.corrupt_all corruption ~at:0
    (adversary.initial_corruptions ~n ~t rng);
  (* Fault-plan crashes scheduled at or before round 0 are in effect from
     the start: the party never runs. The environment's crashes land before
     the adversary moves, and do not consume its corruption budget. *)
  List.iter (fun (p, at) -> if at <= 0 then crash p ~at:0) crash_faults;
  let corrupted p = Runtime.Corruption.is_corrupted corruption p in
  (* Engine fast paths. A passive adversary never corrupts, never sends and
     never reads its view, so the per-round view materialisation (history
     retention, outbox reversal, corruption-flag copies) is skipped
     entirely. Without mid-run crash faults there is nothing that can
     retract a letter after submission either, so honest letters stream
     straight from [send] into the mailbox without ever being buffered —
     the hot path at n ~ 10^4 allocates no per-letter envelopes at all.
     The fault filter observes the same (round, src, dst) sequence as the
     buffered path: forward submission order, p ascending. *)
  let passive = adversary.Adversary.passive in
  let has_timed_crashes =
    List.exists (fun ((_ : Types.party_id), at) -> at >= 1) crash_faults
  in
  (* The delivered-letter list is only materialised for consumers that
     read letters: the adversary's history (any non-passive run), the
     recorded trace, and watchdogs. Counters cover everything else. *)
  let track_delivered = (not passive) || record_trace || watchdogs <> [] in
  Runtime.Mailbox.set_delivered_tracking mailbox track_delivered;
  (* Telemetry: with the null sink every per-round emission below is skipped
     wholesale ([live] is false), so untelemetered runs pay nothing. *)
  let live = not (Telemetry.Sink.is_null telemetry) in
  (* Profiling samples ride telemetry events, so with the null sink (or
     profiling off, the default) no clock is read and no sample is built. *)
  let profiling = live && profile in
  if live then
    telemetry.Telemetry.Sink.on_start
      {
        Telemetry.engine = "sync";
        protocol = protocol.name;
        adversary = adversary.name;
        n;
        t;
        seed;
        initial_corruptions = Runtime.Corruption.corrupted_list corruption;
      };
  let probe = if live then Some (Telemetry.Probe.fresh ()) else None in
  let saved_probe = if live then Some (Telemetry.Probe.swap probe) else None in
  let restore_probe () =
    match saved_probe with
    | Some prev -> ignore (Telemetry.Probe.swap prev)
    | None -> ()
  in
  Fun.protect ~finally:restore_probe @@ fun () ->
  let slots =
    Array.init n (fun p ->
        if corrupted p then Corrupt else Live (protocol.init ~self:p ~n))
  in
  let history = ref [] in
  let trace = ref [] in
  (* Watchdogs: each fires at most once (first violation wins) and is then
     retired; with no watchdogs installed every hook below is a no-op on a
     never-entered branch. *)
  let pending_watchdogs = ref watchdogs in
  let violations_rev = ref [] in
  let run_watchdogs ~round ~delivered ~states =
    match !pending_watchdogs with
    | [] -> ()
    | wds ->
        let corrupted_now = Runtime.Corruption.set corruption in
        pending_watchdogs :=
          List.filter
            (fun wd ->
              match
                Runtime.Watchdog.check wd ~round ~delivered ~states
                  ~corrupted:corrupted_now
              with
              | None -> true
              | Some detail ->
                  violations_rev :=
                    {
                      Runtime.Watchdog.watchdog = Runtime.Watchdog.name wd;
                      round;
                      detail;
                    }
                    :: !violations_rev;
                  false)
            wds
  in
  let undecided () =
    Array.exists (function Live _ -> true | Done _ | Corrupt -> false) slots
  in
  let undecided_parties () =
    let acc = ref [] in
    for p = n - 1 downto 0 do
      match slots.(p) with
      | Live _ -> acc := p :: !acc
      | Done _ | Corrupt -> ()
    done;
    !acc
  in
  (* Degenerate protocols may decide with zero communication (e.g. AA on a
     single-vertex tree): honor outputs available at initialization. *)
  Array.iteri
    (fun p slot ->
      match slot with
      | Live s -> (
          match protocol.output s with
          | Some o -> slots.(p) <- Done (o, 0)
          | None -> ())
      | Done _ | Corrupt -> ())
    slots;
  let timed_out = ref false in
  while undecided () && not !timed_out do
    if !round >= max_rounds then timed_out := true
    else begin
      incr round;
      let r = !round in
      let prof_t0 = if profiling then Unix.gettimeofday () else 0. in
      let prof_a0 = if profiling then Gc.allocated_bytes () else 0. in
      let forgeries_before = Runtime.Mailbox.rejected_forgeries mailbox in
      let dropped_before =
        (Runtime.Mailbox.fault_stats mailbox ~crashed:0).Runtime.Report.dropped
      in
      (* Per-round telemetry accumulators, shared by both paths. [sent_by]
         is handed to the sink, which may retain it: fresh per round. *)
      let sent_by = if live then Array.make n 0 else [||] in
      let honest_bytes = ref 0 and adversary_bytes = ref 0 in
      let honest_count = ref 0 and byz_count = ref 0 in
      let meter (l : m Types.letter) bytes =
        sent_by.(l.src) <- sent_by.(l.src) + 1;
        bytes := !bytes + Telemetry.payload_bytes l.body
      in
      if passive && not has_timed_crashes then begin
        (* Streamed fast path: nothing can retract a submitted letter, so
           each one goes straight from [send] into the flat mailbox. *)
        Runtime.Mailbox.begin_round ~round:r mailbox;
        Array.iteri
          (fun p slot ->
            match slot with
            | Live s ->
                List.iter
                  (fun (dst, body) ->
                    if dst < 0 || dst >= n then
                      invalid_arg
                        (Printf.sprintf "%s: p%d sent to invalid party %d"
                           protocol.name p dst);
                    Runtime.Mailbox.post_direct mailbox ~src:p ~dst body;
                    incr honest_count;
                    if live then begin
                      sent_by.(p) <- sent_by.(p) + 1;
                      honest_bytes :=
                        !honest_bytes + Telemetry.payload_bytes body
                    end)
                  (protocol.send ~round:r ~self:p s)
            | Done _ | Corrupt -> ())
          slots;
        Runtime.Mailbox.note_honest mailbox !honest_count
      end
      else if passive then begin
        (* Passive, but environment crashes can retract this round's
           letters: buffer the outbox, retract, then post. Still no view,
           history or screening — the adversary reads none of it. *)
        let honest_outbox = ref [] in
        Array.iteri
          (fun p slot ->
            match slot with
            | Live s ->
                List.iter
                  (fun (dst, body) ->
                    if dst < 0 || dst >= n then
                      invalid_arg
                        (Printf.sprintf "%s: p%d sent to invalid party %d"
                           protocol.name p dst)
                    else
                      honest_outbox :=
                        { Types.src = p; dst; body } :: !honest_outbox)
                  (protocol.send ~round:r ~self:p s)
            | Done _ | Corrupt -> ())
          slots;
        List.iter
          (fun (p, at) ->
            if at = r then begin
              crash p ~at:r;
              if p >= 0 && p < n && corrupted p then begin
                slots.(p) <- Corrupt;
                honest_outbox :=
                  List.filter
                    (fun (l : m Types.letter) -> l.src <> p)
                    !honest_outbox
              end
            end)
          crash_faults;
        Runtime.Mailbox.begin_round ~round:r mailbox;
        (* [honest_outbox] is in reverse submission order, so
           [post_last_wins] walks it forward — the same per-letter fault
           decision sequence as the streamed path. *)
        Runtime.Mailbox.post_last_wins mailbox !honest_outbox;
        honest_count := List.length !honest_outbox;
        Runtime.Mailbox.note_honest mailbox !honest_count;
        if live then
          List.iter (fun l -> meter l honest_bytes) !honest_outbox
      end
      else begin
        (* Full path: a live adversary gets its rushing view, adaptive
           corruptions and screened deliveries, exactly as before. *)
        (* 1. honest outboxes *)
        let honest_outbox = ref [] in
        Array.iteri
          (fun p slot ->
            match slot with
            | Live s ->
                List.iter
                  (fun (dst, body) ->
                    if dst < 0 || dst >= n then
                      invalid_arg
                        (Printf.sprintf "%s: p%d sent to invalid party %d"
                           protocol.name p dst)
                    else
                      honest_outbox :=
                        { Types.src = p; dst; body } :: !honest_outbox)
                  (protocol.send ~round:r ~self:p s)
            | Done _ | Corrupt -> ())
          slots;
        (* 2a. fault-plan crashes land first (the environment acts before
           the adversary): a party crashing in round [r] has its round-[r]
           letters retracted, exactly like an adaptive corruption. *)
        List.iter
          (fun (p, at) ->
            if at = r then begin
              crash p ~at:r;
              if p >= 0 && p < n && corrupted p then begin
                slots.(p) <- Corrupt;
                honest_outbox :=
                  List.filter
                    (fun (l : m Types.letter) -> l.src <> p)
                    !honest_outbox
              end
            end)
          crash_faults;
        let view () =
          {
            Adversary.round = r;
            n;
            t;
            corrupted = Runtime.Corruption.flags corruption;
            honest_outbox = List.rev !honest_outbox;
            history = !history;
            rng;
          }
        in
        (* 2b. adaptive corruptions: newly corrupted parties' messages of
           this round are retracted and their state handed to the
           adversary (conceptually — we just drop it). *)
        let extra = adversary.corrupt_more (view ()) in
        List.iter
          (fun p ->
            ignore (Runtime.Corruption.corrupt corruption ~at:r p);
            if p >= 0 && p < n && corrupted p then begin
              slots.(p) <- Corrupt;
              honest_outbox :=
                List.filter
                  (fun (l : m Types.letter) -> l.src <> p)
                  !honest_outbox
            end)
          extra;
        (* 3. adversary messages, authenticated-channel check *)
        let byz_letters =
          Runtime.Mailbox.screen mailbox ~adversary:adversary.name
            ~corrupted:(Runtime.Corruption.set corruption)
            (adversary.deliver (view ()))
        in
        (* 4. delivery through the shared mailbox: at most one letter per
           (src, dst) pair. Adversary letters are posted first so that a
           Byzantine double-send to the same recipient resolves to the
           adversary's *last* choice, and an adversary letter from a
           newly-corrupted party overrides the retracted honest one
           (already removed above). The installed fault filter (if any) is
           consulted inside [post]. *)
        Runtime.Mailbox.begin_round ~round:r mailbox;
        Runtime.Mailbox.post_last_wins mailbox byz_letters;
        Runtime.Mailbox.post_last_wins mailbox !honest_outbox;
        honest_count := List.length !honest_outbox;
        byz_count := List.length byz_letters;
        Runtime.Mailbox.note_honest mailbox !honest_count;
        Runtime.Mailbox.note_adversary mailbox !byz_count;
        history := Runtime.Mailbox.delivered mailbox :: !history;
        if live then begin
          List.iter (fun l -> meter l honest_bytes) !honest_outbox;
          List.iter (fun l -> meter l adversary_bytes) byz_letters
        end
      end;
      let delivered = Runtime.Mailbox.delivered mailbox in
      if record_trace then trace := delivered :: !trace;
      (* 5. honest receive + termination. On telemetered runs with an
         [observe] function, each party's post-receive state is sampled here —
         including parties deciding this round, whose state is about to be
         discarded. Watchdogs see the same post-receive states. *)
      let snapshot_rev = ref [] in
      let wd_states_rev = ref [] in
      let wd_live = !pending_watchdogs <> [] in
      Array.iteri
        (fun p slot ->
          match slot with
          | Live s ->
              let inbox = Runtime.Mailbox.inbox mailbox p in
              let s' = protocol.receive ~round:r ~self:p ~inbox s in
              (if live then
                 match observe with
                 | Some f -> (
                     match f s' with
                     | Some v -> snapshot_rev := (p, v) :: !snapshot_rev
                     | None -> ())
                 | None -> ());
              if wd_live then wd_states_rev := (p, s') :: !wd_states_rev;
              (match protocol.output s' with
              | Some o -> slots.(p) <- Done (o, r)
              | None -> slots.(p) <- Live s')
          | Done _ | Corrupt -> ())
        slots;
      run_watchdogs ~round:r ~delivered ~states:(List.rev !wd_states_rev);
      (* 6. telemetry: one event per round, after receives so that probes
         fired inside [receive] and post-round state snapshots are included *)
      if live then begin
        let grades, marks =
          match probe with
          | Some c -> Telemetry.Probe.flush c
          | None -> (None, [])
        in
        let marks =
          (* Fault accounting rides the existing free-form [marks] channel,
             and only when the filter actually dropped something this round —
             benign streams are byte-identical to before. *)
          let dropped_now =
            (Runtime.Mailbox.fault_stats mailbox ~crashed:0)
              .Runtime.Report.dropped - dropped_before
          in
          if dropped_now > 0 then ("fault_dropped", dropped_now) :: marks
          else marks
        in
        telemetry.Telemetry.Sink.on_round
          {
            Telemetry.round = r;
            honest_msgs = !honest_count;
            adversary_msgs = !byz_count;
            delivered_msgs = Runtime.Mailbox.delivered_count mailbox;
            rejected_forgeries =
              Runtime.Mailbox.rejected_forgeries mailbox - forgeries_before;
            honest_bytes = !honest_bytes;
            adversary_bytes = !adversary_bytes;
            sent_by;
            corruptions =
              List.filter_map
                (fun (p, cr) -> if cr = r then Some p else None)
                (Runtime.Corruption.rounds_list corruption);
            grades;
            marks;
            snapshot = List.rev !snapshot_rev;
            profile =
              (if profiling then
                 Some
                   {
                     Telemetry.wall_ns =
                       int_of_float
                         ((Unix.gettimeofday () -. prof_t0) *. 1e9);
                     alloc_bytes = Gc.allocated_bytes () -. prof_a0;
                   }
               else None);
          }
      end
    end
  done;
  if live then
    telemetry.Telemetry.Sink.on_stop
      {
        Telemetry.rounds = !round;
        honest_messages = Runtime.Mailbox.honest_messages mailbox;
        adversary_messages = Runtime.Mailbox.adversary_messages mailbox;
      };
  let outputs = ref [] and terms = ref [] in
  Array.iteri
    (fun p slot ->
      match slot with
      | Done (o, r) ->
          outputs := (p, o) :: !outputs;
          terms := (p, r) :: !terms
      | Corrupt | Live _ -> ())
    slots;
  let report =
    {
      engine = "sync";
      n;
      t;
      outputs = List.rev !outputs;
      termination_rounds = List.rev !terms;
      rounds_used = !round;
      corrupted = Runtime.Corruption.corrupted_list corruption;
      corruption_rounds = Runtime.Corruption.rounds_list corruption;
      honest_messages = Runtime.Mailbox.honest_messages mailbox;
      adversary_messages = Runtime.Mailbox.adversary_messages mailbox;
      rejected_forgeries = Runtime.Mailbox.rejected_forgeries mailbox;
      trace = List.rev !trace;
      fault_stats = Runtime.Mailbox.fault_stats mailbox ~crashed:!crashed;
      watchdog_violations = List.rev !violations_rev;
    }
  in
  if !timed_out then
    Runtime.Outcome.Liveness_timeout
      {
        Runtime.Outcome.report;
        undecided = undecided_parties ();
        reason =
          Printf.sprintf "%s: honest party undecided after %d rounds"
            protocol.name max_rounds;
      }
  else Runtime.Outcome.Completed report

let run ~n ~t ?max_rounds ?seed ?record_trace ?telemetry ?profile ?observe
    ?fault_filter ?crash_faults ?watchdogs ~protocol ~adversary () =
  match
    run_outcome ~n ~t ?max_rounds ?seed ?record_trace ?telemetry ?profile
      ?observe ?fault_filter ?crash_faults ?watchdogs ~protocol ~adversary ()
  with
  | Runtime.Outcome.Completed report -> report
  | Runtime.Outcome.Liveness_timeout { reason; _ } ->
      raise (Exceeded_max_rounds reason)
  | Runtime.Outcome.Engine_error _ ->
      (* [run_outcome] lets protocol/adversary exceptions escape; only
         [Runner.run] folds them into [Engine_error]. *)
      assert false

let output_of = Runtime.Report.output_of

let honest_outputs = Runtime.Report.honest_outputs

let initially_corrupted = Runtime.Report.initially_corrupted
