type ('out, 'msg) report = {
  outputs : (Types.party_id * 'out) list;
  termination_rounds : (Types.party_id * Types.round) list;
  rounds_used : int;
  corrupted : Types.party_id list;
  corruption_rounds : (Types.party_id * Types.round) list;
  honest_messages : int;
  adversary_messages : int;
  rejected_forgeries : int;
  trace : 'msg Types.letter list list;
}

exception Exceeded_max_rounds of string

let log_src = Logs.Src.create "aat.engine" ~doc:"synchronous engine"

module Log = (val Logs.src_log log_src)

module Telemetry = Aat_telemetry.Telemetry

type ('s, 'o) slot =
  | Live of 's
  | Done of 'o * Types.round
  | Corrupt

let run (type s m o) ~n ~t ?max_rounds ?(seed = 0) ?(record_trace = false)
    ?(telemetry = Telemetry.Sink.null) ?(observe : (s -> float option) option)
    ~(protocol : (s, m, o) Protocol.t) ~(adversary : m Adversary.t) () =
  if n < 1 then invalid_arg "Sync_engine.run: n < 1";
  if t < 0 || t >= n then invalid_arg "Sync_engine.run: need 0 <= t < n";
  let max_rounds = match max_rounds with Some r -> r | None -> (4 * n) + 64 in
  let rng = Aat_util.Rng.create seed in
  let corrupted = Array.make n false in
  let corrupted_round = Array.make n (-1) in
  let budget = ref t in
  let round = ref 0 in
  let corrupt p =
    if p >= 0 && p < n && (not corrupted.(p)) && !budget > 0 then begin
      corrupted.(p) <- true;
      corrupted_round.(p) <- !round;
      decr budget
    end
  in
  List.iter corrupt (adversary.initial_corruptions ~n ~t rng);
  (* Telemetry: with the null sink every per-round emission below is skipped
     wholesale ([live] is false), so untelemetered runs pay nothing. *)
  let live = not (Telemetry.Sink.is_null telemetry) in
  if live then
    telemetry.Telemetry.Sink.on_start
      {
        Telemetry.engine = "sync";
        protocol = protocol.name;
        adversary = adversary.name;
        n;
        t;
        seed;
        initial_corruptions =
          List.filter (fun p -> corrupted.(p)) (List.init n Fun.id);
      };
  let probe = if live then Some (Telemetry.Probe.fresh ()) else None in
  let saved_probe = if live then Some (Telemetry.Probe.swap probe) else None in
  let restore_probe () =
    match saved_probe with
    | Some prev -> ignore (Telemetry.Probe.swap prev)
    | None -> ()
  in
  Fun.protect ~finally:restore_probe @@ fun () ->
  let slots =
    Array.init n (fun p ->
        if corrupted.(p) then Corrupt else Live (protocol.init ~self:p ~n))
  in
  let history = ref [] in
  let trace = ref [] in
  let honest_messages = ref 0 in
  let adversary_messages = ref 0 in
  let rejected_forgeries = ref 0 in
  let undecided () =
    Array.exists (function Live _ -> true | Done _ | Corrupt -> false) slots
  in
  (* Degenerate protocols may decide with zero communication (e.g. AA on a
     single-vertex tree): honor outputs available at initialization. *)
  Array.iteri
    (fun p slot ->
      match slot with
      | Live s -> (
          match protocol.output s with
          | Some o -> slots.(p) <- Done (o, 0)
          | None -> ())
      | Done _ | Corrupt -> ())
    slots;
  while undecided () do
    incr round;
    let r = !round in
    let forgeries_before = !rejected_forgeries in
    if r > max_rounds then
      raise
        (Exceeded_max_rounds
           (Printf.sprintf "%s: honest party undecided after %d rounds"
              protocol.name max_rounds));
    (* 1. honest outboxes *)
    let honest_outbox = ref [] in
    Array.iteri
      (fun p slot ->
        match slot with
        | Live s ->
            List.iter
              (fun (dst, body) ->
                if dst < 0 || dst >= n then
                  invalid_arg
                    (Printf.sprintf "%s: p%d sent to invalid party %d"
                       protocol.name p dst)
                else honest_outbox := { Types.src = p; dst; body } :: !honest_outbox)
              (protocol.send ~round:r ~self:p s)
        | Done _ | Corrupt -> ())
      slots;
    let view () =
      {
        Adversary.round = r;
        n;
        t;
        corrupted = Array.copy corrupted;
        honest_outbox = List.rev !honest_outbox;
        history = !history;
        rng;
      }
    in
    (* 2. adaptive corruptions: newly corrupted parties' messages of this
       round are retracted and their state handed to the adversary
       (conceptually — we just drop it). *)
    let extra = adversary.corrupt_more (view ()) in
    List.iter
      (fun p ->
        corrupt p;
        if corrupted.(p) then begin
          (match slots.(p) with
          | Live _ -> slots.(p) <- Corrupt
          | Done _ | Corrupt -> slots.(p) <- Corrupt);
          honest_outbox :=
            List.filter (fun (l : m Types.letter) -> l.src <> p) !honest_outbox
        end)
      extra;
    (* 3. adversary messages, authenticated-channel check *)
    let byz_letters =
      List.filter
        (fun (l : m Types.letter) ->
          if l.dst < 0 || l.dst >= n then false
          else if corrupted.(l.src) then true
          else begin
            incr rejected_forgeries;
            Log.warn (fun f ->
                f "adversary %s tried to forge honest sender p%d" adversary.name
                  l.src);
            false
          end)
        (adversary.deliver (view ()))
    in
    (* 4. delivery: at most one letter per (src, dst) pair; for the
       adversary the last letter submitted wins, and an adversary letter
       from a newly-corrupted party overrides the retracted honest one
       (already removed above). *)
    let inboxes : (Types.party_id, m Types.envelope list) Hashtbl.t =
      Hashtbl.create n
    in
    let seen_pairs = Hashtbl.create 64 in
    let accepted = ref [] in
    let post (l : m Types.letter) =
      if not (Hashtbl.mem seen_pairs (l.src, l.dst)) then begin
        Hashtbl.replace seen_pairs (l.src, l.dst) ();
        accepted := l :: !accepted;
        let prev = Option.value ~default:[] (Hashtbl.find_opt inboxes l.dst) in
        Hashtbl.replace inboxes l.dst
          ({ Types.sender = l.src; payload = l.body } :: prev)
      end
    in
    (* Adversary letters are posted first so that a Byzantine double-send to
       the same recipient resolves to the adversary's *last* choice:
       reverse, then first-posted wins. *)
    List.iter post (List.rev byz_letters);
    List.iter post (List.rev !honest_outbox);
    let delivered = !accepted in
    honest_messages := !honest_messages + List.length !honest_outbox;
    adversary_messages := !adversary_messages + List.length byz_letters;
    history := delivered :: !history;
    if record_trace then trace := delivered :: !trace;
    (* 5. honest receive + termination. On telemetered runs with an
       [observe] function, each party's post-receive state is sampled here —
       including parties deciding this round, whose state is about to be
       discarded. *)
    let snapshot_rev = ref [] in
    Array.iteri
      (fun p slot ->
        match slot with
        | Live s ->
            let inbox =
              Option.value ~default:[] (Hashtbl.find_opt inboxes p)
              |> List.sort (fun (a : m Types.envelope) b ->
                     compare a.sender b.sender)
            in
            let s' = protocol.receive ~round:r ~self:p ~inbox s in
            (if live then
               match observe with
               | Some f -> (
                   match f s' with
                   | Some v -> snapshot_rev := (p, v) :: !snapshot_rev
                   | None -> ())
               | None -> ());
            (match protocol.output s' with
            | Some o -> slots.(p) <- Done (o, r)
            | None -> slots.(p) <- Live s')
        | Done _ | Corrupt -> ())
      slots;
    (* 6. telemetry: one event per round, after receives so that probes
       fired inside [receive] and post-round state snapshots are included *)
    if live then begin
      let sent_by = Array.make n 0 in
      let honest_bytes = ref 0 and adversary_bytes = ref 0 in
      List.iter
        (fun (l : m Types.letter) ->
          sent_by.(l.src) <- sent_by.(l.src) + 1;
          honest_bytes := !honest_bytes + Telemetry.payload_bytes l.body)
        !honest_outbox;
      List.iter
        (fun (l : m Types.letter) ->
          sent_by.(l.src) <- sent_by.(l.src) + 1;
          adversary_bytes := !adversary_bytes + Telemetry.payload_bytes l.body)
        byz_letters;
      let grades, marks =
        match probe with
        | Some c -> Telemetry.Probe.flush c
        | None -> (None, [])
      in
      telemetry.Telemetry.Sink.on_round
        {
          Telemetry.round = r;
          honest_msgs = List.length !honest_outbox;
          adversary_msgs = List.length byz_letters;
          delivered_msgs = List.length delivered;
          rejected_forgeries = !rejected_forgeries - forgeries_before;
          honest_bytes = !honest_bytes;
          adversary_bytes = !adversary_bytes;
          sent_by;
          corruptions =
            List.filter (fun p -> corrupted_round.(p) = r) (List.init n Fun.id);
          grades;
          marks;
          snapshot = List.rev !snapshot_rev;
        }
    end
  done;
  if live then
    telemetry.Telemetry.Sink.on_stop
      {
        Telemetry.rounds = !round;
        honest_messages = !honest_messages;
        adversary_messages = !adversary_messages;
      };
  let outputs = ref [] and terms = ref [] in
  Array.iteri
    (fun p slot ->
      match slot with
      | Done (o, r) ->
          outputs := (p, o) :: !outputs;
          terms := (p, r) :: !terms
      | Corrupt -> ()
      | Live _ -> assert false)
    slots;
  {
    outputs = List.rev !outputs;
    termination_rounds = List.rev !terms;
    rounds_used = !round;
    corrupted =
      List.filter (fun p -> corrupted.(p)) (List.init n Fun.id);
    corruption_rounds =
      List.filter_map
        (fun p -> if corrupted.(p) then Some (p, corrupted_round.(p)) else None)
        (List.init n Fun.id);
    honest_messages = !honest_messages;
    adversary_messages = !adversary_messages;
    rejected_forgeries = !rejected_forgeries;
    trace = List.rev !trace;
  }

let output_of report p = List.assoc p report.outputs

let honest_outputs report = List.map snd report.outputs

let initially_corrupted report =
  List.filter_map
    (fun (p, r) -> if r = 0 then Some p else None)
    report.corruption_rounds
