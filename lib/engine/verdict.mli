(** Checking the AA properties of Definition 1 on finished executions.

    The checkers take the honest parties' inputs and outputs of one run and
    decide Termination / Validity / ε-Agreement. Tree-valued runs are
    checked by [Aat_treeaa.Tree_verdict], which layers convex hulls on this
    module's shape. *)

type t = {
  termination : bool;  (** every honest party produced an output *)
  validity : bool;  (** outputs within the range/hull of honest inputs *)
  agreement : bool;  (** outputs pairwise within the agreement distance *)
}

val all_ok : t -> bool

val pp : Format.formatter -> t -> unit

val conj : t -> t -> t

val real :
  eps:float -> n_honest:int -> honest_inputs:float list ->
  honest_outputs:float list -> t
(** Definition 1 on ℝ: outputs in [\[min inputs, max inputs\]] and pairwise
    within [eps]. [n_honest] is the number of parties that were honest at
    the end of the run; termination fails if fewer outputs were produced. *)

val real_of_report :
  eps:float ->
  inputs:(Types.party_id -> float) ->
  value:('o -> float) ->
  ('o, 'm) Aat_runtime.Report.t ->
  t
(** {!real} applied straight to a unified run report, from either engine:
    the Validity hull is over the inputs of {e initially}-honest parties
    and Termination quantifies over {e finally}-honest ones, per the
    conventions of {!Aat_runtime.Report}. [inputs] maps a party to its
    input; [value] extracts the agreed-upon real from a protocol output. *)

val spread : float list -> float
(** [max - min] of a non-empty list; 0. for []. The honest range the
    convergence experiments track. *)
