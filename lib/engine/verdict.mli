(** Checking the AA properties of Definition 1 on finished executions.

    The checkers take the honest parties' inputs and outputs of one run and
    decide Termination / Validity / ε-Agreement. Tree-valued runs are
    checked by [Aat_treeaa.Tree_verdict], which layers convex hulls on this
    module's shape. *)

type t = {
  termination : bool;  (** every honest party produced an output *)
  validity : bool;  (** outputs within the range/hull of honest inputs *)
  agreement : bool;  (** outputs pairwise within the agreement distance *)
}

val all_ok : t -> bool

val pp : Format.formatter -> t -> unit

val conj : t -> t -> t

(** {1 Grading under fault plans}

    A verdict says {e whether} the properties held; a grade says whether a
    failure is the protocol's fault. A run whose fault plan crashed more
    than [t] parties (so fewer than [n - t] live honest parties remain) —
    or lost letters a Byzantine adversary could not have lost — failed
    {e outside} the model the paper proves anything about: such failures
    are [Excused], not [Violated]. Campaigns aggregate the two
    separately, so a chaos grid distinguishes "the protocol broke" from
    "the environment broke the model". *)

type graded =
  | Passed  (** all three properties held *)
  | Violated of t  (** a genuine in-model failure: the carried verdict *)
  | Excused of { reason : string; verdict : t }
      (** failed, but outside the model's hypotheses *)

val grade : n:int -> t:int -> faulty:int -> ?excuse:string -> t -> graded
(** [faulty] is the run's total corrupted-or-crashed party count. A
    failed verdict is excused when [faulty > t], or when the caller
    supplies [?excuse] (e.g. "the fault plan drops letters, the model
    does not"). A verdict with all properties holding is [Passed]
    regardless. *)

val graded_label : graded -> string
(** ["passed"] / ["violated"] / ["excused"] — the campaign JSONL tags. *)

val pp_graded : Format.formatter -> graded -> unit

val real :
  eps:float -> n_honest:int -> honest_inputs:float list ->
  honest_outputs:float list -> t
(** Definition 1 on ℝ: outputs in [\[min inputs, max inputs\]] and pairwise
    within [eps]. [n_honest] is the number of parties that were honest at
    the end of the run; termination fails if fewer outputs were produced. *)

val real_of_report :
  eps:float ->
  inputs:(Types.party_id -> float) ->
  value:('o -> float) ->
  ('o, 'm) Aat_runtime.Report.t ->
  t
(** {!real} applied straight to a unified run report, from either engine:
    the Validity hull is over the inputs of {e initially}-honest parties
    and Termination quantifies over {e finally}-honest ones, per the
    conventions of {!Aat_runtime.Report}. [inputs] maps a party to its
    input; [value] extracts the agreed-upon real from a protocol output. *)

val spread : float list -> float
(** [max - min] of a non-empty list; 0. for []. The honest range the
    convergence experiments track. *)
