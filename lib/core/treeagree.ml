(** Treeagree — round-optimal Byzantine approximate agreement on trees.

    The one-stop public API of the library, re-exporting every component of
    the reproduction of "Towards Round-Optimal Approximate Agreement on
    Trees" (PODC 2025) under stable names, plus the {!Quick} facade for
    programs that just want to run an agreement.

    {1 Layers}

    - trees: {!Tree}, {!Rooted}, {!Paths}, {!Metrics}, {!Euler_tour},
      {!Lca}, {!Convex_hull}, {!Projection}, {!Generate}, {!Prufer},
      {!Tree_io}
    - runtime substrate (shared by both engines): {!Types}, {!Mailbox},
      {!Report}, {!Defaults}, {!Adversary}
    - simulation: {!Engine} (synchronous), {!Async_engine} + {!Round_sim}
      (asynchronous), {!Protocol}, {!Verdict}, {!Strategies}, {!Spoiler},
      {!Wedge}, {!Telemetry}
    - protocols: {!Gradecast}, {!Real_aa} (the [6] building block),
      {!Iterated_midpoint} (baselines), {!Path_aa}, {!Known_path_aa},
      {!Paths_finder}, {!Tree_aa} (the paper's contribution),
      {!Nr_baseline}
    - batch execution: {!Runner} (one erased entry point per protocol),
      {!Pool} (deterministic [Domain] fan-out), {!Campaign} (declarative
      batch specs with per-task seed splitting)
    - observability: {!Spec_io} (spec codec), {!Trace} (parsed traces,
      diffing, blame), {!Recorder} (flight records), {!Replay}
      (deterministic replay with divergence detection)
    - analysis: {!Fekete}, {!Chain}, {!Rounds}, {!Tree_verdict} *)

module Rng = Aat_util.Rng

(* trees *)
module Tree = Aat_tree.Labeled_tree
module Rooted = Aat_tree.Rooted
module Paths = Aat_tree.Paths
module Metrics = Aat_tree.Metrics
module Euler_tour = Aat_tree.Euler_tour
module Lca = Aat_tree.Lca
module Convex_hull = Aat_tree.Convex_hull
module Projection = Aat_tree.Projection
module Generate = Aat_tree.Generate
module Prufer = Aat_tree.Prufer
module Tree_io = Aat_tree.Tree_io

(* runtime substrate — one transport/adversary/report layer under both
   engines; [Engine.run] and [Async_engine.run] both return [Report.t] *)
module Types = Aat_engine.Types
module Party_set = Aat_runtime.Party_set
module Mailbox = Aat_runtime.Mailbox
module Report = Aat_runtime.Report
module Defaults = Aat_runtime.Defaults
module Outcome = Aat_runtime.Outcome
module Watchdog = Aat_runtime.Watchdog

(* fault injection: declarative plans compiled onto the Mailbox, invariant
   watchdog catalog, and the plan grammar used by the --fault-plan flags *)
module Fault_plan = Aat_faults.Plan
module Fault_plan_io = Aat_faults.Plan_io
module Fault_inject = Aat_faults.Inject
module Fault_watchdogs = Aat_faults.Watchdog

(* simulation *)
module Telemetry = Aat_telemetry.Telemetry
module Protocol = Aat_engine.Protocol
module Composed = Aat_engine.Composed
module Engine = Aat_engine.Sync_engine
module Adversary = Aat_engine.Adversary
module Verdict = Aat_engine.Verdict
module Strategies = Aat_adversary.Strategies
module Spoiler = Aat_adversary.Spoiler
module Wedge = Aat_adversary.Wedge
module Compose_adversary = Aat_adversary.Compose
module Genome = Aat_adversary.Genome

(* protocols *)
module Gradecast = Aat_gradecast.Gradecast
module Real_aa = Aat_realaa.Bdh
module Early_real_aa = Aat_realaa.Early_bdh
module Iterated_midpoint = Aat_realaa.Iterated_midpoint
module Closest_int = Aat_realaa.Closest_int
module Trim = Aat_realaa.Trim
module Rounds = Aat_realaa.Rounds
module Path_aa = Aat_treeaa.Path_aa
module Known_path_aa = Aat_treeaa.Known_path_aa
module Paths_finder = Aat_treeaa.Paths_finder
module Tree_aa = Aat_treeaa.Tree_aa
module Nr_baseline = Aat_treeaa.Nr_baseline
module Tree_verdict = Aat_treeaa.Tree_verdict

(* asynchronous model *)
module Async_engine = Aat_async.Async_engine
module Round_sim = Aat_async.Round_sim
module Bracha = Aat_async.Bracha
module Async_aa = Aat_async.Async_aa

(* batch execution: the unified Runner API and the campaign driver *)
module Runner = Aat_campaign.Runner
module Pool = Aat_campaign.Pool
module Campaign = Aat_campaign.Campaign

(* observability: spec codec, parsed traces + blame, flight recorder,
   deterministic replay *)
module Spec_io = Aat_obs.Spec_io
module Trace = Aat_obs.Trace
module Recorder = Aat_obs.Recorder
module Replay = Aat_obs.Replay

(* service observability: the metrics registry and the span tracer
   ([Metrics] names the tree-metric module above, so the registry is
   exported under the Obs_ prefix; [Obs.Metrics]/[Obs.Span] also work) *)
module Obs = Aat_obs
module Obs_metrics = Aat_obs.Metrics
module Obs_span = Aat_obs.Span

(* the sharded multi-process campaign service with crash-resume *)
module Service = Aat_service.Service
module Service_wire = Aat_service.Wire
module Service_chaos = Aat_service.Chaos
module Service_clock = Aat_service.Clock

(* authenticated setting *)
module Auth = Aat_auth.Auth

(* analysis *)
module Fekete = Aat_lowerbound.Fekete
module Chain = Aat_lowerbound.Chain

(* adversary synthesis: genome search against the lower bound *)
module Synth = Aat_synth.Synth

(** High-level facade: run TreeAA and get the honest outputs, checked. *)
module Quick = struct
  type outcome = {
    outputs : (Types.party_id * Tree.vertex) list;
        (** honest parties' outputs *)
    rounds : int;  (** rounds used (equals the fixed schedule) *)
    verdict : Verdict.t;  (** Definition 2 checked on this run *)
    grade : Verdict.graded;
        (** fault-aware reading: a failure under an out-of-model fault
            plan is [Excused], not [Violated] *)
    status : string;
        (** ["completed"] or ["liveness-timeout"]; a timed-out run
            returns its partial report instead of raising *)
    report : (Tree.vertex, Tree_aa.msg) Engine.report;
  }

  (** [agree ~tree ~inputs ~t ()] runs TreeAA for [n = Array.length inputs]
      parties where party [i] inputs vertex [inputs.(i)], against
      [adversary] (default: none), and checks Definition 2. Requires
      [t < n/3] for the guarantees to hold (not enforced — the resilience
      experiments deliberately cross the boundary). [telemetry] streams
      per-round events (message counts, convergence snapshots) into the
      given sink; see {!Telemetry}. [fault_plan] (default: none) injects
      crash/omission/partition faults, deterministically in [seed]; it
      must be {!Fault_plan.sync_compatible}. [watch] installs the
      corruption-budget watchdog. *)
  let agree ?(seed = 0) ?adversary ?telemetry ?(fault_plan = Fault_plan.empty)
      ?(watch = false) ~tree ~inputs ~t () =
    let adversary =
      match adversary with
      | Some a -> a
      | None -> Adversary.passive "none"
    in
    let n = Array.length inputs in
    let fault_filter =
      if Fault_plan.is_empty fault_plan then None
      else Some (Fault_inject.filter ~engine:`Sync ~seed fault_plan)
    in
    let excuse status =
      if Fault_plan.lossy fault_plan then
        Some "fault plan drops letters (outside the reliable-channel model)"
      else if status = "liveness-timeout" && not (Fault_plan.is_empty fault_plan)
      then Some "liveness timeout under an active fault plan"
      else None
    in
    let finish status (report : (_, _) Engine.report) =
      (* Validity's hull: inputs of initially-honest parties (an adaptively
         corrupted party contributed its input while honest). Termination:
         every finally-honest party decided. *)
      let verdict, grade =
        Tree_verdict.grade_report ?excuse:(excuse status) ~tree ~inputs
          ~value:Fun.id report
      in
      {
        outputs = report.Engine.outputs;
        rounds = report.Engine.rounds_used;
        verdict;
        grade;
        status;
        report;
      }
    in
    match
      Engine.run_outcome ~n ~t ~seed ?telemetry ~observe:Tree_aa.observe
        ?fault_filter
        ~crash_faults:(Fault_plan.crashes fault_plan)
        ~watchdogs:
          (if watch then
             (* planned crashes are budget-exempt; allow for them *)
             [
               Fault_watchdogs.corruption_budget
                 ~t:(t + Fault_plan.crash_count fault_plan);
             ]
           else [])
        ~max_rounds:(max 1 (Tree_aa.rounds ~tree))
        ~protocol:(Tree_aa.protocol ~tree ~inputs:(fun self -> inputs.(self)) ~t)
        ~adversary ()
    with
    | Outcome.Completed report -> finish "completed" report
    | Outcome.Liveness_timeout { report; _ } -> finish "liveness-timeout" report
    | Outcome.Engine_error { exn_text; _ } -> failwith exn_text

  (** Labels of the agreed vertices, for display. *)
  let output_labels tree outcome =
    List.map (fun (p, v) -> (p, Tree.label tree v)) outcome.outputs
end
