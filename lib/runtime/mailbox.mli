(** The transport core shared by both engines.

    One mailbox per run holds the three pieces of network mechanics that
    used to be duplicated across the engines:

    - {b authenticated-channel screening}: adversary letters claiming an
      honest (or out-of-range) sender are dropped, counted and logged —
      forgeries are impossible in the model, so the engine enforces it;
      letters to out-of-range recipients vanish silently (sending into the
      void is pointless, not forbidden);
    - {b per-pair delivery dedup} (synchronous rounds only): at most one
      letter per [(src, dst)] pair per round, first posted wins;
    - {b accounting}: cumulative honest / adversarial message counts and
      rejected-forgery counts, reported identically by both engines in the
      unified {!Report.t}.

    The asynchronous engine uses only screening and accounting — its
    delivery is the scheduler's business; the synchronous engine also runs
    its per-round delivery ([begin_round] / [post] / [inbox]) through the
    mailbox.

    Internally the per-round state is flat: an n×n seen bitmatrix plus
    one payload row per recipient, both preallocated and reused across
    rounds, so a round of all-pairs traffic costs O(1) per letter and no
    per-read sorting — [inbox] walks the recipient's bit row, which is
    sorted by construction. *)

type 'msg t

val create : n:int -> 'msg t

(** {1 Fault injection (both engines)} *)

type fault_decision =
  | Deliver  (** pass through untouched *)
  | Drop  (** the letter vanishes (omission / partition / crash window) *)
  | Duplicate
      (** enqueue the letter twice — async engine only; the synchronous
          per-pair dedup makes duplication a no-op there *)
  | Delay of int
      (** defer delivery by this many scheduler steps — async engine
          only, clamped to the patience bound so eventual delivery is
          preserved *)

type fault_filter =
  round:Types.round -> src:Types.party_id -> dst:Types.party_id ->
  fault_decision
(** A compiled fault plan: a pure-looking (internally seeded) decision
    function over a letter's routing metadata. Decisions never inspect
    payloads, so one filter serves any message type. Compiled from a
    [Fault_plan.t] by [Aat_faults.Inject.filter] with a dedicated
    SplitMix64 stream split from the run seed — the decision sequence is
    a function of the run seed alone, keeping campaigns bit-identical
    for any [--workers]. *)

val set_fault_filter : 'msg t -> fault_filter -> unit
(** Install the filter. The synchronous engine then applies it inside
    {!post}; the asynchronous engine consults {!decide} at enqueue
    time. *)

val decide : 'msg t -> round:Types.round -> 'msg Types.letter -> fault_decision
(** Ask the installed filter (always [Deliver] when none is installed)
    and bump the matching fault counter. *)

val fault_stats : 'msg t -> crashed:int -> Report.fault_stats
(** Cumulative injected-fault counters, with the engine-supplied crash
    count folded in. *)

(** {1 Screening and accounting (both engines)} *)

val screen :
  'msg t ->
  adversary:string ->
  corrupted:Party_set.t ->
  'msg Types.letter list ->
  'msg Types.letter list
(** Filter adversary-submitted letters: keep those from corrupted in-range
    senders to in-range recipients; count (and log, tagged with the
    adversary's [name]) each honest-sender forgery; silently drop
    out-of-range recipients. *)

val note_honest : 'msg t -> int -> unit
(** Count honest message submissions (pre-dedup: what was handed to the
    network, not what survived delivery). *)

val note_adversary : 'msg t -> int -> unit
(** Count adversarial messages accepted by [screen] (again pre-dedup). *)

val honest_messages : 'msg t -> int

val adversary_messages : 'msg t -> int

val rejected_forgeries : 'msg t -> int

(** {1 Per-round delivery (synchronous engine)} *)

val begin_round : ?round:Types.round -> 'msg t -> unit
(** Reset the round-local delivery state (dedup table, inboxes, delivered
    list). Accounting is cumulative and survives. [?round] tells the
    mailbox which round the following posts belong to (for the fault
    filter); when omitted the internal round counter just increments,
    which matches engines that call [begin_round] once per round. *)

val post : 'msg t -> 'msg Types.letter -> unit
(** Deliver a letter unless the fault filter drops it or the [(src, dst)]
    pair already delivered this round — first posted wins. The fault
    decision is taken {e before} dedup (each submission crosses the
    faulty network independently), so a dropped first submission leaves
    the pair's slot open for a later one. Raises [Invalid_argument] when
    [src] or [dst] falls outside [0, n): honest senders are validated by
    the engine and adversarial ones by {!screen}, so an out-of-range id
    reaching the transport is a harness bug, not traffic. *)

val post_direct :
  'msg t -> src:Types.party_id -> dst:Types.party_id -> 'msg -> unit
(** Exactly {!post} without the letter record: the engines' streaming hot
    path posts components straight from the protocol's send list, and a
    letter value is only materialized if delivered-letter tracking is on. *)

val post_last_wins : 'msg t -> 'msg Types.letter list -> unit
(** Post a submission batch so that the {e last} submitted letter per pair
    wins (reverse, then first-posted-wins): the rule for adversary batches,
    where a Byzantine double-send resolves to the adversary's final
    choice. *)

val inbox : 'msg t -> Types.party_id -> 'msg Types.envelope list
(** The recipient's inbox for this round, sorted by sender ascending
    (senders are unique after dedup, so this order is total). Built fresh
    per call in O(n/8 + k) by walking the seen bitmatrix — never sorted.
    Out-of-range recipients have empty inboxes. *)

val delivered : 'msg t -> 'msg Types.letter list
(** All letters delivered this round, most recently posted first — the
    shape stored in adversary history and traces. Empty when
    delivered-letter tracking is off. *)

val delivered_count : 'msg t -> int
(** Letters delivered this round; O(1), maintained at post time whether
    or not tracking is on — the telemetry counter without the list. *)

val set_delivered_tracking : 'msg t -> bool -> unit
(** Default on. Engines switch tracking off when nothing will read the
    per-round delivered {e list} (passive adversary, no watchdogs, no
    trace recording): at n = 10^4 the list alone is ~10^8 live letters a
    round, and no reader means no reason to build it. {!delivered_count}
    keeps counting either way. *)
