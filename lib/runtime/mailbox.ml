let log_src = Logs.Src.create "aat.runtime" ~doc:"unified runtime transport core"

module Log = (val Logs.src_log log_src)

type fault_decision = Deliver | Drop | Duplicate | Delay of int

type fault_filter =
  round:Types.round -> src:Types.party_id -> dst:Types.party_id ->
  fault_decision

type 'msg t = {
  n : int;
  mutable honest_messages : int;
  mutable adversary_messages : int;
  mutable rejected_forgeries : int;
  seen : (Types.party_id * Types.party_id, unit) Hashtbl.t;
  inboxes : (Types.party_id, 'msg Types.envelope list) Hashtbl.t;
  mutable delivered_rev : 'msg Types.letter list;
  mutable fault_filter : fault_filter option;
  mutable round : Types.round;
  mutable fault_dropped : int;
  mutable fault_duplicated : int;
  mutable fault_delayed : int;
}

let create ~n =
  {
    n;
    honest_messages = 0;
    adversary_messages = 0;
    rejected_forgeries = 0;
    seen = Hashtbl.create 64;
    inboxes = Hashtbl.create 16;
    delivered_rev = [];
    fault_filter = None;
    round = 0;
    fault_dropped = 0;
    fault_duplicated = 0;
    fault_delayed = 0;
  }

let set_fault_filter mb f = mb.fault_filter <- Some f

let decide mb ~round (l : _ Types.letter) =
  match mb.fault_filter with
  | None -> Deliver
  | Some f -> (
      match f ~round ~src:l.src ~dst:l.dst with
      | Deliver -> Deliver
      | Drop ->
          mb.fault_dropped <- mb.fault_dropped + 1;
          Drop
      | Duplicate ->
          mb.fault_duplicated <- mb.fault_duplicated + 1;
          Duplicate
      | Delay d ->
          mb.fault_delayed <- mb.fault_delayed + 1;
          Delay d)

let fault_stats mb ~crashed =
  {
    Report.dropped = mb.fault_dropped;
    duplicated = mb.fault_duplicated;
    delayed = mb.fault_delayed;
    crashed;
  }

let screen mb ~adversary ~corrupted letters =
  List.filter
    (fun (l : _ Types.letter) ->
      if l.dst < 0 || l.dst >= mb.n then false
      else if l.src >= 0 && l.src < mb.n && corrupted.(l.src) then true
      else begin
        mb.rejected_forgeries <- mb.rejected_forgeries + 1;
        Log.warn (fun f ->
            f "adversary %s tried to forge honest sender p%d" adversary l.src);
        false
      end)
    letters

let note_honest mb k = mb.honest_messages <- mb.honest_messages + k

let note_adversary mb k = mb.adversary_messages <- mb.adversary_messages + k

let begin_round ?round mb =
  (match round with Some r -> mb.round <- r | None -> mb.round <- mb.round + 1);
  Hashtbl.reset mb.seen;
  Hashtbl.reset mb.inboxes;
  mb.delivered_rev <- []

let post mb (l : 'msg Types.letter) =
  (* The fault decision comes before per-pair dedup: a dropped first
     submission does not occupy the pair's delivery slot, so a later
     duplicate submission may still get through. [Duplicate]/[Delay] have
     no synchronous reading and deliver normally (the compiler in
     [Aat_faults.Inject] never emits them for the sync engine). *)
  let verdict =
    match decide mb ~round:mb.round l with Drop -> `Drop | _ -> `Deliver
  in
  if verdict = `Deliver && not (Hashtbl.mem mb.seen (l.src, l.dst)) then begin
    Hashtbl.replace mb.seen (l.src, l.dst) ();
    mb.delivered_rev <- l :: mb.delivered_rev;
    let prev = Option.value ~default:[] (Hashtbl.find_opt mb.inboxes l.dst) in
    Hashtbl.replace mb.inboxes l.dst
      ({ Types.sender = l.src; payload = l.body } :: prev)
  end

let post_last_wins mb letters = List.iter (post mb) (List.rev letters)

let inbox mb p =
  Option.value ~default:[] (Hashtbl.find_opt mb.inboxes p)
  |> List.sort (fun (a : _ Types.envelope) b -> compare a.sender b.sender)

let delivered mb = mb.delivered_rev

let honest_messages mb = mb.honest_messages

let adversary_messages mb = mb.adversary_messages

let rejected_forgeries mb = mb.rejected_forgeries
