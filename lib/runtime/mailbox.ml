let log_src = Logs.Src.create "aat.runtime" ~doc:"unified runtime transport core"

module Log = (val Logs.src_log log_src)

type fault_decision = Deliver | Drop | Duplicate | Delay of int

type fault_filter =
  round:Types.round -> src:Types.party_id -> dst:Types.party_id ->
  fault_decision

(* Flat-array transport: the per-round delivery state is an n×n seen
   bitmatrix (one bit per (src, dst) pair, recipient-major so a
   recipient's inbox is one contiguous bit row) plus one lazily-allocated
   payload row per recipient, indexed by sender. [post] is a couple of
   array writes; [inbox] walks the recipient's bit row ascending, so the
   sorted-by-sender contract costs no sort at all. Rows keep their
   capacity across rounds — [begin_round] only clears the bitmatrix. *)
type 'msg t = {
  n : int;
  stride : int; (* bytes per recipient row in [seen] *)
  mutable honest_messages : int;
  mutable adversary_messages : int;
  mutable rejected_forgeries : int;
  seen : Bytes.t; (* bit (dst * stride * 8) + src: pair delivered this round *)
  rows : 'msg array option array; (* rows.(dst).(src): payload, if seen *)
  mutable delivered_rev : 'msg Types.letter list;
  mutable delivered_count : int;
  mutable track_delivered : bool;
  mutable scratch : 'msg Types.letter array; (* [post_last_wins] staging *)
  mutable fault_filter : fault_filter option;
  mutable round : Types.round;
  mutable fault_dropped : int;
  mutable fault_duplicated : int;
  mutable fault_delayed : int;
}

let create ~n =
  if n < 0 then invalid_arg "Mailbox.create: n < 0";
  let stride = (n + 7) lsr 3 in
  {
    n;
    stride;
    honest_messages = 0;
    adversary_messages = 0;
    rejected_forgeries = 0;
    seen = Bytes.make (n * stride) '\000';
    rows = Array.make n None;
    delivered_rev = [];
    delivered_count = 0;
    track_delivered = true;
    scratch = [||];
    fault_filter = None;
    round = 0;
    fault_dropped = 0;
    fault_duplicated = 0;
    fault_delayed = 0;
  }

let set_fault_filter mb f = mb.fault_filter <- Some f

let set_delivered_tracking mb on = mb.track_delivered <- on

let decide_route mb ~round ~src ~dst =
  match mb.fault_filter with
  | None -> Deliver
  | Some f -> (
      match f ~round ~src ~dst with
      | Deliver -> Deliver
      | Drop ->
          mb.fault_dropped <- mb.fault_dropped + 1;
          Drop
      | Duplicate ->
          mb.fault_duplicated <- mb.fault_duplicated + 1;
          Duplicate
      | Delay d ->
          mb.fault_delayed <- mb.fault_delayed + 1;
          Delay d)

let decide mb ~round (l : _ Types.letter) =
  decide_route mb ~round ~src:l.src ~dst:l.dst

let fault_stats mb ~crashed =
  {
    Report.dropped = mb.fault_dropped;
    duplicated = mb.fault_duplicated;
    delayed = mb.fault_delayed;
    crashed;
  }

let screen mb ~adversary ~corrupted letters =
  List.filter
    (fun (l : _ Types.letter) ->
      if l.dst < 0 || l.dst >= mb.n then false
      else if Party_set.mem corrupted l.src then true
      else begin
        mb.rejected_forgeries <- mb.rejected_forgeries + 1;
        Log.warn (fun f ->
            f "adversary %s tried to forge honest sender p%d" adversary l.src);
        false
      end)
    letters

let note_honest mb k = mb.honest_messages <- mb.honest_messages + k

let note_adversary mb k = mb.adversary_messages <- mb.adversary_messages + k

let begin_round ?round mb =
  (match round with Some r -> mb.round <- r | None -> mb.round <- mb.round + 1);
  Bytes.fill mb.seen 0 (Bytes.length mb.seen) '\000';
  mb.delivered_rev <- [];
  mb.delivered_count <- 0

let post_direct mb ~src ~dst body =
  if src < 0 || src >= mb.n || dst < 0 || dst >= mb.n then
    invalid_arg
      (Printf.sprintf "Mailbox.post: pair (%d, %d) outside [0, %d)" src dst
         mb.n);
  (* The fault decision comes before per-pair dedup: a dropped first
     submission does not occupy the pair's delivery slot, so a later
     duplicate submission may still get through. [Duplicate]/[Delay] have
     no synchronous reading and deliver normally (the compiler in
     [Aat_faults.Inject] never emits them for the sync engine). *)
  let deliver =
    match decide_route mb ~round:mb.round ~src ~dst with
    | Drop -> false
    | Deliver | Duplicate | Delay _ -> true
  in
  if deliver then begin
    let byte = (dst * mb.stride) + (src lsr 3) in
    let mask = 1 lsl (src land 7) in
    let c = Char.code (Bytes.unsafe_get mb.seen byte) in
    if c land mask = 0 then begin
      Bytes.unsafe_set mb.seen byte (Char.unsafe_chr (c lor mask));
      (match mb.rows.(dst) with
      | Some row -> Array.unsafe_set row src body
      | None ->
          (* First delivery to this recipient ever: allocate its payload
             row, using the payload itself as the (never-read) filler. *)
          mb.rows.(dst) <- Some (Array.make mb.n body));
      mb.delivered_count <- mb.delivered_count + 1;
      if mb.track_delivered then
        mb.delivered_rev <- { Types.src; dst; body } :: mb.delivered_rev
    end
  end

let post mb (l : _ Types.letter) = post_direct mb ~src:l.src ~dst:l.dst l.body

let post_last_wins mb letters =
  (* Last submitted wins = post in reverse submission order under
     first-posted-wins. The batch is staged into a reusable scratch array
     and walked end-to-start: no [List.rev] allocation, and the fault
     filter sees its decisions in exactly the order it always did (one
     draw per submission, most recent first). *)
  match letters with
  | [] -> ()
  | first :: _ ->
      let k = List.length letters in
      if Array.length mb.scratch < k then
        mb.scratch <- Array.make (max 64 (2 * k)) first;
      let scratch = mb.scratch in
      let i = ref 0 in
      List.iter
        (fun l ->
          scratch.(!i) <- l;
          incr i)
        letters;
      for j = k - 1 downto 0 do
        post mb scratch.(j)
      done

let inbox mb p =
  if p < 0 || p >= mb.n then []
  else
    match mb.rows.(p) with
    | None -> []
    | Some row ->
        (* Walk the recipient's seen-bit row descending and cons: the
           result comes out sorted by sender ascending with no sort.
           O(n/8) byte scans plus one envelope per delivered letter. *)
        let base = p * mb.stride in
        let acc = ref [] in
        for byte = mb.stride - 1 downto 0 do
          let c = Char.code (Bytes.unsafe_get mb.seen (base + byte)) in
          if c <> 0 then
            for bit = 7 downto 0 do
              if c land (1 lsl bit) <> 0 then begin
                let src = (byte lsl 3) lor bit in
                acc :=
                  { Types.sender = src; payload = Array.unsafe_get row src }
                  :: !acc
              end
            done
        done;
        !acc

let delivered mb = mb.delivered_rev

let delivered_count mb = mb.delivered_count

let honest_messages mb = mb.honest_messages

let adversary_messages mb = mb.adversary_messages

let rejected_forgeries mb = mb.rejected_forgeries
