let log_src = Logs.Src.create "aat.runtime" ~doc:"unified runtime transport core"

module Log = (val Logs.src_log log_src)

type 'msg t = {
  n : int;
  mutable honest_messages : int;
  mutable adversary_messages : int;
  mutable rejected_forgeries : int;
  seen : (Types.party_id * Types.party_id, unit) Hashtbl.t;
  inboxes : (Types.party_id, 'msg Types.envelope list) Hashtbl.t;
  mutable delivered_rev : 'msg Types.letter list;
}

let create ~n =
  {
    n;
    honest_messages = 0;
    adversary_messages = 0;
    rejected_forgeries = 0;
    seen = Hashtbl.create 64;
    inboxes = Hashtbl.create 16;
    delivered_rev = [];
  }

let screen mb ~adversary ~corrupted letters =
  List.filter
    (fun (l : _ Types.letter) ->
      if l.dst < 0 || l.dst >= mb.n then false
      else if l.src >= 0 && l.src < mb.n && corrupted.(l.src) then true
      else begin
        mb.rejected_forgeries <- mb.rejected_forgeries + 1;
        Log.warn (fun f ->
            f "adversary %s tried to forge honest sender p%d" adversary l.src);
        false
      end)
    letters

let note_honest mb k = mb.honest_messages <- mb.honest_messages + k

let note_adversary mb k = mb.adversary_messages <- mb.adversary_messages + k

let begin_round mb =
  Hashtbl.reset mb.seen;
  Hashtbl.reset mb.inboxes;
  mb.delivered_rev <- []

let post mb (l : 'msg Types.letter) =
  if not (Hashtbl.mem mb.seen (l.src, l.dst)) then begin
    Hashtbl.replace mb.seen (l.src, l.dst) ();
    mb.delivered_rev <- l :: mb.delivered_rev;
    let prev = Option.value ~default:[] (Hashtbl.find_opt mb.inboxes l.dst) in
    Hashtbl.replace mb.inboxes l.dst
      ({ Types.sender = l.src; payload = l.body } :: prev)
  end

let post_last_wins mb letters = List.iter (post mb) (List.rev letters)

let inbox mb p =
  Option.value ~default:[] (Hashtbl.find_opt mb.inboxes p)
  |> List.sort (fun (a : _ Types.envelope) b -> compare a.sender b.sender)

let delivered mb = mb.delivered_rev

let honest_messages mb = mb.honest_messages

let adversary_messages mb = mb.adversary_messages

let rejected_forgeries mb = mb.rejected_forgeries
