type violation = {
  watchdog : string;
  round : Types.round;
  detail : string;
}

type ('s, 'msg) t = {
  name : string;
  check :
    round:Types.round ->
    delivered:'msg Types.letter list ->
    states:(Types.party_id * 's) list ->
    corrupted:Party_set.t ->
    string option;
}

let make ~name check = { name; check }

let name wd = wd.name

let check wd ~round ~delivered ~states ~corrupted =
  wd.check ~round ~delivered ~states ~corrupted

let pp_violation fmt v =
  Format.fprintf fmt "[%s] round %d: %s" v.watchdog v.round v.detail
