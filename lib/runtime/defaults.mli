(** Default resource bounds, shared by both engines.

    These are liveness back-stops, not protocol parameters: every protocol
    in the repository terminates well inside them, so hitting a bound is a
    liveness failure of the protocol under test (or an adversary win), never
    an artefact of the harness. Centralizing them here keeps the two engines
    and the sharp-termination tests in agreement about what "ran too long"
    means. *)

val max_rounds : n:int -> int
(** Synchronous round budget, [4n + 64]: linear head-room for the
    round-optimal protocols (TreeAA's schedule is [O(log(D/eps))] rounds,
    gradecast a constant) plus constant slack for tiny [n]. *)

val patience : n:int -> int
(** Asynchronous fairness bound, [8n^2]: a message deferred for this many
    consecutive delivery events is delivered regardless of the scheduler —
    the engine's finite stand-in for "messages get delivered eventually".
    One reliable-broadcast wave is [Theta(n^2)] messages, so the bound lets
    a scheduler starve a victim for several full waves but not forever. *)

val max_events : int
(** Asynchronous delivery-event budget per run. *)

val telemetry_stride : int
(** Delivery events aggregated per telemetry chunk in the asynchronous
    engine (which has no rounds to hang telemetry events on). *)
