type 'msg view = {
  round : Types.round;
  n : int;
  t : int;
  corrupted : bool array;
  honest_outbox : 'msg Types.letter list;
  history : 'msg Types.letter list list;
  rng : Aat_util.Rng.t;
}

type 'msg t = {
  name : string;
  passive : bool;
  initial_corruptions : n:int -> t:int -> Aat_util.Rng.t -> Types.party_id list;
  corrupt_more : 'msg view -> Types.party_id list;
  deliver : 'msg view -> 'msg Types.letter list;
}

let passive name =
  {
    name;
    passive = true;
    initial_corruptions = (fun ~n:_ ~t:_ _ -> []);
    corrupt_more = (fun _ -> []);
    deliver = (fun _ -> []);
  }

let static ~name ~pick ~deliver =
  {
    name;
    passive = false;
    initial_corruptions = pick;
    corrupt_more = (fun _ -> []);
    deliver;
  }

let corrupted_parties view =
  List.filter (fun p -> view.corrupted.(p)) (List.init view.n Fun.id)

let honest_parties view =
  List.filter (fun p -> not view.corrupted.(p)) (List.init view.n Fun.id)
