(** Corruption bookkeeping, shared by both engines.

    Tracks which parties are corrupted, when each fell (round number under
    the synchronous engine, delivery-event number under the asynchronous
    one; [0] means corrupted before the run started), and enforces the
    adversary's budget of [t] total corruptions. *)

type t

val create : n:int -> t:int -> t

val corrupt : t -> at:Types.round -> Types.party_id -> bool
(** [corrupt c ~at p] corrupts [p] at time [at] if [p] is in range, not
    already corrupted, and budget remains; returns whether [p] was {e newly}
    corrupted by this call (so engines know to drop its state exactly
    once). *)

val force_corrupt : t -> at:Types.round -> Types.party_id -> bool
(** Like {!corrupt} but ignoring (and not consuming) the adversary's
    budget: fault-plan crashes are the environment's doing, not the
    adversary's, and may exceed [t] — that is exactly the over-budget
    regime the excusal rules grade. Returns whether [p] was newly
    corrupted. *)

val corrupt_all : t -> at:Types.round -> Types.party_id list -> unit
(** [corrupt] over a list, ignoring the per-party result. Out-of-budget
    requests are silently dropped — the cap is the engine's to enforce, not
    the strategy's to respect. *)

val is_corrupted : t -> Types.party_id -> bool

val set : t -> Party_set.t
(** The live corruption set. Shared, not a copy — mutated as further
    parties fall; callers exposing it (e.g. in an adversary view) must
    snapshot first. *)

val count : t -> int
(** Number of corrupted parties so far; O(1). *)

val flags : t -> bool array
(** A fresh membership array, length [n] — the shape the public adversary
    view exposes. O(n): prefer {!set} / {!is_corrupted} on hot paths. *)

val corrupted_list : t -> Types.party_id list
(** Corrupted parties, ascending. *)

val rounds_list : t -> (Types.party_id * Types.round) list
(** [(party, time it fell)] for every corrupted party, ascending by party;
    time [0] means initially corrupted. *)
