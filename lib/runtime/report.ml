type ('out, 'msg) t = {
  engine : string;
  n : int;
  t : int;
  outputs : (Types.party_id * 'out) list;
  termination_rounds : (Types.party_id * Types.round) list;
  rounds_used : int;
  corrupted : Types.party_id list;
  corruption_rounds : (Types.party_id * Types.round) list;
  honest_messages : int;
  adversary_messages : int;
  rejected_forgeries : int;
  trace : 'msg Types.letter list list;
}

let output_of report p = List.assoc p report.outputs

let honest_outputs report = List.map snd report.outputs

let initially_corrupted report =
  List.filter_map
    (fun (p, r) -> if r = 0 then Some p else None)
    report.corruption_rounds

let finally_honest report = report.n - List.length report.corrupted
