type fault_stats = {
  dropped : int;
  duplicated : int;
  delayed : int;
  crashed : int;
}

let no_faults = { dropped = 0; duplicated = 0; delayed = 0; crashed = 0 }

let faults_active f =
  f.dropped > 0 || f.duplicated > 0 || f.delayed > 0 || f.crashed > 0

let pp_fault_stats fmt f =
  Format.fprintf fmt "dropped=%d duplicated=%d delayed=%d crashed=%d"
    f.dropped f.duplicated f.delayed f.crashed

type ('out, 'msg) t = {
  engine : string;
  n : int;
  t : int;
  outputs : (Types.party_id * 'out) list;
  termination_rounds : (Types.party_id * Types.round) list;
  rounds_used : int;
  corrupted : Types.party_id list;
  corruption_rounds : (Types.party_id * Types.round) list;
  honest_messages : int;
  adversary_messages : int;
  rejected_forgeries : int;
  trace : 'msg Types.letter list list;
  fault_stats : fault_stats;
  watchdog_violations : Watchdog.violation list;
}

let output_of report p = List.assoc p report.outputs

let honest_outputs report = List.map snd report.outputs

let initially_corrupted report =
  List.filter_map
    (fun (p, r) -> if r = 0 then Some p else None)
    report.corruption_rounds

let initially_corrupted_set report =
  let s = Party_set.create ~n:report.n in
  List.iter
    (fun (p, r) -> if r = 0 && p >= 0 && p < report.n then Party_set.add s p)
    report.corruption_rounds;
  s

let honest_inputs ~inputs report =
  (* Party_set over the initially-corrupted set: one linear pass over the
     corruption records, then one over the inputs — O(n + |corrupted|)
     instead of the List.mem-per-input quadratic scan. *)
  let n = Array.length inputs in
  let corrupted_at_start = initially_corrupted_set report in
  let rec collect i acc =
    if i < 0 then acc
    else
      collect (i - 1)
        (if Party_set.mem corrupted_at_start i then acc else inputs.(i) :: acc)
  in
  collect (n - 1) []

let finally_honest report = report.n - List.length report.corrupted
