(* A mutable set of party ids over a fixed universe [0, n), backed by an
   int-array bitmap with a maintained cardinality. All single-element
   operations are O(1); whole-set operations (iter/fold/to_list) are
   O(n / bits_per_word + |set|) thanks to word skipping.

   OCaml's native [int] has 63 usable bits on 64-bit platforms; we use 62
   bits per word so every mask fits comfortably whatever the platform
   word size, and the divisions by a constant compile to multiplies. *)

let bits = 62

type t = {
  n : int;
  words : int array;
  mutable cardinal : int;
}

let create ~n =
  if n < 0 then invalid_arg "Party_set.create: n < 0";
  { n; words = Array.make ((n + bits - 1) / bits) 0; cardinal = 0 }

let n s = s.n

let cardinal s = s.cardinal

let is_empty s = s.cardinal = 0

let in_range s p = p >= 0 && p < s.n

let mem s p =
  in_range s p && s.words.(p / bits) land (1 lsl (p mod bits)) <> 0

let add s p =
  if not (in_range s p) then
    invalid_arg (Printf.sprintf "Party_set.add: party %d outside [0, %d)" p s.n);
  let w = p / bits and m = 1 lsl (p mod bits) in
  if s.words.(w) land m = 0 then begin
    s.words.(w) <- s.words.(w) lor m;
    s.cardinal <- s.cardinal + 1
  end

let remove s p =
  if in_range s p then begin
    let w = p / bits and m = 1 lsl (p mod bits) in
    if s.words.(w) land m <> 0 then begin
      s.words.(w) <- s.words.(w) land lnot m;
      s.cardinal <- s.cardinal - 1
    end
  end

let clear s =
  Array.fill s.words 0 (Array.length s.words) 0;
  s.cardinal <- 0

let iter f s =
  for w = 0 to Array.length s.words - 1 do
    let word = s.words.(w) in
    if word <> 0 then begin
      let base = w * bits in
      for b = 0 to bits - 1 do
        if word land (1 lsl b) <> 0 then f (base + b)
      done
    end
  done

let fold f s init =
  let acc = ref init in
  iter (fun p -> acc := f p !acc) s;
  !acc

let to_list s =
  let acc = ref [] in
  for w = Array.length s.words - 1 downto 0 do
    let word = s.words.(w) in
    if word <> 0 then begin
      let base = w * bits in
      for b = bits - 1 downto 0 do
        if word land (1 lsl b) <> 0 then acc := (base + b) :: !acc
      done
    end
  done;
  !acc

let of_list ~n ps =
  let s = create ~n in
  List.iter (fun p -> add s p) ps;
  s

let to_bool_array s =
  Array.init s.n (fun p -> s.words.(p / bits) land (1 lsl (p mod bits)) <> 0)

let exists f s =
  try
    iter (fun p -> if f p then raise Exit) s;
    false
  with Exit -> true

let for_all f s = not (exists (fun p -> not (f p)) s)

let copy s = { n = s.n; words = Array.copy s.words; cardinal = s.cardinal }

let pp fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat ", " (List.map string_of_int (to_list s)))
