(** The Byzantine adversary — one interface for both engines.

    The adversary of the paper is adaptive (it may corrupt parties at any
    point, up to [t] in total), computationally unbounded, and — in the
    strongest synchronous reading — {e rushing}: in every round it sees the
    messages honest parties are about to send before choosing what the
    corrupted parties send. This interface gives a strategy exactly those
    powers and nothing more:

    - it observes the full traffic history and the current round's honest
      outbox (rushing),
    - it may request additional corruptions at any point (the engine
      enforces the budget [t]),
    - it emits arbitrary messages {e from corrupted senders only}
      (authenticated channels: the engine rejects forged honest senders).

    It cannot read honest parties' private state — everything it could
    legitimately infer is a function of the traffic, which it has.

    {b Both engines consume this type.} Under the synchronous engine the
    view is per round: [round] is the round number, [honest_outbox] is the
    rushing power, [history] groups delivered letters round by round. Under
    the asynchronous engine ({!Aat_async.Async_engine}) the view is per
    delivery event: [round] is the event counter, [honest_outbox] is empty
    (there is no round barrier to rush), and [history] holds one singleton
    list per past delivery. A strategy written against this interface —
    everything in [lib/adversary] — therefore runs against either engine
    unchanged; the async engine adds only a scheduler on top. *)

type 'msg view = {
  round : Types.round;
      (** synchronous: round number; asynchronous: delivery-event number *)
  n : int;
  t : int;
  corrupted : bool array;  (** current corruption set, length [n] *)
  honest_outbox : 'msg Types.letter list;
      (** what honest parties are sending this round (rushing power);
          always [[]] under the asynchronous engine *)
  history : 'msg Types.letter list list;
      (** delivered traffic, most recent first — grouped per round
          (synchronous) or one singleton per delivery event (asynchronous) *)
  rng : Aat_util.Rng.t;  (** adversary's private randomness *)
}

type 'msg t = {
  name : string;
  passive : bool;
      (** Declares the strategy observably inert: it never corrupts and
          never sends, {e and does not read its view} — so engines may
          skip materialising the view (history retention, outbox reversal,
          corruption-flag copies) entirely. Only {!passive} sets this;
          a passive-by-construction custom strategy that still inspects
          its view must leave it [false]. *)
  initial_corruptions : n:int -> t:int -> Aat_util.Rng.t -> Types.party_id list;
      (** Corrupted set at the start of the run; may be empty for a purely
          adaptive strategy. Lists longer than [t] are truncated by the
          engine. *)
  corrupt_more : 'msg view -> Types.party_id list;
      (** Additional corruptions, requested after seeing the view
          (adaptivity). Budget-capped by the engine. *)
  deliver : 'msg view -> 'msg Types.letter list;
      (** The corrupted parties' messages. Letters whose [src] is not
          corrupted are dropped (and logged) — authenticated channels make
          them impossible. *)
}

val passive : string -> 'msg t
(** No corruptions at all: the fault-free baseline case. *)

val static :
  name:string ->
  pick:(n:int -> t:int -> Aat_util.Rng.t -> Types.party_id list) ->
  deliver:('msg view -> 'msg Types.letter list) ->
  'msg t
(** Static adversary: fixed corruption set, no adaptive corruptions. *)

val corrupted_parties : 'msg view -> Types.party_id list

val honest_parties : 'msg view -> Types.party_id list
