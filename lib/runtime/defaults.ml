let max_rounds ~n = (4 * n) + 64

let patience ~n = 8 * n * n

let max_events = 200_000

let telemetry_stride = 256
