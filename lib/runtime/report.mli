(** The unified run report: both [Sync_engine.run] and [Async_engine.run]
    return this one type, so verdict checkers, telemetry consumers, the
    bench harness and the CLI are written once against one shape.

    Time is engine-relative: under the synchronous engine "round" means
    lock-step round number; under the asynchronous one it means
    delivery-event number (the only logical clock that model has). The
    [engine] tag ("sync" / "async") records which reading applies.

    Conventions shared by both engines:

    - [outputs] / [termination_rounds] cover exactly the finally-honest
      parties, ascending; a party deciding at initialization (zero
      communication) terminates at round [0];
    - [corruption_rounds] pairs each corrupted party with the time it fell,
      [0] meaning initially corrupted. Validity is judged against the
      inputs of {e initially}-honest parties ({!initially_corrupted}): a
      party corrupted mid-run exposes its input to the adversary, but its
      input was honest when contributed;
    - [honest_messages] counts honest submissions to the network and
      [adversary_messages] counts adversary letters that survived forgery
      screening — both {e before} per-pair dedup, so a Byzantine
      double-send is two adversary messages even though one letter
      delivers;
    - [trace] (opt-in via [~record_trace]) groups delivered letters
      per round (synchronous) or one singleton list per delivery event
      (asynchronous), oldest first. *)

type fault_stats = {
  dropped : int;  (** letters dropped by omission/partition/recovery faults *)
  duplicated : int;  (** letters enqueued twice (async engine only) *)
  delayed : int;  (** letters deferred within the patience bound (async) *)
  crashed : int;  (** parties force-crashed by the fault plan *)
}
(** Accounting of injected (non-Byzantine) faults. All zeros — compare
    with {!no_faults} — on a run without a fault plan. *)

val no_faults : fault_stats

val faults_active : fault_stats -> bool
(** Whether any counter is non-zero. *)

val pp_fault_stats : Format.formatter -> fault_stats -> unit

type ('out, 'msg) t = {
  engine : string;  (** ["sync"] or ["async"] *)
  n : int;
  t : int;  (** the corruption budget the run was configured with *)
  outputs : (Types.party_id * 'out) list;
      (** finally-honest parties' decisions, ascending by party *)
  termination_rounds : (Types.party_id * Types.round) list;
      (** when each finally-honest party decided *)
  rounds_used : int;
      (** rounds (sync) or delivery events (async) consumed by the run *)
  corrupted : Types.party_id list;  (** final corruption set, ascending *)
  corruption_rounds : (Types.party_id * Types.round) list;
      (** when each corrupted party fell; [0] = initially corrupted *)
  honest_messages : int;
  adversary_messages : int;
  rejected_forgeries : int;
  trace : 'msg Types.letter list list;
      (** delivered letters, oldest group first; [[]] unless recording was
          requested *)
  fault_stats : fault_stats;
      (** injected-fault accounting; {!no_faults} on a benign run *)
  watchdog_violations : Watchdog.violation list;
      (** first violation per installed watchdog, in order of firing;
          [[]] when no watchdogs were installed or none fired *)
}

val output_of : ('out, 'msg) t -> Types.party_id -> 'out
(** Raises [Not_found] if the party is corrupted (it has no output). *)

val honest_outputs : ('out, 'msg) t -> 'out list

val initially_corrupted : ('out, 'msg) t -> Types.party_id list
(** The parties corrupted before round 1 — the set whose inputs validity
    judgments must exclude. *)

val honest_inputs : inputs:'a array -> (_, _) t -> 'a list
(** [honest_inputs ~inputs report] — the inputs of the {e initially}-honest
    parties, in party order: the hull Validity is judged against. A party
    corrupted adaptively mid-run contributed its input while honest, so its
    input stays in. [inputs.(i)] is party [i]'s input; implemented with a
    bitset over the corruption records, O(n + |corrupted|). *)

val finally_honest : ('out, 'msg) t -> int
(** [n] minus the number of (ever-)corrupted parties. *)
