(** Structured run outcomes: the non-throwing alternative to the legacy
    raising entry points.

    [Sync_engine.run_outcome] / [Async_engine.run_outcome] return this
    type instead of raising [Exceeded_max_rounds] / [Exceeded_max_events]:
    round- or event-budget exhaustion (and asynchronous deadlock) become
    {!Liveness_timeout} carrying the partial report — who decided, who
    did not, full message and fault accounting — so campaigns can record
    the cell and keep going. [Runner.run] additionally folds any escaping
    exception into {!Engine_error}, making the campaign layer
    exception-free by construction. *)

type ('out, 'msg) partial = {
  report : ('out, 'msg) Report.t;
      (** everything the run produced before stalling; [outputs] and
          [termination_rounds] cover only the parties that decided *)
  undecided : Types.party_id list;
      (** honest parties still undecided when the budget ran out,
          ascending *)
  reason : string;  (** e.g. the max-rounds text or the deadlock text *)
}

type ('out, 'msg) t =
  | Completed of ('out, 'msg) Report.t
      (** every finally-honest party decided within budget *)
  | Liveness_timeout of ('out, 'msg) partial
      (** round/event budget exhausted, or asynchronous deadlock, with
          honest parties still undecided *)
  | Engine_error of { stage : string; exn_text : string }
      (** an exception escaped protocol or adversary code; [stage] names
          the phase (["engine"], ["check"], ...) *)

val report : ('out, 'msg) t -> ('out, 'msg) Report.t option
(** The (possibly partial) report, when one exists. *)

val label : ('out, 'msg) t -> string
(** ["completed"] / ["liveness-timeout"] / ["engine-error"] — the tags
    used in campaign JSONL rows. *)

val pp : Format.formatter -> ('out, 'msg) t -> unit
