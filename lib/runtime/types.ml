type party_id = int

type round = int

type 'msg envelope = { sender : party_id; payload : 'msg }

type 'msg letter = { src : party_id; dst : party_id; body : 'msg }

let pp_party fmt p = Format.fprintf fmt "p%d" p
