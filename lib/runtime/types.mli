(** Shared vocabulary of both execution engines.

    The model is the paper's (Section 2): [n] parties [p_0 .. p_{n-1}] in a
    fully connected network of authenticated channels, and an adversary
    corrupting at most [t] parties. The synchronous engine adds lock-step
    rounds; the asynchronous engine replaces them with delivery events, but
    messages, envelopes and party identities are the same in both. *)

type party_id = int
(** Party identifier in [\[0, n)]. The paper's [p_i] is our [i - 1]. *)

type round = int
(** Round counter, starting at 1 for the first communication round. The
    asynchronous engine reuses it as the delivery-event counter (its only
    notion of logical time). *)

type 'msg envelope = { sender : party_id; payload : 'msg }
(** A delivered message. [sender] is stamped by the engine — channels are
    authenticated, so not even a Byzantine party can forge it. *)

type 'msg letter = { src : party_id; dst : party_id; body : 'msg }
(** An in-flight message: what a party (or the adversary, on behalf of a
    corrupted party) hands to the network for delivery. *)

val pp_party : Format.formatter -> party_id -> unit
