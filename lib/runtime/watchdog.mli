(** Runtime invariant watchdogs.

    A watchdog is a named per-round monitor over the run's observable
    state: the letters delivered this round (sync) or by this delivery
    event (async), the current honest party states, and the corruption
    set. Engines run every installed watchdog after each delivery step;
    a check returning [Some detail] records a {!violation} into the
    report and retires that watchdog for the rest of the run (first
    violation wins — the diagnostic names the earliest round at which the
    invariant broke). Violations never throw.

    Only the {e type} lives here, in the runtime substrate, so both
    engines can accept watchdogs without depending on protocol layers.
    The concrete catalog (hull containment, spread non-expansion, grade
    consistency, corruption budget) lives in [Aat_faults.Watchdog]. *)

type violation = {
  watchdog : string;  (** name of the watchdog that fired *)
  round : Types.round;
      (** round (sync) or delivery event (async) of first violation *)
  detail : string;  (** human-readable witness: parties, values *)
}

type ('s, 'msg) t
(** A monitor over runs with honest state ['s] and messages ['msg]. A
    watchdog may close over mutable state (e.g. the previous round's
    spread); build a fresh value per run. *)

val make :
  name:string ->
  (round:Types.round ->
  delivered:'msg Types.letter list ->
  states:(Types.party_id * 's) list ->
  corrupted:Party_set.t ->
  string option) ->
  ('s, 'msg) t
(** [states] holds every party still honest at this step paired with its
    protocol state — under the synchronous engine including parties that
    decided {e this} round (their final state is observable exactly
    once), under the asynchronous engine the currently-undecided ones.
    [corrupted] is the engine's {e live} corruption set (a
    {!Party_set.t}, O(1) membership) — read it during the check; do not
    retain it across rounds, it mutates as further parties fall. *)

val name : ('s, 'msg) t -> string

val check :
  ('s, 'msg) t ->
  round:Types.round ->
  delivered:'msg Types.letter list ->
  states:(Types.party_id * 's) list ->
  corrupted:Party_set.t ->
  string option

val pp_violation : Format.formatter -> violation -> unit
