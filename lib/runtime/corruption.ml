type t = {
  n : int;
  flags : bool array;
  round_of : int array;
  mutable budget : int;
}

let create ~n ~t =
  { n; flags = Array.make n false; round_of = Array.make n (-1); budget = t }

let corrupt c ~at p =
  if p >= 0 && p < c.n && (not c.flags.(p)) && c.budget > 0 then begin
    c.flags.(p) <- true;
    c.round_of.(p) <- at;
    c.budget <- c.budget - 1;
    true
  end
  else false

let corrupt_all c ~at ps = List.iter (fun p -> ignore (corrupt c ~at p)) ps

let force_corrupt c ~at p =
  if p >= 0 && p < c.n && not c.flags.(p) then begin
    c.flags.(p) <- true;
    c.round_of.(p) <- at;
    true
  end
  else false

let is_corrupted c p = c.flags.(p)

let flags c = c.flags

let corrupted_list c =
  List.filter (fun p -> c.flags.(p)) (List.init c.n Fun.id)

let rounds_list c =
  List.filter_map
    (fun p -> if c.flags.(p) then Some (p, c.round_of.(p)) else None)
    (List.init c.n Fun.id)
