type t = {
  n : int;
  set : Party_set.t;
  round_of : int array;
  mutable budget : int;
}

let create ~n ~t =
  { n; set = Party_set.create ~n; round_of = Array.make n (-1); budget = t }

let corrupt c ~at p =
  if p >= 0 && p < c.n && (not (Party_set.mem c.set p)) && c.budget > 0 then begin
    Party_set.add c.set p;
    c.round_of.(p) <- at;
    c.budget <- c.budget - 1;
    true
  end
  else false

let corrupt_all c ~at ps = List.iter (fun p -> ignore (corrupt c ~at p)) ps

let force_corrupt c ~at p =
  if p >= 0 && p < c.n && not (Party_set.mem c.set p) then begin
    Party_set.add c.set p;
    c.round_of.(p) <- at;
    true
  end
  else false

let is_corrupted c p = Party_set.mem c.set p

let set c = c.set

let count c = Party_set.cardinal c.set

let flags c = Party_set.to_bool_array c.set

let corrupted_list c = Party_set.to_list c.set

let rounds_list c =
  List.map (fun p -> (p, c.round_of.(p))) (Party_set.to_list c.set)
