type ('out, 'msg) partial = {
  report : ('out, 'msg) Report.t;
  undecided : Types.party_id list;
  reason : string;
}

type ('out, 'msg) t =
  | Completed of ('out, 'msg) Report.t
  | Liveness_timeout of ('out, 'msg) partial
  | Engine_error of { stage : string; exn_text : string }

let report = function
  | Completed r -> Some r
  | Liveness_timeout p -> Some p.report
  | Engine_error _ -> None

let label = function
  | Completed _ -> "completed"
  | Liveness_timeout _ -> "liveness-timeout"
  | Engine_error _ -> "engine-error"

let pp fmt = function
  | Completed r ->
      Format.fprintf fmt "completed in %d rounds" r.Report.rounds_used
  | Liveness_timeout p ->
      Format.fprintf fmt "liveness timeout after %d rounds (%d undecided): %s"
        p.report.Report.rounds_used
        (List.length p.undecided)
        p.reason
  | Engine_error { stage; exn_text } ->
      Format.fprintf fmt "engine error in %s: %s" stage exn_text
