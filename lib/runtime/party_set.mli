(** A mutable set of party ids over the fixed universe [0, n).

    Backed by an int-array bitmap with a maintained cardinality:
    membership, insertion and removal are O(1), [cardinal] is O(1), and
    the whole-set operations cost O(n/62) words plus one callback per
    member. This is the runtime's replacement for the [party_id list]
    scans ([List.mem], [List.length], [List.filter] over [List.init n])
    that used to dominate the per-round bookkeeping of corruption /
    honest / crashed sets at large [n]. *)

type t

val create : n:int -> t
(** The empty set over universe [0, n). Raises [Invalid_argument] when
    [n < 0]. *)

val n : t -> int
(** The universe size the set was created with. *)

val cardinal : t -> int
(** Number of members; O(1) (maintained, not recounted). *)

val is_empty : t -> bool

val mem : t -> int -> bool
(** O(1); out-of-range ids are never members. *)

val add : t -> int -> unit
(** Raises [Invalid_argument] on out-of-range ids: silently ignoring a
    corruption would understate the adversary. Adding a member twice is a
    no-op. *)

val remove : t -> int -> unit
(** Removing a non-member (or an out-of-range id) is a no-op. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Ascending id order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending id order. *)

val to_list : t -> int list
(** Members, ascending. *)

val of_list : n:int -> int list -> t

val to_bool_array : t -> bool array
(** A fresh [n]-length membership array — the shape the public adversary
    view exposes. *)

val exists : (int -> bool) -> t -> bool

val for_all : (int -> bool) -> t -> bool

val copy : t -> t

val pp : Format.formatter -> t -> unit
