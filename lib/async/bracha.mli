(** Bracha's asynchronous reliable broadcast, [t < n/3].

    The distribution mechanism underneath the asynchronous AA protocols
    ([1, 33]): a sender INITs its value; parties ECHO the first INIT they
    see; a party sends READY on [n - t] matching ECHOs (or [t + 1] matching
    READYs — the amplification step), and {e delivers} on [2t + 1] matching
    READYs.

    Guarantees for [t < n/3]:
    - {b validity}: an honest sender's value is eventually delivered by all
      honest parties;
    - {b agreement}: no two honest parties deliver different values for the
      same instance;
    - {b totality}: if any honest party delivers, every honest party
      eventually delivers (the same value).

    {!Instances} is the composable multi-instance core used by the AA
    reactors (instances are keyed by [(origin, tag)], where the AA layer
    uses the iteration number as tag); {!reactor} wraps a single instance
    for direct testing. *)

open Aat_engine

type key = { origin : Types.party_id; tag : int }

type 'v msg =
  | Init of key * 'v
  | Echo of key * 'v
  | Ready of key * 'v

module Instances : sig
  type 'v t
  (** Mutable bookkeeping for any number of concurrent instances. *)

  val create : n:int -> t:int -> 'v t

  val broadcast : 'v t -> self:Types.party_id -> tag:int -> 'v ->
    (Types.party_id * 'v msg) list
  (** Start broadcasting one's own value under [(self, tag)]. *)

  val handle :
    'v t ->
    self:Types.party_id ->
    'v msg Types.envelope ->
    (Types.party_id * 'v msg) list * (key * 'v) list
  (** Process one message; returns follow-up messages and any newly
      delivered [(key, value)] pairs (at most one here, but typed as a list
      for uniformity). Equivocating INITs are ignored after the first;
      double ECHO/READY per sender per instance are ignored. *)

  val delivered : 'v t -> key -> 'v option
end

type 'v state

val reactor :
  sender:Types.party_id ->
  inputs:(Types.party_id -> 'v) ->
  t:int ->
  ('v state, 'v msg, 'v) Async_engine.reactor
(** Single-instance broadcast from [sender] (tag 0); every honest party's
    output is the delivered value. If the sender is corrupted and never
    INITs, no honest party decides — tests bound this with [max_events]. *)
