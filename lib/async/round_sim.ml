open Aat_engine

type 'm batch = { round : Types.round; payload : 'm option }

type 'm slot = {
  payloads : 'm option array;
  seen : bool array;
  mutable arrived : int;
}

type ('s, 'm, 'o) state = {
  n : int;
  mutable proto : 's option;
  mutable round : Types.round;
  mutable decided : ('o * Types.round) option;
  buffer : (Types.round, 'm slot) Hashtbl.t;
}

let reactor_of_protocol (type s m o) (protocol : (s, m, o) Protocol.t) :
    ((s, m, o) state, m batch, o * Types.round) Async_engine.reactor =
  (* One batch to every party every round, [None] payload meaning "nothing
     for you this round" — the keep-alives that carry the round structure
     through a roundless network. Per-recipient dedup matches the sync
     engine: the first letter submitted to a destination wins. *)
  let batches st ~self ~round =
    let per_dst = Array.make st.n None in
    (match st.proto with
    | None -> ()
    | Some s ->
        List.iter
          (fun ((dst, body) : Types.party_id * m) ->
            if dst < 0 || dst >= st.n then
              invalid_arg
                (Printf.sprintf "%s: p%d sent to invalid party %d"
                   protocol.Protocol.name self dst)
            else if per_dst.(dst) = None then per_dst.(dst) <- Some body)
          (protocol.Protocol.send ~round ~self s));
    List.init st.n (fun dst -> (dst, { round; payload = per_dst.(dst) }))
  in
  let get_slot st r =
    match Hashtbl.find_opt st.buffer r with
    | Some slot -> slot
    | None ->
        let slot =
          {
            payloads = Array.make st.n None;
            seen = Array.make st.n false;
            arrived = 0;
          }
        in
        Hashtbl.add st.buffer r slot;
        slot
  in
  (* Process every round whose n batches have all arrived (deliveries may
     run ahead of the slowest sender by at most one round, but a non-FIFO
     scheduler can hand us round r+1 batches before round r completes). *)
  let rec drain st ~self acc =
    match Hashtbl.find_opt st.buffer st.round with
    | Some slot when slot.arrived = st.n ->
        let r = st.round in
        Hashtbl.remove st.buffer r;
        let inbox = ref [] in
        for q = st.n - 1 downto 0 do
          match slot.payloads.(q) with
          | Some body -> inbox := { Types.sender = q; payload = body } :: !inbox
          | None -> ()
        done;
        (match st.proto with
        | Some s ->
            let s' = protocol.Protocol.receive ~round:r ~self ~inbox:!inbox s in
            (match protocol.Protocol.output s' with
            | Some o ->
                st.decided <- Some (o, r);
                st.proto <- None
            | None -> st.proto <- Some s')
        | None -> ());
        st.round <- r + 1;
        drain st ~self (acc @ batches st ~self ~round:st.round)
    | _ -> acc
  in
  {
    Async_engine.name = protocol.Protocol.name ^ "@lockstep";
    init =
      (fun ~self ~n ->
        let s = protocol.Protocol.init ~self ~n in
        let st =
          { n; proto = Some s; round = 1; decided = None; buffer = Hashtbl.create 8 }
        in
        (* zero-communication decisions, as in the sync engine *)
        (match protocol.Protocol.output s with
        | Some o ->
            st.decided <- Some (o, 0);
            st.proto <- None
        | None -> ());
        (st, batches st ~self ~round:1));
    on_message =
      (fun ~self e st ->
        let b = e.Types.payload in
        let q = e.Types.sender in
        if b.round >= st.round && q >= 0 && q < st.n then begin
          let slot = get_slot st b.round in
          if not slot.seen.(q) then begin
            slot.seen.(q) <- true;
            slot.payloads.(q) <- b.payload;
            slot.arrived <- slot.arrived + 1
          end
        end;
        (st, drain st ~self []));
    output = (fun st -> st.decided);
  }

type ('s, 'm) sync_state = { rs : 's; outbox : (Types.party_id * 'm) list }

let protocol_of_reactor (type s m o)
    (reactor : (s, m, o) Async_engine.reactor) :
    ((s, m) sync_state, m, o) Protocol.t =
  {
    Protocol.name = reactor.Async_engine.name ^ "@rounds";
    init =
      (fun ~self ~n ->
        let rs, outbox = reactor.Async_engine.init ~self ~n in
        { rs; outbox });
    send = (fun ~round:_ ~self:_ st -> st.outbox);
    receive =
      (fun ~round:_ ~self ~inbox st ->
        let rs, outbox =
          List.fold_left
            (fun (s, acc) (e : m Types.envelope) ->
              let s', letters = reactor.Async_engine.on_message ~self e s in
              (s', acc @ letters))
            (st.rs, []) inbox
        in
        { rs; outbox });
    output = (fun st -> reactor.Async_engine.output st.rs);
  }
