(** Asynchronous iterated approximate agreement — the classic outline in
    the model where the paper's prior art lives ([1, 12, 33]).

    Each iteration [r]:

    + reliably broadcast one's current value tagged [r] ({!Bracha});
    + once [n - t] iteration-[r] values are delivered, report the set of
      origins seen;
    + wait for [n - t] {e satisfied} reports — reports (of size ≥ [n - t],
      smaller ones are discarded as malformed) whose origin set is covered
      by one's own delivered set. Any two honest parties then share a
      satisfied reporter, so their multisets intersect in ≥ [n - t]
      elements (the witness technique of [1]);
    + combine the delivered multiset into the next value and move on.

    With the trimmed-midpoint combine on ℝ the spread halves per iteration;
    with the safe-area center on trees this is precisely the Nowak–Rybicki
    [33] protocol whose [O(log D)] iteration count TreeAA improves on.
    There are no rounds to count — the bench reports iterations and
    messages instead, and the tests drive it under adversarial schedulers
    (LIFO, laggard-starving, random) plus Byzantine injections. *)

open Aat_engine
open Aat_tree

type 'v msg =
  | Rbc of 'v Bracha.msg  (** value distribution, tag = iteration *)
  | Report of { iteration : int; ids : Types.party_id list }

type 'v result = { value : 'v; iterations_done : int }

type 'v state

val reactor :
  name:string ->
  inputs:(Types.party_id -> 'v) ->
  t:int ->
  iterations:int ->
  combine:('v list -> 'v option) ->
  validate:('v -> bool) ->
  ('v state, 'v msg, 'v result) Async_engine.reactor
(** Generic core. [combine] receives the delivered multiset (≥ n - t
    values, Byzantine contributions already limited to ≤ t and consistent
    across parties thanks to reliable broadcast) and yields the next value
    ([None] keeps the current one). [validate] discards syntactically
    invalid Byzantine values before they enter the multiset. *)

val real :
  inputs:(Types.party_id -> float) ->
  t:int ->
  iterations:int ->
  (float state, float msg, float result) Async_engine.reactor
(** AA on ℝ: trimmed-midpoint combine, halving per iteration — run it for
    [Rounds.halving_iterations ~range ~eps] iterations. *)

val tree :
  tree:Labeled_tree.t ->
  inputs:(Types.party_id -> Labeled_tree.vertex) ->
  t:int ->
  iterations:int ->
  (Labeled_tree.vertex state, Labeled_tree.vertex msg,
   Labeled_tree.vertex result)
  Async_engine.reactor
(** AA on trees à la [33]: safe-area center combine
    ({!Aat_treeaa.Nr_baseline.safe_vertices}); run it for
    [Nr_baseline.iterations_for tree] iterations. *)
