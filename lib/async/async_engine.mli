(** Event-driven asynchronous execution engine.

    The paper's related work contrasts the synchronous model with the
    asynchronous one — "messages get delivered eventually" — where the
    prior-art tree protocol of Nowak & Rybicki [33] lives. This engine
    models it: there are no rounds, only delivery events; a scheduler
    (chosen by the adversary) decides which in-flight message is delivered
    next, subject to {e eventual delivery}, which the engine enforces with
    a patience bound — a message deferred for [patience] consecutive events
    is delivered regardless of the scheduler's wishes.

    Honest parties are {e reactors}: an initialization burst of messages,
    then a pure handler invoked per delivered message, producing follow-up
    messages; [output] signals the party's decision — the reactor keeps
    reacting afterwards (deciding is not halting in the asynchronous model;
    a decided party's echoes may be needed for others' liveness) and the
    run ends once every honest party has decided. There is no clock, so
    protocols cannot count rounds — exactly the constraint that forces the
    iteration/witness structure of asynchronous AA.

    The engine shares the [lib/runtime] substrate with the synchronous one:
    the {b adversary} is the same engine-agnostic
    {!Aat_runtime.Adversary.t} (corruption policy + message injector) plus
    this model's one extra power, the {!scheduler}; forgery screening and
    accounting run through the shared {!Aat_runtime.Mailbox}; and {!run}
    returns the unified {!Aat_runtime.Report.t} ([engine = "async"], all
    "round" fields counted in delivery events). The adversary's view at
    each event has [round] = event number, an empty [honest_outbox] (no
    round barrier to rush) and [history] = one singleton list per past
    delivery — so every strategy in [lib/adversary] runs here unchanged,
    wrapped by {!with_scheduler}. *)

open Aat_engine

type ('state, 'msg, 'out) reactor = {
  name : string;
  init : self:Types.party_id -> n:int -> 'state * (Types.party_id * 'msg) list;
  on_message :
    self:Types.party_id ->
    'msg Types.envelope ->
    'state ->
    'state * (Types.party_id * 'msg) list;
  output : 'state -> 'out option;
}

type 'msg pending = { letter : 'msg Types.letter; enqueued_at : int }

(** Scheduling strategies (all subject to the patience bound). *)
type 'msg scheduler =
  | Fifo
  | Lifo
  | Random_order
  | Laggards of Types.party_id list
      (** starve messages from/to the given parties as long as allowed *)
  | Custom of ('msg pending array -> Aat_util.Rng.t -> int)

type 'msg adversary = {
  core : 'msg Adversary.t;
      (** corruption policy + injector, shared with the synchronous
          engine; injected letters claiming honest senders are dropped
          and counted (authenticated channels) *)
  scheduler : 'msg scheduler;
      (** the asynchronous model's extra adversarial power: delivery
          order *)
}

val passive : ?scheduler:'msg scheduler -> string -> 'msg adversary
(** No corruptions, no injections; [scheduler] defaults to [Fifo]. *)

val with_scheduler : ?scheduler:'msg scheduler -> 'msg Adversary.t -> 'msg adversary
(** Run any synchronous-world strategy under this engine ([scheduler]
    defaults to [Fifo]) — the adapter behind "every [lib/adversary]
    strategy runs against either engine". *)

type ('out, 'msg) report = ('out, 'msg) Aat_runtime.Report.t = {
  engine : string;  (** ["async"] *)
  n : int;
  t : int;
  outputs : (Types.party_id * 'out) list;
  termination_rounds : (Types.party_id * Types.round) list;
      (** the delivery event at which each honest party decided; [0] for a
          party that decided at initialization *)
  rounds_used : int;  (** total delivery events *)
  corrupted : Types.party_id list;
  corruption_rounds : (Types.party_id * Types.round) list;
      (** the delivery event at which each corruption happened; [0] =
          initially corrupted *)
  honest_messages : int;
  adversary_messages : int;  (** injected letters that survived screening *)
  rejected_forgeries : int;
  trace : 'msg Types.letter list list;
      (** one singleton list per delivery event, oldest first (empty unless
          [~record_trace:true]) *)
  fault_stats : Aat_runtime.Report.fault_stats;
      (** injected-fault accounting; all zeros on a benign run *)
  watchdog_violations : Aat_runtime.Watchdog.violation list;
      (** first violation per installed watchdog, in firing order *)
}

exception Exceeded_max_events of string

val run_outcome :
  n:int ->
  t:int ->
  ?max_events:int ->
  ?patience:int ->
  ?seed:int ->
  ?record_trace:bool ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  ?profile:bool ->
  ?telemetry_stride:int ->
  ?observe:('s -> float option) ->
  ?fault_filter:Aat_runtime.Mailbox.fault_filter ->
  ?crash_faults:(Types.party_id * Types.round) list ->
  ?watchdogs:('s, 'm) Aat_runtime.Watchdog.t list ->
  reactor:('s, 'm, 'o) reactor ->
  adversary:'m adversary ->
  unit ->
  ('o, 'm) Aat_runtime.Outcome.t
(** The structured-outcome entry point: identical execution to {!run},
    but event-budget exhaustion {e and} deadlock (empty pool with honest
    parties undecided) return [Liveness_timeout] carrying the partial
    report instead of raising. Reactor/adversary exceptions still escape;
    the campaign [Runner] folds those into [Engine_error].

    [fault_filter] is consulted once per letter at enqueue time: [Drop]
    omits it, [Duplicate] enqueues it twice, [Delay d] backdates its
    enqueue time [d] events into the future — clamped below the patience
    bound, so the fairness override still forces eventual delivery.
    [crash_faults] force-crash each listed party at the given delivery
    event (before the adversary's move, outside its budget; [at <= 0]
    means the party never initializes). [watchdogs] run after every
    delivery on the undecided honest states. All three default to inert,
    making the run — and report — identical to the pre-fault engine. *)

val run :
  n:int ->
  t:int ->
  ?max_events:int ->
  ?patience:int ->
  ?seed:int ->
  ?record_trace:bool ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  ?profile:bool ->
  ?telemetry_stride:int ->
  ?observe:('s -> float option) ->
  ?fault_filter:Aat_runtime.Mailbox.fault_filter ->
  ?crash_faults:(Types.party_id * Types.round) list ->
  ?watchdogs:('s, 'm) Aat_runtime.Watchdog.t list ->
  reactor:('s, 'm, 'o) reactor ->
  adversary:'m adversary ->
  unit ->
  ('o, 'm) report
(** Runs until every honest party has an output. [patience] (default
    {!Aat_runtime.Defaults.patience}, 8·n²) bounds deferral; [max_events]
    (default {!Aat_runtime.Defaults.max_events}) bounds the run. Raises
    {!Exceeded_max_events} if honest parties are still undecided — a
    liveness failure of the protocol under test.

    There are no rounds in this model, so [telemetry] (default null sink —
    zero cost) aggregates delivery events into chunks of [telemetry_stride]
    (default {!Aat_runtime.Defaults.telemetry_stride}) events; each chunk
    emits one event whose [round] is the 1-based chunk index. [observe]
    samples undecided honest reactors' states at each chunk boundary for
    the convergence snapshot. [profile] (default [false]) attaches a
    wall-clock/GC-allocation sample to each telemetered chunk event; with
    the null sink no clock is read at all (see {!Sync_engine.run}). *)
