(** Event-driven asynchronous execution engine.

    The paper's related work contrasts the synchronous model with the
    asynchronous one — "messages get delivered eventually" — where the
    prior-art tree protocol of Nowak & Rybicki [33] lives. This engine
    models it: there are no rounds, only delivery events; a scheduler
    (chosen by the adversary) decides which in-flight message is delivered
    next, subject to {e eventual delivery}, which the engine enforces with
    a patience bound — a message deferred for [patience] consecutive events
    is delivered regardless of the scheduler's wishes. The adversary may
    additionally inject messages from corrupted senders at any step
    (authenticated channels: injected letters claiming honest senders are
    dropped and counted).

    Honest parties are {e reactors}: an initialization burst of messages,
    then a pure handler invoked per delivered message, producing follow-up
    messages; [output] signals the party's decision — the reactor keeps
    reacting afterwards (deciding is not halting in the asynchronous model;
    a decided party's echoes may be needed for others' liveness) and the
    run ends once every honest party has decided. There is no clock, so protocols
    cannot count rounds — exactly the constraint that forces the
    iteration/witness structure of asynchronous AA. *)

open Aat_engine

type ('state, 'msg, 'out) reactor = {
  name : string;
  init : self:Types.party_id -> n:int -> 'state * (Types.party_id * 'msg) list;
  on_message :
    self:Types.party_id ->
    'msg Types.envelope ->
    'state ->
    'state * (Types.party_id * 'msg) list;
  output : 'state -> 'out option;
}

type 'msg pending = { letter : 'msg Types.letter; enqueued_at : int }

(** Scheduling strategies (all subject to the patience bound). *)
type 'msg scheduler =
  | Fifo
  | Lifo
  | Random_order
  | Laggards of Types.party_id list
      (** starve messages from/to the given parties as long as allowed *)
  | Custom of ('msg pending array -> Aat_util.Rng.t -> int)

type 'msg adversary = {
  name : string;
  corrupt : n:int -> t:int -> Aat_util.Rng.t -> Types.party_id list;
  scheduler : 'msg scheduler;
  inject :
    step:int ->
    corrupted:bool array ->
    n:int ->
    rng:Aat_util.Rng.t ->
    'msg Types.letter list;
      (** called before every delivery event; senders must be corrupted *)
}

val passive : ?scheduler:'msg scheduler -> string -> 'msg adversary

type ('out, 'msg) report = {
  outputs : (Types.party_id * 'out) list;
  events : int;  (** total delivery events *)
  honest_messages : int;
  injected_messages : int;
  rejected_forgeries : int;
  corrupted : Types.party_id list;
}

exception Exceeded_max_events of string

val run :
  n:int ->
  t:int ->
  ?max_events:int ->
  ?patience:int ->
  ?seed:int ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  ?telemetry_stride:int ->
  ?observe:('s -> float option) ->
  reactor:('s, 'm, 'o) reactor ->
  adversary:'m adversary ->
  unit ->
  ('o, 'm) report
(** Runs until every honest party has an output. [patience] (default 8·n²)
    bounds deferral; [max_events] (default 200_000) bounds the run. Raises
    {!Exceeded_max_events} if honest parties are still undecided — a
    liveness failure of the protocol under test.

    There are no rounds in this model, so [telemetry] (default null sink —
    zero cost) aggregates delivery events into chunks of [telemetry_stride]
    (default 256) events; each chunk emits one event whose [round] is the
    1-based chunk index. [observe] samples undecided honest reactors' states
    at each chunk boundary for the convergence snapshot. *)
