open Aat_engine

type key = { origin : Types.party_id; tag : int }

type 'v msg =
  | Init of key * 'v
  | Echo of key * 'v
  | Ready of key * 'v

module Instances = struct
  (* Per-instance progress. Votes are keyed by value (an equivocating
     Byzantine sender can ECHO different values to different parties, so a
     vote table per value is required — only one value can ever reach the
     n - t echo quorum, by quorum intersection). *)
  type 'v instance = {
    mutable echoed : bool; (* we sent our ECHO *)
    mutable readied : bool; (* we sent our READY *)
    mutable delivered_value : 'v option;
    echoes : ('v, (Types.party_id, unit) Hashtbl.t) Hashtbl.t;
    readies : ('v, (Types.party_id, unit) Hashtbl.t) Hashtbl.t;
  }

  type 'v t = {
    n : int;
    thr : int; (* t *)
    table : (key, 'v instance) Hashtbl.t;
  }

  let create ~n ~t = { n; thr = t; table = Hashtbl.create 64 }

  let instance t key =
    match Hashtbl.find_opt t.table key with
    | Some i -> i
    | None ->
        let i =
          {
            echoed = false;
            readied = false;
            delivered_value = None;
            echoes = Hashtbl.create 4;
            readies = Hashtbl.create 4;
          }
        in
        Hashtbl.replace t.table key i;
        i

  let vote votes value sender =
    let voters =
      match Hashtbl.find_opt votes value with
      | Some set -> set
      | None ->
          let set = Hashtbl.create 8 in
          Hashtbl.replace votes value set;
          set
    in
    Hashtbl.replace voters sender ();
    Hashtbl.length voters

  let to_all t m = List.init t.n (fun p -> (p, m))

  let broadcast t ~self ~tag value =
    (* sender also counts itself: its own INIT is sent to everyone
       including itself, so the self-echo happens on receipt *)
    to_all t (Init ({ origin = self; tag }, value))

  let handle t ~self (e : _ Types.envelope) =
    ignore self;
    let out = ref [] and delivered = ref [] in
    let progress key inst value =
      (* READY once either quorum is met; deliver on 2t+1 READYs *)
      let echo_count =
        match Hashtbl.find_opt inst.echoes value with
        | Some set -> Hashtbl.length set
        | None -> 0
      in
      let ready_count =
        match Hashtbl.find_opt inst.readies value with
        | Some set -> Hashtbl.length set
        | None -> 0
      in
      if
        (not inst.readied)
        && (echo_count >= t.n - t.thr || ready_count >= t.thr + 1)
      then begin
        inst.readied <- true;
        out := to_all t (Ready (key, value)) @ !out
      end;
      if inst.delivered_value = None && ready_count >= (2 * t.thr) + 1 then begin
        inst.delivered_value <- Some value;
        delivered := (key, value) :: !delivered
      end
    in
    (match e.payload with
    | Init (key, value) ->
        (* authenticated channels: only the origin itself can INIT *)
        if e.sender = key.origin then begin
          let inst = instance t key in
          if not inst.echoed then begin
            inst.echoed <- true;
            out := to_all t (Echo (key, value)) @ !out
          end
        end
    | Echo (key, value) ->
        let inst = instance t key in
        ignore (vote inst.echoes value e.sender);
        progress key inst value
    | Ready (key, value) ->
        let inst = instance t key in
        ignore (vote inst.readies value e.sender);
        progress key inst value);
    (!out, !delivered)

  let delivered t key =
    match Hashtbl.find_opt t.table key with
    | Some i -> i.delivered_value
    | None -> None
end

type 'v state = { inst : 'v Instances.t; mutable out_value : 'v option }

let reactor ~sender ~inputs ~t =
  let key = { origin = sender; tag = 0 } in
  {
    Async_engine.name = "bracha";
    init =
      (fun ~self ~n ->
        let st = { inst = Instances.create ~n ~t; out_value = None } in
        let letters =
          if self = sender then Instances.broadcast st.inst ~self ~tag:0 (inputs self)
          else []
        in
        (st, letters));
    on_message =
      (fun ~self e st ->
        let letters, delivered = Instances.handle st.inst ~self e in
        List.iter
          (fun (k, v) -> if k = key && st.out_value = None then st.out_value <- Some v)
          delivered;
        (st, letters));
    output = (fun st -> st.out_value);
  }
