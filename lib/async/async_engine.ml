open Aat_engine
module Runtime = Aat_runtime

type ('state, 'msg, 'out) reactor = {
  name : string;
  init : self:Types.party_id -> n:int -> 'state * (Types.party_id * 'msg) list;
  on_message :
    self:Types.party_id ->
    'msg Types.envelope ->
    'state ->
    'state * (Types.party_id * 'msg) list;
  output : 'state -> 'out option;
}

type 'msg pending = { letter : 'msg Types.letter; enqueued_at : int }

type 'msg scheduler =
  | Fifo
  | Lifo
  | Random_order
  | Laggards of Types.party_id list
  | Custom of ('msg pending array -> Aat_util.Rng.t -> int)

type 'msg adversary = {
  core : 'msg Adversary.t;
  scheduler : 'msg scheduler;
}

let passive ?(scheduler = Fifo) name =
  { core = Adversary.passive name; scheduler }

let with_scheduler ?(scheduler = Fifo) core = { core; scheduler }

type ('out, 'msg) report = ('out, 'msg) Runtime.Report.t = {
  engine : string;
  n : int;
  t : int;
  outputs : (Types.party_id * 'out) list;
  termination_rounds : (Types.party_id * Types.round) list;
  rounds_used : int;
  corrupted : Types.party_id list;
  corruption_rounds : (Types.party_id * Types.round) list;
  honest_messages : int;
  adversary_messages : int;
  rejected_forgeries : int;
  trace : 'msg Types.letter list list;
  fault_stats : Runtime.Report.fault_stats;
  watchdog_violations : Runtime.Watchdog.violation list;
}

exception Exceeded_max_events of string

(* The pending pool is a growable array with swap-removal: delivery order is
   entirely in the scheduler's hands (plus the patience override), so pool
   order does not matter semantically.

   The patience override (and Fifo, the default scheduler) needs the
   oldest pending message on *every* delivery event; a linear scan made
   every async run quadratic in pool size. A segment tree over the slot
   keys keeps the argmin at its root: [key.(j)] is slot [j]'s
   [enqueued_at] ([max_int] when free), [tree] holds [2 * base] node
   entries with leaf [base + j] fixed at [j] and every internal node the
   argmin of its children {e with ties to the left}. Leaf order equals
   slot order, so a left-tie-break yields the {e leftmost} minimal slot
   — exactly the index the old first-minimum scan produced, which is
   what keeps the n=7 async bit-identity goldens green. O(log) updates
   on add/take, O(1) root read. Keys need not be monotone ([Delay]
   faults enqueue into the future), which rules out a plain FIFO ring
   but not an argmin tree. *)
module Pool = struct
  type 'msg t = {
    mutable items : 'msg pending array;
    mutable len : int;
    mutable base : int;  (* capacity; a power of two (or 0 when empty) *)
    mutable key : int array;
    mutable tree : int array;
  }

  let create () = { items = [||]; len = 0; base = 0; key = [||]; tree = [||] }

  (* Recompute the argmin path from slot [j]'s leaf to the root. *)
  let update pool j =
    let v = ref ((pool.base + j) / 2) in
    while !v >= 1 do
      let l = pool.tree.(2 * !v) and r = pool.tree.((2 * !v) + 1) in
      pool.tree.(!v) <- (if pool.key.(l) <= pool.key.(r) then l else r);
      v := !v / 2
    done

  let rebuild pool =
    for j = 0 to pool.base - 1 do
      pool.tree.(pool.base + j) <- j
    done;
    for v = pool.base - 1 downto 1 do
      let l = pool.tree.(2 * v) and r = pool.tree.((2 * v) + 1) in
      pool.tree.(v) <- (if pool.key.(l) <= pool.key.(r) then l else r)
    done

  let grow pool p =
    let cap = max 16 (2 * pool.base) in
    let items = Array.make cap p in
    Array.blit pool.items 0 items 0 pool.len;
    let key = Array.make cap max_int in
    Array.blit pool.key 0 key 0 pool.len;
    pool.items <- items;
    pool.key <- key;
    pool.base <- cap;
    pool.tree <- Array.make (2 * cap) 0;
    rebuild pool

  let add pool p =
    if pool.len = pool.base then grow pool p;
    pool.items.(pool.len) <- p;
    pool.key.(pool.len) <- p.enqueued_at;
    update pool pool.len;
    pool.len <- pool.len + 1

  let take pool i =
    let p = pool.items.(i) in
    pool.len <- pool.len - 1;
    pool.items.(i) <- pool.items.(pool.len);
    pool.key.(i) <- pool.key.(pool.len);
    update pool i;
    pool.key.(pool.len) <- max_int;
    update pool pool.len;
    p

  let oldest_slot pool = pool.tree.(1)
  (* leftmost slot with minimal [enqueued_at]; meaningful when non-empty *)

  let view pool = Array.sub pool.items 0 pool.len

  let is_empty pool = pool.len = 0
end

let pick_index (type m) ~(scheduler : m scheduler) ~patience ~step ~rng
    (pool : m Pool.t) =
  (* patience override: the longest-waiting message must go out *)
  let oldest = Pool.oldest_slot pool in
  if step - pool.Pool.items.(oldest).enqueued_at >= patience then oldest
  else
    match scheduler with
    | Fifo -> oldest
    | Lifo -> pool.Pool.len - 1
    | Random_order -> Aat_util.Rng.int rng pool.Pool.len
    | Laggards lagging ->
        (* prefer any message not touching the lagging set *)
        let rec find i =
          if i >= pool.Pool.len then Aat_util.Rng.int rng pool.Pool.len
          else
            let l = pool.Pool.items.(i).letter in
            if List.mem l.Types.src lagging || List.mem l.Types.dst lagging
            then find (i + 1)
            else i
        in
        find 0
    | Custom f ->
        let i = f (Pool.view pool) rng in
        if i < 0 || i >= pool.Pool.len then 0 else i

module Telemetry = Aat_telemetry.Telemetry

let run_outcome (type s m o) ~n ~t ?(max_events = Runtime.Defaults.max_events)
    ?patience ?(seed = 0) ?(record_trace = false)
    ?(telemetry = Telemetry.Sink.null) ?(profile = false)
    ?(telemetry_stride = Runtime.Defaults.telemetry_stride)
    ?(observe : (s -> float option) option)
    ?(fault_filter : Runtime.Mailbox.fault_filter option)
    ?(crash_faults : (Types.party_id * Types.round) list = [])
    ?(watchdogs : (s, m) Runtime.Watchdog.t list = [])
    ~(reactor : (s, m, o) reactor) ~(adversary : m adversary) () =
  if n < 1 then invalid_arg "Async_engine.run: n < 1";
  if t < 0 || t >= n then invalid_arg "Async_engine.run: need 0 <= t < n";
  if telemetry_stride < 1 then
    invalid_arg "Async_engine.run: telemetry_stride < 1";
  let patience =
    match patience with Some p -> p | None -> Runtime.Defaults.patience ~n
  in
  let rng = Aat_util.Rng.create seed in
  let corruption = Runtime.Corruption.create ~n ~t in
  let mailbox : m Runtime.Mailbox.t = Runtime.Mailbox.create ~n in
  (match fault_filter with
  | Some f -> Runtime.Mailbox.set_fault_filter mailbox f
  | None -> ());
  let crashed = ref 0 in
  Runtime.Corruption.corrupt_all corruption ~at:0
    (adversary.core.initial_corruptions ~n ~t rng);
  let corrupted p = Runtime.Corruption.is_corrupted corruption p in
  (* A passive adversary never corrupts, injects, or reads its view, so
     the per-event view (and the delivered-letter history backing it) is
     skipped wholesale — the history list is what made long passive runs
     scale with total deliveries rather than pool size. *)
  let passive = adversary.core.Adversary.passive in
  let track_history = (not passive) || record_trace in
  let states : s option array = Array.make n None in
  let outputs : o option array = Array.make n None in
  let decided_at = Array.make n (-1) in
  (* Count of honest-and-undecided parties, kept incrementally so the
     per-event termination check is O(1) instead of an O(n) scan. *)
  let undecided = ref 0 in
  let counting = ref false in
  let crash p ~at =
    let was_undecided = !counting && p >= 0 && p < n && outputs.(p) = None in
    (* [force_corrupt] returning true means [p] was honest until now, so
       [was_undecided] is exactly the honest-and-undecided test. *)
    if Runtime.Corruption.force_corrupt corruption ~at p then begin
      if was_undecided then decr undecided;
      incr crashed;
      states.(p) <- None;
      outputs.(p) <- None;
      decided_at.(p) <- -1
    end
  in
  (* Crashes scheduled at or before event 0 take effect before reactor
     initialization: the party never runs at all. *)
  List.iter (fun (p, at) -> if at <= 0 then crash p ~at:0) crash_faults;
  let pool : m Pool.t = Pool.create () in
  let step = ref 0 in
  (* Delivered-letter history, most recent first, one singleton list per
     delivery event — the adversary view's [history] (and, reversed, the
     trace). *)
  let history = ref [] in
  (* Telemetry: there are no rounds here, so delivery events are aggregated
     into chunks of [telemetry_stride] events, one telemetry event per
     chunk. With the null sink all of this is skipped. *)
  let live = not (Telemetry.Sink.is_null telemetry) in
  if live then
    telemetry.Telemetry.Sink.on_start
      {
        Telemetry.engine = "async";
        protocol = reactor.name;
        adversary = adversary.core.name;
        n;
        t;
        seed;
        initial_corruptions = Runtime.Corruption.corrupted_list corruption;
      };
  (* Profiling samples ride telemetry chunks: with the null sink (or
     profiling off, the default) no clock is read and no sample is built. *)
  let profiling = live && profile in
  let chunk = ref 0 in
  let chunk_start = ref 0 in
  let chunk_t0 = ref (if profiling then Unix.gettimeofday () else 0.) in
  let chunk_a0 = ref (if profiling then Gc.allocated_bytes () else 0.) in
  let chunk_honest = ref 0 in
  let chunk_injected = ref 0 in
  let chunk_forgeries = ref 0 in
  let chunk_honest_bytes = ref 0 in
  let chunk_adversary_bytes = ref 0 in
  let chunk_sent_by = if live then Array.make n 0 else [||] in
  let chunk_faults_mark = ref 0 in
  let flush_chunk () =
    (* a chunk is emitted if anything happened in it — including messages
       posted at init but never delivered (everyone decided immediately) *)
    if
      live
      && (!step > !chunk_start || !chunk_honest > 0 || !chunk_injected > 0
         || !chunk_forgeries > 0)
    then begin
      incr chunk;
      let snapshot =
        match observe with
        | None -> []
        | Some f ->
            let acc = ref [] in
            for p = n - 1 downto 0 do
              if not (corrupted p) then
                match states.(p) with
                | Some s -> (
                    match f s with
                    | Some v -> acc := (p, v) :: !acc
                    | None -> ())
                | None -> ()
            done;
            !acc
      in
      telemetry.Telemetry.Sink.on_round
        {
          Telemetry.round = !chunk;
          honest_msgs = !chunk_honest;
          adversary_msgs = !chunk_injected;
          delivered_msgs = !step - !chunk_start;
          rejected_forgeries = !chunk_forgeries;
          honest_bytes = !chunk_honest_bytes;
          adversary_bytes = !chunk_adversary_bytes;
          sent_by = Array.copy chunk_sent_by;
          corruptions = [];
          grades = None;
          marks =
            (* fault accounting rides the free-form [marks] channel, only on
               chunks where the filter actually touched a letter — benign
               streams are byte-identical to before *)
            (if !chunk_faults_mark > 0 then
               [ ("fault_events", !chunk_faults_mark) ]
             else []);
          snapshot;
          profile =
            (if profiling then
               Some
                 {
                   Telemetry.wall_ns =
                     int_of_float ((Unix.gettimeofday () -. !chunk_t0) *. 1e9);
                   alloc_bytes = Gc.allocated_bytes () -. !chunk_a0;
                 }
             else None);
        };
      if profiling then begin
        chunk_t0 := Unix.gettimeofday ();
        chunk_a0 := Gc.allocated_bytes ()
      end;
      chunk_start := !step;
      chunk_honest := 0;
      chunk_injected := 0;
      chunk_forgeries := 0;
      chunk_honest_bytes := 0;
      chunk_adversary_bytes := 0;
      chunk_faults_mark := 0;
      Array.fill chunk_sent_by 0 n 0
    end
  in
  (* Enqueue one screened/accounted letter through the fault filter: an
     omitted letter vanishes, a duplicated one enters the pool twice, a
     delayed one is backdated into the future — clamped to the patience
     bound so the scheduler's fairness override still guarantees eventual
     delivery. *)
  let enqueue (l : m Types.letter) =
    match Runtime.Mailbox.decide mailbox ~round:!step l with
    | Runtime.Mailbox.Deliver ->
        Pool.add pool { letter = l; enqueued_at = !step }
    | Runtime.Mailbox.Drop -> incr chunk_faults_mark
    | Runtime.Mailbox.Duplicate ->
        incr chunk_faults_mark;
        Pool.add pool { letter = l; enqueued_at = !step };
        Pool.add pool { letter = l; enqueued_at = !step }
    | Runtime.Mailbox.Delay d ->
        incr chunk_faults_mark;
        let d = max 0 (min d (patience - 1)) in
        Pool.add pool { letter = l; enqueued_at = !step + d }
  in
  let post_from src letters =
    List.iter
      (fun ((dst, body) : Types.party_id * m) ->
        if dst >= 0 && dst < n then begin
          Runtime.Mailbox.note_honest mailbox 1;
          if live then begin
            incr chunk_honest;
            chunk_sent_by.(src) <- chunk_sent_by.(src) + 1;
            chunk_honest_bytes :=
              !chunk_honest_bytes + Telemetry.payload_bytes body
          end;
          enqueue { Types.src; dst; body }
        end)
      letters
  in
  (* initialize honest reactors *)
  for p = 0 to n - 1 do
    if not (corrupted p) then begin
      let st, letters = reactor.init ~self:p ~n in
      states.(p) <- Some st;
      (match reactor.output st with
      | Some o ->
          outputs.(p) <- Some o;
          decided_at.(p) <- 0
      | None -> ());
      post_from p letters
    end
  done;
  for p = 0 to n - 1 do
    if (not (corrupted p)) && outputs.(p) = None then incr undecided
  done;
  counting := true;
  let all_decided () = !undecided = 0 in
  let undecided_parties () =
    let acc = ref [] in
    for p = n - 1 downto 0 do
      if (not (corrupted p)) && outputs.(p) = None then acc := p :: !acc
    done;
    !acc
  in
  (* Watchdogs, first violation wins; inert (and free) when none installed. *)
  let pending_watchdogs = ref watchdogs in
  let violations_rev = ref [] in
  let run_watchdogs ~round ~delivered =
    match !pending_watchdogs with
    | [] -> ()
    | wds ->
        let corrupted_now = Runtime.Corruption.set corruption in
        let wd_states =
          let acc = ref [] in
          for p = n - 1 downto 0 do
            match states.(p) with
            | Some s when not (corrupted p) -> acc := (p, s) :: !acc
            | _ -> ()
          done;
          !acc
        in
        pending_watchdogs :=
          List.filter
            (fun wd ->
              match
                Runtime.Watchdog.check wd ~round ~delivered ~states:wd_states
                  ~corrupted:corrupted_now
              with
              | None -> true
              | Some detail ->
                  violations_rev :=
                    {
                      Runtime.Watchdog.watchdog = Runtime.Watchdog.name wd;
                      round;
                      detail;
                    }
                    :: !violations_rev;
                  false)
            wds
  in
  let view () =
    {
      Adversary.round = !step;
      n;
      t;
      corrupted = Runtime.Corruption.flags corruption;
      honest_outbox = [];
      history = !history;
      rng;
    }
  in
  let stall = ref None in
  while !stall = None && not (all_decided ()) do
    if !step >= max_events then
      stall :=
        Some
          (Printf.sprintf "%s: undecided after %d delivery events" reactor.name
             max_events)
    else begin
      incr step;
      (* fault-plan crashes land before the adversary moves; like an
         adaptive corruption, a crashed party stops reacting but its
         in-flight messages stay deliverable *)
      List.iter
        (fun (p, at) -> if at = !step then crash p ~at:!step)
        crash_faults;
      (* adaptive corruptions: a party corrupted at event [e] stops
         reacting — its in-flight messages were sent while honest and stay
         deliverable. Skipped outright for a passive adversary, which
         neither corrupts nor injects and never reads the view. *)
      if not passive then begin
        List.iter
          (fun p ->
            let was_undecided = p >= 0 && p < n && outputs.(p) = None in
            if Runtime.Corruption.corrupt corruption ~at:!step p then begin
              if was_undecided then decr undecided;
              states.(p) <- None;
              outputs.(p) <- None;
              decided_at.(p) <- -1
            end)
          (adversary.core.corrupt_more (view ()));
        (* adversarial injections, authenticated-channel screening *)
        let forgeries_before = Runtime.Mailbox.rejected_forgeries mailbox in
        let injected =
          Runtime.Mailbox.screen mailbox ~adversary:adversary.core.name
            ~corrupted:(Runtime.Corruption.set corruption)
            (adversary.core.deliver (view ()))
        in
        if live then
          chunk_forgeries :=
            !chunk_forgeries
            + (Runtime.Mailbox.rejected_forgeries mailbox - forgeries_before);
        List.iter
          (fun (l : m Types.letter) ->
            Runtime.Mailbox.note_adversary mailbox 1;
            if live then begin
              incr chunk_injected;
              chunk_sent_by.(l.Types.src) <- chunk_sent_by.(l.Types.src) + 1;
              chunk_adversary_bytes :=
                !chunk_adversary_bytes + Telemetry.payload_bytes l.Types.body
            end;
            enqueue l)
          injected
      end;
      if Pool.is_empty pool then
        stall :=
          Some
            (Printf.sprintf
               "%s: no pending messages but honest parties undecided \
                (deadlock)"
               reactor.name)
      else begin
        let idx =
          pick_index ~scheduler:adversary.scheduler ~patience ~step:!step ~rng
            pool
        in
        let { letter; _ } = Pool.take pool idx in
        if track_history then history := [ letter ] :: !history;
        let dst = letter.Types.dst in
        (* A decided party keeps reacting: in the asynchronous model "output"
           does not mean "halt" — its echoes may still be needed for other
           parties' liveness (e.g. the READY quorums of reliable broadcast).
           The run ends once every honest party has decided. *)
        if not (corrupted dst) then begin
          match states.(dst) with
          | None -> ()
          | Some st ->
              let st, letters =
                reactor.on_message ~self:dst
                  {
                    Types.sender = letter.Types.src;
                    payload = letter.Types.body;
                  }
                  st
              in
              states.(dst) <- Some st;
              (if outputs.(dst) = None then
                 match reactor.output st with
                 | Some o ->
                     outputs.(dst) <- Some o;
                     decided_at.(dst) <- !step;
                     decr undecided
                 | None -> ());
              post_from dst letters
        end;
        run_watchdogs ~round:!step ~delivered:[ letter ];
        if live && !step - !chunk_start >= telemetry_stride then flush_chunk ()
      end
    end
  done;
  if live then begin
    flush_chunk ();
    telemetry.Telemetry.Sink.on_stop
      {
        Telemetry.rounds = !chunk;
        honest_messages = Runtime.Mailbox.honest_messages mailbox;
        adversary_messages = Runtime.Mailbox.adversary_messages mailbox;
      }
  end;
  let outs = ref [] and terms = ref [] in
  for p = n - 1 downto 0 do
    match outputs.(p) with
    | Some o when not (corrupted p) ->
        outs := (p, o) :: !outs;
        terms := (p, decided_at.(p)) :: !terms
    | _ -> ()
  done;
  let report =
    {
      engine = "async";
      n;
      t;
      outputs = !outs;
      termination_rounds = !terms;
      rounds_used = !step;
      corrupted = Runtime.Corruption.corrupted_list corruption;
      corruption_rounds = Runtime.Corruption.rounds_list corruption;
      honest_messages = Runtime.Mailbox.honest_messages mailbox;
      adversary_messages = Runtime.Mailbox.adversary_messages mailbox;
      rejected_forgeries = Runtime.Mailbox.rejected_forgeries mailbox;
      trace = (if record_trace then List.rev !history else []);
      fault_stats = Runtime.Mailbox.fault_stats mailbox ~crashed:!crashed;
      watchdog_violations = List.rev !violations_rev;
    }
  in
  match !stall with
  | None -> Runtime.Outcome.Completed report
  | Some reason ->
      Runtime.Outcome.Liveness_timeout
        { Runtime.Outcome.report; undecided = undecided_parties (); reason }

let run ~n ~t ?max_events ?patience ?seed ?record_trace ?telemetry ?profile
    ?telemetry_stride ?observe ?fault_filter ?crash_faults ?watchdogs ~reactor
    ~adversary () =
  match
    run_outcome ~n ~t ?max_events ?patience ?seed ?record_trace ?telemetry
      ?profile ?telemetry_stride ?observe ?fault_filter ?crash_faults
      ?watchdogs ~reactor ~adversary ()
  with
  | Runtime.Outcome.Completed report -> report
  | Runtime.Outcome.Liveness_timeout { reason; _ } ->
      raise (Exceeded_max_events reason)
  | Runtime.Outcome.Engine_error _ ->
      (* [run_outcome] lets reactor/adversary exceptions escape; only
         [Runner.run] folds them into [Engine_error]. *)
      assert false
