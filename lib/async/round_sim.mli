(** Round simulation: running the same protocol under both engines.

    The classic simulation argument — a synchronous protocol can be run
    over an asynchronous network by tagging every message with its round
    and releasing round [r] only when all round-[r-1] deliveries have
    completed — implemented as an adapter pair, enabling differential
    execution of one protocol text under both engines (the cross-engine
    qcheck properties in the test suite are built on it).

    {!reactor_of_protocol} is exact in the benign (no-corruption) setting:
    each party sends one {!batch} per round to {e every} party — a [None]
    payload is a keep-alive carrying only the round number — and advances
    its simulated round once all [n] batches for it have arrived. The
    per-round inboxes it reconstructs (at most one message per sender,
    sorted by sender ascending) coincide with the synchronous engine's, so
    honest state evolution, outputs, and decision rounds match the
    synchronous execution {e bit for bit, regardless of the scheduler}.
    Parties that decide keep emitting (empty) batches so the lock-step
    keeps turning for the others — deciding is not halting in the
    asynchronous model. With corrupted parties the simulation stalls (their
    batches never arrive): Byzantine differential testing should drive the
    native engines instead.

    {!protocol_of_reactor} is the cheap converse: deliver each round's
    inbox to the reactor message by message (sender-ascending). It is
    faithful exactly for reactors that send at most one message per
    recipient per burst — the synchronous engine's per-pair dedup drops the
    rest — and whose parties all decide in the same round (the synchronous
    engine freezes a party at its decision; a frozen party's later echoes
    are lost). Honest-sender reliable broadcast (Bracha) satisfies both. *)

open Aat_engine

type 'm batch = { round : Types.round; payload : 'm option }
(** The wire type of a lifted protocol: a round-stamped optional message.
    Every party sends one batch per (round, recipient) pair. *)

type ('s, 'm, 'o) state

val reactor_of_protocol :
  ('s, 'm, 'o) Protocol.t ->
  (('s, 'm, 'o) state, 'm batch, 'o * Types.round) Async_engine.reactor
(** Lift a synchronous protocol into an async reactor. The reactor's
    output pairs the protocol's decision with the simulated round at which
    it fell (0 for a zero-communication decision), so termination structure
    can be compared against the synchronous report directly. *)

type ('s, 'm) sync_state

val protocol_of_reactor :
  ('s, 'm, 'o) Async_engine.reactor ->
  (('s, 'm) sync_state, 'm, 'o) Protocol.t
(** Run an async reactor under the synchronous engine: round 1 delivers the
    init bursts, round [r+1] delivers what round [r]'s receives emitted.
    See the faithfulness caveats above. *)
