open Aat_engine
open Aat_tree

type 'v msg =
  | Rbc of 'v Bracha.msg
  | Report of { iteration : int; ids : Types.party_id list }

type 'v result = { value : 'v; iterations_done : int }

type 'v state = {
  n : int;
  t : int;
  self : Types.party_id;
  iterations : int;
  combine : 'v list -> 'v option;
  validate : 'v -> bool;
  rbc : 'v Bracha.Instances.t;
  (* per iteration: delivered values by origin *)
  delivered : (int, (Types.party_id, 'v) Hashtbl.t) Hashtbl.t;
  (* per iteration: reports by reporter *)
  reports : (int, (Types.party_id, Types.party_id list) Hashtbl.t) Hashtbl.t;
  reported : (int, unit) Hashtbl.t; (* iterations we reported *)
  mutable iteration : int;
  mutable value : 'v;
  mutable decided : 'v result option;
}

let deliveries st r =
  match Hashtbl.find_opt st.delivered r with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace st.delivered r tbl;
      tbl

let reports_for st r =
  match Hashtbl.find_opt st.reports r with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace st.reports r tbl;
      tbl

let to_all st m = List.init st.n (fun p -> (p, m))

(* Drive the iteration state machine as far as the collected evidence
   allows. Multiple steps can unlock at once (buffered future-iteration
   deliveries), hence the loop. *)
let rec try_progress st acc =
  if st.decided <> None then acc
  else begin
    let r = st.iteration in
    let dels = deliveries st r in
    let new_msgs = ref [] in
    (* step 1: report once n - t values are in *)
    if (not (Hashtbl.mem st.reported r)) && Hashtbl.length dels >= st.n - st.t
    then begin
      Hashtbl.replace st.reported r ();
      let ids = Hashtbl.fold (fun p _ acc -> p :: acc) dels [] in
      new_msgs :=
        to_all st (Report { iteration = r; ids = List.sort compare ids })
        @ !new_msgs
    end;
    (* step 2: advance on n - t satisfied reports *)
    let advanced =
      Hashtbl.mem st.reported r
      &&
      let satisfied =
        Hashtbl.fold
          (fun _reporter ids count ->
            if List.for_all (Hashtbl.mem dels) ids then count + 1 else count)
          (reports_for st r) 0
      in
      if satisfied >= st.n - st.t then begin
        let multiset = Hashtbl.fold (fun _ v acc -> v :: acc) dels [] in
        (match st.combine multiset with
        | Some v -> st.value <- v
        | None -> ());
        st.iteration <- r + 1;
        if st.iteration > st.iterations then
          st.decided <- Some { value = st.value; iterations_done = r }
        else begin
          let next =
            Bracha.Instances.broadcast st.rbc ~self:st.self ~tag:st.iteration
              st.value
            |> List.map (fun (dst, m) -> (dst, Rbc m))
          in
          new_msgs := next @ !new_msgs
        end;
        true
      end
      else false
    in
    let acc = !new_msgs @ acc in
    if advanced then try_progress st acc else acc
  end

let reactor ~name ~inputs ~t ~iterations ~combine ~validate =
  {
    Async_engine.name;
    init =
      (fun ~self ~n ->
        let st =
          {
            n;
            t;
            self;
            iterations;
            combine;
            validate;
            rbc = Bracha.Instances.create ~n ~t;
            delivered = Hashtbl.create 8;
            reports = Hashtbl.create 8;
            reported = Hashtbl.create 8;
            iteration = 1;
            value = inputs self;
            decided = None;
          }
        in
        if iterations <= 0 then begin
          st.decided <- Some { value = st.value; iterations_done = 0 };
          (st, [])
        end
        else
          let letters =
            Bracha.Instances.broadcast st.rbc ~self ~tag:1 st.value
            |> List.map (fun (dst, m) -> (dst, Rbc m))
          in
          (st, letters))
    ;
    on_message =
      (fun ~self e st ->
        let immediate =
          match e.Types.payload with
          | Rbc rbc_msg ->
              let out, delivered =
                Bracha.Instances.handle st.rbc ~self
                  { e with Types.payload = rbc_msg }
              in
              List.iter
                (fun ((key : Bracha.key), v) ->
                  if
                    key.tag >= 1
                    && key.tag <= st.iterations
                    && st.validate v
                  then begin
                    let dels = deliveries st key.tag in
                    if not (Hashtbl.mem dels key.origin) then
                      Hashtbl.replace dels key.origin v
                  end)
                delivered;
              List.map (fun (dst, m) -> (dst, Rbc m)) out
          | Report { iteration; ids } ->
              (* malformed (too small / duplicated / out-of-range) reports
                 are discarded: the witness intersection argument needs
                 every accepted report to carry >= n - t distinct ids *)
              let distinct = List.sort_uniq compare ids in
              if
                iteration >= 1
                && iteration <= st.iterations
                && List.length distinct = List.length ids
                && List.length ids >= st.n - st.t
                && List.for_all (fun p -> p >= 0 && p < st.n) ids
              then Hashtbl.replace (reports_for st iteration) e.Types.sender ids;
              []
        in
        let followups = try_progress st [] in
        (st, immediate @ followups));
    output = (fun st -> st.decided);
  }

let real ~inputs ~t ~iterations =
  reactor ~name:"async-aa-real" ~inputs ~t ~iterations
    ~combine:(fun values -> Aat_realaa.Trim.trimmed_midpoint ~t values)
    ~validate:(fun v -> Float.is_finite v)

let tree ~tree ~inputs ~t ~iterations =
  let rooted = Rooted.make tree in
  let nv = Labeled_tree.n_vertices tree in
  reactor ~name:"async-aa-tree" ~inputs ~t ~iterations
    ~combine:(fun multiset ->
      match Aat_treeaa.Nr_baseline.safe_vertices rooted ~t multiset with
      | [] -> None
      | safe -> Some (Aat_treeaa.Nr_baseline.center_of rooted safe))
    ~validate:(fun v -> v >= 0 && v < nv)
