type view = float array

let groups ~n ~t =
  (* partition 0..n-1 into ⌈n/t⌉ blocks of at most t consecutive parties *)
  let rec go start acc =
    if start >= n then List.rev acc
    else
      let stop = min n (start + t) in
      go stop (List.init (stop - start) (fun i -> start + i) :: acc)
  in
  go 0 []

let one_round_chain ~n ~t ~a ~b =
  if t < 1 || t >= n then invalid_arg "Chain.one_round_chain: need 1 <= t < n";
  if a > b then invalid_arg "Chain.one_round_chain: a > b";
  let blocks = groups ~n ~t in
  let current = Array.make n a in
  let chain = ref [ Array.copy current ] in
  List.iter
    (fun block ->
      List.iter (fun q -> current.(q) <- b) block;
      chain := Array.copy current :: !chain)
    blocks;
  List.rev !chain

let adjacent_executions_valid ~n ~t chain =
  let rec go = function
    | u :: (v :: _ as rest) ->
        let diff = ref 0 in
        for q = 0 to n - 1 do
          if u.(q) <> v.(q) then incr diff
        done;
        !diff <= t && !diff > 0 && go rest
    | _ -> true
  in
  go chain

let max_adjacent_gap ~f ~n ~t ~a ~b =
  let chain = one_round_chain ~n ~t ~a ~b in
  let rec go best = function
    | u :: (v :: _ as rest) -> go (Float.max best (Float.abs (f v -. f u))) rest
    | _ -> best
  in
  go 0. chain

let tree_max_adjacent_gap ~f ~tree ~n ~t =
  let path = Aat_tree.Metrics.longest_path tree in
  let a = path.(0) and b = path.(Array.length path - 1) in
  let rooted = Aat_tree.Rooted.make tree in
  let chain =
    one_round_chain ~n ~t ~a:(float_of_int a) ~b:(float_of_int b)
    |> List.map (Array.map int_of_float)
  in
  let rec go best = function
    | u :: (v :: _ as rest) ->
        go (max best (Aat_tree.Paths.distance rooted (f v) (f u))) rest
    | _ -> best
  in
  go 0 chain
