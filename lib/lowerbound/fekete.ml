let optimal_partition ~t ~r =
  if t < 0 || r < 1 then invalid_arg "Fekete.optimal_partition";
  if t = 0 then []
  else if t <= r then List.init t (fun _ -> 1)
  else begin
    (* r parts, as equal as possible: the product of positive integers with
       fixed sum is maximised by a balanced split. *)
    let q = t / r and rem = t mod r in
    List.init r (fun i -> if i < rem then q + 1 else q)
  end

let log2_product parts =
  List.fold_left (fun acc p -> acc +. Float.log2 (float_of_int p)) 0. parts

let log2_k ~n ~t ~r ~d =
  if n < 1 || t < 0 || r < 1 then invalid_arg "Fekete.log2_k";
  if t = 0 || d <= 0. then neg_infinity
  else
    Float.log2 d
    +. log2_product (optimal_partition ~t ~r)
    -. (float_of_int r *. Float.log2 (float_of_int (n + t)))

let k_bound ~n ~t ~r ~d = Float.pow 2. (log2_k ~n ~t ~r ~d)

let chain_length ~n ~t ~r =
  if t = 0 then 0.
  else
    (float_of_int r *. Float.log2 (float_of_int (n + t)))
    -. log2_product (optimal_partition ~t ~r)

let min_rounds ~n ~t ~d ~eps =
  if eps <= 0. then invalid_arg "Fekete.min_rounds: eps <= 0";
  if t = 0 || d <= eps then 0
  else begin
    let log2_eps = Float.log2 eps in
    let rec go r =
      if r > 10_000 then r (* unreachable: K decreases geometrically *)
      else if log2_k ~n ~t ~r ~d <= log2_eps then r
      else go (r + 1)
    in
    go 1
  end

let theorem2_closed_form ~n ~t ~d =
  if t = 0 || d < 4. then 0.
  else
    let delta = float_of_int (n + t) /. float_of_int t in
    let denom = Float.log2 (Float.log2 d) +. Float.log2 delta in
    if denom <= 0. then 0. else Float.log2 d /. denom

let tree_min_rounds ~n ~t ~tree =
  min_rounds ~n ~t ~d:(float_of_int (Aat_tree.Metrics.diameter tree)) ~eps:1.
