(** Fekete's lower bound on synchronous AA, adapted to trees (Section 3).

    Theorem 1 (Fekete [19], Theorem 15): any deterministic [R]-round
    protocol with Validity and Termination has an execution where two
    honest outputs are at least

    {v K(R, D) = D * sup{ t_1*...*t_R : sum t_i <= t } / (n + t)^R v}

    apart. Corollary 1 transfers this to trees verbatim (replace [a, b] by
    the endpoints of a longest path, so [D = D(T)]); Theorem 2 turns it
    into the round lower bound

    {v R = Omega( log D / (log log D + log ((n+t)/t)) ). v}

    Everything here is exact arithmetic in log-space: the quantities
    overflow floats for interesting parameters ([s = (n+t)^R / prod t_i]
    reaches 10^40 quickly). *)

val optimal_partition : t:int -> r:int -> int list
(** The balanced partition of [t] into [r] parts maximising the product
    (parts of size [⌊t/r⌋] and [⌈t/r⌉]; fewer than [r] parts when [t < r],
    since zero-parts only shrink the product). Requires [t >= 0, r >= 1].
    Empty iff [t = 0]. *)

val log2_product : int list -> float
(** [log2] of the product of the parts ([0.] for the empty partition, whose
    product is the empty product 1 — but see {!k_bound}, which treats
    [t = 0] as "no lower bound"). *)

val log2_k : n:int -> t:int -> r:int -> d:float -> float
(** [log2 (K(r, d))] with the optimal partition. [t = 0] yields
    [neg_infinity] (no Byzantine parties — Fekete's construction needs at
    least one). *)

val k_bound : n:int -> t:int -> r:int -> d:float -> float
(** [K(r, d)] itself; may underflow to [0.] for large [r] — use {!log2_k}
    for comparisons. *)

val chain_length : n:int -> t:int -> r:int -> float
(** [log2] of the view-chain length [s = (n+t)^r / prod t_i] for the
    optimal partition — the number of indistinguishability steps the proof
    walks through. *)

val min_rounds : n:int -> t:int -> d:float -> eps:float -> int
(** The smallest [R] with [K(R, d) <= eps] — every deterministic protocol
    achieving [eps]-agreement needs at least this many rounds. [0] when
    [t = 0] or [d <= eps]. *)

val theorem2_closed_form : n:int -> t:int -> d:float -> float
(** The closed form [log2 d / (log2 log2 d + log2 ((n+t)/t))] of Theorem 2
    (a lower-bound estimate of {!min_rounds}; clamped to 0 for degenerate
    parameters). *)

val tree_min_rounds : n:int -> t:int -> tree:Aat_tree.Labeled_tree.t -> int
(** Corollary 1 + Theorem 2 instantiated on a concrete input-space tree:
    {!min_rounds} at [d = D(T)] and [eps = 1] (1-Agreement). *)
