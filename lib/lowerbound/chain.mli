(** The executable core of Fekete's proof: the one-round view chain.

    A one-round full-information protocol is a function [f] from a party's
    view — the vector of values the [n] parties claimed to it — to an
    output. The proof constructs a chain of views [v_0, ..., v_s] such
    that:

    - [v_0] is the all-[a] view and [v_s] the all-[b] view, which Validity
      pins to outputs [a] and [b] respectively;
    - consecutive views differ only in the claims of one group of at most
      [t] parties, and both arise {e in a single execution} in which that
      group is Byzantine and equivocates — one honest party holds [v_j],
      another [v_{j+1}].

    Agreement in each joint execution then forces some adjacent pair with
    output gap at least [(b - a) / s], with [s = ⌈n/t⌉] — within a constant
    of [K(1, D) = D·t/(n+t)]. {!max_adjacent_gap} evaluates this attack
    against {e any} candidate output function; the tests run it against the
    trimmed-midpoint rule and qcheck-generated rules, and the tree version
    walks the same chain on a longest path of a tree (Corollary 1). *)

type view = float array
(** [view.(q)] = the value party [q] claimed. *)

val one_round_chain : n:int -> t:int -> a:float -> b:float -> view list
(** The chain [v_0 .. v_s]. Requires [1 <= t < n] and [a <= b]. *)

val adjacent_executions_valid : n:int -> t:int -> view list -> bool
(** Checks the chain invariant: consecutive views differ in at most [t]
    positions (the equivocating group) — i.e. each step is realisable with
    [t] Byzantine parties. *)

val max_adjacent_gap :
  f:(view -> float) -> n:int -> t:int -> a:float -> b:float -> float
(** The largest [|f v_{j+1} - f v_j|] along the chain — every one-round
    protocol's output rule exhibits a gap of at least [(b-a)/⌈n/t⌉] when
    [f] respects Validity at the endpoints. *)

val tree_max_adjacent_gap :
  f:(Aat_tree.Labeled_tree.vertex array -> Aat_tree.Labeled_tree.vertex) ->
  tree:Aat_tree.Labeled_tree.t ->
  n:int ->
  t:int ->
  int
(** Corollary 1: the same chain walked over the endpoints of a longest path
    of [tree]; views are vertex vectors, the gap is tree distance. *)
