(** Fault plans: declarative descriptions of non-Byzantine faults.

    A plan is a list of faults, each acting independently on the run's
    letters (or, for crashes, on parties). The Byzantine adversary of the
    model subsumes all of them in theory — a crashed party is a corrupted
    party that says nothing — but crash, omission and partition faults
    below the Byzantine threshold (and beyond it!) are exactly the
    gradations the robustness layer is for: see [docs/FAULTS.md].

    Time is engine-relative, as everywhere in this repo: "round" means
    lock-step round under the synchronous engine and delivery-event number
    under the asynchronous one.

    Plans are data; {!Inject.filter} compiles one into the
    {!Aat_runtime.Mailbox.fault_filter} the engines consume, and
    [Plan_io] parses/prints the compact plan grammar used by the
    [--fault-plan] CLI flags. *)

module Types = Aat_runtime.Types

(** Which letters a probabilistic fault applies to. *)
type scope =
  | All  (** the whole network *)
  | Party of Types.party_id  (** letters sent {e or} received by the party *)
  | Pair of { src : Types.party_id; dst : Types.party_id }
      (** the directed channel [src -> dst] *)

type fault =
  | Crash of { party : Types.party_id; at_round : Types.round }
      (** the party goes silent forever from [at_round] on; [at_round <= 0]
          means it never runs. Implemented as a budget-exempt forced
          corruption, so it is observationally identical to the
          [Strategies.crash] Byzantine strategy. *)
  | Crash_recover of {
      party : Types.party_id;
      from_round : Types.round;
      to_round : Types.round;
    }
      (** the party is silent (nothing sent {e or} received) during the
          inclusive window, then resumes with its pre-crash state *)
  | Omission of { prob : float; scope : scope }
      (** each in-scope letter is independently dropped with probability
          [prob] *)
  | Partition of {
      blocks : Types.party_id list list;
      from_round : Types.round;
      to_round : Types.round;
    }
      (** letters crossing block boundaries are dropped during the
          inclusive window; parties not listed in any block form one
          implicit extra block *)
  | Duplicate of { prob : float; scope : scope }
      (** async engine only: each in-scope letter is enqueued twice with
          probability [prob] *)
  | Delay of { prob : float; scope : scope; by : int }
      (** async engine only: each in-scope letter is deferred [by]
          scheduler events with probability [prob], clamped to the
          patience bound (eventual delivery is preserved) *)

type t = fault list

val empty : t

val is_empty : t -> bool

val sync_compatible : t -> bool
(** Whether the plan avoids the async-only faults ([Duplicate]/[Delay]). *)

val lossy : t -> bool
(** Whether the plan can actually lose letters ([Omission], [Partition],
    [Crash_recover]) — the faults that step outside the reliable-channel
    model and therefore qualify a failed verdict for excusal. A permanent
    [Crash] is {e not} lossy: it is Byzantine-expressible. *)

val crashes : t -> (Types.party_id * Types.round) list
(** The permanent crashes, as the engines' [~crash_faults] argument. *)

val crash_count : t -> int
(** Number of distinct parties the plan permanently crashes. *)

val validate : ?n:int -> t -> (unit, string) result
(** Structural checks: probabilities in [0, 1], windows well-ordered,
    party ids non-negative (and below [n] when given), partition blocks
    non-empty and disjoint. *)

val random :
  Aat_util.Rng.t ->
  n:int ->
  rounds_hint:int ->
  sync_only:bool ->
  ?intensity:float ->
  unit ->
  t
(** Draw a chaos plan: 1-2 mild faults with rounds in
    [1 .. rounds_hint]. [intensity] (default 1.0, clamped to [0, 1])
    scales fault probabilities and the odds of a second fault; [0.0]
    yields the empty plan. Deterministic in the RNG state — campaign
    chaos mode draws from the task's own seed stream. *)
