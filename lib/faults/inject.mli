(** Compile a {!Plan.t} into the decision function the engines consume.

    The letter-level faults become one {!Aat_runtime.Mailbox.fault_filter};
    the party-level [Crash] faults become the engines' [~crash_faults]
    list (via {!crashes}). Both must be passed for the plan to act in
    full:

    {[
      let filter = Inject.filter ~engine:`Sync ~seed plan in
      Sync_engine.run_outcome ... ~fault_filter:filter
        ~crash_faults:(Inject.crashes plan) ...
    ]} *)

val filter :
  engine:[ `Sync | `Async ] ->
  seed:int ->
  Plan.t ->
  Aat_runtime.Mailbox.fault_filter
(** Probabilistic decisions draw from a dedicated SplitMix64 stream split
    from [seed] (never from the engine's adversary RNG), so a faulty run
    is a pure function of its seed — campaign JSONL stays bit-identical
    for any [--workers]. Async-only faults ([Duplicate]/[Delay]) compile
    to [Deliver] under [`Sync]; dropping dominates when several faults
    hit the same letter; every probabilistic fault consumes its draw on
    every in-scope letter so decisions are independent of plan order. *)

val crashes : Plan.t -> (Aat_runtime.Types.party_id * Aat_runtime.Types.round) list
(** Alias of {!Plan.crashes}: the [~crash_faults] engine argument. *)
