(** The compact fault-plan grammar behind the [--fault-plan] CLI flags.

    One clause per fault, clauses joined with [;]:

    {v
    crash:P@R                party P silent forever from round R
    crash-recover:P@A-B      party P silent during rounds A..B inclusive
    omission:PROB            whole-network per-letter omission
    omission:PROB:party:P    ... scoped to letters touching P
    omission:PROB:pair:S>D   ... scoped to the directed channel S->D
    duplicate:PROB[:scope]   async engines only
    delay:PROB:BY[:scope]    async only: defer BY events (within patience)
    partition:B1|B2@A-B      blocks = comma-separated parties, e.g.
                             partition:0,1|2,3,4@2-6
    v}

    ["none"] (or the empty string) is the empty plan. [parse] and
    {!to_string} are mutual inverses up to float rendering. *)

val parse : string -> (Plan.t, string) result
(** Parse and {!Plan.validate} (without an [n] bound — the campaign
    re-validates against the drawn [n]). *)

val to_string : Plan.t -> string

val to_json : Plan.t -> Aat_telemetry.Jsonx.t
(** The plan in its compact string form, as a JSON string — the shape
    campaign JSONL headers embed. *)

val of_json : Aat_telemetry.Jsonx.t -> (Plan.t, string) result
