module RW = Aat_runtime.Watchdog
module Convex_hull = Aat_tree.Convex_hull
module Types = Aat_runtime.Types

let corruption_budget ~t =
  let high_water = ref 0 in
  RW.make ~name:"corruption-budget"
    (fun ~round:_ ~delivered:_ ~states:_ ~corrupted ->
      let k = Aat_runtime.Party_set.cardinal corrupted in
      if k < !high_water then
        Some
          (Printf.sprintf "corruption set shrank from %d to %d parties"
             !high_water k)
      else begin
        high_water := k;
        if k > t then
          Some
            (Printf.sprintf "%d corrupted/crashed parties exceed budget t=%d"
               k t)
        else None
      end)

let spread_non_expansion ?(tolerance = 1e-9) ~observe () =
  let prev = ref None in
  RW.make ~name:"spread-non-expansion"
    (fun ~round:_ ~delivered:_ ~states ~corrupted:_ ->
      let values =
        List.filter_map (fun (_, s) -> observe s) states
      in
      match values with
      | [] | [ _ ] ->
          (* fewer than two observable honest values: spread is 0, which
             can only shrink the envelope *)
          (match values with
          | [ v ] -> prev := Some (v, v)
          | _ -> ());
          None
      | v :: vs ->
          let lo = List.fold_left Float.min v vs
          and hi = List.fold_left Float.max v vs in
          let verdict =
            match !prev with
            | Some (plo, phi)
              when lo < plo -. tolerance || hi > phi +. tolerance ->
                Some
                  (Printf.sprintf
                     "honest envelope [%g, %g] escaped previous [%g, %g]" lo
                     hi plo phi)
            | _ -> None
          in
          if verdict = None then prev := Some (lo, hi);
          verdict)

let hull_containment ~rooted ~inputs ~vertex_of () =
  let hull = ref None in
  RW.make ~name:"hull-containment"
    (fun ~round ~delivered:_ ~states ~corrupted ->
      let h =
        match !hull with
        | Some h -> h
        | None ->
            (* Reference hull: the inputs of the parties honest when the
               watchdog first looks (round 1, i.e. excluding initial
               corruptions — the same set Validity is judged against;
               adaptively corrupted parties' inputs stay in, matching
               [Report.honest_inputs]). *)
            let generators =
              List.filteri
                (fun p _ -> not (Aat_runtime.Party_set.mem corrupted p))
                (Array.to_list inputs)
            in
            let h = Convex_hull.compute rooted generators in
            hull := Some h;
            h
      in
      let offender =
        List.find_map
          (fun (p, s) ->
            match vertex_of s with
            | Some v when not (Convex_hull.mem h v) -> Some (p, v)
            | _ -> None)
          states
      in
      match offender with
      | Some (p, v) ->
          Some
            (Printf.sprintf
               "p%d holds vertex %d outside the honest-input hull at round %d"
               p v round)
      | None -> None)

let grade_consistency ~grades_of ~pp_value () =
  RW.make ~name:"grade-consistency"
    (fun ~round ~delivered:_ ~states ~corrupted:_ ->
      (* Gradecast soundness: no two honest parties may hold grade-2
         results with different values for the same slot. *)
      let best : (int, Types.party_id * string) Hashtbl.t =
        Hashtbl.create 16
      in
      List.find_map
        (fun (p, s) ->
          List.find_map
            (fun (slot, value) ->
              let repr = pp_value value in
              match Hashtbl.find_opt best slot with
              | Some (q, repr') when repr' <> repr ->
                  Some
                    (Printf.sprintf
                       "round %d slot %d: p%d grades 2 on %s but p%d grades \
                        2 on %s"
                       round slot p repr q repr')
              | Some _ -> None
              | None ->
                  Hashtbl.replace best slot (p, repr);
                  None)
            (grades_of s))
        states)
