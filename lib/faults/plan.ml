module Types = Aat_runtime.Types

type scope =
  | All
  | Party of Types.party_id
  | Pair of { src : Types.party_id; dst : Types.party_id }

type fault =
  | Crash of { party : Types.party_id; at_round : Types.round }
  | Crash_recover of {
      party : Types.party_id;
      from_round : Types.round;
      to_round : Types.round;
    }
  | Omission of { prob : float; scope : scope }
  | Partition of {
      blocks : Types.party_id list list;
      from_round : Types.round;
      to_round : Types.round;
    }
  | Duplicate of { prob : float; scope : scope }
  | Delay of { prob : float; scope : scope; by : int }

type t = fault list

let empty = []

let is_empty plan = plan = []

let sync_compatible =
  List.for_all (function Duplicate _ | Delay _ -> false | _ -> true)

let lossy plan =
  List.exists
    (function
      | Omission _ | Partition _ | Crash_recover _ -> true
      | Crash _ | Duplicate _ | Delay _ -> false)
    plan

let crashes plan =
  List.filter_map
    (function Crash { party; at_round } -> Some (party, at_round) | _ -> None)
    plan

let crash_count plan =
  List.length
    (List.sort_uniq compare
       (List.filter_map
          (function Crash { party; _ } -> Some party | _ -> None)
          plan))

let validate_scope ?n scope =
  let party_ok p =
    if p < 0 then Error (Printf.sprintf "negative party id %d" p)
    else
      match n with
      | Some n when p >= n ->
          Error (Printf.sprintf "party id %d out of range for n=%d" p n)
      | _ -> Ok ()
  in
  match scope with
  | All -> Ok ()
  | Party p -> party_ok p
  | Pair { src; dst } -> (
      match party_ok src with Error _ as e -> e | Ok () -> party_ok dst)

let validate ?n plan =
  let prob_ok what p =
    if p < 0. || p > 1. || Float.is_nan p then
      Error (Printf.sprintf "%s probability %g outside [0, 1]" what p)
    else Ok ()
  in
  let party_ok p =
    validate_scope ?n (Party p)
  in
  let rec go = function
    | [] -> Ok ()
    | fault :: rest -> (
        let this =
          match fault with
          | Crash { party; at_round } ->
              if at_round < 0 then
                Error (Printf.sprintf "crash round %d negative" at_round)
              else party_ok party
          | Crash_recover { party; from_round; to_round } ->
              if from_round < 0 || to_round < from_round then
                Error
                  (Printf.sprintf "bad crash-recover window %d-%d" from_round
                     to_round)
              else party_ok party
          | Omission { prob; scope } -> (
              match prob_ok "omission" prob with
              | Error _ as e -> e
              | Ok () -> validate_scope ?n scope)
          | Duplicate { prob; scope } -> (
              match prob_ok "duplicate" prob with
              | Error _ as e -> e
              | Ok () -> validate_scope ?n scope)
          | Delay { prob; scope; by } -> (
              if by < 1 then
                Error (Printf.sprintf "delay amount %d < 1" by)
              else
                match prob_ok "delay" prob with
                | Error _ as e -> e
                | Ok () -> validate_scope ?n scope)
          | Partition { blocks; from_round; to_round } ->
              if from_round < 0 || to_round < from_round then
                Error
                  (Printf.sprintf "bad partition window %d-%d" from_round
                     to_round)
              else if List.exists (fun b -> b = []) blocks then
                Error "empty partition block"
              else
                let all = List.concat blocks in
                let sorted = List.sort_uniq compare all in
                if List.length sorted <> List.length all then
                  Error "partition blocks overlap"
                else
                  List.fold_left
                    (fun acc p ->
                      match acc with Error _ -> acc | Ok () -> party_ok p)
                    (Ok ()) all
        in
        match this with Error _ as e -> e | Ok () -> go rest)
  in
  go plan

(* Chaos plans: 1-2 mild faults drawn from the task's own RNG stream. The
   intensity knob scales both the per-letter probabilities and the odds of
   drawing a second fault; 0.0 means a benign (empty) plan. *)
let random rng ~n ~rounds_hint ~sync_only ?(intensity = 1.0) () =
  let intensity = Float.max 0. (Float.min 1. intensity) in
  if intensity = 0. then []
  else begin
    let module Rng = Aat_util.Rng in
    let round () = 1 + Rng.int rng (max 1 rounds_hint) in
    let party () = Rng.int rng n in
    let scope () =
      match Rng.int rng 3 with
      | 0 -> All
      | 1 -> Party (party ())
      | _ ->
          let src = party () in
          let dst = (src + 1 + Rng.int rng (max 1 (n - 1))) mod n in
          Pair { src; dst }
    in
    let prob () = intensity *. (0.02 +. (0.18 *. Rng.float rng 1.0)) in
    let fault () =
      let kinds = if sync_only then 4 else 6 in
      match Rng.int rng kinds with
      | 0 -> Crash { party = party (); at_round = round () }
      | 1 ->
          let a = round () in
          let b = a + Rng.int rng (max 1 rounds_hint) in
          Crash_recover { party = party (); from_round = a; to_round = b }
      | 2 -> Omission { prob = prob (); scope = scope () }
      | 3 ->
          let blocks =
            if n < 2 then [ [ 0 ] ]
            else
              let cut = 1 + Rng.int rng (n - 1) in
              [ List.init cut Fun.id; List.init (n - cut) (fun i -> cut + i) ]
          in
          let a = round () in
          let b = a + Rng.int rng (max 1 rounds_hint) in
          Partition { blocks; from_round = a; to_round = b }
      | 4 -> Duplicate { prob = prob (); scope = scope () }
      | _ ->
          Delay
            {
              prob = prob ();
              scope = scope ();
              by = 1 + Rng.int rng (max 1 (4 * n));
            }
    in
    let first = fault () in
    if Rng.float rng 1.0 < 0.5 *. intensity then [ first; fault () ]
    else [ first ]
  end
