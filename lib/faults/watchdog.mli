(** The watchdog catalog: concrete {!Aat_runtime.Watchdog.t} monitors for
    the invariants the paper's definitions promise.

    Each constructor returns a {e fresh} stateful watchdog — build a new
    value per run (the campaign [Runner] takes a thunk for exactly this
    reason). Watchdogs are parameterized by extractors from the
    protocol's state type, so one catalog serves every protocol without
    this library depending on any of them.

    A watchdog violation is a diagnosis, not a crash: the engines record
    the first violation per watchdog into
    [Report.watchdog_violations] and keep running — see
    [docs/FAULTS.md] for the catalog's invariant-to-paper mapping. *)

val corruption_budget : t:int -> ('s, 'm) Aat_runtime.Watchdog.t
(** Fires when the corrupted-or-crashed party count exceeds [t] (the
    over-budget regime that downgrades [Violated] to [Excused]), or if
    the corruption set ever shrinks — corruption is monotone by
    construction, so a shrink means engine state corruption. *)

val spread_non_expansion :
  ?tolerance:float ->
  observe:('s -> float option) ->
  unit ->
  ('s, 'm) Aat_runtime.Watchdog.t
(** The contraction invariant of RealAA / iterated midpoint: the envelope
    [min, max] over observable honest values must never expand from one
    round to the next. [observe] maps a party state to its current value
    when one is observable (e.g. [Bdh.observe]); [tolerance] (default
    [1e-9]) absorbs float noise. *)

val hull_containment :
  rooted:Aat_tree.Rooted.t ->
  inputs:Aat_tree.Labeled_tree.vertex array ->
  vertex_of:('s -> Aat_tree.Labeled_tree.vertex option) ->
  unit ->
  ('s, 'm) Aat_runtime.Watchdog.t
(** Def. 2 Validity as a runtime invariant: every observable honest
    position must lie in the convex hull of honest inputs. The reference
    hull is computed at the watchdog's first check from [inputs] minus
    the then-corrupted parties (i.e. over initially-honest inputs,
    matching [Report.honest_inputs]). *)

val grade_consistency :
  grades_of:('s -> (int * 'v) list) ->
  pp_value:('v -> string) ->
  unit ->
  ('s, 'm) Aat_runtime.Watchdog.t
(** Gradecast soundness: no two honest parties may simultaneously hold
    grade-2 results with different values for the same slot. [grades_of]
    extracts the [(slot, value)] pairs currently held at grade 2 (e.g.
    index-tagged [Gradecast.results] filtered to [G2]); values are
    compared via their [pp_value] rendering so the catalog stays
    polymorphic. *)
