module J = Aat_telemetry.Jsonx

(* Compact plan grammar, one fault per ';'-separated clause, following the
   colon conventions of the CLI's tree/input specs:

     crash:P@R                      party P silent forever from round R
     crash-recover:P@A-B            party P silent during rounds A..B
     omission:PROB                  whole-network omission
     omission:PROB:party:P          scoped to letters touching P
     omission:PROB:pair:S>D         scoped to the directed channel S->D
     duplicate:PROB[:scope]         async only
     delay:PROB:BY[:scope]         async only, defer BY events
     partition:B1|B2|...@A-B        blocks are comma-separated party lists

   "none" (or the empty string) is the empty plan. *)

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let int_of s what =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> fail "%s: expected an integer, got %S" what s

let float_of s what =
  match float_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> fail "%s: expected a number, got %S" what s

let ( let* ) r f = Result.bind r f

let parse_at s what =
  (* "P@R" *)
  match String.split_on_char '@' s with
  | [ p; r ] ->
      let* p = int_of p what in
      let* r = int_of r what in
      Ok (p, r)
  | _ -> fail "%s: expected PARTY@ROUND, got %S" what s

let parse_window s what =
  (* "A-B" *)
  match String.split_on_char '-' s with
  | [ a; b ] ->
      let* a = int_of a what in
      let* b = int_of b what in
      Ok (a, b)
  | _ -> fail "%s: expected FROM-TO, got %S" what s

let parse_scope tokens what =
  match tokens with
  | [] -> Ok Plan.All
  | [ "party"; p ] ->
      let* p = int_of p what in
      Ok (Plan.Party p)
  | [ "pair"; sd ] -> (
      match String.split_on_char '>' sd with
      | [ s; d ] ->
          let* src = int_of s what in
          let* dst = int_of d what in
          Ok (Plan.Pair { src; dst })
      | _ -> fail "%s: expected pair:SRC>DST, got pair:%S" what sd)
  | _ ->
      fail "%s: bad scope %S (want party:P or pair:S>D)" what
        (String.concat ":" tokens)

let parse_fault clause =
  match String.split_on_char ':' (String.trim clause) with
  | "crash" :: [ spec ] ->
      let* party, at_round = parse_at spec "crash" in
      Ok (Plan.Crash { party; at_round })
  | "crash-recover" :: [ spec ] -> (
      match String.index_opt spec '@' with
      | Some i ->
          let* party = int_of (String.sub spec 0 i) "crash-recover" in
          let* from_round, to_round =
            parse_window
              (String.sub spec (i + 1) (String.length spec - i - 1))
              "crash-recover"
          in
          Ok (Plan.Crash_recover { party; from_round; to_round })
      | None -> fail "crash-recover: expected PARTY@FROM-TO, got %S" spec)
  | "omission" :: prob :: scope ->
      let* prob = float_of prob "omission" in
      let* scope = parse_scope scope "omission" in
      Ok (Plan.Omission { prob; scope })
  | "duplicate" :: prob :: scope ->
      let* prob = float_of prob "duplicate" in
      let* scope = parse_scope scope "duplicate" in
      Ok (Plan.Duplicate { prob; scope })
  | "delay" :: prob :: by :: scope ->
      let* prob = float_of prob "delay" in
      let* by = int_of by "delay" in
      let* scope = parse_scope scope "delay" in
      Ok (Plan.Delay { prob; scope; by })
  | "partition" :: [ spec ] -> (
      match String.index_opt spec '@' with
      | None -> fail "partition: expected BLOCKS@FROM-TO, got %S" spec
      | Some i ->
          let blocks_s = String.sub spec 0 i in
          let* from_round, to_round =
            parse_window
              (String.sub spec (i + 1) (String.length spec - i - 1))
              "partition"
          in
          let* blocks =
            List.fold_right
              (fun block acc ->
                let* acc = acc in
                let* parties =
                  List.fold_right
                    (fun p acc ->
                      let* acc = acc in
                      let* p = int_of p "partition" in
                      Ok (p :: acc))
                    (String.split_on_char ',' block)
                    (Ok [])
                in
                Ok (parties :: acc))
              (String.split_on_char '|' blocks_s)
              (Ok [])
          in
          Ok (Plan.Partition { blocks; from_round; to_round }))
  | kind :: _ ->
      fail
        "unknown fault %S (want crash, crash-recover, omission, duplicate, \
         delay or partition)"
        kind
  | [] -> fail "empty fault clause"

let parse s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok Plan.empty
  else
    let clauses =
      List.filter
        (fun c -> String.trim c <> "")
        (String.split_on_char ';' s)
    in
    let* plan =
      List.fold_right
        (fun clause acc ->
          let* acc = acc in
          let* fault = parse_fault clause in
          Ok (fault :: acc))
        clauses (Ok [])
    in
    let* () = Plan.validate plan in
    Ok plan

let scope_to_string = function
  | Plan.All -> ""
  | Plan.Party p -> Printf.sprintf ":party:%d" p
  | Plan.Pair { src; dst } -> Printf.sprintf ":pair:%d>%d" src dst

let float_to_string f =
  (* shortest round-tripping decimal keeps to_string/parse inverses *)
  let s = Printf.sprintf "%.12g" f in
  s

let fault_to_string = function
  | Plan.Crash { party; at_round } -> Printf.sprintf "crash:%d@%d" party at_round
  | Plan.Crash_recover { party; from_round; to_round } ->
      Printf.sprintf "crash-recover:%d@%d-%d" party from_round to_round
  | Plan.Omission { prob; scope } ->
      Printf.sprintf "omission:%s%s" (float_to_string prob)
        (scope_to_string scope)
  | Plan.Duplicate { prob; scope } ->
      Printf.sprintf "duplicate:%s%s" (float_to_string prob)
        (scope_to_string scope)
  | Plan.Delay { prob; scope; by } ->
      Printf.sprintf "delay:%s:%d%s" (float_to_string prob) by
        (scope_to_string scope)
  | Plan.Partition { blocks; from_round; to_round } ->
      Printf.sprintf "partition:%s@%d-%d"
        (String.concat "|"
           (List.map
              (fun b -> String.concat "," (List.map string_of_int b))
              blocks))
        from_round to_round

let to_string = function
  | [] -> "none"
  | plan -> String.concat ";" (List.map fault_to_string plan)

let to_json plan = J.Str (to_string plan)

let of_json = function
  | J.Str s -> parse s
  | J.Null -> Ok Plan.empty
  | _ -> Error "fault plan: expected a JSON string"
