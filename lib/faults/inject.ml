module Types = Aat_runtime.Types
module Mailbox = Aat_runtime.Mailbox
module Rng = Aat_util.Rng

let fault_rng ~seed =
  (* A dedicated stream split off the run seed: the engine's own RNG is
     created from [seed] directly, so the fault stream must not alias it.
     SplitMix64's [split] hands back an independently-seeded generator;
     doing it off a fixed xor keeps the two streams distinct even for
     seed 0. *)
  Rng.split (Rng.create (seed lxor 0x6a09e667f3bcc908))

let in_scope (scope : Plan.scope) ~src ~dst =
  match scope with
  | Plan.All -> true
  | Plan.Party p -> src = p || dst = p
  | Plan.Pair pair -> src = pair.src && dst = pair.dst

(* One compiled decision procedure per fault. Probabilistic faults draw
   from the shared per-run stream only when the letter is in scope, so the
   decision sequence is a deterministic function of (seed, letter
   sequence) — and the letter sequence is itself deterministic per run. *)
let compile_fault ~engine rng (fault : Plan.fault) :
    round:Types.round -> src:Types.party_id -> dst:Types.party_id ->
    Mailbox.fault_decision =
  match fault with
  | Plan.Crash _ ->
      (* handled at the party level via [crashes] / [~crash_faults]: the
         engine force-corrupts the party, which stops its sends at the
         source — nothing to do per letter *)
      fun ~round:_ ~src:_ ~dst:_ -> Mailbox.Deliver
  | Plan.Crash_recover { party; from_round; to_round } ->
      fun ~round ~src ~dst ->
        if
          round >= from_round && round <= to_round
          && (src = party || dst = party)
        then Mailbox.Drop
        else Mailbox.Deliver
  | Plan.Omission { prob; scope } ->
      fun ~round:_ ~src ~dst ->
        if in_scope scope ~src ~dst && Rng.float rng 1.0 < prob then
          Mailbox.Drop
        else Mailbox.Deliver
  | Plan.Partition { blocks; from_round; to_round } ->
      (* Flat block table indexed by party: O(1) per letter with no
         hashing. Parties in no listed block (including any id beyond the
         listed range) share the implicit "rest" block [-1]. *)
      let top =
        List.fold_left
          (fun acc block -> List.fold_left (fun a p -> max a p) acc block)
          (-1) blocks
      in
      let block_of = Array.make (top + 1) (-1) in
      List.iteri
        (fun i block ->
          List.iter (fun p -> if p >= 0 then block_of.(p) <- i) block)
        blocks;
      let lookup p =
        if p >= 0 && p <= top then Array.unsafe_get block_of p else -1
      in
      fun ~round ~src ~dst ->
        if
          round >= from_round && round <= to_round && lookup src <> lookup dst
        then Mailbox.Drop
        else Mailbox.Deliver
  | Plan.Duplicate { prob; scope } -> (
      match engine with
      | `Sync -> fun ~round:_ ~src:_ ~dst:_ -> Mailbox.Deliver
      | `Async ->
          fun ~round:_ ~src ~dst ->
            if in_scope scope ~src ~dst && Rng.float rng 1.0 < prob then
              Mailbox.Duplicate
            else Mailbox.Deliver)
  | Plan.Delay { prob; scope; by } -> (
      match engine with
      | `Sync -> fun ~round:_ ~src:_ ~dst:_ -> Mailbox.Deliver
      | `Async ->
          fun ~round:_ ~src ~dst ->
            if in_scope scope ~src ~dst && Rng.float rng 1.0 < prob then
              Mailbox.Delay by
            else Mailbox.Deliver)

let filter ~engine ~seed (plan : Plan.t) : Mailbox.fault_filter =
  let rng = fault_rng ~seed in
  let compiled = List.map (compile_fault ~engine rng) plan in
  fun ~round ~src ~dst ->
    (* Every probabilistic fault consumes its draw on every in-scope
       letter, whether or not an earlier fault already doomed the letter —
       the decision sequence must not depend on fault order. The first
       non-[Deliver] verdict in plan order wins, with [Drop] dominating
       (a letter cannot be both dropped and delayed). *)
    List.fold_left
      (fun acc decide ->
        let d = decide ~round ~src ~dst in
        match (acc, d) with
        | Mailbox.Drop, _ | _, Mailbox.Drop -> Mailbox.Drop
        | Mailbox.Deliver, d -> d
        | acc, _ -> acc)
      Mailbox.Deliver compiled

let crashes = Plan.crashes
