(* The experiment tables of EXPERIMENTS.md (the quantitative claims of
   the paper - see DESIGN.md section 4), the BENCH_<NAME>.json codec and
   the drift checker. [bench/main.exe] and [treeaa bench check] are thin
   front ends over this module; see the interface for the contract. *)


open Treeagree

(* ------------------------------------------------------------------ *)
(* table rendering *)

type table = string * string list * string list list

(* Under --json-out every printed table is also captured here (in print
   order) and dumped as BENCH_<GROUP>.json after the group runs; the
   committed BENCH_*.json files at the repo root are regenerated this way
   (without --profile, so they stay deterministic). [quiet] additionally
   suppresses the printing — the drift checker regenerates groups for
   their bytes alone. *)
let capturing = ref false
let quiet = ref false
let captured : table list ref = ref []

let print_table ~title ~header rows =
  if !capturing then captured := (title, header, rows) :: !captured;
  if not !quiet then begin
    let all = header :: rows in
    let widths =
      List.fold_left
        (fun acc row ->
          List.mapi
            (fun i cell -> max (List.nth acc i) (String.length cell))
            row)
        (List.map (fun _ -> 0) header)
        all
    in
    let render row =
      String.concat "  "
        (List.mapi
           (fun i cell -> Printf.sprintf "%-*s" (List.nth widths i) cell)
           row)
    in
    Printf.printf "\n== %s ==\n" title;
    Printf.printf "%s\n" (render header);
    Printf.printf "%s\n" (String.make (String.length (render header)) '-');
    List.iter (fun row -> Printf.printf "%s\n" (render row)) rows;
    flush stdout
  end

let ok_of verdict = if Verdict.all_ok verdict then "ok" else "VIOLATED"

let f2 x = Printf.sprintf "%.2f" x

let sci x = Printf.sprintf "%.2e" x

(* hull inputs: initially-honest parties (adaptive corruption keeps the
   victim's input in the provable hull) *)
let honest_inputs_of inputs (report : (_, _) Engine.report) =
  Report.honest_inputs ~inputs report

(* ------------------------------------------------------------------ *)
(* E1: RealAA convergence and round complexity (Theorem 3, Lemma 5) *)

let lemma5_log2_bound ~n ~t ~r ~d =
  (* D * t^R / (R^R * (n - 2t)^R), in log2 *)
  Float.log2 d
  +. (float_of_int r
     *. (Float.log2 (float_of_int t)
        -. Float.log2 (float_of_int r)
        -. Float.log2 (float_of_int (n - (2 * t)))))

(* E1's cells ride the campaign Pool: each (n, t, D) cell is an
   independent task, so `--workers` spreads the grid over domains without
   changing a single digit of the table. *)
let realaa_runner ~n ~t ~d ~adversary =
  let inputs =
    Array.init n (fun i -> d *. float_of_int i /. float_of_int (n - 1))
  in
  let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
  (Runner.real_aa ~eps:1. ~inputs ~t ~iterations ~adversary (), iterations)

let table_e1 ?(workers = 1) () =
  let cells =
    List.concat_map
      (fun (n, t) -> List.map (fun d -> (n, t, d)) [ 1e2; 1e3; 1e4; 1e6 ])
      [ (4, 1); (7, 2); (10, 3); (16, 5) ]
  in
  let rows =
    Pool.map ~workers (List.length cells) (fun i ->
        let n, t, d = List.nth cells i in
        let passive, iterations =
          realaa_runner ~n ~t ~d ~adversary:(fun () -> Adversary.passive "none")
        in
        let o_passive = passive.Runner.run ~seed:1 () in
        let spoiler, _ =
          realaa_runner ~n ~t ~d ~adversary:(fun () ->
              Spoiler.realaa_spoiler ~t ~iterations)
        in
        let o_spoiler = spoiler.Runner.run ~seed:1 () in
        let spread_passive = Option.value o_passive.Runner.spread ~default:nan in
        let spread_spoiler = Option.value o_spoiler.Runner.spread ~default:nan in
        let bound = Float.pow 2. (lemma5_log2_bound ~n ~t ~r:iterations ~d) in
        [
          string_of_int n;
          string_of_int t;
          sci d;
          string_of_int iterations;
          string_of_int o_spoiler.Runner.rounds_used;
          string_of_int (Rounds.paper_round_bound ~range:d ~eps:1.);
          sci spread_passive;
          sci spread_spoiler;
          sci bound;
          (if
             spread_spoiler <= bound +. 1e-9
             && Runner.ok o_passive && Runner.ok o_spoiler
           then "ok"
           else "VIOLATED");
        ])
    |> Array.to_list
  in
  print_table
    ~title:
      "E1  RealAA (Thm 3 / Lemma 5): rounds vs schedule, spread vs bound \
       (spoiler adversary)"
    ~header:
      [ "n"; "t"; "D"; "iters"; "rounds"; "Thm3-bound"; "spread(none)";
        "spread(spoiler)"; "Lemma5-bound"; "check" ]
    rows;
  (* E1b: per-iteration convergence trace with the adversary able to split
     every iteration (R = t). With R > t some iteration is necessarily
     clean, the honest values collapse to one point and no later attack can
     revive the spread — which is why the long-schedule rows above end at
     spread 0. *)
  let n = 10 and t = 3 and d = 1e3 in
  let iterations = t in
  let inputs = Array.init n (fun i -> d *. float_of_int i /. float_of_int (n - 1)) in
  let report =
    Engine.run ~n ~t ~seed:1
      ~max_rounds:(3 * iterations)
      ~protocol:(Real_aa.protocol ~inputs:(fun i -> inputs.(i)) ~t ~iterations ())
      ~adversary:(Spoiler.realaa_spoiler ~t ~iterations)
      ()
  in
  let outputs = Engine.honest_outputs report in
  let rows =
    List.init iterations (fun k ->
        let spread =
          Verdict.spread
            (List.map (fun (r : Real_aa.result) -> List.nth r.trajectory k) outputs)
        in
        [ string_of_int (k + 1); sci spread ])
  in
  print_table
    ~title:
      (Printf.sprintf
         "E1b RealAA spread per iteration, spoiler splitting every iteration \
          (n=%d t=%d D=%.0e, R=t)"
         n t d)
    ~header:[ "iteration"; "honest spread" ] rows;
  (* E1c: short schedules R <= t — the regime where Lemma 5's bound is
     nonzero; measured spread must stay below it. *)
  let cells =
    List.concat_map
      (fun (n, t) ->
        List.filter_map
          (fun r -> if r > t then None else Some (n, t, r))
          [ 1; 2; 3 ])
      [ (10, 3); (16, 5); (22, 7) ]
  in
  let rows =
    Pool.map ~workers (List.length cells) (fun i ->
        let n, t, r = List.nth cells i in
        let d = 1e3 in
        let inputs =
          Array.init n (fun i -> d *. float_of_int i /. float_of_int (n - 1))
        in
        let runner =
          Runner.real_aa ~eps:1. ~inputs ~t ~iterations:r
            ~adversary:(fun () -> Spoiler.realaa_spoiler ~t ~iterations:r)
            ()
        in
        let o = runner.Runner.run ~seed:1 () in
        let spread = Option.value o.Runner.spread ~default:nan in
        let bound = Float.pow 2. (lemma5_log2_bound ~n ~t ~r ~d) in
        [
          string_of_int n;
          string_of_int t;
          string_of_int r;
          sci spread;
          sci bound;
          (if spread <= bound +. 1e-9 then "ok" else "VIOLATED");
        ])
    |> Array.to_list
  in
  print_table
    ~title:
      "E1c RealAA partial executions (R <= t, D=1000): measured spread vs \
       Lemma 5's bound"
    ~header:[ "n"; "t"; "R"; "spread(spoiler)"; "Lemma5-bound"; "check" ]
    rows

(* ------------------------------------------------------------------ *)
(* E2: TreeAA round complexity across tree families (Theorem 4) *)

let tree_verdict_of tree inputs (report : (_, _) Engine.report) =
  let honest_inputs = honest_inputs_of inputs report in
  Tree_verdict.check ~tree
    ~n_honest:(Array.length inputs - List.length report.Engine.corrupted)
    ~honest_inputs
    ~honest_outputs:(Engine.honest_outputs report)

let spoiler_for_tree ~tree ~t =
  let nv = Tree.n_vertices tree in
  let tour_len = (2 * nv) - 1 in
  let iter1 = Rounds.bdh_iterations ~range:(float_of_int (tour_len - 1)) ~eps:1. in
  let iter2 =
    Rounds.bdh_iterations ~range:(float_of_int (Metrics.diameter tree)) ~eps:1.
  in
  Compose_adversary.phased ~name:"spoiler-both"
    ~barrier:(max 1 (Paths_finder.rounds ~tree))
    ~first:(Spoiler.realaa_spoiler ~t ~iterations:iter1)
    ~second:(Spoiler.realaa_spoiler ~t ~iterations:iter2)

let table_e2 () =
  let n = 10 and t = 3 in
  let families =
    [
      ("path", Generate.path 10);
      ("path", Generate.path 100);
      ("path", Generate.path 1_000);
      ("path", Generate.path 10_000);
      ("path", Generate.path 100_000);
      ("star", Generate.star 1_000);
      ("caterpillar", Generate.caterpillar ~spine:500 ~legs:3);
      ("spider", Generate.spider ~legs:10 ~leg_length:100);
      ("balanced-2ary", Generate.balanced ~arity:2 ~depth:12);
      ("random", Generate.random (Rng.create 42) 5_000);
    ]
  in
  let rows =
    List.map
      (fun (family, tree) ->
        let nv = Tree.n_vertices tree in
        let d = Metrics.diameter tree in
        let rng = Rng.create 7 in
        let inputs = Array.init n (fun _ -> Rng.int rng nv) in
        let run adversary = Tree_aa.run ~tree ~inputs ~t ~adversary () in
        let r_passive = run (Adversary.passive "none") in
        let r_silent = run (Strategies.silent ~victims:[ 7; 8; 9 ]) in
        let r_spoiler = run (spoiler_for_tree ~tree ~t) in
        let verdicts =
          Verdict.conj
            (tree_verdict_of tree inputs r_passive)
            (Verdict.conj
               (tree_verdict_of tree inputs r_silent)
               (tree_verdict_of tree inputs r_spoiler))
        in
        [
          family;
          string_of_int nv;
          string_of_int d;
          string_of_int r_passive.Engine.rounds_used;
          string_of_int (Tree_aa.rounds ~tree);
          string_of_int
            (Rounds.paper_round_bound ~range:(2. *. float_of_int nv) ~eps:1.
            + Rounds.paper_round_bound ~range:(float_of_int (max 2 d)) ~eps:1.);
          string_of_int r_passive.Engine.honest_messages;
          ok_of verdicts;
        ])
      families
  in
  print_table
    ~title:
      "E2  TreeAA (Thm 4): rounds vs |V| across families; verdicts under \
       {none, silent, spoiler}"
    ~header:
      [ "family"; "|V|"; "D(T)"; "rounds"; "schedule"; "Thm4-bound";
        "msgs(none)"; "AA(all advs)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: the lower bound (Theorem 2 / Corollary 1) vs the upper bound *)

let table_e3 ?(workers = 1) () =
  (* Pure computation, but the (1000, 333) cells dominate the wall clock —
     worth fanning over the Pool like the measured tables. *)
  let cells =
    List.concat_map
      (fun (n, t) -> List.map (fun d -> (n, t, d)) [ 1e1; 1e3; 1e6; 1e9 ])
      [ (4, 1); (10, 3); (100, 33); (1000, 333) ]
  in
  let rows =
    Pool.map ~workers (List.length cells) (fun i ->
        let n, t, d = List.nth cells i in
        let lower = Fekete.min_rounds ~n ~t ~d ~eps:1. in
        let closed = Fekete.theorem2_closed_form ~n ~t ~d in
        let upper = Rounds.bdh_rounds ~range:d ~eps:1. in
        let parts = Fekete.optimal_partition ~t ~r:(max 1 lower) in
        [
          string_of_int n;
          string_of_int t;
          sci d;
          string_of_int lower;
          f2 closed;
          string_of_int upper;
          f2 (float_of_int upper /. float_of_int (max 1 lower));
          Printf.sprintf "[%s]" (String.concat ";" (List.map string_of_int parts));
          f2 (Fekete.chain_length ~n ~t ~r:(max 1 lower));
        ])
    |> Array.to_list
  in
  print_table
    ~title:
      "E3  Lower bound (Thm 2/Cor 1): minimal rounds with K(R,D)<=1 vs \
       TreeAA's RealAA schedule"
    ~header:
      [ "n"; "t"; "D"; "lower(R)"; "Thm2-form"; "upper(rounds)"; "gap";
        "optimal t_i"; "log2(chain)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4: TreeAA vs the O(log D) baseline [33] *)

let table_e4 () =
  let n = 10 and t = 3 in
  let schedule_rows =
    List.map
      (fun size ->
        let tree = Generate.path size in
        let d = Metrics.diameter tree in
        let tree_rounds = Tree_aa.rounds ~tree in
        let nr_rounds = Nr_baseline.rounds ~tree in
        [
          string_of_int size;
          string_of_int d;
          string_of_int nr_rounds;
          string_of_int tree_rounds;
          f2 (float_of_int nr_rounds /. float_of_int tree_rounds);
        ])
      [ 100; 1_000; 10_000; 100_000; 1_000_000 ]
  in
  print_table
    ~title:"E4a TreeAA vs NR-style baseline: fixed schedules on paths"
    ~header:[ "|V|=D+1"; "D"; "NR rounds"; "TreeAA rounds"; "speedup" ]
    schedule_rows;
  let measured_rows =
    List.concat_map
      (fun (family, tree) ->
        let nv = Tree.n_vertices tree in
        let rng = Rng.create 11 in
        let inputs = Array.init n (fun _ -> Rng.int rng nv) in
        let r_tree =
          Tree_aa.run ~tree ~inputs ~t ~adversary:(spoiler_for_tree ~tree ~t) ()
        in
        let r_nr =
          Nr_baseline.run ~tree ~inputs ~t
            ~adversary:(Strategies.silent ~victims:[ 7; 8; 9 ])
            ()
        in
        [
          [
            family ^ "/TreeAA";
            string_of_int nv;
            string_of_int r_tree.Engine.rounds_used;
            ok_of (tree_verdict_of tree inputs r_tree);
          ];
          [
            family ^ "/NR";
            string_of_int nv;
            string_of_int r_nr.Engine.rounds_used;
            ok_of (tree_verdict_of tree inputs r_nr);
          ];
        ])
      [
        ("path-100", Generate.path 100);
        ("path-2000", Generate.path 2_000);
        ("caterpillar", Generate.caterpillar ~spine:300 ~legs:2);
      ]
  in
  print_table ~title:"E4b measured executions (both protocols, Byzantine runs)"
    ~header:[ "protocol"; "|V|"; "rounds"; "AA" ]
    measured_rows

(* ------------------------------------------------------------------ *)
(* E5: the executable one-round chain (Theorem 1's inductive core) *)

let table_e5 () =
  let rows =
    List.map
      (fun (n, t) ->
        let d = 1000. in
        let f view = Option.get (Trim.trimmed_midpoint ~t (Array.to_list view)) in
        let gap = Chain.max_adjacent_gap ~f ~n ~t ~a:0. ~b:d in
        let fekete = d *. float_of_int t /. float_of_int (n + t) in
        let chain_bound = d /. float_of_int ((n + t - 1) / t) in
        [
          string_of_int n;
          string_of_int t;
          f2 gap;
          f2 chain_bound;
          f2 fekete;
          (if gap >= chain_bound -. 1e-6 then "ok" else "VIOLATED");
        ])
      [ (4, 1); (7, 2); (10, 3); (16, 5); (31, 10) ]
  in
  print_table
    ~title:
      "E5  One-round chain vs trimmed-midpoint rule (D=1000): measured gap \
       >= D/ceil(n/t) ~ K(1,D)"
    ~header:[ "n"; "t"; "measured gap"; "chain bound"; "K(1,D)"; "check" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6: the resilience boundary t < n/3 *)

let table_e6 () =
  let rows =
    List.concat_map
      (fun t ->
        List.map
          (fun n ->
            let tree = Generate.path 200 in
            let rng = Rng.create 3 in
            let inputs = Array.init n (fun _ -> Rng.int rng 200) in
            let barrier = max 1 (Paths_finder.rounds ~tree) in
            let adversary =
              Compose_adversary.phased ~name:"wedge-both" ~barrier
                ~first:(Wedge.gradecast_wedge ())
                ~second:(Wedge.gradecast_wedge ())
            in
            let report = Tree_aa.run ~tree ~inputs ~t ~adversary () in
            let verdict = tree_verdict_of tree inputs report in
            let expected = if n > 3 * t then "AA holds" else "attack succeeds" in
            let observed =
              if Verdict.all_ok verdict then "AA holds" else "attack succeeds"
            in
            [
              string_of_int n;
              string_of_int t;
              (if n > 3 * t then "t < n/3" else "t >= n/3");
              observed;
              (if expected = observed then "as predicted" else "UNEXPECTED");
            ])
          [ 3 * t; (3 * t) + 1 ])
      [ 1; 2; 3 ]
  in
  print_table
    ~title:
      "E6  Resilience boundary: gradecast wedge vs TreeAA at n = 3t and 3t+1"
    ~header:[ "n"; "t"; "regime"; "outcome"; "check" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: exhaustive Lemma 2 / Lemma 3 verification on small trees *)

let table_e7 () =
  let lemma2_checked = ref 0 and lemma2_violations = ref 0 in
  let lemma3_checked = ref 0 and lemma3_violations = ref 0 in
  let check_tree tree =
    let rooted = Rooted.make tree in
    let tour = Euler_tour.compute rooted in
    let nv = Tree.n_vertices tree in
    let len = Euler_tour.length tour in
    (* Lemma 2 *)
    incr lemma2_checked;
    let prop1 =
      nv = 1
      || List.for_all
           (fun i ->
             Tree.adjacent tree (Euler_tour.vertex_at tour i)
               (Euler_tour.vertex_at tour (i + 1)))
           (List.init (len - 1) Fun.id)
    in
    let prop2 =
      len <= 2 * nv
      && List.for_all
           (fun v -> Euler_tour.occurrences tour v <> [])
           (Tree.vertices tree)
    in
    let prop3 =
      List.for_all
        (fun v ->
          let imin = Euler_tour.first_occurrence tour v in
          let imax = Euler_tour.last_occurrence tour v in
          List.for_all
            (fun u ->
              let inside =
                List.for_all
                  (fun i -> imin <= i && i <= imax)
                  (Euler_tour.occurrences tour u)
              in
              inside = Rooted.in_subtree rooted ~root_of:v u)
            (Tree.vertices tree))
        (Tree.vertices tree)
    in
    if not (prop1 && prop2 && prop3) then incr lemma2_violations;
    (* Lemma 3, over all pairs S = {u, w} *)
    List.iter
      (fun u ->
        List.iter
          (fun w ->
            if u <= w then begin
              incr lemma3_checked;
              let s = [ u; w ] in
              let hull = Convex_hull.compute rooted s in
              let imin =
                min
                  (Euler_tour.first_occurrence tour u)
                  (Euler_tour.first_occurrence tour w)
              in
              let imax =
                max
                  (Euler_tour.last_occurrence tour u)
                  (Euler_tour.last_occurrence tour w)
              in
              let ok = ref true in
              for i = imin to imax do
                let target = Euler_tour.vertex_at tour i in
                let path = Rooted.path_to_root rooted target in
                if not (List.exists (Convex_hull.mem hull) path) then ok := false
              done;
              if not !ok then incr lemma3_violations
            end)
          (Tree.vertices tree))
      (Tree.vertices tree)
  in
  for n = 1 to 7 do
    Prufer.enumerate ~n
    |> Seq.iter (fun edges ->
           let labels = Generate.labels_of_size n in
           let tree =
             if n = 1 then Tree.singleton labels.(0)
             else
               Tree.of_labeled_edges
                 (List.map (fun (u, v) -> (labels.(u), labels.(v))) edges)
           in
           check_tree tree)
  done;
  (* plus random large trees *)
  let rng = Rng.create 2024 in
  for _ = 1 to 50 do
    check_tree (Generate.random rng (50 + Rng.int rng 150))
  done;
  print_table
    ~title:
      "E7  Exhaustive Lemma 2 + Lemma 3 verification (all trees n<=7, 50 \
       random large)"
    ~header:[ "property"; "instances checked"; "violations" ]
    [
      [
        "Lemma 2 (list construction)";
        string_of_int !lemma2_checked;
        string_of_int !lemma2_violations;
      ];
      [
        "Lemma 3 (root-path intersects hull)";
        string_of_int !lemma3_checked;
        string_of_int !lemma3_violations;
      ];
    ]

(* ------------------------------------------------------------------ *)
(* E8: early-stopping RealAA — adaptive vs fixed rounds *)

let table_e8 () =
  let n = 10 and t = 3 in
  let rows =
    List.concat_map
      (fun d ->
        let values =
          Array.init n (fun i -> d *. float_of_int i /. float_of_int (n - 1))
        in
        let max_iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
        let run name adversary =
          let report =
            Engine.run ~n ~t ~seed:1
              ~max_rounds:(3 * max_iterations)
              ~protocol:
                (Early_real_aa.protocol
                   ~inputs:(fun i -> values.(i))
                   ~t ~eps:1. ~max_iterations)
              ~adversary ()
          in
          let outputs = Engine.honest_outputs report in
          let honest_inputs = honest_inputs_of values report in
          let verdict =
            Verdict.real ~eps:1.
              ~n_honest:(n - List.length report.Engine.corrupted)
              ~honest_inputs
              ~honest_outputs:
                (List.map (fun (r : Early_real_aa.result) -> r.value) outputs)
          in
          let decision_rounds = List.map snd report.Engine.termination_rounds in
          [
            sci d;
            name;
            string_of_int (List.fold_left min max_int decision_rounds);
            string_of_int report.Engine.rounds_used;
            string_of_int (3 * max_iterations);
            ok_of verdict;
          ]
        in
        [
          run "none" (Adversary.passive "none");
          run "silent" (Strategies.silent ~victims:[ 8; 9 ]);
          run "spoiler"
            (Spoiler.early_stopping_spoiler ~t ~iterations:max_iterations);
        ])
      [ 1e2; 1e4; 1e6; 1e9 ]
  in
  print_table
    ~title:
      "E8  Early-stopping RealAA ([6]'s observation rule): adaptive rounds \
       vs the fixed Theorem 3 schedule (n=10, t=3)"
    ~header:
      [ "D"; "adversary"; "first decision"; "last decision"; "fixed schedule";
        "AA" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9: the asynchronous model — Bracha-based iterated tree AA ([33], the
   actual prior art) vs synchronous TreeAA *)

let table_e9 () =
  let n = 7 and t = 2 in
  let rows =
    List.concat_map
      (fun (family, tree) ->
        let nv = Tree.n_vertices tree in
        let rng = Rng.create 5 in
        let inputs = Array.init n (fun _ -> Rng.int rng nv) in
        let iterations = Nr_baseline.iterations_for tree in
        List.map
          (fun (sched_name, scheduler) ->
            let report =
              Async_engine.run ~n ~t ~seed:3 ~max_events:2_000_000
                ~reactor:
                  (Async_aa.tree ~tree
                     ~inputs:(fun i -> inputs.(i))
                     ~t ~iterations)
                ~adversary:(Async_engine.passive ~scheduler "none")
                ()
            in
            let honest_inputs =
              Array.to_list inputs
              |> List.filteri (fun i _ ->
                     not (List.mem i report.Async_engine.corrupted))
            in
            let verdict =
              Tree_verdict.check ~tree ~n_honest:(List.length honest_inputs)
                ~honest_inputs
                ~honest_outputs:
                  (List.map
                     (fun (_, (r : Tree.vertex Async_aa.result)) -> r.value)
                     report.Async_engine.outputs)
            in
            [
              family;
              string_of_int nv;
              sched_name;
              string_of_int iterations;
              string_of_int report.Async_engine.rounds_used;
              string_of_int report.Async_engine.honest_messages;
              string_of_int (Tree_aa.rounds ~tree);
              ok_of verdict;
            ])
          [ ("fifo", Async_engine.Fifo); ("random", Async_engine.Random_order) ])
      [
        ("path-100", Generate.path 100);
        ("path-1000", Generate.path 1_000);
        ("star-200", Generate.star 200);
        ("random-300", Generate.random (Rng.create 12) 300);
      ]
  in
  print_table
    ~title:
      "E9  Asynchronous tree AA ([33]-style, Bracha RBC + witnesses) vs the \
       synchronous TreeAA schedule (n=7, t=2)"
    ~header:
      [ "tree"; "|V|"; "scheduler"; "async iters"; "events"; "messages";
        "sync TreeAA rounds"; "AA" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10: message complexity — RealAA sends Theta(R n^2) messages ([6]
   reduces Fekete's O(n^R) to polynomial), TreeAA twice that *)

let table_e10 () =
  let d = 1e4 in
  let rows =
    List.map
      (fun (n, t) ->
        let inputs =
          Array.init n (fun i -> d *. float_of_int i /. float_of_int (n - 1))
        in
        let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
        let report =
          Engine.run ~n ~t ~seed:1
            ~max_rounds:(3 * iterations)
            ~protocol:
              (Real_aa.protocol ~inputs:(fun i -> inputs.(i)) ~t ~iterations ())
            ~adversary:(Adversary.passive "none")
            ()
        in
        let rounds = report.Engine.rounds_used in
        let msgs = report.Engine.honest_messages in
        let tree = Generate.path (int_of_float d + 1) in
        let vertex_inputs = Array.init n (fun i -> (i * 1013) mod (int_of_float d + 1)) in
        let tree_report =
          Tree_aa.run ~tree ~inputs:vertex_inputs ~t
            ~adversary:(Adversary.passive "none") ()
        in
        [
          string_of_int n;
          string_of_int t;
          string_of_int rounds;
          string_of_int msgs;
          f2 (float_of_int msgs /. float_of_int (rounds * n * n));
          string_of_int tree_report.Engine.rounds_used;
          string_of_int tree_report.Engine.honest_messages;
          f2
            (float_of_int tree_report.Engine.honest_messages
            /. float_of_int (tree_report.Engine.rounds_used * n * n));
        ])
      [ (4, 1); (7, 2); (10, 3); (13, 4); (16, 5); (31, 10) ]
  in
  print_table
    ~title:
      "E10 Message complexity (fault-free, D=1e4): one message per pair per \
       round — Theta(R n^2) total, vs [19]'s O(n^R)"
    ~header:
      [ "n"; "t"; "RealAA rounds"; "msgs"; "msgs/(R n^2)"; "TreeAA rounds";
        "msgs"; "msgs/(R n^2)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E-chaos: fault intensity x protocol -> outcome / violation / excusal
   rates. Each cell is a chaos-mode campaign (random fault plan per task,
   watchdogs on); the point is the taxonomy, not the numbers: in-model
   failures surface as violations, out-of-model ones as excusals or
   liveness timeouts, and nothing ever escapes as an exception. *)

let table_echaos ?(workers = 1) ?(distributed = false) () =
  let reps = 12 in
  let protocols =
    [
      ("tree-aa", Campaign.Spec.Tree_aa, Campaign.Spec.Any_tree_adversary, true);
      ("nr-baseline", Campaign.Spec.Nr_baseline, Campaign.Spec.Random_silent, true);
      ("realaa", Campaign.Spec.Real_aa { eps = 1. }, Campaign.Spec.Any_real_adversary, false);
      ("async-tree-aa", Campaign.Spec.Async_tree_aa, Campaign.Spec.Passive, true);
    ]
  in
  let intensities = [ 0.0; 0.25; 0.5; 1.0 ] in
  let cells =
    List.concat_map
      (fun p -> List.map (fun i -> (p, i)) intensities)
      protocols
  in
  let rows =
    List.mapi
      (fun idx ((name, protocol, adversary, vertex_inputs), intensity) ->
        let spec =
          {
            Campaign.Spec.name;
            protocol;
            tree = Campaign.Spec.Random_tree (Campaign.Spec.Between (2, 31));
            n =
              (if name = "async-tree-aa" then Campaign.Spec.Exactly 7
               else Campaign.Spec.Between (4, 10));
            t_budget =
              (if name = "async-tree-aa" then Campaign.Spec.Fixed_t 2
               else Campaign.Spec.Up_to_third);
            inputs =
              (if vertex_inputs then Campaign.Spec.Random_vertices
               else
                 Campaign.Spec.Log_uniform_reals
                   { log10_min = 1.; log10_max = 4. });
            adversary;
            faults =
              (if intensity = 0. then Campaign.Spec.No_faults
               else Campaign.Spec.Chaos { intensity });
            watchdogs = true;
            repetitions = reps;
            base_seed = 1000 + idx;
          }
        in
        (* --distributed routes each cell campaign through the
           multi-process service; its determinism contract keeps every
           digit of the table identical. The "ok" column comes from the
           outcome JSON's "ok" field — the wire image of [Runner.ok]. *)
        let agg, ok =
          if distributed then (
            match Service.run ~workers spec with
            | Error e ->
                Printf.eprintf "E-CHAOS: campaign service failed: %s\n" e;
                exit 1
            | Ok r ->
                ( r.Service.aggregate,
                  Array.fold_left
                    (fun acc cell ->
                      match cell with
                      | Some (Ok j)
                        when Telemetry.Json.member "ok" j
                             = Some (Telemetry.Json.Bool true) ->
                          acc + 1
                      | _ -> acc)
                    0 r.Service.cells ))
          else
            let result = Campaign.run ~workers spec in
            ( result.Campaign.aggregate,
              Array.fold_left
                (fun acc (tr : Campaign.task_result) ->
                  match tr.Campaign.result with
                  | Ok o when Runner.ok o -> acc + 1
                  | _ -> acc)
                0 result.Campaign.results )
        in
        [
          name;
          f2 intensity;
          string_of_int agg.Campaign.tasks;
          string_of_int ok;
          string_of_int agg.Campaign.excused;
          string_of_int agg.Campaign.timeouts;
          string_of_int agg.Campaign.violations;
          string_of_int agg.Campaign.engine_errors;
          (if agg.Campaign.violations = 0 && agg.Campaign.engine_errors = 0
           then "ok"
           else "VIOLATED");
        ])
      cells
  in
  print_table
    ~title:
      "E-chaos  Fault-plan grid: chaos intensity x protocol -> structured \
       outcome rates (violations must stay 0)"
    ~header:
      [ "protocol"; "intensity"; "runs"; "ok"; "excused"; "timeouts";
        "violations"; "engine-errors"; "check" ]
    rows

(* ------------------------------------------------------------------ *)
(* A1-A3: ablations of RealAA's design choices (DESIGN.md section 7) *)

let table_ablations () =
  let run ~knobs ~n ~t ~d ~adversary =
    let inputs =
      Array.init n (fun i -> d *. float_of_int i /. float_of_int (n - 1))
    in
    let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
    let report =
      Engine.run ~n ~t ~seed:1
        ~max_rounds:(3 * iterations)
        ~protocol:
          (Real_aa.protocol ~knobs ~inputs:(fun i -> inputs.(i)) ~t ~iterations ())
        ~adversary ()
    in
    Verdict.spread
      (List.map
         (fun (r : Real_aa.result) -> r.value)
         (Engine.honest_outputs report))
  in
  let faithful = Real_aa.faithful in
  let agreement spread =
    if spread <= 1. then "1-agreement ok" else "AGREEMENT BROKEN"
  in
  (* A1: blacklisting off, relentless splitting — every iteration diverges,
     blowing through the Lemma 5 envelope. *)
  let a1 =
    let n = 4 and t = 1 and d = 1e6 in
    let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
    let adversary () = Spoiler.relentless_spoiler ~t ~iterations in
    let bound = Float.pow 2. (lemma5_log2_bound ~n ~t ~r:iterations ~d) in
    let vs_bound s =
      if s <= bound +. 1e-9 then "within Lemma 5"
      else Printf.sprintf "EXCEEDS Lemma 5 bound %s" (sci bound)
    in
    let s_faithful = run ~knobs:faithful ~n ~t ~d ~adversary:(adversary ()) in
    let s_ablated =
      run
        ~knobs:{ faithful with blacklist = false }
        ~n ~t ~d ~adversary:(adversary ())
    in
    [
      [ "A1 no blacklisting"; "faithful"; Printf.sprintf "n=%d t=%d D=%.0e" n t d;
        sci s_faithful; vs_bound s_faithful ];
      [ "A1 no blacklisting"; "ablated"; Printf.sprintf "n=%d t=%d D=%.0e" n t d;
        sci s_ablated; vs_bound s_ablated ];
    ]
  in
  (* A2: min-max midpoint vs mean, both with the window already weakened by
     a fixed trim: one split then costs half the window and 1-Agreement
     itself falls. (With the adaptive trim the window never shrinks and the
     midpoint's endpoint-shift is neutralised — the knobs compound.) *)
  let a2 =
    let n = 16 and t = 5 and d = 1e3 in
    let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
    let adversary () = Spoiler.realaa_spoiler ~t ~iterations in
    let s_mean =
      run
        ~knobs:{ faithful with adaptive_trim = false }
        ~n ~t ~d ~adversary:(adversary ())
    in
    let s_midpoint =
      run
        ~knobs:
          { faithful with adaptive_trim = false; averaging = Real_aa.Midpoint }
        ~n ~t ~d ~adversary:(adversary ())
    in
    [
      [ "A2 midpoint averaging"; "mean (fixed trim)";
        Printf.sprintf "n=%d t=%d D=%.0e" n t d; sci s_mean; agreement s_mean ];
      [ "A2 midpoint averaging"; "midpoint (fixed trim)";
        Printf.sprintf "n=%d t=%d D=%.0e" n t d; sci s_midpoint;
        agreement s_midpoint ];
    ]
  in
  (* A3: fixed trim t — blacklisted parties shrink the averaging window and
     planted values regain leverage; the Lemma 5 envelope is exceeded even
     where eps-agreement survives. *)
  let a3 =
    let n = 16 and t = 5 and d = 1e2 in
    let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
    let adversary () = Spoiler.realaa_spoiler ~t ~iterations in
    let bound = Float.pow 2. (lemma5_log2_bound ~n ~t ~r:iterations ~d) in
    let s_faithful = run ~knobs:faithful ~n ~t ~d ~adversary:(adversary ()) in
    let s_ablated =
      run
        ~knobs:{ faithful with adaptive_trim = false }
        ~n ~t ~d ~adversary:(adversary ())
    in
    let vs_bound s =
      if s <= bound +. 1e-9 then "within Lemma 5"
      else Printf.sprintf "EXCEEDS Lemma 5 bound %s" (sci bound)
    in
    [
      [ "A3 fixed trim"; "faithful"; Printf.sprintf "n=%d t=%d D=%.0e" n t d;
        sci s_faithful; vs_bound s_faithful ];
      [ "A3 fixed trim"; "ablated"; Printf.sprintf "n=%d t=%d D=%.0e" n t d;
        sci s_ablated; vs_bound s_ablated ];
    ]
  in
  print_table
    ~title:
      "A1-A3  Ablations: each RealAA design choice, on vs off, under the \
       matching attack"
    ~header:[ "ablation"; "variant"; "parameters"; "final spread"; "outcome" ]
    (a1 @ a2 @ a3)

(* ------------------------------------------------------------------ *)
(* GAP — adversary synthesis against the Fekete lower bound. One small
   (mu+lambda) search per default target (seed 1); the champion's measured
   spread sits next to K(R, D), and the champion's flight record is
   replayed on the spot — "clean" in the replay column is bit-identity
   evidence. The search is bit-identical for any --workers, so the
   committed BENCH_GAP.json regenerates exactly. *)

let table_gap ~workers () =
  let config =
    {
      Synth.driver = Synth.Mu_plus_lambda;
      generations = 3;
      population = 6;
      seed = 1;
      workers;
    }
  in
  let rows =
    List.map
      (fun (target : Synth.target) ->
        let r = Synth.search config target in
        let replay_check =
          match Replay.run r.Synth.champion.Synth.record with
          | Error e -> "error: " ^ e
          | Ok replay -> (
              match replay.Replay.verdict with
              | Ok () -> "clean"
              | Error _ -> "DIVERGED")
        in
        [
          target.Synth.label;
          string_of_int target.Synth.n;
          string_of_int target.Synth.t;
          Printf.sprintf "%g" target.Synth.d;
          string_of_int target.Synth.rounds;
          Genome.to_string r.Synth.champion.Synth.genome;
          Verdict.graded_label r.Synth.champion.Synth.outcome.Runner.grade;
          Printf.sprintf "%.4g" r.Synth.gap.Synth.measured;
          Printf.sprintf "%.4g" r.Synth.gap.Synth.k_theory;
          Printf.sprintf "%.4g" r.Synth.gap.Synth.ratio;
          (if r.Synth.gap.Synth.sound then "yes" else "NO");
          replay_check;
        ])
      (Synth.default_targets ())
  in
  print_table
    ~title:
      "GAP synthesized worst case vs. Fekete lower bound ((mu+lambda), 3 \
       generations x 6, seed 1)"
    ~header:
      [
        "target";
        "n";
        "t";
        "D";
        "R";
        "champion";
        "grade";
        "spread";
        "K(R,D)";
        "ratio";
        "sound";
        "replay";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* SCALE — transport-core scaling after the flat-array mailbox rewrite.
   Two tables are printed; only the first is captured into
   BENCH_SCALE.json. Its columns (rounds, messages, bytes/round) are
   deterministic functions of the run, so the committed file regenerates
   exactly on any machine and is drift-gated in CI. Wall-clock throughput
   is printed in the second, never-captured table: timings are
   measurements and would churn the gate. *)

let table_scale () =
  let byte_sink bytes =
    (* a live (non-null) sink that only accumulates the byte counters *)
    {
      Telemetry.Sink.on_start = ignore;
      on_round =
        (fun (e : Telemetry.event) ->
          bytes := !bytes + e.Telemetry.honest_bytes + e.Telemetry.adversary_bytes);
      on_stop = ignore;
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let det = ref [] and timings = ref [] in
  let emit ~label ~n ~t ~rounds ~msgs ~bytes ~dt =
    det :=
      [
        label;
        string_of_int n;
        string_of_int t;
        string_of_int rounds;
        string_of_int msgs;
        string_of_int (bytes / max 1 rounds);
      ]
      :: !det;
    timings :=
      [
        label;
        string_of_int n;
        Printf.sprintf "%.2f" dt;
        Printf.sprintf "%.2f" (float_of_int rounds /. Float.max dt 1e-9);
      ]
      :: !timings
  in
  let tree_row label tree ~n =
    let t = (n - 1) / 3 in
    let rng = Rng.create 11 in
    let nv = Tree.n_vertices tree in
    let inputs = Array.init n (fun _ -> Rng.int rng nv) in
    let bytes = ref 0 in
    let report, dt =
      time (fun () ->
          Tree_aa.run ~tree ~inputs ~t ~seed:3 ~telemetry:(byte_sink bytes)
            ~adversary:(Adversary.passive "none")
            ())
    in
    emit ~label:("tree-aa/" ^ label) ~n ~t
      ~rounds:report.Engine.rounds_used ~msgs:report.Engine.honest_messages
      ~bytes:!bytes ~dt
  in
  let midpoint_row ~n =
    let t = (n - 1) / 3 in
    let inputs =
      Array.init n (fun i -> float_of_int i /. float_of_int n *. 1000.)
    in
    let bytes = ref 0 in
    let report, dt =
      time (fun () ->
          Iterated_midpoint.run_naive ~seed:3 ~telemetry:(byte_sink bytes)
            ~inputs ~t ~iterations:10
            ~adversary:(Adversary.passive "none")
            ())
    in
    emit ~label:"midpoint-naive" ~n ~t ~rounds:report.Engine.rounds_used
      ~msgs:report.Engine.honest_messages ~bytes:!bytes ~dt
  in
  (* Full tree-aa (gradecast transport, Θ(n²) letters of Θ(n) payload per
     round) to n = 300; a degenerate single-vertex tree carries the
     benign n = 10⁴ completion row (the engine still spins up all 10⁴
     parties); the naive midpoint protocol (n² scalar letters per round)
     stresses raw transport to n = 3000. *)
  tree_row "star-9" (Generate.star 9) ~n:100;
  tree_row "star-9" (Generate.star 9) ~n:300;
  tree_row "trivial-1" (Generate.path 1) ~n:10_000;
  midpoint_row ~n:1_000;
  midpoint_row ~n:3_000;
  print_table
    ~title:
      "SCALE transport scaling (deterministic columns only — drift-gated)"
    ~header:[ "protocol"; "n"; "t"; "rounds"; "honest msgs"; "bytes/round" ]
    (List.rev !det);
  (* measurements: print for the eye, never capture into the JSON *)
  let was_capturing = !capturing in
  capturing := false;
  print_table
    ~title:"SCALE wall-clock (informational; excluded from BENCH_SCALE.json)"
    ~header:[ "protocol"; "n"; "wall s"; "rounds/s" ]
    (List.rev !timings);
  capturing := was_capturing

(* ------------------------------------------------------------------ *)

let tables ~workers ~distributed =
  [
    ("E1", fun () -> table_e1 ~workers ());
    ("E2", table_e2);
    ("E3", fun () -> table_e3 ~workers ());
    ("E4", table_e4);
    ("E5", table_e5);
    ("E6", table_e6);
    ("E7", table_e7);
    ("E8", table_e8);
    ("E9", table_e9);
    ("E10", table_e10);
    ("E-CHAOS", fun () -> table_echaos ~workers ~distributed ());
    ("A", table_ablations);
    ("GAP", fun () -> table_gap ~workers ());
    ("SCALE", table_scale);
  ]

(* ------------------------------------------------------------------ *)
(* the BENCH_<NAME>.json codec and the drift checker *)

let run_captured ~capture f =
  captured := [];
  capturing := capture;
  Fun.protect ~finally:(fun () -> capturing := false) f;
  let out = List.rev !captured in
  captured := [];
  out

(* One table group as BENCH_<NAME>.json: the captured tables verbatim,
   plus the measured cost when profiling. Stable field order, tables in
   print order, so regenerated files diff cleanly. *)
let group_json ~name ~profile tables_captured =
  let module Json = Telemetry.Json in
  let str_row row = Json.Arr (List.map (fun c -> Json.Str c) row) in
  Json.Obj
    ([
       ("schema", Json.Str "treeagree-bench/v1");
       ("format_version", Json.Str Telemetry.format_version_string);
       ("table", Json.Str name);
       ( "tables",
         Json.Arr
           (List.map
              (fun (title, header, rows) ->
                Json.Obj
                  [
                    ("title", Json.Str title);
                    ("header", str_row header);
                    ("rows", Json.Arr (List.map str_row rows));
                  ])
              tables_captured) );
     ]
    @
    match profile with
    | None -> []
    | Some (wall_s, alloc_mb) ->
        [
          ( "profile",
            Json.Obj
              [ ("wall_s", Json.Num wall_s); ("alloc_mb", Json.Num alloc_mb) ]
          );
        ])

let render_group ~name ~profile tables_captured =
  Telemetry.Json.to_string (group_json ~name ~profile tables_captured) ^ "\n"

type drift = {
  path : string;
  table : string option;
  verdict : [ `Match | `Drift of string | `Error of string ];
}

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          try Ok (really_input_string ic (in_channel_length ic))
          with End_of_file | Sys_error _ -> Error (path ^ ": short read"))

let first_difference a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0

let check_files ?(distributed = false) ~workers paths =
  let groups = tables ~workers ~distributed in
  List.map
    (fun path ->
      match read_file path with
      | Error e -> { path; table = None; verdict = `Error e }
      | Ok bytes -> (
          match Telemetry.Json.of_string (String.trim bytes) with
          | Error e ->
              { path; table = None; verdict = `Error ("unparseable: " ^ e) }
          | Ok json -> (
              match
                Option.bind
                  (Telemetry.Json.member "table" json)
                  Telemetry.Json.to_str
              with
              | None ->
                  {
                    path;
                    table = None;
                    verdict = `Error "no \"table\" field";
                  }
              | Some name -> (
                  match List.assoc_opt name groups with
                  | None ->
                      {
                        path;
                        table = Some name;
                        verdict = `Error ("unknown table group " ^ name);
                      }
                  | Some f ->
                      quiet := true;
                      let regen =
                        Fun.protect
                          ~finally:(fun () -> quiet := false)
                          (fun () -> run_captured ~capture:true f)
                      in
                      let expected = render_group ~name ~profile:None regen in
                      if String.equal expected bytes then
                        { path; table = Some name; verdict = `Match }
                      else
                        let detail =
                          Printf.sprintf
                            "committed %d bytes, regenerated %d; first \
                             difference at byte %d"
                            (String.length bytes) (String.length expected)
                            (first_difference bytes expected)
                        in
                        { path; table = Some name; verdict = `Drift detail }))))
    paths
