(** The experiment-table harness: every table of EXPERIMENTS.md as a
    named group, plus the BENCH_<NAME>.json codec and the drift checker
    behind [treeaa bench check].

    [bench/main.exe] is a thin front end over this library: it picks
    groups from {!tables}, runs them under {!run_captured}, and writes
    {!render_group} bytes to [BENCH_<NAME>.json]. The committed
    BENCH_*.json files at the repo root are regenerated exactly that way
    (without profiling, so they stay deterministic), and {!check_files}
    closes the loop — it regenerates each committed file in memory,
    with table printing suppressed, and byte-compares. CI's drift gates
    run [treeaa bench check BENCH_*.json] on top of it.

    The parallel groups fan over the deterministic campaign {!Pool} (or
    the multi-process service with [distributed:true]); neither the
    worker count nor the distribution mode changes a single digit of
    any table — that determinism contract is what makes byte-equality
    a meaningful gate. *)

type table = string * string list * string list list
(** One captured table: title, header, rows — in print order. *)

val print_table : title:string -> header:string list -> string list list -> unit
(** Render a table to stdout (suppressed inside {!check_files}) and,
    when capturing, record it. *)

val spoiler_for_tree :
  tree:Treeagree.Tree.t -> t:int -> Treeagree.Tree_aa.msg Treeagree.Adversary.t
(** The two-phase spoiler the TreeAA tables run under — the RealAA
    spoiler attacking both the PathsFinder and the projection phase
    (also used by the convergence-series export). *)

val tables : workers:int -> distributed:bool -> (string * (unit -> unit)) list
(** Every table group, keyed by the name used in [--table NAME] and in
    the BENCH file's ["table"] field. [workers] fans the parallel
    groups over that many Pool domains; [distributed] routes the
    campaign-backed groups (E-CHAOS) through the multi-process
    service instead. *)

val run_captured : capture:bool -> (unit -> unit) -> table list
(** Run one table group; with [capture] also record every table it
    prints and return them in print order (otherwise [[]]). *)

val group_json :
  name:string -> profile:(float * float) option -> table list -> Aat_telemetry.Jsonx.t
(** The BENCH_<name>.json document for a captured group: stable field
    order, tables in print order. [profile] is the measured
    [(wall_s, alloc_mb)] cost, present only under [--profile] — the
    committed files omit it so they regenerate bit-identically. *)

val render_group :
  name:string -> profile:(float * float) option -> table list -> string
(** The exact file bytes: rendered {!group_json} plus a trailing
    newline. *)

type drift = {
  path : string;
  table : string option;  (** the file's ["table"] field, if it parses *)
  verdict : [ `Match | `Drift of string | `Error of string ];
      (** [`Drift] carries a human-readable byte-level summary;
          [`Error] an unreadable / unparseable / unknown-table cause *)
}

val check_files : ?distributed:bool -> workers:int -> string list -> drift list
(** Regenerate each committed BENCH file's group in memory (quietly)
    and byte-compare against the file — one result per path, in input
    order. A [`Match] everywhere certifies the committed tables are
    reproducible on this machine at this commit. *)
