(* Streaming execution telemetry.

   The engines publish one structured {!event} per round (the asynchronous
   engine aggregates delivery events into fixed-size chunks) into a
   {!Sink.t}. Sinks never see protocol messages themselves, only counts and
   observed values, so the layer is message-type agnostic and a run with the
   {!Sink.null} sink does no telemetry work at all.

   Protocol code that wants to report structured measurements the engine
   cannot see (gradecast grade histograms, phase transitions) uses the
   ambient {!Probe} collector: the engine installs a collector for the
   duration of a telemetered run and drains it into each round's event; with
   no collector installed every probe is a cheap no-op. *)

module Json = Jsonx

type run_meta = {
  engine : string;  (* "sync" or "async" *)
  protocol : string;
  adversary : string;
  n : int;
  t : int;
  seed : int;
  initial_corruptions : int list;
}

(* Opt-in per-round profiling sample, attached by an engine running with
   [~profile:true] on a telemetered run: wall-clock nanoseconds and
   GC-allocated bytes spent in the round (the chunk, for the async engine).
   Samples are measurements, not semantics — replay comparison and trace
   diffing ignore them, and with profiling off (the default) no sample is
   ever built. *)
type profile_sample = { wall_ns : int; alloc_bytes : float }

type event = {
  round : int;  (* 1-based; for the async engine, the chunk index *)
  honest_msgs : int;  (* honest letters submitted this round *)
  adversary_msgs : int;  (* accepted Byzantine letters this round *)
  delivered_msgs : int;  (* letters delivered after per-pair dedup *)
  rejected_forgeries : int;  (* forged letters dropped this round *)
  honest_bytes : int;  (* approximate payload heap bytes, honest *)
  adversary_bytes : int;  (* approximate payload heap bytes, Byzantine *)
  sent_by : int array;  (* letters submitted this round, per party *)
  corruptions : int list;  (* parties corrupted during this round *)
  grades : (int * int * int) option;  (* gradecast (g0, g1, g2) histogram *)
  marks : (string * int) list;  (* generic probe counters *)
  snapshot : (int * float) list;  (* honest (party, observed value) *)
  profile : profile_sample option;  (* opt-in per-round cost sample *)
}

type summary = { rounds : int; honest_messages : int; adversary_messages : int }

(* ------------------------------------------------------------------ *)
(* trace format versioning *)

(* Version of the JSONL trace format, stamped into every "start" header
   (and into the flight-recorder container lines built on top of it) as
   "format_version": "MAJOR.MINOR". The major changes when a reader of the
   old format can no longer make sense of the new one; readers must reject
   unknown majors and accept newer minors of their own major. A header
   without the field is a pre-versioning 1.x writer. *)
let format_version = (1, 0)

let format_version_string =
  let major, minor = format_version in
  Printf.sprintf "%d.%d" major minor

(* Check the "format_version" field of a parsed JSONL header object. *)
let check_format_version json =
  match Jsonx.member "format_version" json with
  | None -> Ok () (* pre-versioning writer: treat as 1.x *)
  | Some (Jsonx.Str s) -> (
      let major_text =
        match String.index_opt s '.' with
        | Some i -> String.sub s 0 i
        | None -> s
      in
      match int_of_string_opt major_text with
      | None -> Error (Printf.sprintf "malformed format_version %S" s)
      | Some major ->
          if major = fst format_version then Ok ()
          else
            Error
              (Printf.sprintf
                 "unsupported trace format_version %S (this reader speaks \
                  major %d)"
                 s (fst format_version)))
  | Some _ -> Error "format_version must be a string"

(* Approximate wire size of a message payload: its reachable heap footprint.
   Immediates (bare ints, constant constructors) report 0; structure shared
   between letters is counted once per letter. Engines only call this on
   telemetered runs. *)
let payload_bytes body = Obj.reachable_words (Obj.repr body) * (Sys.word_size / 8)

(* The spread (max - min) of the observed values of an event's snapshot:
   the convergence measure — for protocols whose observed value lives on a
   path or the real line this is the honest hull diameter. *)
let spread_of_snapshot = function
  | [] -> None
  | (_, v0) :: rest ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (_, v) -> (Float.min lo v, Float.max hi v))
          (v0, v0) rest
      in
      Some (hi -. lo)

module Sink = struct
  type t = {
    on_start : run_meta -> unit;
    on_round : event -> unit;
    on_stop : summary -> unit;
  }

  let null = { on_start = ignore; on_round = ignore; on_stop = ignore }

  (* physical equality: [null] is the unique "do no telemetry work" token
     the engines test for; a freshly built sink of ignores is still live *)
  let is_null sink = sink == null

  let tee a b =
    {
      on_start = (fun m -> a.on_start m; b.on_start m);
      on_round = (fun e -> a.on_round e; b.on_round e);
      on_stop = (fun s -> a.on_stop s; b.on_stop s);
    }
end

(* ------------------------------------------------------------------ *)
(* the ambient probe collector *)

module Probe = struct
  type collector = {
    mutable g0 : int;
    mutable g1 : int;
    mutable g2 : int;
    mutable grades_seen : bool;
    mutable marks : (string * int) list;
  }

  let fresh () = { g0 = 0; g1 = 0; g2 = 0; grades_seen = false; marks = [] }

  (* Domain-local, so concurrent engine runs on a campaign worker pool each
     see their own collector; a freshly spawned domain starts with none. *)
  let current : collector option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  (* The engine installs its collector with [swap (Some c)] and restores the
     previous one on exit — runs that nest (a protocol driving an inner
     engine) each see their own collector. *)
  let swap c =
    let prev = Domain.DLS.get current in
    Domain.DLS.set current c;
    prev

  let active () = Domain.DLS.get current <> None

  let grade_histogram ~g0 ~g1 ~g2 =
    match Domain.DLS.get current with
    | None -> ()
    | Some c ->
        c.g0 <- c.g0 + g0;
        c.g1 <- c.g1 + g1;
        c.g2 <- c.g2 + g2;
        c.grades_seen <- true

  let mark ?(weight = 1) name =
    match Domain.DLS.get current with
    | None -> ()
    | Some c ->
        let rec bump = function
          | [] -> [ (name, weight) ]
          | (n, w) :: tl when String.equal n name -> (n, w + weight) :: tl
          | hd :: tl -> hd :: bump tl
        in
        c.marks <- bump c.marks

  (* Drain the collector into (grades, marks) and reset it for the next
     round. *)
  let flush c =
    let grades = if c.grades_seen then Some (c.g0, c.g1, c.g2) else None in
    let marks = c.marks in
    c.g0 <- 0;
    c.g1 <- 0;
    c.g2 <- 0;
    c.grades_seen <- false;
    c.marks <- [];
    (grades, marks)
end

(* ------------------------------------------------------------------ *)
(* built-in sink: in-memory aggregation *)

module Stats = struct
  type t = {
    mutable meta : run_meta option;
    mutable summary : summary option;
    mutable events_rev : event list;
    mutable n_events : int;
  }

  let create () = { meta = None; summary = None; events_rev = []; n_events = 0 }

  let sink st =
    {
      Sink.on_start = (fun m -> st.meta <- Some m);
      on_round =
        (fun e ->
          st.events_rev <- e :: st.events_rev;
          st.n_events <- st.n_events + 1);
      on_stop = (fun s -> st.summary <- Some s);
    }

  let meta st = st.meta

  let summary st = st.summary

  let rounds st = st.n_events

  let events st = List.rev st.events_rev

  let total f st = List.fold_left (fun acc e -> acc + f e) 0 st.events_rev

  let total_honest st = total (fun e -> e.honest_msgs) st

  let total_adversary st = total (fun e -> e.adversary_msgs) st

  let total_delivered st = total (fun e -> e.delivered_msgs) st

  (* (round, honest, adversary) message counts, chronological *)
  let per_round st =
    List.rev_map (fun e -> (e.round, e.honest_msgs, e.adversary_msgs)) st.events_rev

  (* total letters submitted per party over the run *)
  let message_histogram st =
    let n =
      List.fold_left
        (fun acc e -> max acc (Array.length e.sent_by))
        (match st.meta with Some m -> m.n | None -> 0)
        st.events_rev
    in
    let totals = Array.make n 0 in
    List.iter
      (fun e ->
        Array.iteri (fun p c -> totals.(p) <- totals.(p) + c) e.sent_by)
      st.events_rev;
    totals

  (* summed gradecast grade histogram over the run *)
  let grade_totals st =
    List.fold_left
      (fun (a0, a1, a2) e ->
        match e.grades with
        | None -> (a0, a1, a2)
        | Some (g0, g1, g2) -> (a0 + g0, a1 + g1, a2 + g2))
      (0, 0, 0) st.events_rev

  (* (round, honest-value spread) for every round that had a snapshot,
     chronological — the convergence curve *)
  let convergence st =
    List.rev
      (List.filter_map
         (fun e ->
           match spread_of_snapshot e.snapshot with
           | None -> None
           | Some s -> Some (e.round, s))
         st.events_rev)
end

(* ------------------------------------------------------------------ *)
(* built-in sink: JSONL streaming *)

module Jsonl = struct
  let json_of_meta (m : run_meta) =
    Json.Obj
      [
        ("type", Json.Str "start");
        ("format_version", Json.Str format_version_string);
        ("engine", Json.Str m.engine);
        ("protocol", Json.Str m.protocol);
        ("adversary", Json.Str m.adversary);
        ("n", Json.Num (float_of_int m.n));
        ("t", Json.Num (float_of_int m.t));
        ("seed", Json.Num (float_of_int m.seed));
        ( "initial_corruptions",
          Json.Arr (List.map (fun p -> Json.Num (float_of_int p)) m.initial_corruptions)
        );
      ]

  let json_of_event (e : event) =
    let ints xs = Json.Arr (List.map (fun i -> Json.Num (float_of_int i)) xs) in
    let base =
      [
        ("type", Json.Str "round");
        ("round", Json.Num (float_of_int e.round));
        ("honest_msgs", Json.Num (float_of_int e.honest_msgs));
        ("adversary_msgs", Json.Num (float_of_int e.adversary_msgs));
        ("delivered_msgs", Json.Num (float_of_int e.delivered_msgs));
        ("rejected_forgeries", Json.Num (float_of_int e.rejected_forgeries));
        ("honest_bytes", Json.Num (float_of_int e.honest_bytes));
        ("adversary_bytes", Json.Num (float_of_int e.adversary_bytes));
        ("sent_by", ints (Array.to_list e.sent_by));
        ("corruptions", ints e.corruptions);
      ]
    in
    let grades =
      match e.grades with
      | None -> []
      | Some (g0, g1, g2) -> [ ("grades", ints [ g0; g1; g2 ]) ]
    in
    let marks =
      match e.marks with
      | [] -> []
      | ms ->
          [
            ( "marks",
              Json.Obj (List.map (fun (k, w) -> (k, Json.Num (float_of_int w))) ms)
            );
          ]
    in
    let snapshot =
      match e.snapshot with
      | [] -> []
      | snap ->
          [
            ( "snapshot",
              Json.Arr
                (List.map
                   (fun (p, v) -> Json.Arr [ Json.Num (float_of_int p); Json.Num v ])
                   snap) );
          ]
    in
    let profile =
      match e.profile with
      | None -> []
      | Some p ->
          [
            ( "profile",
              Json.Obj
                [
                  ("wall_ns", Json.Num (float_of_int p.wall_ns));
                  ("alloc_bytes", Json.Num p.alloc_bytes);
                ] );
          ]
    in
    Json.Obj (base @ grades @ marks @ snapshot @ profile)

  let json_of_summary (s : summary) =
    Json.Obj
      [
        ("type", Json.Str "stop");
        ("rounds", Json.Num (float_of_int s.rounds));
        ("honest_messages", Json.Num (float_of_int s.honest_messages));
        ("adversary_messages", Json.Num (float_of_int s.adversary_messages));
      ]

  (* One JSON object per line: a "start" header, one "round" line per round,
     a "stop" footer. The channel is flushed on stop but not closed — the
     caller owns it. *)
  let sink oc =
    let line json =
      output_string oc (Json.to_string json);
      output_char oc '\n'
    in
    {
      Sink.on_start = (fun m -> line (json_of_meta m));
      on_round = (fun e -> line (json_of_event e));
      on_stop =
        (fun s ->
          line (json_of_summary s);
          flush oc);
    }
end
