(* Minimal JSON: just enough to stream telemetry lines and to read them back
   in tests and offline tooling. Deliberately dependency-free — the rest of
   the tree never needs a full JSON stack. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* emission *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf f =
  if not (Float.is_finite f) then
    (* not representable in JSON; telemetry values are finite in practice *)
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add buf v)
        items;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          add buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* parsing: recursive descent over the whole string *)

exception Parse_error of string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= len then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > len then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   Buffer.add_utf_8_uchar buf
                     (if Uchar.is_valid code then Uchar.of_int code
                      else Uchar.rep)
               | _ -> fail "unknown escape");
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && numeric s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, value) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, value) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (value :: acc)
            | Some ']' -> advance (); Arr (List.rev (value :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* accessors *)

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr items -> Some items | _ -> None
