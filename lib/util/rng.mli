(** Deterministic, splittable pseudo-random number generator.

    All randomized components of the simulator (tree generators, adversary
    strategies, fuzzing) draw from an explicit [Rng.t] so that every
    experiment is reproducible from a single integer seed. The generator is
    SplitMix64 (Steele, Lea & Flood 2014): tiny state, good statistical
    quality, and cheap {!split} for deriving independent streams. *)

type t

val create : int -> t
(** [create seed] is a fresh generator determined entirely by [seed]. *)

val split : t -> t
(** [split rng] derives a new generator whose stream is independent of the
    subsequent outputs of [rng]. Both generators advance [rng]'s state, so
    splitting is itself deterministic. *)

val copy : t -> t
(** [copy rng] duplicates the current state; the copy replays the same
    stream as [rng] would from this point. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement rng k n] is a sorted list of [k] distinct
    integers drawn uniformly from [\[0, n)]. Requires [0 <= k <= n]. *)
