type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function: advance the state by the golden gamma, then
   scramble with two xor-shift-multiply rounds. *)
let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  let bits = Int64.shift_right_logical (int64 t) 11 in
  (* 53 uniform bits mapped to [0, 1). *)
  Int64.to_float bits *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Floyd's algorithm: k iterations, O(k) expected set operations. *)
  let module IS = Set.Make (Int) in
  let chosen = ref IS.empty in
  for j = n - k to n - 1 do
    let r = int t (j + 1) in
    if IS.mem r !chosen then chosen := IS.add j !chosen
    else chosen := IS.add r !chosen
  done;
  IS.elements !chosen
