(* Deterministic replay of flight-recorder records.

   Replay re-executes the record's spec exactly as the campaign would
   have — [Campaign.instantiate spec ~task_seed] derives the tree,
   inputs, adversary and engine seed from the task seed alone — and then
   holds the re-execution against the recording on three progressively
   finer checks:

     1. spec drift: the derived engine seed must equal the recorded one.
        A mismatch means the codebase's draw order changed since the
        record was made — running further would compare unrelated runs;
     2. trace divergence: round-by-round field comparison of telemetry
        events (first divergent round + field), when the record has
        events;
     3. outcome divergence: the profile-stripped outcome digest.

   Replays always run with profiling off; profile samples in the
   recording are ignored by the comparison (see [Trace.fields_of_event]). *)

module Telemetry = Aat_telemetry.Telemetry
module Campaign = Aat_campaign.Campaign
module Runner = Aat_campaign.Runner

type divergence =
  | Spec_drift of string
  | Trace_divergence of Trace.divergence
  | Outcome_divergence of { expected : string; actual : string }

type t = {
  outcome : Runner.outcome;  (** the replayed run's outcome *)
  digest : string;
  trace : Trace.t;
  verdict : (unit, divergence) Stdlib.result;
}

let pp_divergence ppf = function
  | Spec_drift m -> Format.fprintf ppf "spec drift: %s" m
  | Trace_divergence d ->
      Format.fprintf ppf "trace divergence: %a" Trace.pp_divergence d
  | Outcome_divergence { expected; actual } ->
      Format.fprintf ppf "outcome divergence: digest %s, expected %s" actual
        expected

let run (rec_ : Recorder.t) =
  match Campaign.Spec.validate rec_.Recorder.spec with
  | Error m -> Error ("record spec does not validate: " ^ m)
  | Ok () -> (
      match Campaign.instantiate rec_.Recorder.spec ~task_seed:rec_.Recorder.task_seed with
      | exception exn -> Error ("instantiation failed: " ^ Printexc.to_string exn)
      | runner, engine_seed ->
          let stats = Telemetry.Stats.create () in
          let outcome =
            runner.Runner.run ~seed:engine_seed
              ~telemetry:(Telemetry.Stats.sink stats) ()
          in
          let trace = Trace.of_stats stats in
          let digest = Recorder.digest_of_outcome outcome in
          let verdict =
            if engine_seed <> rec_.Recorder.engine_seed then
              Error
                (Spec_drift
                   (Printf.sprintf
                      "instantiation now derives engine seed %d, record says \
                       %d — the task-seed draw order has changed since this \
                       record was made"
                      engine_seed rec_.Recorder.engine_seed))
            else
              match
                (* repro records carry no events: nothing to pin there *)
                if rec_.Recorder.trace.Trace.events = [] then None
                else
                  Trace.diff ~expected:rec_.Recorder.trace ~actual:trace
              with
              | Some d -> Error (Trace_divergence d)
              | None -> (
                  match rec_.Recorder.digest with
                  | Some expected when expected <> digest ->
                      Error (Outcome_divergence { expected; actual = digest })
                  | _ -> Ok ())
          in
          Ok { outcome; digest; trace; verdict })
