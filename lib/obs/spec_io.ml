(* Campaign.Spec <-> JSON / CLI-string codec.

   The flight recorder persists the full campaign spec inside every run
   record, so a record file alone suffices to re-instantiate and replay
   the run; the CLI reuses the same string grammar for its campaign
   flags. The JSON encoding is structural (floats as JSON numbers, which
   [Jsonx.to_string] renders exactly), so [of_json (to_json s) = Ok s]
   for every valid spec. *)

module Json = Aat_telemetry.Jsonx
module Spec = Aat_campaign.Campaign.Spec
module Plan_io = Aat_faults.Plan_io

(* ------------------------------------------------------------------ *)
(* CLI string grammar (moved here from the CLI so record tooling and the
   campaign command parse identically) *)

let size_of_string s =
  let int v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "bad size %S (want N or LO-HI)" s)
  in
  match String.index_opt s '-' with
  | Some i ->
      let ( let* ) = Result.bind in
      let* lo = int (String.sub s 0 i) in
      let* hi = int (String.sub s (i + 1) (String.length s - i - 1)) in
      Ok (Spec.Between (lo, hi))
  | None -> Result.map (fun n -> Spec.Exactly n) (int s)

let size_to_string = function
  | Spec.Exactly n -> string_of_int n
  | Spec.Between (lo, hi) -> Printf.sprintf "%d-%d" lo hi

let tree_family_of_string s =
  let open Spec in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ "any" ] -> Ok Any_tree
  | [ "path"; n ] -> Result.map (fun n -> Path_tree n) (size_of_string n)
  | [ "star"; n ] -> Result.map (fun n -> Star_tree n) (size_of_string n)
  | [ "caterpillar"; spine; legs ] ->
      let* spine = size_of_string spine in
      let* legs = size_of_string legs in
      Ok (Caterpillar_tree { spine; legs })
  | [ "spider"; legs; len ] ->
      let* legs = size_of_string legs in
      let* leg_length = size_of_string len in
      Ok (Spider_tree { legs; leg_length })
  | [ "balanced"; arity; depth ] ->
      let* arity = size_of_string arity in
      let* depth = size_of_string depth in
      Ok (Balanced_tree { arity; depth })
  | [ "random"; n ] -> Result.map (fun n -> Random_tree n) (size_of_string n)
  | _ ->
      Error
        (Printf.sprintf
           "unknown tree family %S (try any, path:SIZE, star:SIZE, \
            caterpillar:SIZE:SIZE, spider:SIZE:SIZE, balanced:SIZE:SIZE, \
            random:SIZE; SIZE is N or LO-HI)"
           s)

let tree_family_to_string = function
  | Spec.Any_tree -> "any"
  | Spec.Path_tree n -> "path:" ^ size_to_string n
  | Spec.Star_tree n -> "star:" ^ size_to_string n
  | Spec.Caterpillar_tree { spine; legs } ->
      Printf.sprintf "caterpillar:%s:%s" (size_to_string spine)
        (size_to_string legs)
  | Spec.Spider_tree { legs; leg_length } ->
      Printf.sprintf "spider:%s:%s" (size_to_string legs)
        (size_to_string leg_length)
  | Spec.Balanced_tree { arity; depth } ->
      Printf.sprintf "balanced:%s:%s" (size_to_string arity)
        (size_to_string depth)
  | Spec.Random_tree n -> "random:" ^ size_to_string n

let protocol_of_string ~eps s =
  let open Spec in
  match s with
  | "tree-aa" -> Ok Tree_aa
  | "nr-baseline" -> Ok Nr_baseline
  | "path-aa" -> Ok Path_aa
  | "known-path-aa" -> Ok Known_path_aa
  | "realaa" -> Ok (Real_aa { eps })
  | "iterated-midpoint" -> Ok (Iterated_midpoint { eps })
  | "async-tree-aa" -> Ok Async_tree_aa
  | "round-sim-tree-aa" -> Ok Round_sim_tree_aa
  | other ->
      Error
        (Printf.sprintf
           "unknown protocol %S (have: tree-aa, nr-baseline, path-aa, \
            known-path-aa, realaa, iterated-midpoint, async-tree-aa, \
            round-sim-tree-aa)"
           other)

let adversary_of_string s =
  let open Spec in
  match s with
  | "none" -> Ok Passive
  | "silent" -> Ok Random_silent
  | "crash" -> Ok Random_crash
  | "spoiler" -> Ok Tree_spoiler
  | "real-spoiler" -> Ok Real_spoiler
  | "wedge" -> Ok Gradecast_wedge
  | "any-tree" -> Ok Any_tree_adversary
  | "any-real" -> Ok Any_real_adversary
  | other when String.length other > 7 && String.sub other 0 7 = "genome:" ->
      Result.map
        (fun g -> Synth_genome g)
        (Aat_adversary.Genome.of_string
           (String.sub other 7 (String.length other - 7)))
  | other ->
      Error
        (Printf.sprintf
           "unknown adversary family %S (have: none, silent, crash, spoiler, \
            real-spoiler, wedge, any-tree, any-real, genome:<encoded>)"
           other)

let adversary_to_string = function
  | Spec.Passive -> "none"
  | Spec.Random_silent -> "silent"
  | Spec.Random_crash -> "crash"
  | Spec.Tree_spoiler -> "spoiler"
  | Spec.Real_spoiler -> "real-spoiler"
  | Spec.Gradecast_wedge -> "wedge"
  | Spec.Any_tree_adversary -> "any-tree"
  | Spec.Any_real_adversary -> "any-real"
  | Spec.Synth_genome g -> "genome:" ^ Aat_adversary.Genome.to_string g

let inputs_of_string s =
  let open Spec in
  let float v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "bad number %S in input distribution" v)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ "vertices" ] -> Ok Random_vertices
  | [ "linspace"; d ] -> Result.map (fun d -> Linspace_reals d) (float d)
  | [ "loguniform"; lo; hi ] ->
      let* log10_min = float lo in
      let* log10_max = float hi in
      Ok (Log_uniform_reals { log10_min; log10_max })
  | _ ->
      Error
        (Printf.sprintf
           "unknown input distribution %S (try vertices, linspace:D, \
            loguniform:LOG10MIN:LOG10MAX)"
           s)

(* ------------------------------------------------------------------ *)
(* structural JSON codec *)

let json_of_size = function
  | Spec.Exactly n -> Json.Num (float_of_int n)
  | Spec.Between (lo, hi) ->
      Json.Obj
        [
          ("lo", Json.Num (float_of_int lo)); ("hi", Json.Num (float_of_int hi));
        ]

let size_of_json = function
  | Json.Num _ as j -> (
      match Json.to_int j with
      | Some n -> Ok (Spec.Exactly n)
      | None -> Error "size must be an integer")
  | Json.Obj _ as j -> (
      match
        ( Option.bind (Json.member "lo" j) Json.to_int,
          Option.bind (Json.member "hi" j) Json.to_int )
      with
      | Some lo, Some hi -> Ok (Spec.Between (lo, hi))
      | _ -> Error "size object needs integer lo and hi")
  | _ -> Error "size must be a number or {lo, hi}"

let json_of_tree_family tf =
  let sized family kvs = Json.Obj (("family", Json.Str family) :: kvs) in
  match tf with
  | Spec.Any_tree -> Json.Str "any"
  | Spec.Path_tree n -> sized "path" [ ("size", json_of_size n) ]
  | Spec.Star_tree n -> sized "star" [ ("size", json_of_size n) ]
  | Spec.Caterpillar_tree { spine; legs } ->
      sized "caterpillar"
        [ ("spine", json_of_size spine); ("legs", json_of_size legs) ]
  | Spec.Spider_tree { legs; leg_length } ->
      sized "spider"
        [ ("legs", json_of_size legs); ("leg_length", json_of_size leg_length) ]
  | Spec.Balanced_tree { arity; depth } ->
      sized "balanced"
        [ ("arity", json_of_size arity); ("depth", json_of_size depth) ]
  | Spec.Random_tree n -> sized "random" [ ("size", json_of_size n) ]

let tree_family_of_json j =
  let ( let* ) = Result.bind in
  let field name =
    match Json.member name j with
    | Some v -> size_of_json v
    | None -> Error (Printf.sprintf "tree family needs field %S" name)
  in
  match j with
  | Json.Str "any" -> Ok Spec.Any_tree
  | Json.Obj _ -> (
      match Option.bind (Json.member "family" j) Json.to_str with
      | None -> Error "tree family object needs a \"family\" string"
      | Some "path" -> Result.map (fun n -> Spec.Path_tree n) (field "size")
      | Some "star" -> Result.map (fun n -> Spec.Star_tree n) (field "size")
      | Some "caterpillar" ->
          let* spine = field "spine" in
          let* legs = field "legs" in
          Ok (Spec.Caterpillar_tree { spine; legs })
      | Some "spider" ->
          let* legs = field "legs" in
          let* leg_length = field "leg_length" in
          Ok (Spec.Spider_tree { legs; leg_length })
      | Some "balanced" ->
          let* arity = field "arity" in
          let* depth = field "depth" in
          Ok (Spec.Balanced_tree { arity; depth })
      | Some "random" -> Result.map (fun n -> Spec.Random_tree n) (field "size")
      | Some other -> Error (Printf.sprintf "unknown tree family %S" other))
  | _ -> Error "tree family must be \"any\" or an object"

let json_of_protocol p =
  match p with
  | Spec.Real_aa { eps } ->
      Json.Obj [ ("name", Json.Str "realaa"); ("eps", Json.Num eps) ]
  | Spec.Iterated_midpoint { eps } ->
      Json.Obj [ ("name", Json.Str "iterated-midpoint"); ("eps", Json.Num eps) ]
  | _ -> Json.Str (Spec.protocol_label p)

let protocol_of_json j =
  match j with
  | Json.Str s -> protocol_of_string ~eps:1.0 s
  | Json.Obj _ -> (
      match
        ( Option.bind (Json.member "name" j) Json.to_str,
          Option.bind (Json.member "eps" j) Json.to_float )
      with
      | Some name, Some eps -> protocol_of_string ~eps name
      | Some name, None -> protocol_of_string ~eps:1.0 name
      | None, _ -> Error "protocol object needs a \"name\" string")
  | _ -> Error "protocol must be a string or {name, eps}"

let json_of_budget = function
  | Spec.Up_to_third -> Json.Str "third"
  | Spec.Fixed_t t -> Json.Num (float_of_int t)

let budget_of_json = function
  | Json.Str "third" -> Ok Spec.Up_to_third
  | j -> (
      match Json.to_int j with
      | Some t -> Ok (Spec.Fixed_t t)
      | None -> Error "t budget must be \"third\" or an integer")

let json_of_inputs = function
  | Spec.Random_vertices -> Json.Str "vertices"
  | Spec.Linspace_reals d ->
      Json.Obj [ ("dist", Json.Str "linspace"); ("d", Json.Num d) ]
  | Spec.Log_uniform_reals { log10_min; log10_max } ->
      Json.Obj
        [
          ("dist", Json.Str "loguniform");
          ("log10_min", Json.Num log10_min);
          ("log10_max", Json.Num log10_max);
        ]

let inputs_of_json j =
  match j with
  | Json.Str "vertices" -> Ok Spec.Random_vertices
  | Json.Obj _ -> (
      let float name = Option.bind (Json.member name j) Json.to_float in
      match Option.bind (Json.member "dist" j) Json.to_str with
      | Some "linspace" -> (
          match float "d" with
          | Some d -> Ok (Spec.Linspace_reals d)
          | None -> Error "linspace inputs need a numeric \"d\"")
      | Some "loguniform" -> (
          match (float "log10_min", float "log10_max") with
          | Some log10_min, Some log10_max ->
              Ok (Spec.Log_uniform_reals { log10_min; log10_max })
          | _ -> Error "loguniform inputs need log10_min and log10_max")
      | Some other -> Error (Printf.sprintf "unknown input dist %S" other)
      | None -> Error "input distribution object needs a \"dist\" string")
  | _ -> Error "inputs must be \"vertices\" or an object"

let json_of_faults = function
  | Spec.No_faults -> []
  | Spec.Fault_plan p ->
      [
        ( "faults",
          Json.Obj
            [
              ("mode", Json.Str "plan");
              ("plan", Json.Str (Plan_io.to_string p));
            ] );
      ]
  | Spec.Chaos { intensity } ->
      [
        ( "faults",
          Json.Obj
            [ ("mode", Json.Str "chaos"); ("intensity", Json.Num intensity) ]
        );
      ]

let faults_of_json j =
  match Json.member "faults" j with
  | None -> Ok Spec.No_faults
  | Some fj -> (
      match Option.bind (Json.member "mode" fj) Json.to_str with
      | Some "plan" -> (
          match Option.bind (Json.member "plan" fj) Json.to_str with
          | None -> Error "fault plan mode needs a \"plan\" string"
          | Some s ->
              Result.map
                (fun p -> Spec.Fault_plan p)
                (Result.map_error (fun m -> "fault plan: " ^ m)
                   (Plan_io.parse s)))
      | Some "chaos" -> (
          match Option.bind (Json.member "intensity" fj) Json.to_float with
          | Some intensity -> Ok (Spec.Chaos { intensity })
          | None -> Error "chaos faults need a numeric \"intensity\"")
      | Some other -> Error (Printf.sprintf "unknown fault mode %S" other)
      | None -> Error "faults object needs a \"mode\" string")

let to_json (s : Spec.t) =
  Json.Obj
    ([
       ("name", Json.Str s.name);
       ("protocol", json_of_protocol s.protocol);
       ("tree", json_of_tree_family s.tree);
       ("n", json_of_size s.n);
       ("t", json_of_budget s.t_budget);
       ("inputs", json_of_inputs s.inputs);
       ("adversary", Json.Str (adversary_to_string s.adversary));
     ]
    @ json_of_faults s.faults
    @ (if s.watchdogs then [ ("watchdogs", Json.Bool true) ] else [])
    @ [
        ("repetitions", Json.Num (float_of_int s.repetitions));
        ("base_seed", Json.Num (float_of_int s.base_seed));
      ])

let of_json j =
  let ( let* ) = Result.bind in
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "spec needs a string field %S" name)
  in
  let int name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "spec needs an integer field %S" name)
  in
  let field name of_json_v =
    match Json.member name j with
    | Some v -> of_json_v v
    | None -> Error (Printf.sprintf "spec needs a field %S" name)
  in
  let* name = str "name" in
  let* protocol = field "protocol" protocol_of_json in
  let* tree = field "tree" tree_family_of_json in
  let* n = field "n" size_of_json in
  let* t_budget = field "t" budget_of_json in
  let* inputs = field "inputs" inputs_of_json in
  let* adversary = Result.bind (str "adversary") adversary_of_string in
  let* faults = faults_of_json j in
  let watchdogs =
    match Json.member "watchdogs" j with Some (Json.Bool b) -> b | _ -> false
  in
  let* repetitions = int "repetitions" in
  let* base_seed = int "base_seed" in
  Ok
    {
      Spec.name;
      protocol;
      tree;
      n;
      t_budget;
      inputs;
      adversary;
      faults;
      watchdogs;
      repetitions;
      base_seed;
    }
