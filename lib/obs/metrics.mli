(** Dependency-free metrics registry for the service stack.

    A {!t} is either the {!null} registry — every operation a no-op, so
    instrumented code pays nothing when observability is off, mirroring
    {!Aat_telemetry.Telemetry.Sink.null} — or a live registry holding
    named, optionally labeled {e counters}, {e gauges} and fixed-bucket
    {e histograms} behind one mutex (the coordinator's heartbeat loop
    snapshots while handlers update).

    {1 Determinism contract}

    A snapshot is a {e deterministic} value: series are sorted by name
    then labels, and every number renders through the {!Aat_telemetry.Jsonx}
    integer rule, so two registries fed the same updates in any order
    produce byte-identical {!Snapshot.to_json} output. Counters fed
    integer increments stay exact (no float rounding below 2{^53}).
    Metrics {e derived from timing} (lag gauges, rates) are outside the
    contract — same precedent as the [~profile] block of a flight
    record. *)

type t
(** A registry: {!null} or live. *)

val null : t
(** The no-op registry. Physical equality test via {!is_null}; every
    handle minted from it is inert. *)

val is_null : t -> bool

val create : unit -> t
(** A fresh live registry with no series. *)

(** {1 Instrument handles}

    Handles are minted once (name + labels) and updated on the hot
    path; minting the same name/labels twice yields the same underlying
    series. Labels are sorted internally — order at mint time is
    irrelevant. *)

type counter
type gauge
type histogram

val counter : t -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?labels:(string * string) list -> ?buckets:float list -> string ->
  histogram
(** [buckets] are upper bounds, sorted ascending (default powers of two
    [1; 2; 4; ...; 256]); an implicit [+Inf] bucket always exists. *)

val incr : counter -> unit
val add : counter -> float -> unit
(** Negative deltas are clamped to 0 — counters never go down. *)

val set : gauge -> float -> unit

val max_gauge : gauge -> float -> unit
(** [set g (max current v)] — for high-water marks that must merge
    order-independently. *)

val observe : histogram -> float -> unit

(** {1 Snapshots} *)

module Snapshot : sig
  type value =
    | Counter of float
    | Gauge of float
    | Histogram of {
        bounds : float list;  (** finite upper bounds, ascending *)
        counts : int list;  (** per-bucket counts, same length, plus *)
        overflow : int;  (** the implicit [+Inf] bucket *)
        sum : float;
        count : int;
      }

  type series = { name : string; labels : (string * string) list; value : value }

  type t = series list
  (** Always sorted by [name] then [labels]; labels sorted by key. *)

  val series : ?labels:(string * string) list -> string -> value -> series
  (** Build one series with its labels normalized (sorted by key) — for
      callers assembling a snapshot from external counters. *)

  val of_list : series list -> t
  (** Sorts; merges duplicate (name, labels) keys as {!merge} does. *)

  val merge : t -> t -> t
  (** Pointwise union: counters sum, gauges take the max, histograms
      with equal bounds sum pointwise (on a bounds mismatch the left
      series wins — callers keep bucket layouts consistent). *)

  val equal : t -> t -> bool

  val to_json : t -> Aat_telemetry.Jsonx.t
  (** [{"type":"metrics-snapshot";"format_version":1;"series":[...]}] —
      deterministic bytes via {!Aat_telemetry.Jsonx.to_string}. *)

  val of_json : Aat_telemetry.Jsonx.t -> (t, string) result

  val to_prometheus : t -> string
  (** Prometheus text exposition: [# TYPE] lines, labeled samples,
      histogram [_bucket]/[_sum]/[_count] with cumulative [le] buckets
      ending at [+Inf]. *)
end

val snapshot : t -> Snapshot.t
(** Empty on {!null}. *)

(** {1 Campaign-cell accounting}

    [record_cell t payload] parses one campaign cell result — the
    [Campaign.json_of_outcome] object, or [Error _] for an engine
    error — and bumps the deterministic [campaign_*] series: cells,
    grades, statuses, rounds/messages totals, injected fault counts,
    watchdog violations, max spread, and the rounds-used histogram.
    Because every update is a commutative fold of per-cell facts, the
    resulting snapshot is bit-identical for any worker count or cell
    arrival order. *)
val record_cell : t -> (Aat_telemetry.Jsonx.t, string) result -> unit

val write_atomic : path:string -> string -> unit
(** Write [path] atomically: temp file in the same directory, then
    rename — a concurrent reader sees the old or the new contents,
    never a torn file. *)
