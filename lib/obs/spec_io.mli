(** JSON and CLI-string codecs for {!Aat_campaign.Campaign.Spec}.

    The flight recorder ({!Recorder}) embeds the full campaign spec in
    every run-record header, so the record alone re-instantiates the run;
    this module is the codec. The CLI's campaign flags parse through the
    same string grammar, so [treeaa campaign] and record files can never
    drift apart.

    [of_json (to_json s)] returns [Ok s] for every valid spec: the JSON
    encoding is structural, floats travel as JSON numbers (which
    {!Aat_telemetry.Jsonx.to_string} renders exactly), and a fixed fault
    plan is embedded in its compact [--fault-plan] string form. *)

module Spec = Aat_campaign.Campaign.Spec

(** {1 CLI string grammar}

    The grammars of the [treeaa campaign] flags — [SIZE] is [N] or
    [LO-HI]; see the CLI's [--help] for the full vocabularies. *)

val size_of_string : string -> (Spec.size, string) result
val size_to_string : Spec.size -> string
val tree_family_of_string : string -> (Spec.tree_family, string) result
val tree_family_to_string : Spec.tree_family -> string

val protocol_of_string :
  eps:float -> string -> (Spec.protocol, string) result
(** [eps] seeds the agreement distance of the real-valued protocols
    ([realaa], [iterated-midpoint]); ignored by the rest. *)

val adversary_of_string : string -> (Spec.adversary_family, string) result
val adversary_to_string : Spec.adversary_family -> string
val inputs_of_string : string -> (Spec.input_dist, string) result

(** {1 JSON codec} *)

val to_json : Spec.t -> Aat_telemetry.Jsonx.t

val of_json : Aat_telemetry.Jsonx.t -> (Spec.t, string) result
(** Inverse of {!to_json}. [No_faults] and [watchdogs = false] are
    encoded by omission, so hand-written minimal spec objects parse. *)
