module Json = Aat_telemetry.Jsonx

(* ------------------------------------------------------------------ *)
(* registry *)

type cell =
  | Ccounter of { mutable c : float }
  | Cgauge of { mutable g : float }
  | Chist of {
      bounds : float array;
      counts : int array;
      mutable overflow : int;
      mutable sum : float;
      mutable count : int;
    }

type key = string * (string * string) list

type live = { mutex : Mutex.t; table : (key, cell) Hashtbl.t }
type t = Null_reg | Live of live

let null = Null_reg
let is_null = function Null_reg -> true | Live _ -> false
let create () = Live { mutex = Mutex.create (); table = Hashtbl.create 64 }

let sort_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

(* a handle is the registry mutex plus the cell it updates; [None] under
   the null registry, so the hot path is one pattern match *)
type counter = (Mutex.t * cell) option
type gauge = (Mutex.t * cell) option
type histogram = (Mutex.t * cell) option

let default_buckets = [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. ]

let mint reg ?(labels = []) name fresh =
  match reg with
  | Null_reg -> None
  | Live { mutex; table } ->
      let key = (name, sort_labels labels) in
      Mutex.lock mutex;
      let cell =
        match Hashtbl.find_opt table key with
        | Some c -> c
        | None ->
            let c = fresh () in
            Hashtbl.add table key c;
            c
      in
      Mutex.unlock mutex;
      Some (mutex, cell)

let counter reg ?labels name =
  mint reg ?labels name (fun () -> Ccounter { c = 0. })

let gauge reg ?labels name = mint reg ?labels name (fun () -> Cgauge { g = 0. })

let histogram reg ?labels ?(buckets = default_buckets) name =
  mint reg ?labels name (fun () ->
      let bounds = Array.of_list (List.sort_uniq Float.compare buckets) in
      Chist
        {
          bounds;
          counts = Array.make (Array.length bounds) 0;
          overflow = 0;
          sum = 0.;
          count = 0;
        })

let locked handle f =
  match handle with
  | None -> ()
  | Some (mutex, cell) ->
      Mutex.lock mutex;
      f cell;
      Mutex.unlock mutex

let add h delta =
  let delta = if delta < 0. then 0. else delta in
  locked h (function Ccounter c -> c.c <- c.c +. delta | _ -> ())

let incr h = add h 1.
let set h v = locked h (function Cgauge g -> g.g <- v | _ -> ())

let max_gauge h v =
  locked h (function Cgauge g -> g.g <- Float.max g.g v | _ -> ())

let observe h v =
  locked h (function
    | Chist hd ->
        let n = Array.length hd.bounds in
        let rec place i =
          if i >= n then hd.overflow <- hd.overflow + 1
          else if v <= hd.bounds.(i) then hd.counts.(i) <- hd.counts.(i) + 1
          else place (i + 1)
        in
        place 0;
        hd.sum <- hd.sum +. v;
        hd.count <- hd.count + 1
    | _ -> ())

(* ------------------------------------------------------------------ *)
(* snapshots *)

module Snapshot = struct
  type value =
    | Counter of float
    | Gauge of float
    | Histogram of {
        bounds : float list;
        counts : int list;
        overflow : int;
        sum : float;
        count : int;
      }

  type series = { name : string; labels : (string * string) list; value : value }
  type t = series list

  let series ?(labels = []) name value =
    { name; labels = sort_labels labels; value }

  let compare_series a b =
    match String.compare a.name b.name with
    | 0 -> compare a.labels b.labels
    | c -> c

  let merge_values a b =
    match (a, b) with
    | Counter x, Counter y -> Counter (x +. y)
    | Gauge x, Gauge y -> Gauge (Float.max x y)
    | ( Histogram h1,
        Histogram h2 )
      when h1.bounds = h2.bounds ->
        Histogram
          {
            bounds = h1.bounds;
            counts = List.map2 ( + ) h1.counts h2.counts;
            overflow = h1.overflow + h2.overflow;
            sum = h1.sum +. h2.sum;
            count = h1.count + h2.count;
          }
    | left, _ -> left

  let of_list series =
    let sorted = List.stable_sort compare_series series in
    let rec squash = function
      | a :: b :: rest when compare_series a b = 0 ->
          squash ({ a with value = merge_values a.value b.value } :: rest)
      | a :: rest -> a :: squash rest
      | [] -> []
    in
    squash sorted

  let merge a b = of_list (a @ b)

  let equal a b = a = b

  let format_version = 1

  let json_of_series s =
    let labels =
      if s.labels = [] then []
      else
        [
          ( "labels",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.labels) );
        ]
    in
    let body =
      match s.value with
      | Counter v -> [ ("kind", Json.Str "counter"); ("value", Json.Num v) ]
      | Gauge v -> [ ("kind", Json.Str "gauge"); ("value", Json.Num v) ]
      | Histogram h ->
          [
            ("kind", Json.Str "histogram");
            ("bounds", Json.Arr (List.map (fun b -> Json.Num b) h.bounds));
            ( "counts",
              Json.Arr (List.map (fun c -> Json.Num (float_of_int c)) h.counts)
            );
            ("overflow", Json.Num (float_of_int h.overflow));
            ("sum", Json.Num h.sum);
            ("count", Json.Num (float_of_int h.count));
          ]
    in
    Json.Obj ((("name", Json.Str s.name) :: labels) @ body)

  let to_json t =
    Json.Obj
      [
        ("type", Json.Str "metrics-snapshot");
        ("format_version", Json.Num (float_of_int format_version));
        ("series", Json.Arr (List.map json_of_series t));
      ]

  let series_of_json j =
    let open Json in
    let ( let* ) = Option.bind in
    let* name = Option.bind (member "name" j) to_str in
    let labels =
      match member "labels" j with
      | Some (Obj kvs) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun s -> (k, s)) (to_str v))
            kvs
      | _ -> []
    in
    let* kind = Option.bind (member "kind" j) to_str in
    let* value =
      match kind with
      | "counter" ->
          Option.map (fun v -> Counter v) (Option.bind (member "value" j) to_float)
      | "gauge" ->
          Option.map (fun v -> Gauge v) (Option.bind (member "value" j) to_float)
      | "histogram" ->
          let nums field =
            Option.bind (member field j) to_list
            |> Option.map (List.filter_map to_float)
          in
          let ints field =
            Option.bind (member field j) to_list
            |> Option.map (List.filter_map to_int)
          in
          let* bounds = nums "bounds" in
          let* counts = ints "counts" in
          let* overflow = Option.bind (member "overflow" j) to_int in
          let* sum = Option.bind (member "sum" j) to_float in
          let* count = Option.bind (member "count" j) to_int in
          if List.length bounds <> List.length counts then None
          else Some (Histogram { bounds; counts; overflow; sum; count })
      | _ -> None
    in
    Some { name; labels = sort_labels labels; value }

  let of_json j =
    match Json.member "series" j with
    | Some (Json.Arr items) ->
        let rec go acc = function
          | [] -> Ok (of_list (List.rev acc))
          | item :: rest -> (
              match series_of_json item with
              | Some s -> go (s :: acc) rest
              | None -> Error "metrics-snapshot: malformed series entry")
        in
        go [] items
    | _ -> Error "metrics-snapshot: missing series array"

  (* render a sample value with the Jsonx number rule so the exposition
     is as deterministic as the JSON twin *)
  let num f =
    let buf = Buffer.create 24 in
    Json.add buf (Json.Num f);
    Buffer.contents buf

  let escape_label_value v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let render_labels = function
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
               labels)
        ^ "}"

  let to_prometheus t =
    let buf = Buffer.create 1024 in
    let typed = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let kind =
          match s.value with
          | Counter _ -> "counter"
          | Gauge _ -> "gauge"
          | Histogram _ -> "histogram"
        in
        if not (Hashtbl.mem typed s.name) then begin
          Hashtbl.add typed s.name ();
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.name kind)
        end;
        match s.value with
        | Counter v | Gauge v ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" s.name (render_labels s.labels)
                 (num v))
        | Histogram h ->
            let cumulative = ref 0 in
            List.iter2
              (fun bound count ->
                cumulative := !cumulative + count;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" s.name
                     (render_labels (s.labels @ [ ("le", num bound) ]))
                     !cumulative))
              h.bounds h.counts;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.name
                 (render_labels (s.labels @ [ ("le", "+Inf") ]))
                 h.count);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" s.name (render_labels s.labels)
                 (num h.sum));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" s.name
                 (render_labels s.labels) h.count))
      t;
    Buffer.contents buf
end

let snapshot = function
  | Null_reg -> []
  | Live { mutex; table } ->
      Mutex.lock mutex;
      let series =
        Hashtbl.fold
          (fun (name, labels) cell acc ->
            let value =
              match cell with
              | Ccounter c -> Snapshot.Counter c.c
              | Cgauge g -> Snapshot.Gauge g.g
              | Chist h ->
                  Snapshot.Histogram
                    {
                      bounds = Array.to_list h.bounds;
                      counts = Array.to_list h.counts;
                      overflow = h.overflow;
                      sum = h.sum;
                      count = h.count;
                    }
            in
            { Snapshot.name; labels; value } :: acc)
          table []
      in
      Mutex.unlock mutex;
      Snapshot.of_list series

(* ------------------------------------------------------------------ *)
(* campaign-cell accounting *)

let bool_field j name default =
  match Json.member name j with Some (Json.Bool b) -> b | _ -> default

let int_field j name = Option.bind (Json.member name j) Json.to_int
let str_field j name = Option.bind (Json.member name j) Json.to_str

let record_cell reg payload =
  match reg with
  | Null_reg -> ()
  | Live _ -> (
      incr (counter reg "campaign_cells_total");
      match payload with
      | Error _ ->
          incr (counter reg "campaign_cell_errors_total");
          incr
            (counter reg ~labels:[ ("status", "engine-error") ]
               "campaign_statuses_total")
      | Ok j ->
          let all_ok =
            bool_field j "termination" true
            && bool_field j "validity" true
            && bool_field j "agreement" true
          in
          let excused = str_field j "grade" = Some "excused" in
          let grade =
            if excused then "excused" else if all_ok then "passed" else "violated"
          in
          incr (counter reg ~labels:[ ("grade", grade) ] "campaign_grades_total");
          let status = Option.value (str_field j "status") ~default:"completed" in
          incr
            (counter reg ~labels:[ ("status", status) ] "campaign_statuses_total");
          (match int_field j "rounds_used" with
          | Some r ->
              add (counter reg "campaign_rounds_total") (float_of_int r);
              observe (histogram reg "campaign_rounds_used") (float_of_int r)
          | None -> ());
          (match int_field j "honest_messages" with
          | Some m -> add (counter reg "campaign_honest_messages_total") (float_of_int m)
          | None -> ());
          (match int_field j "adversary_messages" with
          | Some m ->
              add (counter reg "campaign_adversary_messages_total") (float_of_int m)
          | None -> ());
          (match Json.member "faults" j with
          | Some (Json.Obj kinds) ->
              List.iter
                (fun (kind, v) ->
                  match Json.to_int v with
                  | Some n when n > 0 ->
                      add
                        (counter reg ~labels:[ ("kind", kind) ]
                           "campaign_faults_injected_total")
                        (float_of_int n)
                  | _ -> ())
                kinds
          | _ -> ());
          (match Json.member "watchdog_violations" j with
          | Some (Json.Arr vs) ->
              add
                (counter reg "campaign_watchdog_violations_total")
                (float_of_int (List.length vs))
          | _ -> ());
          (match Option.bind (Json.member "spread" j) Json.to_float with
          | Some s -> max_gauge (gauge reg "campaign_spread_max") s
          | None -> ()))

(* ------------------------------------------------------------------ *)
(* atomic file writes (stdlib only — same temp+rename discipline as the
   service checkpoints) *)

let write_atomic ~path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path
