(** Parsed telemetry traces: the read side of {!Aat_telemetry.Telemetry.Jsonl},
    plus the analyses behind [treeaa trace].

    A trace holds exactly what a JSONL telemetry sink wrote — the
    ["start"] header, the per-round ["round"] events, the ["stop"]
    summary — parsed back into the same {!Aat_telemetry.Telemetry}
    records the engines emitted, so every in-memory analysis applies to
    on-disk traces unchanged. Flight-recorder container lines
    (["run-record"], ["outcome"]) and unknown line types are skipped;
    unknown format-version {e majors} are rejected. *)

type t = {
  meta : Aat_telemetry.Telemetry.run_meta option;
  events : Aat_telemetry.Telemetry.event list;  (** chronological *)
  summary : Aat_telemetry.Telemetry.summary option;
}

val empty : t

val of_stats : Aat_telemetry.Telemetry.Stats.t -> t
(** The trace a {!Aat_telemetry.Telemetry.Stats} sink accumulated. *)

val of_lines : string list -> (t, string) result
(** Parse JSONL lines (error messages carry 1-based line numbers). *)

val of_string : string -> (t, string) result
(** {!of_lines} on newline-split input; blank lines are skipped. *)

val load : string -> (t, string) result
(** Read and parse a trace (or record) file. *)

(** {1 Divergence detection}

    The replay layer's comparison primitive: the first place two traces
    of the same run disagree. The ["profile"] field of events is a
    wall-clock measurement and never participates. *)

type divergence = {
  round : int;  (** [0] for a header mismatch *)
  field : string;
      (** the event field, ["meta.*"], ["summary.*"], or ["rounds"] when
          one trace has more events than the other *)
  expected : string;  (** rendered JSON of the expected value *)
  actual : string;
}

val compare_events :
  expected:Aat_telemetry.Telemetry.event list ->
  actual:Aat_telemetry.Telemetry.event list ->
  divergence option
(** First divergent (round, field), walking both lists in lockstep. *)

val diff : expected:t -> actual:t -> divergence option
(** Meta, then events, then summary. A side missing its header or
    summary pins nothing (partial traces stay comparable). *)

val pp_divergence : Format.formatter -> divergence -> unit

(** {1 Analyses} *)

val convergence : t -> (int * float) list
(** (round, honest-value spread) per snapshotted round — the convergence
    curve, as {!Aat_telemetry.Telemetry.Stats.convergence}. *)

val send_series : t -> (int * int array) list
(** Per-round per-party send counts — the send matrix, row per round. *)

val send_totals : t -> int array
(** Letters submitted per party over the whole run. *)

(** {1 Blame localization}

    [treeaa trace blame]: the earliest round at which the run
    demonstrably went wrong, and which parties to suspect. *)

type blame = {
  round : int;
  kind : string;  (** ["watchdog"] or ["spread-expansion"] *)
  detail : string;
  suspects : int list;
      (** parties corrupted by that round; if none are recorded, the
          round's busiest sender *)
}

val blame : ?violations:Aat_runtime.Watchdog.violation list -> t -> blame option
(** The earliest watchdog violation wins; otherwise the first round whose
    snapshot spread exceeds the previous round's — the spread
    non-expansion invariant every protocol here promises. [None]: nothing
    in the trace localizes a failure. *)

val pp_blame : Format.formatter -> blame -> unit
