module Json = Aat_telemetry.Jsonx

type open_span = {
  sid : int;
  sname : string;
  stid : int;
  sparent : int option;
  scat : string option;
  sargs : (string * Json.t) list;
  t0 : float;  (* clock seconds at enter *)
  bseq : int;  (* sequence number reserved at enter — orders B before
                  any child's B on a timestamp tie *)
  mutable closed : bool;
}

type live = {
  mutex : Mutex.t;
  pid : int;
  clock : unit -> float;
  mutable seq : int;
  (* (ts_us, seq, event), newest first; everything ever emitted *)
  mutable all : (float * int * Json.t) list;
  (* undrained completed events, newest first *)
  mutable fresh : Json.t list;
  mutable opened : open_span list;
}

type t = Null_tr | Live of live

let null = Null_tr
let is_null = function Null_tr -> true | Live _ -> false

let create ?(pid = 0) ~clock () =
  Live
    {
      mutex = Mutex.create ();
      pid;
      clock;
      seq = 0;
      all = [];
      fresh = [];
      opened = [];
    }

type span = open_span option

let id = function None -> 0 | Some s -> s.sid

let next_seq lv =
  lv.seq <- lv.seq + 1;
  lv.seq

(* emit under the caller's lock *)
let push lv ~ts ~seq ev =
  lv.all <- (ts, seq, ev) :: lv.all;
  lv.fresh <- ev :: lv.fresh

let event ~name ~ph ~ts ~pid ~tid ?cat ?(args = []) () =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("ph", Json.Str ph);
       ("ts", Json.Num ts);
       ("pid", Json.Num (float_of_int pid));
       ("tid", Json.Num (float_of_int tid));
     ]
    @ (match cat with Some c -> [ ("cat", Json.Str c) ] | None -> [])
    @ if args = [] then [] else [ ("args", Json.Obj args) ])

let us seconds = seconds *. 1e6

let enter t ?(tid = 0) ?parent ?cat ?args name =
  match t with
  | Null_tr -> None
  | Live lv ->
      Mutex.lock lv.mutex;
      let sid = next_seq lv in
      let bseq = next_seq lv in
      let s =
        {
          sid;
          sname = name;
          stid = tid;
          sparent = parent;
          scat = cat;
          sargs = Option.value args ~default:[];
          t0 = lv.clock ();
          bseq;
          closed = false;
        }
      in
      lv.opened <- s :: lv.opened;
      Mutex.unlock lv.mutex;
      Some s

(* append the balanced B/E pair for a span closing at [t1]; lock held *)
let emit_pair lv s ~t1 =
  let args =
    [ ("id", Json.Num (float_of_int s.sid)) ]
    @ (match s.sparent with
      | Some p -> [ ("parent", Json.Num (float_of_int p)) ]
      | None -> [])
    @ s.sargs
  in
  let b =
    event ~name:s.sname ~ph:"B" ~ts:(us s.t0) ~pid:lv.pid ~tid:s.stid
      ?cat:s.scat ~args ()
  in
  let e = event ~name:s.sname ~ph:"E" ~ts:(us t1) ~pid:lv.pid ~tid:s.stid () in
  push lv ~ts:(us s.t0) ~seq:s.bseq b;
  push lv ~ts:(us t1) ~seq:(next_seq lv) e

let close t span =
  match (t, span) with
  | Null_tr, _ | _, None -> ()
  | Live lv, Some s ->
      Mutex.lock lv.mutex;
      if not s.closed then begin
        s.closed <- true;
        lv.opened <- List.filter (fun o -> o != s) lv.opened;
        emit_pair lv s ~t1:(lv.clock ())
      end;
      Mutex.unlock lv.mutex

let complete t ?(tid = 0) ?parent ?cat ?args ~name ~start ~stop () =
  match t with
  | Null_tr -> 0
  | Live lv ->
      Mutex.lock lv.mutex;
      let sid = next_seq lv in
      let s =
        {
          sid;
          sname = name;
          stid = tid;
          sparent = parent;
          scat = cat;
          sargs = Option.value args ~default:[];
          t0 = start;
          bseq = next_seq lv;
          closed = true;
        }
      in
      emit_pair lv s ~t1:stop;
      Mutex.unlock lv.mutex;
      sid

let instant t ?(tid = 0) ?args name =
  match t with
  | Null_tr -> ()
  | Live lv ->
      Mutex.lock lv.mutex;
      let ts = us (lv.clock ()) in
      let ev =
        Json.Obj
          ([
             ("name", Json.Str name);
             ("ph", Json.Str "i");
             ("ts", Json.Num ts);
             ("pid", Json.Num (float_of_int lv.pid));
             ("tid", Json.Num (float_of_int tid));
             ("s", Json.Str "t");
           ]
          @
          match args with
          | Some a when a <> [] -> [ ("args", Json.Obj a) ]
          | _ -> [])
      in
      push lv ~ts ~seq:(next_seq lv) ev;
      Mutex.unlock lv.mutex

let process_name t name =
  match t with
  | Null_tr -> ()
  | Live lv ->
      Mutex.lock lv.mutex;
      let ev =
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("ts", Json.Num 0.);
            ("pid", Json.Num (float_of_int lv.pid));
            ("tid", Json.Num 0.);
            ("args", Json.Obj [ ("name", Json.Str name) ]);
          ]
      in
      push lv ~ts:(-1.) ~seq:(next_seq lv) ev;
      Mutex.unlock lv.mutex

let drain t =
  match t with
  | Null_tr -> []
  | Live lv ->
      Mutex.lock lv.mutex;
      let out = List.rev lv.fresh in
      lv.fresh <- [];
      Mutex.unlock lv.mutex;
      out

let import t events =
  match t with
  | Null_tr -> ()
  | Live lv ->
      Mutex.lock lv.mutex;
      List.iter
        (fun ev ->
          match ev with
          | Json.Obj _ ->
              let ts =
                Option.value
                  (Option.bind (Json.member "ts" ev) Json.to_float)
                  ~default:0.
              in
              lv.all <- (ts, next_seq lv, ev) :: lv.all
          | _ -> ())
        events;
      Mutex.unlock lv.mutex

let close_all t =
  match t with
  | Null_tr -> ()
  | Live lv ->
      Mutex.lock lv.mutex;
      let t1 = lv.clock () in
      (* opened is newest-first, so this closes children before parents *)
      List.iter
        (fun s ->
          if not s.closed then begin
            s.closed <- true;
            emit_pair lv s ~t1
          end)
        lv.opened;
      lv.opened <- [];
      Mutex.unlock lv.mutex

let to_json t =
  match t with
  | Null_tr -> Json.Obj [ ("traceEvents", Json.Arr []) ]
  | Live lv ->
      Mutex.lock lv.mutex;
      let events = lv.all in
      Mutex.unlock lv.mutex;
      let sorted =
        List.stable_sort
          (fun (ta, sa, _) (tb, sb, _) ->
            match Float.compare ta tb with 0 -> compare sa sb | c -> c)
          (List.rev events)
      in
      Json.Obj
        [ ("traceEvents", Json.Arr (List.map (fun (_, _, ev) -> ev) sorted)) ]
