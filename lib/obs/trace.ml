(* Parsed telemetry traces: the read side of [Telemetry.Jsonl], plus the
   analyses the [treeaa trace] tooling is built from.

   A trace is whatever a JSONL sink wrote — "start" / "round" / "stop"
   lines — parsed back into the very same [Telemetry] records the engines
   emitted. Flight-recorder container lines ("run-record", "outcome") are
   tolerated and skipped, so every analysis here works unchanged on
   record files. Unknown line types are skipped too (minor-version
   additions must not break old readers); unknown format {e majors} are
   rejected via [Telemetry.check_format_version]. *)

module Json = Aat_telemetry.Jsonx
module Telemetry = Aat_telemetry.Telemetry

type t = {
  meta : Telemetry.run_meta option;
  events : Telemetry.event list;
  summary : Telemetry.summary option;
}

let empty = { meta = None; events = []; summary = None }

let of_stats st =
  {
    meta = Telemetry.Stats.meta st;
    events = Telemetry.Stats.events st;
    summary = Telemetry.Stats.summary st;
  }

(* ------------------------------------------------------------------ *)
(* parsing *)

let ( let* ) = Result.bind

let req_int j name =
  match Option.bind (Json.member name j) Json.to_int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing integer field %S" name)

let req_str j name =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" name)

let int_list j name =
  match Option.bind (Json.member name j) Json.to_list with
  | None -> Error (Printf.sprintf "missing array field %S" name)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: tl -> (
            match Json.to_int item with
            | Some i -> go (i :: acc) tl
            | None -> Error (Printf.sprintf "non-integer entry in %S" name))
      in
      go [] items

let meta_of_json j =
  let* engine = req_str j "engine" in
  let* protocol = req_str j "protocol" in
  let* adversary = req_str j "adversary" in
  let* n = req_int j "n" in
  let* t = req_int j "t" in
  let* seed = req_int j "seed" in
  let* initial_corruptions = int_list j "initial_corruptions" in
  Ok { Telemetry.engine; protocol; adversary; n; t; seed; initial_corruptions }

let grades_of_json j =
  match Json.member "grades" j with
  | None -> Ok None
  | Some gj -> (
      match Json.to_list gj with
      | Some [ g0; g1; g2 ] -> (
          match (Json.to_int g0, Json.to_int g1, Json.to_int g2) with
          | Some g0, Some g1, Some g2 -> Ok (Some (g0, g1, g2))
          | _ -> Error "non-integer grade histogram")
      | _ -> Error "\"grades\" must be a 3-element array")

let marks_of_json j =
  match Json.member "marks" j with
  | None -> Ok []
  | Some (Json.Obj kvs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, v) :: tl -> (
            match Json.to_int v with
            | Some w -> go ((k, w) :: acc) tl
            | None -> Error (Printf.sprintf "non-integer mark %S" k))
      in
      go [] kvs
  | Some _ -> Error "\"marks\" must be an object"

let snapshot_of_json j =
  match Json.member "snapshot" j with
  | None -> Ok []
  | Some sj -> (
      match Json.to_list sj with
      | None -> Error "\"snapshot\" must be an array"
      | Some items ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | Json.Arr [ p; v ] :: tl -> (
                match (Json.to_int p, Json.to_float v) with
                | Some p, Some v -> go ((p, v) :: acc) tl
                | _ -> Error "malformed snapshot pair")
            | _ -> Error "snapshot entries must be [party, value] pairs"
          in
          go [] items)

let profile_of_json j =
  match Json.member "profile" j with
  | None -> Ok None
  | Some pj -> (
      match
        ( Option.bind (Json.member "wall_ns" pj) Json.to_int,
          Option.bind (Json.member "alloc_bytes" pj) Json.to_float )
      with
      | Some wall_ns, Some alloc_bytes ->
          Ok (Some { Telemetry.wall_ns; alloc_bytes })
      | _ -> Error "malformed \"profile\" sample")

let event_of_json j =
  let* round = req_int j "round" in
  let* honest_msgs = req_int j "honest_msgs" in
  let* adversary_msgs = req_int j "adversary_msgs" in
  let* delivered_msgs = req_int j "delivered_msgs" in
  let* rejected_forgeries = req_int j "rejected_forgeries" in
  let* honest_bytes = req_int j "honest_bytes" in
  let* adversary_bytes = req_int j "adversary_bytes" in
  let* sent_by = int_list j "sent_by" in
  let* corruptions = int_list j "corruptions" in
  let* grades = grades_of_json j in
  let* marks = marks_of_json j in
  let* snapshot = snapshot_of_json j in
  let* profile = profile_of_json j in
  Ok
    {
      Telemetry.round;
      honest_msgs;
      adversary_msgs;
      delivered_msgs;
      rejected_forgeries;
      honest_bytes;
      adversary_bytes;
      sent_by = Array.of_list sent_by;
      corruptions;
      grades;
      marks;
      snapshot;
      profile;
    }

let summary_of_json j =
  let* rounds = req_int j "rounds" in
  let* honest_messages = req_int j "honest_messages" in
  let* adversary_messages = req_int j "adversary_messages" in
  Ok { Telemetry.rounds; honest_messages; adversary_messages }

let of_lines lines =
  let rec go acc lineno = function
    | [] -> Ok { acc with events = List.rev acc.events }
    | line :: tl -> (
        let located = Printf.sprintf "line %d: " lineno in
        match Json.of_string line with
        | Error m -> Error (located ^ m)
        | Ok j -> (
            match Option.bind (Json.member "type" j) Json.to_str with
            | None -> Error (located ^ "missing \"type\" field")
            | Some "start" -> (
                match Telemetry.check_format_version j with
                | Error m -> Error (located ^ m)
                | Ok () -> (
                    match meta_of_json j with
                    | Error m -> Error (located ^ m)
                    | Ok m -> go { acc with meta = Some m } (lineno + 1) tl))
            | Some "round" -> (
                match event_of_json j with
                | Error m -> Error (located ^ m)
                | Ok e ->
                    go { acc with events = e :: acc.events } (lineno + 1) tl)
            | Some "stop" -> (
                match summary_of_json j with
                | Error m -> Error (located ^ m)
                | Ok s -> go { acc with summary = Some s } (lineno + 1) tl)
            | Some "run-record" -> (
                (* recorder container header: version-checked, not a trace
                   line *)
                match Telemetry.check_format_version j with
                | Error m -> Error (located ^ m)
                | Ok () -> go acc (lineno + 1) tl)
            | Some _ -> go acc (lineno + 1) tl))
  in
  go empty 1 lines

let nonblank_lines s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")

let of_string s = of_lines (nonblank_lines s)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents -> of_string contents

(* ------------------------------------------------------------------ *)
(* divergence detection *)

type divergence = {
  round : int;
  field : string;
  expected : string;
  actual : string;
}

(* An event as named, rendered fields — the unit of comparison. "type" is
   constant and "profile" is a wall-clock measurement, so neither takes
   part in divergence detection. *)
let fields_of_event e =
  match Telemetry.Jsonl.json_of_event e with
  | Json.Obj kvs ->
      List.filter_map
        (fun (k, v) ->
          if k = "type" || k = "profile" then None
          else Some (k, Json.to_string v))
        kvs
  | _ -> []

let compare_one_event ~(expected : Telemetry.event) ~(actual : Telemetry.event)
    =
  let ef = fields_of_event expected and af = fields_of_event actual in
  let lookup k kvs =
    match List.assoc_opt k kvs with Some v -> v | None -> "(absent)"
  in
  let keys =
    List.sort_uniq String.compare (List.map fst ef @ List.map fst af)
  in
  List.find_map
    (fun k ->
      let e = lookup k ef and a = lookup k af in
      if String.equal e a then None
      else
        Some { round = expected.Telemetry.round; field = k; expected = e; actual = a })
    keys

let compare_events ~expected ~actual =
  let rec go = function
    | [], [] -> None
    | e :: etl, a :: atl -> (
        match compare_one_event ~expected:e ~actual:a with
        | Some d -> Some d
        | None -> go (etl, atl))
    | (e : Telemetry.event) :: _, [] ->
        Some
          {
            round = e.Telemetry.round;
            field = "rounds";
            expected = "event";
            actual = "(trace ended)";
          }
    | [], (a : Telemetry.event) :: _ ->
        Some
          {
            round = a.Telemetry.round;
            field = "rounds";
            expected = "(trace ended)";
            actual = "event";
          }
  in
  go (expected, actual)

let compare_meta ~expected ~actual =
  match (expected, actual) with
  | None, _ | _, None -> None (* a side without a header has nothing to pin *)
  | Some e, Some a ->
      let ej = Telemetry.Jsonl.json_of_meta e
      and aj = Telemetry.Jsonl.json_of_meta a in
      let kvs = function Json.Obj kvs -> kvs | _ -> [] in
      List.find_map
        (fun (k, v) ->
          match List.assoc_opt k (kvs aj) with
          | Some v' when Json.to_string v = Json.to_string v' -> None
          | other ->
              Some
                {
                  round = 0;
                  field = "meta." ^ k;
                  expected = Json.to_string v;
                  actual =
                    (match other with
                    | Some v' -> Json.to_string v'
                    | None -> "(absent)");
                })
        (kvs ej)

let compare_summary ~last_round ~expected ~actual =
  match (expected, actual) with
  | None, _ | _, None -> None
  | Some (e : Telemetry.summary), Some (a : Telemetry.summary) ->
      let check field ev av =
        if ev = av then None
        else
          Some
            {
              round = last_round;
              field = "summary." ^ field;
              expected = string_of_int ev;
              actual = string_of_int av;
            }
      in
      List.find_map Fun.id
        [
          check "rounds" e.rounds a.rounds;
          check "honest_messages" e.honest_messages a.honest_messages;
          check "adversary_messages" e.adversary_messages a.adversary_messages;
        ]

let diff ~expected ~actual =
  match compare_meta ~expected:expected.meta ~actual:actual.meta with
  | Some d -> Some d
  | None -> (
      match
        compare_events ~expected:expected.events ~actual:actual.events
      with
      | Some d -> Some d
      | None ->
          let last_round =
            List.fold_left
              (fun acc (e : Telemetry.event) -> max acc e.round)
              0 expected.events
          in
          compare_summary ~last_round ~expected:expected.summary
            ~actual:actual.summary)

let pp_divergence ppf d =
  Format.fprintf ppf "round %d, field %s: expected %s, got %s" d.round d.field
    d.expected d.actual

(* ------------------------------------------------------------------ *)
(* analyses *)

let convergence tr =
  List.filter_map
    (fun (e : Telemetry.event) ->
      match Telemetry.spread_of_snapshot e.snapshot with
      | None -> None
      | Some s -> Some (e.round, s))
    tr.events

let send_series tr =
  List.map (fun (e : Telemetry.event) -> (e.round, e.sent_by)) tr.events

let send_totals tr =
  let n =
    List.fold_left
      (fun acc (e : Telemetry.event) -> max acc (Array.length e.sent_by))
      (match tr.meta with Some m -> m.Telemetry.n | None -> 0)
      tr.events
  in
  let totals = Array.make (max n 0) 0 in
  List.iter
    (fun (e : Telemetry.event) ->
      Array.iteri (fun p c -> totals.(p) <- totals.(p) + c) e.sent_by)
    tr.events;
  totals

(* ------------------------------------------------------------------ *)
(* blame localization *)

type blame = { round : int; kind : string; detail : string; suspects : int list }

(* Parties corrupted at or before [round]: the header's initial set plus
   every per-round corruption up to it. *)
let corrupted_by tr round =
  let initial =
    match tr.meta with
    | Some m -> m.Telemetry.initial_corruptions
    | None -> []
  in
  List.fold_left
    (fun acc (e : Telemetry.event) ->
      if e.round <= round then acc @ e.corruptions else acc)
    initial tr.events
  |> List.sort_uniq compare

let busiest_sender tr round =
  List.find_map
    (fun (e : Telemetry.event) ->
      if e.round <> round || Array.length e.sent_by = 0 then None
      else
        let best = ref 0 in
        Array.iteri
          (fun p c -> if c > e.sent_by.(!best) then best := p)
          e.sent_by;
        Some !best)
    tr.events

let suspects_at tr round =
  match corrupted_by tr round with
  | _ :: _ as parties -> parties
  | [] -> ( match busiest_sender tr round with Some p -> [ p ] | None -> [])

let first_spread_expansion tr =
  let rec go prev = function
    | [] -> None
    | (round, spread) :: tl ->
        if spread > prev +. 1e-9 then Some (round, prev, spread)
        else go spread tl
  in
  match convergence tr with [] -> None | (_, s0) :: tl -> go s0 tl

let blame ?(violations = []) tr =
  match
    List.sort
      (fun (a : Aat_runtime.Watchdog.violation) b -> compare a.round b.round)
      violations
  with
  | v :: _ ->
      Some
        {
          round = v.Aat_runtime.Watchdog.round;
          kind = "watchdog";
          detail =
            Printf.sprintf "%s: %s" v.Aat_runtime.Watchdog.watchdog
              v.Aat_runtime.Watchdog.detail;
          suspects = suspects_at tr v.Aat_runtime.Watchdog.round;
        }
  | [] -> (
      match first_spread_expansion tr with
      | Some (round, prev, spread) ->
          Some
            {
              round;
              kind = "spread-expansion";
              detail =
                Printf.sprintf "honest spread grew %g -> %g" prev spread;
              suspects = suspects_at tr round;
            }
      | None -> None)

let pp_blame ppf b =
  Format.fprintf ppf "%s at round %d (%s); suspects: %s" b.kind b.round
    b.detail
    (match b.suspects with
    | [] -> "none identified"
    | ps -> String.concat ", " (List.map string_of_int ps))
