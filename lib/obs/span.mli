(** Cross-process span tracing in Chrome trace-event form.

    A {!t} collects duration spans ([ph:"B"]/[ph:"E"]), instants and
    process metadata as Chrome trace-event objects — the JSON format
    chrome://tracing and Perfetto open directly. Like the metrics
    registry, {!null} makes every operation a no-op.

    Spans carry an id and an optional parent id in their [args], both
    plain integers, so a parent id can travel over the service wire: the
    coordinator opens a shard span, ships its id in the shard message,
    and the worker's cell spans name it as parent. Workers {!drain}
    their completed events and piggyback them on heartbeat frames; the
    coordinator {!import}s them into its own collector, and the [pid]
    field (set at {!create}) keeps the two processes' ids distinct in
    the viewer.

    Timestamps come from the clock passed to {!create} — the service
    uses {!Aat_service.Clock.now}, i.e. [CLOCK_MONOTONIC], which is
    system-wide on Linux so coordinator and worker timestamps share an
    axis. Span timing is outside the determinism contract (the same
    precedent as [~profile]). *)

type t

val null : t
val is_null : t -> bool

val create : ?pid:int -> clock:(unit -> float) -> unit -> t
(** [clock] returns seconds (monotonic); [pid] defaults to [0] and
    becomes the trace events' [pid] field. *)

type span
(** An open span handle; inert when minted from {!null}. *)

val id : span -> int
(** Unique within the collector's process; [0] for the null span. *)

val enter :
  t ->
  ?tid:int ->
  ?parent:int ->
  ?cat:string ->
  ?args:(string * Aat_telemetry.Jsonx.t) list ->
  string ->
  span
(** Begin a span now. [tid] (default 0) is the trace-viewer row;
    [parent] is another span's {!id} (possibly from another process). *)

val close : t -> span -> unit
(** End the span now. Emission is atomic: the [B] and [E] events are
    appended together at close time, so drained output always balances.
    Closing twice, or closing a null span, is a no-op. *)

val complete :
  t ->
  ?tid:int ->
  ?parent:int ->
  ?cat:string ->
  ?args:(string * Aat_telemetry.Jsonx.t) list ->
  name:string ->
  start:float ->
  stop:float ->
  unit ->
  int
(** A span with explicit clock-seconds endpoints — for sub-intervals
    reconstructed after the fact (e.g. the stage_profile setup/rounds/
    checks breakdown of a cell). Returns the span's {!id} ([0] under
    {!null}) so sub-spans can name it as parent. *)

val instant :
  t ->
  ?tid:int ->
  ?args:(string * Aat_telemetry.Jsonx.t) list ->
  string ->
  unit
(** A point event ([ph:"i"]) — kills, quarantines, requeues. *)

val process_name : t -> string -> unit
(** Emit the [process_name] metadata event for this collector's pid. *)

val drain : t -> Aat_telemetry.Jsonx.t list
(** Completed events accumulated since the last drain, in emission
    order; the collector forgets them. Still-open spans are withheld
    until closed. *)

val import : t -> Aat_telemetry.Jsonx.t list -> unit
(** Append events drained by another collector (arrived over the
    wire), preserving their order. Malformed entries are dropped. *)

val close_all : t -> unit
(** Close every span still open, oldest last — guarantees a balanced
    trace at shutdown. *)

val to_json : t -> Aat_telemetry.Jsonx.t
(** [{"traceEvents":[...]}] with events sorted by timestamp (emission
    order on ties), including events already drained — {!to_json} is a
    view of everything the collector ever saw, so the periodic trace
    file is cumulative. *)
