(** The flight recorder: one self-contained JSONL file per run.

    A record carries everything needed to re-execute a run from nothing —
    the full campaign {!Spec_io.Spec.t} and the task seed it was
    instantiated from — plus everything needed to check the re-execution:
    the derived engine seed, the telemetry {!Trace.t}, and an MD5 digest
    of the structured outcome. {!Replay.run} consumes records; failing
    campaign cells dump as event-less {e repro} records that
    [treeaa replay] accepts directly.

    File shape, one JSON object per line:
    {v
    {"type":"run-record","format_version":"1.0","spec":{..},
     "task_seed":N,"engine_seed":N}
    ...telemetry "start" / "round" / "stop" lines (absent in repros)...
    {"type":"outcome","digest":"..","outcome":{..}}
    v} *)

type t = {
  spec : Aat_campaign.Campaign.Spec.t;
  task_seed : int;  (** the seed [spec] was instantiated with *)
  engine_seed : int;
      (** the engine seed that instantiation derived — recorded so replay
          can detect spec/codebase drift before running anything *)
  trace : Trace.t;  (** empty for repro records *)
  outcome : Aat_telemetry.Jsonx.t option;
      (** the structured outcome, as campaign JSONL renders it *)
  digest : string option;
      (** MD5 of the outcome JSON with the profile block stripped *)
}

val digest_of_outcome : Aat_campaign.Runner.outcome -> string
(** The digest replay compares: MD5 over the rendered outcome minus
    ["profile"] (wall-clock numbers must not break replay). *)

val digest_of_outcome_json : Aat_telemetry.Jsonx.t -> string
(** The same digest computed from an outcome already in its JSON
    rendering — the campaign service checkpoints cells it only ever
    sees as wire JSON. *)

val verify_outcome : t -> (unit, string) result
(** Checkpoint integrity: [Ok ()] iff the record carries an outcome
    {e and} a digest and the outcome still hashes to it. The campaign
    service refuses (quarantines) any resume checkpoint failing this —
    see [docs/ROBUSTNESS.md]. *)

val record :
  ?profile:bool ->
  Aat_campaign.Campaign.Spec.t ->
  task_seed:int ->
  (t * Aat_campaign.Runner.outcome, string) result
(** Validate, instantiate and run one cell of [spec] under a recording
    telemetry sink; returns the record and the live outcome. [profile]
    additionally attaches cost samples (the digest ignores them). *)

val repro_of :
  spec:Aat_campaign.Campaign.Spec.t -> Aat_campaign.Campaign.task_result -> t option
(** The minimal repro record for one campaign cell: spec + seeds +
    outcome digest, no events. [None] if the cell failed to instantiate
    (nothing to replay). *)

val failing_cells : Aat_campaign.Campaign.result -> (int * t) list
(** [(task index, repro record)] for every cell that genuinely failed:
    graded [Violated], engine-errored, or failed to instantiate (the
    latter produce no record). Excused failures are not included. *)

(** {1 Serialization} *)

val to_lines : t -> Aat_telemetry.Jsonx.t list
val to_string : t -> string
val write_file : string -> t -> unit

val of_lines : string list -> (t, string) result
val of_string : string -> (t, string) result
val read_file : string -> (t, string) result

val violations : t -> Aat_runtime.Watchdog.violation list
(** Watchdog violations preserved in the record's outcome JSON — the
    [?violations] argument {!Trace.blame} wants. *)
