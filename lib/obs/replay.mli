(** Deterministic replay of flight-recorder records, with divergence
    detection.

    {!run} re-executes a {!Recorder.t}'s spec exactly as the campaign
    would — instantiation derives everything from the recorded task seed
    — and holds the re-execution against the recording on three
    progressively finer checks: derived engine seed (spec/codebase
    drift), round-by-round telemetry comparison (when the record carries
    events; first divergent round and field), and the profile-stripped
    outcome digest. A clean replay is bit-identical evidence: same
    telemetry stream, same structured outcome. *)

type divergence =
  | Spec_drift of string
      (** instantiation no longer derives the recorded engine seed: the
          draw order changed since the record was made, so comparing any
          further would compare unrelated runs *)
  | Trace_divergence of Trace.divergence
  | Outcome_divergence of { expected : string; actual : string }
      (** outcome digests differ (trace matched, or record had no
          events) *)

type t = {
  outcome : Aat_campaign.Runner.outcome;  (** the replayed run's outcome *)
  digest : string;  (** {!Recorder.digest_of_outcome} of the replay *)
  trace : Trace.t;  (** the replayed run's telemetry *)
  verdict : (unit, divergence) Stdlib.result;  (** [Ok ()] = no divergence *)
}

val run : Recorder.t -> (t, string) Stdlib.result
(** [Error] means the replay could not execute at all (spec no longer
    validates, or instantiation raised); divergences of a run that did
    execute arrive in the result's [verdict]. Replays run with profiling
    off; profile samples in the recording are ignored. *)

val pp_divergence : Format.formatter -> divergence -> unit
