(* The flight recorder: one self-contained JSONL file per run.

   A record carries everything needed to re-execute a run from nothing —
   the full campaign spec and the task seed it was instantiated from —
   plus everything needed to check the re-execution byte for byte: the
   engine seed the instantiation derived, the telemetry trace, and a
   digest of the structured outcome. [Replay.run] consumes records;
   campaign cells that fail can be dumped as event-less "repro" records
   small enough to commit next to a bug report.

   File shape (JSONL):
     {"type":"run-record","format_version":"1.0","spec":{..},
      "task_seed":N,"engine_seed":N}
     ... telemetry "start" / "round" / "stop" lines (absent in repros) ...
     {"type":"outcome","digest":"..","outcome":{..}}        (optional) *)

module Json = Aat_telemetry.Jsonx
module Telemetry = Aat_telemetry.Telemetry
module Campaign = Aat_campaign.Campaign
module Runner = Aat_campaign.Runner
module Verdict = Aat_engine.Verdict

type t = {
  spec : Campaign.Spec.t;
  task_seed : int;
  engine_seed : int;
  trace : Trace.t;
  outcome : Json.t option;
  digest : string option;
}

(* The digest pins the structured outcome, minus the profile block:
   profile numbers are wall-clock measurements, so a record made with
   profiling on must still replay clean with profiling off. *)
let digest_of_outcome_json j =
  let json =
    match j with
    | Json.Obj kvs -> Json.Obj (List.filter (fun (k, _) -> k <> "profile") kvs)
    | j -> j
  in
  Digest.to_hex (Digest.string (Json.to_string json))

let digest_of_outcome o = digest_of_outcome_json (Campaign.json_of_outcome o)

(* Integrity check for records used as checkpoints: a record is only
   trustworthy if it carries an outcome whose bytes still hash to the
   digest written next to them. A truncated file usually fails to parse
   at all; this catches the rest (bit rot, a partial outcome line that
   happens to parse, a digest-less repro passed off as a checkpoint). *)
let verify_outcome t =
  match (t.outcome, t.digest) with
  | None, _ -> Error "record carries no outcome"
  | Some _, None -> Error "record carries no outcome digest"
  | Some o, Some d ->
      let actual = digest_of_outcome_json o in
      if String.equal actual d then Ok ()
      else
        Error
          (Printf.sprintf "outcome digest mismatch (recorded %s, actual %s)" d
             actual)

let record ?(profile = false) spec ~task_seed =
  match Campaign.Spec.validate spec with
  | Error m -> Error m
  | Ok () -> (
      match Campaign.instantiate spec ~task_seed with
      | exception exn -> Error (Printexc.to_string exn)
      | runner, engine_seed ->
          let stats = Telemetry.Stats.create () in
          let outcome =
            runner.Runner.run ~seed:engine_seed
              ~telemetry:(Telemetry.Stats.sink stats) ~profile ()
          in
          let t =
            {
              spec;
              task_seed;
              engine_seed;
              trace = Trace.of_stats stats;
              outcome = Some (Campaign.json_of_outcome outcome);
              digest = Some (digest_of_outcome outcome);
            }
          in
          Ok (t, outcome))

(* ------------------------------------------------------------------ *)
(* repro records for failing campaign cells *)

let repro_of ~spec (tr : Campaign.task_result) =
  match tr.Campaign.result with
  | Error _ -> None (* instantiation failed: no engine seed to replay *)
  | Ok o ->
      Some
        {
          spec;
          task_seed = tr.Campaign.task_seed;
          engine_seed = o.Runner.seed;
          trace = Trace.empty;
          outcome = Some (Campaign.json_of_outcome o);
          digest = Some (digest_of_outcome o);
        }

let failing (tr : Campaign.task_result) =
  match tr.Campaign.result with
  | Error _ -> true
  | Ok o -> (
      match (o.Runner.grade, o.Runner.status) with
      | Verdict.Violated _, _ -> true
      | _, Runner.Errored _ -> true
      | _ -> false)

let failing_cells (result : Campaign.result) =
  Array.to_list result.Campaign.results
  |> List.filter_map (fun tr ->
         if failing tr then
           Option.map
             (fun r -> (tr.Campaign.task, r))
             (repro_of ~spec:result.Campaign.spec tr)
         else None)

(* ------------------------------------------------------------------ *)
(* serialization *)

let header_json t =
  Json.Obj
    [
      ("type", Json.Str "run-record");
      ("format_version", Json.Str Telemetry.format_version_string);
      ("spec", Spec_io.to_json t.spec);
      ("task_seed", Json.Num (float_of_int t.task_seed));
      ("engine_seed", Json.Num (float_of_int t.engine_seed));
    ]

let outcome_json t =
  match (t.outcome, t.digest) with
  | None, _ -> []
  | Some outcome, digest ->
      [
        Json.Obj
          (("type", Json.Str "outcome")
          :: (match digest with
             | Some d -> [ ("digest", Json.Str d) ]
             | None -> [])
          @ [ ("outcome", outcome) ]);
      ]

let to_lines t =
  (header_json t
  :: (match t.trace.Trace.meta with
     | Some m -> [ Telemetry.Jsonl.json_of_meta m ]
     | None -> []))
  @ List.map Telemetry.Jsonl.json_of_event t.trace.Trace.events
  @ (match t.trace.Trace.summary with
    | Some s -> [ Telemetry.Jsonl.json_of_summary s ]
    | None -> [])
  @ outcome_json t

let to_string t =
  String.concat "" (List.map (fun j -> Json.to_string j ^ "\n") (to_lines t))

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let of_lines lines =
  let ( let* ) = Result.bind in
  match lines with
  | [] -> Error "empty record"
  | header :: _ -> (
      let* j =
        Result.map_error (fun m -> "record header: " ^ m)
          (Json.of_string header)
      in
      match Option.bind (Json.member "type" j) Json.to_str with
      | Some "run-record" ->
          let* () = Telemetry.check_format_version j in
          let* spec =
            match Json.member "spec" j with
            | None -> Error "record header: missing \"spec\""
            | Some sj ->
                Result.map_error (fun m -> "record spec: " ^ m)
                  (Spec_io.of_json sj)
          in
          let int name =
            match Option.bind (Json.member name j) Json.to_int with
            | Some i -> Ok i
            | None ->
                Error
                  (Printf.sprintf "record header: missing integer %S" name)
          in
          let* task_seed = int "task_seed" in
          let* engine_seed = int "engine_seed" in
          let* trace = Trace.of_lines lines in
          (* the trailing outcome line, if present *)
          let outcome, digest =
            List.fold_left
              (fun acc line ->
                match Json.of_string line with
                | Error _ -> acc
                | Ok lj -> (
                    match Option.bind (Json.member "type" lj) Json.to_str with
                    | Some "outcome" ->
                        ( Json.member "outcome" lj,
                          Option.bind (Json.member "digest" lj) Json.to_str )
                    | _ -> acc))
              (None, None) lines
          in
          Ok { spec; task_seed; engine_seed; trace; outcome; digest }
      | Some other ->
          Error
            (Printf.sprintf
               "not a run record (first line has type %S; expected \
                \"run-record\")"
               other)
      | None -> Error "record header: missing \"type\"")

let of_string s =
  of_lines
    (String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> ""))

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents -> of_string contents

(* ------------------------------------------------------------------ *)
(* blame support: watchdog violations preserved in the outcome JSON *)

let violations t =
  match t.outcome with
  | None -> []
  | Some o -> (
      match Json.member "watchdog_violations" o with
      | None -> []
      | Some vj ->
          Option.value ~default:[] (Json.to_list vj)
          |> List.filter_map (fun v ->
                 match
                   ( Option.bind (Json.member "watchdog" v) Json.to_str,
                     Option.bind (Json.member "round" v) Json.to_int,
                     Option.bind (Json.member "detail" v) Json.to_str )
                 with
                 | Some watchdog, Some round, Some detail ->
                     Some { Aat_runtime.Watchdog.watchdog; round; detail }
                 | _ -> None))
