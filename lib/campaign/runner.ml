open Aat_engine
open Aat_treeaa
open Aat_realaa
module Report = Aat_runtime.Report

type outcome = {
  runner : string;
  seed : int;
  engine : string;
  termination : bool;
  validity : bool;
  agreement : bool;
  rounds_used : int;
  honest_messages : int;
  adversary_messages : int;
  corrupted : int;
  initially_corrupted : int;
  spread : float option;
}

let ok o = o.termination && o.validity && o.agreement

let verdict_of o =
  {
    Verdict.termination = o.termination;
    validity = o.validity;
    agreement = o.agreement;
  }

type t = {
  name : string;
  run : seed:int -> ?telemetry:Aat_telemetry.Telemetry.Sink.t -> unit -> outcome;
}

let outcome_of_report ~runner ~seed ~(verdict : Verdict.t) ~spread
    (report : (_, _) Report.t) =
  {
    runner;
    seed;
    engine = report.Report.engine;
    termination = verdict.Verdict.termination;
    validity = verdict.Verdict.validity;
    agreement = verdict.Verdict.agreement;
    rounds_used = report.Report.rounds_used;
    honest_messages = report.Report.honest_messages;
    adversary_messages = report.Report.adversary_messages;
    corrupted = List.length report.Report.corrupted;
    initially_corrupted = List.length (Report.initially_corrupted report);
    spread;
  }

let of_protocol ~name ~n ~t ~max_rounds ~protocol ~adversary ?observe ~check
    ?(spread = fun _ -> None) () =
  let run ~seed ?telemetry () =
    let report =
      Sync_engine.run ~n ~t ~seed ?telemetry ?observe
        ~max_rounds:(max 1 max_rounds)
        ~protocol:(protocol ()) ~adversary:(adversary ()) ()
    in
    outcome_of_report ~runner:name ~seed ~verdict:(check report)
      ~spread:(spread report) report
  in
  { name; run }

(* ------------------------------------------------------------------ *)
(* verdict plumbing shared by the concrete runners *)

let tree_check ~tree ~inputs report =
  Tree_verdict.check ~tree
    ~n_honest:(Array.length inputs - List.length report.Report.corrupted)
    ~honest_inputs:(Report.honest_inputs ~inputs report)
    ~honest_outputs:(Report.honest_outputs report)

let real_check ~eps ~inputs ~value report =
  Verdict.real_of_report ~eps ~inputs:(fun i -> inputs.(i)) ~value report

let real_spread ~value report =
  Some (Verdict.spread (List.map value (Report.honest_outputs report)))

(* ------------------------------------------------------------------ *)
(* synchronous runners *)

let tree_aa ~tree ~inputs ~t ~adversary =
  of_protocol ~name:"tree-aa" ~n:(Array.length inputs) ~t
    ~max_rounds:(Tree_aa.rounds ~tree)
    ~protocol:(fun () -> Tree_aa.protocol ~tree ~inputs:(fun i -> inputs.(i)) ~t)
    ~adversary ~observe:Tree_aa.observe
    ~check:(tree_check ~tree ~inputs)
    ()

let nr_baseline ~tree ~inputs ~t ~adversary =
  let iterations = Nr_baseline.iterations_for tree in
  of_protocol ~name:"nr-baseline" ~n:(Array.length inputs) ~t
    ~max_rounds:(3 * iterations)
    ~protocol:(fun () ->
      Nr_baseline.protocol ~tree ~inputs:(fun i -> inputs.(i)) ~t ~iterations)
    ~adversary
    ~check:(tree_check ~tree ~inputs)
    ()

let path_aa ~path ~inputs ~t ~adversary =
  of_protocol ~name:"path-aa" ~n:(Array.length inputs) ~t
    ~max_rounds:(Path_aa.rounds ~path)
    ~protocol:(fun () ->
      Path_aa.protocol ~path ~inputs:(fun i -> inputs.(i)) ~t)
    ~adversary ~observe:Path_aa.observe
    ~check:(tree_check ~tree:path ~inputs)
    ()

let known_path_aa ~tree ~path ~inputs ~t ~adversary =
  of_protocol ~name:"known-path-aa" ~n:(Array.length inputs) ~t
    ~max_rounds:(Known_path_aa.rounds ~path)
    ~protocol:(fun () ->
      Known_path_aa.protocol ~tree ~path ~inputs:(fun i -> inputs.(i)) ~t)
    ~adversary ~observe:Known_path_aa.observe
    ~check:(tree_check ~tree ~inputs)
    ()

let real_aa ?knobs ~eps ~inputs ~t ~iterations ~adversary () =
  let value (r : Bdh.result) = r.Bdh.value in
  of_protocol ~name:"realaa" ~n:(Array.length inputs) ~t
    ~max_rounds:(3 * iterations)
    ~protocol:(fun () ->
      Bdh.protocol ?knobs ~inputs:(fun i -> inputs.(i)) ~t ~iterations ())
    ~adversary ~observe:Bdh.observe
    ~check:(real_check ~eps ~inputs ~value)
    ~spread:(real_spread ~value)
    ()

let iterated_midpoint ~eps ~inputs ~t ~iterations ~adversary =
  let value (r : Iterated_midpoint.result) = r.Iterated_midpoint.value in
  of_protocol ~name:"iterated-midpoint" ~n:(Array.length inputs) ~t
    ~max_rounds:(3 * iterations)
    ~protocol:(fun () ->
      Iterated_midpoint.with_gradecast ~inputs:(fun i -> inputs.(i)) ~t ~iterations)
    ~adversary ~observe:Iterated_midpoint.observe_gradecast
    ~check:(real_check ~eps ~inputs ~value)
    ~spread:(real_spread ~value)
    ()

(* ------------------------------------------------------------------ *)
(* asynchronous runners *)

type scheduler = Fifo | Lifo | Random_order

let to_engine_scheduler = function
  | Fifo -> Aat_async.Async_engine.Fifo
  | Lifo -> Aat_async.Async_engine.Lifo
  | Random_order -> Aat_async.Async_engine.Random_order

let async_tree_aa ?(max_events = 2_000_000) ~tree ~inputs ~t ~scheduler () =
  let n = Array.length inputs in
  let iterations = Nr_baseline.iterations_for tree in
  let run ~seed ?telemetry () =
    let report =
      Aat_async.Async_engine.run ~n ~t ~seed ?telemetry ~max_events
        ~reactor:
          (Aat_async.Async_aa.tree ~tree ~inputs:(fun i -> inputs.(i)) ~t
             ~iterations)
        ~adversary:
          (Aat_async.Async_engine.passive
             ~scheduler:(to_engine_scheduler scheduler)
             "none")
        ()
    in
    let verdict =
      Tree_verdict.check ~tree
        ~n_honest:(n - List.length report.Report.corrupted)
        ~honest_inputs:(Report.honest_inputs ~inputs report)
        ~honest_outputs:
          (List.map
             (fun (r : _ Aat_async.Async_aa.result) -> r.Aat_async.Async_aa.value)
             (Report.honest_outputs report))
    in
    outcome_of_report ~runner:"async-tree-aa" ~seed ~verdict ~spread:None report
  in
  { name = "async-tree-aa"; run }

let round_sim_tree_aa ?(max_events = 2_000_000) ~tree ~inputs ~t ~scheduler () =
  let n = Array.length inputs in
  let run ~seed ?telemetry () =
    let report =
      Aat_async.Async_engine.run ~n ~t ~seed ?telemetry ~max_events
        ~reactor:
          (Aat_async.Round_sim.reactor_of_protocol
             (Tree_aa.protocol ~tree ~inputs:(fun i -> inputs.(i)) ~t))
        ~adversary:
          (Aat_async.Async_engine.passive
             ~scheduler:(to_engine_scheduler scheduler)
             "none")
        ()
    in
    let verdict =
      Tree_verdict.check ~tree
        ~n_honest:(n - List.length report.Report.corrupted)
        ~honest_inputs:(Report.honest_inputs ~inputs report)
        ~honest_outputs:(List.map fst (Report.honest_outputs report))
    in
    outcome_of_report ~runner:"round-sim-tree-aa" ~seed ~verdict ~spread:None
      report
  in
  { name = "round-sim-tree-aa"; run }
