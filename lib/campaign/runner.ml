open Aat_engine
open Aat_treeaa
open Aat_realaa
module Report = Aat_runtime.Report
module Outcome = Aat_runtime.Outcome
module Plan = Aat_faults.Plan
module Inject = Aat_faults.Inject
module Watchdogs = Aat_faults.Watchdog

type status =
  | Finished
  | Timed_out of { undecided : int; reason : string }
  | Errored of { stage : string; exn_text : string }

let status_label = function
  | Finished -> "completed"
  | Timed_out _ -> "liveness-timeout"
  | Errored _ -> "engine-error"

(* Per-stage cost breakdown of one run, measured only when the runner is
   invoked with ~profile:true: [setup_ns] covers fault-filter compilation
   and protocol/adversary/watchdog construction, [rounds_ns] the engine
   execution, [checks_ns] verdict checking and grading. Wall-clock
   measurements — excluded from the determinism contract and from replay
   comparison. *)
type stage_profile = {
  setup_ns : int;
  rounds_ns : int;
  checks_ns : int;
  alloc_bytes : float;
}

type outcome = {
  runner : string;
  seed : int;
  engine : string;
  status : status;
  termination : bool;
  validity : bool;
  agreement : bool;
  grade : Verdict.graded;
  rounds_used : int;
  honest_messages : int;
  adversary_messages : int;
  corrupted : int;
  initially_corrupted : int;
  spread : float option;
  faults : Report.fault_stats;
  violations : Aat_runtime.Watchdog.violation list;
  profile : stage_profile option;
}

let ok o =
  (match o.status with Finished -> true | _ -> false)
  && o.termination && o.validity && o.agreement

let excused o = match o.grade with Verdict.Excused _ -> true | _ -> false

let verdict_of o =
  {
    Verdict.termination = o.termination;
    validity = o.validity;
    agreement = o.agreement;
  }

type t = {
  name : string;
  run :
    seed:int ->
    ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
    ?profile:bool ->
    unit ->
    outcome;
}

let failed_verdict =
  { Verdict.termination = false; validity = false; agreement = false }

let errored ~runner ~seed ~engine ~stage exn =
  {
    runner;
    seed;
    engine;
    status = Errored { stage; exn_text = Printexc.to_string exn };
    termination = false;
    validity = false;
    agreement = false;
    grade = Verdict.Violated failed_verdict;
    rounds_used = 0;
    honest_messages = 0;
    adversary_messages = 0;
    corrupted = 0;
    initially_corrupted = 0;
    spread = None;
    faults = Report.no_faults;
    violations = [];
    profile = None;
  }

let outcome_of_report ~runner ~seed ~status ~excuse ~(verdict : Verdict.t)
    ~spread (report : (_, _) Report.t) =
  {
    runner;
    seed;
    engine = report.Report.engine;
    status;
    termination = verdict.Verdict.termination;
    validity = verdict.Verdict.validity;
    agreement = verdict.Verdict.agreement;
    grade =
      Verdict.grade ~n:report.Report.n ~t:report.Report.t
        ~faulty:(List.length report.Report.corrupted)
        ?excuse verdict;
    rounds_used = report.Report.rounds_used;
    honest_messages = report.Report.honest_messages;
    adversary_messages = report.Report.adversary_messages;
    corrupted = List.length report.Report.corrupted;
    initially_corrupted = List.length (Report.initially_corrupted report);
    spread;
    faults = report.Report.fault_stats;
    violations = report.Report.watchdog_violations;
    profile = None;
  }

(* An excusal reason for verdict failures under a fault plan. Two rules:
   a lossy plan drops letters, which steps outside the model (a Byzantine
   adversary cannot silence an honest channel), so any failure under it is
   reported, not blamed; and a liveness timeout under *any* active plan is
   the plan's doing (e.g. a planned crash starving an async scheduler),
   not the protocol's. A timeout with no faults in play stays Violated. *)
let excuse_of plan (status : status) =
  if Plan.lossy plan then
    Some "fault plan drops letters (outside the reliable-channel model)"
  else
    match status with
    | Timed_out _ when not (Plan.is_empty plan) ->
        Some "liveness timeout under an active fault plan"
    | _ -> None

(* Stage-timing scaffolding for profiled runs: [now false] never reads the
   clock, so the default unprofiled path pays one boolean test per stage. *)
let now enabled = if enabled then Unix.gettimeofday () else 0.

let ns dt = int_of_float (dt *. 1e9)

let stage_profile ~t0 ~t1 ~t2 ~t3 ~a0 =
  {
    setup_ns = ns (t1 -. t0);
    rounds_ns = ns (t2 -. t1);
    checks_ns = ns (t3 -. t2);
    alloc_bytes = Gc.allocated_bytes () -. a0;
  }

(* Grade a structured engine outcome, never letting anything escape: the
   verdict [check] runs on complete *and* partial reports. *)
let conclude ~runner ~seed ~engine ~excuse ~check ~spread
    (engine_outcome : _ Outcome.t) =
  match engine_outcome with
  | Outcome.Completed report ->
      let verdict = check report in
      outcome_of_report ~runner ~seed ~status:Finished ~excuse:(excuse Finished)
        ~verdict ~spread:(spread report) report
  | Outcome.Liveness_timeout { report; undecided; reason } ->
      let verdict = check report in
      let status = Timed_out { undecided = List.length undecided; reason } in
      outcome_of_report ~runner ~seed ~status ~excuse:(excuse status) ~verdict
        ~spread:(spread report) report
  | Outcome.Engine_error { stage; exn_text } ->
      {
        (errored ~runner ~seed ~engine ~stage (Failure exn_text)) with
        status = Errored { stage; exn_text };
      }

let of_protocol ~name ~n ~t ~max_rounds ~protocol ~adversary ?observe
    ?(fault_plan = Plan.empty) ?(watchdogs = fun () -> []) ~check
    ?(spread = fun _ -> None) () =
  let run ~seed ?telemetry ?(profile = false) () =
    let t0 = now profile in
    let a0 = if profile then Gc.allocated_bytes () else 0. in
    match
      let fault_filter =
        if Plan.is_empty fault_plan then None
        else Some (Inject.filter ~engine:`Sync ~seed fault_plan)
      in
      let protocol = protocol () in
      let adversary = adversary () in
      let watchdogs = watchdogs () in
      let t1 = now profile in
      let engine_outcome =
        Sync_engine.run_outcome ~n ~t ~seed ?telemetry ~profile ?observe
          ?fault_filter
          ~crash_faults:(Plan.crashes fault_plan)
          ~watchdogs
          ~max_rounds:(max 1 max_rounds)
          ~protocol ~adversary ()
      in
      (engine_outcome, t1, now profile)
    with
    | exception exn -> errored ~runner:name ~seed ~engine:"sync" ~stage:"engine" exn
    | engine_outcome, t1, t2 -> (
        try
          let o =
            conclude ~runner:name ~seed ~engine:"sync"
              ~excuse:(excuse_of fault_plan) ~check ~spread engine_outcome
          in
          if profile then
            { o with profile = Some (stage_profile ~t0 ~t1 ~t2 ~t3:(now profile) ~a0) }
          else o
        with exn -> errored ~runner:name ~seed ~engine:"sync" ~stage:"check" exn)
  in
  { name; run }

(* ------------------------------------------------------------------ *)
(* verdict plumbing shared by the concrete runners *)

let tree_check ~tree ~inputs report =
  Tree_verdict.check ~tree
    ~n_honest:(Array.length inputs - List.length report.Report.corrupted)
    ~honest_inputs:(Report.honest_inputs ~inputs report)
    ~honest_outputs:(Report.honest_outputs report)

let real_check ~eps ~inputs ~value report =
  Verdict.real_of_report ~eps ~inputs:(fun i -> inputs.(i)) ~value report

let real_spread ~value report =
  Some (Verdict.spread (List.map value (Report.honest_outputs report)))

(* Plan-injected crashes are budget-exempt forced corruptions, so the
   monotonicity watchdog's allowance is [t] plus the planned crash count —
   it must fire only on corruption the adversary was not entitled to. *)
let budget_watchdog ~t ~plan =
  Watchdogs.corruption_budget ~t:(t + Plan.crash_count plan)

let budget_watchdogs ~t ~plan enabled =
  if enabled then fun () -> [ budget_watchdog ~t ~plan ] else fun () -> []

(* ------------------------------------------------------------------ *)
(* unified run configuration *)

type scheduler = Fifo | Lifo | Random_order

module Config = struct
  type t = {
    fault_plan : Plan.t;
    watch : bool;
    scheduler : scheduler;
    max_events : int;
    knobs : Bdh.knobs option;
  }

  let default =
    {
      fault_plan = Plan.empty;
      watch = false;
      scheduler = Fifo;
      max_events = 2_000_000;
      knobs = None;
    }
end

(* Per-constructor resolution: an explicitly passed legacy optional wins
   over the [config] field, so the old labelled call sites keep their
   exact behaviour while new code passes one record. *)
let resolve ?fault_plan ?watch (config : Config.t) =
  ( Option.value fault_plan ~default:config.Config.fault_plan,
    Option.value watch ~default:config.Config.watch )

(* ------------------------------------------------------------------ *)
(* synchronous runners *)

let tree_aa ?(config = Config.default) ?fault_plan ?watch ~tree ~inputs ~t
    ~adversary () =
  let fault_plan, watch = resolve ?fault_plan ?watch config in
  of_protocol ~name:"tree-aa" ~n:(Array.length inputs) ~t
    ~max_rounds:(Tree_aa.rounds ~tree)
    ~protocol:(fun () -> Tree_aa.protocol ~tree ~inputs:(fun i -> inputs.(i)) ~t)
    ~adversary ~observe:Tree_aa.observe ~fault_plan
    ~watchdogs:(budget_watchdogs ~t ~plan:fault_plan watch)
    ~check:(tree_check ~tree ~inputs)
    ()

let nr_baseline ?(config = Config.default) ?fault_plan ?watch ~tree ~inputs ~t
    ~adversary () =
  let fault_plan, watch = resolve ?fault_plan ?watch config in
  let iterations = Nr_baseline.iterations_for tree in
  of_protocol ~name:"nr-baseline" ~n:(Array.length inputs) ~t
    ~max_rounds:(3 * iterations)
    ~protocol:(fun () ->
      Nr_baseline.protocol ~tree ~inputs:(fun i -> inputs.(i)) ~t ~iterations)
    ~adversary ~fault_plan
    ~watchdogs:(budget_watchdogs ~t ~plan:fault_plan watch)
    ~check:(tree_check ~tree ~inputs)
    ()

let path_aa ?(config = Config.default) ?fault_plan ?watch ~path ~inputs ~t
    ~adversary () =
  let fault_plan, watch = resolve ?fault_plan ?watch config in
  of_protocol ~name:"path-aa" ~n:(Array.length inputs) ~t
    ~max_rounds:(Path_aa.rounds ~path)
    ~protocol:(fun () ->
      Path_aa.protocol ~path ~inputs:(fun i -> inputs.(i)) ~t)
    ~adversary ~observe:Path_aa.observe ~fault_plan
    ~watchdogs:(fun () ->
      if watch then
        [
          budget_watchdog ~t ~plan:fault_plan;
          Watchdogs.spread_non_expansion ~observe:Path_aa.observe ();
        ]
      else [])
    ~check:(tree_check ~tree:path ~inputs)
    ()

let known_path_aa ?(config = Config.default) ?fault_plan ?watch ~tree ~path
    ~inputs ~t ~adversary () =
  let fault_plan, watch = resolve ?fault_plan ?watch config in
  of_protocol ~name:"known-path-aa" ~n:(Array.length inputs) ~t
    ~max_rounds:(Known_path_aa.rounds ~path)
    ~protocol:(fun () ->
      Known_path_aa.protocol ~tree ~path ~inputs:(fun i -> inputs.(i)) ~t)
    ~adversary ~observe:Known_path_aa.observe ~fault_plan
    ~watchdogs:(budget_watchdogs ~t ~plan:fault_plan watch)
    ~check:(tree_check ~tree ~inputs)
    ()

let real_aa ?(config = Config.default) ?knobs ?fault_plan ?watch ~eps ~inputs
    ~t ~iterations ~adversary () =
  let fault_plan, watch = resolve ?fault_plan ?watch config in
  let knobs =
    match knobs with Some k -> Some k | None -> config.Config.knobs
  in
  let value (r : Bdh.result) = r.Bdh.value in
  of_protocol ~name:"realaa" ~n:(Array.length inputs) ~t
    ~max_rounds:(3 * iterations)
    ~protocol:(fun () ->
      Bdh.protocol ?knobs ~inputs:(fun i -> inputs.(i)) ~t ~iterations ())
    ~adversary ~observe:Bdh.observe ~fault_plan
    ~watchdogs:(fun () ->
      if watch then
        [
          budget_watchdog ~t ~plan:fault_plan;
          Watchdogs.spread_non_expansion ~observe:Bdh.observe ();
        ]
      else [])
    ~check:(real_check ~eps ~inputs ~value)
    ~spread:(real_spread ~value)
    ()

let iterated_midpoint ?(config = Config.default) ?fault_plan ?watch ~eps
    ~inputs ~t ~iterations ~adversary () =
  let fault_plan, watch = resolve ?fault_plan ?watch config in
  let value (r : Iterated_midpoint.result) = r.Iterated_midpoint.value in
  of_protocol ~name:"iterated-midpoint" ~n:(Array.length inputs) ~t
    ~max_rounds:(3 * iterations)
    ~protocol:(fun () ->
      Iterated_midpoint.with_gradecast ~inputs:(fun i -> inputs.(i)) ~t
        ~iterations)
    ~adversary ~fault_plan
    ~watchdogs:(fun () ->
      if watch then
        [
          budget_watchdog ~t ~plan:fault_plan;
          Watchdogs.spread_non_expansion
            ~observe:Iterated_midpoint.observe_gradecast ();
        ]
      else [])
    ~check:(real_check ~eps ~inputs ~value)
    ~spread:(real_spread ~value)
    ()

(* ------------------------------------------------------------------ *)
(* asynchronous runners *)

let to_engine_scheduler = function
  | Fifo -> Aat_async.Async_engine.Fifo
  | Lifo -> Aat_async.Async_engine.Lifo
  | Random_order -> Aat_async.Async_engine.Random_order

let run_async (type s m o) ~runner ~n ~t ~max_events ~fault_plan ~watchdogs
    ~(reactor : unit -> (s, m, o) Aat_async.Async_engine.reactor)
    ~(adversary : unit -> m Aat_async.Async_engine.adversary) ~check
    ?(spread = fun _ -> None) ~seed ?telemetry ?(profile = false) () =
  let t0 = now profile in
  let a0 = if profile then Gc.allocated_bytes () else 0. in
  match
    let fault_filter =
      if Plan.is_empty fault_plan then None
      else Some (Inject.filter ~engine:`Async ~seed fault_plan)
    in
    let reactor = reactor () in
    let adversary = adversary () in
    let watchdogs = watchdogs () in
    let t1 = now profile in
    let engine_outcome =
      Aat_async.Async_engine.run_outcome ~n ~t ~seed ?telemetry ~profile
        ~max_events ?fault_filter
        ~crash_faults:(Plan.crashes fault_plan)
        ~watchdogs ~reactor ~adversary ()
    in
    (engine_outcome, t1, now profile)
  with
  | exception exn -> errored ~runner ~seed ~engine:"async" ~stage:"engine" exn
  | engine_outcome, t1, t2 -> (
      try
        let o =
          conclude ~runner ~seed ~engine:"async" ~excuse:(excuse_of fault_plan)
            ~check ~spread engine_outcome
        in
        if profile then
          { o with profile = Some (stage_profile ~t0 ~t1 ~t2 ~t3:(now profile) ~a0) }
        else o
      with exn -> errored ~runner ~seed ~engine:"async" ~stage:"check" exn)

(* Maximum pairwise tree distance of a vertex set — the output spread of
   the tree-valued protocols, in the paper's metric. BFS per distinct
   vertex; output sets are at most n vertices on trees the campaigns keep
   small. *)
let tree_distance_spread ~tree vertices =
  let module T = Aat_tree.Labeled_tree in
  let distinct = List.sort_uniq compare vertices in
  match distinct with
  | [] | [ _ ] -> 0.
  | vs ->
      let nv = T.n_vertices tree in
      let eccentricity_within src =
        let dist = Array.make nv (-1) in
        dist.(src) <- 0;
        let q = Queue.create () in
        Queue.add src q;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          List.iter
            (fun v ->
              if dist.(v) < 0 then begin
                dist.(v) <- dist.(u) + 1;
                Queue.add v q
              end)
            (T.neighbors tree u)
        done;
        List.fold_left (fun acc v -> max acc dist.(v)) 0 vs
      in
      float_of_int (List.fold_left (fun acc v -> max acc (eccentricity_within v)) 0 vs)

let async_tree_aa ?(config = Config.default) ?max_events ?fault_plan ?watch
    ?adversary ~tree ~inputs ~t ?scheduler () =
  let fault_plan, watch = resolve ?fault_plan ?watch config in
  let max_events = Option.value max_events ~default:config.Config.max_events in
  let scheduler = Option.value scheduler ~default:config.Config.scheduler in
  let n = Array.length inputs in
  let iterations = Nr_baseline.iterations_for tree in
  let output_values report =
    List.map
      (fun (r : _ Aat_async.Async_aa.result) -> r.Aat_async.Async_aa.value)
      (Report.honest_outputs report)
  in
  let check report =
    Tree_verdict.check ~tree
      ~n_honest:(n - List.length report.Report.corrupted)
      ~honest_inputs:(Report.honest_inputs ~inputs report)
      ~honest_outputs:(output_values report)
  in
  (* With an explicit adversary (the synthesis path) the outcome also
     carries the honest output spread in the tree metric; the passive
     default keeps its historical spread-less outcomes. *)
  let spread =
    match adversary with
    | None -> fun _ -> None
    | Some _ -> fun report -> Some (tree_distance_spread ~tree (output_values report))
  in
  let engine_adversary () =
    match adversary with
    | None ->
        Aat_async.Async_engine.passive
          ~scheduler:(to_engine_scheduler scheduler)
          "none"
    | Some a ->
        Aat_async.Async_engine.with_scheduler
          ~scheduler:(to_engine_scheduler scheduler)
          (a ())
  in
  let run ~seed ?telemetry ?profile () =
    run_async ~runner:"async-tree-aa" ~n ~t ~max_events ~fault_plan
      ~watchdogs:(budget_watchdogs ~t ~plan:fault_plan watch)
      ~reactor:(fun () ->
        Aat_async.Async_aa.tree ~tree ~inputs:(fun i -> inputs.(i)) ~t
          ~iterations)
      ~adversary:engine_adversary ~check ~spread ~seed ?telemetry ?profile ()
  in
  { name = "async-tree-aa"; run }

let round_sim_tree_aa ?(config = Config.default) ?max_events ?fault_plan
    ?watch ~tree ~inputs ~t ?scheduler () =
  let fault_plan, watch = resolve ?fault_plan ?watch config in
  let max_events = Option.value max_events ~default:config.Config.max_events in
  let scheduler = Option.value scheduler ~default:config.Config.scheduler in
  let n = Array.length inputs in
  let check report =
    Tree_verdict.check ~tree
      ~n_honest:(n - List.length report.Report.corrupted)
      ~honest_inputs:(Report.honest_inputs ~inputs report)
      ~honest_outputs:(List.map fst (Report.honest_outputs report))
  in
  let run ~seed ?telemetry ?profile () =
    run_async ~runner:"round-sim-tree-aa" ~n ~t ~max_events ~fault_plan
      ~watchdogs:(budget_watchdogs ~t ~plan:fault_plan watch)
      ~reactor:(fun () ->
        Aat_async.Round_sim.reactor_of_protocol
          (Tree_aa.protocol ~tree ~inputs:(fun i -> inputs.(i)) ~t))
      ~adversary:(fun () ->
        Aat_async.Async_engine.passive
          ~scheduler:(to_engine_scheduler scheduler)
          "none")
      ~check ~seed ?telemetry ?profile ()
  in
  { name = "round-sim-tree-aa"; run }
