module Rng = Aat_util.Rng
module Json = Aat_telemetry.Jsonx
module Tree = Aat_tree.Labeled_tree
module Generate = Aat_tree.Generate
module Metrics = Aat_tree.Metrics
module Paths = Aat_tree.Paths
module Adversary = Aat_engine.Adversary
module Strategies = Aat_adversary.Strategies
module Genome = Aat_adversary.Genome
module Spoiler = Aat_adversary.Spoiler
module Wedge = Aat_adversary.Wedge
module Compose = Aat_adversary.Compose
module Rounds = Aat_realaa.Rounds
module Tree_aa = Aat_treeaa.Tree_aa
module Nr_baseline = Aat_treeaa.Nr_baseline
module Path_aa = Aat_treeaa.Path_aa
module Known_path_aa = Aat_treeaa.Known_path_aa
module Paths_finder = Aat_treeaa.Paths_finder

module Spec = struct
  type size = Exactly of int | Between of int * int

  type tree_family =
    | Path_tree of size
    | Star_tree of size
    | Caterpillar_tree of { spine : size; legs : size }
    | Spider_tree of { legs : size; leg_length : size }
    | Balanced_tree of { arity : size; depth : size }
    | Random_tree of size
    | Any_tree

  type budget = Fixed_t of int | Up_to_third

  type input_dist =
    | Random_vertices
    | Linspace_reals of float
    | Log_uniform_reals of { log10_min : float; log10_max : float }

  type adversary_family =
    | Passive
    | Random_silent
    | Random_crash
    | Tree_spoiler
    | Real_spoiler
    | Gradecast_wedge
    | Any_tree_adversary
    | Any_real_adversary
    | Synth_genome of Aat_adversary.Genome.t
        (** a synthesized strategy ([lib/synth]): fully determined by the
            genome, no per-task adversary draws *)

  type protocol =
    | Tree_aa
    | Nr_baseline
    | Path_aa
    | Known_path_aa
    | Real_aa of { eps : float }
    | Iterated_midpoint of { eps : float }
    | Async_tree_aa
    | Round_sim_tree_aa

  type fault_mode =
    | No_faults
    | Fault_plan of Aat_faults.Plan.t
    | Chaos of { intensity : float }

  type t = {
    name : string;
    protocol : protocol;
    tree : tree_family;
    n : size;
    t_budget : budget;
    inputs : input_dist;
    adversary : adversary_family;
    faults : fault_mode;
    watchdogs : bool;
    repetitions : int;
    base_seed : int;
  }

  let protocol_label = function
    | Tree_aa -> "tree-aa"
    | Nr_baseline -> "nr-baseline"
    | Path_aa -> "path-aa"
    | Known_path_aa -> "known-path-aa"
    | Real_aa _ -> "realaa"
    | Iterated_midpoint _ -> "iterated-midpoint"
    | Async_tree_aa -> "async-tree-aa"
    | Round_sim_tree_aa -> "round-sim-tree-aa"

  let generic_family = function
    | Passive | Random_silent | Random_crash -> true
    | Synth_genome g -> Aat_adversary.Genome.generic g
    | _ -> false

  let real_family = function
    | Real_spoiler | Gradecast_wedge | Any_real_adversary -> true
    | Synth_genome _ -> true (* every attack gene speaks the gradecast wire *)
    | f -> generic_family f

  let vertex_inputs = function Random_vertices -> true | _ -> false

  let sync_protocol = function
    | Async_tree_aa | Round_sim_tree_aa -> false
    | _ -> true

  let validate_faults s =
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    match s.faults with
    | No_faults -> Ok ()
    | Chaos { intensity } ->
        if intensity < 0. || intensity > 1. then
          err "chaos intensity must be in [0, 1] (got %g)" intensity
        else Ok ()
    | Fault_plan p -> (
        match Aat_faults.Plan.validate p with
        | Error m -> err "fault plan: %s" m
        | Ok () ->
            if sync_protocol s.protocol
               && not (Aat_faults.Plan.sync_compatible p)
            then
              err
                "%s runs on the synchronous engine; duplicate/delay faults \
                 are async-only"
                (protocol_label s.protocol)
            else Ok ())

  let validate s =
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let label = protocol_label s.protocol in
    if s.repetitions < 0 then err "repetitions must be non-negative"
    else
      match validate_faults s with
      | Error _ as e -> e
      | Ok () -> (
      match s.protocol with
      | Tree_aa -> (
          if not (vertex_inputs s.inputs) then
            err "%s takes vertex inputs (Random_vertices)" label
          else
            match s.adversary with
            (* genomes compile phase-by-phase across the composition
               boundary, so they face TreeAA even with gradecast genes *)
            | Synth_genome _ -> Ok ()
            | a when real_family a && not (generic_family a) ->
                err
                  "%s speaks the composed TreeAA wire type; real-valued \
                   adversary families do not apply"
                  label
            | _ -> Ok ())
      | Nr_baseline ->
          if not (vertex_inputs s.inputs) then
            err "%s takes vertex inputs (Random_vertices)" label
          else if not (generic_family s.adversary) then
            err "%s supports only the protocol-agnostic adversary families"
              label
          else Ok ()
      | Path_aa ->
          if not (vertex_inputs s.inputs) then
            err "%s takes vertex inputs (Random_vertices)" label
          else if not (match s.tree with Path_tree _ -> true | _ -> false)
          then err "%s requires a Path_tree family" label
          else if not (real_family s.adversary) then
            err "%s cannot face tree-composed adversary families" label
          else Ok ()
      | Known_path_aa ->
          if not (vertex_inputs s.inputs) then
            err "%s takes vertex inputs (Random_vertices)" label
          else if not (real_family s.adversary) then
            err "%s cannot face tree-composed adversary families" label
          else Ok ()
      | Real_aa _ | Iterated_midpoint _ ->
          if vertex_inputs s.inputs then
            err "%s takes real inputs (Linspace_reals or Log_uniform_reals)"
              label
          else if not (real_family s.adversary) then
            err "%s cannot face tree-composed adversary families" label
          else Ok ()
      | Async_tree_aa -> (
          if not (vertex_inputs s.inputs) then
            err "%s takes vertex inputs (Random_vertices)" label
          else
            match s.adversary with
            | Passive -> Ok ()
            | Synth_genome g when Aat_adversary.Genome.generic g -> Ok ()
            | Synth_genome _ ->
                err
                  "%s accepts only protocol-agnostic genomes (the \
                   gradecast attacks do not speak its wire)"
                  label
            | _ -> err "%s currently runs only under the passive adversary" label)
      | Round_sim_tree_aa ->
          if not (vertex_inputs s.inputs) then
            err "%s takes vertex inputs (Random_vertices)" label
          else if s.adversary <> Passive then
            (* the round simulation stalls once a party is corrupted (its
               batches never arrive), so even genomes are rejected here *)
            err "%s currently runs only under the passive adversary" label
          else Ok ())
end

type task_result = {
  task : int;
  task_seed : int;
  result : (Runner.outcome, string) Stdlib.result;
}

type aggregate = {
  tasks : int;
  violations : int;
  errors : int;
  timeouts : int;
  engine_errors : int;
  excused : int;
  total_rounds : int;
  total_honest_messages : int;
  total_adversary_messages : int;
  max_spread : float option;
}

type result = {
  spec : Spec.t;
  results : task_result array;
  aggregate : aggregate;
}

(* ------------------------------------------------------------------ *)
(* seed schedule *)

(* 53 bits so the seed survives a JSON round-trip ([Jsonx] numbers are
   floats) without losing a bit. *)
let seed_of_int64 i64 = Int64.to_int (Int64.shift_right_logical i64 11)

let task_seeds ~base_seed ~count =
  let rng = Rng.create base_seed in
  let seeds = Array.make (max 0 count) 0 in
  (* Explicit loop: the schedule is the SplitMix64 stream in order, and
     [Array.init]'s evaluation order is unspecified. *)
  for i = 0 to count - 1 do
    seeds.(i) <- seed_of_int64 (Rng.int64 rng)
  done;
  seeds

let split_seed ~base ~index =
  let rng = Rng.create base in
  let seed = ref 0 in
  for _ = 0 to max 0 index do
    seed := seed_of_int64 (Rng.int64 rng)
  done;
  !seed

(* ------------------------------------------------------------------ *)
(* per-task instantiation: every draw below comes from the task's own
   SplitMix64 stream, in a fixed order (tree, n, t, inputs, adversary,
   scheduler, engine seed), so a task is a pure function of its seed. *)

let draw_size rng = function
  | Spec.Exactly k -> k
  | Spec.Between (lo, hi) ->
      if hi <= lo then lo else lo + Rng.int rng (hi - lo + 1)

let draw_tree rng family =
  let size s = draw_size rng s in
  match family with
  | Spec.Path_tree s -> Generate.path (max 1 (size s))
  | Spec.Star_tree s -> Generate.star (max 3 (size s))
  | Spec.Caterpillar_tree { spine; legs } ->
      Generate.caterpillar ~spine:(max 1 (size spine)) ~legs:(max 0 (size legs))
  | Spec.Spider_tree { legs; leg_length } ->
      Generate.spider ~legs:(max 1 (size legs))
        ~leg_length:(max 1 (size leg_length))
  | Spec.Balanced_tree { arity; depth } ->
      Generate.balanced ~arity:(max 2 (size arity)) ~depth:(max 1 (size depth))
  | Spec.Random_tree s -> Generate.random rng (max 2 (size s))
  | Spec.Any_tree -> (
      (* soak's historical mix, kept verbatim so campaigns reproduce it *)
      match Rng.int rng 6 with
      | 0 -> Generate.path (2 + Rng.int rng 300)
      | 1 -> Generate.star (3 + Rng.int rng 200)
      | 2 -> Generate.caterpillar ~spine:(1 + Rng.int rng 40) ~legs:(Rng.int rng 4)
      | 3 ->
          Generate.spider ~legs:(1 + Rng.int rng 8)
            ~leg_length:(1 + Rng.int rng 20)
      | 4 -> Generate.balanced ~arity:(2 + Rng.int rng 2) ~depth:(1 + Rng.int rng 5)
      | _ -> Generate.random rng (2 + Rng.int rng 250))

let draw_t rng ~n = function
  | Spec.Fixed_t t -> max 0 t
  | Spec.Up_to_third -> Rng.int rng ((max 1 n - 1) / 3 + 1)

let draw_vertex_inputs rng ~n ~nv =
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- Rng.int rng (max 1 nv)
  done;
  a

(* Returns the inputs and the range [D] they span (the agreement
   iterations budget is a function of the range). *)
let draw_real_inputs rng ~n = function
  | Spec.Linspace_reals d ->
      let d = if d <= 0. then 1. else d in
      let step = d /. float_of_int (max 1 (n - 1)) in
      (Array.init n (fun i -> step *. float_of_int i), d)
  | Spec.Log_uniform_reals { log10_min; log10_max } ->
      let lo = Float.min log10_min log10_max in
      let hi = Float.max log10_min log10_max in
      let exp = if hi > lo then lo +. Rng.float rng (hi -. lo) else lo in
      let d = Float.pow 10. exp in
      let a = Array.make n 0. in
      for i = 0 to n - 1 do
        a.(i) <- Rng.float rng d
      done;
      (a, d)
  | Spec.Random_vertices ->
      invalid_arg "Campaign: Random_vertices inputs for a real-valued protocol"

let incompatible ~protocol ~family =
  invalid_arg
    (Printf.sprintf "Campaign: adversary family %s incompatible with %s"
       family protocol)

(* The protocol-agnostic strategies are polymorphic in the wire type, so
   one constructor serves every runner. Crash parameters are drawn here,
   at instantiation — only stateful construction is deferred to the
   thunk. *)
let generic_adversary : type m.
    Rng.t ->
    t:int ->
    n:int ->
    rounds_hint:int ->
    Spec.adversary_family ->
    (unit -> m Adversary.t) option =
 fun rng ~t ~n ~rounds_hint family ->
  match family with
  | Spec.Passive -> Some (fun () -> Adversary.passive "none")
  | Spec.Random_silent -> Some (fun () -> Strategies.random_silent ~count:t)
  | Spec.Random_crash ->
      let at_round = 1 + Rng.int rng (max 1 rounds_hint) in
      let bound = max 1 (min n (t + 3)) in
      let victims = Rng.sample_without_replacement rng (min t bound) bound in
      Some (fun () -> Strategies.crash ~at_round ~victims)
  | Spec.Synth_genome g when Genome.generic g ->
      Some
        (fun () ->
          match Genome.compile_generic ~n g with
          | Some a -> a
          | None -> assert false)
  | _ -> None

(* TreeAA's two phases are RealAA instances with these schedule lengths;
   both the hand-written spoiler and genome compilation phase their attack
   across the same boundary. *)
let tree_phase_shape ~tree =
  let barrier = max 1 (Paths_finder.rounds ~tree) in
  let nv = Tree.n_vertices tree in
  let first_iterations =
    Rounds.bdh_iterations ~range:(float_of_int ((2 * nv) - 2)) ~eps:1.
  in
  let second_iterations =
    Rounds.bdh_iterations
      ~range:(float_of_int (max 2 (Metrics.diameter tree)))
      ~eps:1.
  in
  (barrier, first_iterations, second_iterations)

let tree_spoiler_thunk ~tree ~t =
  let barrier, first_iterations, second_iterations = tree_phase_shape ~tree in
  fun () ->
    Compose.phased ~name:"spoiler" ~barrier
      ~first:(Spoiler.realaa_spoiler ~t ~iterations:first_iterations)
      ~second:(Spoiler.realaa_spoiler ~t ~iterations:second_iterations)

let tree_genome_thunk ~tree ~t ~n g =
  let barrier, first_iterations, second_iterations = tree_phase_shape ~tree in
  fun () ->
    Genome.compile_tree ~n ~t ~barrier ~first_iterations ~second_iterations g

let tree_aa_adversary rng ~tree ~t ~n ~rounds_hint family =
  let generic f =
    match generic_adversary rng ~t ~n ~rounds_hint f with
    | Some a -> a
    | None -> assert false
  in
  match family with
  | (Spec.Passive | Spec.Random_silent | Spec.Random_crash) as f -> generic f
  | Spec.Tree_spoiler -> tree_spoiler_thunk ~tree ~t
  | Spec.Synth_genome g -> tree_genome_thunk ~tree ~t ~n g
  | Spec.Any_tree_adversary -> (
      match Rng.int rng 4 with
      | 0 -> generic Spec.Passive
      | 1 -> generic Spec.Random_silent
      | 2 -> generic Spec.Random_crash
      | _ -> tree_spoiler_thunk ~tree ~t)
  | Spec.Real_spoiler | Spec.Gradecast_wedge | Spec.Any_real_adversary ->
      incompatible ~protocol:"tree-aa" ~family:"real-valued"

let real_adversary rng ~t ~n ~rounds_hint ~iterations family =
  let generic f =
    match generic_adversary rng ~t ~n ~rounds_hint f with
    | Some a -> a
    | None -> assert false
  in
  match family with
  | (Spec.Passive | Spec.Random_silent | Spec.Random_crash) as f -> generic f
  | Spec.Real_spoiler -> fun () -> Spoiler.realaa_spoiler ~t ~iterations
  | Spec.Gradecast_wedge -> fun () -> Wedge.gradecast_wedge ()
  | Spec.Synth_genome g -> fun () -> Genome.compile_real ~n ~t ~iterations g
  | Spec.Any_real_adversary -> (
      match Rng.int rng 3 with
      | 0 -> generic Spec.Passive
      | 1 -> generic Spec.Random_silent
      | _ -> fun () -> Spoiler.realaa_spoiler ~t ~iterations)
  | Spec.Tree_spoiler | Spec.Any_tree_adversary ->
      incompatible ~protocol:"a real-valued protocol" ~family:"tree-composed"

let draw_scheduler rng =
  match Rng.int rng 3 with
  | 0 -> Runner.Fifo
  | 1 -> Runner.Lifo
  | _ -> Runner.Random_order

let draw_engine_seed rng = Rng.int rng 0x3FFF_FFFF

(* Chaos plans are drawn from the task's own stream just before the engine
   seed, so [No_faults] specs make exactly the draws they always did (the
   benign streams — and the golden JSONL — are unchanged). *)
let draw_fault_plan rng (spec : Spec.t) ~n ~rounds_hint =
  match spec.Spec.faults with
  | Spec.No_faults -> Aat_faults.Plan.empty
  | Spec.Fault_plan p -> p
  | Spec.Chaos { intensity } ->
      Aat_faults.Plan.random rng ~n ~rounds_hint
        ~sync_only:(Spec.sync_protocol spec.Spec.protocol)
        ~intensity ()

(* Campaign cells construct every run through the unified
   [Runner.Config]: one record built from the drawn fault plan, the
   spec's watchdog flag and (for the async protocols) the drawn
   scheduler. *)
let run_config ?scheduler ~fault_plan ~watch () =
  let base = { Runner.Config.default with Runner.Config.fault_plan; watch } in
  match scheduler with
  | None -> base
  | Some s -> { base with Runner.Config.scheduler = s }

let instantiate (spec : Spec.t) ~task_seed =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Campaign.instantiate: " ^ msg));
  let rng = Rng.create task_seed in
  let vertex_setup () =
    let tree = draw_tree rng spec.tree in
    let n = max 1 (draw_size rng spec.n) in
    let t = draw_t rng ~n spec.t_budget in
    let inputs = draw_vertex_inputs rng ~n ~nv:(Tree.n_vertices tree) in
    (tree, n, t, inputs)
  in
  let watch = spec.watchdogs in
  match spec.protocol with
  | Spec.Tree_aa ->
      let tree, n, t, inputs = vertex_setup () in
      let rounds_hint = max 1 (Tree_aa.rounds ~tree) in
      let adversary = tree_aa_adversary rng ~tree ~t ~n ~rounds_hint spec.adversary in
      let fault_plan = draw_fault_plan rng spec ~n ~rounds_hint in
      ( Runner.tree_aa
          ~config:(run_config ~fault_plan ~watch ())
          ~tree ~inputs ~t ~adversary (),
        draw_engine_seed rng )
  | Spec.Nr_baseline ->
      let tree, n, t, inputs = vertex_setup () in
      let rounds_hint = max 1 (3 * Nr_baseline.iterations_for tree) in
      let adversary =
        match generic_adversary rng ~t ~n ~rounds_hint spec.adversary with
        | Some a -> a
        | None ->
            incompatible ~protocol:"nr-baseline" ~family:"protocol-specific"
      in
      let fault_plan = draw_fault_plan rng spec ~n ~rounds_hint in
      ( Runner.nr_baseline
          ~config:(run_config ~fault_plan ~watch ())
          ~tree ~inputs ~t ~adversary (),
        draw_engine_seed rng )
  | Spec.Path_aa ->
      let path, n, t, inputs = vertex_setup () in
      let rounds_hint = max 1 (Path_aa.rounds ~path) in
      let iterations =
        Rounds.bdh_iterations
          ~range:(float_of_int (max 1 (Tree.n_vertices path - 1)))
          ~eps:1.
      in
      let adversary =
        real_adversary rng ~t ~n ~rounds_hint ~iterations spec.adversary
      in
      let fault_plan = draw_fault_plan rng spec ~n ~rounds_hint in
      ( Runner.path_aa
          ~config:(run_config ~fault_plan ~watch ())
          ~path ~inputs ~t ~adversary (),
        draw_engine_seed rng )
  | Spec.Known_path_aa ->
      let tree, n, t, inputs = vertex_setup () in
      let path = Paths.orient tree (Metrics.longest_path tree) in
      let rounds_hint = max 1 (Known_path_aa.rounds ~path) in
      let iterations =
        Rounds.bdh_iterations
          ~range:(float_of_int (max 2 (Metrics.diameter tree)))
          ~eps:1.
      in
      let adversary =
        real_adversary rng ~t ~n ~rounds_hint ~iterations spec.adversary
      in
      let fault_plan = draw_fault_plan rng spec ~n ~rounds_hint in
      ( Runner.known_path_aa
          ~config:(run_config ~fault_plan ~watch ())
          ~tree ~path ~inputs ~t ~adversary (),
        draw_engine_seed rng )
  | Spec.Real_aa { eps } ->
      let n = max 1 (draw_size rng spec.n) in
      let t = draw_t rng ~n spec.t_budget in
      let inputs, range = draw_real_inputs rng ~n spec.inputs in
      let iterations = max 1 (Rounds.bdh_iterations ~range ~eps) in
      let adversary =
        real_adversary rng ~t ~n ~rounds_hint:(3 * iterations) ~iterations
          spec.adversary
      in
      let fault_plan =
        draw_fault_plan rng spec ~n ~rounds_hint:(3 * iterations)
      in
      ( Runner.real_aa
          ~config:(run_config ~fault_plan ~watch ())
          ~eps ~inputs ~t ~iterations ~adversary (),
        draw_engine_seed rng )
  | Spec.Iterated_midpoint { eps } ->
      let n = max 1 (draw_size rng spec.n) in
      let t = draw_t rng ~n spec.t_budget in
      let inputs, range = draw_real_inputs rng ~n spec.inputs in
      let iterations = max 1 (Rounds.halving_iterations ~range ~eps) in
      let adversary =
        real_adversary rng ~t ~n ~rounds_hint:(3 * iterations) ~iterations
          spec.adversary
      in
      let fault_plan =
        draw_fault_plan rng spec ~n ~rounds_hint:(3 * iterations)
      in
      ( Runner.iterated_midpoint
          ~config:(run_config ~fault_plan ~watch ())
          ~eps ~inputs ~t ~iterations ~adversary (),
        draw_engine_seed rng )
  | Spec.Async_tree_aa ->
      let tree, n, t, inputs = vertex_setup () in
      (* A genome fixes the scheduler (its async gene) and compiles to a
         wire-polymorphic adversary; the passive path draws the scheduler
         exactly as before, keeping its task streams unchanged. *)
      let scheduler, adversary =
        match spec.Spec.adversary with
        | Spec.Synth_genome g ->
            let scheduler =
              match g.Genome.scheduler with
              | Genome.Fifo -> Runner.Fifo
              | Genome.Lifo -> Runner.Lifo
              | Genome.Random_order -> Runner.Random_order
            in
            ( scheduler,
              Some
                (fun () ->
                  match Genome.compile_generic ~n g with
                  | Some a -> a
                  | None -> assert false) )
        | _ -> (draw_scheduler rng, None)
      in
      (* round hints are delivery events under the async engine: roughly
         n^2 letters cross the network per protocol round *)
      let rounds_hint =
        max 1 (n * n * 3 * Nr_baseline.iterations_for tree)
      in
      let fault_plan = draw_fault_plan rng spec ~n ~rounds_hint in
      ( Runner.async_tree_aa
          ~config:(run_config ~scheduler ~fault_plan ~watch ())
          ~tree ~inputs ~t ?adversary (),
        draw_engine_seed rng )
  | Spec.Round_sim_tree_aa ->
      let tree, n, t, inputs = vertex_setup () in
      let scheduler = draw_scheduler rng in
      let rounds_hint = max 1 (n * n * Tree_aa.rounds ~tree) in
      let fault_plan = draw_fault_plan rng spec ~n ~rounds_hint in
      ( Runner.round_sim_tree_aa
          ~config:(run_config ~scheduler ~fault_plan ~watch ())
          ~tree ~inputs ~t (),
        draw_engine_seed rng )

(* ------------------------------------------------------------------ *)
(* execution + aggregation *)

let empty_aggregate =
  {
    tasks = 0;
    violations = 0;
    errors = 0;
    timeouts = 0;
    engine_errors = 0;
    excused = 0;
    total_rounds = 0;
    total_honest_messages = 0;
    total_adversary_messages = 0;
    max_spread = None;
  }

let merge_spread a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Float.max a b)

let fold_task agg tr =
  match tr.result with
  | Ok o ->
      let b p = if p then 1 else 0 in
      {
        tasks = agg.tasks + 1;
        (* a genuine in-model failure; Excused grades count separately *)
        violations =
          (agg.violations
          + b (match o.Runner.grade with Aat_engine.Verdict.Violated _ -> true | _ -> false));
        errors = agg.errors;
        timeouts =
          (agg.timeouts
          + b (match o.Runner.status with Runner.Timed_out _ -> true | _ -> false));
        engine_errors =
          (agg.engine_errors
          + b (match o.Runner.status with Runner.Errored _ -> true | _ -> false));
        excused = agg.excused + b (Runner.excused o);
        total_rounds = agg.total_rounds + o.Runner.rounds_used;
        total_honest_messages =
          agg.total_honest_messages + o.Runner.honest_messages;
        total_adversary_messages =
          agg.total_adversary_messages + o.Runner.adversary_messages;
        max_spread = merge_spread agg.max_spread o.Runner.spread;
      }
  | Error _ ->
      {
        agg with
        tasks = agg.tasks + 1;
        violations = agg.violations + 1;
        errors = agg.errors + 1;
      }

(* The service-side twin of [fold_task]: fold an outcome already in its
   JSON rendering (as shipped over the wire or resumed from a record
   file) into the aggregate. Field-for-field equivalent to [fold_task]
   composed with [json_of_outcome]: Violated is exactly "the verdict
   triple fails and the grade is not excused" (see Verdict.grade), the
   timeout/engine-error statuses come from the "status" field, and the
   totals read the always-present headline numbers. *)
let fold_outcome_json agg payload =
  match payload with
  | Error _ ->
      {
        agg with
        tasks = agg.tasks + 1;
        violations = agg.violations + 1;
        errors = agg.errors + 1;
      }
  | Ok j ->
      let b p = if p then 1 else 0 in
      let bool name =
        match Json.member name j with Some (Json.Bool v) -> v | _ -> false
      in
      let int name =
        match Option.bind (Json.member name j) Json.to_int with
        | Some v -> v
        | None -> 0
      in
      let status = Option.bind (Json.member "status" j) Json.to_str in
      let excused =
        Option.bind (Json.member "grade" j) Json.to_str = Some "excused"
      in
      let all_ok = bool "termination" && bool "validity" && bool "agreement" in
      {
        tasks = agg.tasks + 1;
        violations = agg.violations + b ((not all_ok) && not excused);
        errors = agg.errors;
        timeouts = agg.timeouts + b (status = Some "liveness-timeout");
        engine_errors = agg.engine_errors + b (status = Some "engine-error");
        excused = agg.excused + b excused;
        total_rounds = agg.total_rounds + int "rounds_used";
        total_honest_messages =
          agg.total_honest_messages + int "honest_messages";
        total_adversary_messages =
          agg.total_adversary_messages + int "adversary_messages";
        max_spread =
          merge_spread agg.max_spread
            (match Json.member "spread" j with
            | Some (Json.Num s) -> Some s
            | _ -> None);
      }

let run ?(workers = 1) ?telemetry ?(profile = false) (spec : Spec.t) =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Campaign.run: " ^ msg));
  let seeds = task_seeds ~base_seed:spec.base_seed ~count:spec.repetitions in
  let results =
    Pool.map ~workers spec.repetitions (fun i ->
        let task_seed = seeds.(i) in
        let result =
          try
            let runner, engine_seed = instantiate spec ~task_seed in
            let sink =
              match telemetry with None -> None | Some f -> f ~task:i
            in
            Ok (runner.Runner.run ~seed:engine_seed ?telemetry:sink ~profile ())
          with exn -> Error (Printexc.to_string exn)
        in
        { task = i; task_seed; result })
  in
  (* Fold in task order: the aggregate never sees completion order. *)
  let aggregate = Array.fold_left fold_task empty_aggregate results in
  { spec; results; aggregate }

(* ------------------------------------------------------------------ *)
(* JSONL result stream *)

let num i = Json.Num (float_of_int i)

(* Fault-layer fields are emitted only when non-default, so benign
   campaign streams — and the golden JSONL locked down in the tests —
   stay byte-identical to the pre-fault format. *)
let status_fields (o : Runner.outcome) =
  match o.Runner.status with
  | Runner.Finished -> []
  | Runner.Timed_out { undecided; reason } ->
      [
        ("status", Json.Str (Runner.status_label o.Runner.status));
        ("undecided", num undecided);
        ("reason", Json.Str reason);
      ]
  | Runner.Errored { stage; exn_text } ->
      [
        ("status", Json.Str (Runner.status_label o.Runner.status));
        ("stage", Json.Str stage);
        ("error", Json.Str exn_text);
      ]

let grade_fields (o : Runner.outcome) =
  match o.Runner.grade with
  | Aat_engine.Verdict.Passed | Aat_engine.Verdict.Violated _ -> []
  | Aat_engine.Verdict.Excused { reason; _ } ->
      [ ("grade", Json.Str "excused"); ("excuse", Json.Str reason) ]

let fault_fields (o : Runner.outcome) =
  let f = o.Runner.faults in
  if not (Aat_runtime.Report.faults_active f) then []
  else
    [
      ( "faults",
        Json.Obj
          [
            ("dropped", num f.Aat_runtime.Report.dropped);
            ("duplicated", num f.Aat_runtime.Report.duplicated);
            ("delayed", num f.Aat_runtime.Report.delayed);
            ("crashed", num f.Aat_runtime.Report.crashed);
          ] );
    ]

let violation_fields (o : Runner.outcome) =
  match o.Runner.violations with
  | [] -> []
  | vs ->
      [
        ( "watchdog_violations",
          Json.Arr
            (List.map
               (fun (v : Aat_runtime.Watchdog.violation) ->
                 Json.Obj
                   [
                     ("watchdog", Json.Str v.Aat_runtime.Watchdog.watchdog);
                     ("round", num v.Aat_runtime.Watchdog.round);
                     ("detail", Json.Str v.Aat_runtime.Watchdog.detail);
                   ])
               vs) );
      ]

(* Profile numbers are wall-clock measurements: present only on --profile
   runs (so benign streams and goldens are unchanged) and deliberately
   outside the bit-identical-for-any-workers determinism contract. *)
let profile_fields (o : Runner.outcome) =
  match o.Runner.profile with
  | None -> []
  | Some p ->
      [
        ( "profile",
          Json.Obj
            [
              ("setup_ns", num p.Runner.setup_ns);
              ("rounds_ns", num p.Runner.rounds_ns);
              ("checks_ns", num p.Runner.checks_ns);
              ("alloc_bytes", Json.Num p.Runner.alloc_bytes);
            ] );
      ]

let json_of_outcome (o : Runner.outcome) =
  Json.Obj
    ([
       ("runner", Json.Str o.Runner.runner);
       ("seed", num o.Runner.seed);
       ("engine", Json.Str o.Runner.engine);
       ("ok", Json.Bool (Runner.ok o));
       ("termination", Json.Bool o.Runner.termination);
       ("validity", Json.Bool o.Runner.validity);
       ("agreement", Json.Bool o.Runner.agreement);
       ("rounds_used", num o.Runner.rounds_used);
       ("honest_messages", num o.Runner.honest_messages);
       ("adversary_messages", num o.Runner.adversary_messages);
       ("corrupted", num o.Runner.corrupted);
       ("initially_corrupted", num o.Runner.initially_corrupted);
       ( "spread",
         match o.Runner.spread with None -> Json.Null | Some s -> Json.Num s );
     ]
    @ status_fields o @ grade_fields o @ fault_fields o @ violation_fields o
    @ profile_fields o)

let json_of_task_result tr =
  Json.Obj
    ([
       ("type", Json.Str "task");
       ("task", num tr.task);
       ("task_seed", num tr.task_seed);
     ]
    @
    match tr.result with
    | Ok o -> [ ("outcome", json_of_outcome o) ]
    | Error e -> [ ("error", Json.Str e) ])

(* Re-render a task line from a payload already in JSON form — the
   service wire path: workers ship rendered outcome JSON, the
   coordinator parses and re-renders the line in task order.
   Byte-identical to [json_of_task_result] on the same outcome because
   [Json] parse/render round-trips exactly. *)
let json_of_task_line ~task ~task_seed payload =
  Json.Obj
    ([
       ("type", Json.Str "task");
       ("task", num task);
       ("task_seed", num task_seed);
     ]
    @
    match payload with
    | Ok o -> [ ("outcome", o) ]
    | Error e -> [ ("error", Json.Str e) ])

(* The header deliberately omits the worker count: the stream must be
   byte-identical however the campaign was scheduled. It carries the
   telemetry [format_version] gate, like every recorder/trace header. *)
let json_header (spec : Spec.t) =
  Json.Obj
    ([
       ("type", Json.Str "campaign-start");
       ( "format_version",
         Json.Str Aat_telemetry.Telemetry.format_version_string );
       ("name", Json.Str spec.name);
       ("protocol", Json.Str (Spec.protocol_label spec.protocol));
       ("repetitions", num spec.repetitions);
       ("base_seed", num spec.base_seed);
     ]
    @ (match spec.faults with
      | Spec.No_faults -> []
      | Spec.Fault_plan p ->
          [ ("fault_plan", Json.Str (Aat_faults.Plan_io.to_string p)) ]
      | Spec.Chaos { intensity } -> [ ("chaos_intensity", Json.Num intensity) ])
    @ if spec.watchdogs then [ ("watchdogs", Json.Bool true) ] else [])

let json_footer agg =
  let opt name v = if v = 0 then [] else [ (name, num v) ] in
  Json.Obj
    ([
       ("type", Json.Str "campaign-stop");
       ("tasks", num agg.tasks);
       ("violations", num agg.violations);
       ("errors", num agg.errors);
     ]
    @ opt "timeouts" agg.timeouts
    @ opt "engine_errors" agg.engine_errors
    @ opt "excused" agg.excused
    @ [
        ("total_rounds", num agg.total_rounds);
        ("total_honest_messages", num agg.total_honest_messages);
        ("total_adversary_messages", num agg.total_adversary_messages);
        ( "max_spread",
          match agg.max_spread with None -> Json.Null | Some s -> Json.Num s );
      ])

let jsonl_lines r =
  (json_header r.spec
  :: List.map json_of_task_result (Array.to_list r.results))
  @ [ json_footer r.aggregate ]

let write_jsonl oc r =
  List.iter
    (fun line ->
      output_string oc (Json.to_string line);
      output_char oc '\n')
    (jsonl_lines r);
  flush oc

let jsonl_string r =
  String.concat ""
    (List.map (fun line -> Json.to_string line ^ "\n") (jsonl_lines r))
