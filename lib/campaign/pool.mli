(** Deterministic fan-out of independent tasks over an OCaml 5 [Domain]
    worker pool.

    The pool exists for one job: running thousands of independent
    simulations (campaign tasks, bench table cells) on all available cores
    {e without changing any result}. The contract making that possible:

    - tasks are indexed [0 .. n-1] and must depend only on their index
      (campaign tasks pre-derive a per-task seed from the index, see
      {!Campaign.task_seeds});
    - results are written into a slot array at the task's index, so
      completion order — the only thing the worker count affects — is
      invisible to the caller;
    - consumers fold the returned array left to right, i.e. in task order.

    Under this contract [map ~workers:k] is bit-identical for every [k],
    including [k = 1] (which runs inline, spawning nothing).

    Built on stdlib [Domain] + [Mutex] only. Workers draw task indices from
    a shared cursor under a mutex — dynamic load balancing, so a few
    expensive tasks (big random trees) don't serialize behind a static
    partition. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()] — the whole machine. *)

val map : ?workers:int -> int -> (int -> 'a) -> 'a array
(** [map ~workers n f] is [[| f 0; ...; f (n - 1) |]], computed by
    [min workers n] domains (default 1 = fully sequential; values [< 1]
    are clamped to 1). If some [f i] raises, every task still runs, and the
    exception of the {e lowest-indexed} failing task is re-raised after all
    workers have joined — deterministic regardless of worker count. *)
