let default_workers () = Domain.recommended_domain_count ()

let map ?(workers = 1) n f =
  let workers = max 1 (min workers n) in
  if n = 0 then [||]
  else if workers = 1 then Array.init n f
  else begin
    (* Slot array indexed by task: completion order never shows. *)
    let results = Array.make n None in
    let cursor = ref 0 in
    let m = Mutex.create () in
    let take () =
      Mutex.lock m;
      let i = !cursor in
      if i < n then incr cursor;
      Mutex.unlock m;
      if i < n then Some i else None
    in
    let worker () =
      let rec loop () =
        match take () with
        | None -> ()
        | Some i ->
            (* Never let an exception kill a worker mid-pool — park it in
               the slot and re-raise deterministically after the join. *)
            let r = try Ok (f i) with exn -> Error exn in
            results.(i) <- Some r;
            loop ()
      in
      loop ()
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (* Explicit index-order scan: the lowest-indexed failure wins, whatever
       the completion order was. *)
    for i = 0 to n - 1 do
      match results.(i) with
      | Some (Error exn) -> raise exn
      | Some (Ok _) -> ()
      | None -> assert false (* every index was taken exactly once *)
    done;
    Array.map
      (function Some (Ok v) -> v | _ -> assert false)
      results
  end
