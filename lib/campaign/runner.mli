(** The unified protocol Runner — one erased entry point per protocol.

    Every protocol family in the repository already exposes a concrete
    [run] with the same shape ([~seed ?telemetry ~adversary] + its own
    config, returning the unified [Report.t]); this module erases the
    protocol-specific output and message types behind one {!t}, so batch
    drivers (the campaign subsystem, bench tables, soak, the CLI) can treat
    "run a simulation and check its verdict" as a value instead of
    hand-rolling per-protocol dispatch.

    A {!t} closes over everything but the seed; calling [run ~seed]
    executes one full simulation and returns a protocol-agnostic
    {!outcome}: the checked Definition-1/2 verdict plus the report's
    headline numbers. Adversaries are taken as {e thunks}: the strategies
    in [lib/adversary] carry per-execution mutable state (spoiler plans,
    crash bookkeeping), so a fresh adversary must be built for every run —
    and runners must stay safe to invoke from several {!Pool} workers at
    once. *)

open Aat_tree
open Aat_engine
open Aat_gradecast

type outcome = {
  runner : string;  (** the runner's name, e.g. ["tree-aa"] *)
  seed : int;  (** the engine/adversary seed this run used *)
  engine : string;  (** ["sync"] or ["async"] *)
  termination : bool;
  validity : bool;
  agreement : bool;  (** the three checked AA properties *)
  rounds_used : int;  (** rounds (sync) / delivery events (async) *)
  honest_messages : int;
  adversary_messages : int;
  corrupted : int;  (** final corruption count *)
  initially_corrupted : int;
  spread : float option;
      (** final honest-output spread, for real-valued protocols *)
}

val ok : outcome -> bool
(** All three properties hold. *)

val verdict_of : outcome -> Verdict.t

type t = {
  name : string;
  run : seed:int -> ?telemetry:Aat_telemetry.Telemetry.Sink.t -> unit -> outcome;
}

val of_protocol :
  name:string ->
  n:int ->
  t:int ->
  max_rounds:int ->
  protocol:(unit -> ('s, 'm, 'o) Protocol.t) ->
  adversary:(unit -> 'm Adversary.t) ->
  ?observe:('s -> float option) ->
  check:(('o, 'm) Aat_runtime.Report.t -> Verdict.t) ->
  ?spread:(('o, 'm) Aat_runtime.Report.t -> float option) ->
  unit ->
  t
(** The extension point: lift any synchronous protocol into the Runner
    API. [protocol] and [adversary] are thunks invoked once per [run] call
    (fresh state per execution); [check] judges the finished report;
    [spread] (default [fun _ -> None]) extracts the convergence headline. *)

(** {1 The repository's protocols as runners} *)

val tree_aa :
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:(unit -> Aat_treeaa.Tree_aa.msg Adversary.t) ->
  t

val nr_baseline :
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:(unit -> Labeled_tree.vertex Gradecast.Multi.msg Adversary.t) ->
  t

val path_aa :
  path:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:(unit -> float Gradecast.Multi.msg Adversary.t) ->
  t
(** [path] must be a path graph, as for [Path_aa.protocol]. *)

val known_path_aa :
  tree:Labeled_tree.t ->
  path:Paths.path ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:(unit -> float Gradecast.Multi.msg Adversary.t) ->
  t

val real_aa :
  ?knobs:Aat_realaa.Bdh.knobs ->
  eps:float ->
  inputs:float array ->
  t:int ->
  iterations:int ->
  adversary:(unit -> float Gradecast.Multi.msg Adversary.t) ->
  unit ->
  t
(** RealAA ([Bdh]); [eps] is the agreement distance the verdict checks. *)

val iterated_midpoint :
  eps:float ->
  inputs:float array ->
  t:int ->
  iterations:int ->
  adversary:(unit -> float Gradecast.Multi.msg Adversary.t) ->
  t
(** The gradecast variant of the classic halving baseline. *)

(** Scheduler choice for the asynchronous runners (the [Custom] scheduler
    is not representable in a declarative campaign spec). *)
type scheduler = Fifo | Lifo | Random_order

val async_tree_aa :
  ?max_events:int ->
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  scheduler:scheduler ->
  unit ->
  t
(** The native asynchronous tree protocol ([Async_aa.tree], Nowak–Rybicki
    style) under a passive adversary with the given scheduler.
    [max_events] defaults to [2_000_000] (soak's budget — enough for the
    large random trees the campaigns draw). *)

val round_sim_tree_aa :
  ?max_events:int ->
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  scheduler:scheduler ->
  unit ->
  t
(** Synchronous TreeAA lifted into the asynchronous engine through
    [Round_sim.reactor_of_protocol] — benign setting, any scheduler;
    outputs are bit-identical to the synchronous run. *)
