(** The unified protocol Runner — one erased entry point per protocol.

    Every protocol family in the repository already exposes a concrete
    [run] with the same shape ([~seed ?telemetry ~adversary] + its own
    config, returning the unified [Report.t]); this module erases the
    protocol-specific output and message types behind one {!t}, so batch
    drivers (the campaign subsystem, bench tables, soak, the CLI) can treat
    "run a simulation and check its verdict" as a value instead of
    hand-rolling per-protocol dispatch.

    A {!t} closes over everything but the seed; calling [run ~seed]
    executes one full simulation and returns a protocol-agnostic
    {!outcome}: a structured {!status} (a Runner {e never raises} — engine
    exceptions and liveness exhaustion come back as data), the checked
    Definition-1/2 verdict with its fault-aware {!Aat_engine.Verdict.graded}
    reading, the report's headline numbers, and any fault/watchdog
    accounting. Adversaries are taken as {e thunks}: the strategies in
    [lib/adversary] carry per-execution mutable state (spoiler plans,
    crash bookkeeping), so a fresh adversary must be built for every run —
    and runners must stay safe to invoke from several {!Pool} workers at
    once.

    Runners accept an optional {!Aat_faults.Plan.t}: its crashes are
    applied as engine-level faults and the rest is compiled to a
    deterministic {!Aat_runtime.Mailbox.fault_filter} seeded from the run
    seed, so outcomes are reproducible for any worker count. *)

open Aat_tree
open Aat_engine
open Aat_gradecast

(** How the run ended. [Timed_out] carries the partial-run diagnosis from
    {!Aat_runtime.Outcome.Liveness_timeout}; [Errored] wraps any exception
    an engine, protocol, adversary or verdict checker raised. *)
type status =
  | Finished
  | Timed_out of { undecided : int; reason : string }
  | Errored of { stage : string; exn_text : string }

val status_label : status -> string
(** ["completed"] / ["liveness-timeout"] / ["engine-error"] — matching
    {!Aat_runtime.Outcome.label}. *)

(** Per-stage cost breakdown of one run, present on {!outcome} only when
    the runner was invoked with [~profile:true]: [setup_ns] covers
    fault-filter compilation and protocol/adversary/watchdog construction,
    [rounds_ns] the engine execution, [checks_ns] verdict checking and
    grading. Wall-clock measurements: {e excluded} from the campaign
    determinism contract and ignored by replay comparison. *)
type stage_profile = {
  setup_ns : int;
  rounds_ns : int;
  checks_ns : int;
  alloc_bytes : float;  (** GC-allocated bytes over the whole run *)
}

type outcome = {
  runner : string;  (** the runner's name, e.g. ["tree-aa"] *)
  seed : int;  (** the engine/adversary seed this run used *)
  engine : string;  (** ["sync"] or ["async"] *)
  status : status;  (** how the run ended; never an exception *)
  termination : bool;
  validity : bool;
  agreement : bool;  (** the three checked AA properties *)
  grade : Verdict.graded;
      (** fault-aware reading of the verdict: failures under an
          out-of-model fault plan are [Excused], not [Violated] *)
  rounds_used : int;  (** rounds (sync) / delivery events (async) *)
  honest_messages : int;
  adversary_messages : int;
  corrupted : int;  (** final corruption count, crashes included *)
  initially_corrupted : int;
  spread : float option;
      (** final honest-output spread, for real-valued protocols *)
  faults : Aat_runtime.Report.fault_stats;
      (** injected-fault accounting ({!Aat_runtime.Report.no_faults} when
          no plan was given) *)
  violations : Aat_runtime.Watchdog.violation list;
      (** first violation per installed watchdog, in firing order *)
  profile : stage_profile option;
      (** stage cost breakdown; [None] unless run with [~profile:true] *)
}

val ok : outcome -> bool
(** The run finished and all three properties hold. *)

val excused : outcome -> bool
(** The verdict failed but the grade excused it (out-of-model faults). *)

val verdict_of : outcome -> Verdict.t

type t = {
  name : string;
  run :
    seed:int ->
    ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
    ?profile:bool ->
    unit ->
    outcome;
}
(** [profile] (default [false]) fills the outcome's {!stage_profile} and
    asks the engine for per-round cost samples on telemetered runs; off,
    no clock is ever read. *)

val of_protocol :
  name:string ->
  n:int ->
  t:int ->
  max_rounds:int ->
  protocol:(unit -> ('s, 'm, 'o) Protocol.t) ->
  adversary:(unit -> 'm Adversary.t) ->
  ?observe:('s -> float option) ->
  ?fault_plan:Aat_faults.Plan.t ->
  ?watchdogs:(unit -> ('s, 'm) Aat_runtime.Watchdog.t list) ->
  check:(('o, 'm) Aat_runtime.Report.t -> Verdict.t) ->
  ?spread:(('o, 'm) Aat_runtime.Report.t -> float option) ->
  unit ->
  t
(** The extension point: lift any synchronous protocol into the Runner
    API. [protocol], [adversary] and [watchdogs] are thunks invoked once
    per [run] call (fresh state per execution); [check] judges the
    finished — possibly partial — report; [spread] (default
    [fun _ -> None]) extracts the convergence headline. [fault_plan]
    (default {!Aat_faults.Plan.empty}) must be
    {!Aat_faults.Plan.sync_compatible}. *)

(** Scheduler choice for the asynchronous runners (the [Custom] scheduler
    is not representable in a declarative campaign spec). *)
type scheduler = Fifo | Lifo | Random_order

(** The unified run configuration. The repository's runners accreted a
    per-constructor spread of optionals ([?fault_plan], [?watch],
    [?max_events], [?knobs], [~scheduler]); {!Config.t} consolidates them
    into one record so campaign, service, bench and soak all construct
    runs the same way: build a record from {!Config.default}, override
    the fields you need, and pass [~config]. Fields a protocol does not
    use (e.g. [scheduler] on a synchronous runner, [knobs] anywhere but
    RealAA) are ignored by that constructor.

    The per-run adversary thunk stays a separate labelled argument — its
    message type is protocol-specific, so it cannot live in a shared
    record without erasing it; likewise [?telemetry]/[?profile] remain
    per-call knobs on {!t}[.run] because they vary per invocation, not
    per runner. *)
module Config : sig
  type t = {
    fault_plan : Aat_faults.Plan.t;  (** default: {!Aat_faults.Plan.empty} *)
    watch : bool;  (** install the standard watchdog catalog *)
    scheduler : scheduler;  (** async runners only; default [Fifo] *)
    max_events : int;  (** async delivery budget; default [2_000_000] *)
    knobs : Aat_realaa.Bdh.knobs option;  (** RealAA only *)
  }

  val default : t
end

(** {1 The repository's protocols as runners}

    All take [?config] (default {!Config.default}) plus the legacy
    per-field optionals [?fault_plan] / [?watch] (and, where applicable,
    [?max_events] / [?knobs] / [?scheduler]). The legacy optionals are
    {b deprecated thin wrappers}: when passed explicitly they override
    the corresponding [config] field, preserving every existing call
    site bit-for-bit, but new code should construct a {!Config.t}. When
    [watch] is set, the standard watchdog catalog applicable to the
    protocol — corruption-budget monotonicity everywhere, spread
    non-expansion where a scalar observation exists — is installed. *)

val tree_aa :
  ?config:Config.t ->
  ?fault_plan:Aat_faults.Plan.t ->
  ?watch:bool ->
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:(unit -> Aat_treeaa.Tree_aa.msg Adversary.t) ->
  unit ->
  t

val nr_baseline :
  ?config:Config.t ->
  ?fault_plan:Aat_faults.Plan.t ->
  ?watch:bool ->
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:(unit -> Labeled_tree.vertex Gradecast.Multi.msg Adversary.t) ->
  unit ->
  t

val path_aa :
  ?config:Config.t ->
  ?fault_plan:Aat_faults.Plan.t ->
  ?watch:bool ->
  path:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:(unit -> float Gradecast.Multi.msg Adversary.t) ->
  unit ->
  t
(** [path] must be a path graph, as for [Path_aa.protocol]. *)

val known_path_aa :
  ?config:Config.t ->
  ?fault_plan:Aat_faults.Plan.t ->
  ?watch:bool ->
  tree:Labeled_tree.t ->
  path:Paths.path ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:(unit -> float Gradecast.Multi.msg Adversary.t) ->
  unit ->
  t

val real_aa :
  ?config:Config.t ->
  ?knobs:Aat_realaa.Bdh.knobs ->
  ?fault_plan:Aat_faults.Plan.t ->
  ?watch:bool ->
  eps:float ->
  inputs:float array ->
  t:int ->
  iterations:int ->
  adversary:(unit -> float Gradecast.Multi.msg Adversary.t) ->
  unit ->
  t
(** RealAA ([Bdh]); [eps] is the agreement distance the verdict checks. *)

val iterated_midpoint :
  ?config:Config.t ->
  ?fault_plan:Aat_faults.Plan.t ->
  ?watch:bool ->
  eps:float ->
  inputs:float array ->
  t:int ->
  iterations:int ->
  adversary:(unit -> float Gradecast.Multi.msg Adversary.t) ->
  unit ->
  t
(** The gradecast variant of the classic halving baseline. *)

val async_tree_aa :
  ?config:Config.t ->
  ?max_events:int ->
  ?fault_plan:Aat_faults.Plan.t ->
  ?watch:bool ->
  ?adversary:(unit -> Labeled_tree.vertex Aat_async.Async_aa.msg Adversary.t) ->
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  ?scheduler:scheduler ->
  unit ->
  t
(** The native asynchronous tree protocol ([Async_aa.tree], Nowak–Rybicki
    style) under the given scheduler. [adversary] (default: passive) is a
    synchronous-world strategy lifted through
    [Async_engine.with_scheduler] — the synthesis harness drives the
    protocol-agnostic genome attacks through it; when present, the outcome
    additionally reports the honest output spread in the tree metric.
    [max_events] defaults to [2_000_000] (soak's budget — enough for the
    large random trees the campaigns draw). The async engine honours the
    full fault vocabulary, [Duplicate] and [Delay] included. *)

val round_sim_tree_aa :
  ?config:Config.t ->
  ?max_events:int ->
  ?fault_plan:Aat_faults.Plan.t ->
  ?watch:bool ->
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  ?scheduler:scheduler ->
  unit ->
  t
(** Synchronous TreeAA lifted into the asynchronous engine through
    [Round_sim.reactor_of_protocol] — benign setting, any scheduler;
    outputs are bit-identical to the synchronous run. *)
