(** Declarative batch-execution campaigns over the {!Pool} worker pool.

    A campaign is a {e pure specification}: protocol, tree generator,
    input distribution, adversary family, corruption budget, repetition
    count and base seed. {!run} compiles it into [repetitions] independent
    tasks, derives a deterministic per-task seed for each ({!task_seeds} —
    splitting the base seed through the SplitMix64 stream, so the seeds
    are a pure function of [(base_seed, index)]), fans the tasks out over
    a {!Pool}, and folds the outcomes in task order.

    {b Determinism contract}: everything a task does — drawing its tree,
    parties, inputs and adversary, and seeding the engine — is derived
    from its task seed alone, and aggregation happens in task index order;
    therefore every field of {!result} (and the {!write_jsonl} stream) is
    bit-identical for any [~workers], including [1]. The qcheck suite
    enforces this.

    See [docs/CAMPAIGN.md] for the full design. *)

module Spec : sig
  type size = Exactly of int | Between of int * int
      (** [Between (lo, hi)] draws uniformly from the inclusive range,
          per task. *)

  type tree_family =
    | Path_tree of size
    | Star_tree of size
    | Caterpillar_tree of { spine : size; legs : size }
    | Spider_tree of { legs : size; leg_length : size }
    | Balanced_tree of { arity : size; depth : size }
    | Random_tree of size
    | Any_tree
        (** soak's mix: a family {e and} its size drawn per task. *)

  type budget =
    | Fixed_t of int
    | Up_to_third  (** uniform in [0 .. (n-1)/3], the resilient regime *)

  type input_dist =
    | Random_vertices  (** uniform vertices of the drawn tree *)
    | Linspace_reals of float
        (** [n] reals evenly spaced across [[0, D]] *)
    | Log_uniform_reals of { log10_min : float; log10_max : float }
        (** the range [D] is drawn log-uniformly, then [n] uniform reals
            in [[0, D)] — soak's RealAA workload *)

  type adversary_family =
    | Passive
    | Random_silent
    | Random_crash
    | Tree_spoiler  (** phased RealAA spoiler over both TreeAA phases *)
    | Real_spoiler
    | Gradecast_wedge
    | Any_tree_adversary
        (** per-task mix of passive / silent / crash / tree spoiler *)
    | Any_real_adversary  (** per-task mix of passive / silent / spoiler *)
    | Synth_genome of Aat_adversary.Genome.t
        (** a synthesized strategy ([lib/synth]): the genome fully
            determines the attack, so no per-task adversary draws are
            made. Valid on every synchronous protocol (generic genomes
            only on the NR baseline) and, for protocol-agnostic genomes,
            on the native asynchronous runner, where its scheduler gene
            replaces the per-task scheduler draw. *)

  type protocol =
    | Tree_aa
    | Nr_baseline
    | Path_aa  (** requires a path-shaped [tree_family] *)
    | Known_path_aa
        (** the public path is the tree's oriented longest path *)
    | Real_aa of { eps : float }
    | Iterated_midpoint of { eps : float }
    | Async_tree_aa
        (** native async [33]-style protocol; scheduler drawn per task *)
    | Round_sim_tree_aa
        (** synchronous TreeAA lifted via [Round_sim]; scheduler drawn
            per task *)

  (** Fault injection for every task of the campaign. [Fault_plan] applies
      one fixed plan to all tasks (each task still derives its own fault
      RNG from its engine seed); [Chaos] draws a fresh random plan per task
      from the task's seed stream ({!Aat_faults.Plan.random}), so a chaos
      campaign sweeps a diverse fault landscape deterministically. *)
  type fault_mode =
    | No_faults
    | Fault_plan of Aat_faults.Plan.t
    | Chaos of { intensity : float }  (** in [[0, 1]]; [0.] = benign *)

  type t = {
    name : string;
    protocol : protocol;
    tree : tree_family;  (** ignored by the real-valued protocols *)
    n : size;
    t_budget : budget;
    inputs : input_dist;
    adversary : adversary_family;
    faults : fault_mode;
    watchdogs : bool;
        (** install the standard invariant watchdog catalog per run *)
    repetitions : int;
    base_seed : int;
  }

  val protocol_label : protocol -> string

  val sync_protocol : protocol -> bool
  (** Whether the protocol runs on the synchronous engine (everything but
      the two async runners). *)

  val validate : t -> (unit, string) result
  (** Static checks: repetitions non-negative, adversary family compatible
      with the protocol's wire type, input distribution compatible with
      the protocol's value space, fault plan structurally valid and
      engine-compatible ([Duplicate]/[Delay] are async-only), chaos
      intensity in [[0, 1]]. *)
end

type task_result = {
  task : int;  (** task index, [0 .. repetitions-1] *)
  task_seed : int;  (** the split seed the task derived everything from *)
  result : (Runner.outcome, string) Stdlib.result;
      (** [Error] carries [Printexc.to_string] of an exception raised
          during task {e instantiation}; runs themselves never raise —
          liveness timeouts and engine errors arrive as structured
          {!Runner.status} values inside [Ok] outcomes *)
}

type aggregate = {
  tasks : int;
  violations : int;
      (** tasks graded [Violated] (genuine in-model failures), plus
          errored tasks; [Excused] failures count under [excused] only *)
  errors : int;  (** tasks that failed to instantiate *)
  timeouts : int;  (** tasks whose run ended in [Timed_out] *)
  engine_errors : int;  (** tasks whose run ended in [Errored] *)
  excused : int;  (** tasks whose failed verdict was excused *)
  total_rounds : int;
  total_honest_messages : int;
  total_adversary_messages : int;
  max_spread : float option;
      (** across real-valued tasks; [None] if no task reported one *)
}

type result = {
  spec : Spec.t;
  results : task_result array;  (** in task order *)
  aggregate : aggregate;
}

val task_seeds : base_seed:int -> count:int -> int array
(** The per-task seed schedule: seed [i] is the [(i+1)]-th output of the
    SplitMix64 stream seeded with [base_seed], shifted to a non-negative
    OCaml int. Pure; independent of worker count by construction. *)

val split_seed : base:int -> index:int -> int
(** [split_seed ~base ~index = (task_seeds ~base_seed:base
    ~count:(index+1)).(index)] — for deriving families of related base
    seeds (soak derives one per protocol family). *)

val instantiate : Spec.t -> task_seed:int -> Runner.t * int
(** Compile one task: draw tree / parties / inputs / adversary from the
    task seed and return the runner plus the engine seed to run it with.
    Exposed for tests and for callers that want custom execution (e.g.
    attaching a per-task telemetry sink). Raises [Invalid_argument] on
    spec/protocol mismatches (see {!Spec.validate}). *)

val run :
  ?workers:int ->
  ?telemetry:(task:int -> Aat_telemetry.Telemetry.Sink.t option) ->
  ?profile:bool ->
  Spec.t ->
  result
(** Execute the campaign. [workers] defaults to [1]; results are
    bit-identical for every worker count. [telemetry], if given, supplies
    a per-task sink ([task] is the task index) — sinks may be invoked from
    pool worker domains concurrently, so distinct tasks must get distinct
    (or domain-safe) sinks. [profile] (default [false]) fills each
    outcome's {!Runner.stage_profile}; the timing values themselves are
    wall-clock measurements and sit outside the determinism contract. *)

val empty_aggregate : aggregate

val fold_task : aggregate -> task_result -> aggregate
(** Fold one task result into the aggregate. [run] folds in task index
    order; external drivers (the campaign service) must do the same so
    the aggregate never depends on completion order. *)

val fold_outcome_json :
  aggregate -> (Aat_telemetry.Jsonx.t, string) Stdlib.result -> aggregate
(** The service-side twin of {!fold_task}: fold an outcome already in
    its {!json_of_outcome} rendering (as shipped over the service wire
    or resumed from a flight record) into the aggregate. Equivalent to
    [fold_task] on the outcome the JSON was rendered from. *)

val json_of_outcome : Runner.outcome -> Aat_telemetry.Jsonx.t
(** One task outcome as the ["task"]-line payload (without the task/seed
    envelope): status, verdict, grade, headline numbers, fault and
    watchdog accounting, and — on profiled runs — the stage profile.
    Exposed for the observability layer's outcome digests. *)

val json_of_task_result : task_result -> Aat_telemetry.Jsonx.t

val json_of_task_line :
  task:int ->
  task_seed:int ->
  (Aat_telemetry.Jsonx.t, string) Stdlib.result ->
  Aat_telemetry.Jsonx.t
(** Re-render a ["task"] line from a payload already in JSON form — the
    service wire path. Byte-identical to {!json_of_task_result} on the
    same outcome, because [Jsonx] parse/render round-trips exactly. *)

val json_header : Spec.t -> Aat_telemetry.Jsonx.t
(** The ["campaign-start"] header object. Carries the telemetry
    [format_version] gate; deliberately omits the worker count — the
    stream is byte-identical however the campaign was scheduled. *)

val json_footer : aggregate -> Aat_telemetry.Jsonx.t
(** The ["campaign-stop"] footer object for an aggregate. *)

val jsonl_lines : result -> Aat_telemetry.Jsonx.t list
(** The campaign result stream: one ["campaign-start"] header object, one
    ["task"] object per task in task order, one ["campaign-stop"] footer
    with the aggregate. *)

val write_jsonl : out_channel -> result -> unit
(** {!jsonl_lines}, one JSON object per line; flushes, does not close. *)

val jsonl_string : result -> string
