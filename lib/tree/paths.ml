module LT = Labeled_tree

type path = LT.vertex array

(* Walk [u] and [v] up to their meeting point (the LCA). The accumulators
   collect the vertices passed strictly below the LCA, shallowest first, so
   the u-side must be reversed while the v-side is already in top-down
   order. *)
let between r u v =
  let parent w =
    match Rooted.parent r w with Some p -> p | None -> assert false
  in
  let rec lift w target_depth acc =
    if Rooted.depth r w = target_depth then (w, acc)
    else lift (parent w) target_depth (w :: acc)
  in
  let rec meet a b acc_a acc_b =
    if a = b then (a, acc_a, acc_b)
    else meet (parent a) (parent b) (a :: acc_a) (b :: acc_b)
  in
  let d = min (Rooted.depth r u) (Rooted.depth r v) in
  let u', acc_u = lift u d [] in
  let v', acc_v = lift v d [] in
  let lca, acc_u, acc_v = meet u' v' acc_u acc_v in
  Array.of_list (List.rev_append acc_u (lca :: acc_v))

let distance r u v =
  let du = Rooted.depth r u and dv = Rooted.depth r v in
  (* depth(u) + depth(v) - 2*depth(lca); recover lca depth by walking. *)
  let parent w =
    match Rooted.parent r w with Some p -> p | None -> assert false
  in
  let rec lift w target_depth = if Rooted.depth r w = target_depth then w else lift (parent w) target_depth in
  let d = min du dv in
  let rec meet a b = if a = b then a else meet (parent a) (parent b) in
  let lca = meet (lift u d) (lift v d) in
  du + dv - (2 * Rooted.depth r lca)

let bfs_distances t src =
  let n = LT.n_vertices t in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (LT.neighbors t u)
  done;
  dist

let is_path t p =
  let n = Array.length p in
  if n = 0 then false
  else begin
    let seen = Hashtbl.create n in
    let ok = ref true in
    Array.iter
      (fun v ->
        if Hashtbl.mem seen v then ok := false else Hashtbl.replace seen v ())
      p;
    for i = 0 to n - 2 do
      if not (LT.adjacent t p.(i) p.(i + 1)) then ok := false
    done;
    !ok
  end

let orient t p =
  let n = Array.length p in
  if n <= 1 then p
  else if String.compare (LT.label t p.(0)) (LT.label t p.(n - 1)) <= 0 then p
  else begin
    let q = Array.copy p in
    let len = Array.length q in
    for i = 0 to len - 1 do
      q.(i) <- p.(len - 1 - i)
    done;
    q
  end

let extend p w = Array.append p [| w |]

let mem p v = Array.exists (fun x -> x = v) p

let index_of p v =
  let n = Array.length p in
  let rec go i = if i >= n then None else if p.(i) = v then Some i else go (i + 1) in
  go 0

let pp t fmt p =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt v -> Format.pp_print_string fmt (LT.label t v)))
    (Array.to_list p)
