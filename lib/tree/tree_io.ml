module LT = Labeled_tree

let to_edge_list t =
  match LT.edges t with
  | [] -> LT.label t 0 ^ "\n"
  | es ->
      let buf = Buffer.create 256 in
      List.iter
        (fun (u, v) ->
          Buffer.add_string buf (LT.label t u);
          Buffer.add_char buf ' ';
          Buffer.add_string buf (LT.label t v);
          Buffer.add_char buf '\n')
        es;
      Buffer.contents buf

let of_edge_list s =
  let lines = String.split_on_char '\n' s in
  let tokens_of line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let edges = ref [] and isolated = ref [] in
  List.iter
    (fun line ->
      let line = String.trim (tokens_of line) in
      if line <> "" then
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ a; b ] -> edges := (a, b) :: !edges
        | [ a ] -> isolated := a :: !isolated
        | _ -> raise (LT.Invalid_tree ("bad edge-list line: " ^ line)))
    lines;
  LT.of_labeled_edges ~isolated:!isolated (List.rev !edges)

let to_dot ?(highlight = []) t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph tree {\n  node [shape=circle];\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [style=filled, fillcolor=lightblue];\n"
           (LT.label t v)))
    highlight;
  List.iter
    (fun (u, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -- \"%s\";\n" (LT.label t u) (LT.label t v)))
    (LT.edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let ascii_art t =
  let r = Rooted.make t in
  let buf = Buffer.create 256 in
  let rec render v indent =
    Buffer.add_string buf indent;
    Buffer.add_string buf (LT.label t v);
    Buffer.add_char buf '\n';
    List.iter (fun c -> render c (indent ^ "  ")) (Rooted.children r v)
  in
  render (Rooted.root r) "";
  Buffer.contents buf
