(** Projections onto paths (Section 5 of the paper).

    [proj_P(v)] is the unique vertex of a path [P] closest to [v]. Lemma 1:
    if [P] intersects [⟨S⟩] then the projection of any [v ∈ S] onto [P]
    lands inside [V(P) ∩ ⟨S⟩]. *)

val onto_path :
  Rooted.t -> Paths.path -> Labeled_tree.vertex -> Labeled_tree.vertex
(** [onto_path r p v] is [proj_P(v)]: walks from [v] toward the path. O(n)
    worst case, O(d(v, P)) typical. *)

val onto_path_index : Rooted.t -> Paths.path -> Labeled_tree.vertex -> int
(** Position (0-based) of the projection within [p] — the value a party
    feeds to RealAA in Section 5/7. *)

val all_onto_path : Labeled_tree.t -> Paths.path -> Labeled_tree.vertex array
(** [all_onto_path t p] maps every vertex to its projection by one
    multi-source BFS from the path. O(n). *)

val distance_to_path : Labeled_tree.t -> Paths.path -> Labeled_tree.vertex -> int
(** [d(v, proj_P(v))]. *)
