(** Labeled trees — the input spaces of approximate agreement on trees.

    A value of type {!t} is a finite, connected, acyclic, undirected graph
    whose vertices carry distinct string labels. Labels matter to the
    protocols: the paper fixes the root as the vertex with the
    lexicographically lowest label, orients paths by comparing endpoint
    labels, and requires every honest party to derive identical data
    structures from the public tree. To make that determinism total, the
    adjacency lists of a [t] are sorted by neighbor label, so any traversal
    that follows adjacency order is the same for all parties.

    Vertices are exposed as dense integer identifiers in [\[0, n)] assigned
    in label order: vertex [0] always carries the lowest label. This makes
    array-indexed algorithms natural while keeping the labeled-tree
    semantics of the paper. *)

type vertex = int
(** Vertex identifier, dense in [\[0, n_vertices t)], assigned in increasing
    label order. *)

type t

exception Invalid_tree of string
(** Raised by constructors on inputs that are not a labeled tree: duplicate
    labels, unknown endpoints, self-loops, parallel edges, cycles, or a
    disconnected edge set. *)

val of_labeled_edges : ?isolated:string list -> (string * string) list -> t
(** [of_labeled_edges edges] builds the tree whose vertex set is every label
    appearing in [edges] (plus [isolated], for the single-vertex tree which
    has no edges). Raises {!Invalid_tree} if the graph is not a tree. *)

val singleton : string -> t
(** The one-vertex tree. *)

val of_parents : labels:string array -> int array -> t
(** [of_parents ~labels parent] builds a tree from a parent table:
    [parent.(i)] is the index (into [labels]) of the parent of vertex
    [labels.(i)], and exactly one entry is [-1] (the root of the encoding —
    not necessarily the protocol root). Raises {!Invalid_tree} on malformed
    tables. *)

val n_vertices : t -> int

val label : t -> vertex -> string

val vertex_of_label : t -> string -> vertex
(** Raises [Not_found] if no vertex carries the label. *)

val mem_label : t -> string -> bool

val neighbors : t -> vertex -> vertex list
(** Neighbors in increasing label order (equivalently increasing vertex id). *)

val degree : t -> vertex -> int

val is_leaf : t -> vertex -> bool

val edges : t -> (vertex * vertex) list
(** Each edge once, as [(u, v)] with [u < v], sorted. *)

val root : t -> vertex
(** The vertex with the lexicographically lowest label — the protocol root
    fixed by TreeAA (always vertex [0]). *)

val vertices : t -> vertex list

val fold_vertices : (vertex -> 'a -> 'a) -> t -> 'a -> 'a

val adjacent : t -> vertex -> vertex -> bool

val equal : t -> t -> bool
(** Structural equality: same labels and same edge set. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering, e.g. [tree{a-b; b-c}]. *)

val pp_vertex : t -> Format.formatter -> vertex -> unit
(** Prints the vertex label. *)
