(** Lowest common ancestors via Euler tour + sparse-table RMQ.

    This is the classical reduction of Bender & Farach-Colton ("The LCA
    problem revisited", reference [8] of the paper) that the paper's
    ListConstruction is borrowed from: the LCA of [v] and [v'] is the
    minimum-depth vertex between any occurrence of [v] and any occurrence of
    [v'] in the Euler tour (Lemma 2, property 4). Build is O(n log n),
    queries are O(1). *)

type t

val build : Euler_tour.t -> t

val query : t -> Labeled_tree.vertex -> Labeled_tree.vertex -> Labeled_tree.vertex
(** [query t v v'] is the lowest common ancestor of [v] and [v'] with
    respect to the tour's root. *)

val range_min_vertex : t -> int -> int -> Labeled_tree.vertex
(** [range_min_vertex t i j] is the minimum-depth vertex among
    [{L_k : min(i,j) <= k <= max(i,j)}] — the form used by Lemma 3's proof. *)
