module LT = Labeled_tree

type t = {
  mask : bool array;
  members : LT.vertex list;
  generators : LT.vertex list;
}

(* Root the tree at some s0 ∈ S; then v ∈ ⟨S⟩ iff v's subtree contains an
   element of S: such a v lies on P(u, s0) for any S-element u below it, and
   conversely every vertex of a path between S-elements has one of them in
   its subtree. Subtree counts are accumulated bottom-up over the preorder
   sequence. *)
let compute rooted s =
  match s with
  | [] -> invalid_arg "Convex_hull.compute: empty generator set"
  | s0 :: _ ->
      let tree = Rooted.tree rooted in
      let n = LT.n_vertices tree in
      let anchored = Rooted.make ~root:s0 tree in
      let count = Array.make n 0 in
      List.iter (fun v -> count.(v) <- count.(v) + 1) s;
      let pre = Rooted.preorder anchored in
      for i = n - 1 downto 1 do
        let v = pre.(i) in
        match Rooted.parent anchored v with
        | Some p -> count.(p) <- count.(p) + count.(v)
        | None -> ()
      done;
      let mask = Array.map (fun c -> c > 0) count in
      let members = ref [] in
      for v = n - 1 downto 0 do
        if mask.(v) then members := v :: !members
      done;
      { mask; members = !members; generators = List.sort_uniq compare s }

let mem t v = t.mask.(v)

let vertices t = t.members

let size t = List.length t.members

let generators t = t.generators

let subset a b = List.for_all (fun v -> b.mask.(v)) a.members

let on_some_pair_path rooted s w =
  List.exists
    (fun u ->
      List.exists
        (fun v ->
          Paths.distance rooted u w + Paths.distance rooted w v
          = Paths.distance rooted u v)
        s)
    s
