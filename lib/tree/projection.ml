module LT = Labeled_tree

(* The walk from [v] to any fixed vertex of [P] first meets [P] exactly at
   proj_P(v) (otherwise the tree would contain a cycle — the argument of
   Lemma 1). So a single path computation suffices. *)
let onto_path_index r p v =
  if Array.length p = 0 then invalid_arg "Projection: empty path";
  let pos = Hashtbl.create (Array.length p) in
  Array.iteri (fun i u -> Hashtbl.replace pos u i) p;
  let walk = Paths.between r v p.(0) in
  let n = Array.length walk in
  let rec go i =
    if i >= n then invalid_arg "Projection: vertices not in one tree"
    else
      match Hashtbl.find_opt pos walk.(i) with
      | Some idx -> idx
      | None -> go (i + 1)
  in
  go 0

let onto_path r p v = p.(onto_path_index r p v)

let all_onto_path t p =
  let n = LT.n_vertices t in
  let nearest = Array.make n (-1) in
  let queue = Queue.create () in
  Array.iter
    (fun u ->
      if nearest.(u) = -1 then begin
        nearest.(u) <- u;
        Queue.add u queue
      end)
    p;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun w ->
        if nearest.(w) = -1 then begin
          nearest.(w) <- nearest.(u);
          Queue.add w queue
        end)
      (LT.neighbors t u)
  done;
  nearest

let distance_to_path t p v =
  let best = ref max_int in
  let dist = Paths.bfs_distances t v in
  Array.iter (fun u -> if dist.(u) < !best then best := dist.(u)) p;
  !best
