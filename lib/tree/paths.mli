(** Paths and distances in a tree.

    The paper's [P(u, v)] — the unique path between two vertices — and the
    distance [d(u, v)] = |P(u, v)| - 1 (number of edges). Paths are
    represented as non-empty vertex arrays listing consecutive, adjacent
    vertices; [P(u, v)] runs from [u] to [v] inclusive. *)

type path = Labeled_tree.vertex array

val between : Rooted.t -> Labeled_tree.vertex -> Labeled_tree.vertex -> path
(** [between r u v] is [P(u, v)]. O(|P|) after the rooted preprocessing. *)

val distance : Rooted.t -> Labeled_tree.vertex -> Labeled_tree.vertex -> int
(** [distance r u v = d(u, v)], the number of edges on [P(u, v)]. *)

val bfs_distances : Labeled_tree.t -> Labeled_tree.vertex -> int array
(** Single-source edge distances to every vertex. *)

val is_path : Labeled_tree.t -> path -> bool
(** Checks that consecutive entries are adjacent and no vertex repeats —
    i.e. the array really is a simple path of the tree. *)

val orient : Labeled_tree.t -> path -> path
(** [orient t p] flips [p] if needed so that its first endpoint has the
    lexicographically lower label, the ordering fixed in Section 4 of the
    paper ("v1 is the endpoint with the lower label"). *)

val extend : path -> Labeled_tree.vertex -> path
(** [extend p w] is the paper's [P ⊕ (v, w)]: appends [w] to the endpoint.
    The caller guarantees adjacency and freshness (checked in debug mode via
    {!is_path} by consumers that need it). *)

val mem : path -> Labeled_tree.vertex -> bool

val index_of : path -> Labeled_tree.vertex -> int option
(** Position of a vertex in the path, 0-based. *)

val pp : Labeled_tree.t -> Format.formatter -> path -> unit
