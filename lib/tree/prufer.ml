let decode seq =
  let n = Array.length seq + 2 in
  Array.iter
    (fun x -> if x < 0 || x >= n then invalid_arg "Prufer.decode: entry out of range")
    seq;
  let deg = Array.make n 1 in
  Array.iter (fun x -> deg.(x) <- deg.(x) + 1) seq;
  (* Min-leaf selection with the standard pointer trick: [ptr] scans for the
     smallest never-activated leaf, [leaf] tracks the current smallest. *)
  let edges = ref [] in
  let ptr = ref 0 in
  while deg.(!ptr) <> 1 do
    incr ptr
  done;
  let leaf = ref !ptr in
  Array.iter
    (fun v ->
      edges := (!leaf, v) :: !edges;
      deg.(v) <- deg.(v) - 1;
      if deg.(v) = 1 && v < !ptr then leaf := v
      else begin
        incr ptr;
        while !ptr < n && deg.(!ptr) <> 1 do
          incr ptr
        done;
        leaf := !ptr
      end)
    seq;
  edges := (!leaf, n - 1) :: !edges;
  List.rev !edges

let encode ~n edges =
  if n < 2 then invalid_arg "Prufer.encode: need n >= 2";
  if List.length edges <> n - 1 then invalid_arg "Prufer.encode: not a tree";
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let deg = Array.map List.length adj in
  let removed = Array.make n false in
  let seq = Array.make (n - 2) 0 in
  let module H = Set.Make (Int) in
  let leaves = ref H.empty in
  Array.iteri (fun v d -> if d = 1 then leaves := H.add v !leaves) deg;
  for i = 0 to n - 3 do
    let leaf = H.min_elt !leaves in
    leaves := H.remove leaf !leaves;
    removed.(leaf) <- true;
    let neighbor =
      match List.find_opt (fun u -> not removed.(u)) adj.(leaf) with
      | Some u -> u
      | None -> invalid_arg "Prufer.encode: not a tree"
    in
    seq.(i) <- neighbor;
    deg.(neighbor) <- deg.(neighbor) - 1;
    if deg.(neighbor) = 1 then leaves := H.add neighbor !leaves
  done;
  seq

let count ~n =
  if n <= 2 then 1
  else
    let rec pow acc b e = if e = 0 then acc else pow (acc * b) b (e - 1) in
    pow 1 n (n - 2)

let enumerate ~n =
  if n < 1 then invalid_arg "Prufer.enumerate";
  if n = 1 then Seq.return []
  else if n = 2 then Seq.return [ (0, 1) ]
  else
    (* Odometer over [0, n)^(n-2). *)
    let len = n - 2 in
    let rec next seq () =
      match seq with
      | None -> Seq.Nil
      | Some s ->
          let edges = decode s in
          let s' = Array.copy s in
          let rec inc i =
            if i < 0 then None
            else if s'.(i) + 1 < n then begin
              s'.(i) <- s'.(i) + 1;
              Some s'
            end
            else begin
              s'.(i) <- 0;
              inc (i - 1)
            end
          in
          Seq.Cons (edges, next (inc (len - 1)))
    in
    next (Some (Array.make len 0))
