(** Textual import/export of labeled trees.

    Edge-list format: one [label label] pair per line, '#' comments and
    blank lines ignored; a single-vertex tree is a lone label on one line.
    DOT output is for visual inspection of experiment inputs. *)

val to_edge_list : Labeled_tree.t -> string

val of_edge_list : string -> Labeled_tree.t
(** Raises {!Labeled_tree.Invalid_tree} on malformed input. *)

val to_dot :
  ?highlight:Labeled_tree.vertex list -> Labeled_tree.t -> string
(** Graphviz rendering; [highlight]ed vertices are filled. *)

val ascii_art : Labeled_tree.t -> string
(** Indented rooted rendering (root = lowest label), one vertex per line —
    the quick way to see a tree in a terminal. *)
