module LT = Labeled_tree

(* Farthest vertex from [src]; ties broken toward the smaller vertex id
   (i.e. the lower label) so results are deterministic. *)
let farthest t src =
  let dist = Paths.bfs_distances t src in
  let best = ref src in
  Array.iteri (fun v d -> if d > dist.(!best) then best := v) dist;
  (!best, dist.(!best))

let diameter_endpoints t =
  let a, _ = farthest t (LT.root t) in
  let b, _ = farthest t a in
  if a <= b then (a, b) else (b, a)

let diameter t =
  let a, _ = farthest t (LT.root t) in
  let _, d = farthest t a in
  d

let longest_path t =
  let a, b = diameter_endpoints t in
  let r = Rooted.make t in
  Paths.orient t (Paths.between r a b)

let eccentricity t v =
  let dist = Paths.bfs_distances t v in
  Array.fold_left max 0 dist

let all_eccentricities t =
  Array.init (LT.n_vertices t) (fun v -> eccentricity t v)

let radius t = (diameter t + 1) / 2

let center t =
  (* Peel leaves layer by layer; the last non-empty layer (1 or 2 vertices)
     is the center. *)
  let n = LT.n_vertices t in
  if n = 1 then [ 0 ]
  else begin
    let deg = Array.init n (fun v -> LT.degree t v) in
    let removed = Array.make n false in
    let layer = ref [] in
    for v = 0 to n - 1 do
      if deg.(v) <= 1 then layer := v :: !layer
    done;
    let remaining = ref n in
    let current = ref (List.rev !layer) in
    while !remaining > 2 do
      let next = ref [] in
      List.iter
        (fun v ->
          removed.(v) <- true;
          decr remaining;
          List.iter
            (fun u ->
              if not removed.(u) then begin
                deg.(u) <- deg.(u) - 1;
                if deg.(u) = 1 then next := u :: !next
              end)
            (LT.neighbors t v))
        !current;
      current := List.rev !next
    done;
    List.filter (fun v -> not removed.(v)) (LT.vertices t)
  end
