module LT = Labeled_tree

type t = {
  rooted : Rooted.t;
  tour : LT.vertex array;
  depth : int array; (* depth.(i) = depth of tour.(i) *)
  first : int array; (* per vertex *)
  last : int array; (* per vertex *)
  occ : int list array; (* per vertex, increasing *)
}

let compute rooted =
  let tree = Rooted.tree rooted in
  let n = LT.n_vertices tree in
  let len = (2 * n) - 1 in
  let tour = Array.make len 0 in
  let depth = Array.make len 0 in
  let pos = ref 0 in
  let record v =
    tour.(!pos) <- v;
    depth.(!pos) <- Rooted.depth rooted v;
    incr pos
  in
  (* Iterative DFS mirroring Rooted's traversal: record on entry, and record
     the parent again each time a child's subtree completes. *)
  let stack = Stack.create () in
  let push v =
    record v;
    Stack.push (v, ref (Rooted.children rooted v)) stack
  in
  push (Rooted.root rooted);
  while not (Stack.is_empty stack) do
    let _, rest = Stack.top stack in
    match !rest with
    | [] ->
        ignore (Stack.pop stack);
        if not (Stack.is_empty stack) then begin
          let parent, _ = Stack.top stack in
          record parent
        end
    | child :: tl ->
        rest := tl;
        push child
  done;
  assert (!pos = len);
  let first = Array.make n (-1) and last = Array.make n (-1) in
  let occ_rev = Array.make n [] in
  Array.iteri
    (fun i v ->
      if first.(v) = -1 then first.(v) <- i;
      last.(v) <- i;
      occ_rev.(v) <- i :: occ_rev.(v))
    tour;
  let occ = Array.map List.rev occ_rev in
  { rooted; tour; depth; first; last; occ }

let tour t = Array.copy t.tour

let length t = Array.length t.tour

let vertex_at t i = t.tour.(i)

let depth_at t i = t.depth.(i)

let occurrences t v = t.occ.(v)

let first_occurrence t v = t.first.(v)

let last_occurrence t v = t.last.(v)

let rooted t = t.rooted
