(** The paper's [ListConstruction] (Section 6): the Euler-tour list.

    A DFS from the root records every vertex each time it is visited — on
    first entry and again after each child's subtree has been fully
    explored. The resulting list [L] has the four properties of Lemma 2:

    + consecutive elements are adjacent in [T] (when [|V(T)| > 1]);
    + [|L| <= 2·|V(T)|] (in fact exactly [2·|V(T)| - 1]) and every vertex
      occurs at least once;
    + the occurrences of [v] bracket exactly the vertices of [v]'s subtree;
    + between any occurrence of [v] and any occurrence of [v'] lies an
      occurrence of their lowest common ancestor.

    Children are expanded in label order, so the list is identical for all
    honest parties. Indices are 0-based ([0 .. length - 1]); the paper's
    1-based [L_i] is our [vertex_at t (i - 1)]. *)

type t

val compute : Rooted.t -> t
(** [ListConstruction(T, v_root)] for the rooted view's root. O(n). *)

val tour : t -> Labeled_tree.vertex array
(** The list [L] itself. The returned array is fresh. *)

val length : t -> int
(** [|L|] = [2·|V(T)| - 1]. *)

val vertex_at : t -> int -> Labeled_tree.vertex
(** [L_i] (0-based). *)

val depth_at : t -> int -> int
(** Depth (from the root) of [L_i] — the RMQ key for LCA queries. *)

val occurrences : t -> Labeled_tree.vertex -> int list
(** The paper's [L(v)]: all indices [i] with [L_i = v], sorted increasing.
    Non-empty for every vertex (Lemma 2, property 2). *)

val first_occurrence : t -> Labeled_tree.vertex -> int
(** [min L(v)] — the index PathsFinder feeds to RealAA. *)

val last_occurrence : t -> Labeled_tree.vertex -> int
(** [max L(v)]. *)

val rooted : t -> Rooted.t
