(** Rooted view of a labeled tree.

    Precomputes parent, depth and DFS-interval tables for a chosen root.
    The DFS visits children in label order, matching the deterministic
    traversal every honest party performs; this makes subtree intervals and
    the Euler tour (built on top of this module) identical across parties. *)

type t

val make : ?root:Labeled_tree.vertex -> Labeled_tree.t -> t
(** [make tree] roots [tree] at the protocol root (lowest label); [~root]
    overrides. All traversals are iterative, so trees with [10^6]-vertex
    paths are fine. *)

val tree : t -> Labeled_tree.t

val root : t -> Labeled_tree.vertex

val parent : t -> Labeled_tree.vertex -> Labeled_tree.vertex option
(** [None] exactly for the root. *)

val depth : t -> Labeled_tree.vertex -> int
(** Edge distance from the root. *)

val children : t -> Labeled_tree.vertex -> Labeled_tree.vertex list
(** Children in label order. *)

val is_ancestor : t -> Labeled_tree.vertex -> Labeled_tree.vertex -> bool
(** [is_ancestor t a v] — [a] lies on the root-to-[v] path (reflexive):
    O(1) via DFS intervals. *)

val in_subtree : t -> root_of:Labeled_tree.vertex -> Labeled_tree.vertex -> bool
(** [in_subtree t ~root_of:v u] — [u] belongs to the subtree rooted at [v];
    same as [is_ancestor t v u]. *)

val subtree_vertices : t -> Labeled_tree.vertex -> Labeled_tree.vertex list
(** All vertices of the subtree rooted at the argument, in DFS preorder. *)

val preorder : t -> Labeled_tree.vertex array
(** All vertices in DFS preorder (children in label order). *)

val path_to_root : t -> Labeled_tree.vertex -> Labeled_tree.vertex list
(** [path_to_root t v] is [P(v_root, v)] listed from the root down to [v]
    (inclusive). *)
