type t = {
  tour : Euler_tour.t;
  (* table.(k).(i) = index of a minimum-depth tour position in
     [i, i + 2^k); row 0 is the identity. *)
  table : int array array;
  log2 : int array; (* floor(log2 i) for 1 <= i <= len *)
}

let build tour =
  let len = Euler_tour.length tour in
  let log2 = Array.make (len + 1) 0 in
  for i = 2 to len do
    log2.(i) <- log2.(i / 2) + 1
  done;
  let levels = log2.(len) + 1 in
  let table = Array.make levels [||] in
  table.(0) <- Array.init len Fun.id;
  for k = 1 to levels - 1 do
    let span = 1 lsl k in
    let half = span / 2 in
    let rows = len - span + 1 in
    let prev = table.(k - 1) in
    table.(k) <-
      Array.init (max rows 0) (fun i ->
          let a = prev.(i) and b = prev.(i + half) in
          if Euler_tour.depth_at tour a <= Euler_tour.depth_at tour b then a
          else b)
  done;
  { tour; table; log2 }

let range_min_index t i j =
  let lo = min i j and hi = max i j in
  let k = t.log2.(hi - lo + 1) in
  let a = t.table.(k).(lo) and b = t.table.(k).(hi - (1 lsl k) + 1) in
  if Euler_tour.depth_at t.tour a <= Euler_tour.depth_at t.tour b then a else b

let range_min_vertex t i j =
  Euler_tour.vertex_at t.tour (range_min_index t i j)

let query t v v' =
  let i = Euler_tour.first_occurrence t.tour v in
  let j = Euler_tour.first_occurrence t.tour v' in
  range_min_vertex t i j
