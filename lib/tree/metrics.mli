(** Global tree metrics: diameter, eccentricities, center, radius.

    The diameter [D(T)] — the length (in edges) of the longest path — is the
    quantity the paper's round bounds are stated in. All functions are
    linear-time BFS-based except {!all_eccentricities} which is O(n^2) and
    intended for tests. *)

val diameter : Labeled_tree.t -> int
(** [D(T)]: two-phase BFS. 0 for the single vertex. *)

val diameter_endpoints :
  Labeled_tree.t -> Labeled_tree.vertex * Labeled_tree.vertex
(** Endpoints of one longest path, deterministic (label-order tie-breaks).
    These are the [D(T)]-distant vertices used as the inputs [a, b] of the
    lower-bound construction (Corollary 1). *)

val longest_path : Labeled_tree.t -> Paths.path
(** One longest path, from the lower-labeled endpoint. *)

val eccentricity : Labeled_tree.t -> Labeled_tree.vertex -> int
(** Largest distance from the vertex to any other. *)

val all_eccentricities : Labeled_tree.t -> int array

val radius : Labeled_tree.t -> int

val center : Labeled_tree.t -> Labeled_tree.vertex list
(** The 1 or 2 vertices of minimum eccentricity, computed by leaf-pruning in
    O(n). *)
