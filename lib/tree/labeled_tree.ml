type vertex = int

type t = {
  labels : string array;
  adj : vertex list array;
  index : (string, vertex) Hashtbl.t;
}

exception Invalid_tree of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_tree s)) fmt

let n_vertices t = Array.length t.labels

let label t v = t.labels.(v)

let vertex_of_label t l = Hashtbl.find t.index l

let mem_label t l = Hashtbl.mem t.index l

let neighbors t v = t.adj.(v)

let degree t v = List.length t.adj.(v)

let is_leaf t v = degree t v <= 1

let root _ = 0

let vertices t = List.init (n_vertices t) Fun.id

let fold_vertices f t init =
  let acc = ref init in
  for v = 0 to n_vertices t - 1 do
    acc := f v !acc
  done;
  !acc

let adjacent t u v = List.mem v t.adj.(u)

let edges t =
  fold_vertices
    (fun u acc ->
      List.fold_left (fun acc v -> if u < v then (u, v) :: acc else acc) acc t.adj.(u))
    t []
  |> List.sort compare

(* Shared construction: [labels] already deduplicated, [raw_edges] given as
   label pairs. Verifies tree-ness (|E| = |V|-1 and connected, no loops or
   duplicate edges). *)
let build (labels : string list) (raw_edges : (string * string) list) : t =
  let sorted = List.sort_uniq String.compare labels in
  if List.length sorted <> List.length labels then invalid "duplicate labels";
  (match sorted with [] -> invalid "empty vertex set" | _ -> ());
  let labels = Array.of_list sorted in
  let n = Array.length labels in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
  let resolve l =
    match Hashtbl.find_opt index l with
    | Some v -> v
    | None -> invalid "edge endpoint %S is not a vertex" l
  in
  if List.length raw_edges <> n - 1 then
    invalid "a tree on %d vertices needs %d edges, got %d" n (n - 1)
      (List.length raw_edges);
  let adj_sets = Array.make n [] in
  List.iter
    (fun (a, b) ->
      let u = resolve a and v = resolve b in
      if u = v then invalid "self-loop at %S" a;
      if List.mem v adj_sets.(u) then invalid "duplicate edge %S-%S" a b;
      adj_sets.(u) <- v :: adj_sets.(u);
      adj_sets.(v) <- u :: adj_sets.(v))
    raw_edges;
  let adj = Array.map (List.sort compare) adj_sets in
  (* Connectivity check by BFS from vertex 0; with exactly n-1 edges and no
     duplicates, connectivity implies acyclicity. *)
  let seen = Array.make n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  seen.(0) <- true;
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr count;
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      adj.(u)
  done;
  if !count <> n then invalid "graph is disconnected (%d of %d reachable)" !count n;
  { labels; adj; index }

let of_labeled_edges ?(isolated = []) edges =
  let labels =
    List.concat_map (fun (a, b) -> [ a; b ]) edges @ isolated
    |> List.sort_uniq String.compare
  in
  build labels edges

let singleton l = build [ l ] []

let of_parents ~labels parent =
  let n = Array.length labels in
  if Array.length parent <> n then invalid "of_parents: length mismatch";
  let roots = Array.to_list parent |> List.filter (fun p -> p = -1) in
  if List.length roots <> 1 then
    invalid "of_parents: expected exactly one root (-1), got %d" (List.length roots);
  let edges = ref [] in
  Array.iteri
    (fun i p ->
      if p <> -1 then begin
        if p < 0 || p >= n then invalid "of_parents: parent %d out of range" p;
        edges := (labels.(i), labels.(p)) :: !edges
      end)
    parent;
  build (Array.to_list labels) !edges

let equal a b =
  Array.length a.labels = Array.length b.labels
  && a.labels = b.labels
  && a.adj = b.adj

let pp_vertex t fmt v = Format.pp_print_string fmt t.labels.(v)

let pp fmt t =
  let pp_edge fmt (u, v) =
    Format.fprintf fmt "%s-%s" t.labels.(u) t.labels.(v)
  in
  match edges t with
  | [] -> Format.fprintf fmt "tree{%s}" t.labels.(0)
  | es ->
      Format.fprintf fmt "tree{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
           pp_edge)
        es
