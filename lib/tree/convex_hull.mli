(** Convex hulls in trees (tree convexity).

    The hull [⟨S⟩] of a vertex set [S] is the vertex set of the smallest
    connected subtree containing [S]; equivalently, [w ∈ ⟨S⟩] iff [w] lies
    on the path between some pair of vertices of [S] (Section 2 of the
    paper). Validity of AA on trees is membership of every honest output in
    the hull of honest inputs. *)

type t
(** A computed hull: supports O(1) membership and enumeration. *)

val compute : Rooted.t -> Labeled_tree.vertex list -> t
(** Hull of the given (non-empty) set of vertices. O(n). Raises
    [Invalid_argument] on the empty set: the hull of no inputs is not
    defined (an AA execution always has at least one honest party). *)

val mem : t -> Labeled_tree.vertex -> bool

val vertices : t -> Labeled_tree.vertex list
(** Hull members in increasing vertex (= label) order. *)

val size : t -> int

val generators : t -> Labeled_tree.vertex list
(** The set [S] the hull was computed from (deduplicated, sorted). *)

val subset : t -> t -> bool
(** [subset a b] — every vertex of [a] is in [b]. *)

val on_some_pair_path :
  Rooted.t -> Labeled_tree.vertex list -> Labeled_tree.vertex -> bool
(** Direct quadratic check of the defining property ([∃ u v ∈ S] with [w] on
    [P(u, v)]); used by tests as an oracle for {!compute}. *)
