module LT = Labeled_tree

let labels_of_size n =
  if n < 1 then invalid_arg "Generate: need at least one vertex";
  let width = max 3 (String.length (string_of_int (n - 1))) in
  Array.init n (fun i -> Printf.sprintf "v%0*d" width i)

let of_int_edges n edges =
  let labels = labels_of_size n in
  if n = 1 then LT.singleton labels.(0)
  else
    LT.of_labeled_edges (List.map (fun (u, v) -> (labels.(u), labels.(v))) edges)

let path n = of_int_edges n (List.init (n - 1) (fun i -> (i, i + 1)))

let star n = of_int_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let balanced ~arity ~depth =
  if arity < 1 || depth < 0 then invalid_arg "Generate.balanced";
  (* Number the vertices level by level; child j of vertex i is
     [i * arity + j + 1] as in an array-embedded heap. *)
  let rec size d = if d = 0 then 1 else 1 + (arity * size (d - 1)) in
  let n = size depth in
  let edges = ref [] in
  let rec emit v d =
    if d < depth then
      for j = 0 to arity - 1 do
        let c = (v * arity) + j + 1 in
        edges := (v, c) :: !edges;
        emit c (d + 1)
      done
  in
  emit 0 0;
  of_int_edges n !edges

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Generate.caterpillar";
  let n = spine * (1 + legs) in
  let edges = ref [] in
  for i = 0 to spine - 2 do
    edges := (i, i + 1) :: !edges
  done;
  let next = ref spine in
  for i = 0 to spine - 1 do
    for _ = 1 to legs do
      edges := (i, !next) :: !edges;
      incr next
    done
  done;
  of_int_edges n !edges

let spider ~legs ~leg_length =
  if legs < 0 || leg_length < 1 then invalid_arg "Generate.spider";
  let n = 1 + (legs * leg_length) in
  let edges = ref [] in
  let next = ref 1 in
  for _ = 1 to legs do
    let first = !next in
    edges := (0, first) :: !edges;
    incr next;
    for _ = 2 to leg_length do
      edges := (!next - 1, !next) :: !edges;
      incr next
    done
  done;
  of_int_edges n !edges

let broom ~handle ~bristles =
  if handle < 1 || bristles < 0 then invalid_arg "Generate.broom";
  let n = handle + bristles in
  let edges = ref [] in
  for i = 0 to handle - 2 do
    edges := (i, i + 1) :: !edges
  done;
  for j = 0 to bristles - 1 do
    edges := (handle - 1, handle + j) :: !edges
  done;
  of_int_edges n !edges

let random rng n =
  if n < 1 then invalid_arg "Generate.random";
  if n <= 2 then path n
  else begin
    let seq = Array.init (n - 2) (fun _ -> Aat_util.Rng.int rng n) in
    of_int_edges n (Prufer.decode seq)
  end

let random_of_diameter rng ~n ~diameter =
  if diameter < 1 || diameter > n - 1 then invalid_arg "Generate.random_of_diameter";
  if n > diameter + 1 && diameter < 2 then
    invalid_arg "Generate.random_of_diameter: cannot pad a diameter-1 tree";
  (* Backbone 0..diameter; each extra vertex attaches to a vertex whose
     eccentricity headroom allows it: attaching v at backbone position p or
     to a previously attached vertex of depth k keeps the diameter iff the
     new vertex's distance to both backbone ends stays <= diameter. We track
     each vertex's distance to both ends. *)
  let backbone = diameter + 1 in
  let dist_a = Array.make n 0 and dist_b = Array.make n 0 in
  let edges = ref [] in
  for i = 0 to backbone - 2 do
    edges := (i, i + 1) :: !edges
  done;
  for i = 0 to backbone - 1 do
    dist_a.(i) <- i;
    dist_b.(i) <- diameter - i
  done;
  let eligible = ref [] in
  for i = 0 to backbone - 1 do
    if dist_a.(i) + 1 <= diameter && dist_b.(i) + 1 <= diameter then
      eligible := i :: !eligible
  done;
  let eligible = ref (Array.of_list !eligible) in
  for v = backbone to n - 1 do
    if Array.length !eligible = 0 then
      invalid_arg "Generate.random_of_diameter: no room to attach";
    let host = Aat_util.Rng.pick rng !eligible in
    edges := (host, v) :: !edges;
    dist_a.(v) <- dist_a.(host) + 1;
    dist_b.(v) <- dist_b.(host) + 1;
    if dist_a.(v) + 1 <= diameter && dist_b.(v) + 1 <= diameter then
      eligible := Array.append !eligible [| v |]
  done;
  of_int_edges n !edges
