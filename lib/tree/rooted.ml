module LT = Labeled_tree

type t = {
  tree : LT.t;
  root : LT.vertex;
  parent : int array; (* -1 for root *)
  depth : int array;
  tin : int array; (* DFS-interval entry time *)
  tout : int array; (* DFS-interval exit time *)
  pre : LT.vertex array; (* preorder sequence *)
}

let tree t = t.tree

let root t = t.root

let make ?root tree =
  let n = LT.n_vertices tree in
  let root = match root with Some r -> r | None -> LT.root tree in
  let parent = Array.make n (-1)
  and depth = Array.make n 0
  and tin = Array.make n (-1)
  and tout = Array.make n (-1)
  and pre = Array.make n root in
  let clock = ref 0 in
  let preindex = ref 0 in
  (* Iterative DFS; children in label order. The stack holds (vertex,
     remaining neighbors). On first touch we stamp [tin] and preorder; when
     a vertex's neighbor list is exhausted we stamp [tout]. *)
  let stack = Stack.create () in
  let visit v =
    tin.(v) <- !clock;
    incr clock;
    pre.(!preindex) <- v;
    incr preindex;
    Stack.push (v, ref (LT.neighbors tree v)) stack
  in
  visit root;
  while not (Stack.is_empty stack) do
    let v, rest = Stack.top stack in
    match !rest with
    | [] ->
        ignore (Stack.pop stack);
        tout.(v) <- !clock;
        incr clock
    | u :: tl ->
        rest := tl;
        if tin.(u) = -1 then begin
          parent.(u) <- v;
          depth.(u) <- depth.(v) + 1;
          visit u
        end
  done;
  { tree; root; parent; depth; tin; tout; pre }

let parent t v = if t.parent.(v) = -1 then None else Some t.parent.(v)

let depth t v = t.depth.(v)

let children t v =
  List.filter (fun u -> t.parent.(u) = v) (LT.neighbors t.tree v)

let is_ancestor t a v = t.tin.(a) <= t.tin.(v) && t.tout.(v) <= t.tout.(a)

let in_subtree t ~root_of u = is_ancestor t root_of u

let preorder t = Array.copy t.pre

let subtree_vertices t v =
  (* Preorder is sorted by [tin], so the subtree of [v] is the contiguous
     block of preorder vertices whose interval nests in [v]'s. *)
  let n = Array.length t.pre in
  let rec start lo hi =
    (* binary search for the position of v in preorder *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.tin.(t.pre.(mid)) < t.tin.(v) then start (mid + 1) hi else start lo mid
  in
  let s = start 0 n in
  let acc = ref [] in
  let i = ref s in
  while !i < n && t.tout.(t.pre.(!i)) <= t.tout.(v) do
    acc := t.pre.(!i) :: !acc;
    incr i
  done;
  List.rev !acc

let path_to_root t v =
  let rec up v acc = if t.parent.(v) = -1 then v :: acc else up t.parent.(v) (v :: acc) in
  up v []
