(** Tree-family generators for workloads and experiments.

    Every generator produces a {!Labeled_tree.t} with zero-padded numeric
    labels ("v000", "v001", ...) so that label order equals vertex-id order
    and all derived structures are deterministic. Random generators take an
    explicit {!Aat_util.Rng.t}. *)

val path : int -> Labeled_tree.t
(** Path on [n >= 1] vertices; diameter [n - 1]. *)

val star : int -> Labeled_tree.t
(** Star with vertex 0 as the center and [n - 1] leaves; diameter 2 (for
    [n >= 3]). *)

val balanced : arity:int -> depth:int -> Labeled_tree.t
(** Complete [arity]-ary tree of the given depth (root at depth 0). *)

val caterpillar : spine:int -> legs:int -> Labeled_tree.t
(** Path of [spine] vertices with [legs] pendant leaves on each spine
    vertex. High diameter, high vertex count. *)

val spider : legs:int -> leg_length:int -> Labeled_tree.t
(** One center with [legs] disjoint paths of [leg_length] edges attached —
    the generalization of Figure 5's branching vertex. *)

val broom : handle:int -> bristles:int -> Labeled_tree.t
(** Path of [handle] vertices whose far end carries [bristles] extra
    leaves — trees where PathsFinder's final-edge ambiguity shows up. *)

val random : Aat_util.Rng.t -> int -> Labeled_tree.t
(** Uniformly random labeled tree on [n >= 1] vertices (random Prüfer
    sequence). *)

val random_of_diameter :
  Aat_util.Rng.t -> n:int -> diameter:int -> Labeled_tree.t
(** A random tree with exactly the requested diameter: a backbone path of
    [diameter] edges plus [n - diameter - 1] extra vertices attached at
    random positions without extending the diameter. Requires
    [1 <= diameter <= n - 1] and [diameter >= 2] when [n > diameter + 1]. *)

val labels_of_size : int -> string array
(** The canonical zero-padded labels used by all generators. *)
