(** Prüfer sequences: a bijection between labeled trees on [n >= 2] vertices
    and sequences in [\[0, n)^(n-2)].

    Used to (a) sample labeled trees uniformly at random and (b) enumerate
    {e all} labeled trees of a given small size — the exhaustive workloads
    of experiment E7. Vertices are the integers [0 .. n-1]; callers attach
    labels afterwards. *)

val decode : int array -> (int * int) list
(** [decode seq] is the edge list of the tree with Prüfer sequence [seq],
    on [n = Array.length seq + 2] vertices. Raises [Invalid_argument] if an
    entry is out of range. *)

val encode : n:int -> (int * int) list -> int array
(** Inverse of {!decode} for a tree given as an edge list on vertices
    [0 .. n-1]. *)

val enumerate : n:int -> (int * int) list Seq.t
(** All [n^(n-2)] labeled trees on [n] vertices, as edge lists, in
    lexicographic sequence order. [n >= 1]; for [n <= 2] yields the unique
    tree. Intended for [n <= 9] (at most ~5.7M trees at n = 9). *)

val count : n:int -> int
(** Cayley's formula [n^(n-2)] (with [count ~n:1 = count ~n:2 = 1]). *)
