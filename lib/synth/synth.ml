module Rng = Aat_util.Rng
module Json = Aat_telemetry.Jsonx
module Generate = Aat_tree.Generate
module Tree_aa = Aat_treeaa.Tree_aa
module Nr_baseline = Aat_treeaa.Nr_baseline
module Rounds = Aat_realaa.Rounds
module Fekete = Aat_lowerbound.Fekete
module Genome = Aat_adversary.Genome
module Campaign = Aat_campaign.Campaign
module Pool = Aat_campaign.Pool
module Runner = Aat_campaign.Runner
module Recorder = Aat_obs.Recorder
module Trace = Aat_obs.Trace

type target = {
  label : string;
  protocol : Campaign.Spec.protocol;
  engine : string;
  tree : Campaign.Spec.tree_family;
  n : int;
  t : int;
  inputs : Campaign.Spec.input_dist;
  d : float;
  rounds : int;
  iterations : int option;
  max_round : int;
  generic_only : bool;
}

(* The real-valued targets sit in the R <= t regime on purpose: with more
   iterations than Byzantine parties some iteration is necessarily clean
   and the final spread collapses to 0 (see Spoiler), leaving the search
   nothing to optimize. eps is tuned so the campaign's own round formulas
   land on R = 3 iterations for D = 1000. *)
let default_targets () =
  let real_eps = 40. in
  let real_iters = max 1 (Rounds.bdh_iterations ~range:1000. ~eps:real_eps) in
  let mid_eps = 125. in
  let mid_iters = max 1 (Rounds.halving_iterations ~range:1000. ~eps:mid_eps) in
  let tree = Generate.path 40 in
  let async_tree = Generate.path 12 in
  [
    {
      label = "treeaa";
      protocol = Campaign.Spec.Tree_aa;
      engine = "sync";
      tree = Campaign.Spec.Path_tree (Campaign.Spec.Exactly 40);
      n = 7;
      t = 2;
      inputs = Campaign.Spec.Random_vertices;
      d = 39.;
      rounds = max 1 (Tree_aa.rounds ~tree);
      iterations = None;
      max_round = max 1 (Tree_aa.rounds ~tree);
      generic_only = false;
    };
    {
      label = "realaa";
      protocol = Campaign.Spec.Real_aa { eps = real_eps };
      engine = "sync";
      tree = Campaign.Spec.Path_tree (Campaign.Spec.Exactly 2);
      n = 10;
      t = 3;
      inputs = Campaign.Spec.Linspace_reals 1000.;
      d = 1000.;
      rounds = 3 * real_iters;
      iterations = Some real_iters;
      max_round = 3 * real_iters;
      generic_only = false;
    };
    {
      label = "iterated-midpoint";
      protocol = Campaign.Spec.Iterated_midpoint { eps = mid_eps };
      engine = "sync";
      tree = Campaign.Spec.Path_tree (Campaign.Spec.Exactly 2);
      n = 10;
      t = 3;
      inputs = Campaign.Spec.Linspace_reals 1000.;
      d = 1000.;
      rounds = 3 * mid_iters;
      iterations = None;
      max_round = 3 * mid_iters;
      generic_only = false;
    };
    {
      label = "async-tree-aa";
      protocol = Campaign.Spec.Async_tree_aa;
      engine = "async";
      tree = Campaign.Spec.Path_tree (Campaign.Spec.Exactly 12);
      n = 6;
      t = 1;
      inputs = Campaign.Spec.Random_vertices;
      d = 11.;
      rounds = max 1 (3 * Nr_baseline.iterations_for async_tree);
      iterations = None;
      (* the async view counts delivery events; the crash gene's horizon
         matches the Strategies.crash clamp (Defaults.max_rounds) *)
      max_round = (4 * 6) + 64;
      generic_only = true;
    };
  ]

let target_for label =
  (* The requested name parses through the shared Spec_io protocol
     grammar — the same vocabulary as 'treeaa campaign --protocol' and
     the spec/record files — and the target is then matched structurally
     by protocol constructor, so synth can never accept a spelling the
     rest of the tooling rejects. The historical "treeaa" spelling is
     kept as an alias for "tree-aa"; eps is irrelevant to matching
     (targets pick their own). *)
  let label = if label = "treeaa" then "tree-aa" else label in
  let ( let* ) = Result.bind in
  let* protocol = Aat_obs.Spec_io.protocol_of_string ~eps:1.0 label in
  let wanted = Campaign.Spec.protocol_label protocol in
  match
    List.find_opt
      (fun t -> Campaign.Spec.protocol_label t.protocol = wanted)
      (default_targets ())
  with
  | Some t -> Ok t
  | None ->
      Error
        (Printf.sprintf "no synth target for protocol %s (have: %s)" wanted
           (String.concat ", " (List.map (fun t -> t.label) (default_targets ()))))

let spec_for target genome =
  {
    Campaign.Spec.name = "synth-" ^ target.label;
    protocol = target.protocol;
    tree = target.tree;
    n = Campaign.Spec.Exactly target.n;
    t_budget = Campaign.Spec.Fixed_t target.t;
    inputs = target.inputs;
    adversary = Campaign.Spec.Synth_genome genome;
    faults = Campaign.Spec.No_faults;
    watchdogs = true;
    repetitions = 1;
    (* informational: evaluation and replay key on the explicit task
       seed, not on the spec's own seed schedule *)
    base_seed = 0;
  }

type driver = Random_search | Hill_climb | Mu_plus_lambda

let driver_of_string = function
  | "random" -> Ok Random_search
  | "hill" -> Ok Hill_climb
  | "evolve" -> Ok Mu_plus_lambda
  | s -> Error (Printf.sprintf "unknown driver %S (have: random, hill, evolve)" s)

let driver_label = function
  | Random_search -> "random"
  | Hill_climb -> "hill"
  | Mu_plus_lambda -> "evolve"

type config = {
  driver : driver;
  generations : int;
  population : int;
  seed : int;
  workers : int;
}

type eval = {
  genome : Genome.t;
  fitness : float;
  spread : float;
  outcome : Runner.outcome;
  record : Recorder.t;
}

type gap = {
  measured : float;
  k_theory : float;
  ratio : float;
  envelope : float option;
  sound : bool;
}

type report = {
  target : target;
  config : config;
  champion : eval;
  gap : gap;
  evaluations : int;
  history : (int * float) list;
}

let last_convergence trace =
  match List.rev (Trace.convergence trace) with (_, s) :: _ -> s | [] -> 0.

let evaluate target ~task_seed genome =
  match Recorder.record (spec_for target genome) ~task_seed with
  | Error m -> Error m
  | Ok (record, outcome) ->
      let spread =
        match outcome.Runner.spread with
        | Some s -> s
        | None -> last_convergence record.Recorder.trace
      in
      let fitness =
        match outcome.Runner.status with
        | Runner.Errored _ -> Float.neg_infinity
        | Runner.Finished | Runner.Timed_out _ -> spread
      in
      Ok { genome; fitness; spread; outcome; record }

(* Total deterministic order: fitness descending, genome string ascending
   — the tie-break that makes champion selection independent of
   evaluation order (and hence of the worker count). *)
let compare_eval a b =
  match Float.compare b.fitness a.fitness with
  | 0 -> String.compare (Genome.to_string a.genome) (Genome.to_string b.genome)
  | c -> c

let rank evals = List.stable_sort compare_eval evals

let take k l = List.filteri (fun i _ -> i < k) l

(* ------------------------------------------------------------------ *)
(* search drivers *)

let search config target =
  let gens = max 1 config.generations in
  let pop = max 1 config.population in
  let rng = Rng.create config.seed in
  (* one task seed for the whole search: every genome faces the same
     tree, inputs and engine seed — paired comparison *)
  let task_seed = Campaign.split_seed ~base:config.seed ~index:0 in
  let generic_only = target.generic_only in
  let t = target.t and max_round = target.max_round in
  let fresh () = Genome.random ~generic_only rng ~t ~max_round in
  let mutate g = Genome.mutate ~generic_only rng ~t ~max_round g in
  (* explicit recursion: genome draws must happen in list order (List.init
     does not specify evaluation order) *)
  let draw k make =
    let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (make () :: acc) in
    go k []
  in
  let evaluations = ref 0 in
  let eval_batch genomes =
    let arr = Array.of_list genomes in
    let results =
      Pool.map ~workers:config.workers (Array.length arr) (fun i ->
          evaluate target ~task_seed arr.(i))
    in
    evaluations := !evaluations + Array.length arr;
    Array.to_list results
    |> List.filter_map (function Ok e -> Some e | Error _ -> None)
  in
  let best = ref None in
  let history = ref [] in
  let note gen evals =
    (match rank evals with
    | [] -> ()
    | e :: _ -> (
        match !best with
        | Some b when compare_eval b e <= 0 -> ()
        | _ -> best := Some e));
    match !best with
    | Some b -> history := (gen, b.fitness) :: !history
    | None ->
        failwith
          (Printf.sprintf "Synth.search: every evaluation of generation %d failed"
             gen)
  in
  (match config.driver with
  | Random_search ->
      for gen = 0 to gens - 1 do
        note gen (eval_batch (draw pop fresh))
      done
  | Hill_climb ->
      let seed_evals = eval_batch (draw 1 fresh) in
      note 0 seed_evals;
      let current = ref (match !best with Some b -> b | None -> assert false) in
      for gen = 1 to gens - 1 do
        let mutants = draw pop (fun () -> mutate !current.genome) in
        let evals = eval_batch mutants in
        note gen evals;
        (match rank evals with
        | e :: _ when compare_eval e !current < 0 -> current := e
        | _ -> ())
      done
  | Mu_plus_lambda ->
      let mu = max 1 (pop / 2) in
      let parents = ref (take mu (rank (eval_batch (draw pop fresh)))) in
      note 0 !parents;
      for gen = 1 to gens - 1 do
        let parr = Array.of_list !parents in
        let child () =
          let a = parr.(Rng.int rng (Array.length parr)) in
          let b = parr.(Rng.int rng (Array.length parr)) in
          mutate (Genome.crossover rng a.genome b.genome)
        in
        let offspring = eval_batch (draw pop child) in
        note gen offspring;
        parents := take mu (rank (!parents @ offspring))
      done);
  let champion = match !best with Some b -> b | None -> assert false in
  let k_theory =
    Fekete.k_bound ~n:target.n ~t:target.t ~r:target.rounds ~d:target.d
  in
  let envelope =
    Option.map
      (fun iterations ->
        (* the Lemma-5 spread envelope D t^R / (R^R (n-2t)^R), computed in
           log2 like bench's E1 check *)
        Float.pow 2.
          (Float.log2 target.d
          +. (float_of_int iterations
             *. (Float.log2 (float_of_int target.t)
                -. Float.log2 (float_of_int iterations)
                -. Float.log2 (float_of_int (target.n - (2 * target.t)))))))
      target.iterations
  in
  let measured = champion.spread in
  let sound =
    k_theory <= measured +. 1e-6
    && match envelope with Some e -> measured <= e +. 1e-6 | None -> true
  in
  let gap =
    {
      measured;
      k_theory;
      ratio = (if k_theory > 0. then measured /. k_theory else Float.infinity);
      envelope;
      sound;
    }
  in
  {
    target;
    config;
    champion;
    gap;
    evaluations = !evaluations;
    history = List.rev !history;
  }

(* ------------------------------------------------------------------ *)
(* gap report *)

let gap_json r =
  let fields =
    [
      ("target", Json.Str r.target.label);
      ("protocol", Json.Str (Campaign.Spec.protocol_label r.target.protocol));
      ("engine", Json.Str r.target.engine);
      ("n", Json.Num (float_of_int r.target.n));
      ("t", Json.Num (float_of_int r.target.t));
      ("d", Json.Num r.target.d);
      ("rounds", Json.Num (float_of_int r.target.rounds));
      ("driver", Json.Str (driver_label r.config.driver));
      ("generations", Json.Num (float_of_int r.config.generations));
      ("population", Json.Num (float_of_int r.config.population));
      ("seed", Json.Num (float_of_int r.config.seed));
      ("task_seed", Json.Num (float_of_int r.champion.record.Recorder.task_seed));
      ("evaluations", Json.Num (float_of_int r.evaluations));
      ("genome", Json.Str (Genome.to_string r.champion.genome));
      ( "grade",
        Json.Str (Aat_engine.Verdict.graded_label r.champion.outcome.Runner.grade)
      );
      ("measured", Json.Num r.gap.measured);
      ("k_theory", Json.Num r.gap.k_theory);
      ("ratio", Json.Num r.gap.ratio);
    ]
    @ (match r.gap.envelope with
      | Some e -> [ ("envelope", Json.Num e) ]
      | None -> [])
    @ [
        ("sound", Json.Bool r.gap.sound);
        ( "history",
          Json.Arr
            (List.map
               (fun (gen, fit) ->
                 Json.Arr [ Json.Num (float_of_int gen); Json.Num fit ])
               r.history) );
      ]
  in
  Json.Obj fields
