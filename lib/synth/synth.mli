(** Adversary synthesis: searching the genome space for worst-case
    executions, measured against the Fekete lower bound.

    The paper's lower bound says every [R]-round protocol admits an
    execution whose output spread is at least [K(R, D)]
    ({!Aat_lowerbound.Fekete.k_bound}); the hand-written adversaries in
    [lib/adversary] are single points in attack space, and nothing in the
    repository measured how close any execution actually gets. This
    module closes that loop: a search driver breeds
    {!Aat_adversary.Genome.t} strategies, evaluates each one as a
    single-cell campaign through the flight recorder (so every
    evaluation — champion included — is replayable bit-for-bit), and
    reports the best-found spread next to [K(R, D)].

    {b Fitness} is the measured honest-output spread after the target's
    fixed round budget [R], taken from the run's telemetry: the outcome's
    spread when the runner reports one (the real-valued protocols, and
    the async runner under synthesis), otherwise the last point of the
    recorded convergence curve. Maximizing spread at fixed [R] is
    maximizing spread-per-round, the quantity [K] bounds.

    {b Determinism}: all genome draws (initial population, mutation,
    crossover, parent selection) happen on the main thread from one
    SplitMix64 stream seeded by [config.seed]; every genome in a
    generation is evaluated under the {e same} task seed (paired
    comparison — same tree, inputs and engine seed for all candidates)
    through {!Aat_campaign.Pool.map}, whose results are order-stable for
    any worker count. Ties in fitness break on the genome's string form.
    A search is therefore bit-identical for any [workers]. *)

module Genome = Aat_adversary.Genome
module Campaign = Aat_campaign.Campaign
module Runner = Aat_campaign.Runner
module Recorder = Aat_obs.Recorder

(** What to attack: a concrete protocol instance with a declared input
    diameter and round budget — the [(R, D)] the gap report cites. *)
type target = {
  label : string;  (** CLI name: [treeaa], [realaa], ... *)
  protocol : Campaign.Spec.protocol;
  engine : string;  (** ["sync"] or ["async"] *)
  tree : Campaign.Spec.tree_family;
  n : int;
  t : int;
  inputs : Campaign.Spec.input_dist;
  d : float;
      (** input-space diameter: exact for linspace real inputs, the tree
          diameter (worst case over input draws) for vertex inputs *)
  rounds : int;
      (** the round budget [R] of [K(R, D)] — engine rounds for the
          synchronous targets, the equivalent synchronous schedule for
          the async target (whose engine counts delivery events) *)
  iterations : int option;
      (** gradecast iteration count, when the Lemma-5 envelope applies *)
  max_round : int;  (** horizon for the crash gene *)
  generic_only : bool;
      (** restrict the genome space to protocol-agnostic attacks (the
          NR-style wires do not speak gradecast) *)
}

val default_targets : unit -> target list
(** One target per protocol/engine the gap report covers: TreeAA
    (composed, sync), RealAA and iterated midpoint (real-valued, sync,
    in the nonzero-spread [R <= t] regime), and the native async tree
    protocol. Small sizes — a full search over a target takes seconds. *)

val target_for : string -> (target, string) result
(** Look a default target up by [label] ([treeaa]/[tree-aa] are
    synonyms). *)

val spec_for : target -> Genome.t -> Campaign.Spec.t
(** The single-cell campaign spec evaluating [genome] against [target]
    (watchdogs on, no injected faults, one repetition). *)

type driver = Random_search | Hill_climb | Mu_plus_lambda

val driver_of_string : string -> (driver, string) result
val driver_label : driver -> string

type config = {
  driver : driver;
  generations : int;  (** total generations, initial population included *)
  population : int;  (** genomes evaluated per generation *)
  seed : int;
  workers : int;  (** evaluation parallelism; never affects the result *)
}

(** One evaluated genome. [record] is the flight record of the very run
    that produced [fitness] — replaying it reproduces the evaluation
    bit-for-bit. *)
type eval = {
  genome : Genome.t;
  fitness : float;
  spread : float;
  outcome : Runner.outcome;
  record : Recorder.t;
}

(** Best-found spread against theory. [ratio = measured /. k_theory]
    quantifies how far above the information-theoretic floor the
    protocol's worst found execution sits; [sound] checks the bound is
    respected ([k_theory <= measured] up to float dust — [K] lower-bounds
    the worst case, so no execution may beat it the other way), and that
    the measured spread stays within the Lemma-5 envelope when one
    applies. *)
type gap = {
  measured : float;
  k_theory : float;
  ratio : float;
  envelope : float option;
  sound : bool;
}

type report = {
  target : target;
  config : config;
  champion : eval;
  gap : gap;
  evaluations : int;  (** total runs executed *)
  history : (int * float) list;  (** generation -> best fitness so far *)
}

val evaluate : target -> task_seed:int -> Genome.t -> (eval, string) result
(** One recorded run of [genome] against [target]; [Error] only if the
    spec fails to validate or instantiate (a harness bug, not a protocol
    failure — engine failures come back inside the outcome). *)

val search : config -> target -> report
(** Run the configured driver. Raises [Failure] if every evaluation of a
    generation errors (cannot happen for the default targets). *)

val gap_json : report -> Aat_telemetry.Jsonx.t
(** One JSON object per report, schema-stable for the committed
    [BENCH_GAP.json]: target parameters, champion genome (string form),
    measured/theoretical numbers, ratio, soundness, and the seeds needed
    to regenerate the champion's flight record. Worker count is excluded
    — the object is bit-identical for any [workers]. *)
