(* Deterministic wire-fault injection for the campaign service. See
   chaos.mli for the plan grammar and the determinism story. *)

module Rng = Aat_util.Rng

type t = {
  corrupt_frame : float;
  torn_write : float;
  drop_frame : float;
  dup_frame : float;
  stall_prob : float;
  stall_seconds : float;
  seed : int;
}

let none =
  {
    corrupt_frame = 0.;
    torn_write = 0.;
    drop_frame = 0.;
    dup_frame = 0.;
    stall_prob = 0.;
    stall_seconds = 0.;
    seed = 0;
  }

let is_none t = { t with seed = 0 } = none

(* ------------------------------------------------------------------ *)
(* the plan grammar *)

let clause_sep = function ';' | '+' -> true | _ -> false

let split_clauses s =
  let out = ref [] in
  let buf = Buffer.create 16 in
  String.iter
    (fun c ->
      if clause_sep c then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out |> List.rev
  |> List.filter (fun c -> c <> "")

let prob_of_string name s =
  match float_of_string_opt s with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | _ -> Error (Printf.sprintf "%s: probability %S not in [0,1]" name s)

let parse s =
  let s = String.trim s in
  if s = "" || s = "none" then Ok none
  else
    let ( let* ) = Result.bind in
    List.fold_left
      (fun acc clause ->
        let* t = acc in
        match String.split_on_char ':' clause with
        | [ "corrupt-frame"; p ] ->
            let* p = prob_of_string "corrupt-frame" p in
            Ok { t with corrupt_frame = p }
        | [ "torn-write"; p ] ->
            let* p = prob_of_string "torn-write" p in
            Ok { t with torn_write = p }
        | [ "drop-frame"; p ] ->
            let* p = prob_of_string "drop-frame" p in
            Ok { t with drop_frame = p }
        | [ "dup-frame"; p ] ->
            let* p = prob_of_string "dup-frame" p in
            Ok { t with dup_frame = p }
        | [ "stall"; p; secs ] -> (
            let* p = prob_of_string "stall" p in
            match float_of_string_opt secs with
            | Some d when d >= 0. ->
                Ok { t with stall_prob = p; stall_seconds = d }
            | _ -> Error (Printf.sprintf "stall: bad duration %S" secs))
        | [ "seed"; n ] -> (
            match int_of_string_opt n with
            | Some seed -> Ok { t with seed }
            | None -> Error (Printf.sprintf "seed: bad integer %S" n))
        | _ ->
            Error
              (Printf.sprintf
                 "unknown wire-chaos clause %S (want corrupt-frame:P, \
                  torn-write:P, drop-frame:P, dup-frame:P, stall:P:SECONDS \
                  or seed:N)"
                 clause))
      (Ok none) (split_clauses s)

let to_string t =
  if is_none t && t.seed = 0 then "none"
  else
    let clauses =
      List.filter_map Fun.id
        [
          (if t.corrupt_frame > 0. then
             Some (Printf.sprintf "corrupt-frame:%g" t.corrupt_frame)
           else None);
          (if t.torn_write > 0. then
             Some (Printf.sprintf "torn-write:%g" t.torn_write)
           else None);
          (if t.drop_frame > 0. then
             Some (Printf.sprintf "drop-frame:%g" t.drop_frame)
           else None);
          (if t.dup_frame > 0. then
             Some (Printf.sprintf "dup-frame:%g" t.dup_frame)
           else None);
          (if t.stall_prob > 0. then
             Some (Printf.sprintf "stall:%g:%g" t.stall_prob t.stall_seconds)
           else None);
          (if t.seed <> 0 then Some (Printf.sprintf "seed:%d" t.seed)
           else None);
        ]
    in
    if clauses = [] then "none" else String.concat "+" clauses

(* ------------------------------------------------------------------ *)
(* seeded per-endpoint streams *)

type role = Coordinator | Worker

type counts = {
  mutable corrupted : int;
  mutable torn : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable stalled : int;
}

type state = {
  plan : t;
  corrupt : Rng.t;
  torn : Rng.t;
  drop : Rng.t;
  dup : Rng.t;
  stall : Rng.t;
  sleep : float -> unit;
  counts : counts;
}

(* One independent SplitMix64 stream per fault kind per endpoint: which
   faults fire on endpoint A never perturbs the schedule on endpoint B,
   and within an endpoint every kind draws once per frame, so the
   schedules are a pure function of (plan seed, role, slot, incarnation,
   frame index) — independent of worker count and of which faults
   actually fired. *)
let endpoint ?(sleep = Unix.sleepf) plan ~role ~slot ~incarnation =
  let role_tag = match role with Coordinator -> 1 | Worker -> 2 in
  let stream kind =
    (* distinct odd multipliers decorrelate the lanes; Rng.create mixes
       the result through SplitMix64's full avalanche anyway *)
    Rng.create
      (plan.seed
      + (0x9E3779B1 * role_tag)
      + (0x85EBCA77 * (slot + 1))
      + (0xC2B2AE3D * (incarnation + 1))
      + (0x27D4EB2F * kind))
  in
  {
    plan;
    corrupt = stream 1;
    torn = stream 2;
    drop = stream 3;
    dup = stream 4;
    stall = stream 5;
    sleep;
    counts = { corrupted = 0; torn = 0; dropped = 0; duplicated = 0; stalled = 0 };
  }

let counts st = st.counts

let fires rng prob =
  (* always draw, so the stream position is frame-indexed *)
  let x = Rng.float rng 1.0 in
  prob > 0. && x < prob

let apply st frame ~write =
  let plan = st.plan in
  if is_none plan then write frame
  else begin
    let len = Bytes.length frame in
    let corrupt = fires st.corrupt plan.corrupt_frame in
    let corrupt_at = Rng.int st.corrupt (max 1 len) in
    let torn = fires st.torn plan.torn_write in
    let torn_at = 1 + Rng.int st.torn (max 1 (len - 1)) in
    let drop = fires st.drop plan.drop_frame in
    let dup = fires st.dup plan.dup_frame in
    let stall = fires st.stall plan.stall_prob in
    let k = st.counts in
    if corrupt then k.corrupted <- k.corrupted + 1;
    if torn then k.torn <- k.torn + 1;
    if drop then k.dropped <- k.dropped + 1;
    if dup then k.duplicated <- k.duplicated + 1;
    if stall then k.stalled <- k.stalled + 1;
    if not drop then begin
      if stall then st.sleep plan.stall_seconds;
      let mangled =
        if corrupt then begin
          let b = Bytes.copy frame in
          Bytes.set b corrupt_at
            (Char.chr (Char.code (Bytes.get b corrupt_at) lxor 0x55));
          b
        end
        else frame
      in
      if torn then write (Bytes.sub mangled 0 torn_at) else write mangled;
      (* a duplicate ships the intact frame: exercises the receiver's
         dedup path without conflating it with the corruption paths *)
      if dup then write frame
    end
  end
