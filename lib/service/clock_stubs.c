/* Monotonic clock for the campaign service's liveness timers.

   Unix.gettimeofday is wall time: an NTP step (or a sysadmin's date -s)
   jumps it by seconds, which the coordinator would read as a heartbeat
   or progress timeout and answer with SIGKILL. CLOCK_MONOTONIC cannot
   step backwards or forwards, only tick. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value aat_service_monotonic_now(value unit)
{
  (void)unit;
  return caml_copy_double((double)GetTickCount64() / 1000.0);
}

#else
#include <time.h>
#include <sys/time.h>

CAMLprim value aat_service_monotonic_now(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  /* last resort: wall time (pre-POSIX-2001 systems only) */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
  }
}
#endif
