(* The sharded multi-process campaign service. See service.mli for the
   protocol and the determinism contract; docs/CAMPAIGN.md for the
   design discussion and docs/ROBUSTNESS.md for the failure model. *)

module Json = Aat_telemetry.Jsonx
module Telemetry = Aat_telemetry.Telemetry
module Campaign = Aat_campaign.Campaign
module Runner = Aat_campaign.Runner
module Spec_io = Aat_obs.Spec_io
module Recorder = Aat_obs.Recorder
module Trace = Aat_obs.Trace
module Rng = Aat_util.Rng

type failure = { slot : int; restarts : int; cause : string }

type manifest = {
  tasks : int;
  computed : int;
  resumed : int;
  quarantined : int;
  requeued_shards : int;
  worker_restarts : int;
  protocol_errors : int;
  progress_kills : int;
  workers : int;
  shards : int;
  degraded : bool;
  failures : failure list;
}

type status = Completed | Halted of { cells_done : int }

type result = {
  status : status;
  spec : Campaign.Spec.t;
  cells : (Json.t, string) Stdlib.result option array;
  aggregate : Campaign.aggregate;
  manifest : manifest;
}

exception Service_error of string

(* ------------------------------------------------------------------ *)
(* messages *)

let num i = Json.Num (float_of_int i)

let msg_type j =
  match Json.member "type" j with Some (Json.Str s) -> s | _ -> ""

let hello_msg ~spec ~heartbeat_period =
  Json.Obj
    [
      ("type", Json.Str "hello");
      ("format_version", Json.Str Telemetry.format_version_string);
      ("heartbeat_period", Json.Num heartbeat_period);
      ("spec", Spec_io.to_json spec);
    ]

let ready_msg () =
  Json.Obj
    [
      ("type", Json.Str "ready");
      ("format_version", Json.Str Telemetry.format_version_string);
      ("pid", num (Unix.getpid ()));
    ]

let shard_msg tasks =
  Json.Obj
    [
      ("type", Json.Str "shard");
      ( "tasks",
        Json.Arr
          (List.map
             (fun (task, seed) ->
               Json.Obj [ ("task", num task); ("task_seed", num seed) ])
             tasks) );
    ]

let cell_msg ~task ~task_seed payload =
  Json.Obj
    ([ ("type", Json.Str "cell"); ("task", num task); ("task_seed", num task_seed) ]
    @
    match payload with
    | Ok o -> [ ("outcome", o) ]
    | Error e -> [ ("error", Json.Str e) ])

let protocol_error_msg detail =
  Json.Obj [ ("type", Json.Str "protocol-error"); ("detail", Json.Str detail) ]

let simple_msg ty = Json.Obj [ ("type", Json.Str ty) ]

(* Every frame write goes through the wire-chaos injector; with the
   empty plan this is exactly [Wire.write_frame]. *)
let chaos_send chaos fd j =
  let frame = Wire.encode (Json.to_string j) in
  Chaos.apply chaos frame ~write:(fun b -> Wire.write_all fd b 0 (Bytes.length b))

let int_field name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> v
  | None -> raise (Service_error (Printf.sprintf "missing %S field" name))

(* ------------------------------------------------------------------ *)
(* worker process *)

(* One campaign cell, exactly as [Campaign.run]'s task body computes it:
   instantiate from the task seed, run with the derived engine seed,
   catch instantiation/spec exceptions as [Error]. The worker ships the
   *rendered* outcome JSON — the coordinator re-renders it byte-for-byte
   (Jsonx round-trips exactly), which is what makes the distributed
   stream bit-identical to the in-process one. *)
let run_cell spec ~task_seed =
  try
    let runner, engine_seed = Campaign.instantiate spec ~task_seed in
    Ok (Campaign.json_of_outcome (runner.Runner.run ~seed:engine_seed ()))
  with exn -> Error (Printexc.to_string exn)

let worker_main ~chaos fd =
  let reader = Wire.Reader.create fd in
  let write_mutex = Mutex.create () in
  let locked_send j =
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () -> chaos_send chaos fd j)
  in
  (* A frame the checksum rejects means the coordinator's bytes were
     mangled in flight: report what we saw (best effort) and die — the
     coordinator requeues our shard remainder and respawns the slot. *)
  let protocol_failure detail =
    (try locked_send (protocol_error_msg detail) with _ -> ());
    Unix._exit 70
  in
  let inbox = Queue.create () in
  let rec next_msg () =
    if not (Queue.is_empty inbox) then Some (Queue.pop inbox)
    else
      match Wire.Reader.poll reader with
      | Wire.Reader.Eof -> None
      | Wire.Reader.Frames fs ->
          List.iter
            (function
              | Ok f -> Queue.add f inbox
              | Error e ->
                  protocol_failure
                    ("worker: " ^ Wire.Reader.error_to_string e))
            fs;
          next_msg ()
  in
  let parse payload =
    match Json.of_string payload with
    | Ok j -> j
    | Error e -> protocol_failure ("worker: frame is not JSON: " ^ e)
  in
  (* The handshake: the coordinator speaks first. *)
  let spec, heartbeat_period =
    match next_msg () with
    | None -> Unix._exit 0
    | Some payload -> (
        let j = parse payload in
        if msg_type j <> "hello" then
          raise (Service_error "worker: expected hello");
        (match Telemetry.check_format_version j with
        | Ok () -> ()
        | Error e -> raise (Service_error ("worker: " ^ e)));
        match Json.member "spec" j with
        | None -> raise (Service_error "worker: hello carries no spec")
        | Some sj -> (
            match Spec_io.of_json sj with
            | Error e -> raise (Service_error ("worker: bad spec: " ^ e))
            | Ok spec ->
                let period =
                  match
                    Option.bind (Json.member "heartbeat_period" j) Json.to_float
                  with
                  | Some p when p > 0. -> p
                  | _ -> 0.25
                in
                (spec, period)))
  in
  locked_send (ready_msg ());
  (* Heartbeats ride a background thread so a long cell never looks like
     a hung worker; the write mutex keeps frames atomic. A failed write
     means the coordinator is gone — nothing left to do. *)
  let _hb : Thread.t =
    Thread.create
      (fun () ->
        let rec loop () =
          Thread.delay heartbeat_period;
          match locked_send (simple_msg "heartbeat") with
          | () -> loop ()
          | exception _ -> Unix._exit 0
        in
        loop ())
      ()
  in
  let rec serve () =
    match next_msg () with
    | None -> Unix._exit 0 (* coordinator went away *)
    | Some payload ->
        let j = parse payload in
        (match msg_type j with
        | "shard" ->
            let tasks =
              match Option.bind (Json.member "tasks" j) Json.to_list with
              | Some l -> l
              | None -> raise (Service_error "worker: shard carries no tasks")
            in
            List.iter
              (fun tj ->
                let task = int_field "task" tj in
                let task_seed = int_field "task_seed" tj in
                let payload = run_cell spec ~task_seed in
                locked_send (cell_msg ~task ~task_seed payload))
              tasks;
            locked_send (simple_msg "shard-done")
        | "shutdown" -> Unix._exit 0
        | _ -> () (* forward-compatible: ignore unknown message types *));
        serve ()
  in
  serve ()

(* ------------------------------------------------------------------ *)
(* checkpoints *)

let cell_path dir task =
  Filename.concat dir (Printf.sprintf "cell-%04d.record.jsonl" task)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A checkpoint is a trace-less flight record — the same shape the
   campaign CLI's --record-dir writes and `treeaa replay` verifies. The
   temp-file + rename makes the checkpoint atomic: a cell file either
   holds a complete record or does not exist, however the coordinator
   dies. *)
let checkpoint ~dir ~spec ~task ~task_seed outcome =
  let engine_seed =
    match Option.bind (Json.member "seed" outcome) Json.to_int with
    | Some s -> s
    | None -> 0
  in
  let record =
    {
      Recorder.spec;
      task_seed;
      engine_seed;
      trace = Trace.empty;
      outcome = Some outcome;
      digest = Some (Recorder.digest_of_outcome_json outcome);
    }
  in
  let path = cell_path dir task in
  let tmp = path ^ ".tmp" in
  Recorder.write_file tmp record;
  Sys.rename tmp path

(* Untrusted files never block a resume: they are moved aside into
   <record-dir>/quarantine/ (numbered if the name is taken) for post
   mortem inspection, and their cells recomputed. *)
let quarantine_file ~dir path =
  let qdir = Filename.concat dir "quarantine" in
  mkdir_p qdir;
  let base = Filename.basename path in
  let rec fresh k =
    let candidate =
      if k = 0 then Filename.concat qdir base
      else Filename.concat qdir (Printf.sprintf "%s.%d" base k)
    in
    if Sys.file_exists candidate then fresh (k + 1) else candidate
  in
  Sys.rename path (fresh 0)

(* Restore finished cells from a previous (interrupted) invocation. A
   checkpoint is accepted only if it parses as a flight record, its
   embedded spec structurally equals ours, its task seed matches the
   schedule *and* its outcome still hashes to the embedded digest.
   Corrupt or truncated files — including stale `.tmp` files left by a
   SIGKILLed worker or coordinator — are quarantined and their cells
   recomputed; a drifted-spec record is simply left untrusted (another
   campaign may own it) and the cell recomputed over it. *)
let load_checkpoints ~dir ~spec ~seeds cells =
  let resumed = ref 0 in
  let quarantined = ref 0 in
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun entry ->
        if Filename.check_suffix entry ".tmp" then begin
          quarantine_file ~dir (Filename.concat dir entry);
          incr quarantined
        end)
      (Sys.readdir dir);
    Array.iteri
      (fun task seed ->
        let path = cell_path dir task in
        if Sys.file_exists path then
          match Recorder.read_file path with
          | Ok r
            when r.Recorder.spec = spec
                 && r.Recorder.task_seed = seed -> (
              match Recorder.verify_outcome r with
              | Ok () ->
                  cells.(task) <-
                    Some (Ok (Option.get r.Recorder.outcome));
                  incr resumed
              | Error _ ->
                  quarantine_file ~dir path;
                  incr quarantined)
          | Ok _ -> () (* drifted spec/seed: recompute, leave the file *)
          | Error _ ->
              quarantine_file ~dir path;
              incr quarantined)
      seeds
  end;
  (!resumed, !quarantined)

(* ------------------------------------------------------------------ *)
(* coordinator *)

type worker = {
  slot : int;
  mutable pid : int;
  mutable reader : Wire.Reader.t;
  mutable chaos : Chaos.state;  (* coordinator-side injector for this fd *)
  mutable shard : (int * int) list;  (* in-flight (task, task_seed) *)
  mutable last_seen : float;  (* monotonic: last byte from the worker *)
  mutable last_progress : float;  (* monotonic: last fresh cell / assign *)
  mutable restarts : int;
  mutable alive : bool;
  mutable respawn_at : float option;  (* monotonic backoff deadline *)
  mutable failure : string option;  (* permanent: respawn budget gone *)
  jitter : Rng.t;  (* seeded backoff jitter stream *)
}

let spawn ~spec ~heartbeat_period ~wire_chaos ~slot ~incarnation ~other_fds =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  match Unix.fork () with
  | 0 ->
      Unix.close parent_fd;
      List.iter (fun fd -> try Unix.close fd with _ -> ()) other_fds;
      let chaos =
        Chaos.endpoint wire_chaos ~role:Chaos.Worker ~slot ~incarnation
      in
      (try worker_main ~chaos child_fd with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close child_fd;
      let chaos =
        Chaos.endpoint wire_chaos ~role:Chaos.Coordinator ~slot ~incarnation
      in
      chaos_send chaos parent_fd (hello_msg ~spec ~heartbeat_period);
      (pid, parent_fd, chaos)

let chunks size l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let run ?(workers = 1) ?record_dir ?(heartbeat_period = 0.25)
    ?(heartbeat_timeout = 30.) ?(max_respawns = 2) ?(respawn_backoff = 0.5)
    ?progress_timeout ?(wire_chaos = Chaos.none) ?kill_worker_after_cells
    ?halt_after_cells spec =
  match Campaign.Spec.validate spec with
  | Error m -> Error ("Service.run: " ^ m)
  | Ok () -> (
      let workers = max 1 workers in
      let reps = spec.Campaign.Spec.repetitions in
      let seeds =
        Campaign.task_seeds ~base_seed:spec.Campaign.Spec.base_seed ~count:reps
      in
      let cells = Array.make reps None in
      let resumed, quarantined =
        match record_dir with
        | None -> (0, 0)
        | Some dir ->
            let r = load_checkpoints ~dir ~spec ~seeds cells in
            mkdir_p dir;
            r
      in
      let pending =
        List.filter (fun i -> cells.(i) = None) (List.init reps Fun.id)
      in
      let computed = ref 0 in
      let requeued_shards = ref 0 in
      let worker_restarts = ref 0 in
      let protocol_errors = ref 0 in
      let progress_kills = ref 0 in
      let finish ~status ~spawned ~shards ~failures =
        let aggregate =
          Array.fold_left
            (fun agg c ->
              match c with
              | Some p -> Campaign.fold_outcome_json agg p
              | None -> agg)
            Campaign.empty_aggregate cells
        in
        {
          status;
          spec;
          cells;
          aggregate;
          manifest =
            {
              tasks = reps;
              computed = !computed;
              resumed;
              quarantined;
              requeued_shards = !requeued_shards;
              worker_restarts = !worker_restarts;
              protocol_errors = !protocol_errors;
              progress_kills = !progress_kills;
              workers = spawned;
              shards;
              degraded = failures <> [];
              failures;
            };
        }
      in
      if pending = [] then
        Ok (finish ~status:Completed ~spawned:0 ~shards:0 ~failures:[])
      else begin
        (* Shards are contiguous task-index runs, sized so each worker
           sees several shards: failure loses at most one shard's worth
           of work, and the tail of the grid still load-balances. *)
        let shard_size = max 1 (List.length pending / (workers * 4)) in
        let shards =
          chunks shard_size (List.map (fun i -> (i, seeds.(i))) pending)
        in
        let n_shards = List.length shards in
        let n_spawn = min workers n_shards in
        let queue = ref shards in
        let kill_fired = ref false in
        let halted = ref false in
        let pool = ref [] in
        let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
        let restore_sigpipe () = Sys.set_signal Sys.sigpipe prev_sigpipe in
        let pool_fds () =
          List.filter_map
            (fun w -> if w.alive then Some (Wire.Reader.fd w.reader) else None)
            !pool
        in
        let spawn_into w =
          let pid, fd, chaos =
            spawn ~spec ~heartbeat_period ~wire_chaos ~slot:w.slot
              ~incarnation:w.restarts ~other_fds:(pool_fds ())
          in
          let now = Clock.now () in
          w.pid <- pid;
          w.reader <- Wire.Reader.create fd;
          w.chaos <- chaos;
          w.shard <- [];
          w.last_seen <- now;
          w.last_progress <- now;
          w.respawn_at <- None;
          w.alive <- true
        in
        let done_count () =
          Array.fold_left
            (fun acc c -> if c = None then acc else acc + 1)
            0 cells
        in
        let kill_all () =
          List.iter
            (fun w ->
              if w.alive then begin
                (try Unix.kill w.pid Sys.sigkill with _ -> ());
                (try Unix.close (Wire.Reader.fd w.reader) with _ -> ());
                (try ignore (Unix.waitpid [] w.pid) with _ -> ());
                w.alive <- false
              end)
            !pool
        in
        (* A dead worker's unfinished shard remainder goes back to the
           *front* of the queue (it holds the lowest outstanding task
           indices; survivors should close the gap before opening new
           work), and the slot is rescheduled with exponential backoff
           plus seeded jitter — or, once its budget is gone, marked as
           a permanent failure and the campaign degrades onto the
           surviving pool. *)
        let handle_death ~cause w =
          if w.alive then begin
            w.alive <- false;
            (try Unix.close (Wire.Reader.fd w.reader) with _ -> ());
            (try ignore (Unix.waitpid [] w.pid) with _ -> ());
            let remaining =
              List.filter (fun (t, _) -> cells.(t) = None) w.shard
            in
            w.shard <- [];
            if remaining <> [] then begin
              queue := remaining :: !queue;
              incr requeued_shards
            end;
            if not !halted then
              if w.restarts < max_respawns then begin
                let delay =
                  respawn_backoff
                  *. (2. ** float_of_int w.restarts)
                  *. (0.5 +. Rng.float w.jitter 1.0)
                in
                w.respawn_at <- Some (Clock.now () +. delay)
              end
              else w.failure <- Some cause
          end
        in
        (* A frame this worker sent that the checksum (or JSON layer)
           rejects poisons the whole connection: we cannot tell which
           later bytes to trust, so kill, requeue, respawn with backoff. *)
        let poison w detail =
          incr protocol_errors;
          (try Unix.kill w.pid Sys.sigkill with _ -> ());
          handle_death ~cause:("protocol error: " ^ detail) w
        in
        let safe_send w j =
          try chaos_send w.chaos (Wire.Reader.fd w.reader) j
          with
          | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
          ->
            handle_death ~cause:"worker connection lost on send" w
        in
        let handle_cell w j =
          let task = int_field "task" j in
          if task < 0 || task >= reps then
            raise (Service_error "cell task out of range");
          let payload =
            match Json.member "outcome" j with
            | Some o -> Ok o
            | None -> (
                match
                  Option.bind (Json.member "error" j) Json.to_str
                with
                | Some e -> Error e
                | None -> Error "malformed cell message")
          in
          w.last_progress <- Clock.now ();
          if cells.(task) = None then begin
            cells.(task) <- Some payload;
            incr computed;
            (match (record_dir, payload) with
            | Some dir, Ok o ->
                checkpoint ~dir ~spec ~task ~task_seed:seeds.(task) o
            | _ -> ());
            (match kill_worker_after_cells with
            | Some n when (not !kill_fired) && !computed >= n ->
                kill_fired := true;
                if w.alive then (try Unix.kill w.pid Sys.sigkill with _ -> ())
            | _ -> ());
            match halt_after_cells with
            | Some n when !computed >= n -> halted := true
            | _ -> ()
          end
        in
        let handle_msg w payload =
          match Json.of_string payload with
          | Error e -> poison w ("frame is not JSON: " ^ e)
          | Ok j -> (
              match msg_type j with
              | "cell" -> (
                  try handle_cell w j
                  with Service_error m -> poison w m)
              | "shard-done" ->
                  (* Cells the wire ate (dropped/garbled frames) are
                     detected here: the shard is acknowledged complete
                     but their slots are still empty — requeue them. *)
                  let missing =
                    List.filter (fun (t, _) -> cells.(t) = None) w.shard
                  in
                  if missing <> [] then begin
                    queue := missing :: !queue;
                    incr requeued_shards
                  end;
                  w.shard <- []
              | "protocol-error" ->
                  let detail =
                    match
                      Option.bind (Json.member "detail" j) Json.to_str
                    with
                    | Some d -> d
                    | None -> "unspecified"
                  in
                  poison w ("worker reported: " ^ detail)
              | "ready" | "heartbeat" -> ()
              | _ -> ())
        in
        let handle_readable w =
          match Wire.Reader.poll w.reader with
          | Wire.Reader.Eof -> handle_death ~cause:"worker died (eof)" w
          | Wire.Reader.Frames fs ->
              w.last_seen <- Clock.now ();
              let rec process = function
                | [] -> ()
                | _ when (not w.alive) || !halted -> ()
                | Ok payload :: rest ->
                    handle_msg w payload;
                    process rest
                | Error e :: _ ->
                    poison w (Wire.Reader.error_to_string e)
              in
              process fs
        in
        let assign w =
          match !queue with
          | [] -> ()
          | shard :: rest ->
              queue := rest;
              w.shard <- shard;
              w.last_progress <- Clock.now ();
              safe_send w (shard_msg shard)
        in
        let respawn_due now =
          List.iter
            (fun w ->
              match w.respawn_at with
              | Some at when now >= at ->
                  (* Fire only when there is queued work for the new
                     process; an expired deadline with an empty queue
                     stays armed, so capacity comes back the moment a
                     surviving worker dies with work in flight. *)
                  if !queue <> [] then begin
                    w.respawn_at <- None;
                    w.restarts <- w.restarts + 1;
                    incr worker_restarts;
                    spawn_into w
                  end
              | _ -> ())
            !pool
        in
        let next_respawn () =
          List.fold_left
            (fun acc w ->
              match (w.respawn_at, acc) with
              | None, acc -> acc
              | Some at, None -> Some at
              | Some at, Some best -> Some (min at best))
            None !pool
        in
        let hard_failure () =
          let causes =
            List.filter_map
              (fun w ->
                Option.map
                  (fun c ->
                    Printf.sprintf "slot %d (%d respawns): %s" w.slot
                      w.restarts c)
                  w.failure)
              !pool
          in
          raise
            (Service_error
               ("all worker slots exhausted their respawn budgets with work \
                 outstanding — "
               ^ String.concat "; " causes))
        in
        let serve () =
          for slot = 0 to n_spawn - 1 do
            let w =
              {
                slot;
                pid = 0;
                reader = Wire.Reader.create Unix.stdin (* replaced *);
                chaos =
                  Chaos.endpoint Chaos.none ~role:Chaos.Coordinator ~slot
                    ~incarnation:0 (* replaced *);
                shard = [];
                last_seen = 0.;
                last_progress = 0.;
                restarts = 0;
                alive = false;
                respawn_at = None;
                failure = None;
                jitter =
                  Rng.create
                    (spec.Campaign.Spec.base_seed + (0x2545F491 * (slot + 1)));
              }
            in
            pool := !pool @ [ w ];
            spawn_into w
          done;
          List.iter assign !pool;
          while (not !halted) && done_count () < reps do
            respawn_due (Clock.now ());
            (match List.filter (fun w -> w.alive) !pool with
            | [] -> (
                (* No live worker. If a respawn is scheduled, sleep up
                   to its deadline; otherwise every slot's budget is
                   spent with work outstanding — the hard failure. *)
                match next_respawn () with
                | Some at ->
                    let wait = at -. Clock.now () in
                    if wait > 0. then
                      Unix.sleepf (min heartbeat_period (max 0.005 wait))
                | None -> hard_failure ())
            | alive -> (
                let fds = List.map (fun w -> Wire.Reader.fd w.reader) alive in
                match Unix.select fds [] [] heartbeat_period with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | readable, _, _ ->
                    List.iter
                      (fun w ->
                        if
                          w.alive
                          && List.mem (Wire.Reader.fd w.reader) readable
                        then handle_readable w)
                      alive;
                    let now = Clock.now () in
                    List.iter
                      (fun w ->
                        if w.alive then
                          if now -. w.last_seen > heartbeat_timeout then begin
                            (try Unix.kill w.pid Sys.sigkill with _ -> ());
                            handle_death ~cause:"heartbeat timeout" w
                          end
                          else
                            match progress_timeout with
                            | Some limit
                              when w.shard <> []
                                   && now -. w.last_progress > limit ->
                                (* Livelocked: heartbeats arrive but no
                                   cells ship (e.g. a shard frame the
                                   wire ate). Kill and requeue. *)
                                incr progress_kills;
                                (try Unix.kill w.pid Sys.sigkill
                                 with _ -> ());
                                handle_death
                                  ~cause:
                                    "progress timeout (heartbeats but no \
                                     cells)"
                                  w
                            | _ -> ())
                      !pool));
            if not !halted then
              List.iter
                (fun w -> if w.alive && w.shard = [] then assign w)
                !pool
          done;
          let failures () =
            List.filter_map
              (fun w ->
                Option.map
                  (fun cause ->
                    { slot = w.slot; restarts = w.restarts; cause })
                  w.failure)
              !pool
          in
          if !halted then begin
            kill_all ();
            finish
              ~status:(Halted { cells_done = done_count () })
              ~spawned:n_spawn ~shards:n_shards ~failures:(failures ())
          end
          else begin
            List.iter
              (fun w -> if w.alive then safe_send w (simple_msg "shutdown"))
              !pool;
            List.iter
              (fun w ->
                if w.alive then begin
                  (try Unix.close (Wire.Reader.fd w.reader) with _ -> ());
                  (try ignore (Unix.waitpid [] w.pid) with _ -> ());
                  w.alive <- false
                end)
              !pool;
            finish ~status:Completed ~spawned:n_spawn ~shards:n_shards
              ~failures:(failures ())
          end
        in
        match serve () with
        | result ->
            restore_sigpipe ();
            Ok result
        | exception exn ->
            kill_all ();
            restore_sigpipe ();
            Error
              (match exn with
              | Service_error m -> m
              | exn -> Printexc.to_string exn)
      end)

(* ------------------------------------------------------------------ *)
(* result stream + manifest *)

let jsonl_lines r =
  (match r.status with
  | Completed -> ()
  | Halted _ ->
      invalid_arg "Service.jsonl_lines: halted campaign (resume it first)");
  let reps = r.spec.Campaign.Spec.repetitions in
  let seeds =
    Campaign.task_seeds ~base_seed:r.spec.Campaign.Spec.base_seed ~count:reps
  in
  (Campaign.json_header r.spec
  :: List.init reps (fun i ->
         match r.cells.(i) with
         | Some payload ->
             Campaign.json_of_task_line ~task:i ~task_seed:seeds.(i) payload
         | None -> assert false (* Completed means every cell is present *)))
  @ [ Campaign.json_footer r.aggregate ]

let jsonl_string r =
  String.concat ""
    (List.map (fun line -> Json.to_string line ^ "\n") (jsonl_lines r))

let write_jsonl oc r =
  List.iter
    (fun line ->
      output_string oc (Json.to_string line);
      output_char oc '\n')
    (jsonl_lines r);
  flush oc

let manifest_json r =
  let m = r.manifest in
  Json.Obj
    [
      ("type", Json.Str "campaign-manifest");
      ( "status",
        match r.status with
        | Completed -> Json.Str "completed"
        | Halted { cells_done } ->
            Json.Obj [ ("halted_at_cells", num cells_done) ] );
      ("tasks", num m.tasks);
      ("computed", num m.computed);
      ("resumed", num m.resumed);
      ("quarantined", num m.quarantined);
      ("requeued_shards", num m.requeued_shards);
      ("worker_restarts", num m.worker_restarts);
      ("protocol_errors", num m.protocol_errors);
      ("progress_kills", num m.progress_kills);
      ("workers", num m.workers);
      ("shards", num m.shards);
      ("degraded", Json.Bool m.degraded);
      ( "failures",
        Json.Arr
          (List.map
             (fun (f : failure) ->
               Json.Obj
                 [
                   ("slot", num f.slot);
                   ("restarts", num f.restarts);
                   ("cause", Json.Str f.cause);
                 ])
             m.failures) );
    ]
