(* The sharded multi-process campaign service. See service.mli for the
   protocol and the determinism contract; docs/CAMPAIGN.md for the
   design discussion and docs/ROBUSTNESS.md for the failure model. *)

module Json = Aat_telemetry.Jsonx
module Telemetry = Aat_telemetry.Telemetry
module Campaign = Aat_campaign.Campaign
module Runner = Aat_campaign.Runner
module Spec_io = Aat_obs.Spec_io
module Recorder = Aat_obs.Recorder
module Trace = Aat_obs.Trace
module Metrics = Aat_obs.Metrics
module Span = Aat_obs.Span
module Rng = Aat_util.Rng

type failure = { slot : int; restarts : int; cause : string }

type manifest = {
  tasks : int;
  computed : int;
  resumed : int;
  quarantined : int;
  requeued_shards : int;
  worker_restarts : int;
  protocol_errors : int;
  progress_kills : int;
  workers : int;
  shards : int;
  degraded : bool;
  failures : failure list;
}

type status = Completed | Halted of { cells_done : int }

type result = {
  status : status;
  spec : Campaign.Spec.t;
  cells : (Json.t, string) Stdlib.result option array;
  aggregate : Campaign.aggregate;
  manifest : manifest;
}

exception Service_error of string

(* ------------------------------------------------------------------ *)
(* messages *)

let num i = Json.Num (float_of_int i)

let msg_type j =
  match Json.member "type" j with Some (Json.Str s) -> s | _ -> ""

(* The observability fields ([slot], [incarnation], [metrics], [trace],
   [trace_parent]) are optional and only present when the coordinator
   wants piggybacked telemetry: an old worker ignores them (unknown
   fields are skipped), and with observability off the hello bytes are
   exactly the pre-observability ones. *)
let hello_msg ~spec ~heartbeat_period ~slot ~incarnation ~want_metrics
    ~trace_parent =
  Json.Obj
    ([
       ("type", Json.Str "hello");
       ("format_version", Json.Str Telemetry.format_version_string);
       ("heartbeat_period", Json.Num heartbeat_period);
       ("spec", Spec_io.to_json spec);
     ]
    @ (if want_metrics || trace_parent <> None then
         [ ("slot", num slot); ("incarnation", num incarnation) ]
       else [])
    @ (if want_metrics then [ ("metrics", Json.Bool true) ] else [])
    @
    match trace_parent with
    | Some p -> [ ("trace", Json.Bool true); ("trace_parent", num p) ]
    | None -> [])

let ready_msg () =
  Json.Obj
    [
      ("type", Json.Str "ready");
      ("format_version", Json.Str Telemetry.format_version_string);
      ("pid", num (Unix.getpid ()));
    ]

let shard_msg ?span tasks =
  Json.Obj
    ([
       ("type", Json.Str "shard");
       ( "tasks",
         Json.Arr
           (List.map
              (fun (task, seed) ->
                Json.Obj [ ("task", num task); ("task_seed", num seed) ])
              tasks) );
     ]
    @
    (* the coordinator's shard-span id: parent for the worker's cell
       spans; absent when tracing is off *)
    match span with
    | Some s -> [ ("span", num s) ]
    | None -> [])

let cell_msg ~task ~task_seed payload =
  Json.Obj
    ([ ("type", Json.Str "cell"); ("task", num task); ("task_seed", num task_seed) ]
    @
    match payload with
    | Ok o -> [ ("outcome", o) ]
    | Error e -> [ ("error", Json.Str e) ])

let protocol_error_msg detail =
  Json.Obj [ ("type", Json.Str "protocol-error"); ("detail", Json.Str detail) ]

let simple_msg ty = Json.Obj [ ("type", Json.Str ty) ]

(* Every frame write goes through the wire-chaos injector; with the
   empty plan this is exactly [Wire.write_frame]. *)
let chaos_send chaos fd j =
  let frame = Wire.encode (Json.to_string j) in
  Chaos.apply chaos frame ~write:(fun b -> Wire.write_all fd b 0 (Bytes.length b))

let int_field name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some v -> v
  | None -> raise (Service_error (Printf.sprintf "missing %S field" name))

let opt_int_field name j = Option.bind (Json.member name j) Json.to_int

(* ------------------------------------------------------------------ *)
(* endpoint telemetry: one socket end's wire-reader and chaos-injector
   counters as snapshot series, labeled with who is counting *)

let endpoint_series ~labels reader chaos =
  let open Metrics.Snapshot in
  let {
    Wire.Reader.frames;
    bytes;
    garbage_events;
    garbage_bytes;
    crc_mismatches;
    oversized;
    resyncs;
  } =
    Wire.Reader.stats reader
  in
  let { Chaos.corrupted; torn; dropped; duplicated; stalled } =
    Chaos.counts chaos
  in
  let c name v = series ~labels name (Counter (float_of_int v)) in
  [
    c "wire_frames_total" frames;
    c "wire_bytes_total" bytes;
    c "wire_garbage_events_total" garbage_events;
    c "wire_garbage_bytes_total" garbage_bytes;
    c "wire_crc_mismatch_total" crc_mismatches;
    c "wire_oversized_total" oversized;
    c "wire_resyncs_total" resyncs;
  ]
  @ List.filter_map
      (fun (kind, v) ->
        if v > 0 then
          Some
            (series
               ~labels:(("kind", kind) :: labels)
               "chaos_faults_injected_total"
               (Counter (float_of_int v)))
        else None)
      [
        ("corrupted", corrupted);
        ("torn", torn);
        ("dropped", dropped);
        ("duplicated", duplicated);
        ("stalled", stalled);
      ]

(* ------------------------------------------------------------------ *)
(* worker process *)

(* One campaign cell, exactly as [Campaign.run]'s task body computes it:
   instantiate from the task seed, run with the derived engine seed,
   catch instantiation/spec exceptions as [Error]. The worker ships the
   *rendered* outcome JSON — the coordinator re-renders it byte-for-byte
   (Jsonx round-trips exactly), which is what makes the distributed
   stream bit-identical to the in-process one. *)
let run_cell ?(profile = false) spec ~task_seed =
  try
    let runner, engine_seed = Campaign.instantiate spec ~task_seed in
    Ok (runner.Runner.run ~seed:engine_seed ~profile ())
  with exn -> Error (Printexc.to_string exn)

(* Render an outcome exactly as [Campaign.run]'s task body would have:
   the profile block (only present when tracing asked for stage spans)
   is stripped first, so the shipped bytes are identical whether or not
   the worker profiled the run. *)
let render_cell outcome =
  Campaign.json_of_outcome { outcome with Runner.profile = None }

let worker_main ~chaos fd =
  let reader = Wire.Reader.create fd in
  let write_mutex = Mutex.create () in
  let locked_send j =
    Mutex.lock write_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock write_mutex)
      (fun () -> chaos_send chaos fd j)
  in
  (* A frame the checksum rejects means the coordinator's bytes were
     mangled in flight: report what we saw (best effort) and die — the
     coordinator requeues our shard remainder and respawns the slot. *)
  let protocol_failure detail =
    (try locked_send (protocol_error_msg detail) with _ -> ());
    Unix._exit 70
  in
  let inbox = Queue.create () in
  let rec next_msg () =
    if not (Queue.is_empty inbox) then Some (Queue.pop inbox)
    else
      match Wire.Reader.poll reader with
      | Wire.Reader.Eof -> None
      | Wire.Reader.Frames fs ->
          List.iter
            (function
              | Ok f -> Queue.add f inbox
              | Error e ->
                  protocol_failure
                    ("worker: " ^ Wire.Reader.error_to_string e))
            fs;
          next_msg ()
  in
  let parse payload =
    match Json.of_string payload with
    | Ok j -> j
    | Error e -> protocol_failure ("worker: frame is not JSON: " ^ e)
  in
  (* The handshake: the coordinator speaks first. *)
  let spec, heartbeat_period, slot, incarnation, want_metrics, trace_parent =
    match next_msg () with
    | None -> Unix._exit 0
    | Some payload -> (
        let j = parse payload in
        if msg_type j <> "hello" then
          raise (Service_error "worker: expected hello");
        (match Telemetry.check_format_version j with
        | Ok () -> ()
        | Error e -> raise (Service_error ("worker: " ^ e)));
        match Json.member "spec" j with
        | None -> raise (Service_error "worker: hello carries no spec")
        | Some sj -> (
            match Spec_io.of_json sj with
            | Error e -> raise (Service_error ("worker: bad spec: " ^ e))
            | Ok spec ->
                let period =
                  match
                    Option.bind (Json.member "heartbeat_period" j) Json.to_float
                  with
                  | Some p when p > 0. -> p
                  | _ -> 0.25
                in
                let slot = Option.value (opt_int_field "slot" j) ~default:0 in
                let incarnation =
                  Option.value (opt_int_field "incarnation" j) ~default:0
                in
                let want_metrics =
                  match Json.member "metrics" j with
                  | Some (Json.Bool b) -> b
                  | _ -> false
                in
                let trace_parent =
                  match Json.member "trace" j with
                  | Some (Json.Bool true) -> opt_int_field "trace_parent" j
                  | _ -> None
                in
                (spec, period, slot, incarnation, want_metrics, trace_parent)))
  in
  let tracer =
    if trace_parent = None then Span.null
    else Span.create ~pid:(Unix.getpid ()) ~clock:Clock.now ()
  in
  Span.process_name tracer
    (Printf.sprintf "treeaa worker slot %d (incarnation %d)" slot incarnation);
  let cells_run = ref 0 in
  let hb_seq = ref 0 in
  let metric_labels =
    [
      ("incarnation", string_of_int incarnation);
      ("role", "worker");
      ("slot", string_of_int slot);
    ]
  in
  (* Cumulative counters since worker start: a heartbeat eaten (or
     duplicated) by the wire loses (or repeats) nothing, because the
     coordinator replaces its per-slot view rather than summing deltas. *)
  let piggyback_snapshot () =
    Metrics.Snapshot.of_list
      (Metrics.Snapshot.series ~labels:metric_labels "worker_cells_total"
         (Metrics.Snapshot.Counter (float_of_int !cells_run))
      :: endpoint_series ~labels:metric_labels reader chaos)
  in
  let heartbeat_msg () =
    incr hb_seq;
    Json.Obj
      ([ ("type", Json.Str "heartbeat") ]
      @ (if want_metrics || trace_parent <> None then
           [ ("seq", num !hb_seq) ]
         else [])
      @ (if want_metrics then
           [ ("metrics", Metrics.Snapshot.to_json (piggyback_snapshot ())) ]
         else [])
      @
      match Span.drain tracer with
      | [] -> []
      | evs -> [ ("spans", Json.Arr evs) ])
  in
  locked_send (ready_msg ());
  (* Heartbeats ride a background thread so a long cell never looks like
     a hung worker; the write mutex keeps frames atomic. A failed write
     means the coordinator is gone — nothing left to do. *)
  let _hb : Thread.t =
    Thread.create
      (fun () ->
        let rec loop () =
          Thread.delay heartbeat_period;
          match locked_send (heartbeat_msg ()) with
          | () -> loop ()
          | exception _ -> Unix._exit 0
        in
        loop ())
      ()
  in
  let rec serve () =
    match next_msg () with
    | None -> Unix._exit 0 (* coordinator went away *)
    | Some payload ->
        let j = parse payload in
        (match msg_type j with
        | "shard" ->
            let tasks =
              match Option.bind (Json.member "tasks" j) Json.to_list with
              | Some l -> l
              | None -> raise (Service_error "worker: shard carries no tasks")
            in
            let shard_span = opt_int_field "span" j in
            let tracing = not (Span.is_null tracer) in
            List.iter
              (fun tj ->
                let task = int_field "task" tj in
                let task_seed = int_field "task_seed" tj in
                let t0 = Clock.now () in
                (* profile only when tracing wants the stage breakdown;
                   the rendered bytes are profile-free either way *)
                let result = run_cell ~profile:tracing spec ~task_seed in
                let t1 = Clock.now () in
                (match result with
                | Ok o when tracing ->
                    let cell_id =
                      Span.complete tracer ?parent:shard_span ~cat:"cell"
                        ~args:[ ("task", num task) ]
                        ~name:(Printf.sprintf "cell %d" task)
                        ~start:t0 ~stop:t1 ()
                    in
                    (match o.Runner.profile with
                    | Some p ->
                        (* reconstruct the stage intervals from their
                           measured durations, laid end to end *)
                        let s1 =
                          t0 +. (float_of_int p.Runner.setup_ns /. 1e9)
                        in
                        let s2 =
                          s1 +. (float_of_int p.Runner.rounds_ns /. 1e9)
                        in
                        let s3 =
                          s2 +. (float_of_int p.Runner.checks_ns /. 1e9)
                        in
                        let stage name start stop =
                          ignore
                            (Span.complete tracer ~parent:cell_id
                               ~cat:"stage" ~name ~start ~stop ())
                        in
                        stage "setup" t0 s1;
                        stage "rounds" s1 s2;
                        stage "checks" s2 s3
                    | None -> ())
                | _ -> ());
                incr cells_run;
                let payload = Result.map render_cell result in
                locked_send (cell_msg ~task ~task_seed payload))
              tasks;
            locked_send (simple_msg "shard-done")
        | "shutdown" ->
            (* flush what the last heartbeat missed before exiting *)
            (try
               if want_metrics || trace_parent <> None then
                 locked_send (heartbeat_msg ())
             with _ -> ());
            Unix._exit 0
        | _ -> () (* forward-compatible: ignore unknown message types *));
        serve ()
  in
  serve ()

(* ------------------------------------------------------------------ *)
(* checkpoints *)

let cell_path dir task =
  Filename.concat dir (Printf.sprintf "cell-%04d.record.jsonl" task)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A checkpoint is a trace-less flight record — the same shape the
   campaign CLI's --record-dir writes and `treeaa replay` verifies. The
   temp-file + rename makes the checkpoint atomic: a cell file either
   holds a complete record or does not exist, however the coordinator
   dies. *)
let checkpoint ~dir ~spec ~task ~task_seed outcome =
  let engine_seed =
    match Option.bind (Json.member "seed" outcome) Json.to_int with
    | Some s -> s
    | None -> 0
  in
  let record =
    {
      Recorder.spec;
      task_seed;
      engine_seed;
      trace = Trace.empty;
      outcome = Some outcome;
      digest = Some (Recorder.digest_of_outcome_json outcome);
    }
  in
  let path = cell_path dir task in
  let tmp = path ^ ".tmp" in
  Recorder.write_file tmp record;
  Sys.rename tmp path

(* Untrusted files never block a resume: they are moved aside into
   <record-dir>/quarantine/ (numbered if the name is taken) for post
   mortem inspection, and their cells recomputed. *)
let quarantine_file ~dir path =
  let qdir = Filename.concat dir "quarantine" in
  mkdir_p qdir;
  let base = Filename.basename path in
  let rec fresh k =
    let candidate =
      if k = 0 then Filename.concat qdir base
      else Filename.concat qdir (Printf.sprintf "%s.%d" base k)
    in
    if Sys.file_exists candidate then fresh (k + 1) else candidate
  in
  Sys.rename path (fresh 0)

(* Restore finished cells from a previous (interrupted) invocation. A
   checkpoint is accepted only if it parses as a flight record, its
   embedded spec structurally equals ours, its task seed matches the
   schedule *and* its outcome still hashes to the embedded digest.
   Corrupt or truncated files — including stale `.tmp` files left by a
   SIGKILLed worker or coordinator — are quarantined and their cells
   recomputed; a drifted-spec record is simply left untrusted (another
   campaign may own it) and the cell recomputed over it. *)
let load_checkpoints ~dir ~spec ~seeds cells =
  let resumed = ref 0 in
  let quarantined = ref 0 in
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun entry ->
        if Filename.check_suffix entry ".tmp" then begin
          quarantine_file ~dir (Filename.concat dir entry);
          incr quarantined
        end)
      (Sys.readdir dir);
    Array.iteri
      (fun task seed ->
        let path = cell_path dir task in
        if Sys.file_exists path then
          match Recorder.read_file path with
          | Ok r
            when r.Recorder.spec = spec
                 && r.Recorder.task_seed = seed -> (
              match Recorder.verify_outcome r with
              | Ok () ->
                  cells.(task) <-
                    Some (Ok (Option.get r.Recorder.outcome));
                  incr resumed
              | Error _ ->
                  quarantine_file ~dir path;
                  incr quarantined)
          | Ok _ -> () (* drifted spec/seed: recompute, leave the file *)
          | Error _ ->
              quarantine_file ~dir path;
              incr quarantined)
      seeds
  end;
  (!resumed, !quarantined)

(* ------------------------------------------------------------------ *)
(* coordinator *)

type worker = {
  slot : int;
  mutable pid : int;
  mutable reader : Wire.Reader.t;
  mutable chaos : Chaos.state;  (* coordinator-side injector for this fd *)
  mutable incarnation : int;  (* incarnation reader/chaos belong to *)
  mutable shard : (int * int) list;  (* in-flight (task, task_seed) *)
  mutable last_seen : float;  (* monotonic: last byte from the worker *)
  mutable last_heartbeat : float;  (* monotonic: last heartbeat frame *)
  mutable last_progress : float;  (* monotonic: last fresh cell / assign *)
  mutable restarts : int;
  mutable alive : bool;
  mutable respawn_at : float option;  (* monotonic backoff deadline *)
  mutable failure : string option;  (* permanent: respawn budget gone *)
  mutable hb_seq : int;  (* highest piggyback seq seen (dedup) *)
  mutable view : Metrics.Snapshot.t;  (* latest piggybacked snapshot *)
  mutable shard_span : Span.span option;
  mutable backoff_span : Span.span option;
  jitter : Rng.t;  (* seeded backoff jitter stream *)
}

let spawn ~spec ~heartbeat_period ~wire_chaos ~slot ~incarnation ~other_fds
    ~want_metrics ~trace_parent =
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  match Unix.fork () with
  | 0 ->
      Unix.close parent_fd;
      List.iter (fun fd -> try Unix.close fd with _ -> ()) other_fds;
      let chaos =
        Chaos.endpoint wire_chaos ~role:Chaos.Worker ~slot ~incarnation
      in
      (try worker_main ~chaos child_fd with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close child_fd;
      let chaos =
        Chaos.endpoint wire_chaos ~role:Chaos.Coordinator ~slot ~incarnation
      in
      chaos_send chaos parent_fd
        (hello_msg ~spec ~heartbeat_period ~slot ~incarnation ~want_metrics
           ~trace_parent);
      (pid, parent_fd, chaos)

let chunks size l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 l

let run ?(workers = 1) ?record_dir ?(heartbeat_period = 0.25)
    ?(heartbeat_timeout = 30.) ?(max_respawns = 2) ?(respawn_backoff = 0.5)
    ?progress_timeout ?(wire_chaos = Chaos.none) ?metrics ?status_out
    ?trace_events ?kill_worker_after_cells ?halt_after_cells spec =
  match Campaign.Spec.validate spec with
  | Error m -> Error ("Service.run: " ^ m)
  | Ok () -> (
      let workers = max 1 workers in
      let reps = spec.Campaign.Spec.repetitions in
      let seeds =
        Campaign.task_seeds ~base_seed:spec.Campaign.Spec.base_seed ~count:reps
      in
      (* the deterministic registry: the caller's, or a private one so
         --status-out works on its own; Metrics.null when nobody asked *)
      let registry =
        match metrics with
        | Some m -> m
        | None -> if status_out <> None then Metrics.create () else Metrics.null
      in
      let want_metrics =
        status_out <> None || not (Metrics.is_null registry)
      in
      let tracer =
        match trace_events with
        | Some _ -> Span.create ~pid:(Unix.getpid ()) ~clock:Clock.now ()
        | None -> Span.null
      in
      let observing = want_metrics || not (Span.is_null tracer) in
      let started_at = Clock.now () in
      let cells = Array.make reps None in
      let resumed, quarantined =
        match record_dir with
        | None -> (0, 0)
        | Some dir ->
            let r = load_checkpoints ~dir ~spec ~seeds cells in
            mkdir_p dir;
            r
      in
      (* resumed checkpoints count exactly like freshly computed cells:
         the deterministic snapshot is a function of the cell set, not
         of which process (or which run) computed each cell *)
      Array.iter
        (function
          | Some payload -> Metrics.record_cell registry payload
          | None -> ())
        cells;
      let pending =
        List.filter (fun i -> cells.(i) = None) (List.init reps Fun.id)
      in
      let computed = ref 0 in
      let requeued_shards = ref 0 in
      let worker_restarts = ref 0 in
      let protocol_errors = ref 0 in
      let progress_kills = ref 0 in
      (* Atomically rewrite the status JSON + its Prometheus twin, and
         the cumulative Chrome trace file. [extra_series] carries the
         per-slot gauges and the aggregated worker endpoint views; the
         deterministic registry and the coordinator's operational
         counters are folded in here. Timing-derived series are outside
         the determinism contract. *)
      let write_observability ~label ~workers_json ~extra_series () =
        (match status_out with
        | None -> ()
        | Some path ->
            let now = Clock.now () in
            let cells_done =
              Array.fold_left
                (fun acc c -> if c = None then acc else acc + 1)
                0 cells
            in
            let operational =
              let open Metrics.Snapshot in
              let c name v = series name (Counter (float_of_int v)) in
              [
                series "service_cells_done" (Gauge (float_of_int cells_done));
                c "service_cells_computed_total" !computed;
                c "service_cells_resumed_total" resumed;
                series "service_cells_total" (Gauge (float_of_int reps));
                series "service_elapsed_seconds" (Gauge (now -. started_at));
                c "service_progress_kills_total" !progress_kills;
                c "service_protocol_errors_total" !protocol_errors;
                c "service_quarantined_total" quarantined;
                c "service_requeued_shards_total" !requeued_shards;
                c "service_worker_restarts_total" !worker_restarts;
              ]
            in
            let snap =
              Metrics.Snapshot.merge (Metrics.snapshot registry)
                (Metrics.Snapshot.of_list (operational @ extra_series))
            in
            let j =
              Json.Obj
                [
                  ("type", Json.Str "service-status");
                  ( "format_version",
                    Json.Str Telemetry.format_version_string );
                  ("name", Json.Str spec.Campaign.Spec.name);
                  ("status", Json.Str label);
                  ("cells_total", num reps);
                  ("cells_done", num cells_done);
                  ("computed", num !computed);
                  ("resumed", num resumed);
                  ("quarantined", num quarantined);
                  ("requeued_shards", num !requeued_shards);
                  ("worker_restarts", num !worker_restarts);
                  ("protocol_errors", num !protocol_errors);
                  ("progress_kills", num !progress_kills);
                  ("elapsed_seconds", Json.Num (now -. started_at));
                  ("workers", Json.Arr workers_json);
                  ("metrics", Metrics.Snapshot.to_json snap);
                ]
            in
            Metrics.write_atomic ~path (Json.to_string j ^ "\n");
            Metrics.write_atomic ~path:(path ^ ".prom")
              (Metrics.Snapshot.to_prometheus snap));
        match trace_events with
        | None -> ()
        | Some path ->
            Metrics.write_atomic ~path
              (Json.to_string (Span.to_json tracer) ^ "\n")
      in
      let finish ~status ~spawned ~shards ~failures =
        let aggregate =
          Array.fold_left
            (fun agg c ->
              match c with
              | Some p -> Campaign.fold_outcome_json agg p
              | None -> agg)
            Campaign.empty_aggregate cells
        in
        {
          status;
          spec;
          cells;
          aggregate;
          manifest =
            {
              tasks = reps;
              computed = !computed;
              resumed;
              quarantined;
              requeued_shards = !requeued_shards;
              worker_restarts = !worker_restarts;
              protocol_errors = !protocol_errors;
              progress_kills = !progress_kills;
              workers = spawned;
              shards;
              degraded = failures <> [];
              failures;
            };
        }
      in
      if pending = [] then begin
        if observing then
          write_observability ~label:"completed" ~workers_json:[]
            ~extra_series:[] ();
        Ok (finish ~status:Completed ~spawned:0 ~shards:0 ~failures:[])
      end
      else begin
        (* Shards are contiguous task-index runs, sized so each worker
           sees several shards: failure loses at most one shard's worth
           of work, and the tail of the grid still load-balances. *)
        let shard_size = max 1 (List.length pending / (workers * 4)) in
        let shards =
          chunks shard_size (List.map (fun i -> (i, seeds.(i))) pending)
        in
        let n_shards = List.length shards in
        let n_spawn = min workers n_shards in
        let queue = ref shards in
        let kill_fired = ref false in
        let halted = ref false in
        let pool = ref [] in
        let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
        let restore_sigpipe () = Sys.set_signal Sys.sigpipe prev_sigpipe in
        let pool_fds () =
          List.filter_map
            (fun w -> if w.alive then Some (Wire.Reader.fd w.reader) else None)
            !pool
        in
        (* endpoint counters of dead incarnations (coordinator side) and
           final piggybacked views of dead workers: incarnation labels
           keep the keys disjoint, so the merge is a union *)
        let retired = ref ([] : Metrics.Snapshot.t) in
        let root_id = ref 0 in
        let parent_opt () = if !root_id = 0 then None else Some !root_id in
        let coord_labels w =
          [
            ("incarnation", string_of_int w.incarnation);
            ("role", "coordinator");
            ("slot", string_of_int w.slot);
          ]
        in
        let spawn_into w =
          if observing && w.pid <> 0 then
            retired :=
              Metrics.Snapshot.merge !retired
                (Metrics.Snapshot.of_list
                   (endpoint_series ~labels:(coord_labels w) w.reader w.chaos));
          let pid, fd, chaos =
            spawn ~spec ~heartbeat_period ~wire_chaos ~slot:w.slot
              ~incarnation:w.restarts ~other_fds:(pool_fds ()) ~want_metrics
              ~trace_parent:
                (if Span.is_null tracer then None else Some !root_id)
          in
          let now = Clock.now () in
          w.pid <- pid;
          w.reader <- Wire.Reader.create fd;
          w.chaos <- chaos;
          w.incarnation <- w.restarts;
          w.shard <- [];
          w.last_seen <- now;
          w.last_heartbeat <- now;
          w.last_progress <- now;
          w.respawn_at <- None;
          w.hb_seq <- 0;
          w.view <- [];
          w.alive <- true
        in
        let done_count () =
          Array.fold_left
            (fun acc c -> if c = None then acc else acc + 1)
            0 cells
        in
        let kill_all () =
          List.iter
            (fun w ->
              if w.alive then begin
                (try Unix.kill w.pid Sys.sigkill with _ -> ());
                (try Unix.close (Wire.Reader.fd w.reader) with _ -> ());
                (try ignore (Unix.waitpid [] w.pid) with _ -> ());
                w.alive <- false
              end)
            !pool
        in
        (* A dead worker's unfinished shard remainder goes back to the
           *front* of the queue (it holds the lowest outstanding task
           indices; survivors should close the gap before opening new
           work), and the slot is rescheduled with exponential backoff
           plus seeded jitter — or, once its budget is gone, marked as
           a permanent failure and the campaign degrades onto the
           surviving pool. *)
        let handle_death ~cause w =
          if w.alive then begin
            w.alive <- false;
            (try Unix.close (Wire.Reader.fd w.reader) with _ -> ());
            (try ignore (Unix.waitpid [] w.pid) with _ -> ());
            let remaining =
              List.filter (fun (t, _) -> cells.(t) = None) w.shard
            in
            w.shard <- [];
            (match w.shard_span with
            | Some s ->
                Span.close tracer s;
                w.shard_span <- None
            | None -> ());
            (* the dead incarnation's last piggybacked view is final *)
            if observing && w.view <> [] then begin
              retired := Metrics.Snapshot.merge !retired w.view;
              w.view <- []
            end;
            if remaining <> [] then begin
              queue := remaining :: !queue;
              incr requeued_shards
            end;
            if not !halted then
              if w.restarts < max_respawns then begin
                let delay =
                  respawn_backoff
                  *. (2. ** float_of_int w.restarts)
                  *. (0.5 +. Rng.float w.jitter 1.0)
                in
                w.respawn_at <- Some (Clock.now () +. delay);
                if not (Span.is_null tracer) then
                  w.backoff_span <-
                    Some
                      (Span.enter tracer ~tid:(w.slot + 1)
                         ?parent:(parent_opt ()) ~cat:"backoff"
                         ~args:[ ("cause", Json.Str cause) ]
                         (Printf.sprintf "backoff before restart %d"
                            (w.restarts + 1)))
              end
              else w.failure <- Some cause
          end
        in
        (* A frame this worker sent that the checksum (or JSON layer)
           rejects poisons the whole connection: we cannot tell which
           later bytes to trust, so kill, requeue, respawn with backoff. *)
        let poison w detail =
          incr protocol_errors;
          Span.instant tracer ~tid:(w.slot + 1)
            ~args:[ ("detail", Json.Str detail) ]
            "protocol-error";
          (try Unix.kill w.pid Sys.sigkill with _ -> ());
          handle_death ~cause:("protocol error: " ^ detail) w
        in
        let safe_send w j =
          try chaos_send w.chaos (Wire.Reader.fd w.reader) j
          with
          | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
          ->
            handle_death ~cause:"worker connection lost on send" w
        in
        let handle_cell w j =
          let task = int_field "task" j in
          if task < 0 || task >= reps then
            raise (Service_error "cell task out of range");
          let payload =
            match Json.member "outcome" j with
            | Some o -> Ok o
            | None -> (
                match
                  Option.bind (Json.member "error" j) Json.to_str
                with
                | Some e -> Error e
                | None -> Error "malformed cell message")
          in
          w.last_progress <- Clock.now ();
          if cells.(task) = None then begin
            cells.(task) <- Some payload;
            incr computed;
            Metrics.record_cell registry payload;
            (match (record_dir, payload) with
            | Some dir, Ok o ->
                checkpoint ~dir ~spec ~task ~task_seed:seeds.(task) o
            | _ -> ());
            (match kill_worker_after_cells with
            | Some n when (not !kill_fired) && !computed >= n ->
                kill_fired := true;
                if w.alive then (try Unix.kill w.pid Sys.sigkill with _ -> ())
            | _ -> ());
            match halt_after_cells with
            | Some n when !computed >= n -> halted := true
            | _ -> ()
          end
        in
        (* A heartbeat may piggyback the worker's cumulative metric
           snapshot and its drained trace events. The seq field dedups
           wire-duplicated heartbeats (dup-frame chaos), so spans are
           imported exactly once; the metric snapshot is cumulative, so
           replacing the view is idempotent anyway. *)
        let handle_heartbeat w j =
          w.last_heartbeat <- Clock.now ();
          let seq = Option.value (opt_int_field "seq" j) ~default:0 in
          if seq > w.hb_seq then begin
            w.hb_seq <- seq;
            (match Json.member "metrics" j with
            | Some mj -> (
                match Metrics.Snapshot.of_json mj with
                | Ok snap -> w.view <- snap
                | Error _ -> ())
            | None -> ());
            match Option.bind (Json.member "spans" j) Json.to_list with
            | Some evs -> Span.import tracer evs
            | None -> ()
          end
        in
        let handle_msg w payload =
          match Json.of_string payload with
          | Error e -> poison w ("frame is not JSON: " ^ e)
          | Ok j -> (
              match msg_type j with
              | "cell" -> (
                  try handle_cell w j
                  with Service_error m -> poison w m)
              | "shard-done" ->
                  (* Cells the wire ate (dropped/garbled frames) are
                     detected here: the shard is acknowledged complete
                     but their slots are still empty — requeue them. *)
                  let missing =
                    List.filter (fun (t, _) -> cells.(t) = None) w.shard
                  in
                  if missing <> [] then begin
                    queue := missing :: !queue;
                    incr requeued_shards
                  end;
                  w.shard <- [];
                  (match w.shard_span with
                  | Some s ->
                      Span.close tracer s;
                      w.shard_span <- None
                  | None -> ())
              | "protocol-error" ->
                  let detail =
                    match
                      Option.bind (Json.member "detail" j) Json.to_str
                    with
                    | Some d -> d
                    | None -> "unspecified"
                  in
                  poison w ("worker reported: " ^ detail)
              | "heartbeat" -> handle_heartbeat w j
              | "ready" -> ()
              | _ -> ())
        in
        let handle_readable w =
          match Wire.Reader.poll w.reader with
          | Wire.Reader.Eof -> handle_death ~cause:"worker died (eof)" w
          | Wire.Reader.Frames fs ->
              w.last_seen <- Clock.now ();
              let rec process = function
                | [] -> ()
                | _ when (not w.alive) || !halted -> ()
                | Ok payload :: rest ->
                    handle_msg w payload;
                    process rest
                | Error e :: _ ->
                    poison w (Wire.Reader.error_to_string e)
              in
              process fs
        in
        let assign w =
          match !queue with
          | [] -> ()
          | shard :: rest ->
              queue := rest;
              w.shard <- shard;
              w.last_progress <- Clock.now ();
              let span =
                if Span.is_null tracer then None
                else begin
                  let lo =
                    List.fold_left (fun a (t, _) -> min a t) max_int shard
                  in
                  let hi =
                    List.fold_left (fun a (t, _) -> max a t) min_int shard
                  in
                  let s =
                    Span.enter tracer ~tid:(w.slot + 1)
                      ?parent:(parent_opt ()) ~cat:"shard"
                      (Printf.sprintf "shard cells %d-%d" lo hi)
                  in
                  w.shard_span <- Some s;
                  Some (Span.id s)
                end
              in
              safe_send w (shard_msg ?span shard)
        in
        let respawn_due now =
          List.iter
            (fun w ->
              match w.respawn_at with
              | Some at when now >= at ->
                  (* Fire only when there is queued work for the new
                     process; an expired deadline with an empty queue
                     stays armed, so capacity comes back the moment a
                     surviving worker dies with work in flight. *)
                  if !queue <> [] then begin
                    w.respawn_at <- None;
                    (match w.backoff_span with
                    | Some s ->
                        Span.close tracer s;
                        w.backoff_span <- None
                    | None -> ());
                    w.restarts <- w.restarts + 1;
                    incr worker_restarts;
                    spawn_into w
                  end
              | _ -> ())
            !pool
        in
        let next_respawn () =
          List.fold_left
            (fun acc w ->
              match (w.respawn_at, acc) with
              | None, acc -> acc
              | Some at, None -> Some at
              | Some at, Some best -> Some (min at best))
            None !pool
        in
        let hard_failure () =
          let causes =
            List.filter_map
              (fun w ->
                Option.map
                  (fun c ->
                    Printf.sprintf "slot %d (%d respawns): %s" w.slot
                      w.restarts c)
                  w.failure)
              !pool
          in
          raise
            (Service_error
               ("all worker slots exhausted their respawn budgets with work \
                 outstanding — "
               ^ String.concat "; " causes))
        in
        (* the live per-slot gauges + every endpoint's wire/chaos view:
           current incarnations read live, dead ones come from [retired] *)
        let pool_extra now =
          !retired
          @ List.concat_map
              (fun w ->
                let open Metrics.Snapshot in
                let sl = [ ("slot", string_of_int w.slot) ] in
                [
                  series ~labels:sl "service_backoff_remaining_seconds"
                    (Gauge
                       (match w.respawn_at with
                       | Some at -> Float.max 0. (at -. now)
                       | None -> 0.));
                  series ~labels:sl "service_heartbeat_lag_seconds"
                    (Gauge
                       (if w.alive then Float.max 0. (now -. w.last_heartbeat)
                        else 0.));
                  series ~labels:sl "service_progress_lag_seconds"
                    (Gauge
                       (if w.alive then Float.max 0. (now -. w.last_progress)
                        else 0.));
                  series ~labels:sl "service_shard_inflight"
                    (Gauge (float_of_int (List.length w.shard)));
                  series ~labels:sl "service_worker_alive"
                    (Gauge (if w.alive then 1. else 0.));
                  series ~labels:sl "service_worker_restarts"
                    (Gauge (float_of_int w.restarts));
                ]
                @ w.view
                @
                if w.pid <> 0 then
                  endpoint_series ~labels:(coord_labels w) w.reader w.chaos
                else [])
              !pool
        in
        let pool_workers_json now =
          List.map
            (fun w ->
              Json.Obj
                [
                  ("slot", num w.slot);
                  ("pid", num w.pid);
                  ("alive", Json.Bool w.alive);
                  ("restarts", num w.restarts);
                  ("incarnation", num w.incarnation);
                  ( "heartbeat_lag_seconds",
                    Json.Num
                      (if w.alive then Float.max 0. (now -. w.last_heartbeat)
                       else 0.) );
                  ( "progress_lag_seconds",
                    Json.Num
                      (if w.alive then Float.max 0. (now -. w.last_progress)
                       else 0.) );
                  ( "backoff_remaining_seconds",
                    Json.Num
                      (match w.respawn_at with
                      | Some at -> Float.max 0. (at -. now)
                      | None -> 0.) );
                  ("shard_inflight", num (List.length w.shard));
                  ( "failure",
                    match w.failure with
                    | Some c -> Json.Str c
                    | None -> Json.Null );
                ])
            !pool
        in
        let write_live ~label () =
          if observing then begin
            let now = Clock.now () in
            write_observability ~label ~workers_json:(pool_workers_json now)
              ~extra_series:(pool_extra now) ()
          end
        in
        let serve () =
          Span.process_name tracer "treeaa coordinator";
          root_id :=
            Span.id
              (Span.enter tracer ~tid:0 ~cat:"campaign"
                 spec.Campaign.Spec.name);
          for slot = 0 to n_spawn - 1 do
            let w =
              {
                slot;
                pid = 0;
                reader = Wire.Reader.create Unix.stdin (* replaced *);
                chaos =
                  Chaos.endpoint Chaos.none ~role:Chaos.Coordinator ~slot
                    ~incarnation:0 (* replaced *);
                incarnation = 0;
                shard = [];
                last_seen = 0.;
                last_heartbeat = 0.;
                last_progress = 0.;
                restarts = 0;
                alive = false;
                respawn_at = None;
                failure = None;
                hb_seq = 0;
                view = [];
                shard_span = None;
                backoff_span = None;
                jitter =
                  Rng.create
                    (spec.Campaign.Spec.base_seed + (0x2545F491 * (slot + 1)));
              }
            in
            pool := !pool @ [ w ];
            spawn_into w
          done;
          List.iter assign !pool;
          write_live ~label:"running" ();
          let last_status = ref (Clock.now ()) in
          while (not !halted) && done_count () < reps do
            respawn_due (Clock.now ());
            (match List.filter (fun w -> w.alive) !pool with
            | [] -> (
                (* No live worker. If a respawn is scheduled, sleep up
                   to its deadline; otherwise every slot's budget is
                   spent with work outstanding — the hard failure. *)
                match next_respawn () with
                | Some at ->
                    let wait = at -. Clock.now () in
                    if wait > 0. then
                      Unix.sleepf (min heartbeat_period (max 0.005 wait))
                | None -> hard_failure ())
            | alive -> (
                let fds = List.map (fun w -> Wire.Reader.fd w.reader) alive in
                match Unix.select fds [] [] heartbeat_period with
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | readable, _, _ ->
                    List.iter
                      (fun w ->
                        if
                          w.alive
                          && List.mem (Wire.Reader.fd w.reader) readable
                        then handle_readable w)
                      alive;
                    let now = Clock.now () in
                    List.iter
                      (fun w ->
                        if w.alive then
                          if now -. w.last_seen > heartbeat_timeout then begin
                            Span.instant tracer ~tid:(w.slot + 1)
                              "heartbeat-timeout kill";
                            (try Unix.kill w.pid Sys.sigkill with _ -> ());
                            handle_death ~cause:"heartbeat timeout" w
                          end
                          else
                            match progress_timeout with
                            | Some limit
                              when w.shard <> []
                                   && now -. w.last_progress > limit ->
                                (* Livelocked: heartbeats arrive but no
                                   cells ship (e.g. a shard frame the
                                   wire ate). Kill and requeue. *)
                                incr progress_kills;
                                Span.instant tracer ~tid:(w.slot + 1)
                                  "progress-timeout kill";
                                (try Unix.kill w.pid Sys.sigkill
                                 with _ -> ());
                                handle_death
                                  ~cause:
                                    "progress timeout (heartbeats but no \
                                     cells)"
                                  w
                            | _ -> ())
                      !pool));
            if not !halted then
              List.iter
                (fun w -> if w.alive && w.shard = [] then assign w)
                !pool;
            if observing && Clock.now () -. !last_status >= heartbeat_period
            then begin
              last_status := Clock.now ();
              write_live ~label:"running" ()
            end
          done;
          let failures () =
            List.filter_map
              (fun w ->
                Option.map
                  (fun cause ->
                    { slot = w.slot; restarts = w.restarts; cause })
                  w.failure)
              !pool
          in
          if !halted then begin
            kill_all ();
            finish
              ~status:(Halted { cells_done = done_count () })
              ~spawned:n_spawn ~shards:n_shards ~failures:(failures ())
          end
          else begin
            List.iter
              (fun w -> if w.alive then safe_send w (simple_msg "shutdown"))
              !pool;
            (* workers flush a final piggyback heartbeat on shutdown:
               drain it (bounded) so the last snapshot and spans land in
               the final status/trace files, then reap on EOF *)
            if observing then begin
              let deadline = Clock.now () +. (2. *. heartbeat_period) +. 0.5 in
              let rec drain_final () =
                let live = List.filter (fun w -> w.alive) !pool in
                if live <> [] && Clock.now () < deadline then begin
                  let fds =
                    List.map (fun w -> Wire.Reader.fd w.reader) live
                  in
                  (match Unix.select fds [] [] 0.05 with
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                  | readable, _, _ ->
                      List.iter
                        (fun w ->
                          if
                            w.alive
                            && List.mem (Wire.Reader.fd w.reader) readable
                          then
                            match Wire.Reader.poll w.reader with
                            | Wire.Reader.Eof ->
                                (try Unix.close (Wire.Reader.fd w.reader)
                                 with _ -> ());
                                (try ignore (Unix.waitpid [] w.pid)
                                 with _ -> ());
                                w.alive <- false
                            | Wire.Reader.Frames fs ->
                                List.iter
                                  (function
                                    | Ok p -> (
                                        match Json.of_string p with
                                        | Ok j
                                          when msg_type j = "heartbeat" ->
                                            handle_heartbeat w j
                                        | _ -> ())
                                    | Error _ -> ())
                                  fs)
                        live);
                  drain_final ()
                end
              in
              drain_final ()
            end;
            List.iter
              (fun w ->
                if w.alive then begin
                  (try Unix.close (Wire.Reader.fd w.reader) with _ -> ());
                  (try ignore (Unix.waitpid [] w.pid) with _ -> ());
                  w.alive <- false
                end)
              !pool;
            finish ~status:Completed ~spawned:n_spawn ~shards:n_shards
              ~failures:(failures ())
          end
        in
        match serve () with
        | result ->
            restore_sigpipe ();
            if observing then begin
              Span.close_all tracer;
              write_live
                ~label:
                  (match result.status with
                  | Completed -> "completed"
                  | Halted _ -> "halted")
                ()
            end;
            Ok result
        | exception exn ->
            kill_all ();
            restore_sigpipe ();
            (if observing then
               try
                 Span.close_all tracer;
                 write_live ~label:"failed" ()
               with _ -> ());
            Error
              (match exn with
              | Service_error m -> m
              | exn -> Printexc.to_string exn)
      end)

(* ------------------------------------------------------------------ *)
(* result stream + manifest *)

let jsonl_lines r =
  (match r.status with
  | Completed -> ()
  | Halted _ ->
      invalid_arg "Service.jsonl_lines: halted campaign (resume it first)");
  let reps = r.spec.Campaign.Spec.repetitions in
  let seeds =
    Campaign.task_seeds ~base_seed:r.spec.Campaign.Spec.base_seed ~count:reps
  in
  (Campaign.json_header r.spec
  :: List.init reps (fun i ->
         match r.cells.(i) with
         | Some payload ->
             Campaign.json_of_task_line ~task:i ~task_seed:seeds.(i) payload
         | None -> assert false (* Completed means every cell is present *)))
  @ [ Campaign.json_footer r.aggregate ]

let jsonl_string r =
  String.concat ""
    (List.map (fun line -> Json.to_string line ^ "\n") (jsonl_lines r))

let write_jsonl oc r =
  List.iter
    (fun line ->
      output_string oc (Json.to_string line);
      output_char oc '\n')
    (jsonl_lines r);
  flush oc

let manifest_json r =
  let m = r.manifest in
  Json.Obj
    [
      ("type", Json.Str "campaign-manifest");
      ( "status",
        match r.status with
        | Completed -> Json.Str "completed"
        | Halted { cells_done } ->
            Json.Obj [ ("halted_at_cells", num cells_done) ] );
      ("tasks", num m.tasks);
      ("computed", num m.computed);
      ("resumed", num m.resumed);
      ("quarantined", num m.quarantined);
      ("requeued_shards", num m.requeued_shards);
      ("worker_restarts", num m.worker_restarts);
      ("protocol_errors", num m.protocol_errors);
      ("progress_kills", num m.progress_kills);
      ("workers", num m.workers);
      ("shards", num m.shards);
      ("degraded", Json.Bool m.degraded);
      ( "failures",
        Json.Arr
          (List.map
             (fun (f : failure) ->
               Json.Obj
                 [
                   ("slot", num f.slot);
                   ("restarts", num f.restarts);
                   ("cause", Json.Str f.cause);
                 ])
             m.failures) );
    ]
