external now : unit -> float = "aat_service_monotonic_now"
