(** Deterministic wire-fault injection for the campaign service.

    The in-protocol fault layer ([lib/faults]) attacks the simulated
    {e Mailbox}; this module gives the service's own delivery layer the
    same adversarial treatment: it wraps every frame write between the
    coordinator and its worker processes and — driven by seeded
    SplitMix64 streams — corrupts, tears, drops, duplicates or stalls
    frames on the wire. {!Wire.Reader}'s checksummed framing detects
    the damage; {!Service}'s retry/requeue/respawn machinery must then
    recover, which is exactly what the chaos drills assert (see
    [docs/ROBUSTNESS.md]).

    {b Plan grammar} (clauses joined with [+] or [;]; ["none"] or the
    empty string is the empty plan):
    {v
    corrupt-frame:P      flip one byte of the frame with probability P
    torn-write:P         write only a strict prefix of the frame
    drop-frame:P         write nothing
    dup-frame:P          additionally write a second, intact copy
    stall:P:SECONDS      sleep SECONDS before the write
    seed:N               the plan's SplitMix64 seed (default 0)
    v}

    {b Determinism}: every endpoint (coordinator side and worker side of
    each socketpair) owns five independent streams, one per fault kind,
    seeded from [(seed, role, slot, incarnation)]; each kind draws once
    per frame whether or not it fires. A given endpoint therefore sees
    the same fault schedule whatever the total worker count, and a
    respawned worker (next incarnation) sees a fresh schedule rather
    than deterministically re-dying on the same frame. *)

type t = {
  corrupt_frame : float;
  torn_write : float;
  drop_frame : float;
  dup_frame : float;
  stall_prob : float;
  stall_seconds : float;
  seed : int;
}

val none : t
(** The empty plan: {!apply} degenerates to a plain write. *)

val is_none : t -> bool
(** Ignores [seed]: a plan with no active fault kinds is empty. *)

val parse : string -> (t, string) result
(** Parse the plan grammar above. Probabilities must lie in [[0,1]],
    the stall duration must be non-negative. *)

val to_string : t -> string
(** Inverse of {!parse} up to float rendering and clause order. *)

type role = Coordinator | Worker

type state
(** One endpoint's seeded fault streams. *)

val endpoint :
  ?sleep:(float -> unit) -> t -> role:role -> slot:int -> incarnation:int -> state
(** The streams for one side of one worker's socketpair. [incarnation]
    is the worker slot's respawn count. [sleep] (default [Unix.sleepf])
    is how a [stall] waits — injectable for tests. *)

val apply : state -> Bytes.t -> write:(Bytes.t -> unit) -> unit
(** [apply st frame ~write] pushes one encoded frame through the fault
    plan: [write] is called with the (possibly mangled) bytes to put on
    the wire — zero times for a drop, twice for a duplicate. Every
    fault stream advances exactly once per call, fired or not. *)

(** Cumulative injected-fault counters for one endpoint — the raw
    material of the [chaos_faults_injected_total{kind}] metric series.
    A fault is counted when it {e fires}, whether or not the mangled
    frame survives the receiver's checksum. Because the schedule is
    deterministic, these counts are a pure function of (plan, role,
    slot, incarnation, frames written). *)
type counts = {
  mutable corrupted : int;
  mutable torn : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable stalled : int;
}

val counts : state -> counts
(** The live counter record (not a copy). *)
