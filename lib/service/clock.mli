(** The monotonic clock behind every service liveness timer.

    All heartbeat, progress and respawn-backoff deadlines are measured
    on [CLOCK_MONOTONIC] ([GetTickCount64] on Windows), {e never}
    [Unix.gettimeofday]: wall time steps under NTP corrections, and a
    multi-second step would read as a silent worker and trigger a
    spurious SIGKILL. Monotonic readings are only meaningful as
    differences within one process. *)

val now : unit -> float
(** Seconds from an arbitrary fixed origin; never decreases. *)
