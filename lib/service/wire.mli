(** Checksummed, length-prefixed JSON framing for the campaign service
    wire.

    Every message between the coordinator and a worker process is one
    {e frame}: a 4-byte non-ASCII magic, a 4-byte big-endian payload
    length, a 4-byte big-endian CRC32 (IEEE 802.3) of the payload, then
    the payload — one rendered {!Aat_telemetry.Jsonx} object. The
    framing layer is deliberately dumb: it moves byte strings,
    {!Service} owns the message vocabulary (see [docs/CAMPAIGN.md] and
    [docs/ROBUSTNESS.md]).

    The magic and checksum exist because the delivery layer is not
    trusted (see [Service.Chaos]): a torn, corrupted, duplicated or
    garbage frame must surface as a {e typed} {!Reader.error} — never an
    exception, and never a [Jsonx] parse crash on half a message. The
    magic bytes are outside the ASCII range, so a resynchronization scan
    can never mistake JSON payload text for a frame boundary. *)

val max_frame : int
(** Upper bound on a payload; a length field beyond it is treated as
    corruption ({!Reader.Oversized_frame}), not as a real message. *)

val encode : string -> Bytes.t
(** [encode payload] is the complete frame: magic, length, CRC32,
    payload. Raises [Invalid_argument] beyond {!max_frame} — a local
    caller bug, not a wire condition. *)

val crc32_string : string -> int32
(** The frame checksum (exposed for tests). *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Write [len] bytes at [off], retrying on partial writes and [EINTR].
    The raw sink {!encode}d frames — and the chaos injector's mangled
    ones — go through. *)

val write_frame : Unix.file_descr -> string -> unit
(** [encode] + [write_all] in one step — one complete frame. Raises
    [Unix.Unix_error (EPIPE, _, _)] if the peer is gone — callers treat
    that as peer death, never as fatal. *)

(** Incremental frame reassembly over one descriptor. *)
module Reader : sig
  (** What corrupted input looks like, one value per detection. After
      any error the reader has already resynchronized on the next frame
      boundary: subsequent intact frames are still recovered. *)
  type error =
    | Garbage of int
        (** bytes skipped before a frame boundary (torn frame tails,
            noise, foreign writers) *)
    | Oversized_frame of int
        (** a length field outside [[0, max_frame]] — a corrupted
            header *)
    | Checksum_mismatch of { expected : int32; received : int32 }
        (** the payload does not hash to the header's CRC32 — a
            corrupted or torn frame *)

  val pp_error : Format.formatter -> error -> unit
  val error_to_string : error -> string

  type t

  val create : Unix.file_descr -> t
  val fd : t -> Unix.file_descr

  (** Cumulative per-endpoint counters since {!create} — the raw
      material of the [wire_*] metric series (docs/OBSERVABILITY.md).
      Counts are bumped as events are produced, so they also accrue
      through {!feed} in tests. [resyncs] counts every resynchronization
      scan (one per typed error). *)
  type stats = {
    mutable frames : int;  (** intact payloads delivered *)
    mutable bytes : int;  (** raw bytes fed, framed or not *)
    mutable garbage_events : int;
    mutable garbage_bytes : int;
    mutable crc_mismatches : int;
    mutable oversized : int;
    mutable resyncs : int;
  }

  val stats : t -> stats
  (** The live counter record (not a copy). *)

  type event =
    | Frames of (string, error) result list
        (** complete payloads and detected corruptions, in arrival
            order *)
    | Eof  (** the peer closed the connection (or died) *)

  val poll : t -> event
  (** One [Unix.read] (blocking if the descriptor is; call after select
      to avoid blocking), then every frame completed by the new bytes —
      possibly none, when a large frame is still partial. Corruption
      never raises; it is returned as [Error] entries. *)

  val feed : t -> string -> (string, error) result list
  (** Push bytes into the reassembly buffer directly, bypassing the
      descriptor — what {!poll} does with each read, exposed for fuzz
      tests. *)
end
