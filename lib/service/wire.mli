(** Length-prefixed JSON framing for the campaign service wire.

    Every message between the coordinator and a worker process is one
    {e frame}: a 4-byte big-endian payload length followed by the payload
    — one rendered {!Aat_telemetry.Jsonx} object. The framing layer is
    deliberately dumb: it moves byte strings, {!Service} owns the message
    vocabulary (see [docs/CAMPAIGN.md]).

    Frames, not raw JSONL, because a worker's outcome JSON may be large
    (watchdog violations, fault accounting) and the coordinator's select
    loop reads whatever bytes are available: the length prefix lets the
    {!Reader} hold a partial frame across reads without scanning for
    newlines inside string escapes. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame, retrying on partial writes and [EINTR].
    Raises [Unix.Unix_error (EPIPE, _, _)] if the peer is gone — callers
    treat that as peer death, never as fatal. *)

(** Incremental frame reassembly over one descriptor. *)
module Reader : sig
  type t

  val create : Unix.file_descr -> t
  val fd : t -> Unix.file_descr

  type event =
    | Frames of string list  (** complete payloads, in arrival order *)
    | Eof  (** the peer closed the connection (or died) *)

  val poll : t -> event
  (** One [Unix.read] (blocking if the descriptor is; call after select
      to avoid blocking), then every frame completed by the new bytes —
      possibly none, when a large frame is still partial. *)
end
