(** The sharded multi-process campaign service.

    {!run} executes a {!Aat_campaign.Campaign.Spec.t} grid across worker
    {e processes}: the coordinator splits the task list into shards (the
    SplitMix64 split-seed schedule makes every task a pure function of
    its seed, so any partition is bit-identical to the in-process
    [Campaign.run ~workers:1]), forks workers connected over socketpairs,
    fans shards out with the length-prefixed JSON wire protocol of
    {!Wire}, streams per-cell results back with live aggregation, and —
    when [record_dir] is given — checkpoints every completed cell as a
    flight record ([cell-NNNN.record.jsonl], readable by
    [treeaa replay]) so an interrupted campaign resumes without
    recomputing finished cells.

    {b Wire protocol} (one JSON object per frame; see [docs/CAMPAIGN.md]):
    the coordinator sends [hello] (format version, the
    {!Aat_obs.Spec_io} spec JSON, heartbeat period), then [shard]
    messages ([{task, task_seed}] lists) and finally [shutdown]; workers
    answer [ready], then one [cell] per task ([outcome] on success,
    [error] if instantiation raised) and [shard-done], with periodic
    [heartbeat] frames from a background thread throughout.

    {b Robustness}: a worker that closes its socket, dies ([EOF]/
    [EPIPE]) or misses heartbeats for [heartbeat_timeout] seconds is
    SIGKILLed and reaped; the unfinished remainder of its shard is
    re-queued at the {e front} of the queue, and the slot is respawned
    up to [max_respawns] times. [run] returns [Error] only if every
    worker slot exhausts its respawn budget with work outstanding.

    {b Determinism}: workers ship outcomes as rendered
    {!Aat_campaign.Campaign.json_of_outcome} JSON; [Jsonx] parse/render
    round-trips byte-exactly, and the coordinator re-renders lines and
    folds the aggregate in task order — so {!jsonl_string} is
    bit-identical to [Campaign.jsonl_string] of an uninterrupted
    single-process run, whatever the worker count, crash history or
    resume path. The test suite enforces this. *)

type manifest = {
  tasks : int;  (** grid size (spec repetitions) *)
  computed : int;  (** cells computed by workers this invocation *)
  resumed : int;  (** cells restored from [record_dir] checkpoints *)
  requeued_shards : int;  (** shards re-queued after a worker death *)
  worker_restarts : int;  (** respawns performed *)
  workers : int;  (** worker processes initially spawned *)
  shards : int;  (** shards the pending work was split into *)
}

type status =
  | Completed
  | Halted of { cells_done : int }
      (** stopped early by the [halt_after_cells] test hook — the
          simulated coordinator crash; resume from [record_dir] *)

type result = {
  status : status;
  spec : Aat_campaign.Campaign.Spec.t;
  cells : (Aat_telemetry.Jsonx.t, string) Stdlib.result option array;
      (** per-task outcome payloads, indexed by task; [None] only on a
          [Halted] run *)
  aggregate : Aat_campaign.Campaign.aggregate;
      (** folded in task order over the completed cells *)
  manifest : manifest;
}

val run :
  ?workers:int ->
  ?record_dir:string ->
  ?heartbeat_period:float ->
  ?heartbeat_timeout:float ->
  ?max_respawns:int ->
  ?kill_worker_after_cells:int ->
  ?halt_after_cells:int ->
  Aat_campaign.Campaign.Spec.t ->
  (result, string) Stdlib.result
(** Run the campaign across [workers] (default [1]) worker processes.
    [record_dir]: checkpoint every completed cell and resume any cell whose
    checkpoint matches the spec and seed schedule. [heartbeat_period]
    (default [0.25]s) / [heartbeat_timeout] (default [30]s) tune
    liveness detection; [max_respawns] (default [2]) bounds respawns
    per worker slot.

    Test hooks, for deterministic crash drills: [kill_worker_after_cells
    n] SIGKILLs the worker that delivered the [n]-th fresh cell (once);
    [halt_after_cells n] stops the coordinator after [n] fresh cells —
    killing and reaping all workers — and returns [Halted], simulating a
    coordinator crash whose [record_dir] a second [run] resumes from. *)

val jsonl_lines : result -> Aat_telemetry.Jsonx.t list
(** The campaign JSONL stream — header, one task line per cell in task
    order, footer — bit-identical to [Campaign.jsonl_lines] of the same
    spec run in-process. Raises [Invalid_argument] on a [Halted] result
    (resume it first). *)

val jsonl_string : result -> string
val write_jsonl : out_channel -> result -> unit

val manifest_json : result -> Aat_telemetry.Jsonx.t
(** The structured end-of-run manifest (cells done/resumed/requeued,
    worker restarts, status) — for telemetry sinks and stderr summaries;
    deliberately {e not} part of the JSONL result stream. *)
