(** The sharded multi-process campaign service.

    {!run} executes a {!Aat_campaign.Campaign.Spec.t} grid across worker
    {e processes}: the coordinator splits the task list into shards (the
    SplitMix64 split-seed schedule makes every task a pure function of
    its seed, so any partition is bit-identical to the in-process
    [Campaign.run ~workers:1]), forks workers connected over socketpairs,
    fans shards out with the checksummed framed JSON wire protocol of
    {!Wire}, streams per-cell results back with live aggregation, and —
    when [record_dir] is given — checkpoints every completed cell as a
    flight record ([cell-NNNN.record.jsonl], readable by
    [treeaa replay]) so an interrupted campaign resumes without
    recomputing finished cells.

    {b Wire protocol} (one JSON object per CRC32-framed {!Wire} frame;
    see [docs/CAMPAIGN.md]): the coordinator sends [hello] (format
    version, the {!Aat_obs.Spec_io} spec JSON, heartbeat period), then
    [shard] messages ([{task, task_seed}] lists) and finally [shutdown];
    workers answer [ready], then one [cell] per task ([outcome] on
    success, [error] if instantiation raised) and [shard-done], with
    periodic [heartbeat] frames from a background thread throughout. A
    worker that receives a frame the checksum rejects reports
    [protocol-error] (best effort) and dies.

    {b Robustness} (the full failure model is [docs/ROBUSTNESS.md]): a
    worker that closes its socket, dies ([EOF]/[EPIPE]), misses
    heartbeats for [heartbeat_timeout] seconds, stops shipping cells for
    [progress_timeout] seconds while holding a shard, or sends a frame
    the CRC32 check rejects is SIGKILLed and reaped; the unfinished
    remainder of its shard is re-queued at the {e front} of the queue,
    and the slot is respawned — after an exponential backoff with seeded
    jitter — up to [max_respawns] times. Cells individually lost on the
    wire are detected at [shard-done] and re-queued. All liveness timing
    runs on the monotonic {!Clock}, so wall-clock (NTP) steps cannot
    trigger spurious kills. A slot whose budget is exhausted becomes a
    {e permanent failure}: the campaign {b degrades} onto the surviving
    pool and still completes, with [manifest.degraded = true] and the
    per-slot causes in [manifest.failures]. [run] returns [Error] (the
    {e hard} failure) only when every slot's budget is spent with work
    outstanding — checkpoints under [record_dir] survive for a resume.

    {b Wire chaos}: [wire_chaos] (see {!Chaos}) wraps every frame write
    on both sides of every socketpair in a seeded fault injector —
    corrupt/torn/dropped/duplicated/stalled frames — for deterministic
    chaos drills. Under any plan the recovery machinery above must
    reproduce the exact baseline stream; the drills in
    [test/test_service.ml] and [bin/service_smoke.ml] enforce it.

    {b Determinism}: workers ship outcomes as rendered
    {!Aat_campaign.Campaign.json_of_outcome} JSON; [Jsonx] parse/render
    round-trips byte-exactly, and the coordinator re-renders lines and
    folds the aggregate in task order — so {!jsonl_string} is
    bit-identical to [Campaign.jsonl_string] of an uninterrupted
    single-process run, whatever the worker count, crash history, chaos
    plan or resume path. The test suite enforces this. *)

type failure = {
  slot : int;  (** the worker slot that permanently failed *)
  restarts : int;  (** respawns it consumed before giving up *)
  cause : string;  (** the final death cause *)
}

type manifest = {
  tasks : int;  (** grid size (spec repetitions) *)
  computed : int;  (** cells computed by workers this invocation *)
  resumed : int;  (** cells restored from verified [record_dir] checkpoints *)
  quarantined : int;
      (** corrupt / truncated / stale-[.tmp] checkpoint files moved to
          [<record_dir>/quarantine/] (their cells recomputed) *)
  requeued_shards : int;  (** shard remainders re-queued after any failure *)
  worker_restarts : int;  (** respawns performed *)
  protocol_errors : int;
      (** frames rejected by checksum / framing / JSON validation *)
  progress_kills : int;  (** workers killed by the progress timeout *)
  workers : int;  (** worker processes initially spawned *)
  shards : int;  (** shards the pending work was split into *)
  degraded : bool;  (** some slot permanently failed; see [failures] *)
  failures : failure list;  (** per-slot permanent failure causes *)
}

type status =
  | Completed
  | Halted of { cells_done : int }
      (** stopped early by the [halt_after_cells] test hook — the
          simulated coordinator crash; resume from [record_dir] *)

type result = {
  status : status;
  spec : Aat_campaign.Campaign.Spec.t;
  cells : (Aat_telemetry.Jsonx.t, string) Stdlib.result option array;
      (** per-task outcome payloads, indexed by task; [None] only on a
          [Halted] run *)
  aggregate : Aat_campaign.Campaign.aggregate;
      (** folded in task order over the completed cells *)
  manifest : manifest;
}

val run :
  ?workers:int ->
  ?record_dir:string ->
  ?heartbeat_period:float ->
  ?heartbeat_timeout:float ->
  ?max_respawns:int ->
  ?respawn_backoff:float ->
  ?progress_timeout:float ->
  ?wire_chaos:Chaos.t ->
  ?metrics:Aat_obs.Metrics.t ->
  ?status_out:string ->
  ?trace_events:string ->
  ?kill_worker_after_cells:int ->
  ?halt_after_cells:int ->
  Aat_campaign.Campaign.Spec.t ->
  (result, string) Stdlib.result
(** Run the campaign across [workers] (default [1]) worker processes.
    [record_dir]: checkpoint every completed cell and resume any cell
    whose checkpoint matches the spec and seed schedule {e and} passes
    digest verification (failures are quarantined and recomputed).
    [heartbeat_period] (default [0.25]s) / [heartbeat_timeout] (default
    [30]s) tune liveness detection; [progress_timeout] (default: off)
    additionally kills a worker that holds a shard but has shipped no
    fresh cell for that long — the livelock detector, strongly
    recommended under [wire_chaos] plans that drop or tear frames.
    [max_respawns] (default [2]) bounds respawns per worker slot;
    [respawn_backoff] (default [0.5]s) is the base of the exponential
    backoff ([base * 2^restarts], jittered by a seeded factor in
    [[0.5, 1.5)]) between a slot's death and its respawn. [wire_chaos]
    (default {!Chaos.none}) injects deterministic wire faults for
    drills.

    {b Observability} (docs/OBSERVABILITY.md, "Service metrics & live
    status"). [metrics] (default {!Aat_obs.Metrics.null}) receives the
    deterministic [campaign_*] series — every resumed and fresh cell is
    folded through [Metrics.record_cell], so the snapshot is
    bit-identical to an in-process run's for any worker count.
    [status_out FILE] atomically rewrites a [service-status] JSON (plus
    a Prometheus twin at [FILE.prom]) at least every [heartbeat_period]:
    progress counters, per-slot health (heartbeat/progress lag, backoff
    deadlines), and the merged metric snapshot — the deterministic
    registry plus operational series (wire/chaos endpoint counters
    piggybacked on worker heartbeats, per-slot gauges), the latter
    timing-dependent and outside the determinism contract. If [metrics]
    is not supplied, [status_out] creates a private registry.
    [trace_events FILE] collects Chrome trace-event JSON (open in
    chrome://tracing or Perfetto): the coordinator's campaign root span
    (tid 0), per-slot shard and backoff spans (tid = slot+1), kill
    instants, and — carried over the wire by heartbeat piggyback — each
    worker's per-cell spans with setup/rounds/checks stage sub-spans.
    Span parent ids cross the process boundary via the [shard] message.
    Spans a SIGKILLed worker had not yet flushed are lost; span timing
    is wall-clock ([Clock.now]) and outside the determinism contract.

    Test hooks, for deterministic crash drills: [kill_worker_after_cells
    n] SIGKILLs the worker that delivered the [n]-th fresh cell (once);
    [halt_after_cells n] stops the coordinator after [n] fresh cells —
    killing and reaping all workers — and returns [Halted], simulating a
    coordinator crash whose [record_dir] a second [run] resumes from. *)

val jsonl_lines : result -> Aat_telemetry.Jsonx.t list
(** The campaign JSONL stream — header, one task line per cell in task
    order, footer — bit-identical to [Campaign.jsonl_lines] of the same
    spec run in-process. Raises [Invalid_argument] on a [Halted] result
    (resume it first). *)

val jsonl_string : result -> string
val write_jsonl : out_channel -> result -> unit

val manifest_json : result -> Aat_telemetry.Jsonx.t
(** The structured end-of-run manifest (cells done/resumed/quarantined/
    requeued, restarts, protocol errors, progress kills, degradation
    status with per-slot failure causes) — for telemetry sinks and
    stderr summaries; deliberately {e not} part of the JSONL result
    stream. *)
