(* Length-prefixed framing: 4-byte big-endian payload length + payload.
   See wire.mli. *)

let max_frame = 64 * 1024 * 1024
(* A frame larger than this is a corrupted length prefix, not a real
   message: fail loudly instead of allocating garbage. *)

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Wire.write_frame: frame too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf 4 len;
  let total = 4 + len in
  let sent = ref 0 in
  while !sent < total do
    match Unix.write fd buf !sent (total - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

module Reader = struct
  type t = {
    fd : Unix.file_descr;
    mutable pending : string;  (* bytes received but not yet framed *)
    chunk : Bytes.t;
  }

  let create fd = { fd; pending = ""; chunk = Bytes.create 65536 }
  let fd t = t.fd

  type event = Frames of string list | Eof

  (* Split [pending] into every complete frame it holds. *)
  let drain t =
    let frames = ref [] in
    let pos = ref 0 in
    let len = String.length t.pending in
    let continue = ref true in
    while !continue do
      if len - !pos < 4 then continue := false
      else
        let flen = Int32.to_int (String.get_int32_be t.pending !pos) in
        if flen < 0 || flen > max_frame then
          failwith "Wire.Reader: corrupted frame length"
        else if len - !pos - 4 < flen then continue := false
        else begin
          frames := String.sub t.pending (!pos + 4) flen :: !frames;
          pos := !pos + 4 + flen
        end
    done;
    t.pending <- String.sub t.pending !pos (len - !pos);
    List.rev !frames

  let poll t =
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> Eof
    | n ->
        t.pending <- t.pending ^ Bytes.sub_string t.chunk 0 n;
        Frames (drain t)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Frames []
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Eof
end
