(* Checksummed framing: 4-byte magic + 4-byte big-endian payload length
   + 4-byte big-endian CRC32 of the payload + payload. See wire.mli. *)

let max_frame = 64 * 1024 * 1024
(* A frame larger than this is a corrupted length prefix, not a real
   message: surface a typed error instead of allocating garbage. *)

(* Non-ASCII magic: JSON payloads are pure ASCII, so a resync scan can
   never mistake payload text for a frame boundary. *)
let magic = "\xA7\x4A\xA7\x01"
let magic_len = 4
let header_len = magic_len + 4 + 4

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected), table-driven *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_sub buf off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_string s =
  crc32_sub (Bytes.unsafe_of_string s) 0 (String.length s)

(* ------------------------------------------------------------------ *)
(* encoding *)

let encode payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Wire.encode: frame too large";
  let buf = Bytes.create (header_len + len) in
  Bytes.blit_string magic 0 buf 0 magic_len;
  Bytes.set_int32_be buf magic_len (Int32.of_int len);
  Bytes.set_int32_be buf (magic_len + 4) (crc32_string payload);
  Bytes.blit_string payload 0 buf header_len len;
  buf

let write_all fd buf off len =
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd buf (off + !sent) (len - !sent) with
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_frame fd payload =
  let buf = encode payload in
  write_all fd buf 0 (Bytes.length buf)

(* ------------------------------------------------------------------ *)
(* reading *)

module Reader = struct
  type error =
    | Garbage of int
    | Oversized_frame of int
    | Checksum_mismatch of { expected : int32; received : int32 }

  let pp_error ppf = function
    | Garbage n -> Format.fprintf ppf "%d byte%s of garbage before a frame boundary" n (if n = 1 then "" else "s")
    | Oversized_frame n -> Format.fprintf ppf "frame length %d out of range" n
    | Checksum_mismatch { expected; received } ->
        Format.fprintf ppf "frame checksum mismatch (header %08lx, payload %08lx)"
          expected received

  let error_to_string e = Format.asprintf "%a" pp_error e

  type stats = {
    mutable frames : int;
    mutable bytes : int;
    mutable garbage_events : int;
    mutable garbage_bytes : int;
    mutable crc_mismatches : int;
    mutable oversized : int;
    mutable resyncs : int;
  }

  type t = {
    fd : Unix.file_descr;
    mutable pending : string;  (* bytes received but not yet framed *)
    chunk : Bytes.t;
    stats : stats;
  }

  let create fd =
    {
      fd;
      pending = "";
      chunk = Bytes.create 65536;
      stats =
        {
          frames = 0;
          bytes = 0;
          garbage_events = 0;
          garbage_bytes = 0;
          crc_mismatches = 0;
          oversized = 0;
          resyncs = 0;
        };
    }

  let fd t = t.fd
  let stats t = t.stats

  type event = Frames of (string, error) result list | Eof

  (* Index of the first full magic at or after [pos] in [s], if any. *)
  let find_magic s pos =
    let len = String.length s in
    let limit = len - magic_len in
    let rec go i =
      if i > limit then None
      else
        match String.index_from_opt s i magic.[0] with
        | None -> None
        | Some j ->
            if j > limit then None
            else if String.sub s j magic_len = magic then Some j
            else go (j + 1)
    in
    go pos

  (* Longest suffix of [s] starting at or after [pos] that is a proper
     prefix of the magic — bytes we must keep pending because the rest
     of the magic may still arrive. *)
  let magic_prefix_at s pos =
    let len = String.length s in
    let rec go i =
      if i >= len then len
      else
        let avail = len - i in
        if avail < magic_len && String.sub s i avail = String.sub magic 0 avail
        then i
        else go (i + 1)
    in
    go (max pos (len - magic_len + 1))

  (* Split [pending] into every complete frame it holds, surfacing
     corruption as typed errors and resynchronizing on the next magic.
     Never raises. *)
  let drain t =
    let out = ref [] in
    let emit x =
      (match x with
      | Ok _ -> t.stats.frames <- t.stats.frames + 1
      | Error (Garbage n) ->
          t.stats.garbage_events <- t.stats.garbage_events + 1;
          t.stats.garbage_bytes <- t.stats.garbage_bytes + n;
          t.stats.resyncs <- t.stats.resyncs + 1
      | Error (Oversized_frame _) ->
          t.stats.oversized <- t.stats.oversized + 1;
          t.stats.resyncs <- t.stats.resyncs + 1
      | Error (Checksum_mismatch _) ->
          t.stats.crc_mismatches <- t.stats.crc_mismatches + 1;
          t.stats.resyncs <- t.stats.resyncs + 1);
      out := x :: !out
    in
    let pos = ref 0 in
    let s = t.pending in
    let len = String.length s in
    let continue = ref true in
    while !continue do
      (* Resync: skip to the next frame boundary, reporting what we
         skipped as one garbage event. *)
      let at_magic =
        len - !pos >= magic_len && String.sub s !pos magic_len = magic
      in
      if not at_magic then begin
        match find_magic s !pos with
        | Some j ->
            emit (Error (Garbage (j - !pos)));
            pos := j
        | None ->
            (* No frame boundary in what's left. Keep only a trailing
               partial magic (the boundary may be split across reads);
               anything before it is garbage — but only report it once
               the bytes are provably not a growing partial header. *)
            let keep = magic_prefix_at s !pos in
            if len - !pos < magic_len && keep = !pos then ()
            else begin
              if keep > !pos then emit (Error (Garbage (keep - !pos)));
              pos := keep
            end;
            continue := false
      end
      else if len - !pos < header_len then continue := false
      else
        let flen = Int32.to_int (String.get_int32_be s (!pos + magic_len)) in
        if flen < 0 || flen > max_frame then begin
          emit (Error (Oversized_frame flen));
          pos := !pos + 1 (* past this magic; resync *)
        end
        else if len - !pos - header_len < flen then continue := false
        else begin
          let expected = String.get_int32_be s (!pos + magic_len + 4) in
          let payload = String.sub s (!pos + header_len) flen in
          let received = crc32_string payload in
          if received = expected then begin
            emit (Ok payload);
            pos := !pos + header_len + flen
          end
          else begin
            (* Torn or corrupted frame: the claimed extent is not
               trustworthy, so advance one byte and rescan — a valid
               next frame inside the claimed payload is recovered. *)
            emit (Error (Checksum_mismatch { expected; received }));
            pos := !pos + 1
          end
        end
    done;
    t.pending <- String.sub s !pos (len - !pos);
    List.rev !out

  let feed t bytes =
    t.stats.bytes <- t.stats.bytes + String.length bytes;
    t.pending <- t.pending ^ bytes;
    drain t

  let poll t =
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> Eof
    | n -> Frames (feed t (Bytes.sub_string t.chunk 0 n))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Frames []
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Eof
end
