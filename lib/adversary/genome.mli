(** A typed, heritable encoding of an adversary strategy — the search
    space of the synthesis harness ([lib/synth]).

    A genome composes and configures the hand-written primitives of this
    library ({!Strategies}, {!Spoiler}, {!Wedge}, {!Compose}) instead of
    inventing new attack mechanics: the search explores {e which} attack
    to mount, {e whom} to corrupt, {e when} to strike and — on the
    asynchronous engine — {e in what order} to deliver, while every
    concrete behaviour stays one of the audited strategies. Two attack
    slots cover TreeAA's two phases (single-phase protocols read only
    {!field-first}); the scheduler gene matters only under the
    asynchronous engine.

    Mutation and crossover draw from an explicit {!Aat_util.Rng.t}
    (SplitMix64), so whole search runs are reproducible from one seed.
    The string codec ({!to_string}/{!of_string}) is the wire format used
    by campaign spec serialization ([Spec_io]) and the [treeaa synth]
    CLI; it round-trips every genome. *)

open Aat_engine
open Aat_gradecast

(** Where in the id space the victims sit. {!Spoiler} corrupts the top
    ids, so [Top] victims collide with its set and [Bottom]/[Spread]
    victims hit the parties it relies on being honest. *)
type placement = Top | Bottom | Spread

type victims = { count : int; placement : placement }
(** [count] is clamped to the corruption budget [t] by construction:
    {!random}, {!mutate} and {!crossover} never emit [count > max 1 t],
    and {!valid} rejects such a genome outright. *)

type attack =
  | Passive  (** no corruptions — the fault-free baseline gene *)
  | Silent of victims  (** fail-stop from round 0 ({!Strategies.silent}) *)
  | Crash of { victims : victims; at_round : int }
      (** adaptive mid-run crash ({!Strategies.crash}) *)
  | Spoiler of { relentless : bool }
      (** the Lemma-5 convergence spoiler; [relentless] disables its burn
          bookkeeping ({!Spoiler.relentless_spoiler}) *)
  | Wedge  (** the [n <= 3t] equivocation attack ({!Wedge.gradecast_wedge}) *)

(** Delivery-order gene for the asynchronous engine; ignored by the
    synchronous runners. Mirrors [Runner.scheduler]. *)
type scheduler = Fifo | Lifo | Random_order

type t = { first : attack; second : attack; scheduler : scheduler }

val equal : t -> t -> bool

val generic : t -> bool
(** Both attack slots are protocol-agnostic ([Passive]/[Silent]/[Crash])
    — the precondition for wire-polymorphic compilation
    ({!compile_generic}) and hence for protocols that do not speak the
    gradecast wire (NR baseline, the asynchronous runners). *)

val valid : t:int -> max_round:int -> t -> bool
(** Victim counts within the corruption budget, crash rounds within
    [[1, max_round]]. *)

(** {1 Search operators}

    All three are deterministic functions of the [rng] argument and
    preserve {!valid} (and, when [generic_only] is set, {!generic}). *)

val random : ?generic_only:bool -> Aat_util.Rng.t -> t:int -> max_round:int -> t

val mutate :
  ?generic_only:bool -> Aat_util.Rng.t -> t:int -> max_round:int -> t -> t
(** Point mutation: re-roll or perturb one gene (an attack slot's kind,
    victim count, placement, crash round, spoiler twist, or the
    scheduler). *)

val crossover : Aat_util.Rng.t -> t -> t -> t
(** Uniform per-gene crossover of the two parents. *)

(** {1 Codec} *)

val to_string : t -> string
(** Compact wire form, e.g. [silent:2t+crash:1b@5+fifo]: the two attack
    slots and the scheduler joined by ['+']; victim sets are
    [<count><placement>] with placement [t]op/[b]ottom/[s]pread. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}: [of_string (to_string g) = Ok g]. *)

(** {1 Compilation}

    Victim id lists are resolved here, where [n] is known (campaign
    instantiation time). *)

val select_victims : n:int -> victims -> Types.party_id list
(** [Top]: the [count] highest ids; [Bottom]: the lowest; [Spread]:
    evenly spaced. [count] is clamped to [n]. *)

val compile_attack :
  n:int -> t:int -> iterations:int -> attack -> float Gradecast.Multi.msg Adversary.t
(** One attack slot against a gradecast-wire protocol; [iterations] is
    the schedule length the spoiler spreads its burn budget over. *)

val compile_real :
  n:int -> t:int -> iterations:int -> t -> float Gradecast.Multi.msg Adversary.t
(** Single-phase protocols (RealAA, iterated midpoint, PathAA phase):
    compiles {!field-first}; {!field-second} and the scheduler are inert. *)

val compile_tree :
  n:int ->
  t:int ->
  barrier:int ->
  first_iterations:int ->
  second_iterations:int ->
  t ->
  (float Gradecast.Multi.msg, float Gradecast.Multi.msg) Composed.msg Adversary.t
(** Both slots phased across TreeAA's composition boundary via
    {!Compose.phased} — the genome analogue of the hand-written
    tree spoiler. *)

val compile_generic : n:int -> t -> 'msg Adversary.t option
(** Wire-polymorphic compilation of {!field-first}; [Some] exactly when
    that slot is protocol-agnostic. Serves any runner, including the
    asynchronous ones. *)
