open Aat_engine
module Rng = Aat_util.Rng

type placement = Top | Bottom | Spread

type victims = { count : int; placement : placement }

type attack =
  | Passive
  | Silent of victims
  | Crash of { victims : victims; at_round : int }
  | Spoiler of { relentless : bool }
  | Wedge

type scheduler = Fifo | Lifo | Random_order

type t = { first : attack; second : attack; scheduler : scheduler }

let equal (a : t) (b : t) = a = b

let attack_generic = function
  | Passive | Silent _ | Crash _ -> true
  | Spoiler _ | Wedge -> false

let generic g = attack_generic g.first && attack_generic g.second

let victims_valid ~t v = v.count >= 1 && v.count <= max 1 t

let attack_valid ~t ~max_round = function
  | Passive | Spoiler _ | Wedge -> true
  | Silent v -> victims_valid ~t v
  | Crash { victims; at_round } ->
      victims_valid ~t victims && at_round >= 1 && at_round <= max_round

let valid ~t ~max_round g =
  attack_valid ~t ~max_round g.first && attack_valid ~t ~max_round g.second

(* ------------------------------------------------------------------ *)
(* search operators *)

let random_placement rng =
  match Rng.int rng 3 with 0 -> Top | 1 -> Bottom | _ -> Spread

let random_scheduler rng =
  match Rng.int rng 3 with 0 -> Fifo | 1 -> Lifo | _ -> Random_order

let random_victims rng ~t =
  { count = 1 + Rng.int rng (max 1 t); placement = random_placement rng }

let random_attack ~generic_only rng ~t ~max_round =
  match Rng.int rng (if generic_only then 3 else 5) with
  | 0 -> Passive
  | 1 -> Silent (random_victims rng ~t)
  | 2 ->
      Crash
        {
          victims = random_victims rng ~t;
          at_round = 1 + Rng.int rng (max 1 max_round);
        }
  | 3 -> Spoiler { relentless = Rng.bool rng }
  | _ -> Wedge

let random ?(generic_only = false) rng ~t ~max_round =
  {
    first = random_attack ~generic_only rng ~t ~max_round;
    second = random_attack ~generic_only rng ~t ~max_round;
    scheduler = random_scheduler rng;
  }

let clamp lo hi x = max lo (min hi x)

let tweak_victims rng ~t v =
  if Rng.bool rng then
    let step = if Rng.bool rng then 1 else -1 in
    { v with count = clamp 1 (max 1 t) (v.count + step) }
  else { v with placement = random_placement rng }

(* Small, validity-preserving perturbation of one attack slot. [Passive]
   and [Wedge] have no parameters, so their tweak steps to a neighbouring
   kind instead of being a no-op. *)
let tweak_attack rng ~t ~max_round = function
  | Passive -> Silent (random_victims rng ~t)
  | Silent v ->
      if Rng.bool rng then Silent (tweak_victims rng ~t v)
      else
        Crash
          { victims = v; at_round = 1 + Rng.int rng (max 1 max_round) }
  | Crash { victims; at_round } ->
      if Rng.bool rng then Crash { victims = tweak_victims rng ~t victims; at_round }
      else
        let step = if Rng.bool rng then 1 else -1 in
        Crash { victims; at_round = clamp 1 (max 1 max_round) (at_round + step) }
  | Spoiler { relentless } -> Spoiler { relentless = not relentless }
  | Wedge -> Spoiler { relentless = false }

let mutate_attack ~generic_only rng ~t ~max_round a =
  if Rng.bool rng then random_attack ~generic_only rng ~t ~max_round
  else
    let a' = tweak_attack rng ~t ~max_round a in
    if generic_only && not (attack_generic a') then
      random_attack ~generic_only rng ~t ~max_round
    else a'

let mutate ?(generic_only = false) rng ~t ~max_round g =
  (* bias toward the first slot: it is the only live gene on the
     single-phase protocols *)
  match Rng.int rng 4 with
  | 0 | 1 -> { g with first = mutate_attack ~generic_only rng ~t ~max_round g.first }
  | 2 -> { g with second = mutate_attack ~generic_only rng ~t ~max_round g.second }
  | _ -> { g with scheduler = random_scheduler rng }

let crossover rng a b =
  {
    first = (if Rng.bool rng then a.first else b.first);
    second = (if Rng.bool rng then a.second else b.second);
    scheduler = (if Rng.bool rng then a.scheduler else b.scheduler);
  }

(* ------------------------------------------------------------------ *)
(* codec *)

let placement_char = function Top -> 't' | Bottom -> 'b' | Spread -> 's'

let placement_of_char = function
  | 't' -> Some Top
  | 'b' -> Some Bottom
  | 's' -> Some Spread
  | _ -> None

let victims_to_string v = Printf.sprintf "%d%c" v.count (placement_char v.placement)

let victims_of_string s =
  let len = String.length s in
  if len < 2 then Error (Printf.sprintf "genome: bad victim set %S" s)
  else
    match
      (int_of_string_opt (String.sub s 0 (len - 1)), placement_of_char s.[len - 1])
    with
    | Some count, Some placement when count >= 1 -> Ok { count; placement }
    | _ -> Error (Printf.sprintf "genome: bad victim set %S" s)

let attack_to_string = function
  | Passive -> "none"
  | Silent v -> "silent:" ^ victims_to_string v
  | Crash { victims; at_round } ->
      Printf.sprintf "crash:%s@%d" (victims_to_string victims) at_round
  | Spoiler { relentless } -> if relentless then "spoiler!" else "spoiler"
  | Wedge -> "wedge"

let attack_of_string s =
  match s with
  | "none" -> Ok Passive
  | "spoiler" -> Ok (Spoiler { relentless = false })
  | "spoiler!" -> Ok (Spoiler { relentless = true })
  | "wedge" -> Ok Wedge
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "silent" ->
          Result.map
            (fun v -> Silent v)
            (victims_of_string (String.sub s (i + 1) (String.length s - i - 1)))
      | Some i when String.sub s 0 i = "crash" -> (
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match String.index_opt rest '@' with
          | Some j -> (
              match
                int_of_string_opt
                  (String.sub rest (j + 1) (String.length rest - j - 1))
              with
              | Some at_round when at_round >= 1 ->
                  Result.map
                    (fun victims -> Crash { victims; at_round })
                    (victims_of_string (String.sub rest 0 j))
              | _ -> Error (Printf.sprintf "genome: bad crash round in %S" s))
          | None -> Error (Printf.sprintf "genome: crash needs @round in %S" s))
      | _ -> Error (Printf.sprintf "genome: unknown attack %S" s))

let scheduler_to_string = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Random_order -> "rand"

let scheduler_of_string = function
  | "fifo" -> Ok Fifo
  | "lifo" -> Ok Lifo
  | "rand" -> Ok Random_order
  | s -> Error (Printf.sprintf "genome: unknown scheduler %S" s)

let to_string g =
  String.concat "+"
    [
      attack_to_string g.first;
      attack_to_string g.second;
      scheduler_to_string g.scheduler;
    ]

let of_string s =
  match String.split_on_char '+' s with
  | [ a; b; sched ] ->
      Result.bind (attack_of_string a) (fun first ->
          Result.bind (attack_of_string b) (fun second ->
              Result.map
                (fun scheduler -> { first; second; scheduler })
                (scheduler_of_string sched)))
  | _ ->
      Error
        (Printf.sprintf "genome: expected <attack>+<attack>+<scheduler>, got %S" s)

(* ------------------------------------------------------------------ *)
(* compilation *)

let select_victims ~n v =
  let count = clamp 0 n v.count in
  if count = 0 then []
  else
    match v.placement with
    | Top -> List.init count (fun i -> n - count + i)
    | Bottom -> List.init count (fun i -> i)
    | Spread -> List.init count (fun i -> i * n / count)

let compile_attack ~n ~t ~iterations = function
  | Passive -> Adversary.passive "none"
  | Silent v -> Strategies.silent ~victims:(select_victims ~n v)
  | Crash { victims; at_round } ->
      Strategies.crash ~at_round ~victims:(select_victims ~n victims)
  | Spoiler { relentless } ->
      if relentless then Spoiler.relentless_spoiler ~t ~iterations
      else Spoiler.realaa_spoiler ~t ~iterations
  | Wedge -> Wedge.gradecast_wedge ()

let compile_real ~n ~t ~iterations g =
  { (compile_attack ~n ~t ~iterations g.first) with name = "genome:" ^ to_string g }

let compile_tree ~n ~t ~barrier ~first_iterations ~second_iterations g =
  Compose.phased
    ~name:("genome:" ^ to_string g)
    ~barrier
    ~first:(compile_attack ~n ~t ~iterations:first_iterations g.first)
    ~second:(compile_attack ~n ~t ~iterations:second_iterations g.second)

let compile_generic : type msg. n:int -> t -> msg Adversary.t option =
 fun ~n g ->
  let name = "genome:" ^ to_string g in
  match g.first with
  | Passive -> Some { (Adversary.passive "none") with name }
  | Silent v -> Some { (Strategies.silent ~victims:(select_victims ~n v)) with name }
  | Crash { victims; at_round } ->
      Some
        {
          (Strategies.crash ~at_round ~victims:(select_victims ~n victims)) with
          name;
        }
  | Spoiler _ | Wedge -> None
