(** Agreement-breaking attacks for [t >= n/3] — the resilience-boundary
    experiment (E6).

    With [n = 3t] the echo/vote thresholds of gradecast lose their quorum
    intersection and a Byzantine coalition can drive {e different} values to
    grade 2 at different honest parties; from there every midpoint-style AA
    protocol is kept permanently split. These adversaries implement that
    attack. Against [n >= 3t + 1] they are harmless (the tests check both
    sides of the boundary). *)

open Aat_engine
open Aat_gradecast

val naive_wedge : unit -> float Adversary.t
(** Against {!Aat_realaa.Iterated_midpoint.naive} (plain value broadcasts):
    sends the low honest extreme to the lower half of the honest parties
    and the high extreme to the upper half, every round. At [n = 3t] the
    trimmed midpoints then never move. *)

val gradecast_wedge : unit -> float Gradecast.Multi.msg Adversary.t
(** Against the gradecast-based protocols (RealAA, iterated midpoint with
    gradecast): splits the honest parties into two camps and, for every
    Byzantine leader instance, drives value [lo] to grade 2 in one camp and
    [hi] to grade 2 in the other — unpunishable equivocation once
    [n <= 3t]. *)

val camps : 'msg Adversary.view -> Types.party_id list * Types.party_id list
(** The two honest camps (lower ids, upper ids) the wedges split between. *)
