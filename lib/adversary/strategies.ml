open Aat_engine

let silent ~victims =
  {
    Adversary.name = "silent";
    passive = false;
    initial_corruptions = (fun ~n:_ ~t:_ _ -> victims);
    corrupt_more = (fun _ -> []);
    deliver = (fun _ -> []);
  }

let random_silent ~count =
  {
    Adversary.name = "random-silent";
    passive = false;
    initial_corruptions =
      (fun ~n ~t rng ->
        Aat_util.Rng.sample_without_replacement rng (min count (min t n)) n);
    corrupt_more = (fun _ -> []);
    deliver = (fun _ -> []);
  }

let crash ~at_round ~victims =
  if at_round < 1 then
    invalid_arg
      (Printf.sprintf "Strategies.crash: at_round must be >= 1 (got %d)"
         at_round);
  {
    Adversary.name = Printf.sprintf "crash@r%d" at_round;
    passive = false;
    initial_corruptions = (fun ~n:_ ~t:_ _ -> []);
    corrupt_more =
      (fun view ->
        (* A requested round past the engine's horizon would otherwise
           never fire (the run ends first): clamp it to the default round
           cap for this [n], and trigger on [>=] rather than [=] so the
           crash cannot be skipped over. Once the victims are corrupted
           the filter empties and the strategy goes quiet. *)
        let target =
          min at_round (Aat_runtime.Defaults.max_rounds ~n:view.Adversary.n)
        in
        if
          view.Adversary.round >= target
          && List.exists
               (fun v ->
                 v >= 0 && v < view.Adversary.n
                 && not view.Adversary.corrupted.(v))
               victims
        then victims
        else []);
    deliver = (fun _ -> []);
  }

(* Replay the honest protocol for each victim, twisting outgoing messages.
   Victim states are caught up lazily from the traffic history: at round r
   the deliveries of rounds [processed+1 .. r-1] are folded in before the
   round-r messages are produced. *)
let puppeteer ~name ~protocol ~victims ~twist =
  let sim = ref None (* (victim states, last processed round) *) in
  let init_sim n =
    let tbl = Hashtbl.create (List.length victims) in
    List.iter (fun v -> Hashtbl.replace tbl v (protocol.Protocol.init ~self:v ~n)) victims;
    sim := Some (tbl, ref 0);
    (tbl, ref 0)
  in
  let get_sim n = match !sim with Some s -> s | None -> init_sim n in
  let catch_up (view : _ Adversary.view) =
    let tbl, processed = get_sim view.n in
    (* view.history lists past rounds most recent first: element 0 is round
       view.round - 1. *)
    let past = Array.of_list (List.rev view.history) in
    for r = !processed + 1 to view.round - 1 do
      let letters = if r - 1 < Array.length past then past.(r - 1) else [] in
      Hashtbl.iter
        (fun v st ->
          let inbox =
            List.filter_map
              (fun (l : _ Types.letter) ->
                if l.dst = v then Some { Types.sender = l.src; payload = l.body }
                else None)
              letters
            |> List.sort (fun (a : _ Types.envelope) b -> compare a.sender b.sender)
          in
          Hashtbl.replace tbl v (protocol.Protocol.receive ~round:r ~self:v ~inbox st))
        (Hashtbl.copy tbl);
      processed := r
    done;
    tbl
  in
  {
    Adversary.name;
    passive = false;
    initial_corruptions = (fun ~n:_ ~t:_ _ -> victims);
    corrupt_more = (fun _ -> []);
    deliver =
      (fun view ->
        let tbl = catch_up view in
        Hashtbl.fold
          (fun v st acc ->
            let sends = protocol.Protocol.send ~round:view.round ~self:v st in
            List.fold_left
              (fun acc (dst, m) ->
                match twist ~round:view.round ~src:v ~dst m with
                | Some body -> { Types.src = v; dst; body } :: acc
                | None -> acc)
              acc sends)
          tbl []);
  }

let omit_towards ~name ~protocol ~victims ~blocked =
  puppeteer ~name ~protocol ~victims ~twist:(fun ~round:_ ~src:_ ~dst m ->
      if List.mem dst blocked then None else Some m)
