(** The convergence-slowing attack on RealAA — the adversary of Lemma 5.

    RealAA's spread shrinks per iteration by a factor governed by how many
    Byzantine parties burn themselves that iteration; the worst case of
    Lemma 5, [t^R / (R^R (n-2t)^R)], is an adversary that splits its [t]
    parties into [R] groups of [t/R] and spends group [i] in iteration [i]
    on {e inclusion splits}: each spent leader gets its value graded 1 at a
    chosen target set of honest parties and 0 at the rest, so the targets
    average the planted value in and the others do not. The leader is
    globally blacklisted afterwards — the mechanism allows this exactly
    once per Byzantine party, which is why the budget is scheduled.

    Mechanics of one split for leader [b] (all inside one 3-round
    multi-gradecast; [h] = number of still-credible Byzantine helpers —
    already-convicted parties are ignored by honest receivers and no longer
    help; thresholds as in {!Gradecast}):

    + round 1: [b] sends its planted value [v] to a set [H1] of exactly
      [n - t - h] honest parties (and nothing to the rest);
    + round 2: the helpers echo [v] for [b]'s instance toward
      [|V| = t + 1 - h] selected honest "voters" in [H1] only. A voter
      counts [|H1| + h = n - t] echoes and votes for [v]; every other
      honest party counts fewer and abstains;
    + round 3: the helpers vote [v] for [b]'s instance toward the target
      set [T] only. A target sees [|V| + h = t + 1] votes — grade 1, value
      included; a non-target sees [|V| ≤ t] votes — grade 0, excluded.

    Values are chosen from the rushing view of the honest round-1 values to
    shift trimming windows: the planted value sits far below the honest
    range (at the targets it eats one lower-trim slot, dragging their
    trimmed minimum down an order statistic) while the surviving Byzantine
    "cover" leaders gradecast a far-above-range value to everyone (eating
    upper-trim slots uniformly). Targets are the currently lowest honest
    parties, so the low camp keeps sinking relative to the rest. Burns are
    scheduled into the final iterations: one clean iteration collapses the
    honest spread to a single point (fault-free RealAA agrees exactly after
    one iteration), so for [R > t] some iteration is necessarily clean and
    the final spread is 0 — the experiments show nonzero final spread
    exactly in the [R <= t] regime, as the theory predicts.

    The attack never violates the protocol's guarantees — experiment E1
    checks that the measured spread stays within Lemma 5's bound while
    being materially worse than the fault-free run. *)

open Aat_engine
open Aat_gradecast

val realaa_spoiler :
  t:int -> iterations:int -> float Gradecast.Multi.msg Adversary.t
(** [t] corrupted parties [n - t .. n - 1] (the top ids), [iterations] the
    RealAA schedule length the attack is spread over. *)

val parties_of : n:int -> t:int -> Types.party_id list
(** The corruption set used: the [t] highest ids. *)

val relentless_spoiler :
  t:int -> iterations:int -> float Gradecast.Multi.msg Adversary.t
(** The spoiler with its burn bookkeeping disabled: the same leader splits
    in {e every} iteration. Against the faithful protocol this is weaker
    (the leader is blacklisted after its first split anyway); against the
    no-blacklist ablation it keeps the divergence alive forever — the A1
    ablation's attack. *)

val generic_spoiler :
  relentless:bool ->
  project:('v -> float) ->
  embed:(float -> 'v) ->
  t:int ->
  iterations:int ->
  'v Gradecast.Multi.msg Adversary.t
(** The same attack against a RealAA variant whose gradecast carries values
    of type ['v]: [project] reads the real value out of an honest wire
    value, [embed] builds a wire value carrying a planted real. *)

val early_stopping_spoiler :
  t:int -> iterations:int -> (float * bool) Gradecast.Multi.msg Adversary.t
(** {!generic_spoiler} against [Early_bdh]'s [(value, done)] wire — plants
    values but never claims DONE. *)
