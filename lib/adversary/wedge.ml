open Aat_engine
open Aat_gradecast
module Multi = Gradecast.Multi

let camps (view : _ Adversary.view) =
  let honest = Adversary.honest_parties view in
  let half = (List.length honest + 1) / 2 in
  let a = List.filteri (fun i _ -> i < half) honest in
  let b = List.filteri (fun i _ -> i >= half) honest in
  (a, b)

(* Both wedges pin the attack values to the honest extremes observed in the
   very first round (the inputs), so the split the adversary maintains is
   exactly the initial disagreement. *)

let naive_wedge () =
  let extremes = ref None in
  let observe (view : float Adversary.view) =
    match !extremes with
    | Some e -> e
    | None ->
        let values =
          List.map (fun (l : float Types.letter) -> l.body) view.honest_outbox
        in
        let e =
          match values with
          | [] -> (0., 1.)
          | v :: vs ->
              (List.fold_left min v vs, List.fold_left max v vs)
        in
        extremes := Some e;
        e
  in
  {
    Adversary.name = "naive-wedge";
    passive = false;
    initial_corruptions = (fun ~n ~t _ -> List.init t (fun i -> n - t + i));
    corrupt_more = (fun _ -> []);
    deliver =
      (fun view ->
        let lo, hi = observe view in
        let camp_a, camp_b = camps view in
        let byz = Adversary.corrupted_parties view in
        List.concat_map
          (fun c ->
            List.map (fun x -> { Types.src = c; dst = x; body = lo }) camp_a
            @ List.map (fun x -> { Types.src = c; dst = x; body = hi }) camp_b)
          byz);
  }

let gradecast_wedge () =
  let extremes = ref None in
  let observe (view : float Multi.msg Adversary.view) =
    match !extremes with
    | Some e -> e
    | None ->
        let values =
          List.filter_map
            (fun (l : float Multi.msg Types.letter) ->
              match l.body with
              | Multi.Value v -> Some v
              | Multi.Echo _ | Multi.Vote _ -> None)
            view.honest_outbox
        in
        let e =
          match values with
          | [] -> (0., 1.)
          | v :: vs -> (List.fold_left min v vs, List.fold_left max v vs)
        in
        extremes := Some e;
        e
  in
  (* Per camp x, every Byzantine leader's instance is driven to the camp's
     value with grade 2: round 1 send it to the camp, round 2 all Byzantine
     parties echo it to the camp, round 3 they vote it to the camp. Honest
     echoes/votes from the camp (>= (n-t)/2 parties) plus the t Byzantine
     ones meet the n - t threshold exactly when n <= 3t. Honest leaders'
     instances are echoed truthfully (zero effect either way). *)
  let honest_round1 = ref ([] : (Types.party_id * float) list) in
  {
    Adversary.name = "gradecast-wedge";
    passive = false;
    initial_corruptions = (fun ~n ~t _ -> List.init t (fun i -> n - t + i));
    corrupt_more = (fun _ -> []);
    deliver =
      (fun view ->
        let lo, hi = observe view in
        let camp_a, camp_b = camps view in
        let byz = Adversary.corrupted_parties view in
        let sub = ((view.round - 1) mod 3) + 1 in
        if sub = 1 then
          honest_round1 :=
            List.filter_map
              (fun (l : float Multi.msg Types.letter) ->
                match l.body with
                | Multi.Value v -> Some (l.src, v)
                | Multi.Echo _ | Multi.Vote _ -> None)
              view.honest_outbox
            |> List.sort_uniq compare;
        let row_for value =
          let row = Array.make view.n None in
          List.iter (fun b -> row.(b) <- Some value) byz;
          List.iter (fun (p, v) -> row.(p) <- Some v) !honest_round1;
          row
        in
        let send_camp camp value =
          List.concat_map
            (fun c ->
              List.map
                (fun x ->
                  let body =
                    match sub with
                    | 1 -> Multi.Value value
                    | 2 -> Multi.Echo (row_for value)
                    | _ -> Multi.Vote (row_for value)
                  in
                  { Types.src = c; dst = x; body })
                camp)
            byz
        in
        send_camp camp_a lo @ send_camp camp_b hi);
  }
