open Aat_engine
open Aat_gradecast
module Multi = Gradecast.Multi

let parties_of ~n ~t = List.init t (fun i -> n - t + i)

type plan = {
  iteration : int;
  planted : float; (* the value the spent leaders inject *)
  cover : float; (* value non-spent Byzantine leaders gradecast honestly *)
  spent_now : Types.party_id list; (* leaders burning themselves now *)
  h1 : Types.party_id list; (* honest receivers of the planted value *)
  voters : Types.party_id list; (* honest parties made to vote *)
  targets : Types.party_id list; (* honest parties that will include *)
  honest_value : (Types.party_id, float) Hashtbl.t;
}

(* The inclusion-split mechanics (see the .mli) parameterised by the number
   of still-credible Byzantine helpers h (blacklisted parties' messages are
   dropped by honest parties, so they no longer count):

   - the planted value goes to |H1| = n - t - h honest parties in round 1,
     so that a selected voter's echo count is |H1| + h = n - t exactly;
   - |V| = t + 1 - h honest voters are pushed over the echo threshold, so a
     target's vote count is |V| + h = t + 1 (grade 1) while a non-target
     sees only |V| <= t (grade 0).

   Both sizes need h >= 1 and n > 3t to be feasible; the splits stop once
   every Byzantine party is burned — exactly the budget limit the paper's
   analysis charges the adversary. *)
let generic_spoiler ~relentless ~project ~embed ~t ~iterations =
  let spent : (Types.party_id, unit) Hashtbl.t = Hashtbl.create (max 1 t) in
  let current_plan : plan option ref = ref None in
  let make_plan (view : _ Adversary.view) iteration =
    let honest_value = Hashtbl.create 16 in
    List.iter
      (fun (l : _ Types.letter) ->
        match l.body with
        | Multi.Value v -> Hashtbl.replace honest_value l.src (project v)
        | Multi.Echo _ | Multi.Vote _ -> ())
      view.honest_outbox;
    let honest =
      Hashtbl.fold (fun p v acc -> (p, v) :: acc) honest_value []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
      (* descending by current value *)
    in
    let values = List.map snd honest in
    let lo = List.fold_left Float.min infinity values in
    let hi = List.fold_left Float.max neg_infinity values in
    let width = Float.max 1. (hi -. lo) in
    (* Window-shifting values: the planted value sits far BELOW the honest
       range so that, at the targets, it consumes one slot of the lower trim
       quota and drags the trimmed minimum down one order statistic; the
       covers sit far ABOVE the range so they consume upper trim slots
       everywhere equally. Both are discarded by trimming, so Validity is
       never endangered — only the relative windows move. *)
    let planted = lo -. width -. 1. in
    let cover = hi +. width +. 1. in
    let byz_pool =
      Adversary.corrupted_parties view
      |> List.filter (fun p -> not (Hashtbl.mem spent p))
    in
    let helpers = List.length byz_pool in
    (* Concentrate the remaining budget on the remaining iterations: a clean
       iteration makes the honest values collapse to a single point, so the
       strongest schedule burns one leader per iteration through the END of
       the run (for t < R the early iterations are necessarily clean). *)
    let remaining = max 1 (iterations - iteration + 1) in
    let k =
      if helpers = 0 then 0
      else min helpers ((helpers + remaining - 1) / remaining)
    in
    let k =
      if relentless then min 1 helpers
      else if iterations - iteration >= helpers then 0
      else k
    in
    let spent_now = List.filteri (fun i _ -> i < k) byz_pool in
    let n_h1 = max 0 (view.n - view.t - helpers) in
    let h1 = List.filteri (fun i _ -> i < n_h1) (List.map fst honest) in
    let n_voters = max 1 (view.t + 1 - helpers) in
    let voters = List.filteri (fun i _ -> i < n_voters) h1 in
    (* Targets are the [t] currently-lowest honest parties. A target's
       trimmed window is [h_{t-k+1} .. ], a non-target's [h_{t+1} .. ]
       (order statistics of the honest values), so the per-iteration
       divergence is (h_{t+1} - h_{t-k+1}) / 2 — maximised when the camp
       boundary sits exactly at position t, i.e. when the low camp has t
       members. *)
    let ascending = List.rev (List.map fst honest) in
    let n_targets = min view.t (max 1 (List.length ascending - 1)) in
    let targets = List.filteri (fun i _ -> i < n_targets) ascending in
    { iteration; planted; cover; spent_now; h1; voters; targets; honest_value }
  in
  let deliver (view : _ Adversary.view) =
    let iteration = ((view.round - 1) / 3) + 1 in
    let sub = ((view.round - 1) mod 3) + 1 in
    let plan =
      if sub = 1 then begin
        let p = make_plan view iteration in
        current_plan := Some p;
        p
      end
      else
        match !current_plan with
        | Some p when p.iteration = iteration -> p
        | Some _ | None -> make_plan view iteration
    in
    let honest = Adversary.honest_parties view in
    let byz =
      Adversary.corrupted_parties view
      |> List.filter (fun p -> not (Hashtbl.mem spent p))
    in
    let actively_spending = plan.spent_now in
    let letters = ref [] in
    let say src dst body = letters := { Types.src; dst; body } :: !letters in
    (match sub with
    | 1 ->
        (* Spending leaders: planted value to H1 only. Cover leaders: the
           honest-looking median to everyone. *)
        List.iter
          (fun b -> List.iter (fun x -> say b x (Multi.Value (embed plan.planted))) plan.h1)
          actively_spending;
        List.iter
          (fun b ->
            if not (List.mem b actively_spending) then
              List.iter (fun x -> say b x (Multi.Value (embed plan.cover))) honest)
          byz
    | 2 ->
        (* Echo vectors: planted value for spending leaders toward the
           selected voters; truthful echoes elsewhere. *)
        List.iter
          (fun c ->
            List.iter
              (fun x ->
                let row = Array.make view.n None in
                List.iter
                  (fun b ->
                    if List.mem x plan.voters then row.(b) <- Some (embed plan.planted))
                  actively_spending;
                List.iter
                  (fun b ->
                    if not (List.mem b actively_spending) then
                      row.(b) <- Some (embed plan.cover))
                  byz;
                Hashtbl.iter (fun p v -> row.(p) <- Some (embed v)) plan.honest_value;
                say c x (Multi.Echo row))
              honest)
          byz
    | _ ->
        (* Vote vectors: planted value toward the target set only. *)
        List.iter
          (fun c ->
            List.iter
              (fun x ->
                let row = Array.make view.n None in
                List.iter
                  (fun b ->
                    if List.mem x plan.targets then row.(b) <- Some (embed plan.planted))
                  actively_spending;
                List.iter
                  (fun b ->
                    if not (List.mem b actively_spending) then
                      row.(b) <- Some (embed plan.cover))
                  byz;
                Hashtbl.iter (fun p v -> row.(p) <- Some (embed v)) plan.honest_value;
                say c x (Multi.Vote row))
              honest)
          byz);
    if sub = 3 && not relentless then
      List.iter (fun b -> Hashtbl.replace spent b ()) actively_spending;
    !letters
  in
  {
    Adversary.name = "realaa-spoiler";
    passive = false;
    initial_corruptions = (fun ~n ~t rng -> ignore rng; parties_of ~n ~t);
    corrupt_more = (fun _ -> []);
    deliver;
  }

let realaa_spoiler ~t ~iterations =
  generic_spoiler ~relentless:false ~project:Fun.id ~embed:Fun.id ~t ~iterations

let relentless_spoiler ~t ~iterations =
  generic_spoiler ~relentless:true ~project:Fun.id ~embed:Fun.id ~t ~iterations

let early_stopping_spoiler ~t ~iterations =
  (* against Early_bdh's (value, done-flag) wire: never claim DONE *)
  generic_spoiler ~relentless:false ~project:fst ~embed:(fun x -> (x, false)) ~t
    ~iterations
