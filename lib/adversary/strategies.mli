(** Protocol-agnostic Byzantine strategies.

    These work against any protocol because they either send nothing or
    replay/mutate the honest algorithm itself. Protocol-specific attacks
    (equivocation inside gradecast) live in {!Spoiler} and {!Wedge}.

    They are also engine-agnostic: every strategy here is an
    [Aat_runtime.Adversary.t], the interface shared by the synchronous and
    asynchronous engines, so it can be handed to [Sync_engine.run] directly
    or lifted to the asynchronous engine unchanged via
    [Async_engine.with_scheduler]. *)

open Aat_engine

val silent : victims:Types.party_id list -> 'msg Adversary.t
(** Corrupted from the start, never send anything — fail-stop at round 0. *)

val random_silent : count:int -> 'msg Adversary.t
(** [count] victims chosen by the adversary RNG at startup, then silent. *)

val crash : at_round:Types.round -> victims:Types.party_id list -> 'msg Adversary.t
(** Parties behave honestly (they are simply not corrupted yet) and are
    adaptively corrupted at the start of round [at_round], from which point
    they send nothing — a mid-protocol crash, exercising the adaptive
    adversary of the model. Their round-[at_round] messages are already
    retracted by the engine.

    Raises [Invalid_argument] if [at_round < 1]. An [at_round] beyond
    [Aat_runtime.Defaults.max_rounds ~n] is clamped to that horizon — the
    crash fires at the last default round rather than silently never
    firing — and the trigger is [>=], so a strategy evaluated past its
    target round still crashes its victims exactly once. *)

val puppeteer :
  name:string ->
  protocol:('s, 'msg, 'o) Protocol.t ->
  victims:Types.party_id list ->
  twist:
    (round:Types.round ->
    src:Types.party_id ->
    dst:Types.party_id ->
    'msg ->
    'msg option) ->
  'msg Adversary.t
(** Runs a private copy of [protocol] for each victim (fed with the real
    traffic it receives) and sends its messages through [twist], which may
    rewrite a message per recipient ([Some m']) or drop it ([None]).
    [twist ... m = Some m] for all arguments is an honest-but-corrupted
    party; per-[dst] rewriting is equivocation; systematic [None] toward a
    subset is selective omission. *)

val omit_towards :
  name:string ->
  protocol:('s, 'msg, 'o) Protocol.t ->
  victims:Types.party_id list ->
  blocked:Types.party_id list ->
  'msg Adversary.t
(** {!puppeteer} specialisation: honest behaviour except that nothing is
    ever sent to [blocked] recipients. *)
