(** Lifting single-protocol adversaries to two-phase compositions.

    TreeAA is [Protocol.sequential] of two RealAA-based phases whose wire
    type is [('m1, 'm2) Composed.msg]. {!phased} runs one adversary against
    phase one and another against phase two, translating views and letters
    across the phase boundary — e.g. the RealAA {!Spoiler} can attack both
    the PathsFinder agreement and the projection agreement. *)

open Aat_engine

val phased :
  name:string ->
  barrier:int ->
  first:'m1 Adversary.t ->
  second:'m2 Adversary.t ->
  ('m1, 'm2) Composed.msg Adversary.t
(** [barrier] is the composition's [rounds_of_first]. The corruption set is
    [first]'s (both phases attack with the same corrupted parties, as the
    model requires — corruption is permanent). [second] sees rounds
    renumbered from 1 and only phase-two traffic. *)
