open Aat_engine

let unwrap1 letters =
  List.filter_map
    (fun (l : _ Types.letter) ->
      match l.body with
      | Composed.M1 m -> Some { l with Types.body = m }
      | Composed.M2 _ -> None)
    letters

let unwrap2 letters =
  List.filter_map
    (fun (l : _ Types.letter) ->
      match l.body with
      | Composed.M2 m -> Some { l with Types.body = m }
      | Composed.M1 _ -> None)
    letters

let phased ~name ~barrier ~first ~second =
  let view1 (view : _ Adversary.view) =
    {
      Adversary.round = view.round;
      n = view.n;
      t = view.t;
      corrupted = view.corrupted;
      honest_outbox = unwrap1 view.honest_outbox;
      history = List.map unwrap1 view.history;
      rng = view.rng;
    }
  in
  let view2 (view : _ Adversary.view) =
    (* Only the phase-two rounds (the most recent [round - barrier - 1]
       history entries) are shown, renumbered from 1. *)
    let phase2_rounds = view.round - barrier - 1 in
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    {
      Adversary.round = view.round - barrier;
      n = view.n;
      t = view.t;
      corrupted = view.corrupted;
      honest_outbox = unwrap2 view.honest_outbox;
      history = List.map unwrap2 (take phase2_rounds view.history);
      rng = view.rng;
    }
  in
  {
    Adversary.name;
    passive = false;
    initial_corruptions = first.Adversary.initial_corruptions;
    corrupt_more =
      (fun view ->
        if view.Adversary.round <= barrier then first.Adversary.corrupt_more (view1 view)
        else second.Adversary.corrupt_more (view2 view));
    deliver =
      (fun view ->
        if view.Adversary.round <= barrier then
          first.Adversary.deliver (view1 view)
          |> List.map (fun (l : _ Types.letter) ->
                 { l with Types.body = Composed.M1 l.body })
        else
          second.Adversary.deliver (view2 view)
          |> List.map (fun (l : _ Types.letter) ->
                 { l with Types.body = Composed.M2 l.body }));
  }
