open Aat_engine
open Aat_gradecast
module Multi = Gradecast.Multi

type result = { value : float; trajectory : float list }

type naive_state = {
  t : int;
  n : int;
  value : float;
  iterations_left : int;
  trajectory_rev : float list;
  decided : result option;
}

type gc_state = {
  gn : int;
  gt : int;
  gself : Types.party_id;
  gvalue : float;
  gleft : int;
  mstate : float Multi.state;
  gtrajectory_rev : float list;
  gdecided : result option;
}

let mk_result value trajectory_rev =
  { value; trajectory = List.rev trajectory_rev }

let naive ~inputs ~t ~iterations =
  let init ~self ~n =
    let value = inputs self in
    let st =
      { t; n; value; iterations_left = iterations; trajectory_rev = []; decided = None }
    in
    if iterations <= 0 then { st with decided = Some (mk_result value []) } else st
  in
  let send ~round:_ ~self:_ st =
    match st.decided with
    | Some _ -> []
    | None -> List.init st.n (fun p -> (p, st.value))
  in
  let receive ~round:_ ~self:_ ~inbox st =
    match st.decided with
    | Some _ -> st
    | None ->
        let values =
          List.map (fun (e : float Types.envelope) -> e.payload) inbox
        in
        let value =
          match Trim.trimmed_midpoint ~t:st.t values with
          | Some v -> v
          | None -> st.value
        in
        let trajectory_rev = value :: st.trajectory_rev in
        let left = st.iterations_left - 1 in
        let decided =
          if left <= 0 then Some (mk_result value trajectory_rev) else None
        in
        { st with value; trajectory_rev; iterations_left = left; decided }
  in
  {
    Protocol.name = "iterated-midpoint-naive";
    init;
    send;
    receive;
    output = (fun st -> st.decided);
  }

let naive_simple ~inputs ~t ~iterations =
  Protocol.map_output (fun (r : result) -> r.value) (naive ~inputs ~t ~iterations)

let with_gradecast ~inputs ~t ~iterations =
  let sub_round round = ((round - 1) mod 3) + 1 in
  let init ~self ~n =
    let value = inputs self in
    let st =
      {
        gn = n;
        gt = t;
        gself = self;
        gvalue = value;
        gleft = iterations;
        mstate = Multi.start ~n ~t ~self ~own:value;
        gtrajectory_rev = [];
        gdecided = None;
      }
    in
    if iterations <= 0 then { st with gdecided = Some (mk_result value []) }
    else st
  in
  let send ~round ~self:_ st =
    match st.gdecided with
    | Some _ -> []
    | None -> Multi.send ~round:(sub_round round) st.mstate
  in
  let finish st =
    let results = Multi.results st.mstate in
    (* No cross-iteration memory: use every value with grade >= 1 this
       iteration, as in the distribution steps of [1, 33]. *)
    let values =
      Array.to_list results
      |> List.filter_map (fun (r : float Gradecast.result) -> r.value)
    in
    let gvalue =
      match Trim.trimmed_midpoint ~t:st.gt values with
      | Some v -> v
      | None -> st.gvalue
    in
    let gtrajectory_rev = gvalue :: st.gtrajectory_rev in
    let gleft = st.gleft - 1 in
    if gleft <= 0 then
      {
        st with
        gvalue;
        gtrajectory_rev;
        gleft;
        gdecided = Some (mk_result gvalue gtrajectory_rev);
      }
    else
      {
        st with
        gvalue;
        gtrajectory_rev;
        gleft;
        mstate = Multi.start ~n:st.gn ~t:st.gt ~self:st.gself ~own:gvalue;
      }
  in
  let receive ~round ~self:_ ~inbox st =
    match st.gdecided with
    | Some _ -> st
    | None ->
        let sub = sub_round round in
        let st = { st with mstate = Multi.receive ~round:sub ~inbox st.mstate } in
        if sub = 3 then finish st else st
  in
  {
    Protocol.name = "iterated-midpoint-gradecast";
    init;
    send;
    receive;
    output = (fun st -> st.gdecided);
  }

let observe_naive (st : naive_state) = Some st.value

let observe_gradecast (st : gc_state) = Some st.gvalue

let run_naive ?(seed = 0) ?telemetry ~inputs ~t ~iterations ~adversary () =
  let n = Array.length inputs in
  Sync_engine.run ~n ~t ~seed ?telemetry ~observe:observe_naive
    ~max_rounds:(max 1 iterations)
    ~protocol:(naive ~inputs:(fun self -> inputs.(self)) ~t ~iterations)
    ~adversary ()

let run_gradecast ?(seed = 0) ?telemetry ~inputs ~t ~iterations ~adversary () =
  let n = Array.length inputs in
  Sync_engine.run ~n ~t ~seed ?telemetry ~observe:observe_gradecast
    ~max_rounds:(max 1 (3 * iterations))
    ~protocol:(with_gradecast ~inputs:(fun self -> inputs.(self)) ~t ~iterations)
    ~adversary ()
