open Aat_engine
open Aat_gradecast
module Multi = Gradecast.Multi

type result = { value : float; iterations_used : int }

type state = {
  n : int;
  t : int;
  self : Types.party_id;
  eps : float;
  value : float;
  iteration : int; (* 1-based index of the running iteration *)
  max_iterations : int;
  mstate : (float * bool) Multi.state;
  faulty : bool array;
  locked : float option array; (* DONE values standing in for halted peers *)
  announcing : bool; (* this iteration carries our DONE flag *)
  decided : result option;
}

let sub_round round = ((round - 1) mod 3) + 1

let start_multi st announcing =
  Multi.start ~n:st.n ~t:st.t ~self:st.self ~own:(st.value, announcing)

let init ~inputs ~t ~eps ~max_iterations ~self ~n =
  let value = inputs self in
  let st =
    {
      n;
      t;
      self;
      eps;
      value;
      iteration = 1;
      max_iterations;
      mstate = Multi.start ~n ~t ~self ~own:(value, false);
      faulty = Array.make n false;
      locked = Array.make n None;
      announcing = false;
      decided = None;
    }
  in
  if max_iterations <= 0 then
    { st with decided = Some { value; iterations_used = 0 } }
  else st

let send ~round st =
  match st.decided with
  | Some _ -> []
  | None -> Multi.send ~round:(sub_round round) st.mstate

let finish_iteration st =
  let results = Multi.results st.mstate in
  let faulty = Array.copy st.faulty in
  let locked = Array.copy st.locked in
  (* contributions: locked values first, then this iteration's grades *)
  let values = ref [] in
  Array.iteri
    (fun leader (r : (float * bool) Gradecast.result) ->
      match locked.(leader) with
      | Some v -> values := v :: !values
      | None -> (
          (match r.grade with
          | Gradecast.G0 | Gradecast.G1 -> faulty.(leader) <- true
          | Gradecast.G2 -> ());
          match r.value with
          | Some (v, done_flag) ->
              values := v :: !values;
              if done_flag then locked.(leader) <- Some v
          | None -> ()))
    results;
  let values = !values in
  (* Known-Byzantine leaders: convicted AND not vouched for by a locked
     value. Halted honest parties are locked, so they never discount t. *)
  let known_byz = ref 0 in
  Array.iteri
    (fun leader bad -> if bad && locked.(leader) = None then incr known_byz)
    faulty;
  let t_eff = max 0 (st.t - !known_byz) in
  let window = Trim.trimmed ~t:t_eff values in
  let new_value =
    match Trim.mean window with Some v -> v | None -> st.value
  in
  let spread =
    match Trim.range window with Some (lo, hi) -> hi -. lo | None -> 0.
  in
  (* While announcing, the value is frozen (we already told everyone). *)
  let value = if st.announcing then st.value else new_value in
  if st.announcing || st.iteration >= st.max_iterations then
    {
      st with
      faulty;
      locked;
      value;
      decided = Some { value; iterations_used = st.iteration };
    }
  else begin
    let announcing = spread <= st.eps +. 1e-12 in
    let st =
      { st with faulty; locked; value; iteration = st.iteration + 1; announcing }
    in
    { st with mstate = start_multi st announcing }
  end

let receive ~round ~inbox st =
  match st.decided with
  | Some _ -> st
  | None ->
      let inbox =
        List.filter
          (fun (e : _ Types.envelope) -> not st.faulty.(e.sender))
          inbox
      in
      let sub = sub_round round in
      let st = { st with mstate = Multi.receive ~round:sub ~inbox st.mstate } in
      if sub = 3 then finish_iteration st else st

let protocol ~inputs ~t ~eps ~max_iterations =
  {
    Protocol.name = "realaa-early-stopping";
    init = (fun ~self ~n -> init ~inputs ~t ~eps ~max_iterations ~self ~n);
    send = (fun ~round ~self:_ st -> send ~round st);
    receive = (fun ~round ~self:_ ~inbox st -> receive ~round ~inbox st);
    output = (fun st -> st.decided);
  }
