let check_args ~range ~eps =
  if eps <= 0. then invalid_arg "Rounds: eps must be positive";
  if range < 0. then invalid_arg "Rounds: negative range"

let bdh_iterations ~range ~eps =
  check_args ~range ~eps;
  let delta = range /. eps in
  if delta <= 1. then 0
  else begin
    let rec go r =
      if Float.pow (float_of_int r) (float_of_int r) >= delta then r else go (r + 1)
    in
    go 1
  end

let bdh_rounds ~range ~eps = 3 * bdh_iterations ~range ~eps

let paper_round_bound ~range ~eps =
  check_args ~range ~eps;
  let delta = range /. eps in
  if delta <= 1. then 0
  else begin
    let l = Float.log2 delta in
    let ll = Float.max 1. (Float.log2 l) in
    int_of_float (Float.ceil (7. *. l /. ll))
  end

let halving_iterations ~range ~eps =
  check_args ~range ~eps;
  let delta = range /. eps in
  if delta <= 1. then 0 else int_of_float (Float.ceil (Float.log2 delta))

let paths_finder_rounds ~n_vertices =
  if n_vertices < 1 then invalid_arg "Rounds.paths_finder_rounds";
  bdh_rounds ~range:(2. *. float_of_int n_vertices) ~eps:1.

let tree_aa_rounds ~n_vertices ~diameter =
  if diameter < 0 then invalid_arg "Rounds.tree_aa_rounds";
  paths_finder_rounds ~n_vertices
  + bdh_rounds ~range:(float_of_int diameter) ~eps:1.
