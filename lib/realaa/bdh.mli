(** RealAA — the gradecast-based approximate agreement protocol of Ben-Or,
    Dolev & Hoch ([6], full version [7]), the building block of TreeAA.

    Each iteration (3 rounds, Remark 3) every party gradecasts its current
    value ({!Gradecast.Multi}). A party then

    - {b blacklists forever} every leader whose gradecast came back with
      grade ≤ 1, dropping all its future messages. An inclusion
      inconsistency (value used by one honest party, dropped by another)
      needs a 1/0 grade split, which by gradecast soundness means every
      honest party saw grade ≤ 1 — so the leader is convicted everywhere at
      once and can never cause an inconsistency again. This is the paper's
      "each Byzantine party causes inconsistencies at most once" mechanism
      that lets RealAA beat the classic halving outline;
    - collects the values of all leaders graded ≥ 1 this iteration,
      discards the [t] lowest and [t] highest, and moves to the arithmetic
      mean of what remains (the "average" step of Section 4 — averaging,
      not min-max midpointing, is what caps one planted value's pull at
      [range/(n-2t)]).

    Lemma 5: after [R] iterations the honest spread is at most
    [D · t^R / (R^R (n - 2t)^R)]; Lemma 6: values never leave the honest
    input range. With the fixed schedule [Rounds.bdh_iterations] this
    yields AA per Theorem 3.

    The protocol here runs the fixed schedule (all honest parties decide in
    the same round), which is what TreeAA's round barrier requires. *)

open Aat_engine
open Aat_gradecast

type result = {
  value : float;  (** the AA output *)
  trajectory : float list;
      (** the party's value after each iteration, oldest first (initial
          input excluded) — instrumentation for the convergence
          experiments *)
  blacklisted : Types.party_id list;  (** convicted equivocators *)
}

type state

type averaging = Mean | Midpoint

(** Ablation switches. The faithful protocol is {!faithful}; turning any
    knob off reproduces a design variant whose failure mode the ablation
    experiments (A1-A3 in the bench harness) demonstrate:

    - [blacklist = false]: equivocators are never remembered — each
      Byzantine party can cause an inclusion split in {e every} iteration,
      pinning convergence at the classic outline's rate and breaking the
      Theorem 3 schedule;
    - [adaptive_trim = false]: always trim the full [t] — the averaging
      window shrinks as parties are blacklisted and single planted values
      regain leverage, breaking the Lemma 5 factor;
    - [averaging = Midpoint]: min-max midpoint instead of the mean — one
      inclusion split moves the result by half the window regardless of
      [n], again breaking Lemma 5. *)
type knobs = { blacklist : bool; adaptive_trim : bool; averaging : averaging }

val faithful : knobs

val observe : state -> float option
(** The party's current value — pass as [Sync_engine.run ~observe] to record
    per-round honest-value snapshots (convergence curves) in telemetry. *)

val protocol :
  ?knobs:knobs ->
  inputs:(Types.party_id -> float) ->
  t:int ->
  iterations:int ->
  unit ->
  (state, float Gradecast.Multi.msg, result) Protocol.t
(** [iterations] is normally [Rounds.bdh_iterations ~range ~eps] for the
    public input-range bound; the protocol terminates after exactly
    [3 * iterations] rounds. [knobs] defaults to {!faithful}. *)

val simple :
  inputs:(Types.party_id -> float) ->
  t:int ->
  iterations:int ->
  (state, float Gradecast.Multi.msg, float) Protocol.t
(** {!protocol} projected to just the output value. *)

val run :
  ?seed:int ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  ?knobs:knobs ->
  inputs:float array ->
  t:int ->
  iterations:int ->
  adversary:float Gradecast.Multi.msg Adversary.t ->
  unit ->
  (result, float Gradecast.Multi.msg) Sync_engine.report
(** Convenience wrapper implementing the unified Runner signature
    ([~seed ?telemetry ~adversary] + protocol config, like
    [Tree_aa.run]): [inputs.(i)] is party [i]'s input,
    [n = Array.length inputs], [max_rounds] pinned to the fixed
    [3 * iterations] schedule, {!observe} installed for telemetered
    convergence snapshots. *)
