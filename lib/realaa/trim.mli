(** Multiset trimming — the "safe area" computation on ℝ.

    Discarding the [t] lowest and [t] highest of a received multiset leaves
    only values inside the honest range (at most [t] received values are
    Byzantine, so anything surviving both cuts is bracketed by honest
    values on both sides). All AA protocols here compute their new value
    from the trimmed multiset. *)

val trimmed : t:int -> float list -> float list
(** [trimmed ~t values] sorts and removes the [t] smallest and [t] largest
    entries; empty if [List.length values <= 2 * t]. *)

val midpoint : float list -> float option
(** [(min + max) / 2] of a non-empty list. *)

val trimmed_midpoint : t:int -> float list -> float option
(** [midpoint (trimmed ~t values)] — [None] when too few values survive
    (cannot happen for [n > 3t] honest executions). The classic outline's
    step: guarantees the 1/2 factor but no better. *)

val mean : float list -> float option
(** Arithmetic mean of a non-empty list. *)

val trimmed_mean : t:int -> float list -> float option
(** [mean (trimmed ~t values)] — RealAA's iteration step (Section 4: "the
    average of the values remaining after discarding"). Averaging is what
    makes a single inconsistent value move the result by only
    [O(range / (n - 2t))], the per-iteration factor of Lemma 5; the
    min-max midpoint would lose a full half of the range to one planted
    value. *)

val range : float list -> (float * float) option
(** [(min, max)] of a non-empty list. *)
