(** RealAA with the observation-based early termination of [6] (Section 4:
    "the honest parties terminate once they observe that their values are
    ε-close ... possibly in consecutive iterations").

    Same iteration body as {!Bdh} (multi-gradecast, global blacklisting,
    fault-adaptive trimmed mean), plus a termination layer:

    - a party whose trimmed window has spread ≤ ε {e announces} DONE in the
      next iteration: it gradecasts its (now frozen) value with a done
      flag, decides at that iteration's end, and halts;
    - receivers {e lock} a DONE value: it stands in for the halted party in
      every later iteration, so halting neither shrinks the averaging
      window nor — crucially — inflates the fault-adaptive trim discount.
      Only convicted leaders with {e no} locked value count against [t]
      (they are provably Byzantine; a halted honest party is not);
    - a Byzantine DONE cannot split the locked value: grade soundness makes
      any two honest parties lock the same value, and a 1/0 inclusion split
      blacklists the leader everywhere at once, as in the fixed-schedule
      protocol;
    - [max_iterations] (normally the Theorem 3 schedule) is a completeness
      backstop: a party that never observes the condition decides when the
      schedule runs out.

    Fault-free, the honest multisets coincide from the first iteration, so
    everyone observes spread 0 at iteration 2 and decides after iteration
    3 — 9 rounds total independent of [D], versus the fixed schedule's
    [3·R_RealAA(D, ε)]. Experiment E8 measures this. Honest parties decide
    in consecutive iterations, not simultaneously — which is exactly why
    TreeAA uses the fixed-schedule variant plus a round barrier. *)

open Aat_engine
open Aat_gradecast

type result = {
  value : float;
  iterations_used : int;  (** iterations this party ran before deciding *)
}

type state

val protocol :
  inputs:(Types.party_id -> float) ->
  t:int ->
  eps:float ->
  max_iterations:int ->
  (state, (float * bool) Gradecast.Multi.msg, result) Protocol.t
