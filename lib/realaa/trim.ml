let trimmed ~t values =
  if t < 0 then invalid_arg "Trim.trimmed: negative t";
  let sorted = List.sort compare values in
  let len = List.length sorted in
  if len <= 2 * t then []
  else sorted |> List.filteri (fun i _ -> i >= t && i < len - t)

let range = function
  | [] -> None
  | x :: xs ->
      Some (List.fold_left min x xs, List.fold_left max x xs)

let midpoint values =
  Option.map (fun (lo, hi) -> (lo +. hi) /. 2.) (range values)

let trimmed_midpoint ~t values = midpoint (trimmed ~t values)

let mean = function
  | [] -> None
  | values ->
      let total = List.fold_left ( +. ) 0. values in
      Some (total /. float_of_int (List.length values))

let trimmed_mean ~t values = mean (trimmed ~t values)
