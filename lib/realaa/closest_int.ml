let closest_int j =
  if Float.is_nan j then invalid_arg "closest_int: nan";
  if Float.abs j > 1e15 then invalid_arg "closest_int: out of safe integer range";
  let z = Float.floor j in
  let zi = int_of_float z in
  if j -. z < 0.5 then zi else zi + 1
