(** Round and iteration budgets for the AA protocols.

    These are the closed forms the experiments compare measured executions
    against. Throughout, [delta = range /. eps] is the ratio between the
    public bound on the honest input spread and the target agreement. *)

val bdh_iterations : range:float -> eps:float -> int
(** Smallest [R >= 0] with [R^R >= range/eps] — enough iterations for
    RealAA: Lemma 5 bounds the final spread by [range * t^R / (R^R (n-2t)^R)
    <= range / R^R] for [t < n/3]. [0] when [range <= eps]. *)

val bdh_rounds : range:float -> eps:float -> int
(** [3 * bdh_iterations] — each RealAA iteration is one 3-round multi-
    gradecast (Remark 3). This is the fixed schedule [R_RealAA(range, eps)]
    that TreeAA's barrier uses. *)

val paper_round_bound : range:float -> eps:float -> int
(** Theorem 3's closed form [⌈7·log2(delta) / log2 log2 (delta)⌉], with the
    denominator clamped to 1 for tiny [delta] (the theorem assumes delta
    large enough that its log-log is positive). Our schedule
    {!bdh_rounds} is asymptotically equal and never larger for
    [delta >= 2]. *)

val halving_iterations : range:float -> eps:float -> int
(** [⌈log2 delta⌉] — iterations of the classic midpoint outline whose
    per-iteration convergence factor is 1/2 ([12, 33]). *)

val paths_finder_rounds : n_vertices:int -> int
(** [R_PathsFinder = R_RealAA(2·|V(T)|, 1)] (Lemma 4). *)

val tree_aa_rounds : n_vertices:int -> diameter:int -> int
(** Total fixed schedule of TreeAA: [R_PathsFinder + R_RealAA(D(T), 1)]
    (proof of Theorem 4). *)
