open Aat_engine
open Aat_gradecast
module Multi = Gradecast.Multi

type result = {
  value : float;
  trajectory : float list;
  blacklisted : Types.party_id list;
}

type averaging = Mean | Midpoint

type knobs = { blacklist : bool; adaptive_trim : bool; averaging : averaging }

let faithful = { blacklist = true; adaptive_trim = true; averaging = Mean }

type state = {
  n : int;
  t : int;
  self : Types.party_id;
  knobs : knobs;
  value : float;
  iterations_left : int;
  mstate : float Multi.state;
  faulty : bool array;
  trajectory_rev : float list;
  decided : result option;
}

let decide st =
  {
    st with
    decided =
      Some
        {
          value = st.value;
          trajectory = List.rev st.trajectory_rev;
          blacklisted =
            List.filter (fun p -> st.faulty.(p)) (List.init st.n Fun.id);
        };
  }

let sub_round round = ((round - 1) mod 3) + 1

let init ~knobs ~inputs ~t ~iterations ~self ~n =
  let value = inputs self in
  let st =
    {
      n;
      t;
      self;
      knobs;
      value;
      iterations_left = iterations;
      mstate = Multi.start ~n ~t ~self ~own:value;
      faulty = Array.make n false;
      trajectory_rev = [];
      decided = None;
    }
  in
  if iterations <= 0 then decide st else st

let send ~round st =
  match st.decided with
  | Some _ -> []
  | None -> Multi.send ~round:(sub_round round) st.mstate

(* End of one iteration.

   Inclusion and blacklisting follow [6]: a value is used whenever its
   gradecast returned grade >= 1, and a leader graded <= 1 is blacklisted —
   all its future messages are ignored (see [receive]), which drives all its
   future gradecasts to grade 0 at every honest party.

   Why this gives "each Byzantine party causes an inconsistency at most
   once": an inclusion split (some honest party uses the value, another does
   not) requires grades 1-at-one and 0-at-another for the same instance; a
   grade 0 anywhere rules out grade 2 everywhere (gradecast soundness), so
   in that iteration every honest party saw grade <= 1 and all blacklisted
   the leader together. A 2/1 grade split is NOT an inconsistency — both
   parties include the (identical) value that iteration, and the leader's
   subsequent instances are driven to a consistent fate. *)
let finish_iteration st =
  let results = Multi.results st.mstate in
  let faulty = Array.copy st.faulty in
  if st.knobs.blacklist then
    Array.iteri
      (fun leader (r : float Gradecast.result) ->
        match r.grade with
        | Gradecast.G0 | Gradecast.G1 -> faulty.(leader) <- true
        | Gradecast.G2 -> ())
      results;
  let values =
    Array.to_list results
    |> List.filter_map (fun (r : float Gradecast.result) -> r.value)
  in
  (* Fault-adaptive trimming: a leader whose instance came back grade 0 is
     provably Byzantine (honest leaders always reach grade 2), so at most
     [t - excluded] of the included values are Byzantine. Trimming only
     that many keeps the averaging window at >= n - 2t values — with the
     full [t] the window would shrink as parties get blacklisted and a
     single planted value could move the mean by half the range, breaking
     the per-iteration factor of Lemma 5. *)
  let excluded = st.n - List.length values in
  let t_eff =
    if st.knobs.adaptive_trim then max 0 (st.t - excluded) else st.t
  in
  let averaged =
    match st.knobs.averaging with
    | Mean -> Trim.trimmed_mean ~t:t_eff values
    | Midpoint -> Trim.trimmed_midpoint ~t:t_eff values
  in
  let value =
    match averaged with
    | Some v -> v
    | None -> st.value (* too few values survive: keep the old value *)
  in
  let st =
    {
      st with
      value;
      faulty;
      trajectory_rev = value :: st.trajectory_rev;
      iterations_left = st.iterations_left - 1;
    }
  in
  if st.iterations_left <= 0 then decide st
  else
    { st with mstate = Multi.start ~n:st.n ~t:st.t ~self:st.self ~own:value }

let receive ~round ~inbox st =
  match st.decided with
  | Some _ -> st
  | None ->
      let sub = sub_round round in
      (* "Ignore p̃ in all future iterations": messages from blacklisted
         parties are dropped before the gradecast logic sees them, which
         forces grade 0 for their instances at every honest party. *)
      let inbox =
        List.filter
          (fun (e : _ Types.envelope) -> not st.faulty.(e.sender))
          inbox
      in
      let mstate = Multi.receive ~round:sub ~inbox st.mstate in
      let st = { st with mstate } in
      if sub = 3 then finish_iteration st else st

let observe st = Some st.value

let protocol ?(knobs = faithful) ~inputs ~t ~iterations () =
  {
    Protocol.name = "realaa-bdh";
    init = (fun ~self ~n -> init ~knobs ~inputs ~t ~iterations ~self ~n);
    send = (fun ~round ~self:_ st -> send ~round st);
    receive = (fun ~round ~self:_ ~inbox st -> receive ~round ~inbox st);
    output = (fun st -> st.decided);
  }

let simple ~inputs ~t ~iterations =
  Protocol.map_output
    (fun (r : result) -> r.value)
    (protocol ~inputs ~t ~iterations ())

let run ?(seed = 0) ?telemetry ?knobs ~inputs ~t ~iterations ~adversary () =
  let n = Array.length inputs in
  Sync_engine.run ~n ~t ~seed ?telemetry ~observe
    ~max_rounds:(max 1 (3 * iterations))
    ~protocol:(protocol ?knobs ~inputs:(fun self -> inputs.(self)) ~t ~iterations ())
    ~adversary ()
