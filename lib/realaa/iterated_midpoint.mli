(** The classic iteration-based AA outline ([12]; also the per-iteration
    shape of [33]) — the baselines RealAA is measured against.

    Two variants:

    - {!naive}: one round per iteration. Everyone broadcasts its value,
      trims [t] from each side of what it received, and moves to the
      midpoint. Synchronous, [t < n/3]; the honest spread at least halves
      per iteration, so [⌈log2(D/ε)⌉] iterations suffice — the classic
      [O(log (D/ε))]-round protocol.

    - {!with_gradecast}: three rounds per iteration; values are distributed
      by multi-gradecast so honest parties' multisets agree on every common
      entry (this mirrors the reliable-broadcast distribution of the
      asynchronous protocols [1, 33]). Same halving rate. This variant
      exists because the tree baseline (Nowak–Rybicki style) needs the
      consistent-multiset property, and to quantify gradecast's 3× round
      overhead in the benchmarks.

    Neither variant blacklists equivocators across iterations — the whole
    point of the comparison with {!Bdh}: a Byzantine party here can slow
    convergence in {e every} iteration, pinning the factor at 1/2, whereas
    RealAA's detection forces the [t^R/(R^R (n-2t)^R)] factor of Lemma 5. *)

open Aat_engine
open Aat_gradecast

type result = { value : float; trajectory : float list }

type naive_state

type gc_state

val naive :
  inputs:(Types.party_id -> float) ->
  t:int ->
  iterations:int ->
  (naive_state, float, result) Protocol.t

val with_gradecast :
  inputs:(Types.party_id -> float) ->
  t:int ->
  iterations:int ->
  (gc_state, float Gradecast.Multi.msg, result) Protocol.t

val naive_simple :
  inputs:(Types.party_id -> float) ->
  t:int ->
  iterations:int ->
  (naive_state, float, float) Protocol.t

val observe_naive : naive_state -> float option
(** The party's current value — convergence snapshots for telemetry. *)

val observe_gradecast : gc_state -> float option

val run_naive :
  ?seed:int ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  inputs:float array ->
  t:int ->
  iterations:int ->
  adversary:float Adversary.t ->
  unit ->
  (result, float) Sync_engine.report
(** Unified Runner signature over {!naive}: [inputs.(i)] is party [i]'s
    input, [max_rounds] pinned to the [iterations]-round schedule. *)

val run_gradecast :
  ?seed:int ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  inputs:float array ->
  t:int ->
  iterations:int ->
  adversary:float Gradecast.Multi.msg Adversary.t ->
  unit ->
  (result, float Gradecast.Multi.msg) Sync_engine.report
(** Unified Runner signature over {!with_gradecast} ([3 * iterations]
    rounds). *)
