(** The paper's [closestInt] rounding (Section 4).

    For [z <= j < z + 1], [closestInt j = z] if [j - z < (z + 1) - j] and
    [z + 1] otherwise — i.e. round to nearest, with the half-point rounding
    up. Two facts the protocols rely on:

    - Remark 1: if [j ∈ [i_min, i_max]] with integer bounds, then
      [closestInt j ∈ [i_min, i_max]];
    - Remark 2: if [|j - j'| <= 1] then
      [|closestInt j - closestInt j'| <= 1]. *)

val closest_int : float -> int
(** Raises [Invalid_argument] on NaN or values outside [int] range. *)
