open Aat_engine

module Keyring = struct
  type key = { id : Types.party_id; nonce : int64 }

  type t = { keys : key array }

  (* The nonce binds signatures to the key instance; within one process the
     abstraction barrier already prevents forging, the nonce additionally
     catches accidental cross-run mixing of signed values in tests. *)
  let setup ~n =
    let rng = Aat_util.Rng.create 0x5163 in
    { keys = Array.init n (fun id -> { id; nonce = Aat_util.Rng.int64 rng }) }

  let key t p = t.keys.(p)

  let signer k = k.id
end

type 'a signed = { payload : 'a; by : Types.party_id; seal : int64 }

let sign (k : Keyring.key) payload = { payload; by = k.id; seal = k.nonce }

let data s = s.payload

let signer s = s.by

let conflict s s' = s.by = s'.by && s.seal = s'.seal && s.payload <> s'.payload

module Accountable = struct
  type 'a outcome =
    | Accepted of 'a signed
    | Missing
    | Convicted of 'a signed * 'a signed

  type 'a msg = Announce of 'a signed | Forward of 'a signed list

  type 'a state = {
    n : int;
    key : Keyring.key;
    (* per sender: every distinct signed value seen, with the round it was
       first seen in *)
    seen : (Types.party_id, ('a signed * int) list) Hashtbl.t;
    decided : 'a outcome array option;
  }

  let rounds = 3

  let note st ~round s =
    let prior = Option.value ~default:[] (Hashtbl.find_opt st.seen (signer s)) in
    if not (List.exists (fun (s', _) -> s' = s) prior) then
      Hashtbl.replace st.seen (signer s) ((s, round) :: prior)

  let everything_seen st =
    Hashtbl.fold (fun _ entries acc -> List.map fst entries @ acc) st.seen []

  let decide st =
    let outcome sender =
      match Option.value ~default:[] (Hashtbl.find_opt st.seen sender) with
      | [] -> Missing
      | [ (s, first_round) ] -> if first_round <= 2 then Accepted s else Missing
      | (a, _) :: (b, _) :: _ -> Convicted (a, b)
    in
    Array.init st.n outcome

  let protocol ~keyring ~inputs =
    {
      Protocol.name = "accountable-broadcast";
      init =
        (fun ~self ~n ->
          let key = Keyring.key keyring self in
          let st = { n; key; seen = Hashtbl.create n; decided = None } in
          note st ~round:1 (sign key (inputs self));
          st);
      send =
        (fun ~round ~self:_ st ->
          let body =
            match round with
            | 1 -> (
                match Hashtbl.find_opt st.seen (Keyring.signer st.key) with
                | Some [ (own, _) ] -> Announce own
                | _ -> assert false)
            | 2 | 3 -> Forward (everything_seen st)
            | _ -> Forward []
          in
          List.init st.n (fun p -> (p, body)));
      receive =
        (fun ~round ~self:_ ~inbox st ->
          List.iter
            (fun (e : _ Types.envelope) ->
              match e.Types.payload with
              | Announce s ->
                  (* a replayed announcement (signer <> channel sender) is
                     still valid evidence — signatures transfer *)
                  note st ~round s
              | Forward ss -> List.iter (note st ~round) ss)
            inbox;
          if round >= 3 then { st with decided = Some (decide st) } else st);
      output = (fun st -> st.decided);
    }

  let forge ~key v = Announce (sign key v)

  let forward_msg ss = Forward ss
end
