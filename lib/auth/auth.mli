(** Simulated digital signatures for the authenticated setting.

    The paper's closing note observes that the TreeAA reduction is
    threshold-agnostic: swap RealAA for an authenticated-model protocol
    (Proxcensus [22]) and the tree layer tolerates [t < n/2]. That needs a
    signature abstraction. In a simulation, what a protocol actually uses
    from signatures is {e unforgeability} plus {e transferability}, and
    both can be provided structurally, without cryptography:

    - a [signed] value can only be constructed by {!sign}, which demands
      the signer's {!Keyring.key} — a capability handed out by trusted
      setup. Honest parties' keys never reach the adversary, so forging an
      honest signature is impossible {e by construction} (it is not merely
      computationally hard);
    - [signed] values are ordinary data: they can be stored, forwarded and
      re-sent by anyone — replay and transfer behave exactly as with real
      signatures.

    {!Accountable} builds the derived primitive the authenticated AA
    protocols rest on: equivocation-evident broadcast, where signing two
    different values in the same instance yields a transferable fraud
    proof. *)

open Aat_engine

module Keyring : sig
  type t
  (** The output of trusted setup: one signing capability per party. *)

  type key

  val setup : n:int -> t

  val key : t -> Types.party_id -> key
  (** The dealer's handout: the experiment harness passes [key ring i] to
      party [i]'s protocol closure — and to the adversary only for
      corrupted [i]. *)

  val signer : key -> Types.party_id
end

type 'a signed

val sign : Keyring.key -> 'a -> 'a signed

val data : 'a signed -> 'a

val signer : 'a signed -> Types.party_id

val conflict : 'a signed -> 'a signed -> bool
(** [conflict s s'] — same signer, different data: a fraud proof. Anyone
    holding such a pair can convince anyone else, so conviction is
    transferable. *)

(** Equivocation-evident broadcast: every party signs and announces a value
    (round 1), then twice forwards everything it has seen (rounds 2-3).

    Guarantees (any [t < n], proved in the test suite):

    - {b validity}: an honest sender's value is [Accepted] by every honest
      party;
    - {b value consistency}: no two honest parties accept {e different}
      values from the same sender — acceptance requires having seen a
      single value for the sender, arrived early enough (by round 2) that
      its holder's round-3 forward exposed it to everyone, so a second
      accepted value would have produced a fraud proof instead;
    - {b accountability}: a [Convicted] outcome carries two conflicting
      signatures — unforgeable evidence, so honest senders are never
      convicted.

    What it does {e not} give: inclusion consistency — a Byzantine sender
    can still arrange for some honest parties to end [Missing] while
    others [Accept]. Closing that gap with fewer than [Theta(t)] rounds is
    precisely the hard part of Proxcensus [22], which is out of scope here
    (see DESIGN.md, substitutions). *)
module Accountable : sig
  type 'a outcome =
    | Accepted of 'a signed
    | Missing
    | Convicted of 'a signed * 'a signed
        (** the fraud proof: two conflicting signatures *)

  type 'a state

  (** Wire format — public so Byzantine strategies can read and forge it,
      as a real Byzantine party could. What they cannot do is mint an ['a
      signed] for a key they do not hold. *)
  type 'a msg =
    | Announce of 'a signed  (** round 1 *)
    | Forward of 'a signed list  (** rounds 2-3 *)

  val rounds : int
  (** = 3 *)

  val protocol :
    keyring:Keyring.t ->
    inputs:(Types.party_id -> 'a) ->
    ('a state, 'a msg, 'a outcome array) Protocol.t
  (** Party [p] announces [inputs p]; the output is one outcome per
      sender. *)

  val forge :
    key:Keyring.key -> 'a -> 'a msg
  (** An adversary helper: the round-1 announcement for an arbitrary value
      under a (corrupted) key — sending two different forgeries to
      different parties is the equivocation the tests convict. *)

  val forward_msg : 'a signed list -> 'a msg
  (** An adversary helper: a round-2/3 forward carrying chosen (replayed)
      signed values. *)
end
