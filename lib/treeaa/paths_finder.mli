(** PathsFinder (Section 6): approximate agreement on a root-anchored path
    that intersects the honest inputs' convex hull.

    Each party computes the Euler-tour list [L = ListConstruction(T,
    v_root)] locally (identical everywhere), joins RealAA(1) with
    [min L(v_IN)] — the first occurrence of its input vertex — and returns
    the path from the root to [L_closestInt(j)].

    Lemma 4 guarantees: (1) every returned path intersects the honest
    inputs' hull (via Lemma 3 — the LCA of the extreme honest indices lies
    on every such root path); and (2) the returned paths are identical up
    to one extra edge, because the returned endpoints are 1-close vertices
    on consecutive tour positions. The fixed schedule is
    [R_PathsFinder = Rounds.bdh_rounds ~range:(|L| - 1) ~eps:1.] with
    [|L| - 1 = 2·|V(T)| - 2 <= 2·|V(T)|], matching the paper's
    [R_RealAA(2·|V(T)|, 1)] bound. *)

open Aat_tree
open Aat_engine
open Aat_gradecast

type state

val protocol :
  tree:Labeled_tree.t ->
  inputs:(Types.party_id -> Labeled_tree.vertex) ->
  t:int ->
  (state, float Gradecast.Multi.msg, Paths.path) Protocol.t
(** Output paths run from the root (index 0) to the agreed vertex, the
    orientation Section 7 numbers them in. *)

val rounds : tree:Labeled_tree.t -> int
(** Exact number of rounds of the fixed schedule (may be 0 for trees with
    [|V(T)| <= 1]). *)
