(** The state-of-the-art baseline TreeAA is compared against: an
    iteration-based AA-on-trees protocol in the style of Nowak & Rybicki
    [33], with [O(log D(T))] iterations.

    Each iteration distributes the parties' current vertices by
    multi-gradecast (standing in for the reliable-broadcast distribution of
    the asynchronous original — 3 rounds, consistent multisets), computes
    the {e safe area} — the intersection of the convex hulls of all
    [(m - t)]-subsets of the received multiset — and moves to the midpoint
    of the safe area's diameter path. The safe area always lies inside the
    honest inputs' hull (any [(m-t)]-subset contains only honest-hull
    vertices after discarding the [<= t] Byzantine contributions), giving
    Validity; its per-iteration contraction gives 1-Agreement after
    [O(log D(T))] iterations.

    On a path input space this degenerates exactly to trimmed-midpoint AA
    on indices — the tree generalisation of the classic outline the paper's
    introduction describes. *)

open Aat_tree
open Aat_engine
open Aat_gradecast

type state

val safe_vertices :
  Rooted.t -> t:int -> Labeled_tree.vertex list -> Labeled_tree.vertex list
(** [safe_vertices rooted ~t multiset] — all vertices [v] such that every
    component of [T - v] contains at most [m - t - 1] multiset elements
    (with [m = List.length multiset]), i.e. the vertices contained in the
    hull of {e every} [(m-t)]-subset. Sorted ascending; empty only when
    [m <= 2t] (never in honest executions with [n > 3t]). *)

val center_of : Rooted.t -> Labeled_tree.vertex list -> Labeled_tree.vertex
(** Deterministic midpoint of the set's diameter path (the set must induce
    a connected subtree, which safe areas do). *)

val iterations_for : Labeled_tree.t -> int
(** [⌈log2 D(T)⌉ + 2] — halving schedule with slack for integer rounding. *)

val protocol :
  tree:Labeled_tree.t ->
  inputs:(Types.party_id -> Labeled_tree.vertex) ->
  t:int ->
  iterations:int ->
  (state, Labeled_tree.vertex Gradecast.Multi.msg, Labeled_tree.vertex) Protocol.t

val rounds : tree:Labeled_tree.t -> int
(** [3 * iterations_for tree]. *)

val run :
  ?seed:int ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:Labeled_tree.vertex Gradecast.Multi.msg Adversary.t ->
  unit ->
  (Labeled_tree.vertex, Labeled_tree.vertex Gradecast.Multi.msg) Sync_engine.report
