open Aat_tree
open Aat_engine
open Aat_gradecast
open Aat_realaa

type inner = (Paths_finder.state, Paths.path, Bdh.state) Composed.state

type state = Trivial of Labeled_tree.vertex | Running of inner

type msg = (float Gradecast.Multi.msg, float Gradecast.Multi.msg) Composed.msg

let trivial ~inputs : (state, msg, Labeled_tree.vertex) Protocol.t =
  {
    name = "tree-aa";
    init = (fun ~self ~n:_ -> Trivial (inputs self));
    send = (fun ~round:_ ~self:_ _ -> []);
    receive = (fun ~round:_ ~self:_ ~inbox:_ st -> st);
    output = (function Trivial v -> Some v | Running _ -> None);
  }

let phase2 ~tree ~rooted ~inputs ~t ~iterations own_path :
    (Bdh.state, float Gradecast.Multi.msg, Labeled_tree.vertex) Protocol.t =
  ignore tree;
  let k = Array.length own_path in
  let real_inputs self =
    float_of_int (Projection.onto_path_index rooted own_path (inputs self))
  in
  let to_vertex (r : Bdh.result) =
    (* Line 6 of TreeAA: an index past one's own (shorter) path resolves to
       the path's last vertex — the paper's proof shows all honest outputs
       then land on the two adjacent candidates v_{k*} and v_{k*+1}. *)
    let c = Closest_int.closest_int r.value in
    own_path.(max 0 (min (k - 1) c))
  in
  Protocol.map_output to_vertex (Bdh.protocol ~inputs:real_inputs ~t ~iterations ())

let rounds ~tree =
  let d = Metrics.diameter tree in
  if d <= 1 then 0
  else
    max 1 (Paths_finder.rounds ~tree)
    + Rounds.bdh_rounds ~range:(float_of_int d) ~eps:1.

let protocol ~tree ~inputs ~t : (state, msg, Labeled_tree.vertex) Protocol.t =
  let d = Metrics.diameter tree in
  if d <= 1 then trivial ~inputs
  else begin
    let rooted = Rooted.make tree in
    let iterations2 = Rounds.bdh_iterations ~range:(float_of_int d) ~eps:1. in
    let first = Paths_finder.protocol ~tree ~inputs ~t in
    let inner =
      Protocol.sequential ~name:"tree-aa" ~first
        ~rounds_of_first:(max 1 (Paths_finder.rounds ~tree))
        ~second:(fun own_path ->
          phase2 ~tree ~rooted ~inputs ~t ~iterations:iterations2 own_path)
    in
    {
      name = "tree-aa";
      init = (fun ~self ~n -> Running (inner.init ~self ~n));
      send =
        (fun ~round ~self -> function
          | Running st -> inner.send ~round ~self st
          | Trivial _ -> []);
      receive =
        (fun ~round ~self ~inbox -> function
          | Running st -> Running (inner.receive ~round ~self ~inbox st)
          | Trivial v -> Trivial v);
      output =
        (function Running st -> inner.output st | Trivial v -> Some v);
    }
  end

(* The party's phase-2 RealAA value — its current position (path index) on
   its own candidate path. Phase 1 and the trivial protocol have no
   real-valued state to observe. *)
let observe = function
  | Trivial _ -> None
  | Running st -> (
      match st.Composed.phase with
      | Composed.Phase2 (_, bdh) -> Bdh.observe bdh
      | Composed.Phase1 _ | Composed.Bridged _ -> None)

let run ?(seed = 0) ?telemetry ~tree ~inputs ~t ~adversary () =
  let n = Array.length inputs in
  Sync_engine.run ~n ~t ~seed ?telemetry ~observe
    ~max_rounds:(max 1 (rounds ~tree))
    ~protocol:(protocol ~tree ~inputs:(fun self -> inputs.(self)) ~t)
    ~adversary ()
