(** TreeAA — the paper's main protocol (Section 7, Theorem 4).

    Structure, exactly as in the paper's pseudocode:

    + fix [v_root], the lowest-labeled vertex;
    + run {!Paths_finder} to obtain a root-anchored path [P] intersecting
      the honest inputs' convex hull (all honest paths equal up to one
      trailing edge);
    + wait until round [R_PathsFinder] ends — the synchronisation barrier of
      line 4, realised by {!Aat_engine.Protocol.sequential};
    + join RealAA(1) with the position of [proj_P(v_IN)] on one's own path;
    + output the path vertex at [closestInt(j)], or the own path's last
      vertex when [closestInt(j)] runs past it (the party then holds the
      shorter of the two candidate paths and the paper's case analysis
      shows every honest party outputs one of two adjacent vertices).

    Round complexity: [R_PathsFinder + R_RealAA(D(T), 1)] =
    [O(log |V(T)| / log log |V(T)|)]. Resilience: inherited from RealAA —
    [t < n/3] here, and anything RealAA is swapped for in the
    authenticated setting (the paper's [t < n/2] note).

    Trees with [D(T) <= 1] are the trivial case: every party returns its
    own input without communication. *)

open Aat_tree
open Aat_engine
open Aat_gradecast

type state

type msg =
  ( float Gradecast.Multi.msg,
    float Gradecast.Multi.msg )
  Composed.msg

val protocol :
  tree:Labeled_tree.t ->
  inputs:(Types.party_id -> Labeled_tree.vertex) ->
  t:int ->
  (state, msg, Labeled_tree.vertex) Protocol.t

val rounds : tree:Labeled_tree.t -> int
(** The exact fixed schedule (0 for trivial trees): what
    [Sync_engine.run ~max_rounds] can be pinned to. *)

val observe : state -> float option
(** The party's current RealAA value (its position on its candidate path)
    during phase 2; [None] during path-finding and for trivial trees. {!run}
    installs this automatically, so telemetered TreeAA runs get per-round
    honest-value snapshots — the hull-diameter convergence curve — for
    free. *)

val run :
  ?seed:int ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:msg Adversary.t ->
  unit ->
  (Labeled_tree.vertex, msg) Sync_engine.report
(** Convenience wrapper: [inputs.(i)] is party [i]'s input vertex,
    [n = Array.length inputs]. [telemetry] streams per-round events (with
    {!observe} snapshots) into the given sink. *)
