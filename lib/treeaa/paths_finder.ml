open Aat_tree
open Aat_realaa

type state = Bdh.state

let tour_of tree = Euler_tour.compute (Rooted.make tree)

let rounds ~tree =
  let len = Euler_tour.length (tour_of tree) in
  Rounds.bdh_rounds ~range:(float_of_int (len - 1)) ~eps:1.

let protocol ~tree ~inputs ~t =
  let rooted = Rooted.make tree in
  let tour = Euler_tour.compute rooted in
  let len = Euler_tour.length tour in
  let iterations =
    Rounds.bdh_iterations ~range:(float_of_int (len - 1)) ~eps:1.
  in
  let real_inputs self =
    float_of_int (Euler_tour.first_occurrence tour (inputs self))
  in
  let to_path (r : Bdh.result) =
    let c = Closest_int.closest_int r.value in
    let c = max 0 (min (len - 1) c) in
    let target = Euler_tour.vertex_at tour c in
    (* P(v_root, L_c): root-to-vertex order. *)
    Array.of_list (Rooted.path_to_root rooted target)
  in
  let base = Bdh.protocol ~inputs:real_inputs ~t ~iterations () in
  { (Aat_engine.Protocol.map_output to_path base) with name = "paths-finder" }
