(** Stepping stone: AA on a tree when a path intersecting the honest
    inputs' convex hull is publicly known (Section 5).

    Every party projects its input vertex onto the known path [P]
    ([Projection]); Lemma 1 puts all honest projections inside
    [V(P) ∩ ⟨honest inputs⟩], so running the Section-4 machinery on the
    projections' positions yields 1-close, valid vertices of [P]. *)

open Aat_tree
open Aat_engine
open Aat_gradecast

type state

val protocol :
  tree:Labeled_tree.t ->
  path:Paths.path ->
  inputs:(Types.party_id -> Labeled_tree.vertex) ->
  t:int ->
  (state, float Gradecast.Multi.msg, Labeled_tree.vertex) Protocol.t
(** [path] is a path of [tree] (checked), oriented as given — callers that
    want the paper's lexicographic orientation pass
    [Paths.orient tree path]. The fixed schedule is
    [Rounds.bdh_rounds ~range:(|path| - 1) ~eps:1.]. *)

val rounds : path:Paths.path -> int

val observe : state -> float option
(** The party's current RealAA value (its projection's position on the
    known path) — installed by {!run} for telemetered snapshots. *)

val run :
  ?seed:int ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  tree:Labeled_tree.t ->
  path:Paths.path ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:float Gradecast.Multi.msg Adversary.t ->
  unit ->
  (Labeled_tree.vertex, float Gradecast.Multi.msg) Sync_engine.report
(** Unified Runner signature (like [Tree_aa.run]): [inputs.(i)] is party
    [i]'s input vertex, [max_rounds] pinned to the fixed schedule. *)
