(** Warm-up: AA when the input space is a labeled path (Section 4).

    The parties number the path's vertices [(v_1, ..., v_k)] from the
    endpoint with the lexicographically lower label, join RealAA(1) with
    their vertex's position, and output the vertex at [closestInt] of the
    real result. Remark 1 gives Validity, Remark 2 gives 1-Agreement, and
    Theorem 3 gives [O(log D(P) / log log D(P))] rounds. *)

open Aat_tree
open Aat_engine
open Aat_gradecast

type state

val protocol :
  path:Labeled_tree.t ->
  inputs:(Types.party_id -> Labeled_tree.vertex) ->
  t:int ->
  (state, float Gradecast.Multi.msg, Labeled_tree.vertex) Protocol.t
(** [path] must be a path graph (every vertex of degree <= 2); raises
    [Invalid_argument] otherwise. *)

val rounds : path:Labeled_tree.t -> int
(** The exact fixed schedule: [Rounds.bdh_rounds ~range:(D(P)) ~eps:1.]. *)

val canonical_order : Labeled_tree.t -> Paths.path
(** The paper's [(v_1, ..., v_k)] numbering: the path's vertices from the
    lower-labeled endpoint. *)
