(** Warm-up: AA when the input space is a labeled path (Section 4).

    The parties number the path's vertices [(v_1, ..., v_k)] from the
    endpoint with the lexicographically lower label, join RealAA(1) with
    their vertex's position, and output the vertex at [closestInt] of the
    real result. Remark 1 gives Validity, Remark 2 gives 1-Agreement, and
    Theorem 3 gives [O(log D(P) / log log D(P))] rounds. *)

open Aat_tree
open Aat_engine
open Aat_gradecast

type state

val protocol :
  path:Labeled_tree.t ->
  inputs:(Types.party_id -> Labeled_tree.vertex) ->
  t:int ->
  (state, float Gradecast.Multi.msg, Labeled_tree.vertex) Protocol.t
(** [path] must be a path graph (every vertex of degree <= 2); raises
    [Invalid_argument] otherwise. *)

val rounds : path:Labeled_tree.t -> int
(** The exact fixed schedule: [Rounds.bdh_rounds ~range:(D(P)) ~eps:1.]. *)

val canonical_order : Labeled_tree.t -> Paths.path
(** The paper's [(v_1, ..., v_k)] numbering: the path's vertices from the
    lower-labeled endpoint. *)

val observe : state -> float option
(** The party's current RealAA value (its position on the path) — installed
    by {!run} for telemetered convergence snapshots. *)

val run :
  ?seed:int ->
  ?telemetry:Aat_telemetry.Telemetry.Sink.t ->
  path:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  t:int ->
  adversary:float Gradecast.Multi.msg Adversary.t ->
  unit ->
  (Labeled_tree.vertex, float Gradecast.Multi.msg) Sync_engine.report
(** Unified Runner signature (like [Tree_aa.run]): [inputs.(i)] is party
    [i]'s input vertex, [n = Array.length inputs], [max_rounds] pinned to
    the fixed schedule. *)
