open Aat_tree
open Aat_realaa

type state = Bdh.state

let canonical_order path_tree =
  let n = Labeled_tree.n_vertices path_tree in
  if Labeled_tree.fold_vertices
       (fun v bad -> bad || Labeled_tree.degree path_tree v > 2)
       path_tree false
  then invalid_arg "Path_aa: input space is not a path";
  if n = 1 then [| 0 |]
  else begin
    let p = Metrics.longest_path path_tree in
    if Array.length p <> n then invalid_arg "Path_aa: input space is not a path";
    Paths.orient path_tree p
  end

let rounds ~path =
  Rounds.bdh_rounds ~range:(float_of_int (Metrics.diameter path)) ~eps:1.

let protocol ~path ~inputs ~t =
  let order = canonical_order path in
  let k = Array.length order in
  let position = Array.make k 0 in
  Array.iteri (fun idx v -> position.(v) <- idx) order;
  let iterations =
    Rounds.bdh_iterations ~range:(float_of_int (k - 1)) ~eps:1.
  in
  let real_inputs self = float_of_int position.(inputs self) in
  let to_vertex (r : Bdh.result) =
    (* Remark 1 keeps closestInt inside the honest positions, hence inside
       [0, k-1]; the clamp is belt-and-braces for NaN-free robustness. *)
    let c = Closest_int.closest_int r.value in
    order.(max 0 (min (k - 1) c))
  in
  let base = Bdh.protocol ~inputs:real_inputs ~t ~iterations () in
  {
    (Aat_engine.Protocol.map_output to_vertex base) with
    name = "path-aa";
  }

let observe = Bdh.observe

let run ?(seed = 0) ?telemetry ~path ~inputs ~t ~adversary () =
  let n = Array.length inputs in
  Aat_engine.Sync_engine.run ~n ~t ~seed ?telemetry ~observe
    ~max_rounds:(max 1 (rounds ~path))
    ~protocol:(protocol ~path ~inputs:(fun self -> inputs.(self)) ~t)
    ~adversary ()
