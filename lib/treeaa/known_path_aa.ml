open Aat_tree
open Aat_realaa

type state = Bdh.state

let rounds ~path =
  Rounds.bdh_rounds ~range:(float_of_int (Array.length path - 1)) ~eps:1.

let protocol ~tree ~path ~inputs ~t =
  if not (Paths.is_path tree path) then
    invalid_arg "Known_path_aa: not a path of the tree";
  let k = Array.length path in
  let rooted = Rooted.make tree in
  let iterations =
    Rounds.bdh_iterations ~range:(float_of_int (k - 1)) ~eps:1.
  in
  let real_inputs self =
    float_of_int (Projection.onto_path_index rooted path (inputs self))
  in
  let to_vertex (r : Bdh.result) =
    let c = Closest_int.closest_int r.value in
    path.(max 0 (min (k - 1) c))
  in
  let base = Bdh.protocol ~inputs:real_inputs ~t ~iterations () in
  { (Aat_engine.Protocol.map_output to_vertex base) with name = "known-path-aa" }

let observe = Bdh.observe

let run ?(seed = 0) ?telemetry ~tree ~path ~inputs ~t ~adversary () =
  let n = Array.length inputs in
  Aat_engine.Sync_engine.run ~n ~t ~seed ?telemetry ~observe
    ~max_rounds:(max 1 (rounds ~path))
    ~protocol:(protocol ~tree ~path ~inputs:(fun self -> inputs.(self)) ~t)
    ~adversary ()
