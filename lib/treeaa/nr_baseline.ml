open Aat_tree
open Aat_engine
open Aat_gradecast
module Multi = Gradecast.Multi

type state = {
  n : int;
  t : int;
  self : Types.party_id;
  tree : Labeled_tree.t;
  rooted : Rooted.t;
  vertex : Labeled_tree.vertex;
  iterations_left : int;
  mstate : Labeled_tree.vertex Multi.state;
  decided : Labeled_tree.vertex option;
}

(* v is safe iff no component of T - v can swallow an (m - t)-subset of the
   multiset: every component must hold <= m - t - 1 elements. Component
   counts come from subtree sums over the rooted view. *)
let safe_vertices rooted ~t multiset =
  let tree = Rooted.tree rooted in
  let n = Labeled_tree.n_vertices tree in
  let m = List.length multiset in
  let weight = Array.make n 0 in
  List.iter
    (fun v ->
      if v >= 0 && v < n then weight.(v) <- weight.(v) + 1)
    multiset;
  (* subtree sums, bottom-up over preorder *)
  let sub = Array.copy weight in
  let pre = Rooted.preorder rooted in
  for i = n - 1 downto 1 do
    let v = pre.(i) in
    match Rooted.parent rooted v with
    | Some p -> sub.(p) <- sub.(p) + sub.(v)
    | None -> ()
  done;
  let limit = m - t - 1 in
  let safe v =
    let ok = ref true in
    List.iter
      (fun u ->
        (* The component of T - v containing u: u's subtree when u is v's
           child, everything outside v's subtree when u is v's parent. *)
        let component_count =
          if Rooted.parent rooted u = Some v then sub.(u) else m - sub.(v)
        in
        if component_count > limit then ok := false)
      (Labeled_tree.neighbors tree v);
    !ok
  in
  List.filter safe (Labeled_tree.vertices tree)

let center_of rooted vertices =
  match List.sort_uniq compare vertices with
  | [] -> invalid_arg "Nr_baseline.center_of: empty set"
  | [ v ] -> v
  | v0 :: _ as vs ->
      let tree = Rooted.tree rooted in
      let member = Hashtbl.create 16 in
      List.iter (fun v -> Hashtbl.replace member v ()) vs;
      (* BFS within the set, deterministic tie-break to the smallest id. *)
      let bfs_far src =
        let dist = Hashtbl.create 16 in
        Hashtbl.replace dist src 0;
        let queue = Queue.create () in
        Queue.add src queue;
        let best = ref (src, 0) in
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          let du = Hashtbl.find dist u in
          let bv, bd = !best in
          if du > bd || (du = bd && u < bv) then best := (u, du);
          List.iter
            (fun w ->
              if Hashtbl.mem member w && not (Hashtbl.mem dist w) then begin
                Hashtbl.replace dist w (du + 1);
                Queue.add w queue
              end)
            (Labeled_tree.neighbors tree u)
        done;
        fst !best
      in
      let a = bfs_far v0 in
      let b = bfs_far a in
      let path = Paths.between rooted a b in
      (* all of [path] is in the set: the set induces a connected subtree *)
      path.(Array.length path / 2)

let iterations_for tree =
  let d = Metrics.diameter tree in
  if d <= 1 then 0
  else
    2 + Aat_realaa.Rounds.halving_iterations ~range:(float_of_int d) ~eps:1.

let rounds ~tree = 3 * iterations_for tree

let sub_round round = ((round - 1) mod 3) + 1

let finish_iteration st =
  let results = Multi.results st.mstate in
  let multiset =
    Array.to_list results
    |> List.filter_map (fun (r : Labeled_tree.vertex Gradecast.result) ->
           match r.value with
           | Some v when v >= 0 && v < Labeled_tree.n_vertices st.tree -> Some v
           | Some _ | None -> None)
  in
  let vertex =
    match safe_vertices st.rooted ~t:st.t multiset with
    | [] -> st.vertex (* unreachable for n > 3t *)
    | safe -> center_of st.rooted safe
  in
  let left = st.iterations_left - 1 in
  if left <= 0 then { st with vertex; iterations_left = left; decided = Some vertex }
  else
    {
      st with
      vertex;
      iterations_left = left;
      mstate = Multi.start ~n:st.n ~t:st.t ~self:st.self ~own:vertex;
    }

let protocol ~tree ~inputs ~t ~iterations =
  let rooted = Rooted.make tree in
  {
    Protocol.name = "nr-baseline";
    init =
      (fun ~self ~n ->
        let vertex = inputs self in
        let st =
          {
            n;
            t;
            self;
            tree;
            rooted;
            vertex;
            iterations_left = iterations;
            mstate = Multi.start ~n ~t ~self ~own:vertex;
            decided = None;
          }
        in
        if iterations <= 0 then { st with decided = Some vertex } else st);
    send =
      (fun ~round ~self:_ st ->
        match st.decided with
        | Some _ -> []
        | None -> Multi.send ~round:(sub_round round) st.mstate);
    receive =
      (fun ~round ~self:_ ~inbox st ->
        match st.decided with
        | Some _ -> st
        | None ->
            let sub = sub_round round in
            let st = { st with mstate = Multi.receive ~round:sub ~inbox st.mstate } in
            if sub = 3 then finish_iteration st else st);
    output = (fun st -> st.decided);
  }

let run ?(seed = 0) ?telemetry ~tree ~inputs ~t ~adversary () =
  let n = Array.length inputs in
  let iterations = iterations_for tree in
  Sync_engine.run ~n ~t ~seed ?telemetry
    ~max_rounds:(max 1 (3 * iterations))
    ~protocol:(protocol ~tree ~inputs:(fun self -> inputs.(self)) ~t ~iterations)
    ~adversary ()
