(** Checking the AA-on-trees properties of Definition 2 on finished
    executions: Termination, Validity (outputs inside the convex hull of
    honest inputs) and 1-Agreement (outputs pairwise within distance 1). *)

open Aat_tree
open Aat_engine

val check :
  tree:Labeled_tree.t ->
  n_honest:int ->
  honest_inputs:Labeled_tree.vertex list ->
  honest_outputs:Labeled_tree.vertex list ->
  Verdict.t

val output_diameter :
  tree:Labeled_tree.t -> Labeled_tree.vertex list -> int
(** Maximum pairwise distance among the given vertices (0 for <= 1 vertex) —
    the tree analogue of {!Aat_engine.Verdict.spread}. *)
