(** Checking the AA-on-trees properties of Definition 2 on finished
    executions: Termination, Validity (outputs inside the convex hull of
    honest inputs) and 1-Agreement (outputs pairwise within distance 1). *)

open Aat_tree
open Aat_engine

val check :
  tree:Labeled_tree.t ->
  n_honest:int ->
  honest_inputs:Labeled_tree.vertex list ->
  honest_outputs:Labeled_tree.vertex list ->
  Verdict.t

val output_diameter :
  tree:Labeled_tree.t -> Labeled_tree.vertex list -> int
(** Maximum pairwise distance among the given vertices (0 for <= 1 vertex) —
    the tree analogue of {!Aat_engine.Verdict.spread}. *)

val check_report :
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  value:('o -> Labeled_tree.vertex) ->
  ('o, 'm) Aat_runtime.Report.t ->
  Verdict.t
(** {!check} applied straight to a unified run report — including a
    {e partial} one from a [Liveness_timeout]: Termination quantifies
    over finally-honest parties (so missing outputs fail it), Validity
    over the hull of initially-honest inputs, per the
    {!Aat_runtime.Report} conventions. [inputs.(i)] is party [i]'s input
    vertex; [value] extracts the decided vertex from an output. *)

val grade_report :
  ?excuse:string ->
  tree:Labeled_tree.t ->
  inputs:Labeled_tree.vertex array ->
  value:('o -> Labeled_tree.vertex) ->
  ('o, 'm) Aat_runtime.Report.t ->
  Verdict.t * Verdict.graded
(** {!check_report} plus {!Aat_engine.Verdict.grade}: a failed verdict is
    [Excused] when the report's corrupted-or-crashed count exceeds its
    budget [t] (the fault plan left fewer than [n - t] live honest
    parties), or when [?excuse] names an out-of-model fault; otherwise it
    is a genuine [Violated]. *)
