open Aat_tree
open Aat_engine

let output_diameter ~tree vertices =
  match vertices with
  | [] | [ _ ] -> 0
  | v0 :: _ ->
      let rooted = Rooted.make ~root:v0 tree in
      let best = ref 0 in
      let rec pairs = function
        | [] -> ()
        | u :: rest ->
            List.iter
              (fun w ->
                let d = Paths.distance rooted u w in
                if d > !best then best := d)
              rest;
            pairs rest
      in
      pairs (List.sort_uniq compare vertices);
      !best

let check ~tree ~n_honest ~honest_inputs ~honest_outputs =
  let termination = List.length honest_outputs = n_honest in
  let validity =
    match honest_inputs with
    | [] -> honest_outputs = []
    | _ ->
        let rooted = Rooted.make tree in
        let hull = Convex_hull.compute rooted honest_inputs in
        List.for_all (Convex_hull.mem hull) honest_outputs
  in
  let agreement = output_diameter ~tree honest_outputs <= 1 in
  { Verdict.termination; validity; agreement }

let check_report ~tree ~inputs ~value (report : _ Aat_runtime.Report.t) =
  check ~tree
    ~n_honest:(Aat_runtime.Report.finally_honest report)
    ~honest_inputs:(Aat_runtime.Report.honest_inputs ~inputs report)
    ~honest_outputs:(List.map (fun (_, o) -> value o) report.outputs)

let grade_report ?excuse ~tree ~inputs ~value (report : _ Aat_runtime.Report.t)
    =
  let verdict = check_report ~tree ~inputs ~value report in
  ( verdict,
    Verdict.grade ~n:report.n ~t:report.t
      ~faulty:(List.length report.corrupted)
      ?excuse verdict )
