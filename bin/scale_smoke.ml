(* One n = 2000 engine run under injected faults, on the protocol whose
   cost is pure transport: the naive iterated-midpoint (O(1) float
   payloads, n² letters per round). Every campaign-exposed protocol
   distributes values by gradecast, whose Θ(n)-array payloads and Θ(n²)
   per-party plurality scans swamp the transport at this size — fine for
   the protocols, useless as a transport smoke. So this driver goes to
   the engine directly: streamed-path sends, a seeded omission + crash
   plan compiled onto the mailbox, and the structural checks a lossy
   plan still owes us (termination inside the round budget, outputs
   inside the honest input hull, crash accounting). Exits non-zero on
   any violation; `dune build @scale-smoke` runs it. *)

open Treeagree

let () =
  let n = 2_000 and t = 600 and iterations = 12 and seed = 11 in
  let inputs =
    Array.init n (fun i -> float_of_int i /. float_of_int n *. 1000.)
  in
  let plan =
    match Fault_plan_io.parse "omission:0.001;crash:3@2;crash:5@4" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let report =
    Engine.run ~n ~t ~seed ~max_rounds:iterations
      ~fault_filter:(Fault_inject.filter ~engine:`Sync ~seed plan)
      ~crash_faults:(Fault_inject.crashes plan)
      ~protocol:
        (Iterated_midpoint.naive ~inputs:(fun i -> inputs.(i)) ~t ~iterations)
      ~adversary:(Adversary.passive "none")
      ()
  in
  let values =
    List.map (fun (_, r) -> r.Iterated_midpoint.value) report.Report.outputs
  in
  let spread =
    List.fold_left Float.max neg_infinity values
    -. List.fold_left Float.min infinity values
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  if report.Report.rounds_used > iterations then
    fail "rounds_used %d > budget %d" report.Report.rounds_used iterations;
  let crashed = List.length report.Report.corrupted in
  if crashed <> 2 then fail "expected 2 crashed parties, saw %d" crashed;
  if List.length values <> n - crashed then
    fail "only %d of %d honest parties decided" (List.length values)
      (n - crashed);
  List.iter
    (fun v ->
      if not (v >= 0. && v <= 1000.) then fail "output %g outside hull" v)
    values;
  if report.Report.fault_stats.Report.dropped = 0 then
    fail "omission plan dropped nothing — fault filter not applied";
  Printf.printf
    "scale smoke clean: n=%d rounds=%d msgs=%d dropped=%d crashed=%d \
     spread=%g\n"
    n report.Report.rounds_used report.Report.honest_messages
    report.Report.fault_stats.Report.dropped crashed spread
