(* Service smoke: the crash-resume drill CI runs via @service-smoke.

   One small grid, three executions:
     1. the in-process baseline (`Campaign.run ~workers:1`) — the stream
        every distributed run must reproduce byte for byte;
     2. a 2-worker distributed run in which the worker that delivers the
        3rd cell is SIGKILLed mid-run — the campaign must complete
        anyway (shard re-queue + respawn) with an identical stream;
     3. a coordinator crash: a 2-worker run halted after 4 cells (all
        workers SIGKILLed, partial record-dir left behind), then a
        second run resuming from the record-dir — it must restore every
        checkpointed cell untouched and produce the identical stream.

   `service_smoke chaos` (CI: @chaos-drill) runs the wire-chaos drill
   instead: the same grid under an active corrupt-frame + torn-write +
   stall injection plan on every socket, with a worker SIGKILL and a
   simulated coordinator crash + resume on top — the resumed stream
   must still be bit-identical to the baseline and the manifest free of
   permanent slot failures (degraded = false).

   Exits non-zero on any divergence; prints one summary line CI greps. *)

open Treeagree

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let spec =
  {
    Campaign.Spec.name = "service-smoke";
    protocol = Campaign.Spec.Tree_aa;
    tree = Campaign.Spec.Random_tree (Campaign.Spec.Between (2, 12));
    n = Campaign.Spec.Between (4, 7);
    t_budget = Campaign.Spec.Up_to_third;
    inputs = Campaign.Spec.Random_vertices;
    adversary = Campaign.Spec.Any_tree_adversary;
    faults = Campaign.Spec.Chaos { intensity = 0.4 };
    watchdogs = true;
    repetitions = 12;
    base_seed = 23;
  }

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let cell_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".record.jsonl")
  |> List.sort compare

(* The @chaos-drill mode: every frame on every socket runs the gauntlet
   of a corrupt-frame + torn-write + stall plan while a worker is
   SIGKILLed and the coordinator crashes and resumes. The recovery
   machinery (checksum rejection, resync, shard re-queue, backoff
   respawn, progress timeout, checkpoint verification) must absorb all
   of it: bit-identical final stream, no permanent slot failure. *)
let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let contains ~needle hay =
  let ln = String.length hay and lf = String.length needle in
  let rec at i = i + lf <= ln && (String.sub hay i lf = needle || at (i + 1)) in
  at 0

(* The live-status file the chaos leg writes (see docs/OBSERVABILITY.md):
   its final rewrite must show a completed campaign whose recovery
   counters match the drill — respawns and requeues happened, nothing
   was quarantined — and the Prometheus twin must carry the
   deterministic cell counter. *)
let check_status_file path =
  let json =
    match Telemetry.Json.of_string (String.trim (read_file path)) with
    | Ok j -> j
    | Error e -> die "chaos drill: %s unparseable: %s" path e
  in
  let str name = Option.bind (Telemetry.Json.member name json) Telemetry.Json.to_str in
  let num name =
    Option.bind (Telemetry.Json.member name json) Telemetry.Json.to_float
  in
  let want_str name v =
    if str name <> Some v then
      die "chaos drill: %s: expected %s=%S" path name v
  in
  want_str "type" "service-status";
  want_str "status" "completed";
  let count name = match num name with Some v -> int_of_float v | None -> -1 in
  if count "cells_done" <> spec.Campaign.Spec.repetitions then
    die "chaos drill: %s: cells_done %d <> %d" path (count "cells_done")
      spec.Campaign.Spec.repetitions;
  if count "worker_restarts" < 1 then
    die "chaos drill: %s shows no worker respawn" path;
  if count "requeued_shards" < 1 then
    die "chaos drill: %s shows no requeued shard" path;
  if count "quarantined" <> 0 then
    die "chaos drill: %s shows quarantined checkpoints" path;
  let prom = read_file (path ^ ".prom") in
  if
    not
      (contains
         ~needle:
           (Printf.sprintf "campaign_cells_total %d"
              spec.Campaign.Spec.repetitions)
         prom)
  then die "chaos drill: %s.prom lacks the campaign_cells_total series" path

(* The Chrome trace the chaos leg writes must be well-formed: every
   (pid, tid) row's B/E events balance (close-time pair emission plus
   the coordinator's close_all guarantee it even under SIGKILL span
   loss), and the event array is time-sorted. *)
let check_trace_file path =
  let json =
    match Telemetry.Json.of_string (String.trim (read_file path)) with
    | Ok j -> j
    | Error e -> die "chaos drill: %s unparseable: %s" path e
  in
  let events =
    match
      Option.bind (Telemetry.Json.member "traceEvents" json) Telemetry.Json.to_list
    with
    | Some evs -> evs
    | None -> die "chaos drill: %s has no traceEvents array" path
  in
  let field name ev = Telemetry.Json.member name ev in
  let fnum name ev = Option.bind (field name ev) Telemetry.Json.to_float in
  let depth = Hashtbl.create 8 in
  let durations = ref 0 in
  let last_ts = ref neg_infinity in
  List.iter
    (fun ev ->
      let ph =
        Option.value (Option.bind (field "ph" ev) Telemetry.Json.to_str) ~default:"?"
      in
      let ts = Option.value (fnum "ts" ev) ~default:nan in
      (* metadata events carry a sort-key ts of -1; real events must be
         globally non-decreasing *)
      if ph <> "M" then begin
        if ts < !last_ts then die "chaos drill: %s not time-sorted" path;
        last_ts := ts
      end;
      let key = (fnum "pid" ev, fnum "tid" ev) in
      let d = try Hashtbl.find depth key with Not_found -> 0 in
      match ph with
      | "B" ->
          incr durations;
          Hashtbl.replace depth key (d + 1)
      | "E" ->
          if d <= 0 then die "chaos drill: %s has an E without a B" path;
          Hashtbl.replace depth key (d - 1)
      | _ -> ())
    events;
  Hashtbl.iter
    (fun _ d -> if d <> 0 then die "chaos drill: %s has unbalanced spans" path)
    depth;
  if !durations = 0 then die "chaos drill: %s recorded no spans" path

let chaos_drill () =
  let plan =
    match
      Service_chaos.parse "corrupt-frame:0.08+torn-write:0.05+stall:0.05:0.01+seed:9"
    with
    | Ok p -> p
    | Error e -> die "chaos drill: bad plan: %s" e
  in
  let run ?record_dir ?kill_worker_after_cells ?halt_after_cells ?status_out
      ?trace_events () =
    Service.run ~workers:2 ?record_dir ~heartbeat_period:0.05
      ~heartbeat_timeout:5. ~max_respawns:50 ~respawn_backoff:0.02
      ~progress_timeout:1. ~wire_chaos:plan ?status_out ?trace_events
      ?kill_worker_after_cells ?halt_after_cells spec
  in
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in

  (* Leg 1: chaos + worker SIGKILL, no checkpoints — must complete
     clean on wire recovery alone, while publishing live status,
     Prometheus and Chrome-trace files (CI uploads chaos-*.json* on
     failure). *)
  let status_out = "chaos-status.json" and trace_events = "chaos-trace.json" in
  let r1 =
    match run ~kill_worker_after_cells:3 ~status_out ~trace_events () with
    | Ok r -> r
    | Error e -> die "chaos drill (worker kill) failed: %s" e
  in
  (match r1.Service.status with
  | Service.Completed -> ()
  | Service.Halted _ -> die "chaos drill: campaign did not complete");
  if r1.Service.manifest.Service.degraded then
    die "chaos drill: manifest reports degradation on the clean path";
  if Service.jsonl_string r1 <> baseline then
    die "chaos drill: stream diverged from the single-process run";
  check_status_file status_out;
  check_trace_file trace_events;

  (* Leg 2: chaos + coordinator crash, then resume under the same
     chaos; checkpoints must verify and the stream must not move. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "svc-smoke-chaos" in
  rm_rf dir;
  let halted =
    match run ~record_dir:dir ~halt_after_cells:4 () with
    | Ok r -> r
    | Error e -> die "chaos drill (halt) failed: %s" e
  in
  (match halted.Service.status with
  | Service.Halted _ -> ()
  | Service.Completed -> die "chaos drill: expected a halted campaign");
  let resumed =
    match run ~record_dir:dir () with
    | Ok r -> r
    | Error e -> die "chaos drill (resume) failed: %s" e
  in
  (match resumed.Service.status with
  | Service.Completed -> ()
  | Service.Halted _ -> die "chaos drill: resume did not complete");
  if resumed.Service.manifest.Service.degraded then
    die "chaos drill: resumed manifest reports degradation";
  if resumed.Service.manifest.Service.quarantined <> 0 then
    die "chaos drill: chaos must never corrupt checkpoints (%d quarantined)"
      resumed.Service.manifest.Service.quarantined;
  if Service.jsonl_string resumed <> baseline then
    die "chaos drill: resumed stream diverged from the single-process run";
  rm_rf dir;
  Printf.printf
    "chaos drill clean (%d cells under %s: worker kill + crash-resume, %d \
     resumed, %d protocol errors absorbed)\n"
    spec.Campaign.Spec.repetitions
    (Service_chaos.to_string plan)
    resumed.Service.manifest.Service.resumed
    (r1.Service.manifest.Service.protocol_errors
    + halted.Service.manifest.Service.protocol_errors
    + resumed.Service.manifest.Service.protocol_errors)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "chaos" then begin
    chaos_drill ();
    exit 0
  end;
  let baseline = Campaign.jsonl_string (Campaign.run ~workers:1 spec) in

  (* Drill 1: kill -9 a worker mid-run; completion + bit-identity. *)
  let dir1 = Filename.concat (Filename.get_temp_dir_name ()) "svc-smoke-kill" in
  rm_rf dir1;
  let r1 =
    match
      Service.run ~workers:2 ~record_dir:dir1 ~respawn_backoff:0.
        ~kill_worker_after_cells:3 spec
    with
    | Ok r -> r
    | Error e -> die "worker-kill drill failed: %s" e
  in
  (match r1.Service.status with
  | Service.Completed -> ()
  | Service.Halted _ -> die "worker-kill drill: campaign did not complete");
  if r1.Service.manifest.Service.worker_restarts < 1 then
    die "worker-kill drill: expected at least one worker respawn";
  if Service.jsonl_string r1 <> baseline then
    die "worker-kill drill: stream diverged from the single-process run";

  (* Drill 2: coordinator crash after 4 cells, then resume. *)
  let dir2 = Filename.concat (Filename.get_temp_dir_name ()) "svc-smoke-halt" in
  rm_rf dir2;
  let halted =
    match Service.run ~workers:2 ~record_dir:dir2 ~halt_after_cells:4 spec with
    | Ok r -> r
    | Error e -> die "halt drill failed: %s" e
  in
  let halted_cells =
    match halted.Service.status with
    | Service.Halted { cells_done } -> cells_done
    | Service.Completed -> die "halt drill: expected a halted campaign"
  in
  if halted_cells < 4 then die "halt drill: halted after %d < 4" halted_cells;
  let before = cell_files dir2 in
  let snapshot =
    List.map
      (fun f ->
        let ic = open_in_bin (Filename.concat dir2 f) in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (f, s))
      before
  in
  let resumed =
    match Service.run ~workers:2 ~record_dir:dir2 spec with
    | Ok r -> r
    | Error e -> die "resume failed: %s" e
  in
  (match resumed.Service.status with
  | Service.Completed -> ()
  | Service.Halted _ -> die "resume: campaign did not complete");
  if resumed.Service.manifest.Service.resumed <> List.length before then
    die "resume: expected %d resumed cells, got %d" (List.length before)
      resumed.Service.manifest.Service.resumed;
  List.iter
    (fun (f, s) ->
      let ic = open_in_bin (Filename.concat dir2 f) in
      let s' = really_input_string ic (in_channel_length ic) in
      close_in ic;
      if s' <> s then die "resume recomputed checkpointed cell %s" f)
    snapshot;
  if Service.jsonl_string resumed <> baseline then
    die "resume: stream diverged from the single-process run";

  rm_rf dir1;
  rm_rf dir2;
  Printf.printf
    "service smoke clean (%d cells, worker kill + coordinator halt, %d \
     resumed)\n"
    spec.Campaign.Spec.repetitions
    resumed.Service.manifest.Service.resumed
