(* treeaa — command-line front end.

   Subcommands:
     gen      generate a tree of a named family (edge list or DOT)
     inspect  print metrics and the Euler-tour list of a tree
     run      execute TreeAA on a tree against a chosen adversary
     campaign run a declarative batch campaign (JSONL out, --workers N)
     synth    search the adversary-genome space for worst-case executions
     replay   re-execute flight-recorder records, detect divergence
     trace    summarize / diff / blame telemetry traces and records
     bounds   print upper/lower round bounds for given n, t, D *)

open Treeagree
open Cmdliner

(* ---------- shared arguments ---------- *)

let read_tree path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Tree_io.of_edge_list s

let tree_of_spec spec =
  (* family specs: path:N, star:N, caterpillar:SPINE:LEGS, spider:LEGS:LEN,
     balanced:ARITY:DEPTH, broom:HANDLE:BRISTLES, random:N:SEED,
     diameter:N:D:SEED *)
  match String.split_on_char ':' spec with
  | [ "path"; n ] -> Generate.path (int_of_string n)
  | [ "star"; n ] -> Generate.star (int_of_string n)
  | [ "caterpillar"; spine; legs ] ->
      Generate.caterpillar ~spine:(int_of_string spine) ~legs:(int_of_string legs)
  | [ "spider"; legs; len ] ->
      Generate.spider ~legs:(int_of_string legs) ~leg_length:(int_of_string len)
  | [ "balanced"; arity; depth ] ->
      Generate.balanced ~arity:(int_of_string arity) ~depth:(int_of_string depth)
  | [ "broom"; handle; bristles ] ->
      Generate.broom ~handle:(int_of_string handle) ~bristles:(int_of_string bristles)
  | [ "random"; n; seed ] ->
      Generate.random (Rng.create (int_of_string seed)) (int_of_string n)
  | [ "diameter"; n; d; seed ] ->
      Generate.random_of_diameter
        (Rng.create (int_of_string seed))
        ~n:(int_of_string n) ~diameter:(int_of_string d)
  | _ ->
      raise
        (Invalid_argument
           (Printf.sprintf
              "unknown tree spec %S (try path:N, star:N, caterpillar:S:L, \
               spider:L:N, balanced:A:D, broom:H:B, random:N:SEED, \
               diameter:N:D:SEED)"
              spec))

let tree_term =
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Read the tree from an edge-list file.")
  in
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "g"; "gen" ] ~docv:"SPEC"
          ~doc:"Generate the tree: path:N, star:N, caterpillar:S:L, \
                spider:L:N, balanced:A:D, broom:H:B, random:N:SEED, \
                diameter:N:D:SEED.")
  in
  let combine file spec =
    match (file, spec) with
    | Some path, None -> Ok (read_tree path)
    | None, Some s -> ( try Ok (tree_of_spec s) with Invalid_argument m -> Error m)
    | None, None -> Error "provide a tree via --file or --gen"
    | Some _, Some _ -> Error "--file and --gen are mutually exclusive"
  in
  Term.(term_result' (const combine $ file $ spec))

let seed_term =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Adversary RNG seed.")

(* ---------- gen ---------- *)

let gen_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of an edge list.")
  in
  let action tree dot =
    print_string (if dot then Tree_io.to_dot tree else Tree_io.to_edge_list tree)
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a tree and print it")
    Term.(const action $ tree_term $ dot)

(* ---------- inspect ---------- *)

let inspect_cmd =
  let action tree =
    let nv = Tree.n_vertices tree in
    Printf.printf "vertices:  %d\n" nv;
    Printf.printf "diameter:  %d\n" (Metrics.diameter tree);
    Printf.printf "radius:    %d\n" (Metrics.radius tree);
    Printf.printf "root:      %s\n" (Tree.label tree (Tree.root tree));
    Printf.printf "center:    %s\n"
      (String.concat " " (List.map (Tree.label tree) (Metrics.center tree)));
    Printf.printf "TreeAA schedule (rounds): %d\n" (Tree_aa.rounds ~tree);
    Printf.printf "NR baseline schedule:     %d\n" (Nr_baseline.rounds ~tree);
    if nv <= 20 then begin
      let tour = Euler_tour.compute (Rooted.make tree) in
      Printf.printf "euler list: %s\n"
        (String.concat " "
           (Array.to_list (Array.map (Tree.label tree) (Euler_tour.tour tour))));
      print_string (Tree_io.ascii_art tree)
    end
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Print tree metrics and protocol schedules")
    Term.(const action $ tree_term)

(* ---------- run ---------- *)

let adversary_conv tree t =
  let barrier = max 1 (Paths_finder.rounds ~tree) in
  let nv = Tree.n_vertices tree in
  function
  | "none" -> Ok (Adversary.passive "none")
  | "silent" -> Ok (Strategies.random_silent ~count:t)
  | "crash" ->
      Ok (Strategies.crash ~at_round:(max 1 (barrier / 2)) ~victims:(List.init t Fun.id))
  | "spoiler" ->
      let iter1 =
        Rounds.bdh_iterations ~range:(float_of_int ((2 * nv) - 2)) ~eps:1.
      in
      let iter2 =
        Rounds.bdh_iterations ~range:(float_of_int (Metrics.diameter tree)) ~eps:1.
      in
      Ok
        (Compose_adversary.phased ~name:"spoiler" ~barrier
           ~first:(Spoiler.realaa_spoiler ~t ~iterations:iter1)
           ~second:(Spoiler.realaa_spoiler ~t ~iterations:iter2))
  | "wedge" ->
      Ok
        (Compose_adversary.phased ~name:"wedge" ~barrier
           ~first:(Wedge.gradecast_wedge ())
           ~second:(Wedge.gradecast_wedge ()))
  | other -> Error (Printf.sprintf "unknown adversary %S" other)

let run_cmd =
  let n_term =
    Arg.(value & opt int 7 & info [ "n" ] ~docv:"N" ~doc:"Number of parties.")
  in
  let t_term =
    Arg.(
      value & opt int 2
      & info [ "t" ] ~docv:"T" ~doc:"Byzantine budget (guarantees need t < n/3).")
  in
  let adversary_term =
    Arg.(
      value & opt string "silent"
      & info [ "a"; "adversary" ] ~docv:"ADV"
          ~doc:"Adversary: none, silent, crash, spoiler, wedge.")
  in
  let inputs_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "i"; "inputs" ] ~docv:"LABELS"
          ~doc:"Comma-separated input vertex labels, one per party \
                (default: seeded random vertices).")
  in
  let trace_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Stream per-round telemetry (message counts, corruptions, \
                gradecast grades, convergence snapshots) to \
                $(docv) as JSON lines; see docs/TELEMETRY.md.")
  in
  let fault_plan_term =
    Arg.(
      value & opt string "none"
      & info [ "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Inject non-Byzantine faults; clauses joined by ';': crash:P@R, \
             crash-recover:P@A-B, omission:PROB, omission:PROB:party:P, \
             omission:PROB:pair:S>D, partition:B1|B2@A-B. 'none' disables. \
             Deterministic in --seed; see docs/FAULTS.md.")
  in
  let watch_term =
    Arg.(
      value & flag
      & info [ "watchdogs" ]
          ~doc:"Install runtime invariant watchdogs (see docs/FAULTS.md).")
  in
  let action tree n t adv_name inputs_spec seed trace_out fault_plan_str watch =
    let inputs =
      match inputs_spec with
      | None ->
          let rng = Rng.create (seed + 1) in
          Array.init n (fun _ -> Rng.int rng (Tree.n_vertices tree))
      | Some s ->
          let labels = String.split_on_char ',' s |> List.map String.trim in
          if List.length labels <> n then
            failwith (Printf.sprintf "expected %d inputs, got %d" n (List.length labels));
          Array.of_list (List.map (Tree.vertex_of_label tree) labels)
    in
    let ( let* ) = Result.bind in
    let* fault_plan =
      match Fault_plan_io.parse fault_plan_str with
      | Error m -> Error ("bad --fault-plan: " ^ m)
      | Ok p ->
          if not (Fault_plan.sync_compatible p) then
            Error
              "--fault-plan: duplicate/delay faults are async-only; the run \
               subcommand uses the synchronous engine"
          else (
            match Fault_plan.validate ~n p with
            | Ok () -> Ok p
            | Error m -> Error ("bad --fault-plan: " ^ m))
    in
    match adversary_conv tree t adv_name with
    | Error m -> Error m
    | Ok adversary -> (
        let run () =
          match trace_out with
          | None ->
              Quick.agree ~seed ~tree ~inputs ~t ~adversary ~fault_plan ~watch ()
          | Some path ->
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  Quick.agree ~seed ~tree ~inputs ~t ~adversary ~fault_plan
                    ~watch ~telemetry:(Telemetry.Jsonl.sink oc) ())
        in
        match run () with
        | exception Sys_error m -> Error ("cannot write trace: " ^ m)
        | exception exn -> Error ("run failed: " ^ Printexc.to_string exn)
        | outcome ->
        Printf.printf "n=%d t=%d adversary=%s tree: |V|=%d D=%d\n" n t adv_name
          (Tree.n_vertices tree) (Metrics.diameter tree);
        Option.iter (Printf.printf "telemetry trace: %s\n") trace_out;
        if outcome.Quick.status <> "completed" then
          Printf.printf "status: %s\n" outcome.Quick.status;
        Printf.printf "rounds used: %d (schedule %d)\n" outcome.rounds
          (Tree_aa.rounds ~tree);
        Printf.printf "corrupted: %s\n"
          (String.concat " "
             (List.map string_of_int outcome.report.Engine.corrupted));
        let faults = outcome.report.Engine.fault_stats in
        if Report.faults_active faults then
          Format.printf "faults: %a@." Report.pp_fault_stats faults;
        List.iter
          (fun (v : Watchdog.violation) ->
            Format.printf "watchdog: %a@." Watchdog.pp_violation v)
          outcome.report.Engine.watchdog_violations;
        List.iter
          (fun (p, label) -> Printf.printf "  party %d -> %s\n" p label)
          (Quick.output_labels tree outcome);
        Format.printf "verdict: %a@." Verdict.pp outcome.verdict;
        match outcome.Quick.grade with
        | Verdict.Passed -> Ok ()
        | Verdict.Excused { reason; _ } ->
            Printf.printf "excused: %s\n" reason;
            Ok ()
        | Verdict.Violated _ -> Error "AA violated (expected when t >= n/3)")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run TreeAA on a tree against an adversary")
    Term.(
      term_result'
        (const action $ tree_term $ n_term $ t_term $ adversary_term
       $ inputs_term $ seed_term $ trace_out_term $ fault_plan_term
       $ watch_term))

(* ---------- campaign ---------- *)

(* The campaign flag grammars live in the observability layer's Spec_io
   (flight records persist specs with the same vocabulary), so the CLI
   and record files can never drift apart. *)
let parse_size = Spec_io.size_of_string
let parse_tree_family = Spec_io.tree_family_of_string
let parse_campaign_protocol = Spec_io.protocol_of_string
let parse_campaign_adversary = Spec_io.adversary_of_string
let parse_campaign_inputs = Spec_io.inputs_of_string

(* Spec files are the same JSON Spec_io embeds in flight-record headers:
   one [treeaa campaign --spec] file describes the whole grid. *)
let load_spec_file path =
  let ( let* ) = Result.bind in
  let* contents =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Ok s
    with Sys_error m -> Error m
  in
  let* json =
    Result.map_error
      (fun m -> Printf.sprintf "%s: not JSON: %s" path m)
      (Telemetry.Json.of_string (String.trim contents))
  in
  Result.map_error
    (fun m -> Printf.sprintf "%s: bad campaign spec: %s" path m)
    (Spec_io.of_json json)

let spec_file_term =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec" ] ~docv:"FILE"
        ~doc:
          "Load the full campaign spec from a JSON file (the same object \
           Spec_io embeds in flight-record headers and the service wire \
           hello). Takes precedence over every grid-shape flag \
           (--protocol, --tree, --n, --t, --inputs, --adversary, --eps, \
           --reps, --name, --seed, --fault-plan, --chaos, --watchdogs).")

let aggregate_summary name (agg : Campaign.aggregate) =
  let opt label v = if v = 0 then "" else Printf.sprintf ", %d %s" v label in
  Printf.eprintf "campaign %s: %d tasks, %d violations, %d errors%s%s%s\n"
    name agg.Campaign.tasks agg.Campaign.violations agg.Campaign.errors
    (opt "timeouts" agg.Campaign.timeouts)
    (opt "engine-errors" agg.Campaign.engine_errors)
    (opt "excused" agg.Campaign.excused)

let write_stream_to out write =
  match out with
  | None -> write stdout
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc)

let campaign_run_cmd =
  let protocol_term =
    Arg.(
      value & opt string "tree-aa"
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:
            "Protocol family: tree-aa, nr-baseline, path-aa, known-path-aa, \
             realaa, iterated-midpoint, async-tree-aa, round-sim-tree-aa.")
  in
  let tree_term =
    Arg.(
      value & opt string "any"
      & info [ "tree" ] ~docv:"FAMILY"
          ~doc:
            "Tree family: any, path:SIZE, star:SIZE, caterpillar:SIZE:SIZE, \
             spider:SIZE:SIZE, balanced:SIZE:SIZE, random:SIZE. SIZE is N or \
             LO-HI (drawn per task).")
  in
  let n_term =
    Arg.(
      value & opt string "4-13"
      & info [ "n" ] ~docv:"SIZE" ~doc:"Parties per task: N or LO-HI.")
  in
  let t_term =
    Arg.(
      value & opt string "third"
      & info [ "t" ] ~docv:"T"
          ~doc:
            "Byzantine budget: an integer, or 'third' to draw uniformly from \
             [0, (n-1)/3] per task.")
  in
  let inputs_term =
    Arg.(
      value & opt string "vertices"
      & info [ "i"; "inputs" ] ~docv:"DIST"
          ~doc:
            "Input distribution: vertices (tree protocols), linspace:D or \
             loguniform:LOG10MIN:LOG10MAX (real-valued protocols).")
  in
  let adversary_term =
    Arg.(
      value & opt string "none"
      & info [ "a"; "adversary" ] ~docv:"ADV"
          ~doc:
            "Adversary family: none, silent, crash, spoiler (TreeAA), \
             real-spoiler, wedge, any-tree, any-real.")
  in
  let eps_term =
    Arg.(
      value & opt float 1.0
      & info [ "eps" ] ~docv:"EPS"
          ~doc:"Agreement distance for realaa / iterated-midpoint.")
  in
  let reps_term =
    Arg.(
      value & opt int 100
      & info [ "reps" ] ~docv:"N" ~doc:"Number of independent tasks.")
  in
  let workers_term =
    Arg.(
      value & opt int 1
      & info [ "workers"; "j" ] ~docv:"W"
          ~doc:
            "Worker domains (default 1; 0 means all cores). The JSONL stream \
             and aggregates are identical for every value.")
  in
  let name_term =
    Arg.(
      value & opt string "cli"
      & info [ "name" ] ~docv:"NAME" ~doc:"Campaign name for the JSONL header.")
  in
  let out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the JSONL result stream to $(docv) (default: stdout).")
  in
  let fault_plan_term =
    Arg.(
      value & opt string "none"
      & info [ "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Apply one fixed fault plan to every task (grammar as for 'treeaa \
             run --fault-plan'; async protocols additionally accept \
             duplicate:PROB and delay:PROB:BY). See docs/FAULTS.md.")
  in
  let chaos_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "chaos" ] ~docv:"INTENSITY"
          ~doc:
            "Draw a fresh random fault plan per task from the task seed, \
             scaled by $(docv) in [0, 1]. Mutually exclusive with \
             --fault-plan.")
  in
  let watchdogs_term =
    Arg.(
      value & flag
      & info [ "watchdogs" ]
          ~doc:"Install runtime invariant watchdogs on every task.")
  in
  let trace_dir_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Write one full telemetry trace per task to \
             $(docv)/cell-NNNN.jsonl (off by default; execution is \
             unaffected).")
  in
  let record_dir_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "record-dir" ] ~docv:"DIR"
          ~doc:
            "Write one flight-recorder record per task to \
             $(docv)/cell-NNNN.record.jsonl — spec, seeds, trace and \
             outcome digest; 'treeaa replay' re-executes them.")
  in
  let repro_dir_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:
            "For every failing cell (violated, engine-error), write a \
             minimal repro record to $(docv)/cell-NNNN.repro.jsonl that \
             'treeaa replay' accepts directly.")
  in
  let profile_term =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Collect per-task stage timings (setup/rounds/checks) and \
             allocation counts into the JSONL stream's outcome objects.")
  in
  let distributed_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "distributed" ] ~docv:"W"
          ~doc:
            "Run the grid on $(docv) worker $(i,processes) via the campaign \
             service (coordinator + forked workers over socketpairs; 0 \
             means all cores) instead of in-process domains. The JSONL \
             stream is bit-identical either way. --record-dir becomes the \
             service's crash-resume checkpoint directory; incompatible \
             with --trace-dir, --repro-dir and --profile.")
  in
  let status_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "status-out" ] ~docv:"FILE"
          ~doc:
            "Write a status JSON with the campaign's deterministic metric \
             snapshot to $(docv) (atomically), plus a Prometheus text twin \
             at $(docv).prom. In-process the file is written once at \
             completion; with --distributed the service rewrites it live, \
             at least once per heartbeat period. See docs/OBSERVABILITY.md.")
  in
  let manifest_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest-out" ] ~docv:"FILE"
          ~doc:
            "Write the end-of-run service manifest JSON to $(docv) \
             (atomically). Requires --distributed; the stderr summary is \
             unchanged.")
  in
  let action protocol tree n t inputs adversary eps reps workers name out seed
      fault_plan_str chaos watchdogs trace_dir record_dir repro_dir profile
      spec_file distributed status_out manifest_out =
    let ( let* ) = Result.bind in
    let* spec =
      match spec_file with
      | Some path -> load_spec_file path
      | None ->
          let* protocol = parse_campaign_protocol ~eps protocol in
          let* adversary = parse_campaign_adversary adversary in
          let* inputs = parse_campaign_inputs inputs in
          let* tree = parse_tree_family tree in
          let* n = parse_size n in
          let* t_budget =
            if t = "third" then Ok Campaign.Spec.Up_to_third
            else
              try Ok (Campaign.Spec.Fixed_t (int_of_string t))
              with _ -> Error (Printf.sprintf "bad --t %S" t)
          in
          let* faults =
            match (fault_plan_str, chaos) with
            | "none", None -> Ok Campaign.Spec.No_faults
            | "none", Some intensity -> Ok (Campaign.Spec.Chaos { intensity })
            | _, Some _ ->
                Error "--fault-plan and --chaos are mutually exclusive"
            | s, None -> (
                match Fault_plan_io.parse s with
                | Ok p -> Ok (Campaign.Spec.Fault_plan p)
                | Error m -> Error ("bad --fault-plan: " ^ m))
          in
          Ok
            {
              Campaign.Spec.name;
              protocol;
              tree;
              n;
              t_budget;
              inputs;
              adversary;
              faults;
              watchdogs;
              repetitions = max 0 reps;
              base_seed = seed;
            }
    in
    let* () = Campaign.Spec.validate spec in
    let name = spec.Campaign.Spec.name in
    let reps = spec.Campaign.Spec.repetitions in
    match distributed with
    | Some w ->
        (* The service path: worker processes, wire protocol, optional
           crash-resume checkpoints under --record-dir. Per-cell
           telemetry stays with the in-process runner. *)
        let* () =
          if trace_dir <> None || repro_dir <> None || profile then
            Error
              "--distributed is incompatible with --trace-dir, --repro-dir \
               and --profile (service workers ship outcomes, not traces; \
               use --record-dir for replayable checkpoints)"
          else Ok ()
        in
        let w = if w <= 0 then Pool.default_workers () else w in
        let* result = Service.run ~workers:w ?record_dir ?status_out spec in
        write_stream_to out (fun oc -> Service.write_jsonl oc result);
        (match manifest_out with
        | None -> ()
        | Some path ->
            Obs.Metrics.write_atomic ~path
              (Telemetry.Json.to_string (Service.manifest_json result) ^ "\n"));
        aggregate_summary name result.Service.aggregate;
        Ok ()
    | None ->
    let* () =
      if manifest_out <> None then
        Error "--manifest-out requires --distributed (or 'campaign serve')"
      else Ok ()
    in
    let workers = if workers <= 0 then Pool.default_workers () else workers in
    let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
    let cell_path dir task pattern = Filename.concat dir (Printf.sprintf pattern task) in
    (* Per-task observability sinks. Trace files stream from the worker
       domains (each task owns its file, so no cross-domain sharing);
       record sinks accumulate in a per-task Stats slot and are written
       out after the pool joins. Channels are closed after the run — a
       task whose engine errors never reaches on_stop. *)
    Option.iter ensure_dir trace_dir;
    Option.iter ensure_dir record_dir;
    Option.iter ensure_dir repro_dir;
    let channels = Array.make reps None in
    let stats = Array.make reps None in
    let telemetry =
      match (trace_dir, record_dir) with
      | None, None -> None
      | _ ->
          Some
            (fun ~task ->
              let file_sink =
                Option.map
                  (fun dir ->
                    let oc = open_out (cell_path dir task "cell-%04d.jsonl") in
                    channels.(task) <- Some oc;
                    Telemetry.Jsonl.sink oc)
                  trace_dir
              in
              let stats_sink =
                Option.map
                  (fun _ ->
                    let st = Telemetry.Stats.create () in
                    stats.(task) <- Some st;
                    Telemetry.Stats.sink st)
                  record_dir
              in
              match (file_sink, stats_sink) with
              | Some a, Some b -> Some (Telemetry.Sink.tee a b)
              | (Some _ as s), None | None, (Some _ as s) -> s
              | None, None -> None)
    in
    let result = Campaign.run ~workers ?telemetry ~profile spec in
    Array.iter (Option.iter close_out) channels;
    (match record_dir with
    | None -> ()
    | Some dir ->
        Array.iter
          (fun (tr : Campaign.task_result) ->
            match (tr.Campaign.result, stats.(tr.Campaign.task)) with
            | Ok o, Some st ->
                let record =
                  {
                    Recorder.spec;
                    task_seed = tr.Campaign.task_seed;
                    engine_seed = o.Runner.seed;
                    trace = Trace.of_stats st;
                    outcome = Some (Campaign.json_of_outcome o);
                    digest = Some (Recorder.digest_of_outcome o);
                  }
                in
                Recorder.write_file
                  (cell_path dir tr.Campaign.task "cell-%04d.record.jsonl")
                  record
            | _ -> ())
          result.Campaign.results);
    (match repro_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun (task, record) ->
            Recorder.write_file
              (cell_path dir task "cell-%04d.repro.jsonl")
              record)
          (Recorder.failing_cells result));
    write_stream_to out (fun oc -> Campaign.write_jsonl oc result);
    (* In-process --status-out: fold every outcome through the same
       [record_cell] the service coordinator uses, then write the status
       and Prometheus files once at completion — the deterministic
       campaign_* series are bit-identical to any service run's. *)
    (match status_out with
    | None -> ()
    | Some path ->
        let registry = Obs.Metrics.create () in
        Array.iter
          (fun (tr : Campaign.task_result) ->
            Obs.Metrics.record_cell registry
              (Result.map Campaign.json_of_outcome tr.Campaign.result))
          result.Campaign.results;
        let snap = Obs.Metrics.snapshot registry in
        let status_json =
          Telemetry.Json.Obj
            [
              ("type", Telemetry.Json.Str "campaign-status");
              ("format_version", Telemetry.Json.Num 1.);
              ("name", Telemetry.Json.Str name);
              ("status", Telemetry.Json.Str "completed");
              ("cells_total", Telemetry.Json.Num (float_of_int reps));
              ("cells_done", Telemetry.Json.Num (float_of_int reps));
              ("metrics", Obs.Metrics.Snapshot.to_json snap);
            ]
        in
        Obs.Metrics.write_atomic ~path
          (Telemetry.Json.to_string status_json ^ "\n");
        Obs.Metrics.write_atomic ~path:(path ^ ".prom")
          (Obs.Metrics.Snapshot.to_prometheus snap));
    aggregate_summary name result.Campaign.aggregate;
    Ok ()
  in
  Term.(
    term_result'
      (const action $ protocol_term $ tree_term $ n_term $ t_term
     $ inputs_term $ adversary_term $ eps_term $ reps_term $ workers_term
     $ name_term $ out_term $ seed_term $ fault_plan_term $ chaos_term
     $ watchdogs_term $ trace_dir_term $ record_dir_term $ repro_dir_term
     $ profile_term $ spec_file_term $ distributed_term $ status_out_term
     $ manifest_out_term))

(* ---------- campaign serve ---------- *)

let campaign_serve_cmd =
  let spec_req_term =
    Arg.(
      required
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "The campaign spec, as a JSON file (required; same codec as \
             'treeaa campaign --spec').")
  in
  let workers_term =
    Arg.(
      value & opt int 2
      & info [ "workers"; "j" ] ~docv:"W"
          ~doc:"Worker processes (default 2; 0 means all cores).")
  in
  let record_dir_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "record-dir" ] ~docv:"DIR"
          ~doc:
            "Checkpoint every completed cell to \
             $(docv)/cell-NNNN.record.jsonl and resume matching \
             checkpoints on start — a killed service re-run with the \
             same spec and $(docv) recomputes nothing it already \
             finished.")
  in
  let out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the JSONL result stream to $(docv) (default: stdout).")
  in
  let heartbeat_period_term =
    Arg.(
      value & opt float 0.25
      & info [ "heartbeat-period" ] ~docv:"SECONDS"
          ~doc:"Worker heartbeat period (default 0.25s).")
  in
  let heartbeat_timeout_term =
    Arg.(
      value & opt float 30.
      & info [ "heartbeat-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Silence after which a worker is presumed dead, SIGKILLed \
             and its shard re-queued (default 30s).")
  in
  let max_respawns_term =
    Arg.(
      value & opt int 2
      & info [ "max-respawns" ] ~docv:"K"
          ~doc:"Respawn budget per worker slot (default 2).")
  in
  let respawn_backoff_term =
    Arg.(
      value & opt float 0.5
      & info [ "respawn-backoff" ] ~docv:"SECONDS"
          ~doc:
            "Base of the exponential backoff before a dead worker slot is \
             respawned: $(docv) * 2^restarts, with seeded jitter (default \
             0.5s).")
  in
  let progress_timeout_term =
    Arg.(
      value
      & opt (some float) None
      & info [ "progress-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Kill a worker that holds a shard but has delivered no fresh \
             cell for $(docv) seconds, even if it still heartbeats — the \
             livelock detector (default: off; strongly recommended with \
             $(b,--wire-chaos) plans that drop or tear frames).")
  in
  let wire_chaos_term =
    Arg.(
      value & opt string "none"
      & info [ "wire-chaos" ] ~docv:"PLAN"
          ~doc:
            "Deterministic wire-fault injection plan for chaos drills: \
             '+'-joined clauses among $(b,corrupt-frame:P), \
             $(b,torn-write:P), $(b,drop-frame:P), $(b,dup-frame:P), \
             $(b,stall:P:SECONDS) and $(b,seed:N), e.g. \
             'corrupt-frame:0.05+stall:0.02:0.01+seed:7'; 'none' disables \
             (see docs/ROBUSTNESS.md).")
  in
  let status_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "status-out" ] ~docv:"FILE"
          ~doc:
            "Atomically rewrite a live status JSON at $(docv) at least \
             once per heartbeat period — progress counters, per-worker \
             health (heartbeat/progress lag, backoff deadlines) and the \
             merged metric snapshot — plus a Prometheus text twin at \
             $(docv).prom; read it with $(b,treeaa status). See \
             docs/OBSERVABILITY.md.")
  in
  let trace_events_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-events" ] ~docv:"FILE"
          ~doc:
            "Atomically rewrite Chrome trace-event JSON at $(docv) \
             (open in chrome://tracing or Perfetto): the campaign root \
             span, per-slot shard and backoff spans, kill instants, and \
             each worker's per-cell spans with setup/rounds/checks \
             stage sub-spans, carried over the wire by heartbeat \
             piggyback.")
  in
  let manifest_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest-out" ] ~docv:"FILE"
          ~doc:
            "Also write the end-of-run manifest JSON to $(docv) \
             (atomically); the stderr manifest line is unchanged.")
  in
  let action spec_file workers record_dir out heartbeat_period
      heartbeat_timeout max_respawns respawn_backoff progress_timeout
      wire_chaos status_out trace_events manifest_out =
    let ( let* ) = Result.bind in
    let* spec = load_spec_file spec_file in
    let* () = Campaign.Spec.validate spec in
    let* wire_chaos =
      match Service_chaos.parse wire_chaos with
      | Ok p -> Ok p
      | Error m -> Error ("bad --wire-chaos: " ^ m)
    in
    let workers = if workers <= 0 then Pool.default_workers () else workers in
    match
      Service.run ~workers ?record_dir ~heartbeat_period ~heartbeat_timeout
        ~max_respawns ~respawn_backoff ?progress_timeout ~wire_chaos
        ?status_out ?trace_events spec
    with
    | Error e ->
        (* The hard failure: every slot's respawn budget is spent with
           work outstanding. Checkpoints under --record-dir survive for
           a resume. Distinct exit code so orchestrators can tell
           "re-run me" from a CLI usage error. *)
        Printf.eprintf "treeaa campaign serve: %s\n" e;
        exit 4
    | Ok result ->
        write_stream_to out (fun oc -> Service.write_jsonl oc result);
        (match manifest_out with
        | None -> ()
        | Some path ->
            Obs.Metrics.write_atomic ~path
              (Telemetry.Json.to_string (Service.manifest_json result) ^ "\n"));
        Printf.eprintf "%s\n"
          (Telemetry.Json.to_string (Service.manifest_json result));
        if result.Service.manifest.Service.degraded then exit 3;
        Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a campaign spec on forked worker processes with crash-resume \
          checkpoints; the end-of-run manifest goes to stderr"
       ~exits:
         (Cmd.Exit.info 0 ~doc:"the campaign completed cleanly."
         :: Cmd.Exit.info 3
              ~doc:
                "the campaign completed $(b,degraded): some worker slot \
                 exhausted its respawn budget and the grid was finished \
                 by the surviving pool; per-slot causes are in the \
                 stderr manifest."
         :: Cmd.Exit.info 4
              ~doc:
                "hard failure: every worker slot exhausted its respawn \
                 budget with work outstanding. Checkpoints under \
                 $(b,--record-dir) survive; re-run to resume."
         :: Cmd.Exit.defaults))
    Term.(
      term_result'
        (const action $ spec_req_term $ workers_term $ record_dir_term
       $ out_term $ heartbeat_period_term $ heartbeat_timeout_term
       $ max_respawns_term $ respawn_backoff_term $ progress_timeout_term
       $ wire_chaos_term $ status_out_term $ trace_events_term
       $ manifest_out_term))

let campaign_cmd =
  Cmd.group ~default:campaign_run_cmd
    (Cmd.info "campaign"
       ~doc:
         "Run a declarative batch campaign, JSONL out (see 'campaign serve' \
          for the multi-process service)")
    [ campaign_serve_cmd ]

(* ---------- replay ---------- *)

let replay_cmd =
  let files_term =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"RECORD"
          ~doc:
            "Flight-recorder files (cell-NNNN.record.jsonl or \
             cell-NNNN.repro.jsonl) to re-execute.")
  in
  let replay_one path =
    match Recorder.read_file path with
    | Error m ->
        Printf.printf "%s: unreadable record: %s\n" path m;
        false
    | Ok record -> (
        match Replay.run record with
        | Error m ->
            Printf.printf "%s: replay failed: %s\n" path m;
            false
        | Ok r -> (
            match r.Replay.verdict with
            | Ok () ->
                Printf.printf "%s: replay clean (%s, %d rounds, digest %s)\n"
                  path
                  (Runner.status_label r.Replay.outcome.Runner.status)
                  r.Replay.outcome.Runner.rounds_used r.Replay.digest;
                true
            | Error d ->
                Printf.printf "%s: DIVERGED — %s\n" path
                  (Format.asprintf "%a" Replay.pp_divergence d);
                false))
  in
  let action files =
    let clean = List.for_all Fun.id (List.map replay_one files) in
    if clean then Ok ()
    else Error "replay diverged (or records were unreadable)"
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute flight-recorder records and report the first \
          divergence, if any")
    Term.(term_result' (const action $ files_term))

(* ---------- trace ---------- *)

let trace_file_pos =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE" ~doc:"A telemetry trace or record file (JSONL).")

let trace_summarize_cmd =
  let action path =
    match Trace.load path with
    | Error m -> Error m
    | Ok tr ->
        (match tr.Trace.meta with
        | Some m ->
            Printf.printf
              "run: %s/%s vs %s, n=%d t=%d seed=%d, initially corrupted: %s\n"
              m.Telemetry.engine m.Telemetry.protocol m.Telemetry.adversary
              m.Telemetry.n m.Telemetry.t m.Telemetry.seed
              (match m.Telemetry.initial_corruptions with
              | [] -> "none"
              | ps -> String.concat "," (List.map string_of_int ps))
        | None -> Printf.printf "run: (no start header)\n");
        let events = tr.Trace.events in
        Printf.printf "rounds: %d\n" (List.length events);
        (match tr.Trace.summary with
        | Some s ->
            Printf.printf "messages: %d honest, %d adversary\n"
              s.Telemetry.honest_messages s.Telemetry.adversary_messages
        | None -> ());
        let totals = Trace.send_totals tr in
        if Array.length totals > 0 then
          Printf.printf "sent per party: [%s]\n"
            (String.concat "; "
               (Array.to_list (Array.map string_of_int totals)));
        (match Trace.convergence tr with
        | [] -> ()
        | curve ->
            Printf.printf "convergence (round, spread): %s\n"
              (String.concat " "
                 (List.map
                    (fun (r, sp) -> Printf.sprintf "(%d, %g)" r sp)
                    curve)));
        Ok ()
  in
  Cmd.v
    (Cmd.info "summarize" ~doc:"Print a trace's headline numbers")
    Term.(term_result' (const action $ trace_file_pos))

let trace_diff_cmd =
  let expected_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"EXPECTED" ~doc:"The reference trace (JSONL).")
  in
  let actual_pos =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"ACTUAL" ~doc:"The trace to compare against it.")
  in
  let action expected actual =
    let ( let* ) = Result.bind in
    let* e = Trace.load expected in
    let* a = Trace.load actual in
    match Trace.diff ~expected:e ~actual:a with
    | None ->
        Printf.printf "identical (%d rounds)\n" (List.length e.Trace.events);
        Ok ()
    | Some d -> Error (Format.asprintf "%a" Trace.pp_divergence d)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"First divergent round and field between two traces")
    Term.(term_result' (const action $ expected_pos $ actual_pos))

let trace_blame_cmd =
  let action path =
    (* Records carry their watchdog violations; plain traces localize by
       spread expansion alone. *)
    let ( let* ) = Result.bind in
    let* tr, violations =
      match Recorder.read_file path with
      | Ok record -> Ok (record.Recorder.trace, Recorder.violations record)
      | Error _ -> Result.map (fun tr -> (tr, [])) (Trace.load path)
    in
    match Trace.blame ~violations tr with
    | Some b ->
        Printf.printf "%s\n" (Format.asprintf "%a" Trace.pp_blame b);
        Ok ()
    | None ->
        Printf.printf "no violation or spread expansion in this trace\n";
        Ok ()
  in
  Cmd.v
    (Cmd.info "blame"
       ~doc:
         "Localize where a run went wrong: first watchdog violation or \
          spread expansion, with suspect parties")
    Term.(term_result' (const action $ trace_file_pos))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Analyze telemetry traces and records")
    [ trace_summarize_cmd; trace_diff_cmd; trace_blame_cmd ]

(* ---------- bounds ---------- *)

let bounds_cmd =
  let n_term = Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Parties.") in
  let t_term = Arg.(value & opt int 3 & info [ "t" ] ~docv:"T" ~doc:"Byzantine budget.") in
  let d_term =
    Arg.(value & opt float 1e6 & info [ "d" ] ~docv:"D" ~doc:"Input diameter.")
  in
  let action n t d =
    Printf.printf "n=%d t=%d D=%g\n" n t d;
    Printf.printf "RealAA schedule (rounds):     %d\n" (Rounds.bdh_rounds ~range:d ~eps:1.);
    Printf.printf "Theorem 3 closed-form bound:  %d\n"
      (Rounds.paper_round_bound ~range:d ~eps:1.);
    Printf.printf "halving baseline iterations:  %d\n"
      (Rounds.halving_iterations ~range:d ~eps:1.);
    Printf.printf "Fekete lower bound (rounds):  %d\n"
      (Fekete.min_rounds ~n ~t ~d ~eps:1.);
    Printf.printf "Theorem 2 closed form:        %.2f\n"
      (Fekete.theorem2_closed_form ~n ~t ~d);
    let r = max 1 (Fekete.min_rounds ~n ~t ~d ~eps:1.) in
    Printf.printf "optimal adversary split t_i:  [%s]\n"
      (String.concat "; " (List.map string_of_int (Fekete.optimal_partition ~t ~r)));
    Printf.printf "log2 of Fekete chain length:  %.2f\n" (Fekete.chain_length ~n ~t ~r)
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print round-complexity upper and lower bounds")
    Term.(const action $ n_term $ t_term $ d_term)

(* ---------- chain ---------- *)

let chain_cmd =
  let n_term = Arg.(value & opt int 7 & info [ "n" ] ~docv:"N" ~doc:"Parties.") in
  let t_term = Arg.(value & opt int 2 & info [ "t" ] ~docv:"T" ~doc:"Byzantine budget.") in
  let d_term =
    Arg.(value & opt float 100. & info [ "d" ] ~docv:"D" ~doc:"Input spread.")
  in
  let action n t d =
    if t < 1 || t >= n then Error "need 1 <= t < n"
    else begin
      Printf.printf
        "Fekete one-round view chain, n=%d t=%d, inputs in {0, %g}:\n\n" n t d;
      let views = Chain.one_round_chain ~n ~t ~a:0. ~b:d in
      let f view = Option.get (Trim.trimmed_midpoint ~t (Array.to_list view)) in
      List.iteri
        (fun i view ->
          Printf.printf "  v%-2d [%s]  ->  trimmed-midpoint output %.2f\n" i
            (String.concat " "
               (Array.to_list (Array.map (Printf.sprintf "%g") view)))
            (f view))
        views;
      let gap = Chain.max_adjacent_gap ~f ~n ~t ~a:0. ~b:d in
      Printf.printf
        "\nConsecutive views co-occur in one execution (the differing group \
         of <= %d parties\nequivocates), yet the max adjacent output gap is \
         %.2f >= K(1,D) = %.2f:\nno 1-round protocol can achieve \
         %g-agreement here (Theorem 1).\n"
        t gap
        (d *. float_of_int t /. float_of_int (n + t))
        1.0;
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "chain" ~doc:"Walk Fekete's one-round lower-bound view chain")
    Term.(term_result' (const action $ n_term $ t_term $ d_term))

(* ---------- synth ---------- *)

let synth_cmd =
  let protocol_term =
    Arg.(
      value & opt string "treeaa"
      & info [ "protocol" ] ~docv:"P"
          ~doc:
            "Synthesis target: treeaa, realaa, iterated-midpoint, \
             async-tree-aa, or all.")
  in
  let generations_term =
    Arg.(
      value & opt int 3
      & info [ "generations" ] ~docv:"G"
          ~doc:"Search generations (initial population included).")
  in
  let population_term =
    Arg.(
      value & opt int 6
      & info [ "population" ] ~docv:"P" ~doc:"Genomes evaluated per generation.")
  in
  let driver_term =
    Arg.(
      value & opt string "evolve"
      & info [ "driver" ] ~docv:"D"
          ~doc:"Search driver: random, hill, or evolve ((mu+lambda)).")
  in
  let workers_term =
    Arg.(
      value & opt int 1
      & info [ "workers"; "j" ] ~docv:"W"
          ~doc:
            "Evaluation worker domains (default 1; 0 means all cores). The \
             champion, gap and printed report are identical for every value.")
  in
  let record_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "record-out" ] ~docv:"FILE"
          ~doc:
            "Write the champion's flight record here (replay it with \
             $(b,treeaa replay)). With --protocol all, one file per target \
             (FILE.<target>).")
  in
  let json_out_term =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Write the gap report as JSON.")
  in
  let print_report (r : Synth.report) =
    let t = r.Synth.target in
    Printf.printf "target: %s (%s, %s engine)  n=%d t=%d D=%g R=%d\n" t.Synth.label
      (Campaign.Spec.protocol_label t.Synth.protocol)
      t.Synth.engine t.Synth.n t.Synth.t t.Synth.d t.Synth.rounds;
    Printf.printf "driver: %s  generations=%d population=%d seed=%d\n"
      (Synth.driver_label r.Synth.config.Synth.driver)
      r.Synth.config.Synth.generations r.Synth.config.Synth.population
      r.Synth.config.Synth.seed;
    Printf.printf "evaluations: %d\n" r.Synth.evaluations;
    Printf.printf "champion: genome:%s\n" (Genome.to_string r.Synth.champion.Synth.genome);
    Printf.printf "  spread (fitness): %.6g\n" r.Synth.champion.Synth.fitness;
    Printf.printf "  grade: %s\n"
      (Verdict.graded_label r.Synth.champion.Synth.outcome.Runner.grade);
    Printf.printf "gap after R=%d rounds:\n" t.Synth.rounds;
    Printf.printf "  K(R,D)   = %.6g\n" r.Synth.gap.Synth.k_theory;
    Printf.printf "  measured = %.6g\n" r.Synth.gap.Synth.measured;
    Printf.printf "  ratio    = %.6g\n" r.Synth.gap.Synth.ratio;
    (match r.Synth.gap.Synth.envelope with
    | Some e -> Printf.printf "  lemma5   = %.6g\n" e
    | None -> ());
    Printf.printf "  sound    = %b\n" r.Synth.gap.Synth.sound;
    Printf.printf "history: %s\n"
      (String.concat ", "
         (List.map
            (fun (gen, fit) -> Printf.sprintf "g%d=%.6g" gen fit)
            r.Synth.history))
  in
  let action protocol seed workers generations population driver record_out
      json_out =
    match Synth.driver_of_string driver with
    | Error m -> Error m
    | Ok driver -> (
        let targets =
          if protocol = "all" then Ok (Synth.default_targets ())
          else Result.map (fun t -> [ t ]) (Synth.target_for protocol)
        in
        match targets with
        | Error m -> Error m
        | Ok targets ->
            let config =
              { Synth.driver; generations; population; seed; workers }
            in
            let reports =
              List.mapi
                (fun i target ->
                  if i > 0 then print_newline ();
                  let r = Synth.search config target in
                  print_report r;
                  r)
                targets
            in
            (match record_out with
            | None -> ()
            | Some path ->
                let single = match reports with [ _ ] -> true | _ -> false in
                List.iter
                  (fun (r : Synth.report) ->
                    let file =
                      if single then path
                      else path ^ "." ^ r.Synth.target.Synth.label
                    in
                    Recorder.write_file file r.Synth.champion.Synth.record;
                    Printf.printf "champion record: %s\n" file)
                  reports);
            (match json_out with
            | None -> ()
            | Some path ->
                let json =
                  Telemetry.Json.Obj
                    [
                      ("schema", Telemetry.Json.Str "treeagree-synth-gap/v1");
                      ( "gaps",
                        Telemetry.Json.Arr
                          (List.map Synth.gap_json reports) );
                    ]
                in
                let oc = open_out path in
                output_string oc (Telemetry.Json.to_string json);
                output_string oc "\n";
                close_out oc;
                Printf.printf "gap json: %s\n" path);
            Ok ())
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Search the adversary-genome space for worst-case executions and \
          report the gap to the Fekete lower bound")
    Term.(
      term_result'
        (const action $ protocol_term $ seed_term $ workers_term
       $ generations_term $ population_term $ driver_term $ record_out_term
       $ json_out_term))

(* ---------- status ---------- *)

let status_cmd =
  let file_pos =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"STATUS"
          ~doc:
            "A status file written by --status-out ('campaign serve', \
             'campaign --distributed' or in-process 'campaign').")
  in
  let action path =
    let ( let* ) = Result.bind in
    let* contents =
      try
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Ok s
      with Sys_error m -> Error m
    in
    let* json =
      Result.map_error
        (fun m -> Printf.sprintf "%s: not JSON: %s" path m)
        (Telemetry.Json.of_string (String.trim contents))
    in
    let mem name = Telemetry.Json.member name json in
    let num name = Option.bind (mem name) Telemetry.Json.to_float in
    let str name = Option.bind (mem name) Telemetry.Json.to_str in
    let count name = match num name with Some v -> int_of_float v | None -> 0 in
    Printf.printf "campaign: %s  status: %s\n"
      (Option.value (str "name") ~default:"?")
      (Option.value (str "status") ~default:"?");
    let total = count "cells_total" and done_ = count "cells_done" in
    let pct =
      if total = 0 then 100. else 100. *. float_of_int done_ /. float_of_int total
    in
    Printf.printf "progress: %d/%d cells (%.1f%%), %d computed, %d resumed\n"
      done_ total pct (count "computed") (count "resumed");
    (match num "elapsed_seconds" with
    | Some dt when dt > 0. ->
        Printf.printf "elapsed: %.1fs (%.1f cells/s)\n" dt
          (float_of_int (count "computed") /. dt)
    | _ -> ());
    let incidents =
      List.filter
        (fun (_, v) -> v > 0)
        [
          ("quarantined checkpoints", count "quarantined");
          ("requeued shards", count "requeued_shards");
          ("worker restarts", count "worker_restarts");
          ("protocol errors", count "protocol_errors");
          ("progress kills", count "progress_kills");
        ]
    in
    if incidents <> [] then
      Printf.printf "incidents: %s\n"
        (String.concat ", "
           (List.map (fun (l, v) -> Printf.sprintf "%d %s" v l) incidents));
    (* per-worker health, when the service wrote the file *)
    (match Option.bind (mem "workers") Telemetry.Json.to_list with
    | None | Some [] -> ()
    | Some ws ->
        let cell name w =
          match Telemetry.Json.member name w with
          | Some (Telemetry.Json.Num v) -> Printf.sprintf "%g" v
          | Some (Telemetry.Json.Str s) -> s
          | Some (Telemetry.Json.Bool b) -> string_of_bool b
          | _ -> "-"
        in
        Aat_bench_tables.print_table ~title:"workers"
          ~header:
            [ "slot"; "pid"; "alive"; "restarts"; "hb lag s"; "progress lag s";
              "backoff s"; "shard"; "failure" ]
          (List.map
             (fun w ->
               [
                 cell "slot" w; cell "pid" w; cell "alive" w;
                 cell "restarts" w; cell "heartbeat_lag_seconds" w;
                 cell "progress_lag_seconds" w;
                 cell "backoff_remaining_seconds" w; cell "shard_inflight" w;
                 cell "failure" w;
               ])
             ws));
    (* top error-ish counters from the metric snapshot *)
    match mem "metrics" with
    | None -> Ok ()
    | Some mj -> (
        match Obs.Metrics.Snapshot.of_json mj with
        | Error m -> Error (Printf.sprintf "%s: bad metrics snapshot: %s" path m)
        | Ok snap ->
            let interesting name =
              List.exists
                (fun frag ->
                  (* substring test *)
                  let ln = String.length name and lf = String.length frag in
                  let rec at i =
                    i + lf <= ln && (String.sub name i lf = frag || at (i + 1))
                  in
                  at 0)
                [
                  "error"; "garbage"; "mismatch"; "resync"; "oversized";
                  "fault"; "kill"; "requeue"; "quarantine"; "violation";
                  "restart";
                ]
            in
            let counters =
              List.filter_map
                (fun (s : Obs.Metrics.Snapshot.series) ->
                  match s.Obs.Metrics.Snapshot.value with
                  | Obs.Metrics.Snapshot.Counter v
                    when v > 0. && interesting s.Obs.Metrics.Snapshot.name ->
                      Some (s, v)
                  | _ -> None)
                snap
              |> List.stable_sort (fun (_, a) (_, b) -> Float.compare b a)
            in
            (match counters with
            | [] -> Printf.printf "error counters: none\n"
            | _ ->
                let rec take n = function
                  | x :: rest when n > 0 -> x :: take (n - 1) rest
                  | _ -> []
                in
                Aat_bench_tables.print_table ~title:"top error counters"
                  ~header:[ "series"; "labels"; "count" ]
                  (List.map
                     (fun ((s : Obs.Metrics.Snapshot.series), v) ->
                       [
                         s.Obs.Metrics.Snapshot.name;
                         String.concat ","
                           (List.map
                              (fun (k, lv) -> Printf.sprintf "%s=%s" k lv)
                              s.Obs.Metrics.Snapshot.labels);
                         Printf.sprintf "%g" v;
                       ])
                     (take 12 counters)));
            Ok ())
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:
         "Summarize a --status-out file: progress, rates, per-worker \
          health and top error counters")
    Term.(term_result' (const action $ file_pos))

(* ---------- bench ---------- *)

let bench_check_cmd =
  let files_term =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"BENCH"
          ~doc:"Committed BENCH_<TABLE>.json files to verify.")
  in
  let workers_term =
    Arg.(
      value & opt int 2
      & info [ "workers"; "j" ] ~docv:"W"
          ~doc:
            "Worker domains for the parallel table groups (default 2; 0 \
             means all cores). The determinism contract makes the bytes \
             identical for every value — that is what the check relies \
             on.")
  in
  let distributed_term =
    Arg.(
      value
      & opt (some int) None
      & info [ "distributed" ] ~docv:"W"
          ~doc:
            "Regenerate the campaign-backed groups on $(docv) service \
             worker processes instead of in-process domains (0 means all \
             cores); the bytes must not change.")
  in
  let action files workers distributed =
    let workers, distributed =
      match distributed with
      | Some w -> ((if w <= 0 then Pool.default_workers () else w), true)
      | None -> ((if workers <= 0 then Pool.default_workers () else workers), false)
    in
    let drifts = Aat_bench_tables.check_files ~distributed ~workers files in
    Aat_bench_tables.print_table ~title:"BENCH drift check"
      ~header:[ "file"; "table"; "result" ]
      (List.map
         (fun (d : Aat_bench_tables.drift) ->
           [
             d.Aat_bench_tables.path;
             Option.value d.Aat_bench_tables.table ~default:"?";
             (match d.Aat_bench_tables.verdict with
             | `Match -> "ok"
             | `Drift detail -> "DRIFT: " ^ detail
             | `Error m -> "ERROR: " ^ m);
           ])
         drifts);
    if
      List.for_all
        (fun (d : Aat_bench_tables.drift) ->
          d.Aat_bench_tables.verdict = `Match)
        drifts
    then Ok ()
    else
      Error
        "BENCH drift detected — regenerate with 'dune exec bench/main.exe -- \
         --table <NAME> --json-out' and commit the result"
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Regenerate committed BENCH_*.json table groups in memory and \
          byte-compare (the CI drift gate)")
    Term.(term_result' (const action $ files_term $ workers_term $ distributed_term))

let bench_cmd =
  Cmd.group
    (Cmd.info "bench" ~doc:"Experiment-table utilities")
    [ bench_check_cmd ]

let () =
  let doc = "round-optimal Byzantine approximate agreement on trees" in
  let info = Cmd.info "treeaa" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd;
            inspect_cmd;
            run_cmd;
            campaign_cmd;
            synth_cmd;
            replay_cmd;
            trace_cmd;
            bounds_cmd;
            chain_cmd;
            status_cmd;
            bench_cmd;
          ]))
