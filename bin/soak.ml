(* Randomized soak campaign: hammer every protocol in the repository with
   random trees, inputs, adversaries and schedulers, and report any
   violation of its specification. Exit code 0 = clean campaign.

     dune exec bin/soak.exe -- --runs 200 --seed 0 --workers 2

   The old positional form `soak.exe [runs] [seed]` is still accepted for
   one release. Built on the Campaign subsystem: each protocol family is a
   declarative spec, runs fan out over the Pool, and results are
   bit-identical whatever --workers says.

   This is the long-running complement to the qcheck properties in the test
   suite: same oracles, bigger and more varied search space, one summary
   line per protocol family. *)

open Treeagree
open Cmdliner

let family_specs ~runs ~seed =
  (* Spread the run budget evenly; every family derives its own base seed
     by splitting the campaign seed, so families are independent streams. *)
  let share i = (runs / 4) + if i < runs mod 4 then 1 else 0 in
  let base i = Campaign.split_seed ~base:seed ~index:i in
  let open Campaign.Spec in
  [
    {
      name = "tree-aa";
      protocol = Tree_aa;
      tree = Any_tree;
      n = Between (4, 13);
      t_budget = Up_to_third;
      inputs = Random_vertices;
      adversary = Any_tree_adversary;
      repetitions = share 0;
      base_seed = base 0;
    };
    {
      name = "nr-baseline";
      protocol = Nr_baseline;
      tree = Any_tree;
      n = Between (4, 13);
      t_budget = Up_to_third;
      inputs = Random_vertices;
      adversary = Random_silent;
      repetitions = share 1;
      base_seed = base 1;
    };
    {
      name = "realaa";
      protocol = Real_aa { eps = 1. };
      tree = Any_tree;
      n = Between (4, 18);
      t_budget = Up_to_third;
      inputs = Log_uniform_reals { log10_min = 1.; log10_max = 6. };
      adversary = Any_real_adversary;
      repetitions = share 2;
      base_seed = base 2;
    };
    {
      name = "async-tree-aa";
      protocol = Async_tree_aa;
      tree = Random_tree (Between (2, 61));
      n = Exactly 7;
      t_budget = Fixed_t 2;
      inputs = Random_vertices;
      adversary = Passive;
      repetitions = share 3;
      base_seed = base 3;
    };
  ]

let soak runs_flag seed_flag workers pos_runs pos_seed =
  if pos_runs <> None || pos_seed <> None then
    prerr_endline
      "soak: positional RUNS/SEED are deprecated; use --runs and --seed";
  let runs =
    match runs_flag with
    | Some r -> r
    | None -> Option.value pos_runs ~default:200
  in
  let seed =
    match seed_flag with
    | Some s -> s
    | None -> Option.value pos_seed ~default:0
  in
  let workers = if workers <= 0 then Pool.default_workers () else workers in
  let failures = ref 0 in
  let total = ref 0 in
  List.iter
    (fun (spec : Campaign.Spec.t) ->
      let result = Campaign.run ~workers spec in
      Array.iter
        (fun (tr : Campaign.task_result) ->
          match tr.Campaign.result with
          | Ok _ -> ()
          | Error e ->
              Printf.eprintf "[%s] task %d (seed %d) raised %s\n"
                spec.Campaign.Spec.name tr.Campaign.task tr.Campaign.task_seed
                e)
        result.Campaign.results;
      let agg = result.Campaign.aggregate in
      failures := !failures + agg.Campaign.violations;
      total := !total + agg.Campaign.tasks;
      Printf.printf "%-14s %5d runs  %d violations\n" spec.Campaign.Spec.name
        agg.Campaign.tasks agg.Campaign.violations)
    (family_specs ~runs ~seed);
  if !failures > 0 then begin
    Printf.printf "SOAK FAILED: %d violations\n" !failures;
    exit 1
  end
  else Printf.printf "soak clean (%d runs, seed %d)\n" !total seed

let runs_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "runs" ]
        ~docv:"N"
        ~doc:"Total number of runs across all protocol families (default 200).")

let seed_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Base campaign seed (default 0).")

let workers_t =
  Arg.(
    value
    & opt int 1
    & info [ "workers"; "j" ] ~docv:"W"
        ~doc:
          "Worker domains for the campaign pool (default 1; 0 means all \
           cores). Results are identical for every value.")

let pos_runs_t =
  Arg.(
    value
    & pos 0 (some int) None
    & info [] ~docv:"RUNS" ~doc:"Deprecated positional form of $(b,--runs).")

let pos_seed_t =
  Arg.(
    value
    & pos 1 (some int) None
    & info [] ~docv:"SEED" ~doc:"Deprecated positional form of $(b,--seed).")

let cmd =
  let doc = "randomized soak campaign over every protocol family" in
  Cmd.v
    (Cmd.info "soak" ~doc)
    Term.(const soak $ runs_t $ seed_t $ workers_t $ pos_runs_t $ pos_seed_t)

let () = exit (Cmd.eval cmd)
