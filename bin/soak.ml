(* Randomized soak campaign: hammer every protocol in the repository with
   random trees, inputs, adversaries and schedulers, and report any
   violation of its specification. Exit code 0 = clean campaign.

     dune exec bin/soak.exe -- [runs] [seed]     (defaults: 200 runs, seed 0)

   This is the long-running complement to the qcheck properties in the test
   suite: same oracles, bigger and more varied search space, one summary
   line per protocol family. *)

open Treeagree

type tally = { mutable runs : int; mutable violations : int }

let tally () = { runs = 0; violations = 0 }

let record t ok =
  t.runs <- t.runs + 1;
  if not ok then t.violations <- t.violations + 1

let random_tree rng =
  match Rng.int rng 6 with
  | 0 -> Generate.path (2 + Rng.int rng 300)
  | 1 -> Generate.star (3 + Rng.int rng 200)
  | 2 ->
      Generate.caterpillar ~spine:(1 + Rng.int rng 40) ~legs:(Rng.int rng 4)
  | 3 -> Generate.spider ~legs:(1 + Rng.int rng 8) ~leg_length:(1 + Rng.int rng 20)
  | 4 -> Generate.balanced ~arity:(2 + Rng.int rng 2) ~depth:(1 + Rng.int rng 5)
  | _ -> Generate.random rng (2 + Rng.int rng 250)

let tree_adversary rng ~tree ~t =
  let barrier = max 1 (Paths_finder.rounds ~tree) in
  match Rng.int rng 4 with
  | 0 -> Adversary.passive "none"
  | 1 -> Strategies.random_silent ~count:t
  | 2 ->
      Strategies.crash
        ~at_round:(1 + Rng.int rng (max 1 (Tree_aa.rounds ~tree)))
        ~victims:(Aat_util.Rng.sample_without_replacement rng t (t + 3))
  | _ ->
      let nv = Tree.n_vertices tree in
      Compose_adversary.phased ~name:"spoiler" ~barrier
        ~first:
          (Spoiler.realaa_spoiler ~t
             ~iterations:
               (Rounds.bdh_iterations ~range:(float_of_int ((2 * nv) - 2)) ~eps:1.))
        ~second:
          (Spoiler.realaa_spoiler ~t
             ~iterations:
               (Rounds.bdh_iterations
                  ~range:(float_of_int (max 2 (Metrics.diameter tree)))
                  ~eps:1.))

let check_tree_run ~tree ~inputs (report : (Tree.vertex, _) Engine.report) =
  let initially = Engine.initially_corrupted report in
  let hull_inputs =
    Array.to_list (Array.mapi (fun i v -> (i, v)) inputs)
    |> List.filter_map (fun (i, v) ->
           if List.mem i initially then None else Some v)
  in
  Verdict.all_ok
    (Tree_verdict.check ~tree
       ~n_honest:(Array.length inputs - List.length report.Engine.corrupted)
       ~honest_inputs:hull_inputs
       ~honest_outputs:(Engine.honest_outputs report))

let soak_tree_aa rng t_tally =
  let tree = random_tree rng in
  let nv = Tree.n_vertices tree in
  let n = 4 + Rng.int rng 10 in
  let t = Rng.int rng ((n - 1) / 3 + 1) in
  let inputs = Array.init n (fun _ -> Rng.int rng nv) in
  let adversary = tree_adversary rng ~tree ~t in
  let report = Tree_aa.run ~seed:(Rng.int rng 1_000_000) ~tree ~inputs ~t ~adversary () in
  record t_tally (check_tree_run ~tree ~inputs report)

let soak_nr rng t_tally =
  let tree = random_tree rng in
  let nv = Tree.n_vertices tree in
  let n = 4 + Rng.int rng 10 in
  let t = Rng.int rng ((n - 1) / 3 + 1) in
  let inputs = Array.init n (fun _ -> Rng.int rng nv) in
  let report =
    Nr_baseline.run ~seed:(Rng.int rng 1_000_000) ~tree ~inputs ~t
      ~adversary:(Strategies.random_silent ~count:t) ()
  in
  record t_tally (check_tree_run ~tree ~inputs report)

let soak_realaa rng t_tally =
  let n = 4 + Rng.int rng 15 in
  let t = Rng.int rng ((n - 1) / 3 + 1) in
  let d = Float.pow 10. (1. +. Rng.float rng 5.) in
  let values = Array.init n (fun _ -> Rng.float rng d) in
  let iterations = Rounds.bdh_iterations ~range:d ~eps:1. in
  let adversary =
    match Rng.int rng 3 with
    | 0 -> Adversary.passive "none"
    | 1 -> Strategies.random_silent ~count:t
    | _ -> Spoiler.realaa_spoiler ~t ~iterations
  in
  let report =
    Engine.run ~n ~t ~seed:(Rng.int rng 1_000_000)
      ~max_rounds:(max 1 (3 * iterations))
      ~protocol:(Real_aa.protocol ~inputs:(fun i -> values.(i)) ~t ~iterations ())
      ~adversary ()
  in
  let hull_inputs =
    let initially = Engine.initially_corrupted report in
    Array.to_list (Array.mapi (fun i v -> (i, v)) values)
    |> List.filter_map (fun (i, v) ->
           if List.mem i initially then None else Some v)
  in
  record t_tally
    (Verdict.all_ok
       (Verdict.real ~eps:1.
          ~n_honest:(n - List.length report.Engine.corrupted)
          ~honest_inputs:hull_inputs
          ~honest_outputs:
            (List.map
               (fun (r : Real_aa.result) -> r.value)
               (Engine.honest_outputs report))))

let soak_async rng t_tally =
  let tree = Generate.random rng (2 + Rng.int rng 60) in
  let nv = Tree.n_vertices tree in
  let inputs = Array.init 7 (fun _ -> Rng.int rng nv) in
  let iterations = Nr_baseline.iterations_for tree in
  let scheduler =
    match Rng.int rng 3 with
    | 0 -> Async_engine.Fifo
    | 1 -> Async_engine.Lifo
    | _ -> Async_engine.Random_order
  in
  let report =
    Async_engine.run ~n:7 ~t:2 ~seed:(Rng.int rng 1_000_000)
      ~max_events:2_000_000
      ~reactor:(Async_aa.tree ~tree ~inputs:(fun i -> inputs.(i)) ~t:2 ~iterations)
      ~adversary:(Async_engine.passive ~scheduler "none")
      ()
  in
  let honest_inputs = Array.to_list inputs in
  record t_tally
    (Verdict.all_ok
       (Tree_verdict.check ~tree ~n_honest:7 ~honest_inputs
          ~honest_outputs:
            (List.map
               (fun (_, (r : Tree.vertex Async_aa.result)) -> r.value)
               report.Async_engine.outputs)))

let () =
  let runs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200
  in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 0 in
  let rng = Rng.create seed in
  let families =
    [
      ("tree-aa", soak_tree_aa, tally ());
      ("nr-baseline", soak_nr, tally ());
      ("realaa", soak_realaa, tally ());
      ("async-tree-aa", soak_async, tally ());
    ]
  in
  for i = 1 to runs do
    let name, f, t = List.nth families (i mod List.length families) in
    (try f rng t
     with exn ->
       record t false;
       Printf.eprintf "[%s] run %d raised %s\n" name i (Printexc.to_string exn))
  done;
  let failures = ref 0 in
  List.iter
    (fun (name, _, t) ->
      failures := !failures + t.violations;
      Printf.printf "%-14s %5d runs  %d violations\n" name t.runs t.violations)
    families;
  if !failures > 0 then begin
    Printf.printf "SOAK FAILED: %d violations\n" !failures;
    exit 1
  end
  else Printf.printf "soak clean (%d runs, seed %d)\n" runs seed
