(* Randomized soak campaign: hammer every protocol in the repository with
   random trees, inputs, adversaries and schedulers, and report any
   violation of its specification. Exit code 0 = clean campaign.

     dune exec bin/soak.exe -- --runs 200 --seed 0 --workers 2

   --chaos INTENSITY additionally draws a random fault plan (crashes,
   omissions, partitions, async duplicate/delay) per task and turns the
   invariant watchdogs on; out-of-model failures are excused, not counted
   as violations, and no fault plan may crash the process.

   Built on the Campaign subsystem: each protocol family is a declarative
   spec, runs fan out over the Pool, and results are bit-identical
   whatever --workers says.

   This is the long-running complement to the qcheck properties in the test
   suite: same oracles, bigger and more varied search space, one summary
   line per protocol family. *)

open Treeagree
open Cmdliner

let family_specs ~runs ~seed ~faults ~watchdogs =
  (* Spread the run budget evenly; every family derives its own base seed
     by splitting the campaign seed, so families are independent streams. *)
  let share i = (runs / 4) + if i < runs mod 4 then 1 else 0 in
  let base i = Campaign.split_seed ~base:seed ~index:i in
  let open Campaign.Spec in
  [
    {
      name = "tree-aa";
      protocol = Tree_aa;
      tree = Any_tree;
      n = Between (4, 13);
      t_budget = Up_to_third;
      inputs = Random_vertices;
      adversary = Any_tree_adversary;
      faults;
      watchdogs;
      repetitions = share 0;
      base_seed = base 0;
    };
    {
      name = "nr-baseline";
      protocol = Nr_baseline;
      tree = Any_tree;
      n = Between (4, 13);
      t_budget = Up_to_third;
      inputs = Random_vertices;
      adversary = Random_silent;
      faults;
      watchdogs;
      repetitions = share 1;
      base_seed = base 1;
    };
    {
      name = "realaa";
      protocol = Real_aa { eps = 1. };
      tree = Any_tree;
      n = Between (4, 18);
      t_budget = Up_to_third;
      inputs = Log_uniform_reals { log10_min = 1.; log10_max = 6. };
      adversary = Any_real_adversary;
      faults;
      watchdogs;
      repetitions = share 2;
      base_seed = base 2;
    };
    {
      name = "async-tree-aa";
      protocol = Async_tree_aa;
      tree = Random_tree (Between (2, 61));
      n = Exactly 7;
      t_budget = Fixed_t 2;
      inputs = Random_vertices;
      adversary = Passive;
      faults;
      watchdogs;
      repetitions = share 3;
      base_seed = base 3;
    };
  ]

(* Both execution paths produce the same aggregate and per-task errors:
   the in-process campaign pool, or — under --distributed — the
   multi-process campaign service (whose JSONL/aggregate determinism
   contract makes the soak output identical either way). *)
let run_spec ~workers ~distributed (spec : Campaign.Spec.t) =
  if distributed then (
    match Service.run ~workers spec with
    | Error e ->
        Printf.eprintf "[%s] campaign service failed: %s\n"
          spec.Campaign.Spec.name e;
        exit 1
    | Ok r ->
        let seeds =
          Campaign.task_seeds ~base_seed:spec.Campaign.Spec.base_seed
            ~count:spec.Campaign.Spec.repetitions
        in
        Array.iteri
          (fun task cell ->
            match cell with
            | Some (Error e) ->
                Printf.eprintf "[%s] task %d (seed %d) raised %s\n"
                  spec.Campaign.Spec.name task seeds.(task) e
            | _ -> ())
          r.Service.cells;
        r.Service.aggregate)
  else
    let result = Campaign.run ~workers spec in
    Array.iter
      (fun (tr : Campaign.task_result) ->
        match tr.Campaign.result with
        | Ok _ -> ()
        | Error e ->
            Printf.eprintf "[%s] task %d (seed %d) raised %s\n"
              spec.Campaign.Spec.name tr.Campaign.task tr.Campaign.task_seed e)
      result.Campaign.results;
    result.Campaign.aggregate

let soak runs seed workers chaos spec_file distributed =
  let faults, watchdogs =
    match chaos with
    | None -> (Campaign.Spec.No_faults, false)
    | Some intensity -> (Campaign.Spec.Chaos { intensity }, true)
  in
  let workers = if workers <= 0 then Pool.default_workers () else workers in
  let failures = ref 0 in
  let total = ref 0 in
  let timeouts = ref 0 in
  let engine_errors = ref 0 in
  let excused = ref 0 in
  let specs =
    match spec_file with
    | None -> family_specs ~runs ~seed ~faults ~watchdogs
    | Some path -> (
        (* A single spec parsed through the same Spec_io codec as
           'treeaa campaign --spec' and the flight-record headers; the
           grid-shape flags (--runs, --seed, --chaos) are ignored. *)
        let ic = open_in_bin path in
        let contents = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match
          Result.bind
            (Telemetry.Json.of_string (String.trim contents))
            Spec_io.of_json
        with
        | Ok spec -> [ spec ]
        | Error m ->
            Printf.eprintf "%s: bad campaign spec: %s\n" path m;
            exit 1)
  in
  List.iter
    (fun (spec : Campaign.Spec.t) ->
      let agg = run_spec ~workers ~distributed spec in
      failures := !failures + agg.Campaign.violations;
      total := !total + agg.Campaign.tasks;
      timeouts := !timeouts + agg.Campaign.timeouts;
      engine_errors := !engine_errors + agg.Campaign.engine_errors;
      excused := !excused + agg.Campaign.excused;
      Printf.printf "%-14s %5d runs  %d violations%s\n"
        spec.Campaign.Spec.name agg.Campaign.tasks agg.Campaign.violations
        (if agg.Campaign.excused > 0 || agg.Campaign.timeouts > 0 then
           Printf.sprintf "  (%d excused, %d timeouts)" agg.Campaign.excused
             agg.Campaign.timeouts
         else ""))
    specs;
  (* Engine errors are uncontained exceptions the structured-outcome layer
     caught; under any fault plan they indicate a containment bug. *)
  if !engine_errors > 0 then begin
    Printf.printf "SOAK FAILED: %d engine errors\n" !engine_errors;
    exit 1
  end;
  if !failures > 0 then begin
    Printf.printf "SOAK FAILED: %d violations\n" !failures;
    exit 1
  end
  else
    Printf.printf "soak clean (%d runs, seed %d%s)\n" !total seed
      (match chaos with
      | None -> ""
      | Some i ->
          Printf.sprintf ", chaos %g: %d excused, %d timeouts" i !excused
            !timeouts)

let runs_t =
  Arg.(
    value & opt int 200
    & info [ "runs" ]
        ~docv:"N"
        ~doc:"Total number of runs across all protocol families (default 200).")

let seed_t =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"SEED" ~doc:"Base campaign seed (default 0).")

let workers_t =
  Arg.(
    value
    & opt int 1
    & info [ "workers"; "j" ] ~docv:"W"
        ~doc:
          "Worker domains for the campaign pool (default 1; 0 means all \
           cores). Results are identical for every value.")

let chaos_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "chaos" ] ~docv:"INTENSITY"
        ~doc:
          "Chaos mode: draw a random fault plan per task (intensity in \
           [0, 1], scaling fault probabilities) and enable the invariant \
           watchdogs. Deterministic in --seed.")

let spec_t =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec" ] ~docv:"FILE"
        ~doc:
          "Soak one campaign spec loaded from a JSON file (the Spec_io \
           codec shared with 'treeaa campaign --spec' and flight-record \
           headers) instead of the built-in protocol families; --runs, \
           --seed and --chaos are ignored.")

let distributed_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "distributed" ] ~docv:"W"
        ~doc:
          "Run each family through the multi-process campaign service on \
           $(docv) worker processes instead of in-process domains; the \
           soak output is identical. Overrides --workers.")

(* The old positional form `soak.exe RUNS SEED` is gone; catch it with a
   clear pointer instead of silently ignoring the arguments. *)
let no_positional_t =
  let reject = function
    | [] -> Ok ()
    | args ->
        Error
          (Printf.sprintf
             "positional arguments %s are not accepted; use --runs N, --seed \
              S (and --workers W)"
             (String.concat " " (List.map (Printf.sprintf "%S") args)))
  in
  Term.(term_result' (const reject $ Arg.(value & pos_all string [] & info [] ~docv:"")))

let cmd =
  let doc = "randomized soak campaign over every protocol family" in
  Cmd.v
    (Cmd.info "soak" ~doc)
    Term.(
      const (fun () runs seed workers chaos spec distributed ->
          let workers, distributed =
            match distributed with
            | Some w -> (w, true)
            | None -> (workers, false)
          in
          soak runs seed workers chaos spec distributed)
      $ no_positional_t $ runs_t $ seed_t $ workers_t $ chaos_t $ spec_t
      $ distributed_t)

let () = exit (Cmd.eval cmd)
