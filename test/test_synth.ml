(* Tests for the adversary-synthesis harness: the genome codec and search
   operators (validity is preserved under mutation/crossover, the wire
   form round-trips), the search driver's worker-count invariance — the
   same determinism contract the campaign subsystem pins — the gap
   report's soundness against K(R, D) and the Lemma-5 envelope, champion
   replay bit-identity, and the differential check between the watchdog
   and Verdict.grade grading paths. Also pins the Strategies.crash
   at_round fix: out-of-range rounds are rejected or clamped, never
   silently dropped. *)

open Treeagree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* genome generators *)

(* A genome plus the (t, max_round) context it was drawn in — validity
   only means something relative to the budget and horizon. *)
let genome_ctx_gen ~generic_only =
  QCheck2.Gen.(
    map
      (fun seed ->
        let rng = Rng.create seed in
        let t = 1 + (seed mod 4) in
        let max_round = 3 + (seed mod 30) in
        (t, max_round, Genome.random ~generic_only rng ~t ~max_round))
      (int_bound 1_000_000))

let print_ctx (t, max_round, g) =
  Printf.sprintf "t=%d max_round=%d %s" t max_round (Genome.to_string g)

(* ------------------------------------------------------------------ *)
(* codec *)

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec round-trip" ~count:500 ~print:print_ctx
    (genome_ctx_gen ~generic_only:false) (fun (_, _, g) ->
      match Genome.of_string (Genome.to_string g) with
      | Ok g' -> Genome.equal g g'
      | Error _ -> false)

let test_codec_rejects () =
  let bad s =
    match Genome.of_string s with Ok _ -> false | Error _ -> true
  in
  List.iter
    (fun s -> check (Printf.sprintf "reject %S" s) true (bad s))
    [
      "";
      "bogus";
      "silent:2t";
      (* missing slots *)
      "silent:2t+none";
      (* missing scheduler *)
      "silent:0t+none+fifo";
      (* zero victims *)
      "crash:1b@0+none+fifo";
      (* crash round < 1 *)
      "silent:2x+none+fifo";
      (* unknown placement *)
      "none+none+turbo";
      (* unknown scheduler *)
      "none+none+fifo+none";
      (* too many parts *)
    ]

let test_codec_examples () =
  (* the wire forms documented in genome.mli *)
  match Genome.of_string "silent:2t+crash:1b@5+fifo" with
  | Error m -> Alcotest.failf "documented example rejected: %s" m
  | Ok g ->
      check "example round-trips" true
        (Genome.to_string g = "silent:2t+crash:1b@5+fifo");
      check "example is generic" true (Genome.generic g);
      check "example valid at t=2" true (Genome.valid ~t:2 ~max_round:9 g);
      check "example invalid at t=1 (2 victims)" false
        (Genome.valid ~t:1 ~max_round:9 g);
      check "example invalid at max_round=4 (crash@5)" false
        (Genome.valid ~t:2 ~max_round:4 g)

(* ------------------------------------------------------------------ *)
(* search operators *)

let prop_mutation_preserves_validity =
  QCheck2.Test.make ~name:"mutation chain stays valid" ~count:200
    ~print:print_ctx (genome_ctx_gen ~generic_only:false)
    (fun (t, max_round, g0) ->
      let rng = Rng.create 42 in
      let g = ref g0 in
      let ok = ref (Genome.valid ~t ~max_round g0) in
      for _ = 1 to 40 do
        g := Genome.mutate rng ~t ~max_round !g;
        if not (Genome.valid ~t ~max_round !g) then ok := false
      done;
      !ok)

let prop_generic_mutation_stays_generic =
  QCheck2.Test.make ~name:"generic_only mutation stays generic" ~count:200
    ~print:print_ctx
    (genome_ctx_gen ~generic_only:true)
    (fun (t, max_round, g0) ->
      let rng = Rng.create 7 in
      let g = ref g0 in
      let ok = ref (Genome.generic g0) in
      for _ = 1 to 40 do
        g := Genome.mutate ~generic_only:true rng ~t ~max_round !g;
        if not (Genome.generic !g && Genome.valid ~t ~max_round !g) then
          ok := false
      done;
      !ok)

let prop_crossover_preserves_validity =
  QCheck2.Test.make ~name:"crossover child valid" ~count:300
    ~print:(fun (a, b) -> print_ctx a ^ " x " ^ print_ctx b)
    QCheck2.Gen.(
      pair
        (genome_ctx_gen ~generic_only:false)
        (genome_ctx_gen ~generic_only:false))
    (fun ((ta, ra, a), (tb, rb, b)) ->
      (* the child must be valid in the *looser* of the two contexts —
         crossover only recombines genes, it cannot grow a count or a
         round beyond what one parent already had *)
      let rng = Rng.create 11 in
      let child = Genome.crossover rng a b in
      Genome.valid ~t:(max ta tb) ~max_round:(max ra rb) child)

let test_select_victims () =
  let ids placement count =
    Genome.select_victims ~n:6 { Genome.count; placement }
  in
  Alcotest.(check (list int)) "top" [ 4; 5 ] (ids Genome.Top 2);
  Alcotest.(check (list int)) "bottom" [ 0; 1 ] (ids Genome.Bottom 2);
  Alcotest.(check (list int)) "spread" [ 0; 3 ] (ids Genome.Spread 2);
  Alcotest.(check (list int))
    "count clamped to n" [ 0; 1; 2; 3; 4; 5 ]
    (ids Genome.Bottom 99)

(* ------------------------------------------------------------------ *)
(* Strategies.crash at_round pin (the silently-never-fires fix) *)

(* A RealAA runner whose engine horizon (3 * iterations = 90 rounds)
   exceeds the adversary-side clamp Defaults.max_rounds ~n:4 = 80: a
   crash scheduled absurdly late must fire at the clamp, not vanish. *)
let crash_runner ~at_round =
  Runner.real_aa ~eps:1e6 ~inputs:[| 0.; 1.; 2.; 3. |] ~t:1 ~iterations:30
    ~adversary:(fun () -> Strategies.crash ~at_round ~victims:[ 0 ])
    ()

let test_crash_rejects_nonpositive_round () =
  Alcotest.check_raises "at_round = 0 rejected"
    (Invalid_argument "Strategies.crash: at_round must be >= 1 (got 0)")
    (fun () -> ignore (Strategies.crash ~at_round:0 ~victims:[ 0 ]));
  Alcotest.check_raises "at_round = -3 rejected"
    (Invalid_argument "Strategies.crash: at_round must be >= 1 (got -3)")
    (fun () -> ignore (Strategies.crash ~at_round:(-3) ~victims:[ 0 ]))

let test_crash_clamps_far_round () =
  check_int "max_rounds clamp target" 80 (Defaults.max_rounds ~n:4);
  let outcome = (crash_runner ~at_round:10_000).Runner.run ~seed:0 () in
  (* before the fix this crash never fired and corrupted stayed 0 *)
  check_int "far-future crash fires at the clamp" 1 outcome.Runner.corrupted;
  check_int "not corrupted at start" 0 outcome.Runner.initially_corrupted

let test_crash_normal_round_still_fires () =
  let outcome = (crash_runner ~at_round:2).Runner.run ~seed:0 () in
  check_int "in-horizon crash fires" 1 outcome.Runner.corrupted

(* ------------------------------------------------------------------ *)
(* search determinism *)

let realaa_target () =
  match Synth.target_for "realaa" with
  | Ok t -> t
  | Error m -> Alcotest.failf "realaa target: %s" m

let config ?(driver = Synth.Mu_plus_lambda) ?(generations = 2)
    ?(population = 4) ?(seed = 1) ~workers () =
  { Synth.driver; generations; population; seed; workers }

let test_search_workers_invariance () =
  let target = realaa_target () in
  let reports =
    List.map (fun workers -> Synth.search (config ~workers ()) target) [ 1; 2; 4 ]
  in
  match reports with
  | [ r1; r2; r4 ] ->
      List.iter
        (fun (label, r) ->
          check label true
            (Genome.equal r.Synth.champion.Synth.genome
               r1.Synth.champion.Synth.genome);
          Alcotest.(check (float 0.))
            (label ^ " fitness") r1.Synth.champion.Synth.fitness
            r.Synth.champion.Synth.fitness;
          Alcotest.(check (list (pair int (float 0.))))
            (label ^ " history") r1.Synth.history r.Synth.history;
          check_int (label ^ " evaluations") r1.Synth.evaluations
            r.Synth.evaluations)
        [ ("workers 2 = workers 1", r2); ("workers 4 = workers 1", r4) ]
  | _ -> assert false

let test_search_drivers_run () =
  (* random and hill share the evaluation/gap plumbing with evolve; a
     tiny budget of each must produce a sound report *)
  let target = realaa_target () in
  List.iter
    (fun driver ->
      let r = Synth.search (config ~driver ~population:2 ~workers:2 ()) target in
      check (Synth.driver_label driver ^ " sound") true r.Synth.gap.Synth.sound;
      check_int
        (Synth.driver_label driver ^ " history length")
        2
        (List.length r.Synth.history))
    [ Synth.Random_search; Synth.Hill_climb ]

(* ------------------------------------------------------------------ *)
(* gap sanity and champion replay *)

let test_gap_sanity () =
  let r = Synth.search (config ~workers:2 ()) (realaa_target ()) in
  let g = r.Synth.gap in
  check "sound" true g.Synth.sound;
  check "K(R,D) does not beat the measured execution" true
    (g.Synth.k_theory <= g.Synth.measured +. 1e-6);
  check "K(R,D) positive" true (g.Synth.k_theory > 0.);
  (match g.Synth.envelope with
  | None -> Alcotest.fail "realaa target carries the Lemma-5 envelope"
  | Some e ->
      check "measured within the Lemma-5 envelope" true
        (g.Synth.measured <= e +. 1e-6));
  check "ratio consistent" true
    (Float.abs (g.Synth.ratio -. (g.Synth.measured /. g.Synth.k_theory))
    <= 1e-6 *. g.Synth.ratio)

let test_champion_replay_bit_identity () =
  let r = Synth.search (config ~workers:2 ()) (realaa_target ()) in
  match Replay.run r.Synth.champion.Synth.record with
  | Error m -> Alcotest.failf "champion replay failed to execute: %s" m
  | Ok replay -> (
      match replay.Replay.verdict with
      | Ok () -> ()
      | Error d ->
          Alcotest.failf "champion replay diverged: %a" Replay.pp_divergence d)

let test_all_targets_sound_and_replayable () =
  (* one micro-search per default target: every champion must respect
     the bound and replay clean, whatever the protocol/engine *)
  List.iter
    (fun target ->
      let r =
        Synth.search (config ~generations:1 ~population:2 ~workers:2 ()) target
      in
      check (target.Synth.label ^ " sound") true r.Synth.gap.Synth.sound;
      match Replay.run r.Synth.champion.Synth.record with
      | Error m -> Alcotest.failf "%s replay: %s" target.Synth.label m
      | Ok replay ->
          check (target.Synth.label ^ " replay clean") true
            (Result.is_ok replay.Replay.verdict))
    (Synth.default_targets ())

(* ------------------------------------------------------------------ *)
(* differential grading: watchdogs vs Verdict.grade *)

(* The runs carry watchdogs (spec_for sets watchdogs = true) and the
   genome operators never exceed the budget t, so the two grading paths
   must agree in the one direction the catalog guarantees: a run whose
   invariant watchdogs stayed silent and whose properties all hold is
   Passed, and a watchdog violation on an in-budget run means the run
   really went wrong — Verdict.grade must not report Passed. *)
let test_watchdog_verdict_differential () =
  let target = realaa_target () in
  let task_seed = Campaign.split_seed ~base:3 ~index:0 in
  for seed = 0 to 29 do
    let rng = Rng.create seed in
    let g =
      Genome.random rng ~t:target.Synth.t ~max_round:target.Synth.max_round
    in
    match Synth.evaluate target ~task_seed g with
    | Error m -> Alcotest.failf "evaluate %s: %s" (Genome.to_string g) m
    | Ok e ->
        let violated = e.Synth.outcome.Runner.violations <> [] in
        let passed = e.Synth.outcome.Runner.grade = Verdict.Passed in
        if violated && passed then
          Alcotest.failf
            "genome %s: watchdog fired (%d violations) but grade is passed"
            (Genome.to_string g)
            (List.length e.Synth.outcome.Runner.violations)
  done

let test_wedge_boundary_violates_both_paths () =
  (* n = 3t is below the resilience threshold: the wedge equivocation
     must break agreement — and both grading paths have to say so *)
  let target =
    { (realaa_target ()) with Synth.label = "wedge-boundary"; n = 9; t = 3 }
  in
  let genome =
    {
      Genome.first = Genome.Wedge;
      second = Genome.Passive;
      scheduler = Genome.Fifo;
    }
  in
  match Synth.evaluate target ~task_seed:5 genome with
  | Error m -> Alcotest.failf "evaluate: %s" m
  | Ok e ->
      check "agreement broken" false e.Synth.outcome.Runner.agreement;
      (match e.Synth.outcome.Runner.grade with
      | Verdict.Violated _ -> ()
      | g ->
          Alcotest.failf "expected Violated at n = 3t, got %s"
            (Verdict.graded_label g));
      check "spread visible to the fitness function" true (e.Synth.spread > 0.)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "synth"
    [
      qsuite "genome properties"
        [
          prop_codec_roundtrip;
          prop_mutation_preserves_validity;
          prop_generic_mutation_stays_generic;
          prop_crossover_preserves_validity;
        ];
      ( "genome codec",
        [
          Alcotest.test_case "rejects malformed" `Quick test_codec_rejects;
          Alcotest.test_case "documented examples" `Quick test_codec_examples;
          Alcotest.test_case "select_victims" `Quick test_select_victims;
        ] );
      ( "strategies crash pin",
        [
          Alcotest.test_case "rejects non-positive round" `Quick
            test_crash_rejects_nonpositive_round;
          Alcotest.test_case "clamps far-future round" `Quick
            test_crash_clamps_far_round;
          Alcotest.test_case "normal round fires" `Quick
            test_crash_normal_round_still_fires;
        ] );
      ( "search",
        [
          Alcotest.test_case "workers invariance" `Quick
            test_search_workers_invariance;
          Alcotest.test_case "random and hill drivers" `Quick
            test_search_drivers_run;
        ] );
      ( "gap",
        [
          Alcotest.test_case "sanity vs K(R,D)" `Quick test_gap_sanity;
          Alcotest.test_case "champion replay bit-identity" `Quick
            test_champion_replay_bit_identity;
          Alcotest.test_case "all targets sound + replayable" `Quick
            test_all_targets_sound_and_replayable;
        ] );
      ( "differential grading",
        [
          Alcotest.test_case "watchdogs vs Verdict.grade" `Quick
            test_watchdog_verdict_differential;
          Alcotest.test_case "wedge at n = 3t violates both" `Quick
            test_wedge_boundary_violates_both_paths;
        ] );
    ]
