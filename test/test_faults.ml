(* Tests for the fault-injection layer: the plan grammar and its IO, the
   deterministic compilation of plans onto the Mailbox, the crash ≡
   Byzantine-silence differential on both engines, the async-only faults'
   patience discipline, the watchdog catalog, structured run outcomes, and
   the fault-aware grading rules. *)

open Treeagree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* plan grammar: parse / print / JSON *)

let parse_ok s =
  match Fault_plan_io.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "%S did not parse: %s" s e

let test_plan_io_grammar () =
  check "none is empty" true (Fault_plan.is_empty (parse_ok "none"));
  check "empty string is empty" true (Fault_plan.is_empty (parse_ok ""));
  (let open Fault_plan in
   Alcotest.(check bool) "crash clause" true
     (parse_ok "crash:2@3" = [ Crash { party = 2; at_round = 3 } ]);
   check "crash-recover clause" true
     (parse_ok "crash-recover:1@2-5"
     = [ Crash_recover { party = 1; from_round = 2; to_round = 5 } ]);
   check "whole-network omission" true
     (parse_ok "omission:0.25" = [ Omission { prob = 0.25; scope = All } ]);
   check "party-scoped omission" true
     (parse_ok "omission:0.1:party:3"
     = [ Omission { prob = 0.1; scope = Party 3 } ]);
   check "pair-scoped omission" true
     (parse_ok "omission:0.5:pair:1>2"
     = [ Omission { prob = 0.5; scope = Pair { src = 1; dst = 2 } } ]);
   check "duplicate clause" true
     (parse_ok "duplicate:0.5" = [ Duplicate { prob = 0.5; scope = All } ]);
   check "delay clause" true
     (parse_ok "delay:0.3:40:party:2"
     = [ Delay { prob = 0.3; scope = Party 2; by = 40 } ]);
   check "partition clause" true
     (parse_ok "partition:0,1|2,3,4@2-6"
     = [
         Partition
           { blocks = [ [ 0; 1 ]; [ 2; 3; 4 ] ]; from_round = 2; to_round = 6 };
       ]);
   check "clauses compose with ;" true
     (parse_ok "crash:0@1;omission:0.2"
     = [ Crash { party = 0; at_round = 1 }; Omission { prob = 0.2; scope = All } ]));
  (* malformed input reports an error instead of raising *)
  List.iter
    (fun s ->
      match Fault_plan_io.parse s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "bogus:1"; "omission:1.5"; "crash:0"; "partition:0,1@3-2"; "crash:-1@2" ]

let gen_plan =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Rng.create seed in
      Fault_plan.random rng ~n:6 ~rounds_hint:10 ~sync_only:(Rng.bool rng) ())
    QCheck2.Gen.(int_bound 1_000_000)

let prop_plan_io_roundtrip =
  QCheck2.Test.make ~name:"Plan_io: parse (to_string p) round-trips" ~count:200
    gen_plan (fun plan ->
      let s = Fault_plan_io.to_string plan in
      match Fault_plan_io.parse s with
      | Error _ -> false
      | Ok plan' ->
          (* mutual inverses up to float rendering: a drawn probability may
             lose digits in printing, so compare printed forms — the
             reparse must be a fixed point of the grammar *)
          Fault_plan_io.to_string plan' = s)

let prop_plan_json_roundtrip =
  QCheck2.Test.make ~name:"Plan_io: of_json (to_json p) round-trips" ~count:100
    gen_plan (fun plan ->
      match Fault_plan_io.of_json (Fault_plan_io.to_json plan) with
      | Error _ -> false
      | Ok plan' ->
          Fault_plan_io.to_string plan' = Fault_plan_io.to_string plan)

let test_plan_validate () =
  let bad p = match Fault_plan.validate p with Ok () -> false | Error _ -> true in
  let open Fault_plan in
  check "probability > 1 rejected" true
    (bad [ Omission { prob = 1.5; scope = All } ]);
  check "negative probability rejected" true
    (bad [ Duplicate { prob = -0.1; scope = All } ]);
  check "inverted window rejected" true
    (bad [ Crash_recover { party = 0; from_round = 5; to_round = 2 } ]);
  check "negative party rejected" true
    (bad [ Crash { party = -1; at_round = 1 } ]);
  check "overlapping partition blocks rejected" true
    (bad
       [ Partition { blocks = [ [ 0; 1 ]; [ 1; 2 ] ]; from_round = 1; to_round = 3 } ]);
  check "party beyond n rejected" true
    (match
       Fault_plan.validate ~n:3 [ Crash { party = 7; at_round = 1 } ]
     with
    | Ok () -> false
    | Error _ -> true);
  check "well-formed plan accepted" true
    (Fault_plan.validate ~n:5
       [
         Crash { party = 0; at_round = 2 };
         Omission { prob = 0.3; scope = Party 4 };
         Partition { blocks = [ [ 0; 1 ]; [ 2; 3 ] ]; from_round = 1; to_round = 4 };
       ]
    = Ok ())

let test_plan_classes () =
  let open Fault_plan in
  check "permanent crash is not lossy" false
    (lossy [ Crash { party = 0; at_round = 1 } ]);
  check "omission is lossy" true (lossy [ Omission { prob = 0.1; scope = All } ]);
  check "partition is lossy" true
    (lossy [ Partition { blocks = [ [ 0 ] ]; from_round = 1; to_round = 2 } ]);
  check "crash-recover is lossy" true
    (lossy [ Crash_recover { party = 0; from_round = 1; to_round = 2 } ]);
  check "delay is sync-incompatible" false
    (sync_compatible [ Delay { prob = 0.5; scope = All; by = 3 } ]);
  check "duplicate is sync-incompatible" false
    (sync_compatible [ Duplicate { prob = 0.5; scope = All } ]);
  check "crash+omission is sync-compatible" true
    (sync_compatible
       [ Crash { party = 0; at_round = 1 }; Omission { prob = 0.1; scope = All } ]);
  Alcotest.(check (list (pair int int)))
    "crashes extraction"
    [ (0, 1); (2, 4) ]
    (crashes
       [
         Crash { party = 0; at_round = 1 };
         Omission { prob = 0.1; scope = All };
         Crash { party = 2; at_round = 4 };
       ]);
  check_int "crash_count ignores duplicates" 1
    (crash_count
       [ Crash { party = 3; at_round = 1 }; Crash { party = 3; at_round = 5 } ])

(* ------------------------------------------------------------------ *)
(* injection determinism on the sync engine *)

let tree5 = Generate.path 5
let inputs5 = [| 0; 4; 2; 1; 3 |]

let run_tree_outcome ?fault_filter ?(crash_faults = []) ?(watchdogs = [])
    ~adversary ~seed () =
  Engine.run_outcome ~n:(Array.length inputs5) ~t:1 ~seed ?fault_filter
    ~crash_faults ~watchdogs
    ~max_rounds:(max 1 (Tree_aa.rounds ~tree:tree5))
    ~protocol:
      (Tree_aa.protocol ~tree:tree5 ~inputs:(fun i -> inputs5.(i)) ~t:1)
    ~adversary ()

let report_of = function
  | Outcome.Completed r -> r
  | Outcome.Liveness_timeout { report; _ } -> report
  | Outcome.Engine_error { exn_text; _ } ->
      Alcotest.failf "unexpected engine error: %s" exn_text

let test_inject_deterministic () =
  let plan = parse_ok "omission:0.3" in
  let go seed =
    run_tree_outcome
      ~fault_filter:(Fault_inject.filter ~engine:`Sync ~seed plan)
      ~adversary:(Adversary.passive "none") ~seed ()
  in
  check "same seed, bit-identical outcome" true (go 11 = go 11);
  let a = report_of (go 11) and b = report_of (go 12) in
  check "faults actually dropped letters" true (a.Report.fault_stats.dropped > 0);
  check "different seed, different faults" true (a <> b)

let test_async_only_faults_inert_under_sync () =
  (* Duplicate/Delay clauses compile to Deliver under `Sync: the run is
     field-for-field the benign run *)
  let plan = parse_ok "duplicate:1;delay:1:50" in
  let faulty =
    run_tree_outcome
      ~fault_filter:(Fault_inject.filter ~engine:`Sync ~seed:5 plan)
      ~adversary:(Adversary.passive "none") ~seed:5 ()
  in
  let benign = run_tree_outcome ~adversary:(Adversary.passive "none") ~seed:5 () in
  check "sync run unchanged under async-only plan" true (faulty = benign)

(* ------------------------------------------------------------------ *)
(* crash ≡ Byzantine silence: the differential the Crash fault promises *)

let strip_faults (r : _ Report.t) = { r with Report.fault_stats = Report.no_faults }

let prop_crash_differential_sync =
  QCheck2.Test.make
    ~name:"sync: Crash plan report = Byzantine silent-corruption report"
    ~count:30
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 6 in
      let t = (n - 1) / 3 in
      let tree = Generate.random rng (2 + Rng.int rng 10) in
      let inputs = Array.init n (fun _ -> Rng.int rng (Tree.n_vertices tree)) in
      let victim = Rng.int rng n in
      let at_round = 1 + Rng.int rng (max 1 (Tree_aa.rounds ~tree)) in
      let go ~crash_faults ~adversary =
        Engine.run_outcome ~n ~t ~seed ~crash_faults
          ~max_rounds:(max 1 (Tree_aa.rounds ~tree))
          ~protocol:(Tree_aa.protocol ~tree ~inputs:(fun i -> inputs.(i)) ~t)
          ~adversary ()
      in
      let planned =
        report_of
          (go
             ~crash_faults:[ (victim, at_round) ]
             ~adversary:(Adversary.passive "none"))
      in
      let byzantine =
        report_of
          (go ~crash_faults:[]
             ~adversary:(Strategies.crash ~at_round ~victims:[ victim ]))
      in
      (* a trivial tree decides at initialization: round [at_round] is
         never reached and neither side crashes anyone *)
      let expected_crashes = if Tree_aa.rounds ~tree = 0 then 0 else 1 in
      planned.Report.fault_stats.crashed = expected_crashes
      && strip_faults planned = byzantine)

let async_tree = Generate.caterpillar ~spine:3 ~legs:1
let async_inputs = [| 0; 2; 4; 1; 5 |]

let run_async_tree_outcome ?fault_filter ?(crash_faults = []) ~adversary ~seed
    () =
  Async_engine.run_outcome ~n:(Array.length async_inputs) ~t:1 ~seed
    ?fault_filter ~crash_faults
    ~reactor:
      (Async_aa.tree ~tree:async_tree
         ~inputs:(fun i -> async_inputs.(i))
         ~t:1
         ~iterations:(Nr_baseline.iterations_for async_tree))
    ~adversary ()

let prop_crash_differential_async =
  QCheck2.Test.make
    ~name:"async: Crash plan report = Byzantine silent-corruption report"
    ~count:15
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let victim = Rng.int rng (Array.length async_inputs) in
      let at_event = 1 + Rng.int rng 40 in
      let planned =
        report_of
          (run_async_tree_outcome
             ~crash_faults:[ (victim, at_event) ]
             ~adversary:(Async_engine.passive "none") ~seed ())
      in
      let byzantine =
        report_of
          (run_async_tree_outcome
             ~adversary:
               (Async_engine.with_scheduler
                  (Strategies.crash ~at_round:at_event ~victims:[ victim ]))
             ~seed ())
      in
      planned.Report.fault_stats.crashed = 1
      && strip_faults planned = byzantine)

let test_crash_runner_within_budget () =
  (* A single planned crash with t = 1: the protocol must still succeed,
     the crash is accounted, and the budget watchdog (which allows for
     plan-injected crashes) stays silent. *)
  let runner =
    Runner.tree_aa
      ~fault_plan:[ Fault_plan.Crash { party = 2; at_round = 2 } ]
      ~watch:true ~tree:tree5 ~inputs:inputs5 ~t:1
      ~adversary:(fun () -> Adversary.passive "none")
      ()
  in
  let o = runner.Runner.run ~seed:4 () in
  check "crash within budget: run ok" true (Runner.ok o);
  check_int "crash accounted" 1 o.Runner.faults.Report.crashed;
  check "planned crashes are budget-exempt" true (o.Runner.violations = [])

(* ------------------------------------------------------------------ *)
(* async-only faults: patience discipline and composition *)

let test_delay_never_exceeds_patience () =
  (* A 100%-delay plan with an absurd deferral: the clamp below patience
     must preserve eventual delivery, so the run still completes. *)
  let plan = parse_ok "delay:1:1000000" in
  match
    run_async_tree_outcome
      ~fault_filter:(Fault_inject.filter ~engine:`Async ~seed:1 plan)
      ~adversary:(Async_engine.passive "none") ~seed:1 ()
  with
  | Outcome.Completed r ->
      check "delays were injected" true (r.Report.fault_stats.delayed > 0);
      check "no letters lost to delay" true (r.Report.fault_stats.dropped = 0)
  | o -> Alcotest.failf "expected completion, got %s" (Outcome.label o)

let test_laggards_omission_compose () =
  (* Laggard starving (scheduler) and omission (fault plan) act on the
     same in-flight pool; together they must neither raise nor confuse the
     accounting: dropped letters are counted, the rest eventually flow. *)
  let plan = parse_ok "omission:0.02" in
  let outcome =
    run_async_tree_outcome
      ~fault_filter:(Fault_inject.filter ~engine:`Async ~seed:3 plan)
      ~adversary:
        (Async_engine.passive ~scheduler:(Async_engine.Laggards [ 0 ]) "lag")
      ~seed:3 ()
  in
  let r = report_of outcome in
  check "omission fired under laggard scheduling" true
    (r.Report.fault_stats.dropped > 0);
  check "delivery accounting survives composition" true
    (r.Report.honest_messages > r.Report.fault_stats.dropped)

(* ------------------------------------------------------------------ *)
(* watchdog catalog *)

let test_watchdogs_benign_zero_cost () =
  (* With watchdogs installed but no invariant broken, the report is
     field-for-field the unwatched report. *)
  let watched =
    run_tree_outcome
      ~watchdogs:[ Fault_watchdogs.corruption_budget ~t:1 ]
      ~adversary:(Strategies.random_silent ~count:1) ~seed:9 ()
  in
  let bare =
    run_tree_outcome ~adversary:(Strategies.random_silent ~count:1) ~seed:9 ()
  in
  check "benign run unchanged by watchdogs" true (watched = bare);
  check "no violations recorded" true
    ((report_of watched).Report.watchdog_violations = [])

let test_corruption_budget_fires () =
  (* Over-budget corruption must be recorded, not thrown: install the
     budget watchdog at t = 0 while the adversary corrupts one party. *)
  let outcome =
    run_tree_outcome
      ~watchdogs:[ Fault_watchdogs.corruption_budget ~t:0 ]
      ~adversary:(Strategies.random_silent ~count:1) ~seed:2 ()
  in
  match (report_of outcome).Report.watchdog_violations with
  | [ v ] ->
      check_string "watchdog name" "corruption-budget" v.Watchdog.watchdog;
      check "detail names the budget" true
        (String.length v.Watchdog.detail > 0)
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let no_letters : unit Types.letter list = []

let no_corrupted = Aat_runtime.Party_set.create ~n:8

let test_spread_non_expansion_direct () =
  let w = Fault_watchdogs.spread_non_expansion ~observe:(fun x -> Some x) () in
  check "round 1 establishes the envelope" true
    (Watchdog.check w ~round:1 ~delivered:no_letters
       ~states:[ (0, 0.); (1, 10.) ]
       ~corrupted:no_corrupted
    = None);
  check "contraction passes" true
    (Watchdog.check w ~round:2 ~delivered:no_letters
       ~states:[ (0, 2.); (1, 8.) ]
       ~corrupted:no_corrupted
    = None);
  check "expansion fires" true
    (Watchdog.check w ~round:3 ~delivered:no_letters
       ~states:[ (0, -5.); (1, 12.) ]
       ~corrupted:no_corrupted
    <> None)

let test_hull_containment_direct () =
  let rooted = Rooted.make tree5 in
  let w =
    Fault_watchdogs.hull_containment ~rooted ~inputs:[| 1; 2; 3 |]
      ~vertex_of:(fun v -> Some v)
      ()
  in
  check "in-hull positions pass" true
    (Watchdog.check w ~round:1 ~delivered:no_letters
       ~states:[ (0, 2); (1, 3) ]
       ~corrupted:no_corrupted
    = None);
  check "out-of-hull position fires" true
    (Watchdog.check w ~round:2 ~delivered:no_letters
       ~states:[ (0, 0) ]
       ~corrupted:no_corrupted
    <> None)

let test_grade_consistency_direct () =
  let w =
    Fault_watchdogs.grade_consistency ~grades_of:Fun.id ~pp_value:Fun.id ()
  in
  check "agreeing grade-2 values pass" true
    (Watchdog.check w ~round:1 ~delivered:no_letters
       ~states:[ (0, [ (0, "x") ]); (1, [ (0, "x") ]) ]
       ~corrupted:no_corrupted
    = None);
  check "conflicting grade-2 values fire" true
    (Watchdog.check w ~round:2 ~delivered:no_letters
       ~states:[ (0, [ (0, "x") ]); (1, [ (0, "y") ]) ]
       ~corrupted:no_corrupted
    <> None)

(* ------------------------------------------------------------------ *)
(* structured outcomes *)

let test_liveness_timeout_structure () =
  match
    Engine.run_outcome ~n:5 ~t:1 ~seed:0 ~max_rounds:1
      ~protocol:
        (Tree_aa.protocol ~tree:tree5 ~inputs:(fun i -> inputs5.(i)) ~t:1)
      ~adversary:(Adversary.passive "none") ()
  with
  | Outcome.Liveness_timeout { report; undecided; reason } as o ->
      check_string "label" "liveness-timeout" (Outcome.label o);
      check "all five parties undecided" true (undecided = [ 0; 1; 2; 3; 4 ]);
      check "reason is human-readable" true (String.length reason > 0);
      check_int "partial report saw the budget" 1 report.Report.rounds_used;
      check "no outputs in the partial report" true (report.Report.outputs = [])
  | o -> Alcotest.failf "expected a liveness timeout, got %s" (Outcome.label o)

let unit_check (_ : _ Report.t) =
  { Verdict.termination = true; validity = true; agreement = true }

let test_runner_contains_check_error () =
  let runner =
    Runner.of_protocol ~name:"boom" ~n:5 ~t:1
      ~max_rounds:(Tree_aa.rounds ~tree:tree5)
      ~protocol:(fun () ->
        Tree_aa.protocol ~tree:tree5 ~inputs:(fun i -> inputs5.(i)) ~t:1)
      ~adversary:(fun () -> Adversary.passive "none")
      ~check:(fun _ -> failwith "verdict checker exploded")
      ()
  in
  let o = runner.Runner.run ~seed:0 () in
  (match o.Runner.status with
  | Runner.Errored { stage; exn_text } ->
      check_string "stage" "check" stage;
      check "exception text captured" true (String.length exn_text > 0)
  | _ -> Alcotest.fail "expected Errored status");
  check_string "label" "engine-error" (Runner.status_label o.Runner.status);
  check "errored runs are not ok" false (Runner.ok o)

let test_runner_contains_engine_error () =
  let exploding () =
    {
      (Adversary.passive "exploding") with
      Adversary.passive = false;
      (* the [passive] flag must be dropped along with the no-op hook:
         engines skip a passive adversary's hooks entirely *)
      corrupt_more = (fun _ -> failwith "adversary exploded");
    }
  in
  let runner =
    Runner.of_protocol ~name:"boom" ~n:5 ~t:1
      ~max_rounds:(Tree_aa.rounds ~tree:tree5)
      ~protocol:(fun () ->
        Tree_aa.protocol ~tree:tree5 ~inputs:(fun i -> inputs5.(i)) ~t:1)
      ~adversary:exploding ~check:unit_check ()
  in
  let o = runner.Runner.run ~seed:0 () in
  match o.Runner.status with
  | Runner.Errored { stage; _ } -> check_string "stage" "engine" stage
  | _ -> Alcotest.fail "expected Errored status"

(* ------------------------------------------------------------------ *)
(* grading rules *)

let failed = { Verdict.termination = false; validity = true; agreement = true }

let test_grading_rules () =
  let ok_verdict =
    { Verdict.termination = true; validity = true; agreement = true }
  in
  check "all-ok is Passed whatever the faults" true
    (Verdict.grade ~n:4 ~t:1 ~faulty:3 ~excuse:"irrelevant" ok_verdict
    = Verdict.Passed);
  check "in-model failure is Violated" true
    (Verdict.grade ~n:4 ~t:1 ~faulty:1 failed = Verdict.Violated failed);
  (match Verdict.grade ~n:4 ~t:1 ~faulty:2 failed with
  | Verdict.Excused { verdict; reason } ->
      check "over-budget excusal keeps the verdict" true (verdict = failed);
      check "auto excusal has a reason" true (String.length reason > 0)
  | _ -> Alcotest.fail "faulty > t must excuse");
  (match Verdict.grade ~n:4 ~t:1 ~faulty:0 ~excuse:"lossy plan" failed with
  | Verdict.Excused { reason; _ } ->
      check_string "caller excuse" "lossy plan" reason
  | _ -> Alcotest.fail "caller-supplied excuse must excuse");
  check_string "labels" "passed" (Verdict.graded_label Verdict.Passed);
  check_string "labels" "violated"
    (Verdict.graded_label (Verdict.Violated failed));
  check_string "labels" "excused"
    (Verdict.graded_label (Verdict.Excused { reason = "r"; verdict = failed }))

let test_timeout_excusal_through_runner () =
  (* The liveness-excusal rule: a timeout under an active fault plan is
     excused; the same timeout with no faults in play stays Violated. *)
  let runner fault_plan =
    Runner.of_protocol ~name:"stall" ~n:5 ~t:1 ~max_rounds:1 ~fault_plan
      ~protocol:(fun () ->
        Tree_aa.protocol ~tree:tree5 ~inputs:(fun i -> inputs5.(i)) ~t:1)
      ~adversary:(fun () -> Adversary.passive "none")
      ~check:(fun _ -> failed)
      ()
  in
  let benign = (runner Fault_plan.empty).Runner.run ~seed:0 () in
  check "benign timeout is Violated" true
    (match benign.Runner.grade with Verdict.Violated _ -> true | _ -> false);
  let faulty =
    (runner [ Fault_plan.Crash { party = 0; at_round = 1 } ]).Runner.run
      ~seed:0 ()
  in
  check "timeout under a fault plan is excused" true (Runner.excused faulty)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "grammar" `Quick test_plan_io_grammar;
          QCheck_alcotest.to_alcotest prop_plan_io_roundtrip;
          QCheck_alcotest.to_alcotest prop_plan_json_roundtrip;
          Alcotest.test_case "validation" `Quick test_plan_validate;
          Alcotest.test_case "fault classes" `Quick test_plan_classes;
        ] );
      ( "inject",
        [
          Alcotest.test_case "deterministic in seed" `Quick
            test_inject_deterministic;
          Alcotest.test_case "async-only faults inert under sync" `Quick
            test_async_only_faults_inert_under_sync;
        ] );
      ( "crash-differential",
        [
          QCheck_alcotest.to_alcotest prop_crash_differential_sync;
          QCheck_alcotest.to_alcotest prop_crash_differential_async;
          Alcotest.test_case "runner: crash within budget" `Quick
            test_crash_runner_within_budget;
        ] );
      ( "async-faults",
        [
          Alcotest.test_case "delay clamped below patience" `Quick
            test_delay_never_exceeds_patience;
          Alcotest.test_case "laggards + omission compose" `Quick
            test_laggards_omission_compose;
        ] );
      ( "watchdogs",
        [
          Alcotest.test_case "benign run unchanged" `Quick
            test_watchdogs_benign_zero_cost;
          Alcotest.test_case "corruption budget fires" `Quick
            test_corruption_budget_fires;
          Alcotest.test_case "spread non-expansion" `Quick
            test_spread_non_expansion_direct;
          Alcotest.test_case "hull containment" `Quick
            test_hull_containment_direct;
          Alcotest.test_case "grade consistency" `Quick
            test_grade_consistency_direct;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "liveness timeout structure" `Quick
            test_liveness_timeout_structure;
          Alcotest.test_case "check errors contained" `Quick
            test_runner_contains_check_error;
          Alcotest.test_case "engine errors contained" `Quick
            test_runner_contains_engine_error;
        ] );
      ( "grading",
        [
          Alcotest.test_case "grade rules" `Quick test_grading_rules;
          Alcotest.test_case "timeout excusal via runner" `Quick
            test_timeout_excusal_through_runner;
        ] );
    ]
