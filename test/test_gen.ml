(* Tests for generators, Prüfer codec, RNG determinism, and tree I/O. *)

open Aat_tree
module LT = Labeled_tree
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.int64 a = Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check "different first draw" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 13 in
    check "in range" true (x >= 0 && x < 13)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    check "in range" true (x >= 0. && x < 2.5)
  done

let test_rng_split_independent_of_parent_draws () =
  let a = Rng.create 9 in
  let child = Rng.split a in
  let first_child_draw = Rng.int64 (Rng.copy child) in
  (* consuming more of the parent does not change the child's stream *)
  ignore (Rng.int64 a);
  check "child unchanged" true (Rng.int64 child = first_child_draw)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let s = Rng.sample_without_replacement rng 5 10 in
    check_int "size" 5 (List.length s);
    check "sorted distinct" true (List.sort_uniq compare s = s);
    check "in range" true (List.for_all (fun x -> x >= 0 && x < 10) s)
  done;
  check_int "k = n" 10 (List.length (Rng.sample_without_replacement rng 10 10));
  check_int "k = 0" 0 (List.length (Rng.sample_without_replacement rng 0 10))

let test_rng_shuffle_is_permutation () =
  let rng = Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check "permutation" true (sorted = Array.init 50 Fun.id)

(* --- generators --- *)

let test_path_shape () =
  let t = Generate.path 5 in
  check_int "n" 5 (LT.n_vertices t);
  check_int "diameter" 4 (Metrics.diameter t);
  check_int "leaves" 2
    (List.length (List.filter (LT.is_leaf t) (LT.vertices t)))

let test_star_shape () =
  let t = Generate.star 7 in
  check_int "n" 7 (LT.n_vertices t);
  check_int "center degree" 6 (LT.degree t 0);
  check_int "diameter" 2 (Metrics.diameter t)

let test_balanced_shape () =
  let t = Generate.balanced ~arity:2 ~depth:3 in
  check_int "n" 15 (LT.n_vertices t);
  check_int "diameter" 6 (Metrics.diameter t)

let test_caterpillar_shape () =
  let t = Generate.caterpillar ~spine:5 ~legs:2 in
  check_int "n" 15 (LT.n_vertices t);
  (* spine of 5 has diameter 4; pendant legs on the ends add 2 *)
  check_int "diameter" 6 (Metrics.diameter t)

let test_spider_shape () =
  let t = Generate.spider ~legs:4 ~leg_length:3 in
  check_int "n" 13 (LT.n_vertices t);
  check_int "diameter" 6 (Metrics.diameter t);
  check_int "center degree" 4 (LT.degree t 0)

let test_broom_shape () =
  let t = Generate.broom ~handle:4 ~bristles:3 in
  check_int "n" 7 (LT.n_vertices t);
  check_int "diameter" 4 (Metrics.diameter t);
  check_int "branch degree" 4 (LT.degree t 3)

let test_random_is_tree_and_deterministic () =
  let t1 = Generate.random (Rng.create 5) 40 in
  let t2 = Generate.random (Rng.create 5) 40 in
  check "deterministic" true (LT.equal t1 t2);
  check_int "n" 40 (LT.n_vertices t1)

let test_random_of_diameter () =
  List.iter
    (fun (n, d) ->
      let t = Generate.random_of_diameter (Rng.create 1) ~n ~diameter:d in
      check_int "n" n (LT.n_vertices t);
      check_int "diameter" d (Metrics.diameter t))
    [ (10, 9); (10, 2); (30, 5); (100, 40); (5, 4); (2, 1) ]

(* --- prüfer --- *)

let test_prufer_decode_known () =
  (* sequence [3,3,3,4] on 6 vertices: classic example *)
  let edges = Prufer.decode [| 3; 3; 3; 4 |] in
  check_int "edge count" 5 (List.length edges);
  let t =
    LT.of_labeled_edges
      (List.map (fun (u, v) -> (string_of_int u, string_of_int v)) edges)
  in
  check_int "n" 6 (LT.n_vertices t)

let test_prufer_roundtrip () =
  let rng = Rng.create 17 in
  for _ = 1 to 200 do
    let n = 3 + Rng.int rng 20 in
    let seq = Array.init (n - 2) (fun _ -> Rng.int rng n) in
    let edges = Prufer.decode seq in
    let seq' = Prufer.encode ~n edges in
    check "roundtrip" true (seq = seq')
  done

let test_prufer_count () =
  check_int "n=1" 1 (Prufer.count ~n:1);
  check_int "n=2" 1 (Prufer.count ~n:2);
  check_int "n=3" 3 (Prufer.count ~n:3);
  check_int "n=4" 16 (Prufer.count ~n:4);
  check_int "n=5" 125 (Prufer.count ~n:5)

let test_prufer_enumerate_all_distinct_trees () =
  for n = 1 to 5 do
    let seen = Hashtbl.create 200 in
    Prufer.enumerate ~n
    |> Seq.iter (fun edges ->
           let key = List.sort compare (List.map (fun (u, v) -> (min u v, max u v)) edges) in
           if Hashtbl.mem seen key then Alcotest.failf "duplicate tree at n=%d" n;
           Hashtbl.replace seen key ());
    check_int "cayley count" (Prufer.count ~n) (Hashtbl.length seen)
  done

let test_prufer_enumerate_yields_trees () =
  Prufer.enumerate ~n:5
  |> Seq.iter (fun edges ->
         let labels = Generate.labels_of_size 5 in
         ignore
           (LT.of_labeled_edges
              (List.map (fun (u, v) -> (labels.(u), labels.(v))) edges)))

(* --- io --- *)

let test_edge_list_roundtrip () =
  let t = Generate.random (Rng.create 23) 25 in
  let s = Tree_io.to_edge_list t in
  let t' = Tree_io.of_edge_list s in
  check "roundtrip" true (LT.equal t t')

let test_edge_list_singleton_roundtrip () =
  let t = LT.singleton "lonely" in
  check "roundtrip" true (LT.equal t (Tree_io.of_edge_list (Tree_io.to_edge_list t)))

let test_edge_list_comments_and_blanks () =
  let t = Tree_io.of_edge_list "# a comment\n\n a b \nb c # trailing\n" in
  check_int "n" 3 (LT.n_vertices t)

let test_edge_list_malformed () =
  check "malformed" true
    (try
       ignore (Tree_io.of_edge_list "a b c\n");
       false
     with LT.Invalid_tree _ -> true)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_dot_output () =
  let t = Generate.path 3 in
  let dot = Tree_io.to_dot ~highlight:[ 0 ] t in
  check "mentions edge" true (contains ~needle:"\"v000\" -- \"v001\"" dot);
  check "highlight" true (contains ~needle:"fillcolor" dot);
  check "graph block" true (contains ~needle:"graph tree {" dot)

let test_ascii_art () =
  let t = Generate.path 3 in
  let art = Tree_io.ascii_art t in
  Alcotest.(check string) "indented" "v000\n  v001\n    v002\n" art

let () =
  Alcotest.run "generate"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent_of_parent_draws;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "shuffle is permutation" `Quick
            test_rng_shuffle_is_permutation;
        ] );
      ( "families",
        [
          Alcotest.test_case "path" `Quick test_path_shape;
          Alcotest.test_case "star" `Quick test_star_shape;
          Alcotest.test_case "balanced" `Quick test_balanced_shape;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar_shape;
          Alcotest.test_case "spider" `Quick test_spider_shape;
          Alcotest.test_case "broom" `Quick test_broom_shape;
          Alcotest.test_case "random deterministic" `Quick
            test_random_is_tree_and_deterministic;
          Alcotest.test_case "random_of_diameter" `Quick
            test_random_of_diameter;
        ] );
      ( "prufer",
        [
          Alcotest.test_case "decode known" `Quick test_prufer_decode_known;
          Alcotest.test_case "roundtrip" `Quick test_prufer_roundtrip;
          Alcotest.test_case "cayley counts" `Quick test_prufer_count;
          Alcotest.test_case "enumerate distinct" `Quick
            test_prufer_enumerate_all_distinct_trees;
          Alcotest.test_case "enumerate yields trees" `Quick
            test_prufer_enumerate_yields_trees;
        ] );
      ( "io",
        [
          Alcotest.test_case "edge list roundtrip" `Quick
            test_edge_list_roundtrip;
          Alcotest.test_case "singleton roundtrip" `Quick
            test_edge_list_singleton_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick
            test_edge_list_comments_and_blanks;
          Alcotest.test_case "malformed" `Quick test_edge_list_malformed;
          Alcotest.test_case "dot output" `Quick test_dot_output;
          Alcotest.test_case "ascii art" `Quick test_ascii_art;
        ] );
    ]
