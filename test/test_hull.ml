(* Tests for convex hulls (Section 2, Figure 1) and projections onto paths
   (Section 5, Figure 2, Lemma 1). *)

open Aat_tree
module LT = Labeled_tree
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Figure 1's tree: u1, u2, u3 with hull {u1..u5}. We reconstruct a tree
   with that shape: u4 joins u1 and u2's branch, u5 between u4 and u3, and
   two extra vertices outside the hull. *)
let fig1 () =
  LT.of_labeled_edges
    [
      ("u1", "u4");
      ("u2", "u4");
      ("u4", "u5");
      ("u5", "u3");
      ("u5", "w1");
      ("u1", "w2");
    ]

let fig3 () =
  LT.of_labeled_edges
    [
      ("v1", "v2");
      ("v2", "v3");
      ("v3", "v6");
      ("v3", "v7");
      ("v2", "v4");
      ("v4", "v8");
      ("v2", "v5");
    ]

let v t l = LT.vertex_of_label t l

let hull_labels t vs =
  let r = Rooted.make t in
  Convex_hull.compute r (List.map (v t) vs)
  |> Convex_hull.vertices
  |> List.map (LT.label t)

let test_fig1_hull () =
  let t = fig1 () in
  Alcotest.(check (list string)) "paper Figure 1"
    [ "u1"; "u2"; "u3"; "u4"; "u5" ]
    (hull_labels t [ "u1"; "u2"; "u3" ])

let test_fig4_hull () =
  (* Section 6's example: honest inputs v3, v6, v5 have hull
     {v5, v2, v3, v6}; v4 and v8 are outside. *)
  let t = fig3 () in
  Alcotest.(check (list string)) "paper Figure 4 hull"
    [ "v2"; "v3"; "v5"; "v6" ]
    (hull_labels t [ "v3"; "v6"; "v5" ]);
  let r = Rooted.make t in
  let h = Convex_hull.compute r [ v t "v3"; v t "v6"; v t "v5" ] in
  check "v4 outside" false (Convex_hull.mem h (v t "v4"));
  check "v8 outside" false (Convex_hull.mem h (v t "v8"))

let test_hull_singleton_set () =
  let t = fig3 () in
  let r = Rooted.make t in
  let h = Convex_hull.compute r [ v t "v7" ] in
  check_int "size" 1 (Convex_hull.size h);
  check "mem" true (Convex_hull.mem h (v t "v7"))

let test_hull_two_points_is_path () =
  let t = fig3 () in
  let r = Rooted.make t in
  let h = Convex_hull.compute r [ v t "v6"; v t "v8" ] in
  Alcotest.(check (list string)) "path hull"
    [ "v2"; "v3"; "v4"; "v6"; "v8" ]
    (List.map (LT.label t) (Convex_hull.vertices h))

let test_hull_empty_rejected () =
  let t = fig3 () in
  let r = Rooted.make t in
  check "empty raises" true
    (try
       ignore (Convex_hull.compute r []);
       false
     with Invalid_argument _ -> true)

let test_hull_duplicates_ignored () =
  let t = fig3 () in
  let r = Rooted.make t in
  let h1 = Convex_hull.compute r [ v t "v6"; v t "v6"; v t "v8" ] in
  let h2 = Convex_hull.compute r [ v t "v6"; v t "v8" ] in
  check "same" true (Convex_hull.vertices h1 = Convex_hull.vertices h2)

let test_hull_subset () =
  let t = fig3 () in
  let r = Rooted.make t in
  let small = Convex_hull.compute r [ v t "v6"; v t "v3" ] in
  let big = Convex_hull.compute r [ v t "v6"; v t "v8" ] in
  check "subset" true (Convex_hull.subset small big);
  check "not superset" false (Convex_hull.subset big small)

(* --- projections --- *)

(* Figure 2: path P = (v1..v8); u1, u2, u3 hang off it and project to
   v3, v4, v6 respectively. *)
let fig2 () =
  let spine =
    [ ("v1", "v2"); ("v2", "v3"); ("v3", "v4"); ("v4", "v5");
      ("v5", "v6"); ("v6", "v7"); ("v7", "v8") ]
  in
  let hairs = [ ("v3", "x1"); ("x1", "u1"); ("v4", "u2"); ("v6", "x2"); ("x2", "u3") ] in
  LT.of_labeled_edges (spine @ hairs)

let test_fig2_projections () =
  let t = fig2 () in
  let r = Rooted.make t in
  let p = Array.map (v t) [| "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7"; "v8" |] in
  Alcotest.(check string) "proj u1" "v3" (LT.label t (Projection.onto_path r p (v t "u1")));
  Alcotest.(check string) "proj u2" "v4" (LT.label t (Projection.onto_path r p (v t "u2")));
  Alcotest.(check string) "proj u3" "v6" (LT.label t (Projection.onto_path r p (v t "u3")));
  check_int "index of proj u3" 5 (Projection.onto_path_index r p (v t "u3"))

let test_projection_of_path_vertex_is_itself () =
  let t = fig2 () in
  let r = Rooted.make t in
  let p = Array.map (v t) [| "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7"; "v8" |] in
  Array.iter
    (fun u -> check "fixed point" true (Projection.onto_path r p u = u))
    p

let test_all_onto_path_matches_pointwise () =
  let t = fig2 () in
  let r = Rooted.make t in
  let p = Array.map (v t) [| "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7"; "v8" |] in
  let all = Projection.all_onto_path t p in
  List.iter
    (fun u -> check_int "agrees" (Projection.onto_path r p u) all.(u))
    (LT.vertices t)

let test_distance_to_path () =
  let t = fig2 () in
  let p = Array.map (v t) [| "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7"; "v8" |] in
  check_int "u1 two away" 2 (Projection.distance_to_path t p (v t "u1"));
  check_int "u2 one away" 1 (Projection.distance_to_path t p (v t "u2"));
  check_int "on path" 0 (Projection.distance_to_path t p (v t "v5"))

(* Lemma 1: if P intersects <S>, the projection of any s in S lies in
   V(P) ∩ <S>. *)
let lemma1_holds t s path =
  let r = Rooted.make t in
  let h = Convex_hull.compute r s in
  let intersects = Array.exists (fun w -> Convex_hull.mem h w) path in
  (not intersects)
  || List.for_all
       (fun x ->
         let p = Projection.onto_path r path x in
         Paths.mem path p && Convex_hull.mem h p)
       s

let test_lemma1_fig2 () =
  let t = fig2 () in
  let p = Array.map (v t) [| "v1"; "v2"; "v3"; "v4"; "v5"; "v6"; "v7"; "v8" |] in
  check "Lemma 1" true (lemma1_holds t [ v t "u1"; v t "u2"; v t "u3" ] p)

(* --- qcheck properties --- *)

let tree_and_sets =
  QCheck2.Gen.(
    map2
      (fun seed n ->
        let n = max 2 n in
        let rng = Rng.create seed in
        let t = Generate.random rng n in
        let k = 1 + Rng.int rng (min 6 n) in
        let s = List.init k (fun _ -> Rng.int rng n) in
        (t, s, rng))
      (int_bound 1_000_000) (int_bound 30))

let prop_hull_matches_oracle =
  QCheck2.Test.make ~name:"hull = pairwise-path oracle" ~count:150
    tree_and_sets (fun (t, s, _) ->
      let r = Rooted.make t in
      let h = Convex_hull.compute r s in
      List.for_all
        (fun w -> Convex_hull.mem h w = Convex_hull.on_some_pair_path r s w)
        (LT.vertices t))

let prop_hull_connected =
  QCheck2.Test.make ~name:"hull induces a connected subtree" ~count:150
    tree_and_sets (fun (t, s, _) ->
      let r = Rooted.make t in
      let h = Convex_hull.compute r s in
      match Convex_hull.vertices h with
      | [] -> false
      | v0 :: _ ->
          (* BFS within the hull must reach every hull vertex. *)
          let seen = Hashtbl.create 16 in
          let queue = Queue.create () in
          Hashtbl.replace seen v0 ();
          Queue.add v0 queue;
          while not (Queue.is_empty queue) do
            let u = Queue.pop queue in
            List.iter
              (fun w ->
                if Convex_hull.mem h w && not (Hashtbl.mem seen w) then begin
                  Hashtbl.replace seen w ();
                  Queue.add w queue
                end)
              (LT.neighbors t u)
          done;
          List.for_all (Hashtbl.mem seen) (Convex_hull.vertices h))

let prop_projection_minimizes_distance =
  QCheck2.Test.make ~name:"projection minimizes distance to path" ~count:100
    tree_and_sets (fun (t, _, rng) ->
      let r = Rooted.make t in
      let n = LT.n_vertices t in
      let a = Rng.int rng n and b = Rng.int rng n in
      let path = Paths.between r a b in
      List.for_all
        (fun u ->
          let p = Projection.onto_path r path u in
          let d = Paths.distance r u p in
          Array.for_all (fun w -> Paths.distance r u w >= d) path
          && Projection.distance_to_path t path u = d)
        (LT.vertices t))

let prop_lemma1_random =
  QCheck2.Test.make ~name:"Lemma 1 on random trees/paths/sets" ~count:150
    tree_and_sets (fun (t, s, rng) ->
      let r = Rooted.make t in
      let n = LT.n_vertices t in
      let a = Rng.int rng n and b = Rng.int rng n in
      lemma1_holds t s (Paths.between r a b))

let () =
  Alcotest.run "hull"
    [
      ( "convex-hull",
        [
          Alcotest.test_case "paper Figure 1" `Quick test_fig1_hull;
          Alcotest.test_case "paper Figure 4 hull" `Quick test_fig4_hull;
          Alcotest.test_case "singleton set" `Quick test_hull_singleton_set;
          Alcotest.test_case "two points = path" `Quick
            test_hull_two_points_is_path;
          Alcotest.test_case "empty set rejected" `Quick
            test_hull_empty_rejected;
          Alcotest.test_case "duplicates ignored" `Quick
            test_hull_duplicates_ignored;
          Alcotest.test_case "subset" `Quick test_hull_subset;
        ] );
      ( "projection",
        [
          Alcotest.test_case "paper Figure 2" `Quick test_fig2_projections;
          Alcotest.test_case "path vertices are fixed points" `Quick
            test_projection_of_path_vertex_is_itself;
          Alcotest.test_case "all_onto_path" `Quick
            test_all_onto_path_matches_pointwise;
          Alcotest.test_case "distance_to_path" `Quick test_distance_to_path;
          Alcotest.test_case "Lemma 1 on Figure 2" `Quick test_lemma1_fig2;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_hull_matches_oracle;
            prop_hull_connected;
            prop_projection_minimizes_distance;
            prop_lemma1_random;
          ] );
    ]
