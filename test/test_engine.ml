(* Tests for the synchronous engine: delivery, termination, authenticated
   channels, adaptive corruption budget, composition, determinism. *)

open Aat_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A one-round protocol: broadcast own id, output the sorted list of sender
   ids heard. *)
type gather_state = { self : int; n : int; heard : int list option }

let gather : (gather_state, int, int list) Protocol.t =
  {
    name = "gather";
    init = (fun ~self ~n -> { self; n; heard = None });
    send =
      (fun ~round ~self st ->
        if round = 1 then List.init st.n (fun p -> (p, self)) else []);
    receive =
      (fun ~round:_ ~self:_ ~inbox st ->
        { st with heard = Some (List.map (fun (e : int Types.envelope) -> e.payload) inbox) });
    output = (fun st -> st.heard);
  }

(* A protocol that never decides — for the max_rounds test. *)
let never : (unit, int, unit) Protocol.t =
  {
    name = "never";
    init = (fun ~self:_ ~n:_ -> ());
    send = (fun ~round:_ ~self:_ () -> []);
    receive = (fun ~round:_ ~self:_ ~inbox:_ () -> ());
    output = (fun () -> None);
  }

(* A protocol that decides at init (zero rounds). *)
let instant : (unit, int, int) Protocol.t =
  {
    name = "instant";
    init = (fun ~self:_ ~n:_ -> ());
    send = (fun ~round:_ ~self:_ () -> []);
    receive = (fun ~round:_ ~self:_ ~inbox:_ () -> ());
    output = (fun () -> Some 42);
  }

(* Runs [k] rounds of echoing before deciding; used for composition. *)
let countdown k : (int, int, int) Protocol.t =
  {
    name = Printf.sprintf "countdown%d" k;
    init = (fun ~self:_ ~n:_ -> k);
    send = (fun ~round:_ ~self st -> if st > 0 then [ (self, 0) ] else []);
    receive = (fun ~round:_ ~self:_ ~inbox:_ st -> st - 1);
    output = (fun st -> if st <= 0 then Some k else None);
  }

let test_gather_no_faults () =
  let report =
    Sync_engine.run ~n:5 ~t:0 ~protocol:gather
      ~adversary:(Adversary.passive "none") ()
  in
  check_int "rounds" 1 report.rounds_used;
  check_int "honest outputs" 5 (List.length report.outputs);
  List.iter
    (fun senders -> Alcotest.(check (list int)) "all heard" [ 0; 1; 2; 3; 4 ] senders)
    (Sync_engine.honest_outputs report);
  check_int "messages" 25 report.honest_messages

let test_gather_with_silent () =
  let report =
    Sync_engine.run ~n:7 ~t:2 ~protocol:gather
      ~adversary:(Aat_adversary.Strategies.silent ~victims:[ 5; 6 ]) ()
  in
  check_int "honest outputs" 5 (List.length report.outputs);
  List.iter
    (fun senders ->
      Alcotest.(check (list int)) "silent missing" [ 0; 1; 2; 3; 4 ] senders)
    (Sync_engine.honest_outputs report);
  Alcotest.(check (list int)) "corrupted" [ 5; 6 ] report.corrupted

let test_forgery_rejected () =
  let forger =
    Adversary.static ~name:"forger"
      ~pick:(fun ~n:_ ~t:_ _ -> [ 3 ])
      ~deliver:(fun view ->
        if view.Adversary.round = 1 then
          (* claims to be honest party 0 *)
          [ { Types.src = 0; dst = 1; body = 99 }; { Types.src = 3; dst = 1; body = 77 } ]
        else [])
  in
  let report = Sync_engine.run ~n:4 ~t:1 ~protocol:gather ~adversary:forger () in
  check_int "one forgery rejected" 1 report.rejected_forgeries;
  check_int "one byz message accepted" 1 report.adversary_messages;
  (* party 1 heard honest 0,1,2 plus byz 3's 77 — but not the forged 99 *)
  let p1 = Sync_engine.output_of report 1 in
  Alcotest.(check (list int)) "inbox senders" [ 0; 1; 2; 77 ] p1

let test_corruption_budget_capped () =
  let greedy =
    Adversary.static ~name:"greedy"
      ~pick:(fun ~n:_ ~t:_ _ -> [ 0; 1; 2; 3 ])
      ~deliver:(fun _ -> [])
  in
  let report = Sync_engine.run ~n:5 ~t:2 ~protocol:gather ~adversary:greedy () in
  check_int "only t corrupted" 2 (List.length report.corrupted)

let test_adaptive_corruption_budget () =
  let adaptive =
    {
      Adversary.name = "adaptive-greedy";
      passive = false;
      initial_corruptions = (fun ~n:_ ~t:_ _ -> [ 0 ]);
      corrupt_more = (fun view -> if view.Adversary.round = 1 then [ 1; 2; 3 ] else []);
      deliver = (fun _ -> []);
    }
  in
  let report = Sync_engine.run ~n:5 ~t:2 ~protocol:gather ~adversary:adaptive () in
  Alcotest.(check (list int)) "capped at t" [ 0; 1 ] report.corrupted

let test_crash_retracts_current_round () =
  (* Victim crashes in round 1: its messages for round 1 are retracted, so
     nobody hears it. *)
  let report =
    Sync_engine.run ~n:4 ~t:1 ~protocol:gather
      ~adversary:(Aat_adversary.Strategies.crash ~at_round:1 ~victims:[ 3 ]) ()
  in
  List.iter
    (fun senders -> Alcotest.(check (list int)) "crashed silent" [ 0; 1; 2 ] senders)
    (Sync_engine.honest_outputs report)

let test_max_rounds () =
  check "raises" true
    (try
       ignore
         (Sync_engine.run ~n:3 ~t:0 ~max_rounds:5 ~protocol:never
            ~adversary:(Adversary.passive "none") ());
       false
     with Sync_engine.Exceeded_max_rounds _ -> true)

let test_zero_round_output () =
  let report =
    Sync_engine.run ~n:3 ~t:0 ~protocol:instant
      ~adversary:(Adversary.passive "none") ()
  in
  check_int "no rounds" 0 report.rounds_used;
  Alcotest.(check (list int)) "outputs" [ 42; 42; 42 ] (Sync_engine.honest_outputs report)

let test_invalid_params () =
  check "n=0" true
    (try ignore (Sync_engine.run ~n:0 ~t:0 ~protocol:instant ~adversary:(Adversary.passive "x") ()); false
     with Invalid_argument _ -> true);
  check "t=n" true
    (try ignore (Sync_engine.run ~n:3 ~t:3 ~protocol:instant ~adversary:(Adversary.passive "x") ()); false
     with Invalid_argument _ -> true)

let test_sequential_composition () =
  let composed =
    Protocol.sequential ~name:"two-phase" ~first:(countdown 2) ~rounds_of_first:2
      ~second:(fun o1 -> Protocol.map_output (fun o2 -> (o1, o2)) (countdown 3))
  in
  let report =
    Sync_engine.run ~n:4 ~t:0 ~protocol:composed
      ~adversary:(Adversary.passive "none") ()
  in
  check_int "total rounds" 5 report.rounds_used;
  List.iter
    (fun (a, b) ->
      check_int "first output" 2 a;
      check_int "second output" 3 b)
    (Sync_engine.honest_outputs report)

let test_sequential_barrier_failure () =
  (* first phase needs 3 rounds but the barrier is set at 2: must fail *)
  let composed =
    Protocol.sequential ~name:"bad-barrier" ~first:(countdown 3)
      ~rounds_of_first:2 ~second:(fun _ -> countdown 1)
  in
  check "fails at barrier" true
    (try
       ignore
         (Sync_engine.run ~n:3 ~t:0 ~protocol:composed
            ~adversary:(Adversary.passive "none") ());
       false
     with Failure _ -> true)

let test_sequential_messages_segregated () =
  (* A Byzantine party injects phase-2 messages during phase 1; they must be
     filtered out by the composition. *)
  let composed =
    Protocol.sequential ~name:"seg" ~first:gather ~rounds_of_first:1
      ~second:(fun _senders -> gather)
  in
  let inject =
    Adversary.static ~name:"inject"
      ~pick:(fun ~n:_ ~t:_ _ -> [ 4 ])
      ~deliver:(fun view ->
        let m =
          if view.Adversary.round = 1 then Composed.M2 7 else Composed.M1 7
        in
        List.init view.Adversary.n (fun dst -> { Types.src = 4; dst; body = m }))
  in
  let report = Sync_engine.run ~n:5 ~t:1 ~protocol:composed ~adversary:inject () in
  (* Phase 1 sees only M1 messages: the M2-injected ones disappear; phase 2
     rejects the M1 ones. Honest parties heard each other (0..3) in both
     phases; in phase 2 byz sent M1 which is dropped. *)
  List.iter
    (fun senders -> Alcotest.(check (list int)) "m2 filtered" [ 0; 1; 2; 3 ] senders)
    (Sync_engine.honest_outputs report)

let test_determinism () =
  let run () =
    Sync_engine.run ~n:6 ~t:1 ~seed:99 ~protocol:gather
      ~adversary:(Aat_adversary.Strategies.random_silent ~count:1) ()
  in
  let a = run () and b = run () in
  check "same corrupted" true (a.corrupted = b.corrupted);
  check "same outputs" true (a.outputs = b.outputs)

let test_rushing_view () =
  (* The adversary echoes each honest round-1 message back in the same
     round, proving it saw the outbox before delivery. *)
  let echoer =
    Adversary.static ~name:"rush"
      ~pick:(fun ~n:_ ~t:_ _ -> [ 2 ])
      ~deliver:(fun view ->
        List.filter_map
          (fun (l : int Types.letter) ->
            if l.dst = 2 then Some { Types.src = 2; dst = l.src; body = l.body + 100 }
            else None)
          view.Adversary.honest_outbox)
  in
  let report = Sync_engine.run ~n:3 ~t:1 ~protocol:gather ~adversary:echoer () in
  (* party 0 hears: 0 (self), 1 (honest), and 100 + 0 (its own id echoed) *)
  Alcotest.(check (list int)) "echoed back" [ 0; 1; 100 ] (Sync_engine.output_of report 0)

let test_verdict_real () =
  let v =
    Verdict.real ~eps:0.5 ~n_honest:3 ~honest_inputs:[ 0.; 1.; 2. ]
      ~honest_outputs:[ 1.0; 1.2; 1.4 ]
  in
  check "ok" true (Verdict.all_ok v);
  let v2 =
    Verdict.real ~eps:0.1 ~n_honest:3 ~honest_inputs:[ 0.; 1.; 2. ]
      ~honest_outputs:[ 1.0; 1.2; 1.4 ]
  in
  check "agreement violated" false v2.agreement;
  check "validity still ok" true v2.validity;
  let v3 =
    Verdict.real ~eps:1. ~n_honest:3 ~honest_inputs:[ 0.; 1. ]
      ~honest_outputs:[ 1.5 ]
  in
  check "termination violated" false v3.termination;
  check "validity violated" false v3.validity

let test_verdict_spread () =
  Alcotest.(check (float 1e-9)) "spread" 2.5 (Verdict.spread [ 1.; 3.5; 2. ]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Verdict.spread [])

let test_trace_agrees_with_telemetry () =
  (* record_trace and the telemetry sink are two views of the same delivery:
     each recorded round's letter count must equal the sink's [delivered_msgs]
     for that round. The adversary double-sends to one destination so the
     per-(src,dst) dedup actually bites: submissions > deliveries. *)
  let doubler =
    Adversary.static ~name:"doubler"
      ~pick:(fun ~n:_ ~t:_ _ -> [ 3 ])
      ~deliver:(fun view ->
        if view.Adversary.round <= 2 then
          [
            { Types.src = 3; dst = 0; body = 9 };
            { Types.src = 3; dst = 0; body = 8 };
          ]
        else [])
  in
  let stats = Aat_telemetry.Telemetry.Stats.create () in
  let report =
    Sync_engine.run ~n:4 ~t:1 ~record_trace:true
      ~telemetry:(Aat_telemetry.Telemetry.Stats.sink stats)
      ~protocol:(countdown 3) ~adversary:doubler ()
  in
  let events = Aat_telemetry.Telemetry.Stats.events stats in
  check_int "one event per recorded round" (List.length report.trace)
    (List.length events);
  List.iter2
    (fun row (e : Aat_telemetry.Telemetry.event) ->
      check_int "trace row length = delivered_msgs" (List.length row)
        e.delivered_msgs)
    report.trace events;
  (* both submitted letters count against the adversary (2 per round for 2
     rounds), but only one per (src,dst) is delivered — the first two events
     must show submissions exceeding deliveries by exactly the duplicate *)
  check_int "submissions all counted" 4 report.adversary_messages;
  List.iteri
    (fun i (e : Aat_telemetry.Telemetry.event) ->
      if i < 2 then
        check_int "one duplicate dropped"
          (e.honest_msgs + e.adversary_msgs - 1)
          e.delivered_msgs)
    events;
  check_int "sink saw the same honest total" report.honest_messages
    (Aat_telemetry.Telemetry.Stats.total_honest stats);
  check_int "sink saw the same adversary total" report.adversary_messages
    (Aat_telemetry.Telemetry.Stats.total_adversary stats)

let test_corruption_rounds_recorded () =
  (* initial corruption is stamped round 0; adaptive corruption with the
     round it happened — the distinction Validity-under-adaptivity needs *)
  let r1 =
    Sync_engine.run ~n:4 ~t:1 ~protocol:gather
      ~adversary:(Aat_adversary.Strategies.silent ~victims:[ 3 ]) ()
  in
  check "initial is round 0" true (r1.corruption_rounds = [ (3, 0) ]);
  Alcotest.(check (list int)) "initially corrupted" [ 3 ]
    (Sync_engine.initially_corrupted r1);
  let r2 =
    Sync_engine.run ~n:4 ~t:1 ~protocol:(countdown 3)
      ~adversary:(Aat_adversary.Strategies.crash ~at_round:2 ~victims:[ 1 ]) ()
  in
  check "adaptive stamped with its round" true (r2.corruption_rounds = [ (1, 2) ]);
  Alcotest.(check (list int)) "not initially corrupted" []
    (Sync_engine.initially_corrupted r2)

let () =
  Alcotest.run "engine"
    [
      ( "delivery",
        [
          Alcotest.test_case "gather fault-free" `Quick test_gather_no_faults;
          Alcotest.test_case "gather with silent byz" `Quick
            test_gather_with_silent;
          Alcotest.test_case "forgery rejected" `Quick test_forgery_rejected;
          Alcotest.test_case "rushing view" `Quick test_rushing_view;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "budget capped" `Quick
            test_corruption_budget_capped;
          Alcotest.test_case "adaptive budget" `Quick
            test_adaptive_corruption_budget;
          Alcotest.test_case "crash retracts round" `Quick
            test_crash_retracts_current_round;
          Alcotest.test_case "corruption rounds recorded" `Quick
            test_corruption_rounds_recorded;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "trace agrees with telemetry" `Quick
            test_trace_agrees_with_telemetry;
        ] );
      ( "termination",
        [
          Alcotest.test_case "max rounds" `Quick test_max_rounds;
          Alcotest.test_case "zero-round output" `Quick test_zero_round_output;
          Alcotest.test_case "invalid params" `Quick test_invalid_params;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "composition",
        [
          Alcotest.test_case "sequential" `Quick test_sequential_composition;
          Alcotest.test_case "barrier failure" `Quick
            test_sequential_barrier_failure;
          Alcotest.test_case "message segregation" `Quick
            test_sequential_messages_segregated;
        ] );
      ( "verdict",
        [
          Alcotest.test_case "real AA verdicts" `Quick test_verdict_real;
          Alcotest.test_case "spread" `Quick test_verdict_spread;
        ] );
    ]
