(* Tests for the early-stopping RealAA variant (Section 4's observation
   rule): same AA guarantees, adaptive round count, consecutive decisions. *)

open Aat_engine
open Aat_realaa
module Strategies = Aat_adversary.Strategies
module Spoiler = Aat_adversary.Spoiler
module Rng = Aat_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run ?(seed = 0) ~n ~t ~eps ~adversary values =
  let d = Verdict.spread (Array.to_list values) in
  let max_iterations = max 1 (Rounds.bdh_iterations ~range:(max 1. d) ~eps) in
  Sync_engine.run ~n ~t ~seed
    ~max_rounds:(3 * max_iterations)
    ~protocol:
      (Early_bdh.protocol ~inputs:(fun i -> values.(i)) ~t ~eps ~max_iterations)
    ~adversary ()

let verdict_of ~eps values (report : (Early_bdh.result, _) Sync_engine.report) =
  let initially = Sync_engine.initially_corrupted report in
  let honest_inputs =
    Array.to_list (Array.mapi (fun i v -> (i, v)) values)
    |> List.filter_map (fun (i, v) ->
           if List.mem i initially then None else Some v)
  in
  Verdict.real ~eps
    ~n_honest:(Array.length values - List.length report.corrupted)
    ~honest_inputs
    ~honest_outputs:
      (List.map
         (fun (r : Early_bdh.result) -> r.value)
         (Sync_engine.honest_outputs report))

let test_fault_free_fast () =
  let values = Array.init 7 (fun i -> float_of_int (1000 * i)) in
  let report = run ~n:7 ~t:2 ~eps:1. ~adversary:(Adversary.passive "none") values in
  check "verdict" true (Verdict.all_ok (verdict_of ~eps:1. values report));
  (* decides after 3 iterations = 9 rounds, far below the fixed schedule *)
  check "early" true (report.rounds_used <= 9);
  check "beats fixed schedule" true
    (report.rounds_used < Rounds.bdh_rounds ~range:6000. ~eps:1.)

let test_rounds_independent_of_d () =
  let r1 =
    (run ~n:7 ~t:2 ~eps:1. ~adversary:(Adversary.passive "none")
       (Array.init 7 (fun i -> float_of_int (10 * i))))
      .rounds_used
  in
  let r2 =
    (run ~n:7 ~t:2 ~eps:1. ~adversary:(Adversary.passive "none")
       (Array.init 7 (fun i -> float_of_int (1_000_000 * i))))
      .rounds_used
  in
  check_int "same adaptive rounds" r1 r2

let test_silent_byz () =
  let values = Array.init 7 (fun i -> float_of_int (100 * i)) in
  let report =
    run ~n:7 ~t:2 ~eps:1. ~adversary:(Strategies.silent ~victims:[ 5; 6 ]) values
  in
  check "verdict" true (Verdict.all_ok (verdict_of ~eps:1. values report))

let test_consecutive_decisions () =
  let values = Array.init 10 (fun i -> float_of_int (77 * i)) in
  let report =
    run ~n:10 ~t:3 ~eps:1. ~adversary:(Strategies.silent ~victims:[ 8; 9 ]) values
  in
  let rounds = List.map snd report.termination_rounds in
  let lo = List.fold_left min max_int rounds in
  let hi = List.fold_left max 0 rounds in
  (* "consecutive iterations": all honest decide within one iteration *)
  check "within one iteration of each other" true (hi - lo <= 3);
  check "verdict" true (Verdict.all_ok (verdict_of ~eps:1. values report))

let test_spoiler_still_correct () =
  let values = Array.init 10 (fun i -> float_of_int (100 * i)) in
  let iterations = Rounds.bdh_iterations ~range:900. ~eps:1. in
  let report =
    run ~n:10 ~t:3 ~eps:1.
      ~adversary:(Spoiler.early_stopping_spoiler ~t:3 ~iterations)
      values
  in
  check "verdict" true (Verdict.all_ok (verdict_of ~eps:1. values report));
  check "never exceeds the fixed schedule" true
    (report.rounds_used <= 3 * iterations)

let test_crash_mid_protocol () =
  let values = Array.init 7 (fun i -> float_of_int (500 * i)) in
  let report =
    run ~n:7 ~t:2 ~eps:1.
      ~adversary:(Strategies.crash ~at_round:4 ~victims:[ 1; 3 ])
      values
  in
  check "verdict" true (Verdict.all_ok (verdict_of ~eps:1. values report))

let test_tiny_spread_immediate () =
  (* inputs already eps-close: first observation at iteration 1, decide at
     iteration 2 *)
  let values = [| 5.0; 5.2; 5.4; 5.1; 5.3; 5.2; 5.0 |] in
  let report = run ~n:7 ~t:2 ~eps:1. ~adversary:(Adversary.passive "none") values in
  check "two iterations" true (report.rounds_used <= 6);
  check "verdict" true (Verdict.all_ok (verdict_of ~eps:1. values report))

let prop_early_stopping_under_adversaries =
  QCheck2.Test.make ~name:"early stopping AA under assorted adversaries"
    ~count:50
    QCheck2.Gen.(triple (int_bound 1_000_000) (int_range 0 2) (int_range 0 2))
    (fun (seed, size_class, adv_class) ->
      let n, t = List.nth [ (4, 1); (7, 2); (10, 3) ] size_class in
      let rng = Rng.create seed in
      let values = Array.init n (fun _ -> float_of_int (Rng.int rng 10_000)) in
      let iterations = Rounds.bdh_iterations ~range:10_000. ~eps:1. in
      let adversary =
        match adv_class with
        | 0 -> Adversary.passive "none"
        | 1 -> Strategies.random_silent ~count:t
        | _ -> Spoiler.early_stopping_spoiler ~t ~iterations
      in
      let report = run ~seed ~n ~t ~eps:1. ~adversary values in
      Verdict.all_ok (verdict_of ~eps:1. values report))

let () =
  Alcotest.run "early-stopping"
    [
      ( "adaptive-termination",
        [
          Alcotest.test_case "fault-free is fast" `Quick test_fault_free_fast;
          Alcotest.test_case "rounds independent of D" `Quick
            test_rounds_independent_of_d;
          Alcotest.test_case "silent byz" `Quick test_silent_byz;
          Alcotest.test_case "consecutive decisions" `Quick
            test_consecutive_decisions;
          Alcotest.test_case "spoiler still correct" `Quick
            test_spoiler_still_correct;
          Alcotest.test_case "crash mid-protocol" `Quick test_crash_mid_protocol;
          Alcotest.test_case "eps-close inputs decide immediately" `Quick
            test_tiny_spread_immediate;
          QCheck_alcotest.to_alcotest prop_early_stopping_under_adversaries;
        ] );
    ]
