(* Exercises the public umbrella API (library [treeagree]) exactly the way
   the README and examples do — guards against the facade drifting from the
   internals. *)

open Treeagree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_quick_agree_readme_snippet () =
  let tree = Tree.of_labeled_edges [ ("a", "b"); ("b", "c"); ("c", "d") ] in
  let inputs = [| 0; 3; 1; 2; 0; 3; 1 |] in
  let outcome =
    Quick.agree ~tree ~inputs ~t:2
      ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
      ()
  in
  check "verdict" true (Verdict.all_ok outcome.verdict);
  check_int "five honest outputs" 5 (List.length outcome.outputs);
  check_int "labels match outputs" 5
    (List.length (Quick.output_labels tree outcome));
  List.iter
    (fun (_, label) -> check "label exists" true (Tree.mem_label tree label))
    (Quick.output_labels tree outcome)

let test_quick_agree_default_adversary () =
  let tree = Generate.star 20 in
  let inputs = [| 1; 5; 9; 13 |] in
  let outcome = Quick.agree ~tree ~inputs ~t:1 () in
  check "verdict" true (Verdict.all_ok outcome.verdict);
  check_int "rounds = schedule" (Tree_aa.rounds ~tree) outcome.rounds

let test_umbrella_names_cover_the_stack () =
  (* touch one entry point per re-exported module group *)
  let rng = Rng.create 1 in
  let tree = Generate.random rng 12 in
  let rooted = Rooted.make tree in
  let tour = Euler_tour.compute rooted in
  let lca = Lca.build tour in
  check_int "lca of root" (Tree.root tree) (Lca.query lca (Tree.root tree) 5);
  let hull = Convex_hull.compute rooted [ 2; 7 ] in
  check "hull nonempty" true (Convex_hull.size hull >= 1);
  check "prufer count" true (Prufer.count ~n:5 = 125);
  check "rounds formula" true (Rounds.bdh_rounds ~range:100. ~eps:1. > 0);
  check "fekete" true (Fekete.min_rounds ~n:10 ~t:3 ~d:100. ~eps:1. >= 1);
  check "chain" true
    (List.length (Chain.one_round_chain ~n:4 ~t:1 ~a:0. ~b:1.) = 5);
  check "closest int" true (Closest_int.closest_int 1.6 = 2);
  check "trim" true (Trim.trimmed_mean ~t:1 [ 1.; 2.; 3. ] = Some 2.);
  let ring = Auth.Keyring.setup ~n:3 in
  check "auth" true (Auth.signer (Auth.sign (Auth.Keyring.key ring 1) "x") = 1);
  check "tree io" true
    (Tree.equal tree (Tree_io.of_edge_list (Tree_io.to_edge_list tree)));
  check "metrics" true (Metrics.diameter tree >= 1)

let test_async_entry_points () =
  (* the asynchronous model, via the umbrella names only *)
  let fifo () = Async_engine.passive "fifo" in
  let bcast =
    Async_engine.run ~n:4 ~t:1
      ~reactor:(Bracha.reactor ~sender:0 ~inputs:(fun _ -> 7) ~t:1)
      ~adversary:(fifo ()) ()
  in
  check_int "bracha: all deliver" 4 (List.length bcast.Async_engine.outputs);
  List.iter
    (fun (_, v) -> check_int "bracha: sender's value" 7 v)
    bcast.Async_engine.outputs;
  let aa =
    Async_engine.run ~n:4 ~t:1
      ~reactor:
        (Async_aa.real ~inputs:(fun i -> float_of_int (10 * i)) ~t:1
           ~iterations:3)
      ~adversary:(fifo ()) ()
  in
  check_int "async real AA: all decide" 4 (List.length aa.Async_engine.outputs);
  let tree = Generate.path 8 in
  let nr =
    Async_engine.run ~n:4 ~t:1
      ~reactor:
        (Async_aa.tree ~tree
           ~inputs:(fun i -> 2 * i)
           ~t:1
           ~iterations:(Nr_baseline.iterations_for tree))
      ~adversary:(fifo ()) ()
  in
  List.iter
    (fun (_, (r : Tree.vertex Async_aa.result)) ->
      check "async tree AA: vertex output" true
        (r.Async_aa.value >= 0 && r.Async_aa.value < Tree.n_vertices tree))
    nr.Async_engine.outputs

let test_adversary_entry_points () =
  (* every adversary module reachable under its umbrella name *)
  let tree = Generate.star 10 in
  let inputs = [| 3; 5; 7; 9 |] in
  let outcome =
    Quick.agree ~tree ~inputs ~t:1
      ~adversary:(Strategies.random_silent ~count:1) ()
  in
  check "random-silent verdict" true (Verdict.all_ok outcome.verdict);
  let crashed =
    Quick.agree ~tree ~inputs ~t:1
      ~adversary:(Strategies.crash ~at_round:2 ~victims:[ 0 ]) ()
  in
  check "crash verdict" true (Verdict.all_ok crashed.verdict);
  Alcotest.(check (list int)) "spoiler corruption set" [ 8; 9 ]
    (Spoiler.parties_of ~n:10 ~t:2);
  (* constructing the wedges and a phased composition is the smoke test:
     their wire types must keep matching the protocols' *)
  let (_ : float Adversary.t) = Wedge.naive_wedge () in
  let (_ : float Gradecast.Multi.msg Adversary.t) = Wedge.gradecast_wedge () in
  let (_ : (int, int) Composed.msg Adversary.t) =
    Compose_adversary.phased ~name:"both-silent" ~barrier:3
      ~first:(Strategies.silent ~victims:[ 3 ])
      ~second:(Strategies.silent ~victims:[ 3 ])
  in
  ()

let test_runtime_entry_points () =
  (* the shared runtime substrate, via the umbrella names only *)
  check_int "defaults: max_rounds" ((4 * 9) + 64) (Defaults.max_rounds ~n:9);
  check_int "defaults: patience" (8 * 9 * 9) (Defaults.patience ~n:9);
  let mb = Mailbox.create ~n:3 in
  Mailbox.post mb { Types.src = 0; dst = 1; body = "hi" };
  Mailbox.post mb { Types.src = 0; dst = 1; body = "dup" };
  Alcotest.(check (list (pair int string)))
    "mailbox dedups per pair" [ (0, "hi") ]
    (List.map
       (fun (e : string Types.envelope) -> (e.Types.sender, e.Types.payload))
       (Mailbox.inbox mb 1));
  (* both engines return the one report type: a sync report is readable
     through [Report], and a sync protocol runs under the async engine via
     [Round_sim] with identical honest outputs *)
  let inputs = (fun i -> float_of_int (3 * i)) in
  let protocol = Real_aa.protocol ~inputs ~t:1 ~iterations:2 () in
  let sync =
    Engine.run ~n:4 ~t:1 ~protocol ~adversary:(Adversary.passive "none") ()
  in
  check "report engine tag" true (String.equal sync.Report.engine "sync");
  check_int "report finally honest" 4 (Report.finally_honest sync);
  let async =
    Async_engine.run ~n:4 ~t:1
      ~reactor:(Round_sim.reactor_of_protocol protocol)
      ~adversary:(Async_engine.passive "fifo") ()
  in
  check "report engine tag (async)" true
    (String.equal async.Report.engine "async");
  let values outs = List.map (fun (p, (r : Real_aa.result)) -> (p, r.Real_aa.value)) outs in
  Alcotest.(check (list (pair int (float 1e-9))))
    "differential: identical honest outputs" (values sync.Report.outputs)
    (values (List.map (fun (p, (o, _)) -> (p, o)) async.Report.outputs));
  (* any sync adversary strategy runs against the async engine unchanged *)
  let lifted =
    Async_engine.with_scheduler ~scheduler:Async_engine.Fifo
      (Strategies.silent ~victims:[ 3 ])
  in
  let silenced =
    Async_engine.run ~n:4 ~t:1
      ~reactor:(Bracha.reactor ~sender:0 ~inputs:(fun _ -> 7) ~t:1)
      ~adversary:lifted ()
  in
  Alcotest.(check (list int))
    "lifted strategy corrupts" [ 3 ] silenced.Report.corrupted;
  check_int "honest parties still decide" 3
    (List.length silenced.Report.outputs)

let test_telemetry_entry_points () =
  let stats = Telemetry.Stats.create () in
  let tree = Generate.path 6 in
  let outcome =
    Quick.agree ~tree ~inputs:[| 0; 5; 2; 4 |] ~t:1
      ~telemetry:(Telemetry.Stats.sink stats) ()
  in
  check_int "stats counted the run" outcome.report.Engine.honest_messages
    (Telemetry.Stats.total_honest stats);
  check "null sink is recognisable" true
    (Telemetry.Sink.is_null Telemetry.Sink.null)

let test_report_fields_accessible () =
  let tree = Generate.path 20 in
  let inputs = [| 0; 19; 7; 12 |] in
  let outcome =
    Quick.agree ~tree ~inputs ~t:1 ~adversary:(Strategies.silent ~victims:[ 3 ]) ()
  in
  let report = outcome.report in
  check "messages counted" true (report.Engine.honest_messages > 0);
  Alcotest.(check (list int)) "corrupted" [ 3 ] report.Engine.corrupted;
  check "termination rounds recorded" true
    (List.length report.Engine.termination_rounds = 3)

let () =
  Alcotest.run "public-api"
    [
      ( "quick",
        [
          Alcotest.test_case "README snippet" `Quick
            test_quick_agree_readme_snippet;
          Alcotest.test_case "default adversary" `Quick
            test_quick_agree_default_adversary;
          Alcotest.test_case "umbrella coverage" `Quick
            test_umbrella_names_cover_the_stack;
          Alcotest.test_case "report fields" `Quick test_report_fields_accessible;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "async entry points" `Quick
            test_async_entry_points;
          Alcotest.test_case "adversary entry points" `Quick
            test_adversary_entry_points;
          Alcotest.test_case "runtime entry points" `Quick
            test_runtime_entry_points;
          Alcotest.test_case "telemetry entry points" `Quick
            test_telemetry_entry_points;
        ] );
    ]
