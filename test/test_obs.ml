(* Tests for the observability layer: flight records round-trip through
   their JSONL serialization and replay bit-identically, replay detects
   perturbations at the exact round and field, the spec codec inverts,
   failing campaign cells emit replayable repro records, traces parse
   back to exactly what the sinks accumulated, blame localization finds
   the earliest demonstrable failure, and the profiler rides the
   null-sink zero-cost discipline. *)

open Treeagree

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ------------------------------------------------------------------ *)
(* random valid campaign specs, spanning protocols / engines / faults *)

let spec_of_seed seed =
  let rng = Rng.create seed in
  let between lo hi = lo + Rng.int rng (hi - lo + 1) in
  let size lo hi =
    if Rng.bool rng then Campaign.Spec.Exactly (between lo hi)
    else
      let l = between lo hi in
      Campaign.Spec.Between (l, l + Rng.int rng 2)
  in
  let sync_faults () =
    match Rng.int rng 3 with
    | 0 -> Campaign.Spec.No_faults
    | 1 ->
        Campaign.Spec.Fault_plan
          (ok_or_fail "fault plan" (Fault_plan_io.parse "crash:1@2;omission:0.1"))
    | _ -> Campaign.Spec.Chaos { intensity = 0.25 }
  in
  let protocol, tree, inputs, adversary, faults =
    match Rng.int rng 5 with
    | 0 ->
        ( Campaign.Spec.Tree_aa,
          Rng.pick rng
            [|
              Campaign.Spec.Random_tree (size 4 8);
              Campaign.Spec.Path_tree (size 4 8);
              Campaign.Spec.Star_tree (size 4 8);
              Campaign.Spec.Any_tree;
            |],
          Campaign.Spec.Random_vertices,
          Rng.pick rng
            Campaign.Spec.
              [| Passive; Random_silent; Random_crash; Any_tree_adversary |],
          sync_faults () )
    | 1 ->
        ( Campaign.Spec.Nr_baseline,
          Campaign.Spec.Random_tree (size 4 8),
          Campaign.Spec.Random_vertices,
          Rng.pick rng Campaign.Spec.[| Passive; Random_silent; Random_crash |],
          sync_faults () )
    | 2 ->
        ( Campaign.Spec.Path_aa,
          Campaign.Spec.Path_tree (size 5 8),
          Campaign.Spec.Random_vertices,
          Rng.pick rng
            Campaign.Spec.
              [| Passive; Random_silent; Real_spoiler; Gradecast_wedge |],
          sync_faults () )
    | 3 ->
        ( Campaign.Spec.Real_aa { eps = 0.05 },
          Campaign.Spec.Any_tree,
          (if Rng.bool rng then Campaign.Spec.Linspace_reals 10.
           else
             Campaign.Spec.Log_uniform_reals { log10_min = 0.; log10_max = 2. }),
          Rng.pick rng
            Campaign.Spec.
              [| Passive; Random_silent; Real_spoiler; Any_real_adversary |],
          sync_faults () )
    | _ ->
        ( (if Rng.bool rng then Campaign.Spec.Async_tree_aa
           else Campaign.Spec.Round_sim_tree_aa),
          Campaign.Spec.Random_tree (size 4 6),
          Campaign.Spec.Random_vertices,
          Campaign.Spec.Passive,
          Campaign.Spec.No_faults )
  in
  {
    Campaign.Spec.name = Printf.sprintf "obs-%d" seed;
    protocol;
    tree;
    n = size 4 6;
    t_budget =
      (if Rng.bool rng then Campaign.Spec.Fixed_t 1
       else Campaign.Spec.Up_to_third);
    inputs;
    adversary;
    faults;
    watchdogs = Rng.bool rng;
    repetitions = 1;
    base_seed = seed;
  }

(* a fixed, telemetry-rich spec for the deterministic unit tests *)
let fixed_spec =
  {
    Campaign.Spec.name = "obs-fixed";
    protocol = Campaign.Spec.Tree_aa;
    tree = Campaign.Spec.Random_tree (Campaign.Spec.Exactly 8);
    n = Campaign.Spec.Exactly 6;
    t_budget = Campaign.Spec.Fixed_t 1;
    inputs = Campaign.Spec.Random_vertices;
    adversary = Campaign.Spec.Random_silent;
    faults = Campaign.Spec.No_faults;
    watchdogs = true;
    repetitions = 1;
    base_seed = 11;
  }

(* ------------------------------------------------------------------ *)
(* property: record -> write -> read -> replay is clean, any protocol *)

let prop_record_replay_roundtrip =
  QCheck2.Test.make ~name:"record / write / read / replay is clean" ~count:40
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let spec = spec_of_seed seed in
      let task_seed = (Campaign.task_seeds ~base_seed:seed ~count:1).(0) in
      match Recorder.record spec ~task_seed with
      | Error e -> QCheck2.Test.fail_reportf "record failed: %s" e
      | Ok (record, _) -> (
          let reread =
            ok_or_fail "reparse"
              (Recorder.of_string (Recorder.to_string record))
          in
          match Replay.run reread with
          | Error e -> QCheck2.Test.fail_reportf "replay failed: %s" e
          | Ok replay -> (
              match replay.Replay.verdict with
              | Error d ->
                  QCheck2.Test.fail_reportf "diverged: %a" Replay.pp_divergence
                    d
              | Ok () ->
                  record.Recorder.digest = Some replay.Replay.digest
                  && Trace.diff ~expected:record.Recorder.trace
                       ~actual:replay.Replay.trace
                     = None)))

(* property: the spec JSON codec inverts on every valid spec *)
let prop_spec_json_roundtrip =
  QCheck2.Test.make ~name:"spec JSON codec inverts" ~count:300
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let spec = spec_of_seed seed in
      match Spec_io.of_json (Spec_io.to_json spec) with
      | Ok s -> s = spec
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e)

(* ------------------------------------------------------------------ *)
(* divergence detection localizes a perturbation; profiles never pin *)

let test_divergence_localization () =
  let record, _ = ok_or_fail "record" (Recorder.record fixed_spec ~task_seed:42) in
  let events = record.Recorder.trace.Trace.events in
  check "trace has events" true (List.length events >= 3);
  let k = List.length events / 2 in
  let mutated =
    List.mapi
      (fun i (e : Telemetry.event) ->
        if i = k then { e with honest_msgs = e.honest_msgs + 1 } else e)
      events
  in
  (match Trace.compare_events ~expected:mutated ~actual:events with
  | None -> Alcotest.fail "perturbation not detected"
  | Some d ->
      check_int "localized to the perturbed round"
        (List.nth events k).Telemetry.round d.Trace.round;
      Alcotest.(check string) "localized field" "honest_msgs" d.Trace.field);
  (* a truncated trace pins the length, not a field *)
  (match
     Trace.compare_events ~expected:events
       ~actual:(List.filteri (fun i _ -> i < k) events)
   with
  | Some d -> Alcotest.(check string) "length mismatch field" "rounds" d.Trace.field
  | None -> Alcotest.fail "truncation not detected");
  (* profile samples are measurements, not semantics: never a divergence *)
  let profiled =
    List.map
      (fun (e : Telemetry.event) ->
        { e with profile = Some { Telemetry.wall_ns = 1; alloc_bytes = 2. } })
      events
  in
  check "profile field ignored by comparison" true
    (Trace.compare_events ~expected:profiled ~actual:events = None)

let test_spec_drift_detected () =
  let record, _ = ok_or_fail "record" (Recorder.record fixed_spec ~task_seed:7) in
  let tampered =
    { record with Recorder.engine_seed = record.Recorder.engine_seed + 1 }
  in
  match Replay.run tampered with
  | Error e -> Alcotest.failf "replay refused to execute: %s" e
  | Ok replay -> (
      match replay.Replay.verdict with
      | Error (Replay.Spec_drift _) -> ()
      | Error d ->
          Alcotest.failf "wrong divergence: %a" Replay.pp_divergence d
      | Ok () -> Alcotest.fail "engine-seed drift not detected")

(* ------------------------------------------------------------------ *)
(* failing campaign cells emit replayable repro records *)

let test_repro_records_replay () =
  (* wedge at t >= n/3: genuinely Violated cells, by design *)
  let spec =
    {
      Campaign.Spec.name = "obs-wedge";
      protocol = Campaign.Spec.Path_aa;
      tree = Campaign.Spec.Path_tree (Campaign.Spec.Exactly 7);
      n = Campaign.Spec.Exactly 7;
      t_budget = Campaign.Spec.Fixed_t 3;
      inputs = Campaign.Spec.Random_vertices;
      adversary = Campaign.Spec.Gradecast_wedge;
      faults = Campaign.Spec.No_faults;
      watchdogs = true;
      repetitions = 4;
      base_seed = 3;
    }
  in
  let result = Campaign.run spec in
  check "wedge produced violations" true (result.Campaign.aggregate.violations > 0);
  let repros = Recorder.failing_cells result in
  check_int "one repro per violated cell" result.Campaign.aggregate.violations
    (List.length repros);
  List.iter
    (fun (task, repro) ->
      check "repro records carry no events" true
        (repro.Recorder.trace.Trace.events = []);
      check "repro records carry a digest" true (repro.Recorder.digest <> None);
      let reread =
        ok_or_fail "repro reparse"
          (Recorder.of_string (Recorder.to_string repro))
      in
      match Replay.run reread with
      | Error e -> Alcotest.failf "repro %d replay failed: %s" task e
      | Ok replay -> (
          match replay.Replay.verdict with
          | Ok () -> ()
          | Error d ->
              Alcotest.failf "repro %d diverged: %a" task Replay.pp_divergence
                d))
    repros

(* a benign campaign emits no repros *)
let test_no_repros_when_clean () =
  let result = Campaign.run { fixed_spec with repetitions = 3 } in
  check_int "no violations" 0 result.Campaign.aggregate.violations;
  check "no repro records" true (Recorder.failing_cells result = [])

(* ------------------------------------------------------------------ *)
(* traces parse back to exactly what the sinks accumulated *)

let with_jsonl_and_stats () =
  let tree = Generate.path 8 in
  let inputs = [| 0; 7; 3; 5; 1; 6; 2 |] in
  let stats = Telemetry.Stats.create () in
  let path = Filename.temp_file "treeagree-obs" ".jsonl" in
  let oc = open_out path in
  let _ =
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Quick.agree ~tree ~inputs ~t:2
          ~adversary:(Strategies.silent ~victims:[ 5; 6 ])
          ~telemetry:
            (Telemetry.Sink.tee (Telemetry.Jsonl.sink oc)
               (Telemetry.Stats.sink stats))
          ())
  in
  (path, stats)

let test_trace_load_matches_stats () =
  let path, stats = with_jsonl_and_stats () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let on_disk = ok_or_fail "trace load" (Trace.load path) in
      let in_memory = Trace.of_stats stats in
      check "meta round-trips" true (on_disk.Trace.meta = in_memory.Trace.meta);
      check "summary round-trips" true
        (on_disk.Trace.summary = in_memory.Trace.summary);
      check "events round-trip" true
        (on_disk.Trace.events = in_memory.Trace.events);
      check "no divergence either way" true
        (Trace.diff ~expected:on_disk ~actual:in_memory = None))

(* naive substring search; the stdlib has none *)
let find_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let test_format_version_gate () =
  let path, _ = with_jsonl_and_stats () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let text =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let version_field = {|"format_version":"1.0",|} in
      let replace by =
        match find_sub ~sub:version_field text with
        | None -> Alcotest.fail "start line carries no version"
        | Some i ->
            String.sub text 0 i
            ^ by
            ^ String.sub text
                (i + String.length version_field)
                (String.length text - i - String.length version_field)
      in
      (* same major, newer minor: accepted *)
      check "newer minor accepted" true
        (Result.is_ok (Trace.of_string (replace {|"format_version":"1.7",|})));
      (* unknown major: rejected *)
      check "unknown major rejected" true
        (Result.is_error (Trace.of_string (replace {|"format_version":"9.0",|})));
      (* pre-versioning writer (field absent): accepted *)
      check "missing version accepted" true
        (Result.is_ok (Trace.of_string (replace ""))))

(* ------------------------------------------------------------------ *)
(* blame localization *)

let synthetic_event round ~sent_by ~snapshot ~corruptions =
  {
    Telemetry.round;
    honest_msgs = Array.fold_left ( + ) 0 sent_by;
    adversary_msgs = 0;
    delivered_msgs = 0;
    rejected_forgeries = 0;
    honest_bytes = 0;
    adversary_bytes = 0;
    sent_by;
    corruptions;
    grades = None;
    marks = [];
    snapshot;
    profile = None;
  }

let test_blame_spread_expansion () =
  let tr =
    {
      Trace.empty with
      Trace.events =
        [
          synthetic_event 1 ~sent_by:[| 3; 3; 3 |]
            ~snapshot:[ (0, 0.); (1, 4.) ]
            ~corruptions:[];
          synthetic_event 2 ~sent_by:[| 3; 3; 3 |]
            ~snapshot:[ (0, 1.); (1, 4.) ]
            ~corruptions:[];
          synthetic_event 3 ~sent_by:[| 2; 9; 2 |]
            ~snapshot:[ (0, 0.); (1, 6.) ]
            ~corruptions:[ 2 ];
        ];
    }
  in
  match Trace.blame tr with
  | None -> Alcotest.fail "expanding spread not blamed"
  | Some b ->
      check_int "first expanding round" 3 b.Trace.round;
      Alcotest.(check string) "kind" "spread-expansion" b.Trace.kind;
      check "corrupted party suspected" true (List.mem 2 b.Trace.suspects)

let test_blame_watchdog_precedence () =
  let tr =
    {
      Trace.empty with
      Trace.events =
        [
          synthetic_event 1 ~sent_by:[| 1; 1 |] ~snapshot:[ (0, 0.); (1, 2.) ]
            ~corruptions:[];
          synthetic_event 2 ~sent_by:[| 1; 1 |] ~snapshot:[ (0, 0.); (1, 5.) ]
            ~corruptions:[];
        ];
    }
  in
  let violation =
    { Watchdog.watchdog = "corruption-budget"; round = 1; detail = "t exceeded" }
  in
  match Trace.blame ~violations:[ violation ] tr with
  | None -> Alcotest.fail "violation not blamed"
  | Some b ->
      Alcotest.(check string) "watchdog wins" "watchdog" b.Trace.kind;
      check_int "earliest violation round" 1 b.Trace.round

let test_blame_clean_trace () =
  let record, _ = ok_or_fail "record" (Recorder.record fixed_spec ~task_seed:2) in
  check "clean run has no blame" true
    (Trace.blame record.Recorder.trace = None)

(* ------------------------------------------------------------------ *)
(* profiler: samples when asked, nothing otherwise, digest-neutral *)

let test_profile_samples () =
  let runner, seed = Campaign.instantiate fixed_spec ~task_seed:7 in
  let run ~profile =
    let stats = Telemetry.Stats.create () in
    let o =
      runner.Runner.run ~seed ~telemetry:(Telemetry.Stats.sink stats) ~profile
        ()
    in
    (o, Telemetry.Stats.events stats)
  in
  let profiled, sampled_events = run ~profile:true in
  let plain, plain_events = run ~profile:false in
  check "every profiled event carries a sample" true
    (List.for_all
       (fun (e : Telemetry.event) ->
         match e.profile with
         | Some p -> p.Telemetry.wall_ns >= 0 && p.Telemetry.alloc_bytes >= 0.
         | None -> false)
       sampled_events);
  check "no samples without --profile" true
    (List.for_all
       (fun (e : Telemetry.event) -> e.Telemetry.profile = None)
       plain_events);
  (match profiled.Runner.profile with
  | None -> Alcotest.fail "stage profile missing"
  | Some p ->
      check "stage costs non-negative" true
        (p.Runner.setup_ns >= 0 && p.Runner.rounds_ns >= 0
        && p.Runner.checks_ns >= 0));
  check "no stage profile without --profile" true (plain.Runner.profile = None);
  (* semantics are profile-independent *)
  check "same outcome modulo profile" true
    ({ profiled with Runner.profile = None } = plain)

let test_profile_async_samples () =
  let spec =
    {
      fixed_spec with
      Campaign.Spec.protocol = Campaign.Spec.Async_tree_aa;
      adversary = Campaign.Spec.Passive;
      watchdogs = false;
    }
  in
  let runner, seed = Campaign.instantiate spec ~task_seed:5 in
  let stats = Telemetry.Stats.create () in
  let o =
    runner.Runner.run ~seed ~telemetry:(Telemetry.Stats.sink stats)
      ~profile:true ()
  in
  check "async chunks carry samples" true
    (Telemetry.Stats.events stats <> []
    && List.for_all
         (fun (e : Telemetry.event) -> e.Telemetry.profile <> None)
         (Telemetry.Stats.events stats));
  check "async stage profile present" true (o.Runner.profile <> None)

let test_profile_null_sink_neutral () =
  let runner, seed = Campaign.instantiate fixed_spec ~task_seed:13 in
  let bare = runner.Runner.run ~seed () in
  let nulled =
    runner.Runner.run ~seed ~telemetry:Telemetry.Sink.null ~profile:true ()
  in
  check "null-sink profiled run identical modulo profile" true
    ({ nulled with Runner.profile = None } = bare)

let test_digest_ignores_profile () =
  let r1, _ = ok_or_fail "record" (Recorder.record fixed_spec ~task_seed:5) in
  let r2, _ =
    ok_or_fail "record" (Recorder.record ~profile:true fixed_spec ~task_seed:5)
  in
  check "profile never reaches the digest" true
    (r1.Recorder.digest = r2.Recorder.digest && r1.Recorder.digest <> None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "replay",
        [
          QCheck_alcotest.to_alcotest prop_record_replay_roundtrip;
          Alcotest.test_case "divergence localization" `Quick
            test_divergence_localization;
          Alcotest.test_case "spec drift detected" `Quick
            test_spec_drift_detected;
        ] );
      ( "spec codec",
        [ QCheck_alcotest.to_alcotest prop_spec_json_roundtrip ] );
      ( "repro",
        [
          Alcotest.test_case "failing cells replay" `Quick
            test_repro_records_replay;
          Alcotest.test_case "clean campaign emits none" `Quick
            test_no_repros_when_clean;
        ] );
      ( "trace",
        [
          Alcotest.test_case "load matches stats" `Quick
            test_trace_load_matches_stats;
          Alcotest.test_case "format version gate" `Quick
            test_format_version_gate;
        ] );
      ( "blame",
        [
          Alcotest.test_case "spread expansion" `Quick
            test_blame_spread_expansion;
          Alcotest.test_case "watchdog precedence" `Quick
            test_blame_watchdog_precedence;
          Alcotest.test_case "clean trace" `Quick test_blame_clean_trace;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "sync samples" `Quick test_profile_samples;
          Alcotest.test_case "async samples" `Quick test_profile_async_samples;
          Alcotest.test_case "null sink neutral" `Quick
            test_profile_null_sink_neutral;
          Alcotest.test_case "digest ignores profile" `Quick
            test_digest_ignores_profile;
        ] );
    ]
