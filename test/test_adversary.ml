(* Tests for the attack library itself: puppeteer fidelity, omission,
   spoiler bookkeeping, wedge camps, the phased adapter, and engine trace
   recording. *)

open Aat_engine
open Aat_realaa
module Strategies = Aat_adversary.Strategies
module Spoiler = Aat_adversary.Spoiler
module Wedge = Aat_adversary.Wedge
module Compose = Aat_adversary.Compose

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* the little gather protocol again *)
type gather_state = { self : int; n : int; heard : int list option }

let gather : (gather_state, int, int list) Protocol.t =
  {
    name = "gather";
    init = (fun ~self ~n -> { self; n; heard = None });
    send =
      (fun ~round ~self st ->
        if round = 1 then List.init st.n (fun p -> (p, self)) else []);
    receive =
      (fun ~round:_ ~self:_ ~inbox st ->
        { st with heard = Some (List.map (fun (e : int Types.envelope) -> e.payload) inbox) });
    output = (fun st -> st.heard);
  }

(* --- puppeteer --- *)

let test_puppeteer_identity_is_honest () =
  (* a puppeteered party with an identity twist is indistinguishable from an
     honest one *)
  let honest_run =
    Sync_engine.run ~n:5 ~t:0 ~protocol:gather
      ~adversary:(Adversary.passive "none") ()
  in
  let puppet_run =
    Sync_engine.run ~n:5 ~t:1 ~protocol:gather
      ~adversary:
        (Strategies.puppeteer ~name:"identity" ~protocol:gather ~victims:[ 4 ]
           ~twist:(fun ~round:_ ~src:_ ~dst:_ m -> Some m))
      ()
  in
  (* honest parties hear the same things in both runs *)
  List.iter
    (fun p ->
      check "same inbox" true
        (Sync_engine.output_of honest_run p = Sync_engine.output_of puppet_run p))
    [ 0; 1; 2; 3 ]

let test_puppeteer_rewrites_per_recipient () =
  let adversary =
    Strategies.puppeteer ~name:"equivocate" ~protocol:gather ~victims:[ 4 ]
      ~twist:(fun ~round:_ ~src:_ ~dst m ->
        Some (if dst < 2 then m + 100 else m))
  in
  let report = Sync_engine.run ~n:5 ~t:1 ~protocol:gather ~adversary () in
  Alcotest.(check (list int)) "p0 sees twisted" [ 0; 1; 2; 3; 104 ]
    (Sync_engine.output_of report 0);
  Alcotest.(check (list int)) "p3 sees original" [ 0; 1; 2; 3; 4 ]
    (Sync_engine.output_of report 3)

let test_omit_towards () =
  let adversary =
    Strategies.omit_towards ~name:"omit" ~protocol:gather ~victims:[ 4 ]
      ~blocked:[ 0; 1 ]
  in
  let report = Sync_engine.run ~n:5 ~t:1 ~protocol:gather ~adversary () in
  Alcotest.(check (list int)) "blocked" [ 0; 1; 2; 3 ] (Sync_engine.output_of report 0);
  Alcotest.(check (list int)) "not blocked" [ 0; 1; 2; 3; 4 ]
    (Sync_engine.output_of report 2)

(* puppeteer over multiple rounds: victims track state from real traffic *)
let counter : (int, int, int) Protocol.t =
  {
    name = "counter";
    init = (fun ~self:_ ~n:_ -> 0);
    send = (fun ~round:_ ~self st -> [ (self, st) ]);
    receive = (fun ~round:_ ~self:_ ~inbox:_ st -> st + 1);
    output = (fun st -> if st >= 4 then Some st else None);
  }

let test_puppeteer_multi_round_state () =
  let sent_values = ref [] in
  let adversary =
    Strategies.puppeteer ~name:"observer" ~protocol:counter ~victims:[ 2 ]
      ~twist:(fun ~round:_ ~src:_ ~dst:_ m ->
        sent_values := m :: !sent_values;
        Some m)
  in
  let report = Sync_engine.run ~n:3 ~t:1 ~protocol:counter ~adversary () in
  check_int "honest finished" 2 (List.length report.outputs);
  (* the victim's internal counter advanced across rounds: it sent 0,1,2,3 *)
  Alcotest.(check (list int)) "victim state advanced" [ 0; 1; 2; 3 ]
    (List.rev !sent_values)

(* --- spoiler bookkeeping --- *)

let test_spoiler_burns_all_when_iterations_cover_t () =
  let n = 10 and t = 3 in
  let values = Array.init n (fun i -> float_of_int (100 * i)) in
  let report =
    Sync_engine.run ~n ~t ~max_rounds:9
      ~protocol:(Bdh.protocol ~inputs:(fun i -> values.(i)) ~t ~iterations:3 ())
      ~adversary:(Spoiler.realaa_spoiler ~t ~iterations:3)
      ()
  in
  (* every spoiler burned itself, so every honest party blacklists all t *)
  List.iter
    (fun (r : Bdh.result) ->
      Alcotest.(check (list int)) "all spoilers blacklisted" [ 7; 8; 9 ] r.blacklisted)
    (Sync_engine.honest_outputs report)

let test_spoiler_parties_of () =
  Alcotest.(check (list int)) "corruption set" [ 7; 8; 9 ] (Spoiler.parties_of ~n:10 ~t:3);
  Alcotest.(check (list int)) "empty" [] (Spoiler.parties_of ~n:4 ~t:0)

let test_relentless_spoiler_never_burns () =
  (* against the faithful protocol the relentless spoiler is blacklisted at
     its first split and is harmless afterwards: AA must hold *)
  let n = 7 and t = 2 in
  let values = Array.init n (fun i -> float_of_int (100 * i)) in
  let iterations = Rounds.bdh_iterations ~range:600. ~eps:1. in
  let report =
    Sync_engine.run ~n ~t ~max_rounds:(3 * iterations)
      ~protocol:(Bdh.protocol ~inputs:(fun i -> values.(i)) ~t ~iterations ())
      ~adversary:(Spoiler.relentless_spoiler ~t ~iterations)
      ()
  in
  let outputs =
    List.map (fun (r : Bdh.result) -> r.value) (Sync_engine.honest_outputs report)
  in
  check "agreement" true (Verdict.spread outputs <= 1.)

(* --- wedge camps --- *)

let test_wedge_camps_split_honest () =
  let view : int Adversary.view =
    {
      round = 1;
      n = 7;
      t = 2;
      corrupted = [| false; false; false; false; false; true; true |];
      honest_outbox = [];
      history = [];
      rng = Aat_util.Rng.create 0;
    }
  in
  let a, b = Wedge.camps view in
  Alcotest.(check (list int)) "camp a" [ 0; 1; 2 ] a;
  Alcotest.(check (list int)) "camp b" [ 3; 4 ] b

(* --- phased adapter --- *)

let test_phased_adapter_routing () =
  let seen_first = ref [] and seen_second = ref [] in
  let probe seen =
    {
      Adversary.name = "probe";
      passive = false;
      initial_corruptions = (fun ~n:_ ~t:_ _ -> [ 3 ]);
      corrupt_more = (fun _ -> []);
      deliver =
        (fun view ->
          seen := (view.Adversary.round, List.length view.history) :: !seen;
          []);
    }
  in
  let composed =
    Protocol.sequential ~name:"probe-composed" ~first:gather ~rounds_of_first:1
      ~second:(fun _ -> gather)
  in
  let adversary =
    Compose.phased ~name:"probe-both" ~barrier:1 ~first:(probe seen_first)
      ~second:(probe seen_second)
  in
  ignore (Sync_engine.run ~n:4 ~t:1 ~protocol:composed ~adversary ());
  (* phase 1 saw its round 1 with empty history; phase 2 saw its (renumbered)
     round 1 with empty (projected) history *)
  check "first phase rounds" true (List.mem (1, 0) !seen_first);
  check "second phase renumbered" true (List.mem (1, 0) !seen_second);
  check "second phase saw only its rounds" true
    (List.for_all (fun (r, h) -> r >= 1 && h < r) !seen_second)

(* --- engine trace recording --- *)

let test_trace_recording () =
  let report =
    Sync_engine.run ~n:3 ~t:0 ~record_trace:true ~protocol:gather
      ~adversary:(Adversary.passive "none") ()
  in
  check_int "one round traced" 1 (List.length report.trace);
  check_int "nine letters" 9 (List.length (List.hd report.trace));
  let no_trace =
    Sync_engine.run ~n:3 ~t:0 ~protocol:gather
      ~adversary:(Adversary.passive "none") ()
  in
  check "trace off by default" true (no_trace.trace = [])

let () =
  Alcotest.run "adversary"
    [
      ( "puppeteer",
        [
          Alcotest.test_case "identity twist = honest" `Quick
            test_puppeteer_identity_is_honest;
          Alcotest.test_case "per-recipient rewrite" `Quick
            test_puppeteer_rewrites_per_recipient;
          Alcotest.test_case "omit_towards" `Quick test_omit_towards;
          Alcotest.test_case "multi-round state" `Quick
            test_puppeteer_multi_round_state;
        ] );
      ( "spoiler",
        [
          Alcotest.test_case "burns all byz over t iterations" `Quick
            test_spoiler_burns_all_when_iterations_cover_t;
          Alcotest.test_case "parties_of" `Quick test_spoiler_parties_of;
          Alcotest.test_case "relentless vs faithful protocol" `Quick
            test_relentless_spoiler_never_burns;
        ] );
      ( "wedge",
        [ Alcotest.test_case "camps" `Quick test_wedge_camps_split_honest ] );
      ( "phased",
        [ Alcotest.test_case "routing and renumbering" `Quick test_phased_adapter_routing ] );
      ( "trace",
        [ Alcotest.test_case "recording" `Quick test_trace_recording ] );
    ]
